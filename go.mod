module bubblezero

go 1.24
