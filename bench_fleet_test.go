package bubblezero_test

import (
	"context"
	"fmt"
	"testing"

	"bubblezero/internal/fleet"
)

// Fleet-scale benchmark: N full BubbleZERO buildings stepped in one
// process, sharded across the runner pool. The headline metrics are
// building-ticks/s (aggregate simulated seconds of building time per
// wall-clock second) and bytes/building (GC-settled live-heap cost per
// instantiated building, measured at construction and gated by the
// 128 KiB DefaultConfig budget). Recorded in BENCH_fleet.json via
// `make bench-fleet-json`; scripts/benchguard gates the N1000xS8 rate.
//
// Shard-count scaling (S1 vs S8 at N=10000) is only visible on multicore
// hosts: with GOMAXPROCS=1 the shards time-slice one core and the two
// configurations measure the same throughput plus scheduling overhead.
//
// Each shape runs twice — bank=on (the DefaultConfig fused RoomBank shard
// step) and bank=off (per-building engine loops over private zone rows) —
// so the fusion's effect is measured on the same host in the same run.
// benchguard gates the bank=on N1000xS8 rate.
func BenchmarkFleetTick(b *testing.B) {
	cases := []struct{ buildings, shards int }{
		{100, 8},
		{1000, 8},
		{10000, 1},
		{10000, 8},
	}
	for _, c := range cases {
		for _, bank := range []bool{true, false} {
			name := fmt.Sprintf("N%dxS%d/bank=off", c.buildings, c.shards)
			if bank {
				name = fmt.Sprintf("N%dxS%d/bank=on", c.buildings, c.shards)
			}
			b.Run(name, func(b *testing.B) {
				cfg := fleet.DefaultConfig(c.buildings)
				cfg.Shards = c.shards
				cfg.Bank = bank
				ctx := context.Background()
				// Construction (and its memory-budget gate) is untimed: the
				// benchmark measures steady-state stepping.
				fl, err := fleet.New(ctx, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := fl.RunTicks(ctx, 60); err != nil {
					b.Fatal(err)
				}
				const ticksPer = 64 // one epoch's worth of fleet ticks per iteration
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := fl.RunTicks(ctx, ticksPer); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				buildingTicks := float64(b.N) * ticksPer * float64(c.buildings)
				b.ReportMetric(buildingTicks/b.Elapsed().Seconds(), "building-ticks/s")
				b.ReportMetric(float64(fl.BytesPerBuilding()), "bytes/building")
			})
		}
	}
}
