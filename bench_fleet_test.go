package bubblezero_test

import (
	"context"
	"fmt"
	"testing"

	"bubblezero/internal/fleet"
)

// Fleet-scale benchmark: N full BubbleZERO buildings stepped in one
// process, sharded across the runner pool. The headline metrics are
// building-ticks/s (aggregate simulated seconds of building time per
// wall-clock second) and bytes/building (GC-settled live-heap cost per
// instantiated building, measured at construction and gated by the
// 128 KiB DefaultConfig budget). Recorded in BENCH_fleet.json via
// `make bench-fleet-json`; scripts/benchguard gates the N1000xS8 rate.
//
// Shard-count scaling (S1 vs S8 at N=10000) is only visible on multicore
// hosts: with GOMAXPROCS=1 the shards time-slice one core and the two
// configurations measure the same throughput plus scheduling overhead.
func BenchmarkFleetTick(b *testing.B) {
	cases := []struct{ buildings, shards int }{
		{100, 8},
		{1000, 8},
		{10000, 1},
		{10000, 8},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("N%dxS%d", c.buildings, c.shards), func(b *testing.B) {
			cfg := fleet.DefaultConfig(c.buildings)
			cfg.Shards = c.shards
			ctx := context.Background()
			// Construction (and its memory-budget gate) is untimed: the
			// benchmark measures steady-state stepping.
			fl, err := fleet.New(ctx, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := fl.RunTicks(ctx, 60); err != nil {
				b.Fatal(err)
			}
			const ticksPer = 64 // one epoch's worth of fleet ticks per iteration
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := fl.RunTicks(ctx, ticksPer); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			buildingTicks := float64(b.N) * ticksPer * float64(c.buildings)
			b.ReportMetric(buildingTicks/b.Elapsed().Seconds(), "building-ticks/s")
			b.ReportMetric(float64(fl.BytesPerBuilding()), "bytes/building")
		})
	}
}
