// Comfortaudit: score BubbleZERO and the conventional AirCon with the
// Fanger comfort model (PMV/PPD, ISO 7730) during and after pull-down.
// Radiant ceilings reach neutral sensation at a higher air temperature
// because the cooled panel surfaces depress the mean radiant temperature —
// comfort delivered with less cooling work.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"bubblezero/internal/baseline"
	"bubblezero/internal/comfort"
	"bubblezero/internal/core"
	"bubblezero/internal/psychro"
	"bubblezero/internal/sim"
	"bubblezero/internal/thermal"
)

func main() {
	ctx := context.Background()

	// BubbleZERO: PMV/PPD come straight from the snapshot.
	sys, err := core.NewSystem(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BubbleZERO pull-down:")
	fmt.Println("t(min)  temp(°C)    PMV    PPD(%)  category")
	for minute := 0; minute < 90; minute += 15 {
		if err := sys.Run(ctx, 15*time.Minute); err != nil {
			log.Fatal(err)
		}
		sn := sys.Snapshot()
		fmt.Printf("%6d  %8.2f  %+5.2f  %7.1f  %s\n",
			minute+15, sn.AvgTempC, sn.PMV, sn.PPD, comfort.Category(sn.PMV))
	}

	// AirCon on an identical room: all-air, so the mean radiant
	// temperature equals the air temperature, and the 8 °C supply
	// overdries and overcools.
	room, err := thermal.NewRoomAtOutdoor(thermal.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	unit, err := baseline.New(baseline.DefaultConfig(), room)
	if err != nil {
		log.Fatal(err)
	}
	engine := sim.NewEngine(sim.MustClock(core.DefaultConfig().Start, time.Second), 1)
	engine.Register(unit)
	engine.Register(room)
	if err := engine.RunFor(ctx, 90*time.Minute); err != nil {
		log.Fatal(err)
	}
	rh := psychro.RHFromHumidityRatio(room.AverageT(), room.AverageW(), psychro.AtmPressure)
	pmv, ppd, err := comfort.Assess(comfort.DefaultOffice(room.AverageT(), room.AverageT(), rh))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAirCon after 90 min: %.2f °C, RH %.0f%%, PMV %+.2f, PPD %.1f%%, category %s\n",
		room.AverageT(), rh, pmv, ppd, comfort.Category(pmv))

	sn := sys.Snapshot()
	fmt.Printf("BubbleZERO at target: %.2f °C, PMV %+.2f, PPD %.1f%%, category %s\n",
		sn.AvgTempC, sn.PMV, sn.PPD, comfort.Category(sn.PMV))
	fmt.Println("\nradiant panels reach neutral sensation via the mean radiant temperature,")
	fmt.Println("so BubbleZERO holds comfort at a warmer (cheaper) air setpoint")
}
