// Copsweep: the low-exergy design ablation — sweep the radiant
// supply-water temperature and measure both the chiller-level COP (the
// exergy argument from §II) and the whole-system COP from full
// steady-state runs. Warmer water means less temperature lift and less
// work per joule moved; 18 °C is the sweet spot where the panels can still
// carry the room's load.
//
// The per-temperature runs are independent, so they fan out across a
// runner.Pool; each row is written into its own slot and printed in sweep
// order, identical at any worker count.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"bubblezero/internal/core"
	"bubblezero/internal/exergy"
	"bubblezero/internal/runner"
)

func main() {
	ctx := context.Background()
	chiller := exergy.DefaultChiller()
	outdoor := 28.9
	temps := []float64{8, 12, 15, 18, 21}

	rows := make([]string, len(temps))
	pool := runner.NewPool(0)
	err := pool.ForEach(ctx, len(temps), func(ctx context.Context, i int) error {
		tc := temps[i]
		cfg := core.DefaultConfig()
		cfg.RadiantSetpointC = tc
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return err
		}
		if err := sys.Run(ctx, time.Hour); err != nil {
			return err
		}
		sys.ResetCOP()
		if err := sys.Run(ctx, time.Hour); err != nil {
			return err
		}
		// Exergy embedded in moving 1 kW at this working temperature
		// against the outdoor reference (Ex = Q(1 − T/T₀), §II).
		ex := exergy.OfHeatFlux(1000, tc, outdoor)
		holds := sys.Room().AverageT() < 25.6
		rows[i] = fmt.Sprintf("%8.0f  %12.1f  %10.2f  %9.2f  %v",
			tc, ex, chiller.COP(tc, outdoor), sys.COPTotal().Value(), holds)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Tsupp(°C)  exergy/kW(W)  chillerCOP  systemCOP  holds 25°C")
	for _, row := range rows {
		fmt.Println(row)
	}
	fmt.Println("\nthe paper's choice of 18 °C water maximises system COP while preserving capacity")
}
