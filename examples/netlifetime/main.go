// Netlifetime: the wireless-network view — run the same deployment twice,
// once with the paper's adaptive transmission (BT-ADPT) and once with the
// conservative fixed schedule, and compare channel traffic, per-device
// transmission periods, and projected battery lifetimes (the paper's
// Figure 15: 3.2 years vs 0.7 years on two AA cells).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"bubblezero/internal/core"
	"bubblezero/internal/energy"
	"bubblezero/internal/wsn"
)

func main() {
	const horizon = 3 * time.Hour

	for _, mode := range []wsn.TxMode{wsn.ModeFixed, wsn.ModeAdaptive} {
		name := "Fixed (T_snd = T_spl)"
		if mode == wsn.ModeAdaptive {
			name = "BT-ADPT (adaptive)"
		}
		cfg := core.DefaultConfig()
		cfg.TxMode = mode
		sys, err := core.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		ctx := context.Background()

		// Trigger a door event every 30 minutes, the paper's cadence.
		start := sys.Now()
		for at := 30 * time.Minute; at < horizon; at += 30 * time.Minute {
			sys.OpenDoorAt(start.Add(at), 30*time.Second)
		}
		if err := sys.Run(ctx, horizon); err != nil {
			log.Fatal(err)
		}

		st := sys.Network().Stats()
		fmt.Printf("%s\n", name)
		fmt.Printf("  packets: %d sent, %.2f%% delivered, %d collisions\n",
			st.Sent, st.DeliveryRate()*100, st.Collided)

		var years, tsnd float64
		for _, dev := range sys.Devices() {
			drain := dev.Node().Battery().UsedJ()
			avgPower := drain / horizon.Seconds()
			years += energy.Years(energy.NewTwoAA().Lifetime(avgPower))
			tsnd += dev.TsndS()
		}
		n := float64(len(sys.Devices()))
		fmt.Printf("  mean current T_snd: %.1f s, mean projected lifetime: %.1f years\n\n",
			tsnd/n, years/n)
	}
	fmt.Println("paper Figure 15: fixed ≈0.7 years, adaptive ≈3.2 years on 2×AA")
}
