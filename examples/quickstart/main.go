// Quickstart: build the default BubbleZERO system, run the paper's
// pull-down scenario for 45 simulated minutes, and print the convergence —
// the minimal end-to-end use of the library.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"bubblezero/internal/core"
)

func main() {
	// The default configuration is the paper's deployment: a 60 m³
	// tropical laboratory at 28.9 °C / 27.4 °C dew point, 18 °C radiant
	// water, 8 °C ventilation coils, and a 30-node 802.15.4 network with
	// adaptive transmission.
	sys, err := core.NewSystem(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	fmt.Println("t(min)  temp(°C)  dew(°C)")
	for minute := 0; minute < 45; minute += 5 {
		if err := sys.Run(ctx, 5*time.Minute); err != nil {
			log.Fatal(err)
		}
		sn := sys.Snapshot()
		fmt.Printf("%6d  %8.2f  %7.2f\n", minute+5, sn.AvgTempC, sn.AvgDewC)
	}

	sn := sys.Snapshot()
	fmt.Printf("\nreached %.2f °C / %.2f °C dew (targets 25 / 18) with zero condensation: %v\n",
		sn.AvgTempC, sn.AvgDewC, sn.CondensationS == 0)
	fmt.Printf("system COP so far: %.2f (vs ≈2.8 for a conventional all-air system)\n", sn.COPTotal)
}
