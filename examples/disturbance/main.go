// Disturbance: reproduce the paper's Figure 10 phase two — settle the
// room, then open the door for 15 seconds and again for 2 minutes, and
// watch the distributed controllers absorb both events. Demonstrates
// scheduling timeline events and reading per-subspace state.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"bubblezero/internal/core"
)

func main() {
	sys, err := core.NewSystem(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	start := sys.Now()

	// The paper's phase-two schedule: 14:05 (+65 min) a 15 s opening,
	// 14:25 (+85 min) a 2-minute opening. The door is in subspace-1.
	sys.OpenDoorAt(start.Add(65*time.Minute), 15*time.Second)
	sys.OpenDoorAt(start.Add(85*time.Minute), 2*time.Minute)

	fmt.Println("time   subsp1-dew subsp2-dew subsp3-dew subsp4-dew   (°C)")
	for elapsed := time.Duration(0); elapsed < 105*time.Minute; elapsed += 5 * time.Minute {
		if err := sys.Run(ctx, 5*time.Minute); err != nil {
			log.Fatal(err)
		}
		sn := sys.Snapshot()
		marker := ""
		if sys.Room().DoorOpen() {
			marker = "  << door open"
		}
		fmt.Printf("%s   %9.2f %10.2f %10.2f %10.2f%s\n",
			sn.Time.Format("15:04"),
			sn.ZoneDewC[0], sn.ZoneDewC[1], sn.ZoneDewC[2], sn.ZoneDewC[3], marker)
	}

	// Quantify the recovery the paper reports ("the system reacts and
	// adapts back to the target temperature in 15 minutes").
	dew := sys.Recorder().Series("dew.avg")
	event2 := start.Add(85 * time.Minute)
	peak := dew.StatsBetween(event2, event2.Add(5*time.Minute)).Max
	fmt.Printf("\n2-minute door opening pushed average dew to %.2f °C\n", peak)
	for _, p := range dew.Points() {
		if p.At.After(event2.Add(2*time.Minute)) && p.Value <= 18.3 {
			fmt.Printf("recovered to 18.3 °C dew %.0f minutes after the event (paper: ≈15 min)\n",
				p.At.Sub(event2).Minutes())
			break
		}
	}
}
