package wsn

import (
	"fmt"
	"testing"
	"time"

	"bubblezero/internal/sim"
)

// A loaded Network.Step — a full complement of battery and AC senders all
// contending in one tick — must not allocate: the offset sort is
// comparison-based (no reflection boxing) and the deferral/collision
// scratch buffers are owned by the network and reused across ticks.
func TestNetworkStepZeroAllocLoaded(t *testing.T) {
	net, e := newTestNetwork(t, DefaultConfig())
	env := sim.NewEnv(e.Clock(), e.RNG())

	const nBattery, nAC = 20, 10
	nodes := make([]*Node, 0, nBattery+nAC)
	for i := 0; i < nBattery; i++ {
		n, err := net.AddNode(NodeID(fmt.Sprintf("bt-%d", i)), PowerBattery)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for i := 0; i < nAC; i++ {
		n, err := net.AddNode(NodeID(fmt.Sprintf("ac-%d", i)), PowerAC)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	// Subscribers on the delivery path, like the real control boards.
	net.Subscribe(func(Message) {}, MsgTemperature)
	net.Subscribe(func(Message) {}, MsgHumidity)

	// Warm up: first tick may grow the pending and scratch buffers.
	for _, n := range nodes {
		if err := net.Broadcast(n, Message{Type: MsgTemperature}); err != nil {
			t.Fatal(err)
		}
	}
	net.Step(env)

	allocs := testing.AllocsPerRun(200, func() {
		for _, n := range nodes {
			_ = net.Broadcast(n, Message{Type: MsgTemperature})
		}
		net.Step(env)
	})
	if allocs != 0 {
		t.Errorf("loaded Broadcast+Step allocates %.2f/op, want 0", allocs)
	}
}

// The scratch buffers must resize correctly when the pending set grows and
// must leave no stale collision flags behind when it shrinks.
func TestNetworkScratchReuseAcrossLoadChanges(t *testing.T) {
	// A 10 ms tick packs every random offset inside the (full-airtime)
	// blind window, so the heavy tick is all collisions.
	e := sim.NewEngine(sim.MustClock(testStart, 10*time.Millisecond), 11)
	net, err := NewNetwork(Config{AirtimeS: 0.0043, CCABlindS: 0.0043, LossFloor: 0, Desync: false},
		e.RNG().Stream("wsn"))
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv(e.Clock(), e.RNG())

	var nodes []*Node
	for i := 0; i < 8; i++ {
		n, err := net.AddNode(NodeID(fmt.Sprintf("bt-%d", i)), PowerBattery)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}

	// Heavy tick: with CCABlindS == AirtimeS almost everything collides,
	// setting most scratch flags true.
	for _, n := range nodes {
		_ = net.Broadcast(n, Message{Type: MsgTemperature})
	}
	net.Step(env)
	if net.Stats().Collided == 0 {
		t.Fatal("heavy tick should collide under a full-airtime blind window")
	}

	// Light tick: one lone sender cannot collide. A stale flag from the
	// heavy tick would wrongly corrupt it.
	before := net.Stats()
	_ = net.Broadcast(nodes[0], Message{Type: MsgTemperature})
	net.Step(env)
	after := net.Stats()
	if after.Collided != before.Collided {
		t.Errorf("lone sender collided: stale scratch flags leaked across ticks")
	}
	if after.Delivered != before.Delivered+1 {
		t.Errorf("lone sender not delivered: %+v -> %+v", before, after)
	}
}
