package wsn

import (
	"fmt"
	"testing"
	"time"

	"bubblezero/internal/sim"
)

// A loaded Network.Step — a full complement of battery and AC senders all
// contending in one tick — must not allocate: the offset sort is
// comparison-based (no reflection boxing) and the deferral/collision
// scratch buffers are owned by the network and reused across ticks.
func TestNetworkStepZeroAllocLoaded(t *testing.T) {
	net, e := newTestNetwork(t, DefaultConfig())
	env := sim.NewEnv(e.Clock(), e.RNG())

	const nBattery, nAC = 20, 10
	nodes := make([]*Node, 0, nBattery+nAC)
	for i := 0; i < nBattery; i++ {
		n, err := net.AddNode(NodeID(fmt.Sprintf("bt-%d", i)), PowerBattery)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for i := 0; i < nAC; i++ {
		n, err := net.AddNode(NodeID(fmt.Sprintf("ac-%d", i)), PowerAC)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	// Subscribers on the delivery path, like the real control boards.
	net.Subscribe(func(Message) {}, MsgTemperature)
	net.Subscribe(func(Message) {}, MsgHumidity)

	// Warm up: first tick may grow the pending and scratch buffers.
	for _, n := range nodes {
		if err := net.Broadcast(n, Message{Type: MsgTemperature}); err != nil {
			t.Fatal(err)
		}
	}
	net.Step(env)

	allocs := testing.AllocsPerRun(200, func() {
		for _, n := range nodes {
			_ = net.Broadcast(n, Message{Type: MsgTemperature})
		}
		net.Step(env)
	})
	if allocs != 0 {
		t.Errorf("loaded Broadcast+Step allocates %.2f/op, want 0", allocs)
	}
}

// TestNetworkStepMicroBudget pins the contended-tick cost envelope in
// absolute terms: zero allocations per tick and a nanosecond ceiling
// generous enough for any CI machine (~50× the measured cost) that only a
// structural regression — reflection-based sorting, map-keyed type
// filtering on the delivery path, scratch reallocation — would breach.
func TestNetworkStepMicroBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("micro-benchmark")
	}
	res := testing.Benchmark(func(b *testing.B) {
		e := sim.NewEngine(sim.MustClock(testStart, time.Second), 11)
		net, err := NewNetwork(DefaultConfig(), e.RNG().Stream("wsn"))
		if err != nil {
			b.Fatal(err)
		}
		env := sim.NewEnv(e.Clock(), e.RNG())
		var nodes []*Node
		for i := 0; i < 20; i++ {
			n, err := net.AddNode(NodeID(fmt.Sprintf("bt-%d", i)), PowerBattery)
			if err != nil {
				b.Fatal(err)
			}
			nodes = append(nodes, n)
		}
		for i := 0; i < 10; i++ {
			n, err := net.AddNode(NodeID(fmt.Sprintf("ac-%d", i)), PowerAC)
			if err != nil {
				b.Fatal(err)
			}
			nodes = append(nodes, n)
		}
		// Two bitmask subscribers on the delivery path (one matching, one
		// filtering), like the real control boards.
		net.Subscribe(func(Message) {}, MsgTemperature)
		net.Subscribe(func(Message) {}, MsgCO2)
		for _, n := range nodes {
			_ = net.Broadcast(n, Message{Type: MsgTemperature})
		}
		net.Step(env) // warm-up tick grows pending and scratch buffers
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, n := range nodes {
				_ = net.Broadcast(n, Message{Type: MsgTemperature})
			}
			net.Step(env)
		}
	})
	if a := res.AllocsPerOp(); a != 0 {
		t.Errorf("contended tick allocates %d/op, want 0", a)
	}
	const maxNsPerOp = 250_000 // 30 packets/tick measures ~3-5 µs
	if ns := res.NsPerOp(); ns > maxNsPerOp {
		t.Errorf("contended tick costs %d ns/op, budget %d", ns, maxNsPerOp)
	}
}

// TestSubscribeWideTypeSpillover covers the subscription filter's map
// spillover: types outside the 64-bit dense mask still filter correctly,
// and a wide subscription does not accidentally match dense types.
func TestSubscribeWideTypeSpillover(t *testing.T) {
	n, e := newTestNetwork(t, Config{AirtimeS: 0.0043, CCABlindS: 0, LossFloor: 0, Desync: false})
	env := sim.NewEnv(e.Clock(), e.RNG())
	node, err := n.AddNode("bt-wide", PowerBattery)
	if err != nil {
		t.Fatal(err)
	}
	const wideType = MsgType(200)
	var wide, dense []float64
	n.Subscribe(func(m Message) { wide = append(wide, m.Value) }, wideType)
	n.Subscribe(func(m Message) { dense = append(dense, m.Value) }, MsgTemperature)

	_ = n.Broadcast(node, Message{Type: wideType, Value: 1})
	n.Step(env)
	_ = n.Broadcast(node, Message{Type: MsgTemperature, Value: 2})
	n.Step(env)

	if len(wide) != 1 || wide[0] != 1 {
		t.Errorf("wide subscriber got %v, want [1]", wide)
	}
	if len(dense) != 1 || dense[0] != 2 {
		t.Errorf("dense subscriber got %v, want [2]", dense)
	}
}

// The scratch buffers must resize correctly when the pending set grows and
// must leave no stale collision flags behind when it shrinks.
func TestNetworkScratchReuseAcrossLoadChanges(t *testing.T) {
	// A 10 ms tick packs every random offset inside the (full-airtime)
	// blind window, so the heavy tick is all collisions.
	e := sim.NewEngine(sim.MustClock(testStart, 10*time.Millisecond), 11)
	net, err := NewNetwork(Config{AirtimeS: 0.0043, CCABlindS: 0.0043, LossFloor: 0, Desync: false},
		e.RNG().Stream("wsn"))
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv(e.Clock(), e.RNG())

	var nodes []*Node
	for i := 0; i < 8; i++ {
		n, err := net.AddNode(NodeID(fmt.Sprintf("bt-%d", i)), PowerBattery)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}

	// Heavy tick: with CCABlindS == AirtimeS almost everything collides,
	// setting most scratch flags true.
	for _, n := range nodes {
		_ = net.Broadcast(n, Message{Type: MsgTemperature})
	}
	net.Step(env)
	if net.Stats().Collided == 0 {
		t.Fatal("heavy tick should collide under a full-airtime blind window")
	}

	// Light tick: one lone sender cannot collide. A stale flag from the
	// heavy tick would wrongly corrupt it.
	before := net.Stats()
	_ = net.Broadcast(nodes[0], Message{Type: MsgTemperature})
	net.Step(env)
	after := net.Stats()
	if after.Collided != before.Collided {
		t.Errorf("lone sender collided: stale scratch flags leaked across ticks")
	}
	if after.Delivered != before.Delivered+1 {
		t.Errorf("lone sender not delivered: %+v -> %+v", before, after)
	}
}
