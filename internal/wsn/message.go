// Package wsn simulates BubbleZERO's IEEE 802.15.4 wireless sensor
// network (§IV): TelosB-class nodes share a single collision domain (the
// paper: motes "can reliably communicate up to 50m in the indoor
// environment", so every consumer hears every supplier), messages are
// addressed by data *type* rather than by receiver and broadcast on the
// channel, and consumers filter the types they need. The medium model
// resolves per-tick contention with CSMA-style deferral, a CCA blind
// window that produces collisions between near-simultaneous senders, and
// an independent loss floor. Nodes are AC- or battery-powered; battery
// nodes carry a TelosB energy budget, and AC nodes can optionally
// desynchronise their transmission schedules to reduce contention
// (§IV "we let the AC powered devices adapt their transmission schedules
// to alleviate channel contentions").
package wsn

import "fmt"

// MsgType categorises a broadcast message. The paper: "we let the
// suppliers categorize and address its data messages to certain 'types',
// e.g., temperature, humidity, CO2 concentration, etc".
type MsgType int

// Message types exchanged in BubbleZERO (Figure 8's data supply and
// consumption relationships).
const (
	MsgTemperature MsgType = iota + 1 // room air temperature (°C)
	MsgHumidity                       // room relative humidity (%)
	MsgCO2                            // room CO₂ concentration (ppm)
	MsgPanelDew                       // under-panel dew point (°C), Control-C-1
	MsgWaterTemp                      // pipe water temperature (°C)
	MsgWaterFlow                      // pipe water flow (L/min)
	MsgSupplyTemp                     // tank supply temperature T_supp (°C)
	MsgAirboxDew                      // airbox outlet dew point (°C)
	MsgDewTarget                      // computed target dew point (°C)
	MsgFanSpeed                       // airbox fan command (m³/s)
	MsgFlapCmd                        // CO₂flap open/close command
	MsgPumpCmd                        // pump voltage command (V)
)

var msgTypeNames = map[MsgType]string{
	MsgTemperature: "temperature",
	MsgHumidity:    "humidity",
	MsgCO2:         "co2",
	MsgPanelDew:    "panel-dew",
	MsgWaterTemp:   "water-temp",
	MsgWaterFlow:   "water-flow",
	MsgSupplyTemp:  "supply-temp",
	MsgAirboxDew:   "airbox-dew",
	MsgDewTarget:   "dew-target",
	MsgFanSpeed:    "fan-speed",
	MsgFlapCmd:     "flap-cmd",
	MsgPumpCmd:     "pump-cmd",
}

// String implements fmt.Stringer.
func (t MsgType) String() string {
	if s, ok := msgTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("msgtype(%d)", int(t))
}

// NodeID identifies a mote.
type NodeID string

// PowerClass distinguishes the paper's ac-devices from bt-devices.
type PowerClass int

// Power classes.
const (
	PowerAC PowerClass = iota + 1
	PowerBattery
)

// String implements fmt.Stringer.
func (p PowerClass) String() string {
	switch p {
	case PowerAC:
		return "ac"
	case PowerBattery:
		return "battery"
	default:
		return fmt.Sprintf("powerclass(%d)", int(p))
	}
}

// Message is one broadcast data packet.
type Message struct {
	// Type is the data type consumers filter on.
	Type MsgType
	// Source is the transmitting node.
	Source NodeID
	// Zone is the subspace the data concerns, or -1 when not zonal.
	Zone int
	// Seq is the per-node sequence number.
	Seq uint32
	// Value is the sensor reading or command payload.
	Value float64
}
