package wsn

import (
	"fmt"
	"sort"

	"bubblezero/internal/adaptive"
	"bubblezero/internal/energy"
)

// Snapshot state for the radio layer. The medium's RNG is an engine
// stream, captured by sim.Engine.ExportState; the pending queue is always
// empty between ticks, so only registry counters and fault toggles need
// to travel. Node slots and subscriptions are reconstructed by building
// the same topology from the same config.

// NodeState is one mote's mutable state.
//
//bzlint:state ExportState RestoreState
type NodeState struct {
	ID      NodeID
	Seq     uint32
	Battery *energy.BatteryState // nil for AC nodes
}

// NetworkState is the Network's mutable state.
//
//bzlint:state ExportState RestoreState
type NetworkState struct {
	Nodes     []NodeState // sorted by ID
	Stats     Stats
	LossBoost float64
	Jammed    bool
}

// ExportState captures per-node sequence counters and batteries plus the
// medium counters and fault toggles. Nodes are emitted sorted by ID so the
// export is deterministic despite the map-backed registry.
func (n *Network) ExportState() NetworkState {
	st := NetworkState{
		Nodes:     make([]NodeState, 0, len(n.nodes)),
		Stats:     n.stats,
		LossBoost: n.lossBoost,
		Jammed:    n.jammed,
	}
	//bzlint:allow determinism export is sorted by node ID below, so iteration order is immaterial
	for _, node := range n.nodes {
		ns := NodeState{ID: node.id, Seq: node.seq}
		if node.battery != nil {
			b := node.battery.ExportState()
			ns.Battery = &b
		}
		st.Nodes = append(st.Nodes, ns)
	}
	sort.Slice(st.Nodes, func(i, j int) bool { return st.Nodes[i].ID < st.Nodes[j].ID })
	return st
}

// RestoreState overwrites node and medium state. The receiver must hold
// the same node population the state was exported from.
func (n *Network) RestoreState(st NetworkState) error {
	if len(st.Nodes) != len(n.nodes) {
		return fmt.Errorf("wsn: network has %d nodes, snapshot has %d", len(n.nodes), len(st.Nodes))
	}
	for i := range st.Nodes {
		ns := &st.Nodes[i]
		node, ok := n.nodes[ns.ID]
		if !ok {
			return fmt.Errorf("wsn: snapshot node %q not in network", ns.ID)
		}
		if (node.battery != nil) != (ns.Battery != nil) {
			return fmt.Errorf("wsn: node %q power class differs from snapshot", ns.ID)
		}
		node.seq = ns.Seq
		if node.battery != nil {
			node.battery.RestoreState(*ns.Battery)
		}
	}
	n.stats = st.Stats
	n.lossBoost = st.LossBoost
	n.jammed = st.Jammed
	return nil
}

// SensorDeviceState is a SensorDevice's mutable state.
//
//bzlint:state ExportState RestoreState
type SensorDeviceState struct {
	SinceSample float64
	Stuck       bool
	StuckHeld   bool
	StuckVal    float64
	DriftPerS   float64
	DriftBias   float64
	Sched       *adaptive.SchedulerState // nil in fixed mode
}

// ExportState captures the sampling accumulator, fault-channel state, and
// the adaptive scheduler (when present).
func (d *SensorDevice) ExportState() (SensorDeviceState, error) {
	st := SensorDeviceState{
		SinceSample: d.sinceSample,
		Stuck:       d.stuck,
		StuckHeld:   d.stuckHeld,
		StuckVal:    d.stuckVal,
		DriftPerS:   d.driftPerS,
		DriftBias:   d.driftBias,
	}
	if d.sched != nil {
		ss, err := d.sched.ExportState()
		if err != nil {
			return SensorDeviceState{}, fmt.Errorf("wsn: device %q: %w", d.node.ID(), err)
		}
		st.Sched = &ss
	}
	return st, nil
}

// RestoreState overwrites the device's mutable state.
func (d *SensorDevice) RestoreState(st SensorDeviceState) error {
	if (d.sched != nil) != (st.Sched != nil) {
		return fmt.Errorf("wsn: device %q scheduling mode differs from snapshot", d.node.ID())
	}
	d.sinceSample = st.SinceSample
	d.stuck = st.Stuck
	d.stuckHeld = st.StuckHeld
	d.stuckVal = st.StuckVal
	d.driftPerS = st.DriftPerS
	d.driftBias = st.DriftBias
	if d.sched != nil {
		if err := d.sched.RestoreState(*st.Sched); err != nil {
			return fmt.Errorf("wsn: device %q: %w", d.node.ID(), err)
		}
	}
	return nil
}

// PeriodicBroadcasterState is a PeriodicBroadcaster's mutable state.
//
//bzlint:state ExportState RestoreState
type PeriodicBroadcasterState struct {
	Since float64
}

// ExportState captures the period accumulator.
func (p *PeriodicBroadcaster) ExportState() PeriodicBroadcasterState {
	return PeriodicBroadcasterState{Since: p.since}
}

// RestoreState overwrites the period accumulator.
func (p *PeriodicBroadcaster) RestoreState(st PeriodicBroadcasterState) {
	p.since = st.Since
}
