package wsn

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"bubblezero/internal/energy"
	"bubblezero/internal/sim"
)

var testStart = time.Date(2014, 3, 10, 13, 0, 0, 0, time.UTC)

func newTestNetwork(t *testing.T, cfg Config) (*Network, *sim.Engine) {
	t.Helper()
	e := sim.NewEngine(sim.MustClock(testStart, time.Second), 11)
	n, err := NewNetwork(cfg, e.RNG().Stream("wsn"))
	if err != nil {
		t.Fatal(err)
	}
	return n, e
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{AirtimeS: 0, CCABlindS: 0, LossFloor: 0},
		{AirtimeS: 0.004, CCABlindS: 0.005, LossFloor: 0},
		{AirtimeS: 0.004, CCABlindS: -1, LossFloor: 0},
		{AirtimeS: 0.004, CCABlindS: 0.0005, LossFloor: 1},
		{AirtimeS: 0.004, CCABlindS: 0.0005, LossFloor: -0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid: %+v", i, c)
		}
	}
}

func TestMsgTypeAndPowerClassStrings(t *testing.T) {
	if MsgTemperature.String() != "temperature" {
		t.Errorf("MsgTemperature = %q", MsgTemperature.String())
	}
	if MsgType(999).String() == "" {
		t.Error("unknown type should still render")
	}
	if PowerAC.String() != "ac" || PowerBattery.String() != "battery" {
		t.Error("power class strings wrong")
	}
}

func TestAddNode(t *testing.T) {
	n, _ := newTestNetwork(t, DefaultConfig())
	bt, err := n.AddNode("t1", PowerBattery)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Battery() == nil {
		t.Error("battery node has no battery")
	}
	if bt.Battery().RemainingJ() != energy.TwoAACapacityJ {
		t.Errorf("battery capacity = %v", bt.Battery().RemainingJ())
	}
	ac, err := n.AddNode("c1", PowerAC)
	if err != nil {
		t.Fatal(err)
	}
	if ac.Battery() != nil {
		t.Error("AC node has a battery")
	}
	if _, err := n.AddNode("t1", PowerAC); err == nil {
		t.Error("duplicate node accepted")
	}
	if n.NodeCount() != 2 {
		t.Errorf("NodeCount = %d, want 2", n.NodeCount())
	}
}

func TestBroadcastDeliversToMatchingSubscribersOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossFloor = 0
	n, e := newTestNetwork(t, cfg)
	node, _ := n.AddNode("t1", PowerAC)

	var temps, co2s []float64
	n.Subscribe(func(m Message) { temps = append(temps, m.Value) }, MsgTemperature)
	n.Subscribe(func(m Message) { co2s = append(co2s, m.Value) }, MsgCO2)
	var sniffed int
	n.AddSniffer(func(Message) { sniffed++ })

	e.Register(sim.ComponentFunc{ID: "src", Fn: func(*sim.Env) {
		_ = n.Broadcast(node, Message{Type: MsgTemperature, Zone: 0, Value: 25})
	}})
	e.Register(n)
	if err := e.RunTicks(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	if len(temps) != 5 {
		t.Errorf("temperature subscriber got %d messages, want 5", len(temps))
	}
	if len(co2s) != 0 {
		t.Errorf("co2 subscriber got %d messages, want 0", len(co2s))
	}
	if sniffed != 5 {
		t.Errorf("sniffer saw %d, want 5", sniffed)
	}
	if got := n.Stats().Delivered; got != 5 {
		t.Errorf("Delivered = %d, want 5", got)
	}
}

func TestBroadcastSetsSourceAndSeq(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossFloor = 0
	n, e := newTestNetwork(t, cfg)
	node, _ := n.AddNode("t1", PowerAC)
	var msgs []Message
	n.Subscribe(func(m Message) { msgs = append(msgs, m) }, MsgHumidity)
	e.Register(sim.ComponentFunc{ID: "src", Fn: func(*sim.Env) {
		_ = n.Broadcast(node, Message{Type: MsgHumidity, Value: 60})
	}})
	e.Register(n)
	if err := e.RunTicks(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("got %d messages", len(msgs))
	}
	for i, m := range msgs {
		if m.Source != "t1" {
			t.Errorf("msg %d source = %q", i, m.Source)
		}
		if m.Seq != uint32(i+1) {
			t.Errorf("msg %d seq = %d, want %d", i, m.Seq, i+1)
		}
	}
}

func TestBroadcastErrors(t *testing.T) {
	n, _ := newTestNetwork(t, DefaultConfig())
	if err := n.Broadcast(nil, Message{}); err == nil {
		t.Error("nil node accepted")
	}
	ghost := &Node{id: "ghost"}
	if err := n.Broadcast(ghost, Message{}); err == nil {
		t.Error("unregistered node accepted")
	}
}

func TestBroadcastDrainsBatteryAndStopsWhenDepleted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossFloor = 0
	n, _ := newTestNetwork(t, cfg)
	node, _ := n.AddNode("t1", PowerBattery)
	before := node.Battery().RemainingJ()
	if err := n.Broadcast(node, Message{Type: MsgTemperature, Value: 1}); err != nil {
		t.Fatal(err)
	}
	drained := before - node.Battery().RemainingJ()
	if math.Abs(drained-energy.TxEnergyPerPacketJ) > 1e-12 {
		t.Errorf("drained %v J per packet, want %v", drained, energy.TxEnergyPerPacketJ)
	}
	node.Battery().Drain(node.Battery().RemainingJ())
	if err := n.Broadcast(node, Message{Type: MsgTemperature, Value: 1}); err == nil {
		t.Error("depleted node transmitted")
	}
}

// floodCollisions runs nNodes AC devices all transmitting every tick and
// returns cumulative stats.
func floodCollisions(t *testing.T, desync bool, nNodes, ticks int) Stats {
	t.Helper()
	cfg := DefaultConfig()
	cfg.LossFloor = 0
	cfg.Desync = desync
	n, e := newTestNetwork(t, cfg)
	nodes := make([]*Node, nNodes)
	for i := range nodes {
		node, err := n.AddNode(NodeID(rune('a'+i/26))+NodeID(rune('a'+i%26)), PowerAC)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	e.Register(sim.ComponentFunc{ID: "flood", Fn: func(*sim.Env) {
		for _, node := range nodes {
			_ = n.Broadcast(node, Message{Type: MsgTemperature, Value: 1})
		}
	}})
	e.Register(n)
	if err := e.RunTicks(context.Background(), uint64(ticks)); err != nil {
		t.Fatal(err)
	}
	return n.Stats()
}

func TestDesyncReducesCollisions(t *testing.T) {
	random := floodCollisions(t, false, 30, 200)
	desync := floodCollisions(t, true, 30, 200)
	if random.Collided == 0 {
		t.Fatal("random offsets produced zero collisions; contention model inert")
	}
	if desync.Collided >= random.Collided/4 {
		t.Errorf("desync collisions %d vs random %d; expected at least 4x reduction",
			desync.Collided, random.Collided)
	}
	if desync.DeliveryRate() <= random.DeliveryRate() {
		t.Errorf("desync delivery %.4f <= random %.4f",
			desync.DeliveryRate(), random.DeliveryRate())
	}
}

func TestStatsAccounting(t *testing.T) {
	s := floodCollisions(t, false, 10, 100)
	if s.Sent != 1000 {
		t.Errorf("Sent = %d, want 1000", s.Sent)
	}
	if s.Delivered+s.Collided+s.LostRandom != s.Sent {
		t.Errorf("counters don't sum: %+v", s)
	}
	if s.AvgDelayS() <= 0 {
		t.Errorf("AvgDelayS = %v, want > 0 (airtime floor)", s.AvgDelayS())
	}
}

func TestEmptyStats(t *testing.T) {
	var s Stats
	if s.DeliveryRate() != 0 || s.AvgDelayS() != 0 {
		t.Error("empty stats should report zeros")
	}
}

func TestLossFloorLosesSomePackets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossFloor = 0.2
	n, e := newTestNetwork(t, cfg)
	node, _ := n.AddNode("t1", PowerAC)
	e.Register(sim.ComponentFunc{ID: "src", Fn: func(*sim.Env) {
		_ = n.Broadcast(node, Message{Type: MsgTemperature, Value: 1})
	}})
	e.Register(n)
	if err := e.RunTicks(context.Background(), 2000); err != nil {
		t.Fatal(err)
	}
	s := n.Stats()
	rate := float64(s.LostRandom) / float64(s.Sent)
	if rate < 0.15 || rate > 0.25 {
		t.Errorf("random loss rate = %.3f, want ≈0.2", rate)
	}
}

func TestSensorDeviceFixedModeSendsEverySample(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossFloor = 0
	n, e := newTestNetwork(t, cfg)
	node, _ := n.AddNode("t1", PowerBattery)
	dev, err := NewSensorDevice(SensorDeviceConfig{
		Node: node, Network: n, Type: MsgTemperature, Zone: 0,
		Read: func() float64 { return 25 }, Mode: ModeFixed, TsplS: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sends := 0
	dev.OnSend(func(float64) { sends++ })
	e.Register(dev)
	e.Register(n)
	if err := e.RunFor(context.Background(), 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if sends != 30 {
		t.Errorf("fixed-mode sends = %d over 60 s at 2 s, want 30", sends)
	}
	if got := dev.TsndS(); got != 2 {
		t.Errorf("fixed TsndS = %v, want 2", got)
	}
}

func TestSensorDeviceAdaptiveModeBacksOff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossFloor = 0
	n, e := newTestNetwork(t, cfg)
	node, _ := n.AddNode("t1", PowerBattery)
	dev, err := NewSensorDevice(SensorDeviceConfig{
		Node: node, Network: n, Type: MsgTemperature, Zone: 0,
		Read: func() float64 { return 25 }, Mode: ModeAdaptive, TsplS: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sends := 0
	dev.OnSend(func(float64) { sends++ })
	e.Register(dev)
	e.Register(n)
	if err := e.RunFor(context.Background(), 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	// Stable stream: the device must back off to T_snd = 64 s.
	if got := dev.TsndS(); got != 64 {
		t.Errorf("adaptive TsndS = %v, want 64", got)
	}
	fixedSends := 30 * 60 / 2
	if sends >= fixedSends/10 {
		t.Errorf("adaptive sends = %d, want far fewer than fixed %d", sends, fixedSends)
	}
}

func TestSensorDeviceAdaptiveSavesEnergy(t *testing.T) {
	run := func(mode TxMode) float64 {
		cfg := DefaultConfig()
		cfg.LossFloor = 0
		n, e := newTestNetwork(t, cfg)
		node, _ := n.AddNode("t1", PowerBattery)
		dev, err := NewSensorDevice(SensorDeviceConfig{
			Node: node, Network: n, Type: MsgTemperature, Zone: 0,
			Read: func() float64 { return 25 }, Mode: mode, TsplS: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Register(dev)
		e.Register(n)
		if err := e.RunFor(context.Background(), time.Hour); err != nil {
			t.Fatal(err)
		}
		return node.Battery().UsedJ()
	}
	fixed := run(ModeFixed)
	adaptive := run(ModeAdaptive)
	if adaptive >= fixed/2 {
		t.Errorf("adaptive used %v J vs fixed %v J; want large saving", adaptive, fixed)
	}
}

func TestSensorDeviceValidation(t *testing.T) {
	n, _ := newTestNetwork(t, DefaultConfig())
	node, _ := n.AddNode("t1", PowerBattery)
	cases := []SensorDeviceConfig{
		{Node: nil, Network: n, Read: func() float64 { return 0 }, Mode: ModeFixed, TsplS: 2},
		{Node: node, Network: nil, Read: func() float64 { return 0 }, Mode: ModeFixed, TsplS: 2},
		{Node: node, Network: n, Read: nil, Mode: ModeFixed, TsplS: 2},
		{Node: node, Network: n, Read: func() float64 { return 0 }, Mode: ModeFixed, TsplS: 0},
		{Node: node, Network: n, Read: func() float64 { return 0 }, Mode: TxMode(99), TsplS: 2},
	}
	for i, c := range cases {
		if _, err := NewSensorDevice(c); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestSensorDeviceStopsWhenBatteryDies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossFloor = 0
	n, e := newTestNetwork(t, cfg)
	node, _ := n.AddNode("t1", PowerBattery)
	dev, _ := NewSensorDevice(SensorDeviceConfig{
		Node: node, Network: n, Type: MsgTemperature, Zone: 0,
		Read: func() float64 { return 25 }, Mode: ModeFixed, TsplS: 2,
	})
	node.Battery().Drain(node.Battery().RemainingJ())
	sends := 0
	dev.OnSend(func(float64) { sends++ })
	e.Register(dev)
	e.Register(n)
	if err := e.RunFor(context.Background(), time.Minute); err != nil {
		t.Fatal(err)
	}
	if sends != 0 {
		t.Errorf("dead device sent %d packets", sends)
	}
}

func TestPeriodicBroadcasterCadence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossFloor = 0
	n, e := newTestNetwork(t, cfg)
	node, _ := n.AddNode("c1", PowerAC)
	pb, err := NewPeriodicBroadcaster(node, n, MsgSupplyTemp, -1, 5, func() float64 { return 18 })
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	n.Subscribe(func(m Message) { got = append(got, m.Value) }, MsgSupplyTemp)
	e.Register(pb)
	e.Register(n)
	if err := e.RunFor(context.Background(), 50*time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Errorf("periodic broadcasts = %d over 50 s at 5 s, want 10", len(got))
	}
}

func TestPeriodicBroadcasterValidation(t *testing.T) {
	n, _ := newTestNetwork(t, DefaultConfig())
	node, _ := n.AddNode("c1", PowerAC)
	if _, err := NewPeriodicBroadcaster(nil, n, MsgSupplyTemp, -1, 5, func() float64 { return 0 }); err == nil {
		t.Error("nil node accepted")
	}
	if _, err := NewPeriodicBroadcaster(node, n, MsgSupplyTemp, -1, 0, func() float64 { return 0 }); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewPeriodicBroadcaster(node, n, MsgSupplyTemp, -1, 5, nil); err == nil {
		t.Error("nil read accepted")
	}
}

func TestNewNetworkValidation(t *testing.T) {
	e := sim.NewEngine(sim.MustClock(testStart, time.Second), 1)
	if _, err := NewNetwork(Config{}, e.RNG().Stream("x")); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewNetwork(DefaultConfig(), nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestSnifferRequiresClock(t *testing.T) {
	if _, err := NewSniffer(nil, nil); err == nil {
		t.Error("nil clock accepted")
	}
}

func TestSnifferCountsAndLog(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossFloor = 0
	n, e := newTestNetwork(t, cfg)
	node, _ := n.AddNode("t1", PowerAC)
	var log strings.Builder
	sn, err := NewSniffer(e.Clock().Now, &log)
	if err != nil {
		t.Fatal(err)
	}
	sn.Attach(n)
	e.Register(sim.ComponentFunc{ID: "src", Fn: func(env *sim.Env) {
		if env.Tick()%5 == 0 {
			_ = n.Broadcast(node, Message{Type: MsgTemperature, Zone: 1, Value: 25})
		}
	}})
	e.Register(n)
	if err := e.RunTicks(context.Background(), 50); err != nil {
		t.Fatal(err)
	}
	if sn.Err() != nil {
		t.Fatalf("log error: %v", sn.Err())
	}
	if sn.Total() != 10 {
		t.Errorf("Total = %d, want 10", sn.Total())
	}
	if sn.TypeCount(MsgTemperature) != 10 || sn.TypeCount(MsgCO2) != 0 {
		t.Error("type counts wrong")
	}
	if sn.SourceCount("t1") != 10 {
		t.Errorf("source count = %d", sn.SourceCount("t1"))
	}
	mean, std, gaps := sn.InterArrival(MsgTemperature)
	if gaps != 9 {
		t.Errorf("gaps = %d, want 9", gaps)
	}
	if math.Abs(mean-5) > 1e-9 || std > 1e-9 {
		t.Errorf("inter-arrival = %v ± %v, want exactly 5 ± 0", mean, std)
	}
	lines := strings.Split(strings.TrimSpace(log.String()), "\n")
	if len(lines) != 11 { // header + 10 rows
		t.Errorf("log has %d lines, want 11", len(lines))
	}
	if !strings.HasPrefix(lines[0], "time,source,type") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "t1,temperature,1,1,25.0000") {
		t.Errorf("row = %q", lines[1])
	}
	if sn.Rate() <= 0 {
		t.Error("rate not positive")
	}
	if s := sn.Summary(); !strings.Contains(s, "temperature") {
		t.Errorf("summary malformed: %s", s)
	}
}

func TestSnifferNoWriterIsFine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossFloor = 0
	n, e := newTestNetwork(t, cfg)
	node, _ := n.AddNode("t1", PowerAC)
	sn, err := NewSniffer(e.Clock().Now, nil)
	if err != nil {
		t.Fatal(err)
	}
	sn.Attach(n)
	e.Register(sim.ComponentFunc{ID: "src", Fn: func(*sim.Env) {
		_ = n.Broadcast(node, Message{Type: MsgHumidity, Value: 60})
	}})
	e.Register(n)
	if err := e.RunTicks(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if sn.Total() != 3 {
		t.Errorf("Total = %d", sn.Total())
	}
}

func TestSnifferEmptyStats(t *testing.T) {
	e := sim.NewEngine(sim.MustClock(testStart, time.Second), 1)
	sn, err := NewSniffer(e.Clock().Now, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sn.Rate() != 0 || sn.Total() != 0 {
		t.Error("fresh sniffer should be empty")
	}
	if m, s, n := sn.InterArrival(MsgTemperature); m != 0 || s != 0 || n != 0 {
		t.Error("fresh inter-arrival should be zero")
	}
}
