package wsn

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"bubblezero/internal/energy"
	"bubblezero/internal/sim"
)

// Config parameterises the radio medium.
type Config struct {
	// AirtimeS is the channel occupancy per frame: a maximum-length
	// 802.15.4 frame (133 bytes incl. PHY overhead) at 250 kbps is
	// ≈4.3 ms.
	AirtimeS float64
	// CCABlindS is the carrier-sense blind window: two senders starting
	// within it cannot hear each other and collide.
	CCABlindS float64
	// LossFloor is the independent per-packet loss probability from
	// non-collision causes (fading, interference).
	LossFloor float64
	// Desync staggers AC-device transmission offsets into deterministic
	// slots instead of random offsets — the paper's adaptive schedule for
	// ac-devices. Toggleable for the ablation benchmark.
	Desync bool
}

// DefaultConfig returns the BubbleZERO radio parameterisation.
func DefaultConfig() Config {
	return Config{
		AirtimeS:  0.0043,
		CCABlindS: 0.0005,
		LossFloor: 0.005,
		Desync:    true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.AirtimeS <= 0:
		return fmt.Errorf("wsn: AirtimeS must be > 0, got %v", c.AirtimeS)
	case c.CCABlindS < 0 || c.CCABlindS > c.AirtimeS:
		return fmt.Errorf("wsn: CCABlindS must be in [0, AirtimeS], got %v", c.CCABlindS)
	case c.LossFloor < 0 || c.LossFloor >= 1:
		return fmt.Errorf("wsn: LossFloor must be in [0, 1), got %v", c.LossFloor)
	}
	return nil
}

// Node is one mote on the network.
type Node struct {
	id      NodeID
	class   PowerClass
	battery *energy.Battery // nil for AC nodes
	seq     uint32
	acSlot  int      // desync slot index for AC nodes
	net     *Network // the registry that created this node (via AddNode)
}

// ID returns the node identifier.
func (n *Node) ID() NodeID { return n.id }

// Class returns the node power class.
func (n *Node) Class() PowerClass { return n.class }

// Battery returns the node battery (nil for AC nodes).
func (n *Node) Battery() *energy.Battery { return n.battery }

// Stats aggregates medium-level counters.
type Stats struct {
	Sent        int
	Delivered   int
	Collided    int
	LostRandom  int
	Jammed      int
	TotalDelayS float64
}

// DeliveryRate returns the fraction of sent packets delivered.
func (s Stats) DeliveryRate() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(s.Sent)
}

// AvgDelayS returns the mean channel-access delay of delivered packets.
func (s Stats) AvgDelayS() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return s.TotalDelayS / float64(s.Delivered)
}

// scratchStarts returns the reusable start-time buffer sized to k. Values
// are fully overwritten by the deferral pass, so no clearing is needed.
func (n *Network) scratchStarts(k int) []float64 {
	if cap(n.starts) < k {
		n.starts = make([]float64, k)
	}
	n.starts = n.starts[:k]
	return n.starts
}

// scratchOrder returns the reusable index buffer sized to k, initialised
// to the identity permutation.
func (n *Network) scratchOrder(k int) []int32 {
	if cap(n.order) < k {
		n.order = make([]int32, k)
	}
	n.order = n.order[:k]
	for i := range n.order {
		n.order[i] = int32(i)
	}
	return n.order
}

// scratchCollided returns the reusable collision-flag buffer sized to k,
// cleared to false (the collision pass only ever sets flags).
func (n *Network) scratchCollided(k int) []bool {
	if cap(n.collided) < k {
		n.collided = make([]bool, k)
	}
	n.collided = n.collided[:k]
	clear(n.collided)
	return n.collided
}

type pendingTx struct {
	msg    Message
	node   *Node
	offset float64 // intended start offset within the tick
}

// subscription is one consumer's type filter. Message types are small
// consecutive constants, so the filter is a bitmask checked with one AND
// per delivery instead of a map lookup; types outside the mask range (not
// used by any in-repo producer) spill into a map so Subscribe accepts any
// MsgType value.
type subscription struct {
	mask uint64           // dense filter for types 0..63
	wide map[MsgType]bool // spillover for types outside the mask, usually nil
	fn   func(Message)
}

// matches reports whether the subscription wants messages of type t.
func (s *subscription) matches(t MsgType) bool {
	if uint64(t) < 64 {
		return s.mask&(1<<uint64(t)) != 0
	}
	return s.wide != nil && s.wide[t]
}

// Network is the shared broadcast medium plus the node registry. It
// implements sim.Component; devices enqueue broadcasts during their own
// Step (scheduled before the network), and the network resolves contention
// and invokes subscriber callbacks during its Step.
type Network struct {
	cfg     Config
	rng     *rand.Rand
	nodes   map[NodeID]*Node
	acCount int
	pending []pendingTx
	subs    []subscription
	stats   Stats

	// starts, collided, and order are Step's scratch buffers, owned by the
	// network and regrown only when the pending set outgrows them, so the
	// per-tick contention resolution performs no allocations.
	starts   []float64
	collided []bool
	order    []int32

	// sniffer callbacks observe every delivered message (the paper's
	// TelosB sniffer nodes that log all network packets).
	sniffers []func(Message)

	// wake, when set, is invoked whenever the pending queue transitions
	// from empty to non-empty — the hook an on-demand scheduler uses to
	// step the network exactly on ticks where a producer transmitted.
	wake func()

	// Fault-injection state (see internal/fault), layered on top of the
	// configured medium: lossBoost adds to LossFloor during burst-loss
	// windows, and a jammed channel destroys every frame outright.
	lossBoost float64
	jammed    bool
}

var _ sim.Component = (*Network)(nil)

// NewNetwork builds a network over the given deterministic RNG.
func NewNetwork(cfg Config, rng *rand.Rand) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("wsn: rng must not be nil")
	}
	return &Network{
		cfg:   cfg,
		rng:   rng,
		nodes: make(map[NodeID]*Node),
		// The pending queue is bounded by the transmitters that share a
		// tick — a handful for the paper's building. Pre-sizing it keeps
		// the append-doubling warm-up (nil→1→2→4→8) out of the stepping
		// path, which the fleet pins allocation-free in steady state.
		pending: make([]pendingTx, 0, 16),
	}, nil
}

// Name implements sim.Component.
func (n *Network) Name() string { return "wsn.network" }

// Config returns the medium configuration.
func (n *Network) Config() Config { return n.cfg }

// AddNode registers a mote. Battery nodes get a fresh two-AA battery.
func (n *Network) AddNode(id NodeID, class PowerClass) (*Node, error) {
	if _, exists := n.nodes[id]; exists {
		return nil, fmt.Errorf("wsn: duplicate node %q", id)
	}
	node := &Node{id: id, class: class, net: n}
	if class == PowerBattery {
		node.battery = energy.NewTwoAA()
	} else {
		node.acSlot = n.acCount
		n.acCount++
	}
	n.nodes[id] = node
	return node, nil
}

// NodeCount returns the number of registered nodes.
func (n *Network) NodeCount() int { return len(n.nodes) }

// Subscribe registers a consumer callback for the given message types.
// This is the paper's consumer-side filtering: "All potential consumers
// fetch data messages from the wireless channel and filter out messages
// with undesired types."
func (n *Network) Subscribe(fn func(Message), types ...MsgType) {
	sub := subscription{fn: fn}
	for _, t := range types {
		if uint64(t) < 64 {
			sub.mask |= 1 << uint64(t)
		} else {
			if sub.wide == nil {
				sub.wide = make(map[MsgType]bool)
			}
			sub.wide[t] = true
		}
	}
	n.subs = append(n.subs, sub)
}

// SetWake installs a callback invoked when the pending queue becomes
// non-empty (once per tick, on the first Broadcast of that tick). The
// simulation core wires this to the engine's on-demand scheduling so the
// network is stepped exactly on the ticks where some producer ran —
// behaviourally identical to the former every-tick Step, which returned
// immediately when nothing was pending.
func (n *Network) SetWake(fn func()) { n.wake = fn }

// SetLossBoost adds p to the configured LossFloor for subsequent ticks
// (total clamped to [0, 1] at draw time). Fault plans use it for burst
// packet-loss windows; zero restores the configured floor bit-exactly.
func (n *Network) SetLossBoost(p float64) {
	if p < 0 {
		p = 0
	}
	n.lossBoost = p
}

// SetJammed switches the channel jam on or off. While jammed, every
// frame offered in a tick is destroyed before contention resolution —
// transmitters still pay their transmission energy, but nothing is
// delivered and no RNG draws are consumed.
func (n *Network) SetJammed(on bool) { n.jammed = on }

// AddSniffer registers a callback observing every delivered message.
func (n *Network) AddSniffer(fn func(Message)) {
	n.sniffers = append(n.sniffers, fn)
}

// Broadcast rejection reasons. These are fixed sentinel errors rather
// than formatted ones: Broadcast sits on the per-tick transmit path, and
// fmt.Errorf would allocate on every rejected packet (a depleted node
// keeps trying to transmit for the rest of the run).
var (
	// ErrNilNode reports a Broadcast from a nil node.
	ErrNilNode = errors.New("wsn: broadcast from nil node")
	// ErrUnregisteredNode reports a Broadcast from a node that does not
	// belong to this network.
	ErrUnregisteredNode = errors.New("wsn: broadcast from unregistered node")
	// ErrBatteryDepleted reports a Broadcast from a node whose battery
	// cannot pay the per-packet transmission energy.
	ErrBatteryDepleted = errors.New("wsn: broadcast from node with depleted battery")
)

// Broadcast enqueues a message from the node for transmission during the
// current tick. The per-packet transmission energy is drained from
// battery nodes immediately; a depleted battery cannot transmit.
func (n *Network) Broadcast(node *Node, msg Message) error {
	if node == nil {
		return ErrNilNode
	}
	// Nodes are only created by AddNode, so the back-pointer check is
	// equivalent to the former map lookup without the per-packet string
	// hashing.
	if node.net != n {
		return ErrUnregisteredNode
	}
	if node.battery != nil {
		if node.battery.Depleted() {
			return ErrBatteryDepleted
		}
		node.battery.Drain(energy.TxEnergyPerPacketJ)
	}
	node.seq++
	msg.Source = node.id
	msg.Seq = node.seq
	n.pending = append(n.pending, pendingTx{msg: msg, node: node})
	if len(n.pending) == 1 && n.wake != nil {
		n.wake()
	}
	return nil
}

// Stats returns the cumulative medium statistics.
func (n *Network) Stats() Stats { return n.stats }

// Step implements sim.Component: assigns channel-access offsets, resolves
// CSMA deferral and CCA-blind collisions, and delivers surviving packets
// to subscribers and sniffers.
//
//bzlint:hotpath
func (n *Network) Step(env *sim.Env) {
	if len(n.pending) == 0 {
		return
	}
	if n.jammed {
		n.stats.Sent += len(n.pending)
		n.stats.Jammed += len(n.pending)
		n.pending = n.pending[:0]
		return
	}
	tick := env.Dt()
	// Config fields and the RNG handle are hoisted to locals: every
	// rng/callback call below would otherwise force their reload from the
	// receiver, and the three passes touch them once or twice per packet.
	rng := n.rng
	airtime, blind, loss := n.cfg.AirtimeS, n.cfg.CCABlindS, n.cfg.LossFloor
	if n.lossBoost > 0 {
		if loss += n.lossBoost; loss > 1 {
			loss = 1
		}
	}

	// Offset assignment: AC nodes use staggered deterministic slots when
	// desync is on; everything else picks a uniform random offset (the
	// CSMA backoff draw). The slot width depends only on the tick length
	// and the AC population, so it is computed once per Step.
	desync := n.cfg.Desync && n.acCount > 0
	var slotWidth float64
	if desync {
		slotWidth = tick / float64(n.acCount)
	}
	for i := range n.pending {
		tx := &n.pending[i]
		if desync && tx.node.class == PowerAC {
			jitter := rng.Float64() * airtime * 0.1
			tx.offset = float64(tx.node.acSlot)*slotWidth + jitter
		} else {
			tx.offset = rng.Float64() * tick
		}
	}
	// Offsets are continuous RNG draws, so ties have probability zero and
	// any comparison sort yields the same total order. The sort permutes a
	// small index scratch rather than the pending entries themselves —
	// pendingTx is several words wide, and with a dozen contenders an
	// insertion sort of int32 indices beats the generic sort's struct
	// moves.
	order := n.scratchOrder(len(n.pending))
	for i := 1; i < len(order); i++ {
		oi := order[i]
		key := n.pending[oi].offset
		j := i - 1
		for j >= 0 && n.pending[order[j]].offset > key {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = oi
	}

	// CSMA deferral pass: a sender that finds the channel busy waits for
	// the tail of the ongoing frame plus a short random backoff — but only
	// if the ongoing frame started at least CCABlindS earlier; a frame
	// younger than the carrier-sense blind window is invisible, so the
	// sender transmits anyway and the collision pass below corrupts both.
	starts := n.scratchStarts(len(n.pending))
	busyUntil := -1.0
	lastStart := -1.0
	for i, oi := range order {
		start := n.pending[oi].offset
		if start < busyUntil && start-lastStart >= blind {
			start = busyUntil + rng.Float64()*0.002
		}
		starts[i] = start
		if end := start + airtime; end > busyUntil {
			busyUntil = end
		}
		lastStart = start
	}

	// Collision pass: consecutive starts within the CCA blind window
	// corrupt each other.
	collided := n.scratchCollided(len(n.pending))
	for i := 1; i < len(starts); i++ {
		if starts[i]-starts[i-1] < blind {
			collided[i] = true
			collided[i-1] = true
		}
	}

	for i, oi := range order {
		tx := &n.pending[oi]
		n.stats.Sent++
		if collided[i] {
			n.stats.Collided++
			continue
		}
		if loss > 0 && rng.Float64() < loss {
			n.stats.LostRandom++
			continue
		}
		n.stats.Delivered++
		n.stats.TotalDelayS += starts[i] - tx.offset + airtime
		for si := range n.subs {
			if s := &n.subs[si]; s.matches(tx.msg.Type) {
				s.fn(tx.msg)
			}
		}
		for _, sn := range n.sniffers {
			sn(tx.msg)
		}
	}
	n.pending = n.pending[:0]
}
