package wsn

import (
	"cmp"
	"fmt"
	"math/rand/v2"
	"slices"

	"bubblezero/internal/energy"
	"bubblezero/internal/sim"
)

// Config parameterises the radio medium.
type Config struct {
	// AirtimeS is the channel occupancy per frame: a maximum-length
	// 802.15.4 frame (133 bytes incl. PHY overhead) at 250 kbps is
	// ≈4.3 ms.
	AirtimeS float64
	// CCABlindS is the carrier-sense blind window: two senders starting
	// within it cannot hear each other and collide.
	CCABlindS float64
	// LossFloor is the independent per-packet loss probability from
	// non-collision causes (fading, interference).
	LossFloor float64
	// Desync staggers AC-device transmission offsets into deterministic
	// slots instead of random offsets — the paper's adaptive schedule for
	// ac-devices. Toggleable for the ablation benchmark.
	Desync bool
}

// DefaultConfig returns the BubbleZERO radio parameterisation.
func DefaultConfig() Config {
	return Config{
		AirtimeS:  0.0043,
		CCABlindS: 0.0005,
		LossFloor: 0.005,
		Desync:    true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.AirtimeS <= 0:
		return fmt.Errorf("wsn: AirtimeS must be > 0, got %v", c.AirtimeS)
	case c.CCABlindS < 0 || c.CCABlindS > c.AirtimeS:
		return fmt.Errorf("wsn: CCABlindS must be in [0, AirtimeS], got %v", c.CCABlindS)
	case c.LossFloor < 0 || c.LossFloor >= 1:
		return fmt.Errorf("wsn: LossFloor must be in [0, 1), got %v", c.LossFloor)
	}
	return nil
}

// Node is one mote on the network.
type Node struct {
	id      NodeID
	class   PowerClass
	battery *energy.Battery // nil for AC nodes
	seq     uint32
	acSlot  int      // desync slot index for AC nodes
	net     *Network // the registry that created this node (via AddNode)
}

// ID returns the node identifier.
func (n *Node) ID() NodeID { return n.id }

// Class returns the node power class.
func (n *Node) Class() PowerClass { return n.class }

// Battery returns the node battery (nil for AC nodes).
func (n *Node) Battery() *energy.Battery { return n.battery }

// Stats aggregates medium-level counters.
type Stats struct {
	Sent        int
	Delivered   int
	Collided    int
	LostRandom  int
	TotalDelayS float64
}

// DeliveryRate returns the fraction of sent packets delivered.
func (s Stats) DeliveryRate() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(s.Sent)
}

// AvgDelayS returns the mean channel-access delay of delivered packets.
func (s Stats) AvgDelayS() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return s.TotalDelayS / float64(s.Delivered)
}

// scratchStarts returns the reusable start-time buffer sized to k. Values
// are fully overwritten by the deferral pass, so no clearing is needed.
func (n *Network) scratchStarts(k int) []float64 {
	if cap(n.starts) < k {
		n.starts = make([]float64, k)
	}
	n.starts = n.starts[:k]
	return n.starts
}

// scratchCollided returns the reusable collision-flag buffer sized to k,
// cleared to false (the collision pass only ever sets flags).
func (n *Network) scratchCollided(k int) []bool {
	if cap(n.collided) < k {
		n.collided = make([]bool, k)
	}
	n.collided = n.collided[:k]
	for i := range n.collided {
		n.collided[i] = false
	}
	return n.collided
}

type pendingTx struct {
	msg    Message
	node   *Node
	offset float64 // intended start offset within the tick
}

type subscription struct {
	types map[MsgType]bool
	fn    func(Message)
}

// Network is the shared broadcast medium plus the node registry. It
// implements sim.Component; devices enqueue broadcasts during their own
// Step (scheduled before the network), and the network resolves contention
// and invokes subscriber callbacks during its Step.
type Network struct {
	cfg     Config
	rng     *rand.Rand
	nodes   map[NodeID]*Node
	acCount int
	pending []pendingTx
	subs    []subscription
	stats   Stats

	// starts and collided are Step's scratch buffers, owned by the network
	// and regrown only when the pending set outgrows them, so the per-tick
	// contention resolution performs no allocations.
	starts   []float64
	collided []bool

	// sniffer callbacks observe every delivered message (the paper's
	// TelosB sniffer nodes that log all network packets).
	sniffers []func(Message)
}

var _ sim.Component = (*Network)(nil)

// NewNetwork builds a network over the given deterministic RNG.
func NewNetwork(cfg Config, rng *rand.Rand) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("wsn: rng must not be nil")
	}
	return &Network{
		cfg:   cfg,
		rng:   rng,
		nodes: make(map[NodeID]*Node),
	}, nil
}

// Name implements sim.Component.
func (n *Network) Name() string { return "wsn.network" }

// Config returns the medium configuration.
func (n *Network) Config() Config { return n.cfg }

// AddNode registers a mote. Battery nodes get a fresh two-AA battery.
func (n *Network) AddNode(id NodeID, class PowerClass) (*Node, error) {
	if _, exists := n.nodes[id]; exists {
		return nil, fmt.Errorf("wsn: duplicate node %q", id)
	}
	node := &Node{id: id, class: class, net: n}
	if class == PowerBattery {
		node.battery = energy.NewTwoAA()
	} else {
		node.acSlot = n.acCount
		n.acCount++
	}
	n.nodes[id] = node
	return node, nil
}

// NodeCount returns the number of registered nodes.
func (n *Network) NodeCount() int { return len(n.nodes) }

// Subscribe registers a consumer callback for the given message types.
// This is the paper's consumer-side filtering: "All potential consumers
// fetch data messages from the wireless channel and filter out messages
// with undesired types."
func (n *Network) Subscribe(fn func(Message), types ...MsgType) {
	set := make(map[MsgType]bool, len(types))
	for _, t := range types {
		set[t] = true
	}
	n.subs = append(n.subs, subscription{types: set, fn: fn})
}

// AddSniffer registers a callback observing every delivered message.
func (n *Network) AddSniffer(fn func(Message)) {
	n.sniffers = append(n.sniffers, fn)
}

// Broadcast enqueues a message from the node for transmission during the
// current tick. The per-packet transmission energy is drained from
// battery nodes immediately; a depleted battery cannot transmit.
func (n *Network) Broadcast(node *Node, msg Message) error {
	if node == nil {
		return fmt.Errorf("wsn: broadcast from nil node")
	}
	// Nodes are only created by AddNode, so the back-pointer check is
	// equivalent to the former map lookup without the per-packet string
	// hashing.
	if node.net != n {
		return fmt.Errorf("wsn: broadcast from unregistered node %q", node.id)
	}
	if node.battery != nil {
		if node.battery.Depleted() {
			return fmt.Errorf("wsn: node %q battery depleted", node.id)
		}
		node.battery.Drain(energy.TxEnergyPerPacketJ)
	}
	node.seq++
	msg.Source = node.id
	msg.Seq = node.seq
	n.pending = append(n.pending, pendingTx{msg: msg, node: node})
	return nil
}

// Stats returns the cumulative medium statistics.
func (n *Network) Stats() Stats { return n.stats }

// Step implements sim.Component: assigns channel-access offsets, resolves
// CSMA deferral and CCA-blind collisions, and delivers surviving packets
// to subscribers and sniffers.
func (n *Network) Step(env *sim.Env) {
	if len(n.pending) == 0 {
		return
	}
	tick := env.Dt()

	// Offset assignment: AC nodes use staggered deterministic slots when
	// desync is on; everything else picks a uniform random offset (the
	// CSMA backoff draw).
	for i := range n.pending {
		tx := &n.pending[i]
		if n.cfg.Desync && tx.node.class == PowerAC && n.acCount > 0 {
			slotWidth := tick / float64(n.acCount)
			jitter := n.rng.Float64() * n.cfg.AirtimeS * 0.1
			tx.offset = float64(tx.node.acSlot)*slotWidth + jitter
		} else {
			tx.offset = n.rng.Float64() * tick
		}
	}
	// Offsets are continuous RNG draws, so ties have probability zero and
	// the sorted order is the same total order sort.Slice produced; the
	// comparison-function sort avoids the reflection-based swap path and
	// its per-call closure allocation.
	slices.SortFunc(n.pending, func(a, b pendingTx) int {
		return cmp.Compare(a.offset, b.offset)
	})

	// CSMA deferral pass: a sender that finds the channel busy waits for
	// the tail of the ongoing frame plus a short random backoff — but only
	// if the ongoing frame started at least CCABlindS earlier; a frame
	// younger than the carrier-sense blind window is invisible, so the
	// sender transmits anyway and the collision pass below corrupts both.
	starts := n.scratchStarts(len(n.pending))
	busyUntil := -1.0
	lastStart := -1.0
	for i, tx := range n.pending {
		start := tx.offset
		if start < busyUntil && start-lastStart >= n.cfg.CCABlindS {
			start = busyUntil + n.rng.Float64()*0.002
		}
		starts[i] = start
		if end := start + n.cfg.AirtimeS; end > busyUntil {
			busyUntil = end
		}
		lastStart = start
	}

	// Collision pass: consecutive starts within the CCA blind window
	// corrupt each other.
	collided := n.scratchCollided(len(n.pending))
	for i := 1; i < len(starts); i++ {
		if starts[i]-starts[i-1] < n.cfg.CCABlindS {
			collided[i] = true
			collided[i-1] = true
		}
	}

	for i, tx := range n.pending {
		n.stats.Sent++
		if collided[i] {
			n.stats.Collided++
			continue
		}
		if n.cfg.LossFloor > 0 && n.rng.Float64() < n.cfg.LossFloor {
			n.stats.LostRandom++
			continue
		}
		n.stats.Delivered++
		n.stats.TotalDelayS += starts[i] - tx.offset + n.cfg.AirtimeS
		for _, s := range n.subs {
			if s.types[tx.msg.Type] {
				s.fn(tx.msg)
			}
		}
		for _, sn := range n.sniffers {
			sn(tx.msg)
		}
	}
	n.pending = n.pending[:0]
}
