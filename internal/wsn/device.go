package wsn

import (
	"fmt"

	"bubblezero/internal/adaptive"
	"bubblezero/internal/energy"
	"bubblezero/internal/sim"
)

// TxMode selects how a sensor device schedules its transmissions.
type TxMode int

// Transmission modes: BT-ADPT is the paper's adaptive scheme; Fixed is the
// conservative baseline that transmits every sampling period (§V-C's
// "Fixed scheme which conservatively sets T_snd to be the same as T_spl").
const (
	ModeAdaptive TxMode = iota + 1
	ModeFixed
)

// SensorDevice is a mote wired to one sensor channel: it samples the
// plant every T_spl seconds via the read callback, runs either the
// adaptive scheduler or the fixed schedule, and broadcasts typed readings.
// Battery devices pay idle, sampling, and transmission energy.
type SensorDevice struct {
	node *Node
	net  *Network
	typ  MsgType
	zone int
	read func() float64
	mode TxMode

	sched       *adaptive.Scheduler
	tsplS       float64
	sinceSample float64

	// onSample observes every sampling event (for Tsnd traces); onSend
	// observes transmissions.
	onSample func(value, tsndS float64, transition bool)
	onSend   func(value float64)
}

var _ sim.Component = (*SensorDevice)(nil)

// SensorDeviceConfig assembles a SensorDevice.
type SensorDeviceConfig struct {
	// Node is the registered mote this device runs on.
	Node *Node
	// Network is the shared medium.
	Network *Network
	// Type is the message type the device publishes.
	Type MsgType
	// Zone is the subspace the reading concerns (-1 if not zonal).
	Zone int
	// Read returns the current true sensor reading.
	Read func() float64
	// Mode selects adaptive or fixed scheduling.
	Mode TxMode
	// TsplS is the sampling period in seconds.
	TsplS float64
	// Scheduler overrides the default adaptive scheduler configuration
	// (optional; ignored in fixed mode).
	Scheduler *adaptive.Scheduler
}

// NewSensorDevice validates and builds a device.
func NewSensorDevice(cfg SensorDeviceConfig) (*SensorDevice, error) {
	if cfg.Node == nil || cfg.Network == nil {
		return nil, fmt.Errorf("wsn: sensor device needs node and network")
	}
	if cfg.Read == nil {
		return nil, fmt.Errorf("wsn: sensor device %q needs a read function", cfg.Node.ID())
	}
	if cfg.TsplS <= 0 {
		return nil, fmt.Errorf("wsn: sensor device %q TsplS must be > 0", cfg.Node.ID())
	}
	d := &SensorDevice{
		node:  cfg.Node,
		net:   cfg.Network,
		typ:   cfg.Type,
		zone:  cfg.Zone,
		read:  cfg.Read,
		mode:  cfg.Mode,
		tsplS: cfg.TsplS,
	}
	switch cfg.Mode {
	case ModeAdaptive:
		d.sched = cfg.Scheduler
		if d.sched == nil {
			s, err := adaptive.NewScheduler(adaptive.DefaultConfig(cfg.TsplS))
			if err != nil {
				return nil, err
			}
			d.sched = s
		}
	case ModeFixed:
		// Fixed mode sends on every sample; no scheduler needed.
	default:
		return nil, fmt.Errorf("wsn: sensor device %q has invalid mode %d", cfg.Node.ID(), cfg.Mode)
	}
	return d, nil
}

// Name implements sim.Component.
func (d *SensorDevice) Name() string {
	return fmt.Sprintf("wsn.sensor.%s", d.node.ID())
}

// Node returns the underlying mote.
func (d *SensorDevice) Node() *Node { return d.node }

// Scheduler returns the adaptive scheduler (nil in fixed mode).
func (d *SensorDevice) Scheduler() *adaptive.Scheduler { return d.sched }

// TsndS returns the transmission period currently in effect.
func (d *SensorDevice) TsndS() float64 {
	if d.sched != nil {
		return d.sched.TsndS()
	}
	return d.tsplS
}

// OnSample registers a callback invoked at every sampling event with the
// reading, the T_snd in effect, and whether a transition was flagged.
func (d *SensorDevice) OnSample(fn func(value, tsndS float64, transition bool)) {
	d.onSample = fn
}

// OnSend registers a callback invoked at every transmission.
func (d *SensorDevice) OnSend(fn func(value float64)) { d.onSend = fn }

// Step implements sim.Component.
func (d *SensorDevice) Step(env *sim.Env) {
	dt := env.Dt()
	if b := d.node.Battery(); b != nil {
		b.Drain(energy.IdlePowerW * dt)
	}
	d.sinceSample += dt
	for d.sinceSample >= d.tsplS {
		d.sinceSample -= d.tsplS
		d.sampleOnce()
	}
}

func (d *SensorDevice) sampleOnce() {
	b := d.node.Battery()
	if b != nil {
		if b.Depleted() {
			return
		}
		b.Drain(energy.SampleEnergyJ)
	}
	value := d.read()

	var send bool
	var tsnd float64
	var transition bool
	if d.mode == ModeAdaptive {
		ev := d.sched.OnSample(value)
		send = ev.Send
		tsnd = ev.TsndS
		transition = ev.Transition
	} else {
		send = true
		tsnd = d.tsplS
	}
	if d.onSample != nil {
		d.onSample(value, tsnd, transition)
	}
	if !send {
		return
	}
	msg := Message{Type: d.typ, Zone: d.zone, Value: value}
	if err := d.net.Broadcast(d.node, msg); err != nil {
		return // depleted battery: silently offline, like a real mote
	}
	if d.onSend != nil {
		d.onSend(value)
	}
}

// PeriodicBroadcaster is an AC-powered board publishing a processed value
// (e.g. Control-C-1's T_supp) on a fixed period.
type PeriodicBroadcaster struct {
	node    *Node
	net     *Network
	typ     MsgType
	zone    int
	read    func() float64
	periodS float64
	since   float64
}

var _ sim.Component = (*PeriodicBroadcaster)(nil)

// NewPeriodicBroadcaster builds a periodic publisher.
func NewPeriodicBroadcaster(node *Node, net *Network, typ MsgType, zone int,
	periodS float64, read func() float64) (*PeriodicBroadcaster, error) {
	if node == nil || net == nil || read == nil {
		return nil, fmt.Errorf("wsn: periodic broadcaster needs node, network, and read fn")
	}
	if periodS <= 0 {
		return nil, fmt.Errorf("wsn: periodic broadcaster %q period must be > 0", node.ID())
	}
	return &PeriodicBroadcaster{
		node: node, net: net, typ: typ, zone: zone, periodS: periodS, read: read,
		since: periodS, // first broadcast on the first tick
	}, nil
}

// Name implements sim.Component.
func (p *PeriodicBroadcaster) Name() string {
	return fmt.Sprintf("wsn.periodic.%s", p.node.ID())
}

// Step implements sim.Component.
func (p *PeriodicBroadcaster) Step(env *sim.Env) {
	p.since += env.Dt()
	if p.since < p.periodS {
		return
	}
	p.since = 0
	_ = p.net.Broadcast(p.node, Message{Type: p.typ, Zone: p.zone, Value: p.read()})
}
