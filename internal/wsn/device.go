package wsn

import (
	"fmt"

	"bubblezero/internal/adaptive"
	"bubblezero/internal/energy"
	"bubblezero/internal/sim"
)

// TxMode selects how a sensor device schedules its transmissions.
type TxMode int

// Transmission modes: BT-ADPT is the paper's adaptive scheme; Fixed is the
// conservative baseline that transmits every sampling period (§V-C's
// "Fixed scheme which conservatively sets T_snd to be the same as T_spl").
const (
	ModeAdaptive TxMode = iota + 1
	ModeFixed
)

// SensorDevice is a mote wired to one sensor channel: it samples the
// plant every T_spl seconds via the read callback, runs either the
// adaptive scheduler or the fixed schedule, and broadcasts typed readings.
// Battery devices pay idle, sampling, and transmission energy.
type SensorDevice struct {
	node *Node
	net  *Network
	typ  MsgType
	zone int
	read func() float64
	mode TxMode

	sched       *adaptive.Scheduler
	tsplS       float64
	sinceSample float64

	// onSample observes every sampling event (for Tsnd traces); onSend
	// observes transmissions.
	onSample func(value, tsndS float64, transition bool)
	onSend   func(value float64)

	// Fault-injection state (see internal/fault). A stuck channel latches
	// the first reading taken after the fault lands; a drifting channel
	// accumulates driftPerS units of bias per second of simulated time,
	// advanced per sample so the fault-free sampling path is untouched.
	stuck     bool
	stuckHeld bool
	stuckVal  float64
	driftPerS float64
	driftBias float64
}

var _ sim.Cadenced = (*SensorDevice)(nil)

// SensorDeviceConfig assembles a SensorDevice.
type SensorDeviceConfig struct {
	// Node is the registered mote this device runs on.
	Node *Node
	// Network is the shared medium.
	Network *Network
	// Type is the message type the device publishes.
	Type MsgType
	// Zone is the subspace the reading concerns (-1 if not zonal).
	Zone int
	// Read returns the current true sensor reading.
	Read func() float64
	// Mode selects adaptive or fixed scheduling.
	Mode TxMode
	// TsplS is the sampling period in seconds.
	TsplS float64
	// Scheduler overrides the default adaptive scheduler configuration
	// (optional; ignored in fixed mode).
	Scheduler *adaptive.Scheduler
}

// NewSensorDevice validates and builds a device.
func NewSensorDevice(cfg SensorDeviceConfig) (*SensorDevice, error) {
	if cfg.Node == nil || cfg.Network == nil {
		return nil, fmt.Errorf("wsn: sensor device needs node and network")
	}
	if cfg.Read == nil {
		return nil, fmt.Errorf("wsn: sensor device %q needs a read function", cfg.Node.ID())
	}
	if cfg.TsplS <= 0 {
		return nil, fmt.Errorf("wsn: sensor device %q TsplS must be > 0", cfg.Node.ID())
	}
	d := &SensorDevice{
		node:  cfg.Node,
		net:   cfg.Network,
		typ:   cfg.Type,
		zone:  cfg.Zone,
		read:  cfg.Read,
		mode:  cfg.Mode,
		tsplS: cfg.TsplS,
	}
	switch cfg.Mode {
	case ModeAdaptive:
		d.sched = cfg.Scheduler
		if d.sched == nil {
			s, err := adaptive.NewScheduler(adaptive.DefaultConfig(cfg.TsplS))
			if err != nil {
				return nil, err
			}
			d.sched = s
		}
	case ModeFixed:
		// Fixed mode sends on every sample; no scheduler needed.
	default:
		return nil, fmt.Errorf("wsn: sensor device %q has invalid mode %d", cfg.Node.ID(), cfg.Mode)
	}
	return d, nil
}

// Name implements sim.Component.
func (d *SensorDevice) Name() string {
	return fmt.Sprintf("wsn.sensor.%s", d.node.ID())
}

// Node returns the underlying mote.
func (d *SensorDevice) Node() *Node { return d.node }

// Scheduler returns the adaptive scheduler (nil in fixed mode).
func (d *SensorDevice) Scheduler() *adaptive.Scheduler { return d.sched }

// TsndS returns the transmission period currently in effect.
func (d *SensorDevice) TsndS() float64 {
	if d.sched != nil {
		return d.sched.TsndS()
	}
	return d.tsplS
}

// OnSample registers a callback invoked at every sampling event with the
// reading, the T_snd in effect, and whether a transition was flagged.
func (d *SensorDevice) OnSample(fn func(value, tsndS float64, transition bool)) {
	d.onSample = fn
}

// OnSend registers a callback invoked at every transmission.
func (d *SensorDevice) OnSend(fn func(value float64)) { d.onSend = fn }

// SetStuck latches (on) or releases (off) the sensor channel. While
// stuck, every sample repeats the first reading taken after the latch —
// the classic failure of a wedged ADC or a detached probe. Releasing
// clears the latch so the next sample reads the live plant again.
func (d *SensorDevice) SetStuck(on bool) {
	d.stuck = on
	if !on {
		d.stuckHeld = false
	}
}

// SetDrift sets the channel's calibration drift rate in sensor units per
// second of simulated time. A rate of zero clears the accumulated bias —
// fault clearance models the mote being recalibrated or swapped.
func (d *SensorDevice) SetDrift(ratePerS float64) {
	d.driftPerS = ratePerS
	//bzlint:allow floateq zero is the documented clear-drift sentinel, set literally by fault clearance
	if ratePerS == 0 {
		d.driftBias = 0
	}
}

// Step implements sim.Component.
func (d *SensorDevice) Step(env *sim.Env) { d.StepN(env, 1) }

// StepN implements sim.Cadenced: n consecutive ticks of idle battery
// draw and sampling-accumulator bookkeeping, bit-identical to n Step
// calls. The idle drain stays one Battery.Drain per tick — float
// addition is not associative, so batching k drains into one would
// change the battery trajectory.
//
//bzlint:hotpath
func (d *SensorDevice) StepN(env *sim.Env, n uint64) {
	dt := env.Dt()
	b := d.node.Battery()
	idle := energy.IdlePowerW * dt
	for ; n > 0; n-- {
		if b != nil {
			b.Drain(idle)
		}
		d.sinceSample += dt
		for d.sinceSample >= d.tsplS {
			d.sinceSample -= d.tsplS
			d.sampleOnce()
		}
	}
}

// NextDue implements sim.Cadenced by replaying the sampling accumulator's
// exact float arithmetic, so the predicted tick matches per-tick polling
// bit-for-bit even when dt is not exactly representable (e.g. a 100 ms
// step). A stalled accumulator (dt below the float resolution of the
// period — a configuration where per-tick polling would never fire
// either) parks the device effectively forever.
func (d *SensorDevice) NextDue(dtS float64) uint64 {
	return nextAccumDue(d.sinceSample, dtS, d.tsplS)
}

// neverDue is the wheel distance used for a schedule that cannot fire:
// far enough to outlast any practical run, small enough that adding it to
// the current tick cannot overflow.
const neverDue = uint64(1) << 62

// nextAccumDue replays `since += dt` until it crosses period, returning
// the number of ticks until the crossing.
func nextAccumDue(since, dtS, periodS float64) uint64 {
	var n uint64
	for {
		n++
		next := since + dtS
		if next >= periodS {
			return n
		}
		//bzlint:allow floateq float fixed-point stall guard: dt too small to advance the accumulator
		if next == since {
			return neverDue
		}
		since = next
	}
}

func (d *SensorDevice) sampleOnce() {
	b := d.node.Battery()
	if b != nil {
		if b.Depleted() {
			return
		}
		b.Drain(energy.SampleEnergyJ)
	}
	value := d.read()
	if d.stuck {
		if !d.stuckHeld {
			d.stuckHeld, d.stuckVal = true, value
		}
		value = d.stuckVal
	}
	//bzlint:allow floateq zero is the no-drift sentinel, set literally by SetDrift
	if d.driftPerS != 0 {
		// One sample per T_spl, so per-sample accumulation integrates the
		// rate over simulated time without touching the per-tick loop.
		d.driftBias += d.driftPerS * d.tsplS
		value += d.driftBias
	}

	var send bool
	var tsnd float64
	var transition bool
	if d.mode == ModeAdaptive {
		ev := d.sched.OnSample(value)
		send = ev.Send
		tsnd = ev.TsndS
		transition = ev.Transition
	} else {
		send = true
		tsnd = d.tsplS
	}
	if d.onSample != nil {
		d.onSample(value, tsnd, transition)
	}
	if !send {
		return
	}
	msg := Message{Type: d.typ, Zone: d.zone, Value: value}
	if err := d.net.Broadcast(d.node, msg); err != nil {
		return // depleted battery: silently offline, like a real mote
	}
	if d.onSend != nil {
		d.onSend(value)
	}
}

// PeriodicBroadcaster is an AC-powered board publishing a processed value
// (e.g. Control-C-1's T_supp) on a fixed period.
type PeriodicBroadcaster struct {
	node    *Node
	net     *Network
	typ     MsgType
	zone    int
	read    func() float64
	periodS float64
	since   float64
}

var _ sim.Cadenced = (*PeriodicBroadcaster)(nil)

// NewPeriodicBroadcaster builds a periodic publisher.
func NewPeriodicBroadcaster(node *Node, net *Network, typ MsgType, zone int,
	periodS float64, read func() float64) (*PeriodicBroadcaster, error) {
	if node == nil || net == nil || read == nil {
		return nil, fmt.Errorf("wsn: periodic broadcaster needs node, network, and read fn")
	}
	if periodS <= 0 {
		return nil, fmt.Errorf("wsn: periodic broadcaster %q period must be > 0", node.ID())
	}
	return &PeriodicBroadcaster{
		node: node, net: net, typ: typ, zone: zone, periodS: periodS, read: read,
		since: periodS, // first broadcast on the first tick
	}, nil
}

// Name implements sim.Component.
func (p *PeriodicBroadcaster) Name() string {
	return fmt.Sprintf("wsn.periodic.%s", p.node.ID())
}

// Step implements sim.Component.
func (p *PeriodicBroadcaster) Step(env *sim.Env) { p.StepN(env, 1) }

// StepN implements sim.Cadenced: n ticks of period accumulation with at
// most one broadcast per tick, exactly as n Step calls would behave.
//
//bzlint:hotpath
func (p *PeriodicBroadcaster) StepN(env *sim.Env, n uint64) {
	dt := env.Dt()
	for ; n > 0; n-- {
		p.since += dt
		if p.since >= p.periodS {
			p.since = 0
			_ = p.net.Broadcast(p.node, Message{Type: p.typ, Zone: p.zone, Value: p.read()})
		}
	}
}

// NextDue implements sim.Cadenced (see SensorDevice.NextDue).
func (p *PeriodicBroadcaster) NextDue(dtS float64) uint64 {
	return nextAccumDue(p.since, dtS, p.periodS)
}
