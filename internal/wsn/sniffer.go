package wsn

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Sniffer is the analysis instrument the paper's methodology relies on
// (§V: "We install TelosB based sniffer nodes to collect all network
// packets and log all control data with time stamps, based on which we
// conduct full analysis on the system performance"). It observes every
// delivered frame, optionally streams a CSV log, and keeps per-type and
// per-source statistics including inter-arrival times.
type Sniffer struct {
	now func() time.Time
	w   io.Writer

	total     int
	byType    map[MsgType]int
	bySource  map[NodeID]int
	lastSeen  map[MsgType]time.Time
	interSum  map[MsgType]float64
	interSumQ map[MsgType]float64
	interN    map[MsgType]int

	start   time.Time
	started bool
	lastAt  time.Time

	writeErr error
}

// NewSniffer builds a sniffer. now supplies timestamps (usually the
// simulation clock); w, if non-nil, receives one CSV row per packet.
func NewSniffer(now func() time.Time, w io.Writer) (*Sniffer, error) {
	if now == nil {
		return nil, fmt.Errorf("wsn: sniffer needs a clock")
	}
	s := &Sniffer{
		now:       now,
		w:         w,
		byType:    make(map[MsgType]int),
		bySource:  make(map[NodeID]int),
		lastSeen:  make(map[MsgType]time.Time),
		interSum:  make(map[MsgType]float64),
		interSumQ: make(map[MsgType]float64),
		interN:    make(map[MsgType]int),
	}
	if w != nil {
		if _, err := fmt.Fprintln(w, "time,source,type,zone,seq,value"); err != nil {
			return nil, fmt.Errorf("wsn: sniffer header: %w", err)
		}
	}
	return s, nil
}

// Attach registers the sniffer on a network.
func (s *Sniffer) Attach(n *Network) {
	n.AddSniffer(s.observe)
}

// observe records one delivered frame.
func (s *Sniffer) observe(m Message) {
	at := s.now()
	if !s.started {
		s.start = at
		s.started = true
	}
	s.lastAt = at
	s.total++
	s.byType[m.Type]++
	s.bySource[m.Source]++
	if last, ok := s.lastSeen[m.Type]; ok {
		d := at.Sub(last).Seconds()
		s.interSum[m.Type] += d
		s.interSumQ[m.Type] += d * d
		s.interN[m.Type]++
	}
	s.lastSeen[m.Type] = at

	if s.w != nil && s.writeErr == nil {
		_, s.writeErr = fmt.Fprintf(s.w, "%s,%s,%s,%d,%d,%.4f\n",
			at.Format(time.RFC3339), m.Source, m.Type, m.Zone, m.Seq, m.Value)
	}
}

// Err returns the first log-write error, if any.
func (s *Sniffer) Err() error { return s.writeErr }

// Total returns the number of observed packets.
func (s *Sniffer) Total() int { return s.total }

// TypeCount returns the packets seen of one type.
func (s *Sniffer) TypeCount(t MsgType) int { return s.byType[t] }

// SourceCount returns the packets seen from one node.
func (s *Sniffer) SourceCount(id NodeID) int { return s.bySource[id] }

// InterArrival returns the mean and standard deviation (seconds) of the
// gaps between consecutive packets of one type, and how many gaps were
// observed. The mean inter-arrival of an adaptive sensor's type is the
// observable version of its T_snd.
func (s *Sniffer) InterArrival(t MsgType) (mean, std float64, n int) {
	n = s.interN[t]
	if n == 0 {
		return 0, 0, 0
	}
	mean = s.interSum[t] / float64(n)
	variance := s.interSumQ[t]/float64(n) - mean*mean
	if variance > 0 {
		std = math.Sqrt(variance)
	}
	return mean, std, n
}

// Rate returns the overall observed packet rate in packets/second.
func (s *Sniffer) Rate() float64 {
	if !s.started {
		return 0
	}
	elapsed := s.lastAt.Sub(s.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(s.total) / elapsed
}

// Summary renders the per-type table.
func (s *Sniffer) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sniffer: %d packets, %.2f pkt/s overall\n", s.total, s.Rate())
	types := make([]MsgType, 0, len(s.byType))
	//bzlint:ordered keys are collected and sorted before any ordered use
	for t := range s.byType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	b.WriteString("  type          packets  mean gap(s)  std(s)\n")
	for _, t := range types {
		mean, std, _ := s.InterArrival(t)
		fmt.Fprintf(&b, "  %-12s  %7d      %7.1f  %6.1f\n", t, s.byType[t], mean, std)
	}
	return b.String()
}
