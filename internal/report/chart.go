// Package report renders experiment results as a self-contained markdown
// report with ASCII charts — the repository's equivalent of the paper's
// figure pages, regenerable with one command
// (cmd/experiments -report report.md).
package report

import (
	"fmt"
	"math"
	"strings"

	"bubblezero/internal/trace"
)

// Chart renders a time series as an ASCII line chart of the given width
// (columns) and height (rows). The series is resampled column-wise by
// averaging; the y-axis is annotated with the min and max.
func Chart(s *trace.Series, width, height int) string {
	pts := s.Points()
	if len(pts) == 0 || width < 2 || height < 2 {
		return "(no data)\n"
	}

	// Column-wise resample.
	cols := make([]float64, width)
	counts := make([]int, width)
	t0 := pts[0].At
	span := pts[len(pts)-1].At.Sub(t0).Seconds()
	if span <= 0 {
		span = 1
	}
	for _, p := range pts {
		c := int(p.At.Sub(t0).Seconds() / span * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		cols[c] += p.Value
		counts[c]++
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	last := pts[0].Value
	for c := range cols {
		if counts[c] > 0 {
			cols[c] /= float64(counts[c])
			last = cols[c]
		} else {
			cols[c] = last // carry forward across empty columns
		}
		if cols[c] < lo {
			lo = cols[c]
		}
		if cols[c] > hi {
			hi = cols[c]
		}
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c, v := range cols {
		r := int((hi - v) / (hi - lo) * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		grid[r][c] = '*'
	}

	var b strings.Builder
	for r, row := range grid {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%8.2f |%s\n", hi, string(row))
		case height - 1:
			fmt.Fprintf(&b, "%8.2f |%s\n", lo, string(row))
		default:
			fmt.Fprintf(&b, "         |%s\n", string(row))
		}
	}
	fmt.Fprintf(&b, "          %s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "          %-*s%s\n", width-8, s.Name(), "time →")
	return b.String()
}

// BarChart renders label/value pairs as horizontal bars scaled to the
// largest value.
func BarChart(labels []string, values []float64, width int) string {
	if len(labels) != len(values) || len(labels) == 0 || width < 2 {
		return "(no data)\n"
	}
	maxV := math.Inf(-1)
	maxLabel := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	var b strings.Builder
	for i, v := range values {
		n := int(v / maxV * float64(width))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%-*s | %s %.2f\n", maxLabel, labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}

// CDFChart renders an empirical CDF as rows of cumulative probability.
func CDFChart(xs, ps []float64, width int) string {
	if len(xs) == 0 || len(xs) != len(ps) || width < 2 {
		return "(no data)\n"
	}
	var b strings.Builder
	for i := range xs {
		n := int(ps[i] * float64(width))
		fmt.Fprintf(&b, "%7.0fs | %s %.2f\n", xs[i], strings.Repeat("#", n), ps[i])
	}
	return b.String()
}
