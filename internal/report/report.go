package report

import (
	"context"
	"fmt"
	"io"
	"time"

	"bubblezero/internal/experiments"
	"bubblezero/internal/runner"
)

// Generate runs the full evaluation suite and writes a markdown report:
// every figure's headline numbers next to the paper's, with ASCII charts
// of the key series. hours controls the networking-scenario length (the
// paper uses five). Sections are computed concurrently through the
// Default experiment suite — Figures 12–15 share a single memoized
// scenario simulation — and written in the fixed section order.
func Generate(ctx context.Context, seed uint64, hours float64, w io.Writer) error {
	return GenerateWith(ctx, experiments.Default, seed, hours, w)
}

// GenerateWith is Generate against an explicit suite, so callers control
// the worker count and scenario-cache lifetime.
func GenerateWith(ctx context.Context, suite *experiments.Suite, seed uint64, hours float64, w io.Writer) error {
	d := time.Duration(hours * float64(time.Hour))

	// Phase 1: compute every section concurrently. Each job writes its own
	// result slot; the scenario cache deduplicates the Figures 12–15
	// workload down to one simulation.
	var (
		fig10 *experiments.Fig10Result
		fig11 *experiments.Fig11Result
		fig12 *experiments.Fig12Result
		fig13 *experiments.Fig13Result
		fig14 *experiments.Fig14Result
		fig15 *experiments.Fig15Result
		audit *experiments.ExergyAuditResult
		sweep []experiments.SupplyTempPoint
		nc    *experiments.NoCouplingResult
		ds    *experiments.DesyncResult
	)
	section := func(name string, fn func(ctx context.Context) error) runner.Job {
		return func(ctx context.Context) error {
			if err := fn(ctx); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			return nil
		}
	}
	err := suite.Pool().Run(ctx,
		section("fig10", func(ctx context.Context) (err error) {
			fig10, err = experiments.Fig10(ctx, seed)
			return
		}),
		section("fig11", func(ctx context.Context) (err error) {
			fig11, err = experiments.Fig11(ctx, seed)
			return
		}),
		section("fig12", func(ctx context.Context) (err error) {
			fig12, err = suite.Fig12(ctx, seed, d, nil)
			return
		}),
		section("fig13", func(ctx context.Context) (err error) {
			fig13, err = suite.Fig13(ctx, seed, d)
			return
		}),
		section("fig14", func(ctx context.Context) (err error) {
			fig14, err = suite.Fig14(ctx, seed, d)
			return
		}),
		section("fig15", func(ctx context.Context) (err error) {
			fig15, err = suite.Fig15(ctx, seed, d)
			return
		}),
		section("exergy audit", func(ctx context.Context) (err error) {
			audit, err = experiments.ExergyAudit(ctx, seed)
			return
		}),
		section("supply sweep", func(ctx context.Context) (err error) {
			sweep, err = suite.AblationSupplyTemp(ctx, seed, nil)
			return
		}),
		section("no-coupling", func(ctx context.Context) (err error) {
			nc, err = suite.AblationNoCoupling(ctx, seed)
			return
		}),
		section("desync", func(ctx context.Context) (err error) {
			ds, err = suite.AblationDesync(ctx, seed, 30*time.Minute)
			return
		}),
	)
	if err != nil {
		return err
	}

	// Phase 2: write the sections in the fixed report order.
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("# BubbleZERO — regenerated evaluation (seed %d)\n\n", seed); err != nil {
		return err
	}
	if err := p("## Figure 10 — overall HVAC performance\n\n%s\n\n", fig10.Summary()); err != nil {
		return err
	}
	if err := p("```\n%s```\n\n```\n%s```\n\n",
		Chart(fig10.Recorder.Series("temp.avg"), 72, 10),
		Chart(fig10.Recorder.Series("dew.avg"), 72, 10)); err != nil {
		return err
	}
	if err := p("## Figure 11 — energy efficiency (COP)\n\n%s\n\n```\n%s```\n\n",
		fig11.Summary(),
		BarChart(
			[]string{"AirCon", "Bubble-C", "Bubble-V", "BubbleZERO"},
			[]float64{fig11.AirCon, fig11.BubbleC, fig11.BubbleV, fig11.BubbleZERO},
			48)); err != nil {
		return err
	}
	if err := p("## Figure 12 — choosing the right N\n\n```\n%s```\n\n", fig12.Summary()); err != nil {
		return err
	}
	if err := p("## Figure 13 — accuracy as time elapses\n\n%s\n\n```\n%s```\n\n",
		fig13.Summary(), Chart(fig13.Accuracy, 72, 8)); err != nil {
		return err
	}
	if err := p("## Figure 14 — T_snd adaptation\n\n%s\n\n```\n%s```\n\n",
		fig14.Summary(), Chart(fig14.Tsnd, 72, 8)); err != nil {
		return err
	}
	if err := p("## Figure 15 — T_snd distribution and lifetime\n\n%s\n\n```\n%s```\n\n",
		fig15.Summary(), CDFChart(fig15.CDFXs, fig15.CDFPs, 48)); err != nil {
		return err
	}
	if err := p("## Exergy audit\n\n```\n%s```\n\n", audit.Summary()); err != nil {
		return err
	}
	if err := p("## Ablations\n\n```\n%s```\n\n"+
		"- condensation guard: %.0f s wet (guarded) vs %.0f s (unguarded)\n"+
		"- AC desync: %d collisions vs %d without\n",
		experiments.SummarizeSupplyTemp(sweep),
		nc.GuardedCondensationS, nc.UnguardedCondensationS,
		ds.WithDesync.Collided, ds.WithoutDesync.Collided); err != nil {
		return err
	}
	return nil
}
