package report

import (
	"context"
	"fmt"
	"io"
	"time"

	"bubblezero/internal/experiments"
)

// Generate runs the full evaluation suite and writes a markdown report:
// every figure's headline numbers next to the paper's, with ASCII charts
// of the key series. hours controls the networking-scenario length (the
// paper uses five).
func Generate(ctx context.Context, seed uint64, hours float64, w io.Writer) error {
	d := time.Duration(hours * float64(time.Hour))
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}

	if err := p("# BubbleZERO — regenerated evaluation (seed %d)\n\n", seed); err != nil {
		return err
	}

	// Figure 10.
	fig10, err := experiments.Fig10(ctx, seed)
	if err != nil {
		return fmt.Errorf("fig10: %w", err)
	}
	if err := p("## Figure 10 — overall HVAC performance\n\n%s\n\n", fig10.Summary()); err != nil {
		return err
	}
	if err := p("```\n%s```\n\n```\n%s```\n\n",
		Chart(fig10.Recorder.Series("temp.avg"), 72, 10),
		Chart(fig10.Recorder.Series("dew.avg"), 72, 10)); err != nil {
		return err
	}

	// Figure 11.
	fig11, err := experiments.Fig11(ctx, seed)
	if err != nil {
		return fmt.Errorf("fig11: %w", err)
	}
	if err := p("## Figure 11 — energy efficiency (COP)\n\n%s\n\n```\n%s```\n\n",
		fig11.Summary(),
		BarChart(
			[]string{"AirCon", "Bubble-C", "Bubble-V", "BubbleZERO"},
			[]float64{fig11.AirCon, fig11.BubbleC, fig11.BubbleV, fig11.BubbleZERO},
			48)); err != nil {
		return err
	}

	// Figure 12.
	fig12, err := experiments.Fig12(ctx, seed, d, nil)
	if err != nil {
		return fmt.Errorf("fig12: %w", err)
	}
	if err := p("## Figure 12 — choosing the right N\n\n```\n%s```\n\n", fig12.Summary()); err != nil {
		return err
	}

	// Figure 13.
	fig13, err := experiments.Fig13(ctx, seed, d)
	if err != nil {
		return fmt.Errorf("fig13: %w", err)
	}
	if err := p("## Figure 13 — accuracy as time elapses\n\n%s\n\n```\n%s```\n\n",
		fig13.Summary(), Chart(fig13.Accuracy, 72, 8)); err != nil {
		return err
	}

	// Figure 14.
	fig14, err := experiments.Fig14(ctx, seed, d)
	if err != nil {
		return fmt.Errorf("fig14: %w", err)
	}
	if err := p("## Figure 14 — T_snd adaptation\n\n%s\n\n```\n%s```\n\n",
		fig14.Summary(), Chart(fig14.Tsnd, 72, 8)); err != nil {
		return err
	}

	// Figure 15.
	fig15, err := experiments.Fig15(ctx, seed, d)
	if err != nil {
		return fmt.Errorf("fig15: %w", err)
	}
	if err := p("## Figure 15 — T_snd distribution and lifetime\n\n%s\n\n```\n%s```\n\n",
		fig15.Summary(), CDFChart(fig15.CDFXs, fig15.CDFPs, 48)); err != nil {
		return err
	}

	// Exergy audit.
	audit, err := experiments.ExergyAudit(ctx, seed)
	if err != nil {
		return fmt.Errorf("exergy audit: %w", err)
	}
	if err := p("## Exergy audit\n\n```\n%s```\n\n", audit.Summary()); err != nil {
		return err
	}

	// Ablations.
	sweep, err := experiments.AblationSupplyTemp(ctx, seed, nil)
	if err != nil {
		return fmt.Errorf("supply sweep: %w", err)
	}
	nc, err := experiments.AblationNoCoupling(ctx, seed)
	if err != nil {
		return fmt.Errorf("no-coupling: %w", err)
	}
	ds, err := experiments.AblationDesync(ctx, seed, 30*time.Minute)
	if err != nil {
		return fmt.Errorf("desync: %w", err)
	}
	if err := p("## Ablations\n\n```\n%s```\n\n"+
		"- condensation guard: %.0f s wet (guarded) vs %.0f s (unguarded)\n"+
		"- AC desync: %d collisions vs %d without\n",
		experiments.SummarizeSupplyTemp(sweep),
		nc.GuardedCondensationS, nc.UnguardedCondensationS,
		ds.WithDesync.Collided, ds.WithoutDesync.Collided); err != nil {
		return err
	}
	return nil
}
