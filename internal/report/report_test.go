package report

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"bubblezero/internal/experiments"
	"bubblezero/internal/trace"
)

var t0 = time.Date(2014, 3, 10, 13, 0, 0, 0, time.UTC)

func seriesFrom(t *testing.T, values []float64) *trace.Series {
	t.Helper()
	s := trace.NewRecorder().Series("test")
	for i, v := range values {
		if err := s.Append(t0.Add(time.Duration(i)*time.Minute), v); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestChartBasicShape(t *testing.T) {
	s := seriesFrom(t, []float64{28.9, 28, 27, 26, 25.2, 25, 25, 25})
	out := Chart(s, 40, 8)
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 10 { // 8 rows + axis + label
		t.Fatalf("chart has %d lines, want 10:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "28.90") {
		t.Errorf("top row missing max annotation: %q", lines[0])
	}
	if !strings.Contains(lines[7], "25.00") {
		t.Errorf("bottom row missing min annotation: %q", lines[7])
	}
	if !strings.Contains(out, "*") {
		t.Error("chart has no data marks")
	}
	// Descending series: the first column's mark must be above the last's.
	firstRow, lastRow := -1, -1
	for r := 0; r < 8; r++ {
		body := lines[r][10:]
		if idx := strings.IndexByte(body, '*'); idx >= 0 {
			if firstRow == -1 && strings.HasPrefix(strings.TrimLeft(body, " "), "*") && idx < 5 {
				firstRow = r
			}
			if strings.LastIndexByte(body, '*') >= len(body)-3 {
				lastRow = r
			}
		}
	}
	if firstRow == -1 || lastRow == -1 || firstRow >= lastRow {
		t.Errorf("descending series should slope down (first mark row %d, last %d):\n%s",
			firstRow, lastRow, out)
	}
}

func TestChartDegenerate(t *testing.T) {
	empty := trace.NewRecorder().Series("empty")
	if out := Chart(empty, 40, 8); !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
	s := seriesFrom(t, []float64{1, 2})
	if out := Chart(s, 1, 8); !strings.Contains(out, "no data") {
		t.Errorf("too-narrow chart = %q", out)
	}
	// Constant series must not divide by zero.
	flat := seriesFrom(t, []float64{5, 5, 5})
	if out := Chart(flat, 20, 4); !strings.Contains(out, "*") {
		t.Errorf("flat chart missing marks:\n%s", out)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]string{"AirCon", "BubbleZERO"}, []float64{2.8, 4.07}, 40)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Count(lines[0], "#") >= strings.Count(lines[1], "#") {
		t.Error("larger value should have the longer bar")
	}
	if !strings.Contains(lines[1], "4.07") {
		t.Errorf("value annotation missing: %q", lines[1])
	}
	if out := BarChart([]string{"a"}, []float64{1, 2}, 40); !strings.Contains(out, "no data") {
		t.Error("mismatched lengths should render no data")
	}
}

func TestCDFChart(t *testing.T) {
	out := CDFChart([]float64{2, 64}, []float64{0.2, 1}, 40)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Count(lines[1], "#") != 40 {
		t.Errorf("p=1 row should be full width: %q", lines[1])
	}
	if out := CDFChart(nil, nil, 40); !strings.Contains(out, "no data") {
		t.Error("empty CDF should render no data")
	}
}

func TestGenerateFullReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report generation")
	}
	suite := experiments.NewSuite(runtime.NumCPU())
	scenarioRunsBefore := experiments.NetScenarioRunCount()
	var sb strings.Builder
	if err := GenerateWith(context.Background(), suite, 1, 1.5, &sb); err != nil {
		t.Fatal(err)
	}
	// Figures 12–15 all consume the networking scenario; the suite must
	// simulate it exactly once per (seed, duration).
	if runs := experiments.NetScenarioRunCount() - scenarioRunsBefore; runs != 1 {
		t.Errorf("report simulated the net scenario %d times, want exactly 1", runs)
	}
	out := sb.String()
	for _, want := range []string{
		"# BubbleZERO", "Figure 10", "Figure 11", "Figure 12",
		"Figure 13", "Figure 14", "Figure 15", "Exergy audit", "Ablations",
		"AirCon", "time →",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(out) < 3000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}

func TestGenerateCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sb strings.Builder
	if err := Generate(ctx, 1, 1, &sb); err == nil {
		t.Error("cancelled generation should fail")
	}
}
