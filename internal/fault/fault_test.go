package fault

import (
	"context"
	"strings"
	"testing"
	"time"

	"bubblezero/internal/sim"
)

func TestEventValidate(t *testing.T) {
	cases := []struct {
		name    string
		ev      Event
		wantErr string // substring; empty means valid
	}{
		{"battery deplete", BatteryDeplete(time.Minute, "bt-temp-1"), ""},
		{"battery scale", BatteryScale(time.Minute, "bt-temp-1", 0.5), ""},
		{"sensor stuck", SensorStuck(time.Minute, time.Minute, "bt-temp-1"), ""},
		{"sensor drift", SensorDrift(time.Minute, time.Minute, "bt-temp-1", -0.01), ""},
		{"mote offline", MoteOffline(time.Minute, time.Minute, "bt-temp-1"), ""},
		{"burst loss", BurstLoss(time.Minute, time.Minute, 0.9), ""},
		{"jam", Jam(time.Minute, time.Minute), ""},
		{"chiller trip", ChillerTrip(time.Minute, time.Minute, LoopRadiant), ""},
		{"pump degrade", PumpDegrade(time.Minute, time.Minute, LoopVent, 0.3), ""},
		{"permanent stuck", SensorStuck(time.Minute, 0, "bt-temp-1"), ""},
		{"dead pump", PumpDegrade(0, time.Minute, LoopRadiant, 0), ""},

		{"unknown kind", Event{Kind: Kind(99)}, "unknown kind"},
		{"negative at", Jam(-time.Second, time.Minute), "At must be"},
		{"negative for", Event{Kind: KindJam, For: -time.Second}, "For must be"},
		{"missing node", Event{Kind: KindSensorStuck, At: time.Minute}, "Node is required"},
		{"stray node", Event{Kind: KindJam, Node: "bt-temp-1"}, "Node must be empty"},
		{"missing loop", Event{Kind: KindChillerTrip}, "Loop must be"},
		{"bad loop", ChillerTrip(0, time.Minute, Loop("boiler")), "Loop must be"},
		{"stray loop", Event{Kind: KindJam, Loop: LoopVent}, "Loop must be empty"},
		{"deplete with for", Event{Kind: KindBatteryDeplete, Node: "x", For: time.Minute}, "permanent"},
		{"scale too big", BatteryScale(0, "x", 1.5), "Magnitude"},
		{"scale zero", BatteryScale(0, "x", 0), "Magnitude"},
		{"loss zero", BurstLoss(0, time.Minute, 0), "Magnitude"},
		{"loss too big", BurstLoss(0, time.Minute, 1.5), "Magnitude"},
		{"drift zero", SensorDrift(0, time.Minute, "x", 0), "non-zero"},
		{"degrade to full", PumpDegrade(0, time.Minute, LoopVent, 1), "Magnitude"},
		{"stuck with magnitude", Event{Kind: KindSensorStuck, Node: "x", Magnitude: 2}, "Magnitude must be 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.ev.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestPlanValidateIndexesBadEvent(t *testing.T) {
	_, err := NewPlan(Jam(0, time.Minute), BurstLoss(0, time.Minute, 2))
	if err == nil || !strings.Contains(err.Error(), "event 1") {
		t.Fatalf("NewPlan error = %v, want it to name event 1", err)
	}
}

func TestEmptyPlan(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Fatal("nil plan should be empty")
	}
	if err := nilPlan.Validate(); err != nil {
		t.Fatalf("nil plan Validate() = %v", err)
	}
	if p := MustPlan(); !p.Empty() {
		t.Fatal("zero-event plan should be empty")
	}
	if p := MustPlan(Jam(0, time.Minute)); p.Empty() {
		t.Fatal("plan with events should not be empty")
	}
}

// fakeSensor, fakeNet, and fakePlant record the calls a plan makes.
type fakeSensor struct {
	depleted  bool
	scaledTo  float64
	stuck     bool
	driftRate float64
	offline   bool
}

func (f *fakeSensor) DepleteBattery()                 { f.depleted = true }
func (f *fakeSensor) ScaleBatteryRemaining(p float64) { f.scaledTo = p }
func (f *fakeSensor) SetStuck(on bool)                { f.stuck = on }
func (f *fakeSensor) SetDrift(r float64)              { f.driftRate = r }
func (f *fakeSensor) SetOffline(on bool)              { f.offline = on }

type fakeNet struct {
	boost  float64
	jammed bool
}

func (f *fakeNet) SetLossBoost(p float64) { f.boost = p }
func (f *fakeNet) SetJammed(on bool)      { f.jammed = on }

type fakePlant struct {
	tripped map[Loop]bool
	derate  map[Loop]float64
}

func (f *fakePlant) SetChillerTripped(l Loop, on bool) { f.tripped[l] = on }
func (f *fakePlant) SetPumpDerate(l Loop, p float64)   { f.derate[l] = p }

func newFakeTarget() (*fakeSensor, *fakeNet, *fakePlant, Target) {
	fs := &fakeSensor{}
	fn := &fakeNet{}
	fp := &fakePlant{tripped: map[Loop]bool{}, derate: map[Loop]float64{}}
	tgt := Target{
		Sensor: func(node string) SensorTarget {
			if node == "bt-temp-1" {
				return fs
			}
			return nil
		},
		Network: fn,
		Plant:   fp,
	}
	return fs, fn, fp, tgt
}

// run builds an engine at a 1 s step, applies the plan, and advances it
// tick by tick, invoking probe after every tick.
func run(t *testing.T, p *Plan, tgt Target, ticks int, probe func(tick int)) {
	t.Helper()
	start := time.Date(2014, 3, 1, 9, 0, 0, 0, time.UTC)
	eng := sim.NewEngine(sim.MustClock(start, time.Second), 1)
	if err := p.Apply(eng.Timeline(), start, tgt); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	for i := 0; i < ticks; i++ {
		if err := eng.RunTicks(context.Background(), 1); err != nil {
			t.Fatalf("RunTicks: %v", err)
		}
		probe(i)
	}
}

func TestApplyInjectsAndClearsOnSchedule(t *testing.T) {
	fs, fn, fp, tgt := newFakeTarget()
	p := MustPlan(
		SensorStuck(2*time.Second, 3*time.Second, "bt-temp-1"),
		BurstLoss(4*time.Second, 2*time.Second, 0.5),
		Jam(1*time.Second, 8*time.Second),
		ChillerTrip(3*time.Second, 4*time.Second, LoopRadiant),
		PumpDegrade(3*time.Second, 4*time.Second, LoopVent, 0.25),
		BatteryScale(6*time.Second, "bt-temp-1", 0.125),
	)
	// Expected windows, by tick index i (probe runs after tick i, i.e.
	// after simulated second i+1; a fault At=a For=d is active on the
	// ticks covering (a, a+d]).
	run(t, p, tgt, 12, func(i int) {
		sec := i + 1 // timeline events at offset s fire during tick index s
		wantStuck := sec > 2 && sec <= 5
		if fs.stuck != wantStuck {
			t.Fatalf("sec %d: stuck = %v, want %v", sec, fs.stuck, wantStuck)
		}
		wantBoost := 0.0
		if sec > 4 && sec <= 6 {
			wantBoost = 0.5
		}
		if fn.boost != wantBoost {
			t.Fatalf("sec %d: boost = %v, want %v", sec, fn.boost, wantBoost)
		}
		wantJam := sec > 1 && sec <= 9
		if fn.jammed != wantJam {
			t.Fatalf("sec %d: jammed = %v, want %v", sec, fn.jammed, wantJam)
		}
		wantTrip := sec > 3 && sec <= 7
		if fp.tripped[LoopRadiant] != wantTrip {
			t.Fatalf("sec %d: tripped = %v, want %v", sec, fp.tripped[LoopRadiant], wantTrip)
		}
		wantDerate := 1.0
		if sec > 3 && sec <= 7 {
			wantDerate = 0.25
		}
		if sec > 3 && fp.derate[LoopVent] != wantDerate {
			t.Fatalf("sec %d: derate = %v, want %v", sec, fp.derate[LoopVent], wantDerate)
		}
		if sec > 6 && fs.scaledTo != 0.125 {
			t.Fatalf("sec %d: scaledTo = %v, want 0.125", sec, fs.scaledTo)
		}
	})
}

func TestApplyPermanentFaultNeverClears(t *testing.T) {
	fs, _, _, tgt := newFakeTarget()
	p := MustPlan(
		BatteryDeplete(time.Second, "bt-temp-1"),
		SensorDrift(time.Second, 0, "bt-temp-1", -0.01),
	)
	run(t, p, tgt, 10, func(i int) {
		if i+1 > 1 {
			if !fs.depleted {
				t.Fatalf("sec %d: battery not depleted", i+1)
			}
			if fs.driftRate != -0.01 {
				t.Fatalf("sec %d: drift = %v, want -0.01", i+1, fs.driftRate)
			}
		}
	})
}

func TestApplyRejectsUnknownNodeEagerly(t *testing.T) {
	_, _, _, tgt := newFakeTarget()
	p := MustPlan(SensorStuck(time.Minute, time.Minute, "bt-nope-9"))
	start := time.Date(2014, 3, 1, 9, 0, 0, 0, time.UTC)
	tl := sim.NewTimeline()
	err := p.Apply(tl, start, tgt)
	if err == nil || !strings.Contains(err.Error(), "unknown node") {
		t.Fatalf("Apply = %v, want unknown-node error", err)
	}
	if tl.Len() != 0 {
		t.Fatalf("failed Apply left %d events scheduled", tl.Len())
	}
}

func TestApplyRejectsMissingSurfaces(t *testing.T) {
	start := time.Date(2014, 3, 1, 9, 0, 0, 0, time.UTC)
	for _, tc := range []struct {
		name string
		p    *Plan
		want string
	}{
		{"no sensor resolver", MustPlan(BatteryDeplete(0, "x")), "sensor resolver"},
		{"no network", MustPlan(Jam(0, time.Minute)), "network surface"},
		{"no plant", MustPlan(ChillerTrip(0, time.Minute, LoopVent)), "plant surface"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Apply(sim.NewTimeline(), start, Target{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Apply = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestApplyEmptyPlanSchedulesNothing(t *testing.T) {
	tl := sim.NewTimeline()
	var nilPlan *Plan
	if err := nilPlan.Apply(tl, time.Now(), Target{}); err != nil {
		t.Fatalf("nil plan Apply = %v", err)
	}
	if tl.Len() != 0 {
		t.Fatalf("nil plan scheduled %d events", tl.Len())
	}
}
