package fault

import (
	"fmt"
	"time"

	"bubblezero/internal/sim"
)

// SensorTarget is the fault surface of one mote's sensor device.
type SensorTarget interface {
	// DepleteBattery empties the mote's battery.
	DepleteBattery()
	// ScaleBatteryRemaining rescales the remaining charge to frac of its
	// current value.
	ScaleBatteryRemaining(frac float64)
	// SetStuck latches (on) or releases (off) the sensor channel.
	SetStuck(on bool)
	// SetDrift sets the calibration drift rate in units/s; 0 clears.
	SetDrift(ratePerS float64)
	// SetOffline suspends (on) or resumes (off) the whole device.
	SetOffline(on bool)
}

// NetworkTarget is the fault surface of the shared radio medium.
// *wsn.Network satisfies it directly.
type NetworkTarget interface {
	// SetLossBoost adds p to the configured loss floor; 0 restores it.
	SetLossBoost(p float64)
	// SetJammed switches the channel jam on or off.
	SetJammed(on bool)
}

// PlantTarget is the fault surface of the hydraulic plant.
type PlantTarget interface {
	// SetChillerTripped trips or restores the loop's chiller.
	SetChillerTripped(loop Loop, on bool)
	// SetPumpDerate limits the loop's pumps to frac of commanded flow;
	// 1 restores them.
	SetPumpDerate(loop Loop, frac float64)
}

// Target bundles the injection surfaces a Plan acts on. Sensor resolves
// a node id to its device surface (nil for unknown ids); Network and
// Plant may be nil when the plan contains no events of that family.
type Target struct {
	Sensor  func(node string) SensorTarget
	Network NetworkTarget
	Plant   PlantTarget
}

// Apply schedules every event of the plan on the timeline, with offsets
// relative to start. Targets are resolved eagerly, so a plan naming an
// unknown node or missing a needed surface fails here rather than
// mid-run. Each event contributes an injection at start+At and, when For
// is non-zero, a clearance at start+At+For; same-instant timeline order
// is insertion order, so injections listed earlier land first and a
// zero-duration window still injects before it clears.
func (p *Plan) Apply(tl *sim.Timeline, start time.Time, tgt Target) error {
	if p == nil {
		return nil
	}
	if err := p.Validate(); err != nil {
		return err
	}
	for _, ev := range p.events {
		inject, clear, err := ev.actions(tgt)
		if err != nil {
			return err
		}
		tl.At(start.Add(ev.At), "fault:"+ev.String(), func(*sim.Env) { inject() })
		if ev.For > 0 {
			tl.At(start.Add(ev.At+ev.For), "fault-clear:"+ev.String(), func(*sim.Env) { clear() })
		}
	}
	return nil
}

// actions resolves the event against the target and returns its
// injection and clearance closures.
func (ev Event) actions(tgt Target) (inject, clear func(), err error) {
	if ev.Kind.needsNode() {
		if tgt.Sensor == nil {
			return nil, nil, fmt.Errorf("fault: %s: target has no sensor resolver", ev)
		}
		st := tgt.Sensor(ev.Node)
		if st == nil {
			return nil, nil, fmt.Errorf("fault: %s: unknown node %q", ev, ev.Node)
		}
		switch ev.Kind {
		case KindBatteryDeplete:
			return st.DepleteBattery, nil, nil
		case KindBatteryScale:
			frac := ev.Magnitude
			return func() { st.ScaleBatteryRemaining(frac) }, nil, nil
		case KindSensorStuck:
			return func() { st.SetStuck(true) }, func() { st.SetStuck(false) }, nil
		case KindSensorDrift:
			rate := ev.Magnitude
			return func() { st.SetDrift(rate) }, func() { st.SetDrift(0) }, nil
		case KindMoteOffline:
			return func() { st.SetOffline(true) }, func() { st.SetOffline(false) }, nil
		}
	}
	switch ev.Kind {
	case KindBurstLoss, KindJam:
		if tgt.Network == nil {
			return nil, nil, fmt.Errorf("fault: %s: target has no network surface", ev)
		}
		net := tgt.Network
		if ev.Kind == KindJam {
			return func() { net.SetJammed(true) }, func() { net.SetJammed(false) }, nil
		}
		p := ev.Magnitude
		return func() { net.SetLossBoost(p) }, func() { net.SetLossBoost(0) }, nil
	case KindChillerTrip, KindPumpDegrade:
		if tgt.Plant == nil {
			return nil, nil, fmt.Errorf("fault: %s: target has no plant surface", ev)
		}
		plant, loop := tgt.Plant, ev.Loop
		if ev.Kind == KindChillerTrip {
			return func() { plant.SetChillerTripped(loop, true) },
				func() { plant.SetChillerTripped(loop, false) }, nil
		}
		frac := ev.Magnitude
		return func() { plant.SetPumpDerate(loop, frac) },
			func() { plant.SetPumpDerate(loop, 1) }, nil
	}
	return nil, nil, fmt.Errorf("fault: %s: unhandled kind", ev)
}
