// Package fault implements deterministic, timeline-scripted fault
// injection for the BubbleZERO simulation. A Plan is an ordered set of
// Events — mote battery exhaustion, stuck or drifting sensor channels,
// motes dropping offline, burst packet loss and jammed-channel windows,
// chiller trips, pump degradation — each scheduled at an offset into the
// run and optionally cleared after a duration. Plans carry no randomness
// of their own: every injection lands on an exact simulated tick via the
// engine timeline, and all stochastic consequences (which packets die
// during a loss burst, say) flow through the engine RNG, so identical
// seeds replay identical fault runs bit for bit.
//
// The package is glue-free by design: events act through the small
// SensorTarget / NetworkTarget / PlantTarget interfaces, which
// internal/core adapts onto the real simulation objects and tests adapt
// onto fakes.
package fault

import (
	"fmt"
	"time"
)

// Kind enumerates the injectable fault types.
type Kind int

// The fault kinds. Battery faults are permanent (a drained mote stays
// dark); everything else clears when the event's window ends.
const (
	// KindBatteryDeplete empties a mote's battery outright.
	KindBatteryDeplete Kind = iota + 1
	// KindBatteryScale rescales a mote's remaining charge to
	// Magnitude∈(0,1] of its current value — fast-forward toward
	// exhaustion without simulating months of idle draw.
	KindBatteryScale
	// KindSensorStuck latches a sensor channel at its next reading.
	KindSensorStuck
	// KindSensorDrift accumulates calibration drift at Magnitude sensor
	// units per second; clearing the fault recalibrates the channel.
	KindSensorDrift
	// KindMoteOffline suspends the mote's device entirely (hard crash or
	// pulled mote); resuming puts it back on its sampling schedule.
	KindMoteOffline
	// KindBurstLoss adds Magnitude∈(0,1] to the network's packet-loss
	// floor for the window.
	KindBurstLoss
	// KindJam destroys every frame offered while the window is open.
	KindJam
	// KindChillerTrip holds the named loop's chiller off for the window.
	KindChillerTrip
	// KindPumpDegrade limits the named loop's pumps to Magnitude∈[0,1)
	// of their commanded flow for the window.
	KindPumpDegrade
)

var kindNames = map[Kind]string{
	KindBatteryDeplete: "battery-deplete",
	KindBatteryScale:   "battery-scale",
	KindSensorStuck:    "sensor-stuck",
	KindSensorDrift:    "sensor-drift",
	KindMoteOffline:    "mote-offline",
	KindBurstLoss:      "burst-loss",
	KindJam:            "jam",
	KindChillerTrip:    "chiller-trip",
	KindPumpDegrade:    "pump-degrade",
}

// String returns the kind's stable name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("fault.Kind(%d)", int(k))
}

// ParseKind maps a stable kind name ("sensor-stuck", "jam", …) back to
// its Kind — the inverse of String, for wire-format parsing.
func ParseKind(s string) (Kind, error) {
	//bzlint:ordered names are unique, so at most one iteration matches regardless of order
	for k, name := range kindNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q", s)
}

// Loop names a hydraulic loop for plant-side faults.
type Loop string

// The two chilled-water loops.
const (
	LoopRadiant Loop = "radiant"
	LoopVent    Loop = "vent"
)

// Event is one scheduled fault. Construct with the helper constructors;
// a hand-rolled Event must satisfy Validate.
type Event struct {
	// Kind selects the fault type.
	Kind Kind
	// At is the injection offset from the start of the run.
	At time.Duration
	// For is the fault duration; zero means the fault never clears.
	// Battery faults must leave it zero (charge does not come back).
	For time.Duration
	// Node names the target mote for sensor/battery faults.
	Node string
	// Loop names the target hydraulic loop for plant faults.
	Loop Loop
	// Magnitude is the kind-specific intensity (see the Kind constants).
	Magnitude float64
}

// BatteryDeplete returns an event emptying node's battery at offset at.
func BatteryDeplete(at time.Duration, node string) Event {
	return Event{Kind: KindBatteryDeplete, At: at, Node: node}
}

// BatteryScale returns an event rescaling node's remaining charge to
// frac of its current value at offset at.
func BatteryScale(at time.Duration, node string, frac float64) Event {
	return Event{Kind: KindBatteryScale, At: at, Node: node, Magnitude: frac}
}

// SensorStuck returns an event latching node's channel for d.
func SensorStuck(at, d time.Duration, node string) Event {
	return Event{Kind: KindSensorStuck, At: at, For: d, Node: node}
}

// SensorDrift returns an event drifting node's channel at ratePerS
// sensor units per second for d.
func SensorDrift(at, d time.Duration, node string, ratePerS float64) Event {
	return Event{Kind: KindSensorDrift, At: at, For: d, Node: node, Magnitude: ratePerS}
}

// MoteOffline returns an event taking node's device offline for d.
func MoteOffline(at, d time.Duration, node string) Event {
	return Event{Kind: KindMoteOffline, At: at, For: d, Node: node}
}

// BurstLoss returns an event adding p to the packet-loss floor for d.
func BurstLoss(at, d time.Duration, p float64) Event {
	return Event{Kind: KindBurstLoss, At: at, For: d, Magnitude: p}
}

// Jam returns an event jamming the channel for d.
func Jam(at, d time.Duration) Event {
	return Event{Kind: KindJam, At: at, For: d}
}

// ChillerTrip returns an event tripping loop's chiller for d.
func ChillerTrip(at, d time.Duration, loop Loop) Event {
	return Event{Kind: KindChillerTrip, At: at, For: d, Loop: loop}
}

// PumpDegrade returns an event limiting loop's pumps to frac of their
// commanded flow for d.
func PumpDegrade(at, d time.Duration, loop Loop, frac float64) Event {
	return Event{Kind: KindPumpDegrade, At: at, For: d, Loop: loop, Magnitude: frac}
}

// String renders the event for logs and schedule names.
func (e Event) String() string {
	s := fmt.Sprintf("%s@%s", e.Kind, e.At)
	if e.Node != "" {
		s += "/" + e.Node
	}
	if e.Loop != "" {
		s += "/" + string(e.Loop)
	}
	return s
}

// needsNode reports whether the kind targets a mote.
func (k Kind) needsNode() bool {
	switch k {
	case KindBatteryDeplete, KindBatteryScale, KindSensorStuck, KindSensorDrift, KindMoteOffline:
		return true
	}
	return false
}

// needsLoop reports whether the kind targets a hydraulic loop.
func (k Kind) needsLoop() bool {
	return k == KindChillerTrip || k == KindPumpDegrade
}

// Validate checks the event's internal consistency.
func (e Event) Validate() error {
	if _, ok := kindNames[e.Kind]; !ok {
		return fmt.Errorf("fault: unknown kind %d", int(e.Kind))
	}
	if e.At < 0 {
		return fmt.Errorf("fault: %s: At must be >= 0, got %v", e, e.At)
	}
	if e.For < 0 {
		return fmt.Errorf("fault: %s: For must be >= 0, got %v", e, e.For)
	}
	if e.Kind.needsNode() && e.Node == "" {
		return fmt.Errorf("fault: %s: Node is required", e.Kind)
	}
	if !e.Kind.needsNode() && e.Node != "" {
		return fmt.Errorf("fault: %s: Node must be empty", e.Kind)
	}
	if e.Kind.needsLoop() {
		if e.Loop != LoopRadiant && e.Loop != LoopVent {
			return fmt.Errorf("fault: %s: Loop must be %q or %q, got %q",
				e.Kind, LoopRadiant, LoopVent, e.Loop)
		}
	} else if e.Loop != "" {
		return fmt.Errorf("fault: %s: Loop must be empty", e.Kind)
	}
	switch e.Kind {
	case KindBatteryDeplete, KindBatteryScale:
		if e.For != 0 {
			return fmt.Errorf("fault: %s: battery faults are permanent, For must be 0", e)
		}
	}
	switch e.Kind {
	case KindBatteryScale:
		if e.Magnitude <= 0 || e.Magnitude > 1 {
			return fmt.Errorf("fault: %s: Magnitude must be in (0, 1], got %v", e, e.Magnitude)
		}
	case KindBurstLoss:
		if e.Magnitude <= 0 || e.Magnitude > 1 {
			return fmt.Errorf("fault: %s: Magnitude must be in (0, 1], got %v", e, e.Magnitude)
		}
	case KindSensorDrift:
		//bzlint:allow floateq validating a user-authored config value against its zero default
		if e.Magnitude == 0 {
			return fmt.Errorf("fault: %s: Magnitude (drift rate) must be non-zero", e)
		}
	case KindPumpDegrade:
		if e.Magnitude < 0 || e.Magnitude >= 1 {
			return fmt.Errorf("fault: %s: Magnitude must be in [0, 1), got %v", e, e.Magnitude)
		}
	default:
		//bzlint:allow floateq validating a user-authored config value against its zero default
		if e.Magnitude != 0 {
			return fmt.Errorf("fault: %s: Magnitude must be 0", e)
		}
	}
	return nil
}

// Plan is an ordered collection of fault events. The zero value (and a
// nil *Plan) is the empty plan, which injects nothing.
type Plan struct {
	events []Event
}

// NewPlan validates the events and assembles a plan. Events may share
// injection times; same-tick application order is the argument order.
func NewPlan(events ...Event) (*Plan, error) {
	p := &Plan{events: append([]Event(nil), events...)}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustPlan is NewPlan that panics on error, for static scenario tables.
func MustPlan(events ...Event) *Plan {
	p, err := NewPlan(events...)
	if err != nil {
		panic(err)
	}
	return p
}

// Events returns a copy of the planned events.
func (p *Plan) Events() []Event {
	if p == nil {
		return nil
	}
	return append([]Event(nil), p.events...)
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.events) == 0 }

// Validate checks every event.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, e := range p.events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("fault: event %d: %w", i, err)
		}
	}
	return nil
}
