package energy

// BatteryState is a Battery's mutable state (capacity is construction
// config), exported for digital-twin snapshots.
//
//bzlint:state ExportState RestoreState
type BatteryState struct {
	UsedJ float64
}

// ExportState captures the consumed energy.
func (b *Battery) ExportState() BatteryState { return BatteryState{UsedJ: b.usedJ} }

// RestoreState overwrites the consumed energy.
func (b *Battery) RestoreState(st BatteryState) { b.usedJ = st.UsedJ }
