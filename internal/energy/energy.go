// Package energy provides the measurement layer the paper instruments with
// power meters (§V): per-load power/energy integrators, the standard COP
// metric (removed heat / consumed power), TelosB-class battery accounting
// for battery-powered motes, and lifetime projection.
package energy

import (
	"fmt"
	"time"
)

// Meter integrates the energy of one electrical load, mirroring the
// power meters installed "at major energy consuming devices, including
// chillers and pumps".
type Meter struct {
	name    string
	lastW   float64
	energyJ float64
}

// NewMeter returns a meter for the named load.
func NewMeter(name string) *Meter { return &Meter{name: name} }

// Name returns the load name.
func (m *Meter) Name() string { return m.name }

// Add accumulates w watts over dt seconds.
func (m *Meter) Add(w, dt float64) {
	if w < 0 || dt <= 0 {
		return
	}
	m.lastW = w
	m.energyJ += w * dt
}

// PowerW returns the most recent instantaneous power.
func (m *Meter) PowerW() float64 { return m.lastW }

// EnergyJ returns the integrated energy.
func (m *Meter) EnergyJ() float64 { return m.energyJ }

// COP accumulates removed heat and consumed electrical energy and reports
// the paper's metric COP = Removed heat / Consumed power.
type COP struct {
	RemovedJ  float64
	ConsumedJ float64
}

// Add accumulates a step: removedW of heat moved while consuming
// consumedW of electricity, over dt seconds. Negative heat (heating) does
// not count toward removed cooling energy.
func (c *COP) Add(removedW, consumedW, dt float64) {
	if dt <= 0 {
		return
	}
	if removedW > 0 {
		c.RemovedJ += removedW * dt
	}
	if consumedW > 0 {
		c.ConsumedJ += consumedW * dt
	}
}

// Value returns the COP, or 0 if no energy was consumed yet.
func (c COP) Value() float64 {
	if c.ConsumedJ <= 0 {
		return 0
	}
	return c.RemovedJ / c.ConsumedJ
}

// Combine merges two COP accumulations (e.g. the radiant and ventilation
// modules into the whole-system figure).
func Combine(cops ...COP) COP {
	var out COP
	for _, c := range cops {
		out.RemovedJ += c.RemovedJ
		out.ConsumedJ += c.ConsumedJ
	}
	return out
}

// TelosB energy constants calibrated against the paper's figures: 54 mW
// radio power during a ~37 ms transmit window gives ≈2 mJ per packet;
// 0.3 mW during a ~50 ms sensor acquisition gives 15 µJ per sample; the
// remaining idle draw (MCU sleep, timer, RX checks) is what makes a
// 2-second fixed sender last ≈0.7 years and the adaptive sender ≈3.2
// years on two AA cells (§V-C).
const (
	// TxPowerW is the radio power while transmitting (paper: 54 mW).
	TxPowerW = 0.054
	// TxWindowS is the radio-on window per packet (wakeup + CCA + frame).
	TxWindowS = 0.037
	// TxEnergyPerPacketJ is the per-packet transmission energy.
	TxEnergyPerPacketJ = TxPowerW * TxWindowS
	// SamplePowerW is the sensor power during acquisition (paper: 0.3 mW).
	SamplePowerW = 0.0003
	// SampleWindowS is the acquisition duration per sample.
	SampleWindowS = 0.05
	// SampleEnergyJ is the per-sample acquisition energy.
	SampleEnergyJ = SamplePowerW * SampleWindowS
	// IdlePowerW is the always-on baseline draw of a duty-cycled mote.
	IdlePowerW = 0.00021
	// TwoAACapacityJ is the usable energy of two AA cells (≈2500 mAh at
	// 3 V).
	TwoAACapacityJ = 27000.0
)

// Battery tracks the charge of a battery-powered mote.
type Battery struct {
	capacityJ float64
	usedJ     float64
}

// NewBattery returns a battery with the given capacity in joules.
func NewBattery(capacityJ float64) (*Battery, error) {
	if capacityJ <= 0 {
		return nil, fmt.Errorf("energy: battery capacity must be > 0, got %v", capacityJ)
	}
	return &Battery{capacityJ: capacityJ}, nil
}

// NewTwoAA returns the standard two-AA-cell TelosB battery.
func NewTwoAA() *Battery {
	b, err := NewBattery(TwoAACapacityJ)
	if err != nil {
		panic(err) // unreachable: constant capacity is positive
	}
	return b
}

// Drain removes j joules. Draining below empty pins the battery at empty.
func (b *Battery) Drain(j float64) {
	if j <= 0 {
		return
	}
	b.usedJ += j
	if b.usedJ > b.capacityJ {
		b.usedJ = b.capacityJ
	}
}

// ScaleRemaining rescales the remaining charge to frac of its current
// value (frac clamped to [0, 1]). Fault plans use it to fast-forward a
// mote toward exhaustion without simulating months of idle draw: the
// subsequent discharge still follows the real per-transmission accounting,
// so duty-cycling schemes are compared on equal footing.
func (b *Battery) ScaleRemaining(frac float64) {
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	b.usedJ = b.capacityJ - b.RemainingJ()*frac
}

// UsedJ returns the consumed energy.
func (b *Battery) UsedJ() float64 { return b.usedJ }

// RemainingJ returns the remaining energy.
func (b *Battery) RemainingJ() float64 { return b.capacityJ - b.usedJ }

// Depleted reports whether the battery is empty.
func (b *Battery) Depleted() bool { return b.usedJ >= b.capacityJ }

// FractionRemaining returns the remaining charge fraction in [0, 1].
func (b *Battery) FractionRemaining() float64 {
	return b.RemainingJ() / b.capacityJ
}

// Lifetime projects how long a full battery of this capacity lasts at the
// given average power draw.
func (b *Battery) Lifetime(avgPowerW float64) time.Duration {
	if avgPowerW <= 0 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(b.capacityJ / avgPowerW * float64(time.Second))
}

// MoteAveragePower returns the long-run average power (W) of a duty-cycled
// bt-device that samples every tsplS seconds and transmits every tsndS
// seconds.
func MoteAveragePower(tsplS, tsndS float64) float64 {
	p := IdlePowerW
	if tsplS > 0 {
		p += SampleEnergyJ / tsplS
	}
	if tsndS > 0 {
		p += TxEnergyPerPacketJ / tsndS
	}
	return p
}

// Years renders a duration in years for lifetime reporting.
func Years(d time.Duration) float64 {
	return d.Hours() / 24 / 365
}
