package energy_test

import (
	"fmt"

	"bubblezero/internal/energy"
)

// The paper's Figure 11 arithmetic: COP = removed heat / consumed power,
// with the two modules combining into the system figure.
func ExampleCOP() {
	var radiant, vent energy.COP
	radiant.Add(964.8, 213.4, 3600) // paper's measured radiant module
	vent.Add(213.2, 75.6, 3600)     // paper's measured ventilation module
	total := energy.Combine(radiant, vent)
	fmt.Printf("Bubble-C %.2f, Bubble-V %.2f, BubbleZERO %.2f\n",
		radiant.Value(), vent.Value(), total.Value())
	// Output:
	// Bubble-C 4.52, Bubble-V 2.82, BubbleZERO 4.08
}

// MoteAveragePower folds the TelosB energy profile (54 mW transmit,
// 0.3 mW sampling) into a battery-lifetime projection — the paper's 0.7 vs
// 3.2 year comparison.
func ExampleMoteAveragePower() {
	b := energy.NewTwoAA()
	fixed := b.Lifetime(energy.MoteAveragePower(2, 2))
	adaptive := b.Lifetime(energy.MoteAveragePower(2, 48))
	fmt.Printf("fixed: %.1f years, adaptive: %.1f years\n",
		energy.Years(fixed), energy.Years(adaptive))
	// Output:
	// fixed: 0.7 years, adaptive: 3.3 years
}
