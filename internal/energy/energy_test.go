package energy

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestMeterIntegration(t *testing.T) {
	m := NewMeter("chiller")
	if m.Name() != "chiller" {
		t.Errorf("Name = %q", m.Name())
	}
	m.Add(100, 10)
	m.Add(200, 5)
	if got := m.EnergyJ(); got != 2000 {
		t.Errorf("EnergyJ = %v, want 2000", got)
	}
	if got := m.PowerW(); got != 200 {
		t.Errorf("PowerW = %v, want 200", got)
	}
}

func TestMeterRejectsInvalid(t *testing.T) {
	m := NewMeter("x")
	m.Add(-5, 1)
	m.Add(5, 0)
	m.Add(5, -1)
	if m.EnergyJ() != 0 {
		t.Errorf("invalid adds accumulated %v J", m.EnergyJ())
	}
}

func TestCOPMatchesPaperArithmetic(t *testing.T) {
	// Paper §V-B: radiant 964.8 W removed / 213.4 W consumed = 4.52;
	// ventilation 213.2/75.6 = 2.82; combined 4.07.
	var radiant, vent COP
	radiant.Add(964.8, 213.4, 3600)
	vent.Add(213.2, 75.6, 3600)
	if got := radiant.Value(); math.Abs(got-4.52) > 0.01 {
		t.Errorf("radiant COP = %.3f, want 4.52", got)
	}
	if got := vent.Value(); math.Abs(got-2.82) > 0.01 {
		t.Errorf("vent COP = %.3f, want 2.82", got)
	}
	total := Combine(radiant, vent)
	if got := total.Value(); math.Abs(got-4.07) > 0.01 {
		t.Errorf("combined COP = %.3f, want 4.07", got)
	}
	// Improvement over the AirCon 2.8 baseline: up to 45.5 %.
	if imp := (total.Value() - 2.8) / 2.8 * 100; math.Abs(imp-45.5) > 1.5 {
		t.Errorf("improvement = %.1f%%, want ≈45.5%%", imp)
	}
}

func TestCOPIgnoresHeatingAndZeroDt(t *testing.T) {
	var c COP
	c.Add(-100, 50, 10)
	if c.RemovedJ != 0 {
		t.Errorf("heating counted as removed heat: %v", c.RemovedJ)
	}
	c.Add(100, 50, 0)
	if c.ConsumedJ != 500 {
		t.Errorf("ConsumedJ = %v, want 500 (zero-dt step ignored)", c.ConsumedJ)
	}
}

func TestCOPZeroConsumption(t *testing.T) {
	var c COP
	if c.Value() != 0 {
		t.Errorf("empty COP = %v, want 0", c.Value())
	}
}

func TestBatteryDrain(t *testing.T) {
	b, err := NewBattery(100)
	if err != nil {
		t.Fatal(err)
	}
	b.Drain(30)
	if b.RemainingJ() != 70 || b.UsedJ() != 30 {
		t.Errorf("remaining %v used %v", b.RemainingJ(), b.UsedJ())
	}
	if b.Depleted() {
		t.Error("battery wrongly depleted")
	}
	b.Drain(1000)
	if !b.Depleted() || b.RemainingJ() != 0 {
		t.Errorf("over-drain: remaining %v depleted %v", b.RemainingJ(), b.Depleted())
	}
	b.Drain(-5)
	if b.UsedJ() != 100 {
		t.Error("negative drain changed state")
	}
}

func TestNewBatteryValidation(t *testing.T) {
	if _, err := NewBattery(0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewBattery(-10); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestFractionRemaining(t *testing.T) {
	b := NewTwoAA()
	if got := b.FractionRemaining(); got != 1 {
		t.Errorf("fresh battery fraction = %v", got)
	}
	b.Drain(TwoAACapacityJ / 2)
	if got := b.FractionRemaining(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("half-drained fraction = %v", got)
	}
}

func TestLifetimeProjectionMatchesPaper(t *testing.T) {
	b := NewTwoAA()
	// Fixed scheme: T_snd = T_spl = 2 s → ≈0.7 years (§V-C).
	fixed := Years(b.Lifetime(MoteAveragePower(2, 2)))
	if fixed < 0.55 || fixed > 0.9 {
		t.Errorf("fixed-scheme lifetime = %.2f y, want ≈0.7", fixed)
	}
	// Adaptive scheme: mean T_snd ≈ 48 s → ≈3.2 years.
	adaptive := Years(b.Lifetime(MoteAveragePower(2, 48)))
	if adaptive < 2.6 || adaptive > 3.9 {
		t.Errorf("adaptive-scheme lifetime = %.2f y, want ≈3.2", adaptive)
	}
	if ratio := adaptive / fixed; ratio < 3.5 || ratio > 6.5 {
		t.Errorf("lifetime ratio = %.2f, want ≈4.6", ratio)
	}
}

func TestAlwaysOnLastsUnderAWeek(t *testing.T) {
	// §IV-B: "It is prohibitive to configure bt-devices in an always-on
	// mode; otherwise, batteries last less than one week." An always-on
	// radio draws the full TX-class power continuously.
	b := NewTwoAA()
	life := b.Lifetime(TxPowerW)
	if life > 7*24*time.Hour {
		t.Errorf("always-on lifetime = %v, want < 1 week", life)
	}
}

func TestLifetimeZeroPower(t *testing.T) {
	b := NewTwoAA()
	if got := b.Lifetime(0); got <= 0 {
		t.Errorf("zero-power lifetime = %v, want max duration", got)
	}
}

func TestMoteAveragePowerMonotone(t *testing.T) {
	// Longer send periods must never increase power.
	prev := math.Inf(1)
	for _, tsnd := range []float64{2, 4, 8, 16, 32, 64} {
		p := MoteAveragePower(2, tsnd)
		if p >= prev {
			t.Fatalf("power not decreasing at tsnd=%v", tsnd)
		}
		prev = p
	}
}

// Property: meter energy is additive over any split of the same power
// profile.
func TestMeterAdditiveProperty(t *testing.T) {
	f := func(wRaw, d1Raw, d2Raw uint8) bool {
		w := float64(wRaw) + 1
		d1 := float64(d1Raw) + 1
		d2 := float64(d2Raw) + 1
		a := NewMeter("a")
		a.Add(w, d1+d2)
		b := NewMeter("b")
		b.Add(w, d1)
		b.Add(w, d2)
		return math.Abs(a.EnergyJ()-b.EnergyJ()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: battery can never report negative remaining charge.
func TestBatteryNeverNegativeProperty(t *testing.T) {
	f := func(drains []uint16) bool {
		b := NewTwoAA()
		for _, d := range drains {
			b.Drain(float64(d))
		}
		return b.RemainingJ() >= 0 && b.FractionRemaining() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
