package vent

import (
	"context"
	"math"
	"testing"
	"time"

	"bubblezero/internal/exergy"
	"bubblezero/internal/hydraulic"
	"bubblezero/internal/pid"
	"bubblezero/internal/psychro"
	"bubblezero/internal/sim"
)

var (
	testStart = time.Date(2014, 3, 10, 13, 0, 0, 0, time.UTC)
	tropical  = psychro.NewStateDewPoint(28.9, 27.4, 0)
)

func newTestTank(t *testing.T) *hydraulic.Tank {
	t.Helper()
	tank, err := hydraulic.NewTank(150, 8, exergy.DefaultChiller(), 2500)
	if err != nil {
		t.Fatal(err)
	}
	return tank
}

func newTestModule(t *testing.T) (*Module, *hydraulic.Tank) {
	t.Helper()
	tank := newTestTank(t)
	m, err := New(DefaultConfig(), tank, func() psychro.State { return tropical }, 410)
	if err != nil {
		t.Fatal(err)
	}
	return m, tank
}

func runModule(t *testing.T, m *Module, tank *hydraulic.Tank, d time.Duration, extra ...sim.Component) {
	t.Helper()
	e := sim.NewEngine(sim.MustClock(testStart, time.Second), 5)
	for _, c := range extra {
		e.Register(c)
	}
	e.Register(m)
	e.Register(sim.ComponentFunc{ID: "tank", Fn: func(env *sim.Env) {
		tank.Step(env.Dt(), 25, 28.9)
	}})
	if err := e.RunFor(context.Background(), d); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.HorizonS = 0 },
		func(c *Config) { c.ZoneVolumeM3 = 0 },
		func(c *Config) { c.PullDownOffsetK = -1 },
		func(c *Config) { c.CO2TargetPPM = 0 },
		func(c *Config) { c.Coil.MaxFlowLpm = 0 },
		func(c *Config) { c.Fan.MaxFlowM3s = 0 },
		func(c *Config) { c.DewPID.OutMax = -1 },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate", i)
		}
	}
}

func TestDefaultRHPrefMatches18DewAt25(t *testing.T) {
	m, _ := newTestModule(t)
	if dp := m.TPDew(); math.Abs(dp-18) > 0.1 {
		t.Errorf("T_p_dew = %v, want ≈18 (the paper's humidity target)", dp)
	}
}

func TestCoilLinearDewDrop(t *testing.T) {
	tank := newTestTank(t)
	cfg := DefaultConfig()
	cfg.Coil.TauS = 0 // examine the steady-state law directly
	pump := &hydraulic.Pump{MaxFlowLpm: cfg.Coil.MaxFlowLpm, MaxPowerW: 4, StandbyW: 0.2}
	box, err := NewAirbox(cfg.Coil, cfg.Fan, pump, cfg.DewPID)
	if err != nil {
		t.Fatal(err)
	}
	box.SetFanFlow(0.01)
	box.pump.SetFlow(1.0) // 1 L/min → 10 K drop from 27.4 → 17.4
	box.Process(tropical, tank, 1)
	if got := box.Outlet().DewPoint(); math.Abs(got-17.4) > 0.05 {
		t.Errorf("outlet dew = %v, want 17.4 (linear law)", got)
	}
	// Double flow: clamped at tank temp + approach = 9 °C.
	box.pump.SetFlow(2.0)
	box.Process(tropical, tank, 1)
	if got := box.Outlet().DewPoint(); math.Abs(got-9) > 0.05 {
		t.Errorf("outlet dew = %v, want clamp at 9", got)
	}
}

func TestCoilLagSmoothsResponse(t *testing.T) {
	tank := newTestTank(t)
	box := mustBox(t)
	box.SetFanFlow(0.01)
	box.pump.SetFlow(2.0)
	box.Process(tropical, tank, 1)
	first := box.Outlet().DewPoint()
	if first < tropical.DewPoint()-2 {
		t.Errorf("first-step dew %v dropped too fast for a lagged coil", first)
	}
	for i := 0; i < 300; i++ {
		box.Process(tropical, tank, 1)
	}
	if settled := box.Outlet().DewPoint(); math.Abs(settled-9) > 0.3 {
		t.Errorf("settled dew = %v, want ≈9", settled)
	}
}

func mustBox(t *testing.T) *Airbox {
	t.Helper()
	cfg := DefaultConfig()
	pump := &hydraulic.Pump{MaxFlowLpm: cfg.Coil.MaxFlowLpm, MaxPowerW: 4, StandbyW: 0.2}
	box, err := NewAirbox(cfg.Coil, cfg.Fan, pump, cfg.DewPID)
	if err != nil {
		t.Fatal(err)
	}
	return box
}

func TestAirboxIdleWhenFansOff(t *testing.T) {
	tank := newTestTank(t)
	box := mustBox(t)
	box.pump.SetFlow(2)
	box.Process(tropical, tank, 1)
	if box.CoilLoadW() != 0 || box.CondensateKgS() != 0 {
		t.Error("idle box reported load or condensate")
	}
	if box.FlapOpen() {
		t.Error("flap open with fans off")
	}
}

func TestAirboxCondensateAndLoadPositive(t *testing.T) {
	tank := newTestTank(t)
	box := mustBox(t)
	box.SetFanFlow(0.015)
	box.pump.SetFlow(1.5)
	box.Process(tropical, tank, 1)
	if box.CondensateKgS() <= 0 {
		t.Error("dehumidifying tropical air should condense water")
	}
	if box.CoilLoadW() <= 0 {
		t.Error("dehumidification should load the coil")
	}
	if !box.FlapOpen() {
		t.Error("flap should open when fans run")
	}
	// Outlet must be cooler and drier than intake.
	if box.Outlet().T >= tropical.T || box.Outlet().W >= tropical.W {
		t.Errorf("outlet %v not cooler/drier than intake %v", box.Outlet(), tropical)
	}
}

func TestAirboxFanClamp(t *testing.T) {
	box := mustBox(t)
	box.SetFanFlow(99)
	if got := box.FanFlow(); got != box.MaxFanFlow() {
		t.Errorf("fan flow = %v, want clamp at %v", got, box.MaxFanFlow())
	}
	box.SetFanFlow(-1)
	if box.FanFlow() != 0 {
		t.Error("negative fan command accepted")
	}
}

func TestAirboxPowerIncreasesWithFlow(t *testing.T) {
	box := mustBox(t)
	box.SetFanFlow(0)
	idle := box.PowerW()
	box.SetFanFlow(box.MaxFanFlow())
	full := box.PowerW()
	if full <= idle {
		t.Errorf("full-speed power %v <= idle %v", full, idle)
	}
}

func TestNewValidation(t *testing.T) {
	tank := newTestTank(t)
	if _, err := New(DefaultConfig(), nil, func() psychro.State { return tropical }, 410); err == nil {
		t.Error("nil tank accepted")
	}
	if _, err := New(DefaultConfig(), tank, nil, 410); err == nil {
		t.Error("nil outdoor accepted")
	}
	if _, err := NewAirbox(DefaultCoil(), DefaultFan(), nil, DefaultConfig().DewPID); err == nil {
		t.Error("nil pump accepted")
	}
	if _, err := NewAirbox(CoilConfig{}, DefaultFan(),
		&hydraulic.Pump{MaxFlowLpm: 2}, DefaultConfig().DewPID); err == nil {
		t.Error("invalid coil accepted")
	}
	if _, err := NewAirbox(DefaultCoil(), DefaultFan(),
		&hydraulic.Pump{MaxFlowLpm: 2}, pid.Config{}); err == nil {
		t.Error("invalid PID accepted")
	}
}

func TestDewTargetDepressedDuringPullDown(t *testing.T) {
	m, tank := newTestModule(t)
	m.ObserveSupplyTemp(18)
	for z := 0; z < NumBoxes; z++ {
		m.ObserveZoneTemp(z, 28.9)
		m.ObserveZoneRH(z, 92) // humid: room dew ≈ 27.4, above target
	}
	runModule(t, m, tank, 10*time.Second)
	// T_r,t_dew = min(18, 18) = 18; room dew 27.4 > 18 → target 18−2 = 16.
	if got := m.TaTarget(); math.Abs(got-16) > 0.2 {
		t.Errorf("TaTarget = %v, want ≈16 (pull-down depression)", got)
	}
}

func TestDewTargetMaintainedAtEquilibrium(t *testing.T) {
	m, tank := newTestModule(t)
	m.ObserveSupplyTemp(18)
	for z := 0; z < NumBoxes; z++ {
		m.ObserveZoneTemp(z, 25)
		m.ObserveZoneRH(z, 60) // dew ≈ 16.7, below the 18 target
	}
	runModule(t, m, tank, 10*time.Second)
	if got := m.TaTarget(); math.Abs(got-18) > 0.2 {
		t.Errorf("TaTarget = %v, want ≈18 (maintenance mode)", got)
	}
}

func TestSupplyTempCapsRoomDewTarget(t *testing.T) {
	m, tank := newTestModule(t)
	// Radiant water at 15 °C: room dew must be kept below 15, not the
	// occupant's 18, to protect the panels.
	m.ObserveSupplyTemp(15)
	for z := 0; z < NumBoxes; z++ {
		m.ObserveZoneTemp(z, 25)
		m.ObserveZoneRH(z, 60) // dew 16.7 > 15 → pull-down
	}
	runModule(t, m, tank, 10*time.Second)
	if got := m.TaTarget(); math.Abs(got-13) > 0.2 {
		t.Errorf("TaTarget = %v, want ≈13 (15 − 2 pull-down)", got)
	}
}

func TestFansRunOnHumidityError(t *testing.T) {
	m, tank := newTestModule(t)
	m.ObserveSupplyTemp(18)
	for z := 0; z < NumBoxes; z++ {
		m.ObserveZoneTemp(z, 28.9)
		m.ObserveZoneRH(z, 92)
	}
	runModule(t, m, tank, time.Minute)
	for i := 0; i < NumBoxes; i++ {
		if m.Box(i).FanFlow() <= 0 {
			t.Errorf("box %d fans off despite large humidity error", i)
		}
		if !m.Box(i).FlapOpen() {
			t.Errorf("box %d flap closed while ventilating", i)
		}
	}
	if m.CoilLoadW() <= 0 {
		t.Error("no coil load while dehumidifying")
	}
	if m.PowerW() <= 0 {
		t.Error("no power draw while ventilating")
	}
}

func TestFansIdleWhenSatisfied(t *testing.T) {
	m, tank := newTestModule(t)
	m.ObserveSupplyTemp(18)
	for z := 0; z < NumBoxes; z++ {
		m.ObserveZoneTemp(z, 25)
		m.ObserveZoneRH(z, 55) // dew ≈ 15.3, below target
		m.ObserveZoneCO2(z, 500)
	}
	runModule(t, m, tank, time.Minute)
	for i := 0; i < NumBoxes; i++ {
		if m.Box(i).FanFlow() > 0 {
			t.Errorf("box %d ventilating with no error", i)
		}
	}
}

func TestFansRunOnCO2Error(t *testing.T) {
	m, tank := newTestModule(t)
	m.ObserveSupplyTemp(18)
	for z := 0; z < NumBoxes; z++ {
		m.ObserveZoneTemp(z, 25)
		m.ObserveZoneRH(z, 55)
		m.ObserveZoneCO2(z, 1400) // stuffy
	}
	runModule(t, m, tank, time.Minute)
	for i := 0; i < NumBoxes; i++ {
		if m.Box(i).FanFlow() <= 0 {
			t.Errorf("box %d fans off despite CO2 error", i)
		}
	}
}

func TestPerZoneIndependence(t *testing.T) {
	// Only subspace-1 is humid: its box must ventilate harder than the
	// others — the "distributed" in distributed ventilation.
	m, tank := newTestModule(t)
	m.ObserveSupplyTemp(18)
	m.ObserveZoneTemp(0, 27)
	m.ObserveZoneRH(0, 90)
	for z := 1; z < NumBoxes; z++ {
		m.ObserveZoneTemp(z, 25)
		m.ObserveZoneRH(z, 55)
	}
	runModule(t, m, tank, time.Minute)
	if m.Box(0).FanFlow() <= 0 {
		t.Fatal("humid zone box not ventilating")
	}
	for i := 1; i < NumBoxes; i++ {
		if m.Box(i).FanFlow() >= m.Box(0).FanFlow() {
			t.Errorf("satisfied box %d ventilating as hard as the humid one", i)
		}
	}
}

func TestCoilPIDTracksOutletDewTarget(t *testing.T) {
	m, tank := newTestModule(t)
	m.ObserveSupplyTemp(18)
	for z := 0; z < NumBoxes; z++ {
		m.ObserveZoneTemp(z, 28.9)
		m.ObserveZoneRH(z, 92)
	}
	// Feed back the modelled outlet dew as the SHT75 measurement.
	feedback := sim.ComponentFunc{ID: "sht75", Fn: func(*sim.Env) {
		for i := 0; i < NumBoxes; i++ {
			m.ObserveAirboxDew(i, m.Box(i).Outlet().DewPoint())
		}
	}}
	runModule(t, m, tank, 10*time.Minute, feedback)
	for i := 0; i < NumBoxes; i++ {
		got := m.Box(i).Outlet().DewPoint()
		want := m.TaTarget()
		if math.Abs(got-want) > 1.0 {
			t.Errorf("box %d outlet dew %v, want ≈ target %v", i, got, want)
		}
	}
}

func TestObserveIgnoresInvalid(t *testing.T) {
	m, _ := newTestModule(t)
	m.ObserveZoneTemp(-1, 25)
	m.ObserveZoneTemp(99, 25)
	m.ObserveZoneTemp(0, math.NaN())
	m.ObserveZoneRH(0, math.NaN())
	m.ObserveZoneCO2(-1, 400)
	m.ObserveSupplyTemp(math.NaN())
	m.ObserveAirboxDew(99, 10)
	if !math.IsNaN(m.RoomDew()) {
		t.Error("invalid observations recorded")
	}
	if m.Box(-1) != nil || m.Box(99) != nil {
		t.Error("out-of-range Box should return nil")
	}
	if f, _, _ := m.VentInputFor(-1); f != 0 {
		t.Error("out-of-range VentInputFor should be zero")
	}
}

func TestVentInputForExposesOutlet(t *testing.T) {
	m, tank := newTestModule(t)
	m.ObserveSupplyTemp(18)
	for z := 0; z < NumBoxes; z++ {
		m.ObserveZoneTemp(z, 28.9)
		m.ObserveZoneRH(z, 92)
	}
	runModule(t, m, tank, time.Minute)
	flow, supply, co2 := m.VentInputFor(0)
	if flow <= 0 {
		t.Fatal("no flow reported")
	}
	if co2 != 410 {
		t.Errorf("supply CO2 = %v, want 410", co2)
	}
	if supply.DewPoint() >= tropical.DewPoint() {
		t.Error("supply air not dried")
	}
}
