package vent

import (
	"math"

	"bubblezero/internal/hydraulic"
	"bubblezero/internal/pid"
	"bubblezero/internal/psychro"
)

// ZoneObsState is one subspace's observation state (NaN before data).
// The humidity-ratio memo is not captured: restore keys it to NaN so the
// next control pass recomputes from the same observation pair.
//
//bzlint:state ExportState RestoreState
type ZoneObsState struct {
	Temp, RH, CO2 float64
}

// AirboxState is one airbox's mutable state, pump and PID included.
//
//bzlint:state ExportState RestoreState
type AirboxState struct {
	FanFlow    float64
	FlapOpen   bool
	CurDew     float64 // NaN until first air
	Outlet     psychro.State
	Condensate float64
	CoilLoadW  float64
	Pump       hydraulic.PumpState
	Dew        pid.State
}

// ModuleState is the ventilation module's full mutable state. TPref/RHPref
// travel because SetPreference mutates them at runtime; the psychrometric
// memos are rebuilt cold (same pure functions, same arguments, same bits).
//
//bzlint:state ExportState RestoreState
type ModuleState struct {
	TPref, RHPref float64

	Zones        [NumBoxes]ZoneObsState
	TSupp        float64 // NaN until Control-C-1 broadcasts
	AirboxDew    [NumBoxes]float64
	BoxUntrusted [NumBoxes]bool
	TaTarget     float64

	Boxes [NumBoxes]AirboxState
}

// ExportState captures the module's mutable state.
func (m *Module) ExportState() ModuleState {
	st := ModuleState{
		TPref:        m.cfg.TPref,
		RHPref:       m.cfg.RHPref,
		TSupp:        m.tSupp,
		AirboxDew:    m.airboxDew,
		BoxUntrusted: m.boxUntrusted,
		TaTarget:     m.taTarget,
	}
	for i := range m.zones {
		z := &m.zones[i]
		st.Zones[i] = ZoneObsState{Temp: z.temp, RH: z.rh, CO2: z.co2}
	}
	for i, b := range m.boxes {
		st.Boxes[i] = AirboxState{
			FanFlow:    b.fanFlow,
			FlapOpen:   b.flapOpen,
			CurDew:     b.curDew,
			Outlet:     b.outlet,
			Condensate: b.condensate,
			CoilLoadW:  b.coilLoadW,
			Pump:       b.pump.ExportState(),
			Dew:        b.dew.ExportState(),
		}
	}
	return st
}

// RestoreState overwrites the module's mutable state and invalidates
// every exact-key memo.
func (m *Module) RestoreState(st ModuleState) {
	m.cfg.TPref = st.TPref
	m.cfg.RHPref = st.RHPref
	m.tSupp = st.TSupp
	m.airboxDew = st.AirboxDew
	m.boxUntrusted = st.BoxUntrusted
	m.taTarget = st.TaTarget
	for i := range m.zones {
		m.zones[i] = zoneObs{
			temp: st.Zones[i].Temp, rh: st.Zones[i].RH, co2: st.Zones[i].CO2,
			wKeyTemp: math.NaN(), wKeyRH: math.NaN(),
		}
	}
	for i, b := range m.boxes {
		bs := &st.Boxes[i]
		b.fanFlow = bs.FanFlow
		b.flapOpen = bs.FlapOpen
		b.curDew = bs.CurDew
		b.outlet = bs.Outlet
		b.condensate = bs.Condensate
		b.coilLoadW = bs.CoilLoadW
		b.pump.RestoreState(bs.Pump)
		b.dew.RestoreState(bs.Dew)
	}
	m.tpDewMemo = memo2{}
	m.roomDewMemo = memo2{}
	m.sizingMemo.valid = false
}
