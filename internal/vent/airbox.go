// Package vent implements BubbleZERO's distributed ventilation module
// (§III-C): four airbox + CO₂flap pairs, one per subspace, that
// dehumidify outdoor air over an 8 °C copper coil and ventilate each
// subspace on demand. The module computes the target outlet dew point
// T_a,t_dew from the occupant preference, the radiant supply temperature,
// and the current room dew point; a PID on the coil water flow tracks it
// (the paper: "The flow rate of the circulated water inside the copper
// array ... is linearly proportional to the dew point of the air"); and
// the fan speed is sized to neutralise the humidity and CO₂ errors within
// a fixed horizon, F_vent = max{F_humd, F_CO2}.
package vent

import (
	"fmt"
	"math"

	"bubblezero/internal/hydraulic"
	"bubblezero/internal/pid"
	"bubblezero/internal/psychro"
)

// NumBoxes is the number of airbox/CO₂flap pairs (one per subspace).
const NumBoxes = 4

// CoilConfig describes the copper-pipe dehumidification coil.
type CoilConfig struct {
	// DewDropPerLpm is the outlet dew-point reduction per L/min of coil
	// water flow — the linear law the paper states.
	DewDropPerLpm float64
	// ApproachK is how close the outlet dew point can get to the coil
	// water temperature.
	ApproachK float64
	// MaxFlowLpm is the maximum coil water flow.
	MaxFlowLpm float64
	// ReheatK is the temperature rise of the saturated coil-outlet air
	// before it enters the room (fan heat, duct gains).
	ReheatK float64
	// TauS is the coil's thermal time constant: the outlet dew point
	// relaxes toward its steady-state value with this first-order lag
	// (copper mass and water content are not instantaneous).
	TauS float64
}

// DefaultCoil returns the calibrated coil model.
func DefaultCoil() CoilConfig {
	return CoilConfig{DewDropPerLpm: 10, ApproachK: 1, MaxFlowLpm: 2, ReheatK: 2, TauS: 25}
}

// Validate checks the coil parameters.
func (c CoilConfig) Validate() error {
	if c.DewDropPerLpm <= 0 || c.MaxFlowLpm <= 0 {
		return fmt.Errorf("vent: coil DewDropPerLpm and MaxFlowLpm must be > 0")
	}
	if c.ApproachK < 0 || c.ReheatK < 0 {
		return fmt.Errorf("vent: coil ApproachK and ReheatK must be >= 0")
	}
	if c.TauS < 0 {
		return fmt.Errorf("vent: coil TauS must be >= 0")
	}
	return nil
}

// FanConfig describes one airbox's DC fan bank (four fans per box).
type FanConfig struct {
	// MaxFlowM3s is the ventilation volume flow at full speed.
	MaxFlowM3s float64
	// MaxPowerW is the electrical draw at full speed.
	MaxPowerW float64
	// StandbyW is drawn whenever the box is powered.
	StandbyW float64
}

// DefaultFan returns the calibrated fan bank.
func DefaultFan() FanConfig {
	return FanConfig{MaxFlowM3s: 0.024, MaxPowerW: 11, StandbyW: 0.3}
}

// Validate checks the fan parameters.
func (f FanConfig) Validate() error {
	if f.MaxFlowM3s <= 0 {
		return fmt.Errorf("vent: fan MaxFlowM3s must be > 0")
	}
	if f.MaxPowerW < 0 || f.StandbyW < 0 {
		return fmt.Errorf("vent: fan powers must be >= 0")
	}
	return nil
}

// Airbox is one dehumidification/ventilation unit: DC fans inhale outdoor
// air through a filter and a cold-water copper coil; a damper prevents
// leakage when idle.
type Airbox struct {
	coil CoilConfig
	fan  FanConfig
	pump *hydraulic.Pump
	dew  *pid.Controller

	fanFlow  float64 // commanded m³/s
	flapOpen bool
	curDew   float64 // lagged coil outlet dew point (NaN until first air)

	outlet     psychro.State
	condensate float64 // kg/s removed from the processed air
	coilLoadW  float64
}

// NewAirbox assembles an airbox.
func NewAirbox(coil CoilConfig, fan FanConfig, pump *hydraulic.Pump, dewPID pid.Config) (*Airbox, error) {
	if err := coil.Validate(); err != nil {
		return nil, err
	}
	if err := fan.Validate(); err != nil {
		return nil, err
	}
	if pump == nil {
		return nil, fmt.Errorf("vent: airbox needs a coil pump")
	}
	if err := pump.Validate(); err != nil {
		return nil, err
	}
	ctrl, err := pid.New(dewPID)
	if err != nil {
		return nil, err
	}
	return &Airbox{coil: coil, fan: fan, pump: pump, dew: ctrl, curDew: math.NaN()}, nil
}

// SetDewTarget updates the outlet dew-point target T_a,t_dew.
func (b *Airbox) SetDewTarget(t float64) { b.dew.SetSetpoint(t) }

// DewTarget returns the current outlet dew-point target.
func (b *Airbox) DewTarget() float64 { return b.dew.Setpoint() }

// SetFanFlow commands the ventilation volume flow (clamped to the fan
// capacity). The CO₂flap opens whenever the fans run.
func (b *Airbox) SetFanFlow(m3s float64) {
	if m3s < 0 {
		m3s = 0
	}
	if m3s > b.fan.MaxFlowM3s {
		m3s = b.fan.MaxFlowM3s
	}
	b.fanFlow = m3s
	b.flapOpen = m3s > 0
}

// FanFlow returns the commanded ventilation flow in m³/s.
func (b *Airbox) FanFlow() float64 { return b.fanFlow }

// FlapOpen reports whether the CO₂flap is open.
func (b *Airbox) FlapOpen() bool { return b.flapOpen }

// MaxFanFlow returns the fan capacity in m³/s.
func (b *Airbox) MaxFanFlow() float64 { return b.fan.MaxFlowM3s }

// Outlet returns the most recent outlet air state.
func (b *Airbox) Outlet() psychro.State { return b.outlet }

// CondensateKgS returns the moisture extraction rate of the last step.
func (b *Airbox) CondensateKgS() float64 { return b.condensate }

// CoilLoadW returns the thermal load placed on the cold-water loop by the
// last step.
func (b *Airbox) CoilLoadW() float64 { return b.coilLoadW }

// PowerW returns the electrical draw of fans and coil pump.
func (b *Airbox) PowerW() float64 {
	frac := 0.0
	if b.fan.MaxFlowM3s > 0 {
		frac = b.fanFlow / b.fan.MaxFlowM3s
	}
	return b.fan.StandbyW + b.fan.MaxPowerW*frac*frac*frac + b.pump.PowerW()
}

// ParkPump stops the coil pump without disturbing the PID state; used
// while the fans are off.
func (b *Airbox) ParkPump() { b.pump.SetFlow(0) }

// SetDewIntegratorFrozen freezes or thaws the outlet-dew PID integrator
// — the degradation watchdog's response to this box's SHT75 mote going
// stale (see pid.Controller.SetIntegratorFrozen).
func (b *Airbox) SetDewIntegratorFrozen(on bool) { b.dew.SetIntegratorFrozen(on) }

// CoilPump exposes the coil water pump for fault injection.
func (b *Airbox) CoilPump() *hydraulic.Pump { return b.pump }

// UpdateDewControl advances the outlet-dew PID with the measured outlet
// dew point and commands the coil pump accordingly.
func (b *Airbox) UpdateDewControl(measuredDew, dt float64) {
	flow := b.dew.Update(measuredDew, dt)
	if flow > b.coil.MaxFlowLpm {
		flow = b.coil.MaxFlowLpm
	}
	b.pump.SetFlow(flow)
}

// Process pushes outdoor air through the box for dt seconds: the coil
// drops the dew point linearly with water flow (clamped at the water
// temperature plus approach), the separated vapour condenses out, and the
// coil load is returned to the cold tank.
func (b *Airbox) Process(outdoor psychro.State, tank *hydraulic.Tank, dt float64) {
	if b.fanFlow <= 0 {
		// Damper closed: no air moves, no coil load.
		b.outlet = outdoor
		b.condensate = 0
		b.coilLoadW = 0
		return
	}
	coilFlow := b.pump.FlowLpm()
	inDew := outdoor.DewPoint()
	ssDew := inDew - b.coil.DewDropPerLpm*coilFlow
	if floor := tank.Temp() + b.coil.ApproachK; ssDew < floor {
		ssDew = floor
	}
	if ssDew > inDew {
		ssDew = inDew
	}
	// First-order coil lag toward the steady-state dew point. A coil that
	// has never seen air starts at the inlet condition.
	if math.IsNaN(b.curDew) {
		b.curDew = inDew
	}
	if b.coil.TauS <= 0 {
		b.curDew = ssDew
	} else {
		frac := dt / b.coil.TauS
		if frac > 1 {
			frac = 1
		}
		b.curDew += (ssDew - b.curDew) * frac
	}
	outDew := b.curDew
	// Air leaves the coil saturated at outDew, then reheats slightly; it
	// can never leave warmer than it arrived.
	outT := math.Min(outDew+b.coil.ReheatK, outdoor.T)
	b.outlet = psychro.NewStateDewPoint(outT, outDew, outdoor.P)

	mdotAir := b.fanFlow * psychro.DryAirDensity(outdoor.T, outdoor.P)
	b.condensate = mdotAir * (outdoor.W - b.outlet.W)
	if b.condensate < 0 {
		b.condensate = 0
	}
	b.coilLoadW = mdotAir * (outdoor.Enthalpy() - b.outlet.Enthalpy()) * 1000
	if b.coilLoadW < 0 {
		b.coilLoadW = 0
	}
	if coilFlow > 0 && b.coilLoadW > 0 {
		tRet := tank.Temp() + b.coilLoadW/(hydraulic.LpmToKgs(coilFlow)*hydraulic.CwWater)
		tank.ReturnWater(coilFlow, tRet)
	}
}
