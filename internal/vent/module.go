package vent

import (
	"fmt"
	"math"

	"bubblezero/internal/hydraulic"
	"bubblezero/internal/pid"
	"bubblezero/internal/psychro"
	"bubblezero/internal/sim"
)

// Config parameterises the ventilation module.
type Config struct {
	// TPref and RHPref are the occupant's preferred temperature (°C) and
	// relative humidity (%); together they define T_p_dew.
	TPref, RHPref float64
	// CO2TargetPPM is the indoor CO₂ target.
	CO2TargetPPM float64
	// HorizonS is the paper's T: the time budget for neutralising the
	// humidity/CO₂ error ("To promptly approach to the control targets in
	// T seconds (e.g., 60 seconds)").
	HorizonS float64
	// PullDownOffsetK is the dew-target depression applied while the room
	// is wetter than the target ("T_a,t_dew is set to T_r,t_dew − 2 °C to
	// quickly pull down the room air dew point").
	PullDownOffsetK float64
	// DewDeadbandK is the hysteresis above the room dew target before the
	// fans engage for dehumidification. Without it, sensor noise at the
	// threshold keeps the boxes cycling at high load and the equilibrium
	// ventilation power balloons far past the paper's ≈213 W.
	DewDeadbandK float64
	// ZoneVolumeM3 is the subspace volume used in the F_humd/F_CO2
	// sizing.
	ZoneVolumeM3 float64
	// Coil and Fan describe each airbox's hardware.
	Coil CoilConfig
	Fan  FanConfig
	// DewPID is the outlet-dew controller configuration.
	DewPID pid.Config
}

// DefaultConfig returns the paper's operating configuration: 25 °C / 18 °C
// dew target (≈65 % RH at 25 °C) with a 60 s control horizon.
func DefaultConfig() Config {
	return Config{
		TPref:           25,
		RHPref:          65.3, // RH at 25 °C whose dew point is 18 °C
		CO2TargetPPM:    800,
		HorizonS:        60,
		PullDownOffsetK: 2,
		DewDeadbandK:    0.35,
		ZoneVolumeM3:    15,
		Coil:            DefaultCoil(),
		Fan:             DefaultFan(),
		DewPID: pid.Config{
			Kp:      0.4,
			Ki:      0.02,
			OutMin:  0,
			OutMax:  2,
			Reverse: true, // measured dew above target → more coil flow
		},
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.HorizonS <= 0 {
		return fmt.Errorf("vent: HorizonS must be > 0, got %v", c.HorizonS)
	}
	if c.ZoneVolumeM3 <= 0 {
		return fmt.Errorf("vent: ZoneVolumeM3 must be > 0, got %v", c.ZoneVolumeM3)
	}
	if c.PullDownOffsetK < 0 {
		return fmt.Errorf("vent: PullDownOffsetK must be >= 0, got %v", c.PullDownOffsetK)
	}
	if c.DewDeadbandK < 0 {
		return fmt.Errorf("vent: DewDeadbandK must be >= 0, got %v", c.DewDeadbandK)
	}
	if c.CO2TargetPPM <= 0 {
		return fmt.Errorf("vent: CO2TargetPPM must be > 0, got %v", c.CO2TargetPPM)
	}
	if err := c.Coil.Validate(); err != nil {
		return err
	}
	if err := c.Fan.Validate(); err != nil {
		return err
	}
	return c.DewPID.Validate()
}

// zoneObs is the per-subspace observation state assembled from broadcast
// sensor messages.
type zoneObs struct {
	temp, rh, co2 float64

	// wKeyTemp/wKeyRH/w memoise HumidityRatio(temp, rh): observations only
	// change when a broadcast arrives, while the control law reruns every
	// tick. The memo returns the exact float the recomputation would (same
	// pure function, same arguments), so the control output is
	// bit-identical; NaN observations never match the key and fall through
	// to the (NaN-propagating) computation.
	wKeyTemp, wKeyRH, w float64
}

// humidityRatio returns HumidityRatio(temp, rh, AtmPressure), cached
// against the current observation pair.
func (z *zoneObs) humidityRatio() float64 {
	//bzlint:allow floateq exact-key memo; NaN keys never match and force recomputation
	if z.temp == z.wKeyTemp && z.rh == z.wKeyRH {
		return z.w
	}
	z.wKeyTemp, z.wKeyRH = z.temp, z.rh
	z.w = psychro.HumidityRatio(z.temp, z.rh, psychro.AtmPressure)
	return z.w
}

// memo2 caches one float64 result keyed on two exact float64 arguments.
// The zero value is primed with NaN keys, which can never match, so the
// first lookup always computes.
type memo2 struct {
	a, b, out float64
	valid     bool
}

func (m *memo2) get(a, b float64, f func(a, b float64) float64) float64 {
	//bzlint:allow floateq exact-key memo; NaN keys never match and force recomputation
	if m.valid && a == m.a && b == m.b {
		return m.out
	}
	m.a, m.b = a, b
	m.out = f(a, b)
	m.valid = true
	return m.out
}

// Module is the distributed ventilation controller (Control-V-1/2/3) plus
// its four airboxes. Observations arrive via Observe*; Step runs the
// §III-C control law and processes the boxes.
type Module struct {
	cfg   Config
	tank  *hydraulic.Tank
	boxes [NumBoxes]*Airbox

	outdoor func() psychro.State
	co2Out  float64 // outdoor CO₂ used as supply concentration

	zones     [NumBoxes]zoneObs
	tSupp     float64 // radiant supply temperature from Control-C-1
	airboxDew [NumBoxes]float64

	// boxUntrusted marks boxes whose outlet-dew mote has gone stale: the
	// coil PID then tracks the box's own model-predicted outlet dew
	// instead of the last (frozen) measurement.
	boxUntrusted [NumBoxes]bool

	taTarget float64

	// Exact-argument memos for the psychrometric conversions the per-tick
	// control law repeats on slowly-changing inputs (see zoneObs).
	tpDewMemo   memo2 // (TPref, RHPref) -> preferred dew point
	roomDewMemo memo2 // (avg temp, avg rh) -> room dew point
	sizingMemo  struct {
		target            float64
		wTarget, wTrigger float64
		valid             bool
	}
}

var _ sim.Component = (*Module)(nil)

// New builds the module. outdoor supplies the intake air state; co2Out is
// the supply-air CO₂ concentration (ppm).
func New(cfg Config, tank *hydraulic.Tank, outdoor func() psychro.State, co2Out float64) (*Module, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tank == nil {
		return nil, fmt.Errorf("vent: tank must not be nil")
	}
	if outdoor == nil {
		return nil, fmt.Errorf("vent: outdoor must not be nil")
	}
	m := &Module{cfg: cfg, tank: tank, outdoor: outdoor, co2Out: co2Out, tSupp: math.NaN()}
	for i := range m.boxes {
		pump := &hydraulic.Pump{MaxFlowLpm: cfg.Coil.MaxFlowLpm, MaxPowerW: 2, StandbyW: 0.1}
		box, err := NewAirbox(cfg.Coil, cfg.Fan, pump, cfg.DewPID)
		if err != nil {
			return nil, err
		}
		m.boxes[i] = box
		m.zones[i] = zoneObs{temp: math.NaN(), rh: math.NaN(), co2: math.NaN()}
		m.airboxDew[i] = math.NaN()
	}
	return m, nil
}

// Name implements sim.Component.
func (m *Module) Name() string { return "vent.module" }

// Box exposes one airbox for instrumentation.
func (m *Module) Box(i int) *Airbox {
	if i < 0 || i >= NumBoxes {
		return nil
	}
	return m.boxes[i]
}

// ObserveZoneTemp feeds a subspace temperature reading (°C).
func (m *Module) ObserveZoneTemp(zone int, t float64) {
	if zone >= 0 && zone < NumBoxes && !math.IsNaN(t) {
		m.zones[zone].temp = t
	}
}

// ObserveZoneRH feeds a subspace relative-humidity reading (%).
func (m *Module) ObserveZoneRH(zone int, rh float64) {
	if zone >= 0 && zone < NumBoxes && !math.IsNaN(rh) {
		m.zones[zone].rh = rh
	}
}

// ObserveZoneCO2 feeds a subspace CO₂ reading (ppm).
func (m *Module) ObserveZoneCO2(zone int, ppm float64) {
	if zone >= 0 && zone < NumBoxes && !math.IsNaN(ppm) {
		m.zones[zone].co2 = ppm
	}
}

// ObserveSupplyTemp feeds the radiant tank supply temperature T_supp from
// Control-C-1's broadcasts — the coupling that lets the ventilation module
// keep the room dew point below the radiant water temperature.
func (m *Module) ObserveSupplyTemp(t float64) {
	if !math.IsNaN(t) {
		m.tSupp = t
	}
}

// ObserveAirboxDew feeds an SHT75 outlet dew-point measurement for a box.
func (m *Module) ObserveAirboxDew(box int, dew float64) {
	if box >= 0 && box < NumBoxes && !math.IsNaN(dew) {
		m.airboxDew[box] = dew
	}
}

// SetBoxDewUntrusted marks (or clears) a box's outlet-dew measurement as
// untrusted. While set, the coil PID runs its integrator frozen against
// the model-predicted outlet dew point rather than chasing the frozen
// last measurement. Out-of-range boxes are ignored.
func (m *Module) SetBoxDewUntrusted(box int, on bool) {
	if box < 0 || box >= NumBoxes {
		return
	}
	m.boxUntrusted[box] = on
	m.boxes[box].SetDewIntegratorFrozen(on)
}

// BoxDewUntrusted reports whether a box's dew measurement is untrusted.
func (m *Module) BoxDewUntrusted(box int) bool {
	return box >= 0 && box < NumBoxes && m.boxUntrusted[box]
}

// DeratePumps limits every coil pump to frac of its commanded flow (1
// restores healthy pumps) — the fault layer's pump-degradation hook.
func (m *Module) DeratePumps(frac float64) {
	for _, b := range m.boxes {
		b.pump.SetDerate(frac)
	}
}

// SetPreference updates the occupant temperature/humidity preference.
func (m *Module) SetPreference(tPref, rhPref float64) {
	m.cfg.TPref = tPref
	m.cfg.RHPref = rhPref
}

// TPDew returns the preferred dew point T_p_dew derived from the occupant
// preference.
func (m *Module) TPDew() float64 {
	return m.tpDewMemo.get(m.cfg.TPref, m.cfg.RHPref, psychro.DewPoint)
}

// TaTarget returns the current airbox outlet dew target T_a,t_dew.
func (m *Module) TaTarget() float64 { return m.taTarget }

// RoomDew returns the observed room dew point (from averaged zone
// temperature and humidity), or NaN before data arrives.
func (m *Module) RoomDew() float64 {
	var tSum, rhSum float64
	n := 0
	for _, z := range m.zones {
		if !math.IsNaN(z.temp) && !math.IsNaN(z.rh) {
			tSum += z.temp
			rhSum += z.rh
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return m.roomDewMemo.get(tSum/float64(n), rhSum/float64(n), psychro.DewPoint)
}

// PowerW returns the total electrical draw of all boxes (fans + coil
// pumps).
func (m *Module) PowerW() float64 {
	var sum float64
	for _, b := range m.boxes {
		sum += b.PowerW()
	}
	return sum
}

// CoilPumpPowerW returns only the coil pump draw — the paper's COP
// measurement boundary for the ventilation module covers the chiller and
// pumps ("we also install power meters at major energy consuming devices,
// including chillers and pumps"), not the small DC fans.
func (m *Module) CoilPumpPowerW() float64 {
	var sum float64
	for _, b := range m.boxes {
		sum += b.pump.PowerW()
	}
	return sum
}

// CoilLoadW returns the total thermal load the boxes placed on the cold
// loop in the last step — the paper's "absorbed heat from inhaled air".
func (m *Module) CoilLoadW() float64 {
	var sum float64
	for _, b := range m.boxes {
		sum += b.CoilLoadW()
	}
	return sum
}

// VentInputFor returns the thermal-model boundary condition produced by a
// box in the last step.
func (m *Module) VentInputFor(box int) (volFlow float64, supply psychro.State, supplyCO2 float64) {
	if box < 0 || box >= NumBoxes {
		return 0, psychro.State{}, 0
	}
	b := m.boxes[box]
	return b.FanFlow(), b.Outlet(), m.co2Out
}

// Step implements sim.Component: one pass of the §III-C control law.
//
//bzlint:hotpath
func (m *Module) Step(env *sim.Env) {
	dt := env.Dt()
	out := m.outdoor()

	// Room target dew point: T_r,t_dew = min{T_p_dew, T_supp}.
	trTarget := m.TPDew()
	if !math.IsNaN(m.tSupp) && m.tSupp < trTarget {
		trTarget = m.tSupp
	}

	// Airbox outlet target: depressed while pulling down, equal while
	// maintaining.
	roomDew := m.RoomDew()
	switch {
	case math.IsNaN(roomDew):
		m.taTarget = trTarget
	case trTarget < roomDew:
		m.taTarget = trTarget - m.cfg.PullDownOffsetK
	default:
		m.taTarget = trTarget
	}

	for i, b := range m.boxes {
		b.SetDewTarget(m.taTarget)

		// Fan sizing: F_vent = max{F_humd, F_CO2}. trTarget is the sizing
		// dew target (the room target, not the depressed box target).
		z := &m.zones[i]
		fHumd := m.humidityFlow(z, b, trTarget)
		fCO2 := m.co2Flow(z)
		b.SetFanFlow(math.Max(fHumd, fCO2))

		// Coil control runs only while air moves; an idle box parks its
		// pump (no point chilling a coil nothing flows over).
		if b.FanFlow() > 0 {
			measured := m.airboxDew[i]
			if math.IsNaN(measured) || m.boxUntrusted[i] {
				measured = b.Outlet().DewPoint()
			}
			b.UpdateDewControl(measured, dt)
		} else {
			b.ParkPump()
		}

		b.Process(out, m.tank, dt)
	}
}

// humidityFlow sizes the ventilation flow (m³/s) needed to pull the zone
// humidity ratio to the target within the horizon, given the current box
// outlet dryness. target is the room dew target (min of preference and
// T_supp) computed once per Step.
func (m *Module) humidityFlow(z *zoneObs, b *Airbox, target float64) float64 {
	if math.IsNaN(z.temp) || math.IsNaN(z.rh) {
		return 0
	}
	wZone := z.humidityRatio()
	// wTarget and wTrigger depend only on the sizing target (the deadband
	// is fixed), which changes only when a T_supp broadcast moves it; the
	// memo holds both conversions. A NaN target never matches and
	// recomputes (propagating NaN exactly as the direct calls would).
	//bzlint:allow floateq exact-key memo on the sizing target; NaN never matches
	if !(m.sizingMemo.valid && target == m.sizingMemo.target) {
		m.sizingMemo.target = target
		m.sizingMemo.wTarget = psychro.HumidityRatioFromDewPoint(target, psychro.AtmPressure)
		m.sizingMemo.wTrigger = psychro.HumidityRatioFromDewPoint(target+m.cfg.DewDeadbandK, psychro.AtmPressure)
		m.sizingMemo.valid = true
	}
	wTarget := m.sizingMemo.wTarget
	// Hysteresis: the zone must exceed the target dew point by the
	// deadband before dehumidification kicks in.
	if wZone <= m.sizingMemo.wTrigger {
		return 0
	}
	wSupply := b.Outlet().W
	denom := wZone - wSupply
	if denom <= 1e-6 {
		// Supply no drier than the room: full blast is the best the box
		// can do (the coil PID will deepen the dryness).
		return b.MaxFanFlow()
	}
	return m.cfg.ZoneVolumeM3 * (wZone - wTarget) / denom / m.cfg.HorizonS
}

// co2Flow sizes the ventilation flow (m³/s) needed to pull the zone CO₂
// concentration to the target within the horizon.
func (m *Module) co2Flow(z *zoneObs) float64 {
	if math.IsNaN(z.co2) || z.co2 <= m.cfg.CO2TargetPPM {
		return 0
	}
	denom := z.co2 - m.co2Out
	if denom <= 1 {
		return 0
	}
	return m.cfg.ZoneVolumeM3 * (z.co2 - m.cfg.CO2TargetPPM) / denom / m.cfg.HorizonS
}
