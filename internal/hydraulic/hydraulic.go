// Package hydraulic models BubbleZERO's water circuits (§III-B, Figure 3):
// chilled-water tanks held at setpoint by a lift-dependent chiller, DC
// pumps driven by 0–5 V control signals, the supply/recycle mixing
// junction that Control-C-2 uses to raise the panel water temperature
// above the dew point, and the ceiling-panel heat exchanger with its
// surface-temperature estimate used for condensation safety.
package hydraulic

import (
	"fmt"
	"math"

	"bubblezero/internal/exergy"
)

// CwWater is the specific heat of water in J/(kg·K); the paper's constant
// c in P_remove = c·F·(T_retn − T_supp).
const CwWater = 4186.0

// LpmToKgs converts a water flow in litres/minute to kg/s.
func LpmToKgs(lpm float64) float64 { return lpm / 60.0 }

// HeatFlow returns the thermal power (W) carried by a water stream of
// flowLpm litres/minute heated from tSupp to tRet — exactly the paper's
// measurement P_remove = c·F·(T_retn − T_supp).
func HeatFlow(flowLpm, tSupp, tRet float64) float64 {
	return CwWater * LpmToKgs(flowLpm) * (tRet - tSupp)
}

// Pump is a DC circulation pump controlled by a 0–5 V signal
// (§III-B.2: "takes a voltage signal ranging from 0V to 5V as the input
// to control its speed"). Flow is linear in voltage; electrical draw
// follows an affinity-law cubic plus a standby floor.
type Pump struct {
	// MaxFlowLpm is the flow at 5 V in litres/minute.
	MaxFlowLpm float64
	// MaxPowerW is the electrical draw at 5 V.
	MaxPowerW float64
	// StandbyW is drawn whenever the pump is powered, even at 0 V.
	StandbyW float64

	voltage float64

	// derate scales the delivered flow during a pump-degradation fault
	// (worn impeller, partial clog), valid only while derated is set. The
	// electrical draw still follows the commanded voltage — a degraded
	// pump wastes energy.
	derate  float64
	derated bool
}

// Validate checks the pump parameters.
func (p *Pump) Validate() error {
	if p.MaxFlowLpm <= 0 {
		return fmt.Errorf("hydraulic: pump MaxFlowLpm must be > 0, got %v", p.MaxFlowLpm)
	}
	if p.MaxPowerW < 0 || p.StandbyW < 0 {
		return fmt.Errorf("hydraulic: pump powers must be >= 0")
	}
	return nil
}

// SetVoltage commands the pump; values are clamped to [0, 5].
func (p *Pump) SetVoltage(v float64) {
	if v < 0 {
		v = 0
	} else if v > 5 {
		v = 5
	}
	p.voltage = v
}

// SetFlow commands the pump by target flow (L/min), converting to the
// equivalent voltage. This mirrors Control-C-2's DAC lookup.
func (p *Pump) SetFlow(lpm float64) {
	p.SetVoltage(lpm / p.MaxFlowLpm * 5)
}

// SetDerate limits the delivered flow to frac of the commanded value
// (clamped to [0, 1]); 1 restores a healthy pump. Controllers are not
// told: they see the shortfall through the plant and compensate until
// they saturate, which is exactly the degradation the fault layer probes.
func (p *Pump) SetDerate(frac float64) {
	if frac >= 1 {
		// Healthy again: keep the fault-free FlowLpm path untouched.
		p.derate, p.derated = 0, false
		return
	}
	if frac < 0 {
		frac = 0
	}
	p.derate, p.derated = frac, true
}

// Derate returns the delivered-flow fraction (1 when healthy).
func (p *Pump) Derate() float64 {
	if !p.derated {
		return 1
	}
	return p.derate
}

// Voltage returns the current command voltage.
func (p *Pump) Voltage() float64 { return p.voltage }

// FlowLpm returns the delivered flow in litres/minute.
func (p *Pump) FlowLpm() float64 {
	f := p.voltage / 5 * p.MaxFlowLpm
	if p.derated {
		f *= p.derate
	}
	return f
}

// PowerW returns the current electrical draw.
func (p *Pump) PowerW() float64 {
	frac := p.voltage / 5
	return p.StandbyW + p.MaxPowerW*frac*frac*frac
}

// Tank is a chilled-water tank whose temperature is held at a setpoint by
// a chiller. Loops draw supply water at the tank temperature and return
// warm water, which raises the tank temperature; the chiller pulls it back
// down, consuming electrical power according to the lift between the tank
// setpoint and the outdoor rejection temperature.
type Tank struct {
	// VolumeL is the tank water volume in litres.
	VolumeL float64
	// Setpoint is the chilled-water setpoint in °C (18 for the radiant
	// tank, 8 for the ventilation tank).
	Setpoint float64
	// Chiller converts thermal load to electrical power.
	Chiller exergy.Chiller
	// CapacityW is the maximum chiller thermal power.
	CapacityW float64
	// LossUA models heat gain from the room to the tank in W/K.
	LossUA float64

	// tripped holds the chiller off during a trip fault: the tank keeps
	// absorbing loop returns and standing losses, so its temperature
	// free-rises until the trip clears.
	tripped bool

	temp         float64
	loadW        float64 // heat returned by loops this step
	thermalW     float64 // chiller thermal power last step
	elecW        float64 // chiller electrical power last step
	elecEnergyJ  float64 // integrated electrical energy
	thermEnergyJ float64 // integrated thermal (removed-heat) energy
}

// NewTank returns a tank initialised at its setpoint.
func NewTank(volumeL, setpoint float64, chiller exergy.Chiller, capacityW float64) (*Tank, error) {
	if volumeL <= 0 {
		return nil, fmt.Errorf("hydraulic: tank volume must be > 0, got %v", volumeL)
	}
	if capacityW <= 0 {
		return nil, fmt.Errorf("hydraulic: tank chiller capacity must be > 0, got %v", capacityW)
	}
	if err := chiller.Validate(); err != nil {
		return nil, err
	}
	return &Tank{
		VolumeL:   volumeL,
		Setpoint:  setpoint,
		Chiller:   chiller,
		CapacityW: capacityW,
		LossUA:    2,
		temp:      setpoint,
	}, nil
}

// SetChillerTripped trips (on) or restores (off) the chiller. While
// tripped it moves no heat and draws no power; the tank warms under its
// load and recovers under the proportional band after restoration.
func (t *Tank) SetChillerTripped(on bool) { t.tripped = on }

// ChillerTripped reports whether the chiller is currently tripped.
func (t *Tank) ChillerTripped() bool { return t.tripped }

// Temp returns the current tank water temperature (°C) — the paper's
// T_supp for loops drawing from this tank.
func (t *Tank) Temp() float64 { return t.temp }

// ReturnWater reports flowLpm of water coming back into the tank at tRet
// °C during the current step. Call once per loop per step, before Step.
func (t *Tank) ReturnWater(flowLpm, tRet float64) {
	t.loadW += HeatFlow(flowLpm, t.temp, tRet)
}

// Step advances the tank by dt seconds with ambient temperatures for
// standing losses (room side) and heat rejection (outdoor side).
func (t *Tank) Step(dt, tRoom, tOutdoor float64) {
	mass := t.VolumeL // 1 kg/L
	gain := t.loadW + t.LossUA*(tRoom-t.temp)
	t.loadW = 0

	// Chiller: proportional band of 0.5 K around the setpoint, capped at
	// capacity. This keeps the tank within a fraction of a degree of the
	// setpoint under any credible load without hysteretic chatter.
	excess := t.temp - t.Setpoint
	demand := gain + excess/0.5*t.CapacityW
	if demand < 0 {
		demand = 0
	} else if demand > t.CapacityW {
		demand = t.CapacityW
	}
	if t.tripped {
		demand = 0
	}
	t.thermalW = demand
	t.elecW = t.Chiller.Power(demand, t.Setpoint, tOutdoor)

	t.temp += (gain - demand) / (mass * CwWater) * dt
	t.elecEnergyJ += t.elecW * dt
	t.thermEnergyJ += t.thermalW * dt
}

// ChillerElectricalW returns the chiller electrical draw from the last step.
func (t *Tank) ChillerElectricalW() float64 { return t.elecW }

// ChillerThermalW returns the chiller thermal power from the last step.
func (t *Tank) ChillerThermalW() float64 { return t.thermalW }

// ElectricalEnergyJ returns the integrated chiller electrical energy.
func (t *Tank) ElectricalEnergyJ() float64 { return t.elecEnergyJ }

// ThermalEnergyJ returns the integrated removed-heat energy.
func (t *Tank) ThermalEnergyJ() float64 { return t.thermEnergyJ }

// Panel is a ceiling radiant panel fed by mixed water: an
// effectiveness-NTU heat exchanger between the panel water stream and the
// room air above which it radiates/convects.
type Panel struct {
	// UAWater is the water-side conductance in W/K.
	UAWater float64
	// HAAir is the air-side film conductance (h·A) in W/K, used for the
	// surface-temperature estimate. It must exceed UAWater (the air film
	// is one of the series resistances inside the overall conductance).
	HAAir float64
}

// Validate checks panel parameters.
func (p Panel) Validate() error {
	if p.UAWater <= 0 || p.HAAir <= 0 {
		return fmt.Errorf("hydraulic: panel UAWater and HAAir must be > 0")
	}
	return nil
}

// PanelResult is the outcome of one panel heat-exchange evaluation.
type PanelResult struct {
	// QW is the heat absorbed from the room in W (positive when cooling).
	QW float64
	// TReturn is the water temperature leaving the panel (°C).
	TReturn float64
	// TSurface is the estimated panel surface temperature (°C) — the
	// value compared against the under-panel dew point for condensation.
	TSurface float64
}

// Exchange evaluates the panel for mixed water entering at tMix °C with
// flow flowLpm against room air at tAir °C. Zero flow yields zero duty
// with the surface relaxed to the air temperature.
func (p Panel) Exchange(flowLpm, tMix, tAir float64) PanelResult {
	if flowLpm <= 0 {
		return PanelResult{TReturn: tMix, TSurface: tAir}
	}
	mdotCp := LpmToKgs(flowLpm) * CwWater
	eps := 1 - math.Exp(-p.UAWater/mdotCp)
	return p.exchangeWith(mdotCp, eps, tMix, tAir)
}

// exchangeWith is Exchange past the flow-dependent effectiveness: mdotCp
// and eps must have been computed exactly as Exchange computes them (the
// mixing loop caches them against the flow so the per-tick path skips the
// exp while the flow holds).
func (p Panel) exchangeWith(mdotCp, eps, tMix, tAir float64) PanelResult {
	q := eps * mdotCp * (tAir - tMix)
	tRet := tMix + q/mdotCp
	// The surface sits below the room air by the air-side film drop:
	// q = HAAir · (tAir − tSurf). HAAir must exceed the overall UAWater
	// for the estimate to land between the water and the air.
	tSurf := tAir - q/p.HAAir
	return PanelResult{QW: q, TReturn: tRet, TSurface: tSurf}
}

// MixingLoop is one ceiling panel's hydraulic circuit (Figure 3): a supply
// pump draws cold water from the tank, a recycle pump redirects warm
// return water, and the two streams merge so that the mixed temperature
// T_mix can be held above the condensation threshold while the mixed flow
// F_mix sets the cooling capacity.
type MixingLoop struct {
	Supply  *Pump
	Recycle *Pump
	Panel   Panel

	tank *Tank
	tRet float64 // water temperature in the return pipe (state)

	fMix, tMix float64
	last       PanelResult

	// surf is the lagged panel surface temperature: the metal panel has
	// thermal mass, so its surface relaxes toward the instantaneous
	// heat-exchange solution with time constant surfTauS rather than
	// jumping. NaN until the first step.
	surf     float64
	surfTauS float64

	// epsFlow/epsUA key the cached mdotCp and effectiveness: both depend
	// only on the mixed flow and the panel conductance, and the PID holds
	// the flow constant for long stretches (saturation, steady state), so
	// the per-tick exp disappears while the key matches. A miss recomputes
	// with Exchange's exact arithmetic, so results are bit-identical.
	// epsFlow starts NaN and never matches until the first step.
	epsFlow, epsUA float64
	mdotCp, eps    float64
}

// defaultSurfTauS is the panel-metal surface time constant in seconds.
const defaultSurfTauS = 60

// NewMixingLoop assembles a loop over the given tank.
func NewMixingLoop(tank *Tank, supply, recycle *Pump, panel Panel) (*MixingLoop, error) {
	if tank == nil {
		return nil, fmt.Errorf("hydraulic: mixing loop requires a tank")
	}
	if err := supply.Validate(); err != nil {
		return nil, err
	}
	if err := recycle.Validate(); err != nil {
		return nil, err
	}
	if err := panel.Validate(); err != nil {
		return nil, err
	}
	return &MixingLoop{
		Supply:   supply,
		Recycle:  recycle,
		Panel:    panel,
		tank:     tank,
		tRet:     tank.Temp(),
		surf:     math.NaN(),
		surfTauS: defaultSurfTauS,
		epsFlow:  math.NaN(),
	}, nil
}

// Step advances the loop by dt seconds: computes the mixture, runs the
// panel exchange against room air at tAir, applies the surface thermal
// lag, and returns the supply-side water to the tank.
func (l *MixingLoop) Step(tAir, dt float64) {
	fSupp := l.Supply.FlowLpm()
	fRcyc := l.Recycle.FlowLpm()
	l.fMix = fSupp + fRcyc
	tSupp := l.tank.Temp()
	if l.fMix <= 0 {
		l.tMix = tSupp
		l.last = l.Panel.Exchange(0, tSupp, tAir)
	} else {
		l.tMix = (fSupp*tSupp + fRcyc*l.tRet) / l.fMix
		//bzlint:allow floateq exact-key memo for the effectiveness term; flows settle onto float fixed points
		if l.fMix != l.epsFlow || l.Panel.UAWater != l.epsUA {
			l.epsFlow, l.epsUA = l.fMix, l.Panel.UAWater
			l.mdotCp = LpmToKgs(l.fMix) * CwWater
			l.eps = 1 - math.Exp(-l.Panel.UAWater/l.mdotCp)
		}
		l.last = l.Panel.exchangeWith(l.mdotCp, l.eps, l.tMix, tAir)
		l.tRet = l.last.TReturn
		// The supply fraction of the return stream flows back to the tank.
		if fSupp > 0 {
			l.tank.ReturnWater(fSupp, l.tRet)
		}
	}

	// Surface thermal lag: the metal panel starts at room temperature and
	// relaxes toward the instantaneous exchange solution.
	raw := l.last.TSurface
	if math.IsNaN(l.surf) {
		l.surf = tAir
	}
	if l.surfTauS > 0 && dt > 0 {
		frac := dt / l.surfTauS
		if frac > 1 {
			frac = 1
		}
		l.surf += (raw - l.surf) * frac
	} else {
		l.surf = raw
	}
	l.last.TSurface = l.surf
}

// FMix returns the mixed flow (L/min) — the paper's F_mix.
func (l *MixingLoop) FMix() float64 { return l.fMix }

// TMix returns the mixed water temperature (°C) — the paper's T_mix.
func (l *MixingLoop) TMix() float64 { return l.tMix }

// TReturn returns the return-pipe water temperature (°C) — T_rcyc.
func (l *MixingLoop) TReturn() float64 { return l.tRet }

// Result returns the last panel exchange outcome.
func (l *MixingLoop) Result() PanelResult { return l.last }

// PumpPowerW returns the combined electrical draw of both pumps.
func (l *MixingLoop) PumpPowerW() float64 {
	return l.Supply.PowerW() + l.Recycle.PowerW()
}

// CommandFlows translates a (T_mix target, F_mix target) pair into supply
// and recycle pump flows, implementing the mixing arithmetic of §III-B.1:
// the supply fraction is chosen so the mixture of tank water at tSupp and
// return water at tRet hits tMixTarget. When the return pipe is colder
// than the target (startup) the loop runs supply-only.
func (l *MixingLoop) CommandFlows(tMixTarget, fMixTarget float64) {
	tSupp := l.tank.Temp()
	if fMixTarget <= 0 {
		l.Supply.SetFlow(0)
		l.Recycle.SetFlow(0)
		return
	}
	denom := l.tRet - tSupp
	var fSupp float64
	switch {
	case tMixTarget <= tSupp:
		// Target at or below the tank temperature: pure supply is the
		// coldest achievable mixture.
		fSupp = fMixTarget
	case tMixTarget >= l.tRet:
		// Cannot mix hotter than the return stream: full recirculation
		// lets the panel warm the loop water toward the target before any
		// cold supply is admitted (condensation-safe startup).
		fSupp = 0
	case denom <= 1e-9:
		fSupp = fMixTarget
	default:
		fSupp = fMixTarget * (l.tRet - tMixTarget) / denom
	}
	if fSupp > fMixTarget {
		fSupp = fMixTarget
	}
	l.Supply.SetFlow(fSupp)
	l.Recycle.SetFlow(fMixTarget - fSupp)
}
