package hydraulic

import "math"

// Snapshot state for the water circuit. Exact-key memos (the mixing loop's
// effectiveness cache) are deliberately not captured: a restored loop
// starts with a cold memo whose first miss recomputes the same floats from
// the same operands, so results are bit-identical either way.

// PumpState is a Pump's mutable state.
//
//bzlint:state ExportState RestoreState
type PumpState struct {
	Voltage float64
	Derate  float64
	Derated bool
}

// ExportState captures the pump command and fault derate.
func (p *Pump) ExportState() PumpState {
	return PumpState{Voltage: p.voltage, Derate: p.derate, Derated: p.derated}
}

// RestoreState overwrites the pump command and fault derate.
func (p *Pump) RestoreState(st PumpState) {
	p.voltage = st.Voltage
	p.derate = st.Derate
	p.derated = st.Derated
}

// TankState is a Tank's mutable state.
//
//bzlint:state ExportState RestoreState
type TankState struct {
	Tripped      bool
	Temp         float64
	LoadW        float64
	ThermalW     float64
	ElecW        float64
	ElecEnergyJ  float64
	ThermEnergyJ float64
}

// ExportState captures the tank's thermal and accounting state.
func (t *Tank) ExportState() TankState {
	return TankState{
		Tripped:      t.tripped,
		Temp:         t.temp,
		LoadW:        t.loadW,
		ThermalW:     t.thermalW,
		ElecW:        t.elecW,
		ElecEnergyJ:  t.elecEnergyJ,
		ThermEnergyJ: t.thermEnergyJ,
	}
}

// RestoreState overwrites the tank's thermal and accounting state.
func (t *Tank) RestoreState(st TankState) {
	t.tripped = st.Tripped
	t.temp = st.Temp
	t.loadW = st.LoadW
	t.thermalW = st.ThermalW
	t.elecW = st.ElecW
	t.elecEnergyJ = st.ElecEnergyJ
	t.thermEnergyJ = st.ThermEnergyJ
}

// MixingLoopState is a MixingLoop's mutable state, pumps included.
//
//bzlint:state ExportState RestoreState
type MixingLoopState struct {
	Supply  PumpState
	Recycle PumpState
	TRet    float64
	FMix    float64
	TMix    float64
	Last    PanelResult
	Surf    float64 // NaN before the first step
}

// ExportState captures the loop's hydraulic state.
func (l *MixingLoop) ExportState() MixingLoopState {
	return MixingLoopState{
		Supply:  l.Supply.ExportState(),
		Recycle: l.Recycle.ExportState(),
		TRet:    l.tRet,
		FMix:    l.fMix,
		TMix:    l.tMix,
		Last:    l.last,
		Surf:    l.surf,
	}
}

// RestoreState overwrites the loop's hydraulic state and resets the
// effectiveness memo to cold (first use recomputes bit-identically).
func (l *MixingLoop) RestoreState(st MixingLoopState) {
	l.Supply.RestoreState(st.Supply)
	l.Recycle.RestoreState(st.Recycle)
	l.tRet = st.TRet
	l.fMix = st.FMix
	l.tMix = st.TMix
	l.last = st.Last
	l.surf = st.Surf
	l.epsFlow = math.NaN()
	l.epsUA = 0
	l.mdotCp, l.eps = 0, 0
}
