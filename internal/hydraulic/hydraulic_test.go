package hydraulic

import (
	"math"
	"testing"
	"testing/quick"

	"bubblezero/internal/exergy"
)

func newTestTank(t *testing.T, setpoint float64) *Tank {
	t.Helper()
	tank, err := NewTank(200, setpoint, exergy.DefaultChiller(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	return tank
}

func newTestPump() *Pump {
	return &Pump{MaxFlowLpm: 6, MaxPowerW: 12, StandbyW: 0.5}
}

func TestHeatFlowMatchesPaperFormula(t *testing.T) {
	// P = c·F·ΔT: 3 L/min with 4.6 K rise ≈ 964.8/2 W per panel loop scale.
	got := HeatFlow(3, 18, 22.6)
	want := 4186.0 * 3 / 60 * 4.6
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("HeatFlow = %v, want %v", got, want)
	}
	if HeatFlow(3, 20, 18) >= 0 {
		t.Error("cooling stream should report negative heat flow")
	}
}

func TestPumpVoltageClamping(t *testing.T) {
	p := newTestPump()
	p.SetVoltage(7)
	if p.Voltage() != 5 {
		t.Errorf("voltage = %v, want clamp 5", p.Voltage())
	}
	p.SetVoltage(-2)
	if p.Voltage() != 0 {
		t.Errorf("voltage = %v, want clamp 0", p.Voltage())
	}
}

func TestPumpFlowLinearInVoltage(t *testing.T) {
	p := newTestPump()
	p.SetVoltage(2.5)
	if got := p.FlowLpm(); math.Abs(got-3) > 1e-9 {
		t.Errorf("flow at 2.5V = %v, want 3", got)
	}
}

func TestPumpSetFlowRoundTrip(t *testing.T) {
	p := newTestPump()
	p.SetFlow(4.2)
	if got := p.FlowLpm(); math.Abs(got-4.2) > 1e-9 {
		t.Errorf("SetFlow(4.2) delivered %v", got)
	}
	p.SetFlow(100) // above max clamps to max
	if got := p.FlowLpm(); math.Abs(got-6) > 1e-9 {
		t.Errorf("over-commanded flow = %v, want 6", got)
	}
}

func TestPumpPowerCubic(t *testing.T) {
	p := newTestPump()
	p.SetVoltage(5)
	full := p.PowerW()
	p.SetVoltage(2.5)
	half := p.PowerW()
	if math.Abs(full-12.5) > 1e-9 {
		t.Errorf("full power = %v, want 12.5", full)
	}
	wantHalf := 0.5 + 12*0.125
	if math.Abs(half-wantHalf) > 1e-9 {
		t.Errorf("half-speed power = %v, want %v", half, wantHalf)
	}
}

func TestPumpValidate(t *testing.T) {
	if err := newTestPump().Validate(); err != nil {
		t.Errorf("valid pump rejected: %v", err)
	}
	if err := (&Pump{MaxFlowLpm: 0}).Validate(); err == nil {
		t.Error("zero-flow pump accepted")
	}
	if err := (&Pump{MaxFlowLpm: 5, MaxPowerW: -1}).Validate(); err == nil {
		t.Error("negative-power pump accepted")
	}
}

func TestNewTankValidation(t *testing.T) {
	if _, err := NewTank(0, 18, exergy.DefaultChiller(), 1000); err == nil {
		t.Error("zero volume accepted")
	}
	if _, err := NewTank(100, 18, exergy.DefaultChiller(), 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewTank(100, 18, exergy.Chiller{}, 1000); err == nil {
		t.Error("invalid chiller accepted")
	}
}

func TestTankHoldsSetpointUnderLoad(t *testing.T) {
	tank := newTestTank(t, 18)
	// Constant 1 kW return load for one simulated hour.
	for i := 0; i < 3600; i++ {
		tank.ReturnWater(6, 18+1000/(CwWater*LpmToKgs(6)))
		tank.Step(1, 25, 28.9)
	}
	if math.Abs(tank.Temp()-18) > 0.6 {
		t.Errorf("tank temp = %v, want ≈18 under 1 kW load", tank.Temp())
	}
	// At equilibrium the chiller moves ≈ the load.
	if th := tank.ChillerThermalW(); math.Abs(th-1000) > 120 {
		t.Errorf("chiller thermal = %v, want ≈1000", th)
	}
	// Electrical power consistent with the 18 °C COP (≈4.5).
	cop := tank.ChillerThermalW() / tank.ChillerElectricalW()
	if cop < 4.0 || cop > 5.1 {
		t.Errorf("implied chiller COP = %.2f, want ≈4.5", cop)
	}
}

func TestTankEnergyIntegration(t *testing.T) {
	tank := newTestTank(t, 18)
	for i := 0; i < 600; i++ {
		tank.ReturnWater(6, 20)
		tank.Step(1, 25, 28.9)
	}
	if tank.ElectricalEnergyJ() <= 0 || tank.ThermalEnergyJ() <= 0 {
		t.Error("energy integrators did not accumulate")
	}
	if tank.ThermalEnergyJ() <= tank.ElectricalEnergyJ() {
		t.Error("thermal energy should exceed electrical energy (COP > 1)")
	}
}

func TestTankColdSupplyNeedsMorePower(t *testing.T) {
	warm := newTestTank(t, 18)
	cold := newTestTank(t, 8)
	for i := 0; i < 1800; i++ {
		warm.ReturnWater(6, warm.Temp()+2)
		cold.ReturnWater(6, cold.Temp()+2)
		warm.Step(1, 25, 28.9)
		cold.Step(1, 25, 28.9)
	}
	if cold.ElectricalEnergyJ() <= warm.ElectricalEnergyJ() {
		t.Errorf("8 °C tank used %v J vs 18 °C tank %v J; low-exergy advantage missing",
			cold.ElectricalEnergyJ(), warm.ElectricalEnergyJ())
	}
}

func TestPanelExchangeBasics(t *testing.T) {
	p := Panel{UAWater: 85, HAAir: 170}
	res := p.Exchange(3, 18, 25)
	if res.QW <= 0 {
		t.Fatalf("panel with cold water should absorb heat, got %v", res.QW)
	}
	if res.TReturn <= 18 || res.TReturn >= 25 {
		t.Errorf("return temp = %v, want in (18, 25)", res.TReturn)
	}
	if res.TSurface <= 18 || res.TSurface >= 25 {
		t.Errorf("surface temp = %v, want between water and air", res.TSurface)
	}
	// Energy balance: q = mdot·cw·(tRet − tMix).
	q2 := HeatFlow(3, 18, res.TReturn)
	if math.Abs(q2-res.QW) > 1e-6 {
		t.Errorf("energy balance broken: %v vs %v", q2, res.QW)
	}
}

func TestPanelZeroFlow(t *testing.T) {
	p := Panel{UAWater: 85, HAAir: 170}
	res := p.Exchange(0, 18, 25)
	if res.QW != 0 {
		t.Errorf("zero-flow duty = %v, want 0", res.QW)
	}
	if res.TSurface != 25 {
		t.Errorf("idle surface = %v, want air temp 25", res.TSurface)
	}
}

func TestPanelDutyIncreasesWithFlow(t *testing.T) {
	p := Panel{UAWater: 85, HAAir: 170}
	prev := 0.0
	for f := 0.5; f <= 6; f += 0.5 {
		q := p.Exchange(f, 18, 25).QW
		if q <= prev {
			t.Fatalf("duty not increasing at flow %v", f)
		}
		prev = q
	}
}

func TestPanelDutyIncreasesWithColderWater(t *testing.T) {
	p := Panel{UAWater: 85, HAAir: 170}
	if p.Exchange(3, 16, 25).QW <= p.Exchange(3, 20, 25).QW {
		t.Error("colder water should absorb more heat")
	}
}

func TestPanelValidate(t *testing.T) {
	if err := (Panel{UAWater: 85, HAAir: 170}).Validate(); err != nil {
		t.Errorf("valid panel rejected: %v", err)
	}
	if err := (Panel{}).Validate(); err == nil {
		t.Error("zero panel accepted")
	}
}

func newTestLoop(t *testing.T) (*MixingLoop, *Tank) {
	t.Helper()
	tank := newTestTank(t, 18)
	loop, err := NewMixingLoop(tank, newTestPump(), newTestPump(), Panel{UAWater: 85, HAAir: 170})
	if err != nil {
		t.Fatal(err)
	}
	return loop, tank
}

func TestMixingLoopPureSupply(t *testing.T) {
	loop, _ := newTestLoop(t)
	loop.Supply.SetFlow(3)
	loop.Recycle.SetFlow(0)
	loop.Step(25, 1)
	if math.Abs(loop.TMix()-18) > 1e-9 {
		t.Errorf("pure-supply TMix = %v, want 18", loop.TMix())
	}
	if math.Abs(loop.FMix()-3) > 1e-9 {
		t.Errorf("FMix = %v, want 3", loop.FMix())
	}
	if loop.Result().QW <= 0 {
		t.Error("no cooling duty")
	}
}

func TestMixingLoopRecycleRaisesTMix(t *testing.T) {
	loop, _ := newTestLoop(t)
	// Warm the return pipe first with a pure-supply pass.
	loop.Supply.SetFlow(3)
	loop.Step(28, 1)
	tRet := loop.TReturn()
	if tRet <= 18 {
		t.Fatalf("return pipe should be warm, got %v", tRet)
	}
	loop.Supply.SetFlow(1.5)
	loop.Recycle.SetFlow(1.5)
	loop.Step(28, 1)
	if loop.TMix() <= 18 {
		t.Errorf("TMix with recycle = %v, want above 18", loop.TMix())
	}
	if loop.TMix() >= tRet {
		t.Errorf("TMix = %v should stay below return temp %v", loop.TMix(), tRet)
	}
}

func TestMixingLoopZeroFlow(t *testing.T) {
	loop, _ := newTestLoop(t)
	loop.Step(25, 1)
	if loop.Result().QW != 0 {
		t.Errorf("idle loop duty = %v, want 0", loop.Result().QW)
	}
	if loop.TMix() != 18 {
		t.Errorf("idle TMix = %v, want tank temp", loop.TMix())
	}
}

func TestCommandFlowsHitsTargets(t *testing.T) {
	loop, _ := newTestLoop(t)
	// Warm the return pipe.
	loop.Supply.SetFlow(4)
	for i := 0; i < 10; i++ {
		loop.Step(28, 1)
	}
	tRet := loop.TReturn()
	target := (18 + tRet) / 2
	loop.CommandFlows(target, 4)
	loop.Step(28, 1)
	if math.Abs(loop.FMix()-4) > 1e-6 {
		t.Errorf("FMix = %v, want 4", loop.FMix())
	}
	// TMix uses the pre-step return temperature; allow for the update.
	if math.Abs(loop.TMix()-target) > 0.5 {
		t.Errorf("TMix = %v, want ≈%v", loop.TMix(), target)
	}
}

func TestCommandFlowsTargetBelowSupply(t *testing.T) {
	loop, _ := newTestLoop(t)
	loop.CommandFlows(10, 4) // target colder than the 18 °C tank
	if got := loop.Supply.FlowLpm(); math.Abs(got-4) > 1e-9 {
		t.Errorf("supply flow = %v, want all 4 (pure supply)", got)
	}
	if got := loop.Recycle.FlowLpm(); got != 0 {
		t.Errorf("recycle flow = %v, want 0", got)
	}
}

func TestCommandFlowsZeroTarget(t *testing.T) {
	loop, _ := newTestLoop(t)
	loop.Supply.SetFlow(3)
	loop.CommandFlows(18, 0)
	if loop.Supply.FlowLpm() != 0 || loop.Recycle.FlowLpm() != 0 {
		t.Error("zero target should stop both pumps")
	}
}

func TestCommandFlowsTargetAboveReturn(t *testing.T) {
	loop, _ := newTestLoop(t)
	loop.Supply.SetFlow(4)
	for i := 0; i < 5; i++ {
		loop.Step(26, 1)
	}
	loop.CommandFlows(loop.TReturn()+5, 4)
	if got := loop.Supply.FlowLpm(); got != 0 {
		t.Errorf("supply flow = %v, want 0 when target above return temp", got)
	}
	if got := loop.Recycle.FlowLpm(); math.Abs(got-4) > 1e-9 {
		t.Errorf("recycle flow = %v, want 4", got)
	}
}

func TestMixingLoopReturnsHeatToTank(t *testing.T) {
	loop, tank := newTestLoop(t)
	loop.Supply.SetFlow(4)
	for i := 0; i < 60; i++ {
		loop.Step(28, 1)
		tank.Step(1, 25, 28.9)
	}
	if tank.ChillerThermalW() <= 0 {
		t.Error("tank chiller never saw the loop load")
	}
}

// Property: the mixed temperature always lies between the supply and
// return temperatures, and energy is conserved at the junction.
func TestMixJunctionBoundsProperty(t *testing.T) {
	f := func(fSuppRaw, fRcycRaw, tRetRaw uint8) bool {
		loop, _ := newTestLoop(t)
		fSupp := float64(fSuppRaw%60)/10 + 0.1
		fRcyc := float64(fRcycRaw%60) / 10
		loop.tRet = 18 + float64(tRetRaw%100)/10 // 18 … 28
		loop.Supply.SetFlow(fSupp)
		loop.Recycle.SetFlow(fRcyc)
		fS, fR := loop.Supply.FlowLpm(), loop.Recycle.FlowLpm()
		wantT := (fS*18 + fR*loop.tRet) / (fS + fR)
		loop.Step(30, 1)
		return math.Abs(loop.TMix()-wantT) < 1e-9 &&
			loop.TMix() >= 18-1e-9 && loop.TMix() <= 28+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CommandFlows never commands negative or over-target flows.
func TestCommandFlowsSaneProperty(t *testing.T) {
	fn := func(tMixRaw, fMixRaw, tRetRaw uint8) bool {
		loop, _ := newTestLoop(t)
		loop.tRet = 16 + float64(tRetRaw%140)/10
		tMix := 14 + float64(tMixRaw%160)/10
		fMix := float64(fMixRaw%70) / 10
		loop.CommandFlows(tMix, fMix)
		fS, fR := loop.Supply.FlowLpm(), loop.Recycle.FlowLpm()
		if fS < 0 || fR < 0 {
			return false
		}
		// Pumps clamp at 6 L/min each; the sum cannot exceed the target by
		// more than float fuzz (it may fall short due to clamping).
		return fS+fR <= fMix+1e-9
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestMixingLoopPumpPower(t *testing.T) {
	loop, _ := newTestLoop(t)
	idle := loop.PumpPowerW()
	loop.Supply.SetFlow(6)
	loop.Recycle.SetFlow(6)
	if full := loop.PumpPowerW(); full <= idle {
		t.Errorf("full-flow pump power %v <= idle %v", full, idle)
	}
	if _, err := NewMixingLoop(nil, newTestPump(), newTestPump(),
		Panel{UAWater: 85, HAAir: 170}); err == nil {
		t.Error("nil tank accepted")
	}
	if _, err := NewMixingLoop(newTestTank(t, 18), &Pump{}, newTestPump(),
		Panel{UAWater: 85, HAAir: 170}); err == nil {
		t.Error("invalid supply pump accepted")
	}
	if _, err := NewMixingLoop(newTestTank(t, 18), newTestPump(), &Pump{},
		Panel{UAWater: 85, HAAir: 170}); err == nil {
		t.Error("invalid recycle pump accepted")
	}
	if _, err := NewMixingLoop(newTestTank(t, 18), newTestPump(), newTestPump(),
		Panel{}); err == nil {
		t.Error("invalid panel accepted")
	}
}
