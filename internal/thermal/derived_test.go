package thermal

import (
	"math/rand/v2"
	"testing"
	"time"

	"bubblezero/internal/psychro"
	"bubblezero/internal/sim"
)

// The derived-state cache must be indistinguishable from computing each
// quantity on demand: same functions, same argument values, therefore the
// same bits. This test drives the room through a disturbed trajectory and
// compares every cached accessor against the from-scratch formula at each
// tick.
func TestDerivedCacheBitIdenticalToFreshComputation(t *testing.T) {
	r := newTestRoom(t, psychro.NewStateDewPoint(28.9, 27.4, 0), 700)
	r.SetOccupants(ZoneID(1), 3)
	r.OpenDoor(90 * time.Second)

	e := sim.NewEngine(sim.MustClock(testStart, time.Second), 7)
	env := sim.NewEnv(e.Clock(), e.RNG())
	rng := rand.New(rand.NewPCG(1, 2))

	check := func(tick int) {
		t.Helper()
		var sumT, sumW, sumCO2 float64
		for z := 0; z < NumZones; z++ {
			zone := r.Zone(ZoneID(z))
			sumT += zone.T
			sumW += zone.W
			sumCO2 += zone.CO2PPM
			if got, want := r.ZoneDewPoint(ZoneID(z)), zone.DewPoint(); got != want {
				t.Fatalf("tick %d zone %d: cached dew %v != fresh %v", tick, z, got, want)
			}
			if got, want := r.ZoneRH(ZoneID(z)), zone.RH(); got != want {
				t.Fatalf("tick %d zone %d: cached RH %v != fresh %v", tick, z, got, want)
			}
		}
		if got, want := r.AverageT(), sumT/NumZones; got != want {
			t.Fatalf("tick %d: cached AverageT %v != fresh %v", tick, got, want)
		}
		if got, want := r.AverageW(), sumW/NumZones; got != want {
			t.Fatalf("tick %d: cached AverageW %v != fresh %v", tick, got, want)
		}
		if got, want := r.AverageCO2(), sumCO2/NumZones; got != want {
			t.Fatalf("tick %d: cached AverageCO2 %v != fresh %v", tick, got, want)
		}
		if got, want := r.AverageDewPoint(), psychro.DewPointFromHumidityRatio(sumW/NumZones, psychro.AtmPressure); got != want {
			t.Fatalf("tick %d: cached AverageDewPoint %v != fresh %v", tick, got, want)
		}
		if got, want := r.OutdoorDewPoint(), r.Outdoor().DewPoint(); got != want {
			t.Fatalf("tick %d: cached OutdoorDewPoint %v != fresh %v", tick, got, want)
		}
	}

	check(-1) // cache must be primed at construction, before the first Step
	for tick := 0; tick < 600; tick++ {
		// Exercise the actuator inputs so humidity and CO₂ move.
		r.SetPanelExtraction(ZoneID(0), 200+50*rng.Float64())
		r.SetVent(ZoneID(2), VentInput{
			VolFlow: 0.02, Supply: psychro.NewStateDewPoint(18, 9, 0), SupplyCO2PPM: 400,
		})
		if tick == 300 {
			r.SetOutdoor(psychro.NewStateDewPoint(31, 25, 0))
		}
		r.Step(env)
		check(tick)
	}
}

// Room.Step is the per-tick integration kernel; it must not allocate.
func TestRoomStepZeroAlloc(t *testing.T) {
	r := newTestRoom(t, psychro.NewStateDewPoint(28.9, 27.4, 0), 700)
	r.SetOccupants(ZoneID(0), 2)
	r.SetVent(ZoneID(1), VentInput{
		VolFlow: 0.02, Supply: psychro.NewStateDewPoint(18, 9, 0), SupplyCO2PPM: 400,
	})
	r.OpenDoor(time.Hour)
	r.OpenWindow(time.Hour)
	e := sim.NewEngine(sim.MustClock(testStart, time.Second), 7)
	env := sim.NewEnv(e.Clock(), e.RNG())

	if allocs := testing.AllocsPerRun(1000, func() { r.Step(env) }); allocs != 0 {
		t.Errorf("Room.Step allocates %.2f/op, want 0", allocs)
	}
}
