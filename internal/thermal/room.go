package thermal

import (
	"fmt"
	"time"

	"bubblezero/internal/psychro"
	"bubblezero/internal/sim"
)

const cpAir = 1006.0 // J/(kg·K)

// ZoneState is the prognostic state of one subspace.
type ZoneState struct {
	// T is the zone dry-bulb temperature in °C.
	T float64
	// W is the zone humidity ratio in kg/kg.
	W float64
	// CO2PPM is the zone CO₂ concentration in ppm.
	CO2PPM float64
}

// Air returns the zone air as a psychrometric state at sea level.
func (z ZoneState) Air() psychro.State {
	return psychro.State{T: z.T, W: z.W, P: psychro.AtmPressure}
}

// DewPoint returns the zone dew-point temperature in °C.
func (z ZoneState) DewPoint() float64 { return z.Air().DewPoint() }

// RH returns the zone relative humidity in percent.
func (z ZoneState) RH() float64 { return z.Air().RH() }

// VentInput is the per-zone ventilation boundary condition set by the
// distributed ventilation module each step: the airbox supplies VolFlow of
// air in the Supply state while the CO₂flap exhausts the same volume of
// zone air.
type VentInput struct {
	// VolFlow is the supply volume flow in m³/s.
	VolFlow float64
	// Supply is the state of the air leaving the airbox.
	Supply psychro.State
	// SupplyCO2PPM is the CO₂ concentration of the supply air.
	SupplyCO2PPM float64
}

// derivedState caches the psychrometric quantities that consumers of the
// room (the control glue, the sensor read callbacks, the trace recorder)
// derive from the prognostic zone state. The zone state only changes
// inside Step, so each quantity is computed at most once per tick — with
// the same functions and the same argument values a fresh computation
// would use, keeping every cached read bit-identical.
//
// The averages are plain sums and stay eager; the dew-point and
// relative-humidity conversions cost an exp/log each and are computed
// lazily on first access after a Step, because most ticks nobody reads
// them: the glue only needs a zone dew point when condensation is
// plausible, and the sensor callbacks only run on their sampling ticks.
type derivedState struct {
	zoneDew [NumZones]float64 // per-zone dew point, °C
	zoneRH  [NumZones]float64 // per-zone relative humidity, %

	avgT   float64 // room-average dry bulb, °C
	avgW   float64 // room-average humidity ratio, kg/kg
	avgDew float64 // dew point of the average state, °C
	avgCO2 float64 // room-average CO₂, ppm

	dewValid    [NumZones]bool
	rhValid     [NumZones]bool
	avgDewValid bool
}

// Room is the four-zone laboratory model. It implements sim.Component;
// actuator inputs (ventilation, panel extraction, condensation) are set by
// upstream components each tick and consumed during Step.
type Room struct {
	cfg Config

	zones [NumZones]ZoneState
	der   derivedState
	// outdoorDew caches cfg.Outdoor.DewPoint(); it only changes when the
	// outdoor boundary condition itself changes.
	outdoorDew float64

	// Per-step inputs (reset is not needed; setters overwrite each tick).
	vent         [NumZones]VentInput
	panelExtract [NumZones]float64 // W removed by radiant panels
	condensation [NumZones]float64 // kg/s moisture removed on cold surfaces
	occupants    [NumZones]int

	doorRemaining   float64 // seconds the door stays open
	windowRemaining float64

	doorOpenings   int
	windowOpenings int
}

var _ sim.Component = (*Room)(nil)

// NewRoom builds a room whose zones all start in the given initial state
// with the given CO₂ concentration.
func NewRoom(cfg Config, initial psychro.State, initialCO2 float64) (*Room, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Room{cfg: cfg}
	for i := range r.zones {
		r.zones[i] = ZoneState{T: initial.T, W: initial.W, CO2PPM: initialCO2}
	}
	r.recomputeDerived()
	r.outdoorDew = r.cfg.Outdoor.DewPoint()
	return r, nil
}

// recomputeDerived refreshes the eager averages and invalidates the lazy
// psychrometric conversions. Called whenever r.zones changes
// (construction and the end of every Step).
func (r *Room) recomputeDerived() {
	var sumT, sumW, sumCO2 float64
	for i := range r.zones {
		z := r.zones[i]
		sumT += z.T
		sumW += z.W
		sumCO2 += z.CO2PPM
	}
	r.der.avgT = sumT / NumZones
	r.der.avgW = sumW / NumZones
	r.der.avgCO2 = sumCO2 / NumZones
	r.der.dewValid = [NumZones]bool{}
	r.der.rhValid = [NumZones]bool{}
	r.der.avgDewValid = false
}

// NewRoomAtOutdoor builds a room initially in equilibrium with the
// configured outdoor condition — the paper's experiment starting point
// ("Initially, the indoor condition is similar as the outdoor").
func NewRoomAtOutdoor(cfg Config) (*Room, error) {
	return NewRoom(cfg, cfg.Outdoor, cfg.OutdoorCO2PPM)
}

// Name implements sim.Component.
func (r *Room) Name() string { return "thermal.room" }

// Config returns the room configuration.
func (r *Room) Config() Config { return r.cfg }

// Zone returns the state of the given subspace.
func (r *Room) Zone(id ZoneID) ZoneState {
	if !id.Valid() {
		return ZoneState{}
	}
	return r.zones[id]
}

// AverageT returns the room-average dry-bulb temperature (°C) — the
// quantity the paper computes "by averaging temperature readings from a
// set of sensors deployed in the room". Cached per tick.
func (r *Room) AverageT() float64 { return r.der.avgT }

// AverageW returns the room-average humidity ratio (kg/kg). Cached per
// tick.
func (r *Room) AverageW() float64 { return r.der.avgW }

// AverageDewPoint returns the dew point (°C) of the average room state.
// Computed at most once per tick, on first access.
func (r *Room) AverageDewPoint() float64 {
	if !r.der.avgDewValid {
		r.der.avgDew = psychro.DewPointFromHumidityRatio(r.der.avgW, psychro.AtmPressure)
		r.der.avgDewValid = true
	}
	return r.der.avgDew
}

// AverageCO2 returns the room-average CO₂ concentration (ppm). Cached per
// tick.
func (r *Room) AverageCO2() float64 { return r.der.avgCO2 }

// ZoneDewPoint returns the dew point (°C) of the given subspace — the
// cached equivalent of Zone(id).DewPoint(), computed at most once per
// tick, on first access.
func (r *Room) ZoneDewPoint(id ZoneID) float64 {
	if !id.Valid() {
		return 0
	}
	if !r.der.dewValid[id] {
		r.der.zoneDew[id] = r.zones[id].DewPoint()
		r.der.dewValid[id] = true
	}
	return r.der.zoneDew[id]
}

// ZoneRH returns the relative humidity (%) of the given subspace — the
// cached equivalent of Zone(id).RH(), computed at most once per tick, on
// first access.
func (r *Room) ZoneRH(id ZoneID) float64 {
	if !id.Valid() {
		return 0
	}
	if !r.der.rhValid[id] {
		r.der.zoneRH[id] = r.zones[id].RH()
		r.der.rhValid[id] = true
	}
	return r.der.zoneRH[id]
}

// Outdoor returns the current outdoor boundary condition.
func (r *Room) Outdoor() psychro.State { return r.cfg.Outdoor }

// OutdoorDewPoint returns the dew point (°C) of the outdoor boundary
// condition — the cached equivalent of Outdoor().DewPoint().
func (r *Room) OutdoorDewPoint() float64 { return r.outdoorDew }

// SetOutdoor updates the outdoor boundary condition mid-run.
func (r *Room) SetOutdoor(s psychro.State) {
	r.cfg.Outdoor = s
	r.outdoorDew = s.DewPoint()
}

// SetVent installs the ventilation boundary condition for a zone. It stays
// in effect until overwritten.
func (r *Room) SetVent(id ZoneID, in VentInput) {
	if id.Valid() {
		r.vent[id] = in
	}
}

// SetPanelExtraction sets the radiant heat (W) currently being removed
// from a zone by the ceiling panel above it.
func (r *Room) SetPanelExtraction(id ZoneID, watts float64) {
	if id.Valid() {
		r.panelExtract[id] = watts
	}
}

// SetCondensation sets the rate (kg/s) at which moisture is condensing out
// of a zone onto cold surfaces.
func (r *Room) SetCondensation(id ZoneID, kgPerS float64) {
	if id.Valid() && kgPerS >= 0 {
		r.condensation[id] = kgPerS
	}
}

// SetOccupants sets the number of people in a zone.
func (r *Room) SetOccupants(id ZoneID, n int) {
	if id.Valid() && n >= 0 {
		r.occupants[id] = n
	}
}

// Occupants returns the occupant count of a zone.
func (r *Room) Occupants(id ZoneID) int {
	if !id.Valid() {
		return 0
	}
	return r.occupants[id]
}

// OpenDoor opens the door (subspace-1) for the given duration, exchanging
// outdoor air at the configured DoorFlow. Reopening while already open
// extends the interval.
func (r *Room) OpenDoor(d time.Duration) {
	if s := d.Seconds(); s > r.doorRemaining {
		r.doorRemaining = s
	}
	r.doorOpenings++
}

// OpenWindow opens the window (subspace-3) for the given duration.
func (r *Room) OpenWindow(d time.Duration) {
	if s := d.Seconds(); s > r.windowRemaining {
		r.windowRemaining = s
	}
	r.windowOpenings++
}

// DoorOpen reports whether the door is currently open.
func (r *Room) DoorOpen() bool { return r.doorRemaining > 0 }

// WindowOpen reports whether the window is currently open.
func (r *Room) WindowOpen() bool { return r.windowRemaining > 0 }

// DoorOpenings returns the cumulative number of door-open events.
func (r *Room) DoorOpenings() int { return r.doorOpenings }

// Step implements sim.Component: forward-Euler integration of the three
// balances over one tick.
//
//bzlint:hotpath
func (r *Room) Step(env *sim.Env) {
	dt := env.Dt()
	out := r.cfg.Outdoor

	// Loop-invariant terms, hoisted: the outdoor air density, the per-zone
	// envelope UA share, and the infiltration volume flow are identical for
	// every zone this tick.
	rhoOut := psychro.DryAirDensity(out.T, out.P)
	envUAShare := r.cfg.EnvelopeUA / NumZones
	infVol := r.cfg.InfiltrationACH * r.cfg.ZoneVolume / 3600 // m³/s

	var next [NumZones]ZoneState
	for i := range r.zones {
		z := r.zones[i]
		rho := psychro.DryAirDensity(z.T, psychro.AtmPressure)
		mass := rho * r.cfg.ZoneVolume
		heatCap := mass * cpAir * r.cfg.ThermalCapMult
		moistCap := mass * r.cfg.MoistureCapMult

		var q float64       // W into the zone air node
		var wFlow float64   // kg/s of water vapour into the zone
		var co2Flow float64 // ppm·m³/s equivalent

		// Envelope conduction, split evenly.
		q += envUAShare * (out.T - z.T)

		// Infiltration.
		q += infVol * rhoOut * cpAir * (out.T - z.T)
		wFlow += infVol * rhoOut * (out.W - z.W)
		co2Flow += infVol * (r.cfg.OutdoorCO2PPM - z.CO2PPM)

		// Inter-zone mixing with each neighbour.
		mdot := r.cfg.InterZoneFlow * rho
		for _, n := range adjacency[i] {
			zn := r.zones[n]
			q += mdot * cpAir * (zn.T - z.T)
			wFlow += mdot * (zn.W - z.W)
			co2Flow += r.cfg.InterZoneFlow * (zn.CO2PPM - z.CO2PPM)
		}

		// Door (subspace-1) and window (subspace-3) exchange.
		var leakVol float64
		if i == 0 && r.doorRemaining > 0 {
			leakVol += r.cfg.DoorFlow
		}
		if i == 2 && r.windowRemaining > 0 {
			leakVol += r.cfg.WindowFlow
		}
		if leakVol > 0 {
			q += leakVol * rhoOut * cpAir * (out.T - z.T)
			wFlow += leakVol * rhoOut * (out.W - z.W)
			co2Flow += leakVol * (r.cfg.OutdoorCO2PPM - z.CO2PPM)
		}

		// Occupants.
		n := float64(r.occupants[i])
		q += n * r.cfg.OccupantSensibleW
		wFlow += n * r.cfg.OccupantLatentKgS
		co2Flow += n * r.cfg.OccupantCO2Ls / 1000 * 1e6 / 1 // L/s → m³/s → ppm·m³/s

		// Ventilation: supply in, equal exhaust of zone air out.
		if v := r.vent[i]; v.VolFlow > 0 {
			mdotV := v.VolFlow * psychro.DryAirDensity(v.Supply.T, v.Supply.P)
			q += mdotV * cpAir * (v.Supply.T - z.T)
			wFlow += mdotV * (v.Supply.W - z.W)
			co2Flow += v.VolFlow * (v.SupplyCO2PPM - z.CO2PPM)
		}

		// Radiant panel extraction and surface condensation.
		q -= r.panelExtract[i]
		wFlow -= r.condensation[i]

		next[i] = ZoneState{
			T:      z.T + q/heatCap*dt,
			W:      z.W + wFlow/moistCap*dt,
			CO2PPM: z.CO2PPM + co2Flow/r.cfg.ZoneVolume*dt,
		}
		if next[i].W < 0 {
			next[i].W = 0
		}
		if next[i].CO2PPM < 0 {
			next[i].CO2PPM = 0
		}
	}
	r.zones = next
	r.recomputeDerived()

	if r.doorRemaining > 0 {
		r.doorRemaining -= dt
		if r.doorRemaining < 0 {
			r.doorRemaining = 0
		}
	}
	if r.windowRemaining > 0 {
		r.windowRemaining -= dt
		if r.windowRemaining < 0 {
			r.windowRemaining = 0
		}
	}
}

// String summarises the room state for logs.
func (r *Room) String() string {
	return fmt.Sprintf("room avg %.2f°C dp %.2f°C co2 %.0fppm",
		r.AverageT(), r.AverageDewPoint(), r.AverageCO2())
}
