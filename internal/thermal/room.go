package thermal

import (
	"fmt"
	"time"

	"bubblezero/internal/psychro"
	"bubblezero/internal/sim"
)

const cpAir = 1006.0 // J/(kg·K)

// ZoneState is the prognostic state of one subspace.
type ZoneState struct {
	// T is the zone dry-bulb temperature in °C.
	T float64
	// W is the zone humidity ratio in kg/kg.
	W float64
	// CO2PPM is the zone CO₂ concentration in ppm.
	CO2PPM float64
}

// Air returns the zone air as a psychrometric state at sea level.
func (z ZoneState) Air() psychro.State {
	return psychro.State{T: z.T, W: z.W, P: psychro.AtmPressure}
}

// DewPoint returns the zone dew-point temperature in °C.
func (z ZoneState) DewPoint() float64 { return z.Air().DewPoint() }

// RH returns the zone relative humidity in percent.
func (z ZoneState) RH() float64 { return z.Air().RH() }

// VentInput is the per-zone ventilation boundary condition set by the
// distributed ventilation module each step: the airbox supplies VolFlow of
// air in the Supply state while the CO₂flap exhausts the same volume of
// zone air.
type VentInput struct {
	// VolFlow is the supply volume flow in m³/s.
	VolFlow float64
	// Supply is the state of the air leaving the airbox.
	Supply psychro.State
	// SupplyCO2PPM is the CO₂ concentration of the supply air.
	SupplyCO2PPM float64
}

// Climate is a precomputed outdoor boundary condition: the raw state plus
// the derived psychrometric terms (dew point, density) the kernel and its
// consumers need. Computing a Climate costs a Magnus log and a density
// divide; installing one is pure assignment and a handful of multiplies.
// A fleet stepping thousands of buildings under one sky computes the
// Climate once per weather update and installs it everywhere
// (fleet.Fleet.SetOutdoor) instead of paying the transcendentals per
// building per epoch.
type Climate struct {
	// Out is the outdoor moist-air state.
	Out psychro.State
	// CO2PPM is the outdoor CO₂ concentration.
	CO2PPM float64
	// Dew is Out.DewPoint(), precomputed.
	Dew float64
	// RhoOut is the outdoor dry-air density (kg/m³), precomputed.
	RhoOut float64
}

// NewClimate precomputes the derived terms for an outdoor boundary. It is
// the single definition of those terms: Room construction and SetOutdoor
// both route through it, so a fleet-shared Climate is bit-identical to a
// per-building recomputation.
func NewClimate(out psychro.State, co2ppm float64) Climate {
	return Climate{
		Out:    out,
		CO2PPM: co2ppm,
		Dew:    out.DewPoint(),
		RhoOut: psychro.DryAirDensity(out.T, out.P),
	}
}

// derivedState caches the psychrometric quantities that consumers of the
// room (the control glue, the sensor read callbacks, the trace recorder)
// derive from the prognostic zone state. The zone state only changes
// inside StepBatch, so each quantity is computed at most once per tick —
// with the same functions and the same argument values a fresh computation
// would use, keeping every cached read bit-identical.
//
// The averages are plain sums and stay eager; the dew-point and
// relative-humidity conversions cost an exp/log each and are computed
// lazily on first access after a step, because most ticks nobody reads
// them: the glue only needs a zone dew point when condensation is
// plausible, and the sensor callbacks only run on their sampling ticks.
type derivedState struct {
	zoneDew [NumZones]float64 // per-zone dew point, °C
	zoneRH  [NumZones]float64 // per-zone relative humidity, %

	avgT   float64 // room-average dry bulb, °C
	avgW   float64 // room-average humidity ratio, kg/kg
	avgDew float64 // dew point of the average state, °C
	avgCO2 float64 // room-average CO₂, ppm

	dewValid    [NumZones]bool
	rhValid     [NumZones]bool
	avgDewValid bool
}

// roomRows is the owned backing store of an unbanked Room: the
// structure-of-arrays prognostic state (zone i's dry-bulb temperature is
// t[i], its humidity ratio w[i], its CO₂ co2[i]) plus the folded kernel,
// boundary, and input rows. A Room never holds this state inline — it
// holds row pointers that reference either a private roomRows (the scalar
// path) or one row of a shard-level RoomBank (bank.go), so the batch
// kernel is the same code either way and the bank path stays bit-identical
// to standalone by construction.
type roomRows struct {
	t, w, co2 [NumZones]float64
	kern      kernelTerms
	bnd       boundaryTerms
	in        zoneInputs
}

// zoneInputs holds the per-step actuator and load inputs, also laid out
// as structure-of-arrays, with the setter-side precomputation the kernel
// consumes directly: SetVent resolves the supply air density (memoized on
// the exact supply state) into mass-flow coefficients, and SetOccupants
// folds the per-person loads into per-zone totals, so the per-tick pass
// is pure multiply-adds.
type zoneInputs struct {
	ventVol    [NumZones]float64 // supply volume flow, m³/s
	ventMdot   [NumZones]float64 // supply dry-air mass flow, kg/s
	ventMdotCp [NumZones]float64 // ventMdot · cpAir, W/K
	ventT      [NumZones]float64 // supply dry bulb, °C
	ventW      [NumZones]float64 // supply humidity ratio, kg/kg
	ventCO2    [NumZones]float64 // supply CO₂, ppm

	panelExtract [NumZones]float64 // W removed by radiant panels
	condensation [NumZones]float64 // kg/s moisture removed on cold surfaces

	occupants [NumZones]int
	occQ      [NumZones]float64 // occupant sensible heat, W
	occW      [NumZones]float64 // occupant moisture, kg/s
	occC      [NumZones]float64 // occupant CO₂, ppm·m³/s

	// ventRho memoizes the supply-air density per zone, keyed on the
	// exact supply (T, P). The airboxes settle onto float fixed points at
	// steady state, so after the pull-down transient the key matches tick
	// after tick; on a miss the value is recomputed with the same pure
	// function and arguments, so hit/miss history cannot change results.
	ventRho [NumZones]struct{ t, p, rho float64 }
}

// kernelTerms holds the per-configuration constants of the batch kernel,
// folded once at construction. The integrator divides each zone's flow
// totals by heat/moisture capacities that are proportional to the zone
// air density ρ = P/(R·T_K); folding the constants turns those per-zone
// divides into q · T_K · kInvHeat multiplies.
type kernelTerms struct {
	izf       float64 // inter-zone mixing flow, m³/s
	kInvHeat  float64 // RDryAir / (AtmPressure · ZoneVolume · cpAir · ThermalCapMult)
	kInvMoist float64 // RDryAir / (AtmPressure · ZoneVolume · MoistureCapMult)
	invVol    float64 // 1 / ZoneVolume

	// air carries the hoisted psychrometric terms (density numerator) the
	// kernel evaluates per zone; pinned against the scalar reference by
	// the internal/psychro property tests.
	air psychro.Terms
}

func newKernelTerms(cfg Config) kernelTerms {
	return kernelTerms{
		izf:       cfg.InterZoneFlow,
		kInvHeat:  psychro.RDryAir / (psychro.AtmPressure * cfg.ZoneVolume * cpAir * cfg.ThermalCapMult),
		kInvMoist: psychro.RDryAir / (psychro.AtmPressure * cfg.ZoneVolume * cfg.MoistureCapMult),
		invVol:    1 / cfg.ZoneVolume,
		air:       psychro.NewTerms(psychro.AtmPressure),
	}
}

// boundaryTerms are the outdoor-exchange coefficients, recomputed only
// when the climate changes (SetClimate): every outdoor exchange — envelope
// conduction, infiltration, and the door/window leaks — is proportional to
// (outdoor − zone), so the envelope and infiltration coefficients collapse
// into one fused multiply per balance per zone.
type boundaryTerms struct {
	outT, outW, outCO2 float64

	envInfQ float64 // envelope UA share + infiltration heat coefficient, W/K
	infW    float64 // infiltration moisture coefficient, kg/s per (kg/kg)
	infC    float64 // infiltration CO₂ coefficient, m³/s

	doorQ, doorW, doorC float64 // door leak coefficients (subspace-1)
	winQ, winW, winC    float64 // window leak coefficients (subspace-3)
}

// Room is the four-zone laboratory model. It implements sim.Component;
// actuator inputs (ventilation, panel extraction, condensation) are set by
// upstream components each tick and consumed during StepBatch.
//
// The prognostic state and folded terms live behind row pointers: an
// unbanked room owns a private roomRows; a banked room views one row of a
// RoomBank's contiguous shard arrays. Every method reads and writes
// through the same pointers, so the two layouts execute identical
// arithmetic.
type Room struct {
	cfg Config

	t, w, co2 *[NumZones]float64
	kern      *kernelTerms
	bnd       *boundaryTerms
	in        *zoneInputs

	der  derivedState
	clim Climate

	doorRemaining   float64 // seconds the door stays open
	windowRemaining float64

	doorOpenings   int
	windowOpenings int
}

var _ sim.Component = (*Room)(nil)

// NewRoom builds a room whose zones all start in the given initial state
// with the given CO₂ concentration. The room owns its backing rows.
func NewRoom(cfg Config, initial psychro.State, initialCO2 float64) (*Room, error) {
	rows := &roomRows{}
	r := &Room{
		t: &rows.t, w: &rows.w, co2: &rows.co2,
		kern: &rows.kern, bnd: &rows.bnd, in: &rows.in,
	}
	if err := r.init(cfg, initial, initialCO2); err != nil {
		return nil, err
	}
	return r, nil
}

// init validates the config and seeds the (already bound) rows — the
// shared tail of NewRoom and RoomBank.NewRoom.
func (r *Room) init(cfg Config, initial psychro.State, initialCO2 float64) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	r.cfg = cfg
	*r.kern = newKernelTerms(cfg)
	*r.in = zoneInputs{}
	for i := 0; i < NumZones; i++ {
		r.t[i] = initial.T
		r.w[i] = initial.W
		r.co2[i] = initialCO2
	}
	r.SetClimate(NewClimate(cfg.Outdoor, cfg.OutdoorCO2PPM))
	r.recomputeDerived()
	return nil
}

// recomputeDerived refreshes the eager averages and invalidates the lazy
// psychrometric conversions. Called whenever the zone state changes
// (construction and the end of every StepBatch).
func (r *Room) recomputeDerived() {
	var sumT, sumW, sumCO2 float64
	for i := 0; i < NumZones; i++ {
		sumT += r.t[i]
		sumW += r.w[i]
		sumCO2 += r.co2[i]
	}
	r.der.avgT = sumT / NumZones
	r.der.avgW = sumW / NumZones
	r.der.avgCO2 = sumCO2 / NumZones
	r.der.dewValid = [NumZones]bool{}
	r.der.rhValid = [NumZones]bool{}
	r.der.avgDewValid = false
}

// NewRoomAtOutdoor builds a room initially in equilibrium with the
// configured outdoor condition — the paper's experiment starting point
// ("Initially, the indoor condition is similar as the outdoor").
func NewRoomAtOutdoor(cfg Config) (*Room, error) {
	return NewRoom(cfg, cfg.Outdoor, cfg.OutdoorCO2PPM)
}

// Name implements sim.Component.
func (r *Room) Name() string { return "thermal.room" }

// Config returns the room configuration.
func (r *Room) Config() Config { return r.cfg }

// Zone returns the state of the given subspace.
func (r *Room) Zone(id ZoneID) ZoneState {
	if !id.Valid() {
		return ZoneState{}
	}
	return ZoneState{T: r.t[id], W: r.w[id], CO2PPM: r.co2[id]}
}

// AverageT returns the room-average dry-bulb temperature (°C) — the
// quantity the paper computes "by averaging temperature readings from a
// set of sensors deployed in the room". Cached per tick.
func (r *Room) AverageT() float64 { return r.der.avgT }

// AverageW returns the room-average humidity ratio (kg/kg). Cached per
// tick.
func (r *Room) AverageW() float64 { return r.der.avgW }

// AverageDewPoint returns the dew point (°C) of the average room state.
// Computed at most once per tick, on first access.
func (r *Room) AverageDewPoint() float64 {
	if !r.der.avgDewValid {
		r.der.avgDew = psychro.DewPointFromHumidityRatio(r.der.avgW, psychro.AtmPressure)
		r.der.avgDewValid = true
	}
	return r.der.avgDew
}

// AverageCO2 returns the room-average CO₂ concentration (ppm). Cached per
// tick.
func (r *Room) AverageCO2() float64 { return r.der.avgCO2 }

// ZoneDewPoint returns the dew point (°C) of the given subspace — the
// cached equivalent of Zone(id).DewPoint(), computed at most once per
// tick, on first access.
func (r *Room) ZoneDewPoint(id ZoneID) float64 {
	if !id.Valid() {
		return 0
	}
	if !r.der.dewValid[id] {
		r.der.zoneDew[id] = r.Zone(id).DewPoint()
		r.der.dewValid[id] = true
	}
	return r.der.zoneDew[id]
}

// ZoneRH returns the relative humidity (%) of the given subspace — the
// cached equivalent of Zone(id).RH(), computed at most once per tick, on
// first access.
func (r *Room) ZoneRH(id ZoneID) float64 {
	if !id.Valid() {
		return 0
	}
	if !r.der.rhValid[id] {
		r.der.zoneRH[id] = r.Zone(id).RH()
		r.der.rhValid[id] = true
	}
	return r.der.zoneRH[id]
}

// Outdoor returns the current outdoor boundary condition.
func (r *Room) Outdoor() psychro.State { return r.clim.Out }

// OutdoorDewPoint returns the dew point (°C) of the outdoor boundary
// condition — the cached equivalent of Outdoor().DewPoint().
func (r *Room) OutdoorDewPoint() float64 { return r.clim.Dew }

// Climate returns the installed precomputed outdoor boundary.
func (r *Room) Climate() Climate { return r.clim }

// SetOutdoor updates the outdoor boundary condition mid-run.
//
//bzlint:mutsetter fleet.Apply
func (r *Room) SetOutdoor(s psychro.State) {
	r.SetClimate(NewClimate(s, r.cfg.OutdoorCO2PPM))
}

// SetClimate installs a precomputed outdoor boundary and refolds the
// outdoor-exchange coefficients. The heavy terms (dew point, density)
// live in the Climate itself, so installing a shared Climate across a
// fleet costs only multiplies per building.
//
//bzlint:mutsetter fleet.Apply
func (r *Room) SetClimate(c Climate) {
	r.clim = c
	// Keep the Config view coherent for callers that read it back.
	r.cfg.Outdoor = c.Out
	r.cfg.OutdoorCO2PPM = c.CO2PPM

	b := r.bnd
	b.outT, b.outW, b.outCO2 = c.Out.T, c.Out.W, c.CO2PPM
	infVol := r.cfg.InfiltrationACH * r.cfg.ZoneVolume / 3600 // m³/s
	b.envInfQ = r.cfg.EnvelopeUA/NumZones + infVol*c.RhoOut*cpAir
	b.infW = infVol * c.RhoOut
	b.infC = infVol
	b.doorQ = r.cfg.DoorFlow * c.RhoOut * cpAir
	b.doorW = r.cfg.DoorFlow * c.RhoOut
	b.doorC = r.cfg.DoorFlow
	b.winQ = r.cfg.WindowFlow * c.RhoOut * cpAir
	b.winW = r.cfg.WindowFlow * c.RhoOut
	b.winC = r.cfg.WindowFlow
}

// SetVent installs the ventilation boundary condition for a zone. It stays
// in effect until overwritten. The supply-air density — the one
// psychrometric term in the ventilation exchange — is resolved here, not
// in the kernel, memoized on the exact supply (T, P) pair.
func (r *Room) SetVent(id ZoneID, in VentInput) {
	if !id.Valid() {
		return
	}
	r.in.ventVol[id] = in.VolFlow
	r.in.ventT[id] = in.Supply.T
	r.in.ventW[id] = in.Supply.W
	r.in.ventCO2[id] = in.SupplyCO2PPM
	if in.VolFlow <= 0 {
		r.in.ventMdot[id] = 0
		r.in.ventMdotCp[id] = 0
		return
	}
	m := &r.in.ventRho[id]
	//bzlint:allow floateq exact-key memo; airbox supply settles on a float fixed point at steady state, and a miss recomputes with the same pure function
	if m.t != in.Supply.T || m.p != in.Supply.P {
		m.t, m.p = in.Supply.T, in.Supply.P
		m.rho = psychro.DryAirDensity(in.Supply.T, in.Supply.P)
	}
	mdot := in.VolFlow * m.rho
	r.in.ventMdot[id] = mdot
	r.in.ventMdotCp[id] = mdot * cpAir
}

// SetVentBatch installs all four ventilation boundary conditions in one
// call — the batch form the control glue threads each tick.
func (r *Room) SetVentBatch(in *[NumZones]VentInput) {
	for i := 0; i < NumZones; i++ {
		r.SetVent(ZoneID(i), in[i])
	}
}

// SetPanelExtraction sets the radiant heat (W) currently being removed
// from a zone by the ceiling panel above it.
func (r *Room) SetPanelExtraction(id ZoneID, watts float64) {
	if id.Valid() {
		r.in.panelExtract[id] = watts
	}
}

// SetCondensation sets the rate (kg/s) at which moisture is condensing out
// of a zone onto cold surfaces.
func (r *Room) SetCondensation(id ZoneID, kgPerS float64) {
	if id.Valid() && kgPerS >= 0 {
		r.in.condensation[id] = kgPerS
	}
}

// SetOccupants sets the number of people in a zone. The per-person loads
// are folded into per-zone totals here, off the per-tick path.
//
//bzlint:mutsetter fleet.Apply
func (r *Room) SetOccupants(id ZoneID, n int) {
	if !id.Valid() || n < 0 {
		return
	}
	r.in.occupants[id] = n
	fn := float64(n)
	r.in.occQ[id] = fn * r.cfg.OccupantSensibleW
	r.in.occW[id] = fn * r.cfg.OccupantLatentKgS
	r.in.occC[id] = fn * r.cfg.OccupantCO2Ls / 1000 * 1e6 / 1 // L/s → m³/s → ppm·m³/s
}

// Occupants returns the occupant count of a zone.
func (r *Room) Occupants(id ZoneID) int {
	if !id.Valid() {
		return 0
	}
	return r.in.occupants[id]
}

// OpenDoor opens the door (subspace-1) for the given duration, exchanging
// outdoor air at the configured DoorFlow. Reopening while already open
// extends the interval.
//
//bzlint:mutsetter fleet.Apply
func (r *Room) OpenDoor(d time.Duration) {
	if s := d.Seconds(); s > r.doorRemaining {
		r.doorRemaining = s
	}
	r.doorOpenings++
}

// OpenWindow opens the window (subspace-3) for the given duration.
func (r *Room) OpenWindow(d time.Duration) {
	if s := d.Seconds(); s > r.windowRemaining {
		r.windowRemaining = s
	}
	r.windowOpenings++
}

// DoorOpen reports whether the door is currently open.
func (r *Room) DoorOpen() bool { return r.doorRemaining > 0 }

// WindowOpen reports whether the window is currently open.
func (r *Room) WindowOpen() bool { return r.windowRemaining > 0 }

// DoorOpenings returns the cumulative number of door-open events.
func (r *Room) DoorOpenings() int { return r.doorOpenings }

// Step implements sim.Component: one batch-kernel call integrates every
// zone of the building.
//
//bzlint:hotpath
func (r *Room) Step(env *sim.Env) { r.StepBatch(env.Dt()) }

// zoneFlows computes one zone's balance totals (heat W, moisture kg/s,
// CO₂ ppm·m³/s) from register-resident state. tn1/wn1/cn1 and tn2/wn2/cn2
// are the two grid neighbours (the 2×2 adjacency is compile-time fixed);
// qx/wx/cx are the zone's fused outdoor-exchange coefficients. A free
// function taking the row pointers explicitly, so StepBatch loads them
// once instead of re-chasing the Room's row bindings per call.
func zoneFlows(k *kernelTerms, b *boundaryTerms, in *zoneInputs, i int, ti, wi, ci, tn1, tn2, wn1, wn2, cn1, cn2, qx, wx, cx float64) (q, wf, cf float64) {
	mdot := k.izf * k.air.Density(ti) // inter-zone dry-air mass flow
	q = qx*(b.outT-ti) +
		mdot*cpAir*((tn1-ti)+(tn2-ti)) +
		in.ventMdotCp[i]*(in.ventT[i]-ti) +
		in.occQ[i] - in.panelExtract[i]
	wf = wx*(b.outW-wi) +
		mdot*((wn1-wi)+(wn2-wi)) +
		in.ventMdot[i]*(in.ventW[i]-wi) +
		in.occW[i] - in.condensation[i]
	cf = cx*(b.outCO2-ci) +
		k.izf*((cn1-ci)+(cn2-ci)) +
		in.ventVol[i]*(in.ventCO2[i]-ci) +
		in.occC[i]
	return q, wf, cf
}

// StepBatch is the batch kernel entry point: forward-Euler integration of
// all four zone balances over dt seconds in one fused structure-of-arrays
// pass. Per-config terms fold at construction, per-climate terms at
// SetClimate, per-tick terms before the pass; NumZones is a compile-time
// constant and the 2×2 adjacency is fixed, so the pass is fully unrolled —
// the twelve prognostic floats live in registers, the flow math performs
// no array indexing (and therefore no bounds checks), and each zone pays
// exactly one divide (the density reciprocal). The room-average sums fuse
// into the same pass instead of re-walking the state.
//
// Restructuring this arithmetic is licensed by the golden-epoch scheme:
// results are pinned to the paper's metrics within tolerance
// (internal/experiments golden-epoch tests) and to the retained scalar
// reference within 1e-9 (batch_test.go), not to bit-identity with the
// pre-batch kernel.
//
//bzlint:hotpath
func (r *Room) StepBatch(dt float64) {
	k := r.kern
	b := r.bnd

	// Fused outdoor-exchange coefficients: envelope + infiltration on
	// every zone, plus the door leak on subspace-1 and the window leak on
	// subspace-3 while open. All outdoor exchange is proportional to
	// (outdoor − zone), so each balance pays one coefficient multiply.
	qx0, wx0, cx0 := b.envInfQ, b.infW, b.infC
	qx2, wx2, cx2 := b.envInfQ, b.infW, b.infC
	if r.doorRemaining > 0 {
		qx0 += b.doorQ
		wx0 += b.doorW
		cx0 += b.doorC
	}
	if r.windowRemaining > 0 {
		qx2 += b.winQ
		wx2 += b.winW
		cx2 += b.winC
	}

	kHeatDt := k.kInvHeat * dt
	kMoistDt := k.kInvMoist * dt
	kCO2Dt := k.invVol * dt

	t0, t1, t2, t3 := r.t[0], r.t[1], r.t[2], r.t[3]
	w0, w1, w2, w3 := r.w[0], r.w[1], r.w[2], r.w[3]
	c0, c1, c2, c3 := r.co2[0], r.co2[1], r.co2[2], r.co2[3]

	// Zone neighbourhoods (see adjacency): 0↔{1,2}, 1↔{0,3}, 2↔{0,3},
	// 3↔{1,2}.
	in := r.in
	q0, wf0, cf0 := zoneFlows(k, b, in, 0, t0, w0, c0, t1, t2, w1, w2, c1, c2, qx0, wx0, cx0)
	q1, wf1, cf1 := zoneFlows(k, b, in, 1, t1, w1, c1, t0, t3, w0, w3, c0, c3, b.envInfQ, b.infW, b.infC)
	q2, wf2, cf2 := zoneFlows(k, b, in, 2, t2, w2, c2, t0, t3, w0, w3, c0, c3, qx2, wx2, cx2)
	q3, wf3, cf3 := zoneFlows(k, b, in, 3, t3, w3, c3, t1, t2, w1, w2, c1, c2, b.envInfQ, b.infW, b.infC)

	// Integrate. q / heatCap = q · T_K · R/(P·V·cp·mult): the capacity
	// divides collapse into multiplies because ρ = P/(R·T_K). The moisture
	// balance uses the same pre-step T_K as the heat balance, so the Kelvin
	// temperatures are hoisted before the state advances.
	tk0, tk1, tk2, tk3 := t0+273.15, t1+273.15, t2+273.15, t3+273.15
	t0 += q0 * tk0 * kHeatDt
	t1 += q1 * tk1 * kHeatDt
	t2 += q2 * tk2 * kHeatDt
	t3 += q3 * tk3 * kHeatDt
	w0 += wf0 * tk0 * kMoistDt
	w1 += wf1 * tk1 * kMoistDt
	w2 += wf2 * tk2 * kMoistDt
	w3 += wf3 * tk3 * kMoistDt
	c0 += cf0 * kCO2Dt
	c1 += cf1 * kCO2Dt
	c2 += cf2 * kCO2Dt
	c3 += cf3 * kCO2Dt
	if w0 < 0 {
		w0 = 0
	}
	if w1 < 0 {
		w1 = 0
	}
	if w2 < 0 {
		w2 = 0
	}
	if w3 < 0 {
		w3 = 0
	}
	if c0 < 0 {
		c0 = 0
	}
	if c1 < 0 {
		c1 = 0
	}
	if c2 < 0 {
		c2 = 0
	}
	if c3 < 0 {
		c3 = 0
	}

	*r.t = [NumZones]float64{t0, t1, t2, t3}
	*r.w = [NumZones]float64{w0, w1, w2, w3}
	*r.co2 = [NumZones]float64{c0, c1, c2, c3}

	// Derived averages, fused into the pass (left-associated in zone order,
	// the same bits recomputeDerived would produce); the expensive lazy
	// conversions are just invalidated.
	r.der.avgT = (t0 + t1 + t2 + t3) / NumZones
	r.der.avgW = (w0 + w1 + w2 + w3) / NumZones
	r.der.avgCO2 = (c0 + c1 + c2 + c3) / NumZones
	r.der.dewValid = [NumZones]bool{}
	r.der.rhValid = [NumZones]bool{}
	r.der.avgDewValid = false

	if r.doorRemaining > 0 {
		r.doorRemaining -= dt
		if r.doorRemaining < 0 {
			r.doorRemaining = 0
		}
	}
	if r.windowRemaining > 0 {
		r.windowRemaining -= dt
		if r.windowRemaining < 0 {
			r.windowRemaining = 0
		}
	}
}

// String summarises the room state for logs.
func (r *Room) String() string {
	return fmt.Sprintf("room avg %.2f°C dp %.2f°C co2 %.0fppm",
		r.AverageT(), r.AverageDewPoint(), r.AverageCO2())
}
