package thermal

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"bubblezero/internal/psychro"
	"bubblezero/internal/sim"
)

// scalarRef is the pre-batch array-of-structs integration loop, retained
// verbatim as a reference implementation. The SoA batch kernel reorders
// and refactors this float arithmetic (fused outdoor-exchange
// coefficients, capacity divides collapsed into multiplies, hoisted
// psychro terms), which the golden-epoch re-pin licenses; this file pins
// the restructure to the physics by stepping both implementations through
// the same disturbed trajectory and requiring agreement within 1e-9
// relative at every tick.
type scalarRef struct {
	cfg   Config
	zones [NumZones]ZoneState

	vent         [NumZones]VentInput
	panelExtract [NumZones]float64
	condensation [NumZones]float64
	occupants    [NumZones]int

	doorRemaining   float64
	windowRemaining float64
}

func (r *scalarRef) step(dt float64) {
	out := r.cfg.Outdoor
	rhoOut := psychro.DryAirDensity(out.T, out.P)
	envUAShare := r.cfg.EnvelopeUA / NumZones
	infVol := r.cfg.InfiltrationACH * r.cfg.ZoneVolume / 3600

	var next [NumZones]ZoneState
	for i := range r.zones {
		z := r.zones[i]
		rho := psychro.DryAirDensity(z.T, psychro.AtmPressure)
		mass := rho * r.cfg.ZoneVolume
		heatCap := mass * 1006.0 * r.cfg.ThermalCapMult
		moistCap := mass * r.cfg.MoistureCapMult

		var q, wFlow, co2Flow float64

		q += envUAShare * (out.T - z.T)

		q += infVol * rhoOut * 1006.0 * (out.T - z.T)
		wFlow += infVol * rhoOut * (out.W - z.W)
		co2Flow += infVol * (r.cfg.OutdoorCO2PPM - z.CO2PPM)

		mdot := r.cfg.InterZoneFlow * rho
		for _, n := range adjacency[i] {
			zn := r.zones[n]
			q += mdot * 1006.0 * (zn.T - z.T)
			wFlow += mdot * (zn.W - z.W)
			co2Flow += r.cfg.InterZoneFlow * (zn.CO2PPM - z.CO2PPM)
		}

		var leakVol float64
		if i == 0 && r.doorRemaining > 0 {
			leakVol += r.cfg.DoorFlow
		}
		if i == 2 && r.windowRemaining > 0 {
			leakVol += r.cfg.WindowFlow
		}
		if leakVol > 0 {
			q += leakVol * rhoOut * 1006.0 * (out.T - z.T)
			wFlow += leakVol * rhoOut * (out.W - z.W)
			co2Flow += leakVol * (r.cfg.OutdoorCO2PPM - z.CO2PPM)
		}

		n := float64(r.occupants[i])
		q += n * r.cfg.OccupantSensibleW
		wFlow += n * r.cfg.OccupantLatentKgS
		co2Flow += n * r.cfg.OccupantCO2Ls / 1000 * 1e6 / 1

		if v := r.vent[i]; v.VolFlow > 0 {
			mdotV := v.VolFlow * psychro.DryAirDensity(v.Supply.T, v.Supply.P)
			q += mdotV * 1006.0 * (v.Supply.T - z.T)
			wFlow += mdotV * (v.Supply.W - z.W)
			co2Flow += v.VolFlow * (v.SupplyCO2PPM - z.CO2PPM)
		}

		q -= r.panelExtract[i]
		wFlow -= r.condensation[i]

		next[i] = ZoneState{
			T:      z.T + q/heatCap*dt,
			W:      z.W + wFlow/moistCap*dt,
			CO2PPM: z.CO2PPM + co2Flow/r.cfg.ZoneVolume*dt,
		}
		if next[i].W < 0 {
			next[i].W = 0
		}
		if next[i].CO2PPM < 0 {
			next[i].CO2PPM = 0
		}
	}
	r.zones = next

	if r.doorRemaining > 0 {
		r.doorRemaining -= dt
		if r.doorRemaining < 0 {
			r.doorRemaining = 0
		}
	}
	if r.windowRemaining > 0 {
		r.windowRemaining -= dt
		if r.windowRemaining < 0 {
			r.windowRemaining = 0
		}
	}
}

// TestBatchKernelMatchesScalarReference drives the batch kernel and the
// retained scalar reference through an identical seeded, disturbed
// trajectory — occupancy changes, ventilation updates, door and window
// events, a mid-run climate change — and asserts per-zone agreement on
// every prognostic variable within 1e-9 relative at every tick.
func TestBatchKernelMatchesScalarReference(t *testing.T) {
	cfg := DefaultConfig()
	initial := psychro.NewStateDewPoint(28.9, 27.4, 0)

	r, err := NewRoom(cfg, initial, 700)
	if err != nil {
		t.Fatal(err)
	}
	ref := &scalarRef{cfg: cfg}
	for i := range ref.zones {
		ref.zones[i] = ZoneState{T: initial.T, W: initial.W, CO2PPM: 700}
	}

	e := sim.NewEngine(sim.MustClock(testStart, time.Second), 7)
	env := sim.NewEnv(e.Clock(), e.RNG())
	rng := rand.New(rand.NewPCG(42, 99))

	relClose := func(a, b float64) bool {
		d := math.Abs(a - b)
		if m := math.Abs(b); m > 1 {
			return d/m <= 1e-9
		}
		return d <= 1e-9
	}

	for tick := 0; tick < 4000; tick++ {
		switch tick {
		case 100:
			r.OpenDoor(45 * time.Second)
			ref.doorRemaining = 45
		case 900:
			r.OpenWindow(2 * time.Minute)
			ref.windowRemaining = 120
		case 2000:
			newOut := psychro.NewStateDewPoint(31.5, 26, 0)
			r.SetOutdoor(newOut)
			ref.cfg.Outdoor = newOut
		}
		if tick%250 == 0 {
			z := ZoneID(rng.IntN(NumZones))
			n := rng.IntN(4)
			r.SetOccupants(z, n)
			ref.occupants[z] = n
		}
		if tick%60 == 0 {
			for i := 0; i < NumZones; i++ {
				v := VentInput{
					VolFlow:      0.005 + 0.02*rng.Float64(),
					Supply:       psychro.NewStateDewPoint(16+4*rng.Float64(), 8+3*rng.Float64(), 0),
					SupplyCO2PPM: 400,
				}
				r.SetVent(ZoneID(i), v)
				ref.vent[i] = v
			}
			p := 100 + 300*rng.Float64()
			r.SetPanelExtraction(ZoneID(0), p)
			ref.panelExtract[0] = p
			c := 1e-6 * rng.Float64()
			r.SetCondensation(ZoneID(1), c)
			ref.condensation[1] = c
		}

		r.Step(env)
		ref.step(1.0)

		for i := 0; i < NumZones; i++ {
			z := r.Zone(ZoneID(i))
			rz := ref.zones[i]
			if !relClose(z.T, rz.T) {
				t.Fatalf("tick %d zone %d: batch T=%v scalar T=%v (Δ=%g)", tick, i, z.T, rz.T, z.T-rz.T)
			}
			if !relClose(z.W, rz.W) {
				t.Fatalf("tick %d zone %d: batch W=%v scalar W=%v (Δ=%g)", tick, i, z.W, rz.W, z.W-rz.W)
			}
			if !relClose(z.CO2PPM, rz.CO2PPM) {
				t.Fatalf("tick %d zone %d: batch CO2=%v scalar CO2=%v (Δ=%g)", tick, i, z.CO2PPM, rz.CO2PPM, z.CO2PPM-rz.CO2PPM)
			}
		}
	}
}

// TestStepBatchEqualsComponentStep pins the wrapper: Room.Step(env) must
// be exactly one StepBatch(dt) call — same bits, same door/window decay.
func TestStepBatchEqualsComponentStep(t *testing.T) {
	mk := func() *Room {
		r := newTestRoom(t, psychro.NewStateDewPoint(28.9, 27.4, 0), 650)
		r.SetOccupants(0, 2)
		r.OpenDoor(30 * time.Second)
		return r
	}
	a, b := mk(), mk()
	e := sim.NewEngine(sim.MustClock(testStart, time.Second), 7)
	env := sim.NewEnv(e.Clock(), e.RNG())
	for i := 0; i < 120; i++ {
		a.Step(env)
		b.StepBatch(1.0)
	}
	for i := 0; i < NumZones; i++ {
		if a.Zone(ZoneID(i)) != b.Zone(ZoneID(i)) {
			t.Fatalf("zone %d diverged: Step %+v vs StepBatch %+v", i, a.Zone(ZoneID(i)), b.Zone(ZoneID(i)))
		}
	}
	if a.DoorOpen() != b.DoorOpen() {
		t.Error("door state diverged between Step and StepBatch")
	}
}
