// Package thermal implements the multi-zone lumped-capacitance model of
// the BubbleZERO laboratory (§II "BubbleZERO laboratory"): a 60 m³ room
// (6 m × 5 m × 2 m) divided into four equal subspaces arranged in a 2×2
// grid, each with its own sensible-heat, moisture, and CO₂ balance,
// coupled by turbulent inter-zone mixing, an insulated envelope to the
// tropical outdoors, occupant loads, and door/window disturbance events.
//
// The model is calibrated so that the controlled pull-down from the
// paper's initial condition (28.9 °C, 27.4 °C dew point) to the target
// (25 °C, 18 °C dew point) takes on the order of 30 minutes, matching
// Figure 10. It is a control-oriented RC model, not CFD.
package thermal

import (
	"fmt"

	"bubblezero/internal/psychro"
)

// NumZones is the number of subspaces in the BubbleZERO laboratory. The
// indoor space is organised into four equal subspaces labelled
// subspace-1 … subspace-4 (paper §III-A, Figure 2).
const NumZones = 4

// ZoneID identifies a subspace, 0-based (subspace-1 is ZoneID 0).
type ZoneID int

// String renders the paper's subspace naming.
func (z ZoneID) String() string { return fmt.Sprintf("subspace-%d", int(z)+1) }

// Valid reports whether the ID addresses one of the four subspaces.
func (z ZoneID) Valid() bool { return z >= 0 && z < NumZones }

// adjacency lists the 2×2 grid neighbourhood used for inter-zone mixing:
//
//	1 | 2        (door is in subspace-1, close to subspace-2)
//	--+--
//	3 | 4
//
// Every zone has exactly two neighbours, so the table is a fixed-size
// array the batch kernel indexes directly (no slice header loads on the
// hot path).
var adjacency = [NumZones][2]ZoneID{
	0: {1, 2},
	1: {0, 3},
	2: {0, 3},
	3: {1, 2},
}

// Config parameterises the room model.
type Config struct {
	// ZoneVolume is the air volume of each subspace in m³ (15 m³ in the
	// laboratory: 60 m³ / 4).
	ZoneVolume float64
	// ThermalCapMult scales the air heat capacity to account for furniture
	// and interior-surface thermal mass that the lumped node represents.
	ThermalCapMult float64
	// MoistureCapMult scales the air moisture capacity for hygroscopic
	// surface buffering.
	MoistureCapMult float64
	// EnvelopeUA is the whole-room envelope conductance to outdoors in
	// W/K; it is split evenly across zones.
	EnvelopeUA float64
	// InfiltrationACH is the envelope air leakage in air changes per hour.
	InfiltrationACH float64
	// InterZoneFlow is the turbulent mixing flow between adjacent zones in
	// m³/s.
	InterZoneFlow float64
	// DoorFlow is the air exchange flow with outdoors while the door is
	// open, in m³/s. The door is in subspace-1.
	DoorFlow float64
	// WindowFlow is the equivalent for the window (in subspace-3).
	WindowFlow float64
	// OccupantSensibleW, OccupantLatentKgS, and OccupantCO2Ls are the
	// per-person loads: sensible heat (W), moisture (kg/s), CO₂ (L/s).
	OccupantSensibleW float64
	OccupantLatentKgS float64
	OccupantCO2Ls     float64
	// Outdoor is the boundary condition.
	Outdoor psychro.State
	// OutdoorCO2PPM is the outdoor CO₂ concentration.
	OutdoorCO2PPM float64
}

// DefaultConfig returns the calibrated BubbleZERO laboratory model with the
// paper's outdoor condition (28.9 °C dry bulb, 27.4 °C dew point).
func DefaultConfig() Config {
	return Config{
		ZoneVolume:        15.0,
		ThermalCapMult:    8.0,
		MoistureCapMult:   1.2,
		EnvelopeUA:        220.0,
		InfiltrationACH:   0.04,
		InterZoneFlow:     0.08,
		DoorFlow:          0.09,
		WindowFlow:        0.07,
		OccupantSensibleW: 70,
		OccupantLatentKgS: 1.3e-5, // ≈47 g/h
		OccupantCO2Ls:     0.0052,
		Outdoor:           psychro.NewStateDewPoint(28.9, 27.4, 0),
		OutdoorCO2PPM:     410,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.ZoneVolume <= 0:
		return fmt.Errorf("thermal: ZoneVolume must be > 0, got %v", c.ZoneVolume)
	case c.ThermalCapMult < 1:
		return fmt.Errorf("thermal: ThermalCapMult must be >= 1, got %v", c.ThermalCapMult)
	case c.MoistureCapMult < 1:
		return fmt.Errorf("thermal: MoistureCapMult must be >= 1, got %v", c.MoistureCapMult)
	case c.EnvelopeUA < 0:
		return fmt.Errorf("thermal: EnvelopeUA must be >= 0, got %v", c.EnvelopeUA)
	case c.InfiltrationACH < 0:
		return fmt.Errorf("thermal: InfiltrationACH must be >= 0, got %v", c.InfiltrationACH)
	case c.InterZoneFlow < 0:
		return fmt.Errorf("thermal: InterZoneFlow must be >= 0, got %v", c.InterZoneFlow)
	case c.DoorFlow < 0 || c.WindowFlow < 0:
		return fmt.Errorf("thermal: door/window flows must be >= 0")
	case c.OutdoorCO2PPM < 0:
		return fmt.Errorf("thermal: OutdoorCO2PPM must be >= 0, got %v", c.OutdoorCO2PPM)
	}
	return nil
}
