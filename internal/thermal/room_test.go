package thermal

import (
	"context"
	"math"
	"testing"
	"time"

	"bubblezero/internal/psychro"
	"bubblezero/internal/sim"
)

var testStart = time.Date(2014, 3, 10, 13, 0, 0, 0, time.UTC)

func runRoom(t *testing.T, r *Room, d time.Duration) {
	t.Helper()
	e := sim.NewEngine(sim.MustClock(testStart, time.Second), 7)
	e.Register(r)
	if err := e.RunFor(context.Background(), d); err != nil {
		t.Fatal(err)
	}
}

func newTestRoom(t *testing.T, initial psychro.State, co2 float64) *Room {
	t.Helper()
	r, err := NewRoom(DefaultConfig(), initial, co2)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.ZoneVolume = 0 },
		func(c *Config) { c.ThermalCapMult = 0.5 },
		func(c *Config) { c.MoistureCapMult = 0 },
		func(c *Config) { c.EnvelopeUA = -1 },
		func(c *Config) { c.InfiltrationACH = -1 },
		func(c *Config) { c.InterZoneFlow = -1 },
		func(c *Config) { c.DoorFlow = -1 },
		func(c *Config) { c.OutdoorCO2PPM = -1 },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
}

func TestZoneIDNaming(t *testing.T) {
	if got := ZoneID(0).String(); got != "subspace-1" {
		t.Errorf("ZoneID(0) = %q, want subspace-1", got)
	}
	if got := ZoneID(3).String(); got != "subspace-4" {
		t.Errorf("ZoneID(3) = %q, want subspace-4", got)
	}
	if ZoneID(-1).Valid() || ZoneID(4).Valid() {
		t.Error("out-of-range zone IDs reported valid")
	}
}

func TestRoomStartsAtInitialState(t *testing.T) {
	init := psychro.NewStateDewPoint(28.9, 27.4, 0)
	r := newTestRoom(t, init, 410)
	for i := 0; i < NumZones; i++ {
		z := r.Zone(ZoneID(i))
		if z.T != 28.9 {
			t.Errorf("zone %d T = %v, want 28.9", i, z.T)
		}
		if math.Abs(z.DewPoint()-27.4) > 0.01 {
			t.Errorf("zone %d dew = %v, want 27.4", i, z.DewPoint())
		}
	}
	if got := r.AverageT(); got != 28.9 {
		t.Errorf("AverageT = %v", got)
	}
}

func TestFreeFloatingRoomStaysAtOutdoorEquilibrium(t *testing.T) {
	r, err := NewRoomAtOutdoor(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	runRoom(t, r, time.Hour)
	if math.Abs(r.AverageT()-28.9) > 0.05 {
		t.Errorf("equilibrium T drifted to %v", r.AverageT())
	}
	if math.Abs(r.AverageDewPoint()-27.4) > 0.05 {
		t.Errorf("equilibrium dew drifted to %v", r.AverageDewPoint())
	}
}

func TestCoolRoomWarmsTowardOutdoor(t *testing.T) {
	r := newTestRoom(t, psychro.NewState(22, 50, 0), 410)
	before := r.AverageT()
	runRoom(t, r, 30*time.Minute)
	after := r.AverageT()
	if after <= before {
		t.Errorf("cool room did not warm: %v -> %v", before, after)
	}
	if after > 28.9 {
		t.Errorf("room overshot outdoor temperature: %v", after)
	}
}

func TestPanelExtractionCoolsRoom(t *testing.T) {
	r, err := NewRoomAtOutdoor(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < NumZones; i++ {
		r.SetPanelExtraction(ZoneID(i), 400) // 1.6 kW total
	}
	runRoom(t, r, 30*time.Minute)
	if r.AverageT() >= 27 {
		t.Errorf("1.6 kW extraction left room at %v °C after 30 min", r.AverageT())
	}
	// Panels remove sensible heat only: dew point should barely move.
	if math.Abs(r.AverageDewPoint()-27.4) > 0.3 {
		t.Errorf("dew point moved to %v under dry cooling", r.AverageDewPoint())
	}
}

func TestVentilationDriesRoom(t *testing.T) {
	r, err := NewRoomAtOutdoor(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dry := psychro.NewStateDewPoint(18, 16, 0)
	for i := 0; i < NumZones; i++ {
		r.SetVent(ZoneID(i), VentInput{VolFlow: 0.012, Supply: dry, SupplyCO2PPM: 410})
	}
	before := r.AverageDewPoint()
	runRoom(t, r, 30*time.Minute)
	after := r.AverageDewPoint()
	if after >= before-2 {
		t.Errorf("ventilation barely dried room: %v -> %v", before, after)
	}
	if after < 16 {
		t.Errorf("room dew point %v fell below supply dew point", after)
	}
}

func TestOccupantsRaiseCO2AndHeat(t *testing.T) {
	r := newTestRoom(t, psychro.NewState(25, 55, 0), 410)
	r.SetOccupants(0, 3)
	if r.Occupants(0) != 3 {
		t.Fatalf("Occupants = %d, want 3", r.Occupants(0))
	}
	runRoom(t, r, 20*time.Minute)
	if r.Zone(0).CO2PPM <= 500 {
		t.Errorf("zone-1 CO2 = %v ppm, want noticeable rise above 500", r.Zone(0).CO2PPM)
	}
	// Adjacent zones see some CO2 via mixing; all above outdoor.
	for i := 0; i < NumZones; i++ {
		if r.Zone(ZoneID(i)).CO2PPM < 410 {
			t.Errorf("zone %d CO2 %v fell below outdoor", i, r.Zone(ZoneID(i)).CO2PPM)
		}
	}
}

func TestDoorOpeningHitsSubspace1And2First(t *testing.T) {
	// Cooled, dry room; open the hot humid door briefly. The paper: "As
	// the door is in subspace-1 and close to subspace-2, the humidities of
	// the two subspaces immediately increase".
	r := newTestRoom(t, psychro.NewStateDewPoint(25, 18, 0), 500)
	r.OpenDoor(15 * time.Second)
	if !r.DoorOpen() {
		t.Fatal("door should be open")
	}
	runRoom(t, r, 30*time.Second)
	if r.DoorOpen() {
		t.Error("door should have closed after 15 s")
	}
	d0 := r.Zone(0).DewPoint() - 18
	d1 := r.Zone(1).DewPoint() - 18
	d3 := r.Zone(3).DewPoint() - 18
	if d0 <= 0 {
		t.Fatalf("subspace-1 dew did not rise (delta %v)", d0)
	}
	if d0 <= d3 {
		t.Errorf("door zone rise (%v) should exceed far zone rise (%v)", d0, d3)
	}
	if d1 <= d3 {
		t.Errorf("adjacent zone rise (%v) should exceed far zone rise (%v)", d1, d3)
	}
	// The paper reports roughly a 0.6 °C dew blip for a 15 s opening.
	if d0 < 0.1 || d0 > 2.0 {
		t.Errorf("subspace-1 dew blip = %.2f °C, want O(0.6)", d0)
	}
}

func TestWindowOpeningHitsSubspace3(t *testing.T) {
	r := newTestRoom(t, psychro.NewStateDewPoint(25, 18, 0), 500)
	r.OpenWindow(30 * time.Second)
	runRoom(t, r, time.Minute)
	d2 := r.Zone(2).DewPoint() - 18
	d1 := r.Zone(1).DewPoint() - 18
	if d2 <= d1 {
		t.Errorf("window zone rise (%v) should exceed diagonal zone rise (%v)", d2, d1)
	}
	if r.WindowOpen() {
		t.Error("window should have closed")
	}
}

func TestDoorReopenExtends(t *testing.T) {
	r := newTestRoom(t, psychro.NewStateDewPoint(25, 18, 0), 500)
	r.OpenDoor(10 * time.Second)
	r.OpenDoor(2 * time.Minute)
	runRoom(t, r, time.Minute)
	if !r.DoorOpen() {
		t.Error("door should still be open after extension")
	}
	if r.DoorOpenings() != 2 {
		t.Errorf("DoorOpenings = %d, want 2", r.DoorOpenings())
	}
}

func TestCondensationRemovesMoisture(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnvelopeUA = 0
	cfg.InfiltrationACH = 0
	cfg.InterZoneFlow = 0
	r, err := NewRoom(cfg, psychro.NewStateDewPoint(25, 20, 0), 500)
	if err != nil {
		t.Fatal(err)
	}
	before := r.Zone(0).W
	r.SetCondensation(0, 1e-5)
	runRoom(t, r, 10*time.Minute)
	if r.Zone(0).W >= before {
		t.Errorf("condensation did not reduce W: %v -> %v", before, r.Zone(0).W)
	}
	// Negative rates are rejected.
	r.SetCondensation(0, -1)
	w := r.Zone(0).W
	runRoom(t, r, time.Minute)
	if r.Zone(0).W > w+1e-9 {
		t.Error("negative condensation rate added moisture")
	}
}

func TestInterZoneMixingEqualises(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnvelopeUA = 0
	cfg.InfiltrationACH = 0
	r, err := NewRoom(cfg, psychro.NewState(25, 50, 0), 500)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb zone 0 hot, zone 3 cold; mixing must converge them.
	r.t[0] = 30
	r.t[3] = 20
	r.recomputeDerived()
	runRoom(t, r, 2*time.Hour)
	spread := r.t[0] - r.t[3]
	if math.Abs(spread) > 0.5 {
		t.Errorf("zones did not equalise: spread %v", spread)
	}
	// Average temperature preserved (no external exchange).
	if math.Abs(r.AverageT()-25) > 0.1 {
		t.Errorf("mixing changed mean temperature to %v", r.AverageT())
	}
}

func TestSettersIgnoreInvalidZone(t *testing.T) {
	r := newTestRoom(t, psychro.NewState(25, 50, 0), 500)
	r.SetPanelExtraction(ZoneID(99), 1e6)
	r.SetVent(ZoneID(-1), VentInput{VolFlow: 1e6})
	r.SetOccupants(ZoneID(99), 50)
	runRoom(t, r, time.Minute)
	if math.Abs(r.AverageT()-25) > 0.5 {
		t.Errorf("invalid-zone setters perturbed the room: T=%v", r.AverageT())
	}
	if got := r.Zone(ZoneID(99)); got != (ZoneState{}) {
		t.Errorf("Zone(invalid) = %+v, want zero", got)
	}
}

func TestPullDownTimescaleMatchesPaper(t *testing.T) {
	// With loads representative of the real system (panels ~965 W total,
	// ventilation ~0.05 m³/s of 16 °C-dew air), the room must approach
	// 25 °C / 18 °C dew in roughly 30 minutes — the paper's headline
	// convergence (Figure 10). We accept 20–60 minutes here; the precise
	// trajectory is asserted in the core-system integration tests.
	r, err := NewRoomAtOutdoor(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dry := psychro.NewStateDewPoint(17, 15.5, 0)
	e := sim.NewEngine(sim.MustClock(testStart, time.Second), 7)
	e.Register(r)
	e.Register(sim.ComponentFunc{ID: "loads", Fn: func(*sim.Env) {
		for i := 0; i < NumZones; i++ {
			r.SetPanelExtraction(ZoneID(i), 330)
			r.SetVent(ZoneID(i), VentInput{VolFlow: 0.016, Supply: dry, SupplyCO2PPM: 410})
		}
	}})
	var reachedT, reachedDew time.Duration
	if err := e.RunTicks(context.Background(), 5400); err != nil {
		t.Fatal(err)
	}
	// Re-run with tracking via a fresh engine would be cleaner; instead
	// walk the trajectory manually.
	r2, err := NewRoomAtOutdoor(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e2 := sim.NewEngine(sim.MustClock(testStart, time.Second), 7)
	e2.Register(r2)
	e2.Register(sim.ComponentFunc{ID: "loads", Fn: func(env *sim.Env) {
		for i := 0; i < NumZones; i++ {
			r2.SetPanelExtraction(ZoneID(i), 330)
			r2.SetVent(ZoneID(i), VentInput{VolFlow: 0.016, Supply: dry, SupplyCO2PPM: 410})
		}
		if reachedT == 0 && r2.AverageT() <= 25.2 {
			reachedT = env.Elapsed()
		}
		if reachedDew == 0 && r2.AverageDewPoint() <= 18.2 {
			reachedDew = env.Elapsed()
		}
	}})
	if err := e2.RunTicks(context.Background(), 5400); err != nil {
		t.Fatal(err)
	}
	if reachedT == 0 || reachedT < 15*time.Minute || reachedT > 70*time.Minute {
		t.Errorf("temperature pull-down took %v, want ≈30 min", reachedT)
	}
	if reachedDew == 0 || reachedDew < 10*time.Minute || reachedDew > 70*time.Minute {
		t.Errorf("dew-point pull-down took %v, want ≈30 min", reachedDew)
	}
}
