package thermal

import (
	"fmt"

	"bubblezero/internal/psychro"
)

// RoomBank owns the zone state of many buildings in contiguous
// structure-of-arrays storage: one t/w/co2 array of n×NumZones floats
// (building i's zones at [i·NumZones, (i+1)·NumZones)) plus per-building
// kernelTerms/boundaryTerms/zoneInputs rows. Each banked Room is a view
// into its row — the same pointer layout an unbanked Room gets from its
// private roomRows — so every Room method, including the unrolled
// StepBatch kernel, runs unchanged and per-building results are
// bit-identical to a standalone Room by construction. What the bank
// changes is locality: a shard stepping thousands of buildings streams
// one packed array per balance instead of hopping between per-building
// heap islands.
type RoomBank struct {
	n         int
	t, w, co2 []float64 // len n*NumZones
	kern      []kernelTerms
	bnd       []boundaryTerms
	in        []zoneInputs
	rooms     []*Room
}

// NewRoomBank allocates storage for n buildings' zone state. Rows are
// bound one at a time via RoomBank.NewRoom / NewRoomAtOutdoor; binding
// distinct rows from different goroutines is safe (disjoint writes), which
// lets a fleet construct buildings in parallel straight into the bank.
func NewRoomBank(n int) (*RoomBank, error) {
	if n <= 0 {
		return nil, fmt.Errorf("thermal: RoomBank size must be > 0, got %d", n)
	}
	return &RoomBank{
		n:     n,
		t:     make([]float64, n*NumZones),
		w:     make([]float64, n*NumZones),
		co2:   make([]float64, n*NumZones),
		kern:  make([]kernelTerms, n),
		bnd:   make([]boundaryTerms, n),
		in:    make([]zoneInputs, n),
		rooms: make([]*Room, n),
	}, nil
}

// Len returns the bank's capacity in buildings.
func (bk *RoomBank) Len() int { return bk.n }

// Room returns the room bound to a row (nil if unbound or out of range).
func (bk *RoomBank) Room(row int) *Room {
	if row < 0 || row >= bk.n {
		return nil
	}
	return bk.rooms[row]
}

// NewRoom builds a Room whose state lives in the bank's row — the banked
// counterpart of the package-level NewRoom. The slice-to-array-pointer
// views carry the compile-time NumZones length, so the kernel's accesses
// stay bounds-check-free exactly as on the owned-rows path.
func (bk *RoomBank) NewRoom(row int, cfg Config, initial psychro.State, initialCO2 float64) (*Room, error) {
	if row < 0 || row >= bk.n {
		return nil, fmt.Errorf("thermal: RoomBank row %d out of range [0, %d)", row, bk.n)
	}
	if bk.rooms[row] != nil {
		return nil, fmt.Errorf("thermal: RoomBank row %d already bound", row)
	}
	base := row * NumZones
	r := &Room{
		t:    (*[NumZones]float64)(bk.t[base : base+NumZones]),
		w:    (*[NumZones]float64)(bk.w[base : base+NumZones]),
		co2:  (*[NumZones]float64)(bk.co2[base : base+NumZones]),
		kern: &bk.kern[row],
		bnd:  &bk.bnd[row],
		in:   &bk.in[row],
	}
	if err := r.init(cfg, initial, initialCO2); err != nil {
		return nil, err
	}
	bk.rooms[row] = r
	return r, nil
}

// NewRoomAtOutdoor builds a banked room in equilibrium with its configured
// outdoor condition (see the package-level NewRoomAtOutdoor).
func (bk *RoomBank) NewRoomAtOutdoor(row int, cfg Config) (*Room, error) {
	return bk.NewRoom(row, cfg, cfg.Outdoor, cfg.OutdoorCO2PPM)
}

// StepAll advances every bound room by dt seconds in one fused pass over
// the bank's packed arrays. Each row runs the identical unrolled StepBatch
// body a standalone Room runs, in row order, so per-building arithmetic —
// and therefore per-building output — is unchanged; the fusion buys
// streaming access to t/w/co2 instead of a pointer chase per building.
//
//bzlint:hotpath
func (bk *RoomBank) StepAll(dt float64) {
	bk.StepRange(0, bk.n, dt)
}

// StepRange advances the bound rooms in rows [lo, hi) by dt seconds —
// the blocked form of StepAll. A shard phasing a cache-sized block of
// buildings steps just that block's rows, keeping the block's state hot
// across a whole epoch; row order (and so every row's arithmetic) is
// identical to StepAll. Out-of-range bounds are clamped.
//
//bzlint:hotpath
func (bk *RoomBank) StepRange(lo, hi int, dt float64) {
	if lo < 0 {
		lo = 0
	}
	if hi > bk.n {
		hi = bk.n
	}
	for _, r := range bk.rooms[lo:hi] {
		if r != nil {
			r.StepBatch(dt)
		}
	}
}

// SetClimateAll installs one precomputed outdoor boundary on every bound
// room — the bank-level form of the fleet's shared-climate install. The
// heavy psychrometric terms live in the Climate itself (NewClimate), so
// this is pure coefficient folding per row.
//
//bzlint:mutsetter fleet.Apply
func (bk *RoomBank) SetClimateAll(c Climate) {
	for _, r := range bk.rooms {
		if r != nil {
			r.SetClimate(c)
		}
	}
}
