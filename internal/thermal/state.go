package thermal

import "math"

// RoomState is a Room's full mutable state, exported for digital-twin
// snapshots: the prognostic zone arrays, the installed climate, and the
// raw actuator/load input rows. Inputs are restored as the raw folded
// arrays rather than by replaying the setters — SetVent's density memo
// needs the supply pressure, which the folded rows no longer carry.
//
//bzlint:state ExportState RestoreState
type RoomState struct {
	T, W, CO2 [NumZones]float64

	Climate Climate

	VentVol    [NumZones]float64
	VentMdot   [NumZones]float64
	VentMdotCp [NumZones]float64
	VentT      [NumZones]float64
	VentW      [NumZones]float64
	VentCO2    [NumZones]float64

	PanelExtract [NumZones]float64
	Condensation [NumZones]float64

	Occupants [NumZones]int
	OccQ      [NumZones]float64
	OccW      [NumZones]float64
	OccC      [NumZones]float64

	DoorRemainingS   float64
	WindowRemainingS float64
	DoorOpenings     int
	WindowOpenings   int
}

// ExportState captures the room's mutable state. Derived caches and the
// supply-density memo are omitted: both recompute from the prognostic
// state with the same pure functions, so a restored room reads the same
// bits a warm one would.
func (r *Room) ExportState() RoomState {
	return RoomState{
		T: *r.t, W: *r.w, CO2: *r.co2,
		Climate:      r.clim,
		VentVol:      r.in.ventVol,
		VentMdot:     r.in.ventMdot,
		VentMdotCp:   r.in.ventMdotCp,
		VentT:        r.in.ventT,
		VentW:        r.in.ventW,
		VentCO2:      r.in.ventCO2,
		PanelExtract: r.in.panelExtract,
		Condensation: r.in.condensation,
		Occupants:    r.in.occupants,
		OccQ:         r.in.occQ,
		OccW:         r.in.occW,
		OccC:         r.in.occC,

		DoorRemainingS:   r.doorRemaining,
		WindowRemainingS: r.windowRemaining,
		DoorOpenings:     r.doorOpenings,
		WindowOpenings:   r.windowOpenings,
	}
}

// RestoreState overwrites the room's mutable state. The climate goes
// through SetClimate so the boundary coefficients refold from the exact
// exported (Dew, RhoOut) terms; the density memo is keyed to NaN so the
// next SetVent recomputes unconditionally.
func (r *Room) RestoreState(st RoomState) {
	r.SetClimate(st.Climate)
	*r.t, *r.w, *r.co2 = st.T, st.W, st.CO2
	r.in.ventVol = st.VentVol
	r.in.ventMdot = st.VentMdot
	r.in.ventMdotCp = st.VentMdotCp
	r.in.ventT = st.VentT
	r.in.ventW = st.VentW
	r.in.ventCO2 = st.VentCO2
	r.in.panelExtract = st.PanelExtract
	r.in.condensation = st.Condensation
	r.in.occupants = st.Occupants
	r.in.occQ = st.OccQ
	r.in.occW = st.OccW
	r.in.occC = st.OccC
	for i := range r.in.ventRho {
		r.in.ventRho[i].t = math.NaN()
		r.in.ventRho[i].p = math.NaN()
		r.in.ventRho[i].rho = 0
	}
	r.doorRemaining = st.DoorRemainingS
	r.windowRemaining = st.WindowRemainingS
	r.doorOpenings = st.DoorOpenings
	r.windowOpenings = st.WindowOpenings
	r.recomputeDerived()
}
