package thermal

import (
	"testing"
	"time"

	"bubblezero/internal/psychro"
)

// TestBankedRoomBitIdenticalToOwned drives a banked room and an owned-rows
// room through the same disturbed trajectory — ventilation, occupants,
// panel extraction, condensation, door/window events, a mid-run climate
// change — and requires every prognostic and derived float to match
// bit-for-bit at every tick. The bank only relocates storage; the kernel
// is the same code, so any divergence is a layout bug.
func TestBankedRoomBitIdenticalToOwned(t *testing.T) {
	cfg := DefaultConfig()
	initial := psychro.NewState(29, 70, 0)
	const co2 = 620.0

	own, err := NewRoom(cfg, initial, co2)
	if err != nil {
		t.Fatal(err)
	}
	bank, err := NewRoomBank(3)
	if err != nil {
		t.Fatal(err)
	}
	// Bind the probe room to a middle row so both neighbours exist; bind
	// the neighbours too, with different state, to catch row bleed.
	if _, err := bank.NewRoom(0, cfg, psychro.NewState(35, 40, 0), 900); err != nil {
		t.Fatal(err)
	}
	bkd, err := bank.NewRoom(1, cfg, initial, co2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bank.NewRoom(2, cfg, psychro.NewState(18, 30, 0), 400); err != nil {
		t.Fatal(err)
	}

	compare := func(tick int) {
		t.Helper()
		for z := ZoneID(0); z < NumZones; z++ {
			if own.Zone(z) != bkd.Zone(z) {
				t.Fatalf("tick %d zone %d: owned %+v != banked %+v", tick, z, own.Zone(z), bkd.Zone(z))
			}
			if own.ZoneDewPoint(z) != bkd.ZoneDewPoint(z) || own.ZoneRH(z) != bkd.ZoneRH(z) {
				t.Fatalf("tick %d zone %d: derived dew/RH diverged", tick, z)
			}
		}
		if own.AverageT() != bkd.AverageT() || own.AverageW() != bkd.AverageW() ||
			own.AverageCO2() != bkd.AverageCO2() || own.AverageDewPoint() != bkd.AverageDewPoint() {
			t.Fatalf("tick %d: averages diverged", tick)
		}
	}

	vent := VentInput{VolFlow: 0.05, Supply: psychro.NewState(18, 60, 0), SupplyCO2PPM: 420}
	apply := func(r *Room, tick int) {
		r.SetVent(1, vent)
		r.SetOccupants(2, (tick/600)%3)
		r.SetPanelExtraction(0, 150)
		r.SetCondensation(3, 1e-6)
		switch tick {
		case 300:
			r.OpenDoor(2 * time.Minute)
		case 900:
			r.OpenWindow(5 * time.Minute)
		case 1500:
			r.SetClimate(NewClimate(psychro.NewStateDewPoint(33, 27.5, 0), 410))
		}
	}

	const dt = 1.0
	for tick := 0; tick < 2400; tick++ {
		apply(own, tick)
		apply(bkd, tick)
		own.StepBatch(dt)
		bank.StepAll(dt)
		if tick%97 == 0 || tick >= 2395 {
			compare(tick)
		}
	}

	// The neighbours must have moved independently (no shared state).
	if bank.Room(0).Zone(0) == bank.Room(2).Zone(0) {
		t.Fatal("neighbour rows converged exactly; suspicious row aliasing")
	}
}

// TestRoomBankBinding pins the bank's row-binding contract.
func TestRoomBankBinding(t *testing.T) {
	if _, err := NewRoomBank(0); err == nil {
		t.Fatal("NewRoomBank(0) succeeded, want error")
	}
	bank, err := NewRoomBank(2)
	if err != nil {
		t.Fatal(err)
	}
	if bank.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", bank.Len())
	}
	cfg := DefaultConfig()
	for _, row := range []int{-1, 2} {
		if _, err := bank.NewRoomAtOutdoor(row, cfg); err == nil {
			t.Fatalf("NewRoomAtOutdoor(%d) succeeded, want out-of-range error", row)
		}
	}
	r, err := bank.NewRoomAtOutdoor(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bank.Room(0) != r {
		t.Fatal("Room(0) did not return the bound room")
	}
	if bank.Room(1) != nil || bank.Room(7) != nil {
		t.Fatal("unbound/out-of-range rows must return nil")
	}
	if _, err := bank.NewRoomAtOutdoor(0, cfg); err == nil {
		t.Fatal("double-binding row 0 succeeded, want error")
	}

	// SetClimateAll must reach every bound room.
	if _, err := bank.NewRoomAtOutdoor(1, cfg); err != nil {
		t.Fatal(err)
	}
	c := NewClimate(psychro.NewStateDewPoint(31, 26, 0), 415)
	bank.SetClimateAll(c)
	for row := 0; row < 2; row++ {
		if got := bank.Room(row).Outdoor().T; got != 31.0 {
			t.Fatalf("row %d outdoor T = %v after SetClimateAll, want 31", row, got)
		}
	}
}
