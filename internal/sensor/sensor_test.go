package sensor

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(1, 2)) }

func TestModelValidate(t *testing.T) {
	if err := ADT7410().Validate(); err != nil {
		t.Errorf("ADT7410 invalid: %v", err)
	}
	if err := (Model{Name: "bad", NoiseStd: -1}).Validate(); err == nil {
		t.Error("negative NoiseStd should be invalid")
	}
	if err := (Model{Name: "bad", Quantum: -0.1}).Validate(); err == nil {
		t.Error("negative Quantum should be invalid")
	}
}

func TestAllDatasheetModelsValid(t *testing.T) {
	for _, m := range []Model{ADT7410(), SHT75Temperature(), SHT75Humidity(), CO2NDIR()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	if err := Vision2000().Validate(); err != nil {
		t.Errorf("Vision2000: %v", err)
	}
}

func TestReadNoiselessAppliesBiasAndQuantum(t *testing.T) {
	m := Model{Name: "x", Bias: 0.5, Quantum: 0.25}
	if got := m.Read(10.1, nil); got != 10.5 {
		t.Errorf("Read = %v, want 10.5 (10.1+0.5 rounded to 0.25)", got)
	}
}

func TestReadClampsToRange(t *testing.T) {
	m := Model{Name: "x", Min: 0, Max: 100}
	if got := m.Read(-5, nil); got != 0 {
		t.Errorf("Read(-5) = %v, want clamp 0", got)
	}
	if got := m.Read(150, nil); got != 100 {
		t.Errorf("Read(150) = %v, want clamp 100", got)
	}
}

func TestReadIgnoresDegenerateRange(t *testing.T) {
	m := Model{Name: "x"} // Min == Max == 0 → no clamping
	if got := m.Read(-273, nil); got != -273 {
		t.Errorf("Read = %v, want -273 (no clamp)", got)
	}
}

func TestADT7410AccuracyBand(t *testing.T) {
	rng := testRNG()
	const truth = 18.0
	// Any calibrated instance (bias drawn from the accuracy band) must
	// keep all its readings within accuracy + a few repeatability sigmas.
	for inst := 0; inst < 50; inst++ {
		m := ADT7410().WithRandomBias(rng)
		if math.Abs(m.Bias) > 0.5 {
			t.Fatalf("instance bias %v outside ±0.5 accuracy band", m.Bias)
		}
		for i := 0; i < 100; i++ {
			if err := math.Abs(m.Read(truth, rng) - truth); err > 0.5+5*m.NoiseStd+m.Quantum {
				t.Fatalf("reading error %.3f exceeds accuracy+repeatability", err)
			}
		}
	}
}

func TestRepeatabilityMuchTighterThanAccuracy(t *testing.T) {
	// The adaptive-transmission scheme relies on per-reading jitter being
	// far smaller than event dynamics; datasheet repeatability is a
	// fraction of the accuracy band for every modelled sensor.
	for _, m := range []Model{ADT7410(), SHT75Temperature(), SHT75Humidity(), CO2NDIR()} {
		if m.NoiseStd >= m.AccuracyBand/3 {
			t.Errorf("%s: NoiseStd %v not well below AccuracyBand %v", m.Name, m.NoiseStd, m.AccuracyBand)
		}
	}
}

func TestWithRandomBiasNilRNG(t *testing.T) {
	m := ADT7410()
	if got := m.WithRandomBias(nil); got.Bias != m.Bias {
		t.Error("nil rng should not change bias")
	}
}

func TestADT7410Quantisation(t *testing.T) {
	m := ADT7410()
	got := m.Read(18.031, nil)
	if rem := math.Mod(got, 0.0625); math.Abs(rem) > 1e-9 && math.Abs(rem-0.0625) > 1e-9 {
		t.Errorf("reading %v not on 0.0625 grid", got)
	}
}

func TestSHT75HumidityClamped(t *testing.T) {
	m := SHT75Humidity()
	rng := testRNG()
	for i := 0; i < 1000; i++ {
		if v := m.Read(99.9, rng); v > 100 {
			t.Fatalf("humidity reading %v exceeds 100%%", v)
		}
		if v := m.Read(0.05, rng); v < 0 {
			t.Fatalf("humidity reading %v below 0%%", v)
		}
	}
}

func TestReadNoiseIsUnbiased(t *testing.T) {
	m := CO2NDIR()
	rng := testRNG()
	const truth = 600.0
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += m.Read(truth, rng)
	}
	mean := sum / n
	if math.Abs(mean-truth) > 1.0 {
		t.Errorf("mean reading %v drifted from truth %v", mean, truth)
	}
}

func TestFlowMeterZeroFlow(t *testing.T) {
	f := Vision2000()
	if got := f.Read(0, testRNG()); got != 0 {
		t.Errorf("Read(0) = %v, want 0", got)
	}
	if got := f.Read(-3, nil); got != 0 {
		t.Errorf("Read(-3) = %v, want 0", got)
	}
}

func TestFlowMeterDeterministicRoundTrip(t *testing.T) {
	f := Vision2000()
	// 6 L/min = 0.1 L/s = 220 pulses/s: exactly representable.
	if got := f.Read(6, nil); math.Abs(got-6) > 1e-9 {
		t.Errorf("Read(6 L/min) = %v, want 6", got)
	}
}

func TestFlowMeterQuantisationScale(t *testing.T) {
	f := Vision2000()
	// One pulse per gate = 60/2200 ≈ 0.0273 L/min resolution.
	res := 60.0 / f.PulsesPerLitre / f.GateSeconds
	got := f.Read(1.0, nil)
	if rem := math.Mod(got, res); math.Abs(rem) > 1e-9 && math.Abs(rem-res) > 1e-9 {
		t.Errorf("reading %v not on %v grid", got, res)
	}
}

func TestFlowMeterStochasticUnbiased(t *testing.T) {
	f := FlowMeter{PulsesPerLitre: 10, GateSeconds: 1} // coarse: exercises dithering
	rng := testRNG()
	const truth = 2.5 // L/min → 0.4167 pulses/gate
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += f.Read(truth, rng)
	}
	mean := sum / n
	if math.Abs(mean-truth) > 0.1 {
		t.Errorf("mean flow %v drifted from %v (dithering bias)", mean, truth)
	}
}

// Property: noiseless readings are monotone in the truth for any model
// without clamping (quantisation preserves weak monotonicity).
func TestReadMonotoneProperty(t *testing.T) {
	m := Model{Name: "x", Quantum: 0.0625}
	f := func(aRaw, dRaw uint16) bool {
		a := float64(aRaw)/100 - 300
		d := float64(dRaw) / 100
		return m.Read(a+d, nil) >= m.Read(a, nil)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: flow meter readings are non-negative and bounded by truth plus
// one pulse of resolution.
func TestFlowMeterBoundsProperty(t *testing.T) {
	f := Vision2000()
	res := 60.0 / f.PulsesPerLitre / f.GateSeconds
	fn := func(lpmRaw uint16) bool {
		lpm := float64(lpmRaw) / 100 // 0 … 655 L/min
		got := f.Read(lpm, nil)
		return got >= 0 && math.Abs(got-lpm) <= res/2+1e-9
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
