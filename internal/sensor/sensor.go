// Package sensor models the measurement devices instrumented in
// BubbleZERO (§III-B.2, §III-C.2): ADT7410 digital temperature sensors in
// the water pipes, SHT75 temperature/humidity sensors on panels and
// airbox outlets, NDIR CO₂ sensors, and VISION-2000 pulse-output flow
// meters. Each model adds datasheet-grade bias, Gaussian noise, and
// quantisation to the true physical value, so controllers downstream see
// realistic imperfect readings.
package sensor

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Model describes a generic analogue/digital sensor channel. Per-reading
// noise is the device's *repeatability* (typically 5–20× tighter than the
// datasheet accuracy); the accuracy band manifests as a fixed per-instance
// calibration Bias, drawn once via WithRandomBias.
type Model struct {
	// Name identifies the channel ("ADT7410", ...).
	Name string
	// NoiseStd is the standard deviation of the per-reading Gaussian
	// noise (the repeatability).
	NoiseStd float64
	// Bias is a fixed calibration offset applied to every reading.
	Bias float64
	// AccuracyBand is the datasheet accuracy: WithRandomBias draws the
	// per-instance Bias uniformly from ±AccuracyBand.
	AccuracyBand float64
	// Quantum is the output resolution; readings are rounded to the
	// nearest multiple. Zero disables quantisation.
	Quantum float64
	// Min and Max clamp the output to the sensor's measurable range. They
	// are ignored when Min >= Max.
	Min, Max float64
}

// WithRandomBias returns a copy of the model with a calibration bias drawn
// uniformly from ±AccuracyBand — one draw per physical sensor instance.
func (m Model) WithRandomBias(rng *rand.Rand) Model {
	if rng != nil && m.AccuracyBand > 0 {
		m.Bias += (rng.Float64()*2 - 1) * m.AccuracyBand
	}
	return m
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	if m.NoiseStd < 0 {
		return fmt.Errorf("sensor %s: NoiseStd must be >= 0, got %v", m.Name, m.NoiseStd)
	}
	if m.Quantum < 0 {
		return fmt.Errorf("sensor %s: Quantum must be >= 0, got %v", m.Name, m.Quantum)
	}
	return nil
}

// Read converts a true physical value into a sensor reading using rng for
// the noise draw. A nil rng produces a noiseless (but still biased,
// quantised, and clamped) reading.
func (m Model) Read(truth float64, rng *rand.Rand) float64 {
	v := truth + m.Bias
	if rng != nil && m.NoiseStd > 0 {
		v += rng.NormFloat64() * m.NoiseStd
	}
	if m.Quantum > 0 {
		v = math.Round(v/m.Quantum) * m.Quantum
	}
	if m.Min < m.Max {
		if v < m.Min {
			v = m.Min
		} else if v > m.Max {
			v = m.Max
		}
	}
	return v
}

// ADT7410 returns the model of the ADT7410 digital temperature sensor
// embedded in the water pipes: ±0.5 °C accuracy, 0.0625 °C (13-bit)
// resolution, −55…150 °C range.
func ADT7410() Model {
	return Model{
		Name:         "ADT7410",
		NoiseStd:     0.02, // repeatability; accuracy is the bias band
		AccuracyBand: 0.5,
		Quantum:      0.0625,
		Min:          -55,
		Max:          150,
	}
}

// SHT75Temperature returns the temperature channel of the SHT75:
// ±0.3 °C accuracy, 0.01 °C resolution, −40…123 °C range.
func SHT75Temperature() Model {
	return Model{
		Name:         "SHT75-T",
		NoiseStd:     0.01,
		AccuracyBand: 0.3,
		Quantum:      0.01,
		Min:          -40,
		Max:          123.8,
	}
}

// SHT75Humidity returns the relative-humidity channel of the SHT75:
// ±1.8 %RH accuracy, 0.05 %RH resolution, 0…100 % range.
func SHT75Humidity() Model {
	return Model{
		Name:         "SHT75-RH",
		NoiseStd:     0.1,
		AccuracyBand: 1.8,
		Quantum:      0.05,
		Min:          0,
		Max:          100,
	}
}

// CO2NDIR returns an NDIR CO₂ concentration sensor model: ±50 ppm
// accuracy, 1 ppm resolution, 0…10000 ppm range.
func CO2NDIR() Model {
	return Model{
		Name:         "CO2-NDIR",
		NoiseStd:     2,
		AccuracyBand: 50,
		Quantum:      1,
		Min:          0,
		Max:          10000,
	}
}

// FlowMeter models the VISION-2000 turbine flow sensor. It emits pulses at
// a frequency proportional to the volumetric flow; a reading integrates
// whole pulses over a gate window, which quantises low flows coarsely —
// the behaviour the Control-C-2 board has to live with.
type FlowMeter struct {
	// PulsesPerLitre is the K-factor of the turbine.
	PulsesPerLitre float64
	// GateSeconds is the counting window used per reading.
	GateSeconds float64
}

// Vision2000 returns the flow meter used in BubbleZERO's hydraulic loops:
// K-factor 2200 pulses/L with a 1 s gate.
func Vision2000() FlowMeter {
	return FlowMeter{PulsesPerLitre: 2200, GateSeconds: 1}
}

// Validate checks the meter parameters.
func (f FlowMeter) Validate() error {
	if f.PulsesPerLitre <= 0 {
		return fmt.Errorf("sensor: FlowMeter PulsesPerLitre must be > 0, got %v", f.PulsesPerLitre)
	}
	if f.GateSeconds <= 0 {
		return fmt.Errorf("sensor: FlowMeter GateSeconds must be > 0, got %v", f.GateSeconds)
	}
	return nil
}

// Read converts a true flow (litres per minute) into a measured flow
// (litres per minute) by counting whole pulses over the gate window. rng
// adds sub-pulse phase jitter; nil rng rounds deterministically.
func (f FlowMeter) Read(trueLpm float64, rng *rand.Rand) float64 {
	if trueLpm <= 0 {
		return 0
	}
	pulses := trueLpm / 60 * f.PulsesPerLitre * f.GateSeconds
	var whole float64
	if rng != nil {
		// The fractional pulse is observed with probability equal to the
		// accumulated phase, which is how a real counter behaves.
		whole = math.Floor(pulses)
		if rng.Float64() < pulses-whole {
			whole++
		}
	} else {
		whole = math.Round(pulses)
	}
	return whole / f.PulsesPerLitre / f.GateSeconds * 60
}
