package sim

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TakeOver + StepTick tests: the fleet's phased-stepping hooks. An engine
// driven tick-by-tick with its physics stepped externally must be
// observationally identical to RunTicks with the physics in-line.

// TestStepTickEquivalentToRunTicks drives two identical engines — one via
// RunTicks, one via per-tick StepTick + FlushCadenced — and requires the
// same component activation sequences, clock, and RNG stream position.
func TestStepTickEquivalentToRunTicks(t *testing.T) {
	build := func() (*Engine, *[]string, *accumCadenced) {
		e := NewEngine(MustClock(testStart, time.Second), 7)
		log := &[]string{}
		e.Register(ComponentFunc{ID: "a", Fn: func(env *Env) {
			*log = append(*log, fmt.Sprintf("a@%d:%x", env.Tick(), env.RNG().Stream("a").Uint64()&0xff))
		}})
		dev := &accumCadenced{name: "dev", periodS: 3}
		e.Register(dev)
		e.Register(ComponentFunc{ID: "b", Fn: func(env *Env) {
			*log = append(*log, fmt.Sprintf("b@%d", env.Tick()))
		}})
		e.Timeline().At(testStart.Add(5*time.Second), "ev", func(env *Env) {
			*log = append(*log, fmt.Sprintf("ev@%d", env.Tick()))
		})
		return e, log, dev
	}

	ref, refLog, refDev := build()
	if err := ref.RunTicks(context.Background(), 20); err != nil {
		t.Fatal(err)
	}

	alt, altLog, altDev := build()
	for i := 0; i < 20; i++ {
		if alt.StepTick() {
			t.Fatalf("StepTick reported a stop with no stop condition installed (tick %d)", i)
		}
	}
	alt.FlushCadenced()

	if fmt.Sprint(*refLog) != fmt.Sprint(*altLog) {
		t.Errorf("activation logs diverged:\n RunTicks: %v\n StepTick: %v", *refLog, *altLog)
	}
	if ref.Clock().Tick() != alt.Clock().Tick() {
		t.Errorf("clock diverged: %d vs %d", ref.Clock().Tick(), alt.Clock().Tick())
	}
	if refDev.ticks != altDev.ticks || fmt.Sprint(refDev.fires) != fmt.Sprint(altDev.fires) {
		t.Errorf("cadenced coverage diverged: %d/%v vs %d/%v",
			refDev.ticks, refDev.fires, altDev.ticks, altDev.fires)
	}
}

// TestStepTickHonorsStopCondition pins that the stop condition is
// evaluated inside the tick, as RunTicks does.
func TestStepTickHonorsStopCondition(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	e.Register(ComponentFunc{ID: "noop", Fn: func(*Env) {}})
	e.SetStopCondition(func(env *Env) bool { return env.Tick() >= 4 })
	calls := 0
	for calls < 10 {
		calls++
		if e.StepTick() {
			break
		}
	}
	// The condition sees the post-advance env exactly like RunTicks: the
	// call that starts at tick 3 advances to 4 and stops — the 4th call.
	if calls != 4 {
		t.Errorf("stop fired on call %d, want 4", calls)
	}
}

// TestTakeOverRemovesFromDelivery pins the takeover contract: after
// TakeOver the engine no longer steps the component, the caller's own
// stepping slots into the same observable sequence, and StepStats reports
// the entry as taken-over.
func TestTakeOverRemovesFromDelivery(t *testing.T) {
	// Reference: physics registered last, engine steps everything.
	build := func() (*Engine, *[]string, *Registration) {
		e := NewEngine(MustClock(testStart, time.Second), 3)
		log := &[]string{}
		e.Register(ComponentFunc{ID: "sensors", Fn: func(env *Env) {
			*log = append(*log, fmt.Sprintf("s@%d", env.Tick()))
		}})
		reg := e.Register(ComponentFunc{ID: "physics", Fn: func(env *Env) {
			*log = append(*log, fmt.Sprintf("p@%d", env.Tick()))
		}})
		return e, log, reg
	}

	ref, refLog, _ := build()
	if err := ref.RunTicks(context.Background(), 6); err != nil {
		t.Fatal(err)
	}

	alt, altLog, reg := build()
	reg.TakeOver()
	if !reg.TakenOver() {
		t.Fatal("TakenOver() = false after TakeOver")
	}
	for i := 0; i < 6; i++ {
		tick := alt.Clock().Tick()
		alt.StepTick()
		// The external driver steps physics at the position it held:
		// after every other component of the same tick.
		*altLog = append(*altLog, fmt.Sprintf("p@%d", tick))
	}
	alt.FlushCadenced()

	if fmt.Sprint(*refLog) != fmt.Sprint(*altLog) {
		t.Errorf("takeover sequence diverged:\n engine:   %v\n external: %v", *refLog, *altLog)
	}
	stats := alt.StepStats()
	if stats[1].Kind != "taken-over" {
		t.Errorf("StepStats kind = %q, want taken-over", stats[1].Kind)
	}
	if stats[1].Steps != 0 {
		t.Errorf("taken-over Steps = %d, want 0 (external calls invisible to scheduler)", stats[1].Steps)
	}
}

func TestTakeOverPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	e := NewEngine(MustClock(testStart, time.Second), 1)
	noop := ComponentFunc{ID: "noop", Fn: func(*Env) {}}
	mustPanic("TakeOver on cadenced", func() {
		e.Register(&accumCadenced{name: "cad", periodS: 2}).TakeOver()
	})
	mustPanic("TakeOver on on-demand", func() {
		e.Register(noop, WithOnDemand()).TakeOver()
	})
	reg := e.Register(noop)
	reg.TakeOver()
	mustPanic("double TakeOver", reg.TakeOver)
}
