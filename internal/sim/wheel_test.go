package sim

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// accumCadenced is a test double for the sensor-device pattern: per-tick
// accumulator bookkeeping (the idle-drain analogue is the ticks counter)
// with observable work whenever the accumulator crosses the period. It
// implements Cadenced exactly as the wsn devices do — NextDue replays the
// accumulator's float arithmetic.
type accumCadenced struct {
	name    string
	periodS float64
	since   float64
	ticks   uint64   // per-tick bookkeeping applied (catch-up included)
	fires   []uint64 // ticks on which observable work happened
	observe func()   // optional, runs at each fire
}

func (a *accumCadenced) Name() string  { return a.name }
func (a *accumCadenced) Step(env *Env) { a.StepN(env, 1) }
func (a *accumCadenced) StepN(env *Env, n uint64) {
	dt := env.Dt()
	for ; n > 0; n-- {
		a.ticks++
		a.since += dt
		for a.since >= a.periodS {
			a.since -= a.periodS
			a.fires = append(a.fires, env.Tick())
			if a.observe != nil {
				a.observe()
			}
		}
	}
}

func (a *accumCadenced) NextDue(dtS float64) uint64 {
	var n uint64
	since := a.since
	for {
		n++
		next := since + dtS
		if next >= a.periodS {
			return n
		}
		since = next
	}
}

// everyTickTwin drives the same accumulator logic as a plain every-tick
// component, hiding the Cadenced methods from the engine.
type everyTickTwin struct{ a *accumCadenced }

func (w everyTickTwin) Name() string  { return w.a.name }
func (w everyTickTwin) Step(env *Env) { w.a.StepN(env, 1) }

// TestCadencedMatchesEveryTickPolling pins the wheel's core contract: a
// Cadenced component scheduled on the due-wheel ends a run with exactly
// the state and fire schedule that per-tick polling of the same logic
// produces — including at a step duration that is not exactly
// representable in binary (100 ms), where the accumulator drifts and
// NextDue must replay the drift rather than divide.
func TestCadencedMatchesEveryTickPolling(t *testing.T) {
	cases := []struct {
		step    time.Duration
		periodS float64
		ticks   uint64
	}{
		{time.Second, 3, 100},
		{time.Second, 2, 101},
		{100 * time.Millisecond, 0.3, 1000},
		{100 * time.Millisecond, 2, 997},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("step=%v_period=%vs", tc.step, tc.periodS), func(t *testing.T) {
			wheeled := &accumCadenced{name: "dev", periodS: tc.periodS}
			ew := NewEngine(MustClock(testStart, tc.step), 1)
			ew.Register(wheeled)
			if err := ew.RunTicks(context.Background(), tc.ticks); err != nil {
				t.Fatal(err)
			}

			polled := &accumCadenced{name: "dev", periodS: tc.periodS}
			ep := NewEngine(MustClock(testStart, tc.step), 1)
			ep.Register(everyTickTwin{polled})
			if err := ep.RunTicks(context.Background(), tc.ticks); err != nil {
				t.Fatal(err)
			}

			if wheeled.ticks != polled.ticks {
				t.Errorf("wheeled applied %d ticks, polled %d", wheeled.ticks, polled.ticks)
			}
			if wheeled.since != polled.since {
				t.Errorf("accumulator diverged: wheeled %v, polled %v", wheeled.since, polled.since)
			}
			if len(wheeled.fires) != len(polled.fires) {
				t.Fatalf("wheeled fired %d times, polled %d", len(wheeled.fires), len(polled.fires))
			}
			for i := range wheeled.fires {
				if wheeled.fires[i] != polled.fires[i] {
					t.Errorf("fire %d: wheeled tick %d, polled tick %d",
						i, wheeled.fires[i], polled.fires[i])
				}
			}
		})
	}
}

// TestStepStatsCountsDueTicksOnly pins the observability half of the
// tentpole: StepStats must show a cadenced component activated only on
// its due ticks, with every other processed tick counted as skipped.
func TestStepStatsCountsDueTicksOnly(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	dev := &accumCadenced{name: "dev", periodS: 3}
	e.Register(ComponentFunc{ID: "plant", Fn: func(*Env) {}})
	e.Register(dev)
	const ticks = 10
	if err := e.RunTicks(context.Background(), ticks); err != nil {
		t.Fatal(err)
	}
	stats := e.StepStats()
	if len(stats) != 2 {
		t.Fatalf("StepStats returned %d entries, want 2", len(stats))
	}
	plant, sensor := stats[0], stats[1]
	if plant.Kind != "every-tick" || plant.Steps != ticks || plant.Skipped != 0 {
		t.Errorf("plant stats = %+v, want every-tick %d/0", plant, ticks)
	}
	// Period 3 s at a 1 s step fires on ticks 2, 5, 8 — three activations.
	if sensor.Kind != "cadenced" {
		t.Errorf("sensor kind = %q, want cadenced", sensor.Kind)
	}
	if want := uint64(len(dev.fires)); sensor.Steps != want {
		t.Errorf("sensor steps = %d, want %d (one per due tick)", sensor.Steps, want)
	}
	if sensor.Steps+sensor.Skipped != ticks {
		t.Errorf("steps+skipped = %d, want %d", sensor.Steps+sensor.Skipped, ticks)
	}
	if sensor.Steps == ticks {
		t.Error("cadenced component was stepped on every tick; the wheel skipped nothing")
	}
}

// TestTimelineEventOnSkippedTick verifies the timeline is independent of
// the wheel: an event scheduled on a tick where every cadenced component
// is skipped still fires on that exact tick, and the component observes
// its effect at the next due tick.
func TestTimelineEventOnSkippedTick(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	setting := 0.0
	seen := -1.0
	dev := &accumCadenced{name: "dev", periodS: 5}
	dev.observe = func() { seen = setting }
	e.Register(dev)
	var firedTick uint64
	// Tick 3 is mid-gap: the device's only activations in a 10-tick run
	// are ticks 4 and 9.
	e.Timeline().At(testStart.Add(3*time.Second), "setpoint", func(env *Env) {
		firedTick = env.Tick()
		setting = 42
	})
	if err := e.RunTicks(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	if firedTick != 3 {
		t.Errorf("event fired on tick %d, want 3", firedTick)
	}
	if e.Timeline().Len() != 0 {
		t.Errorf("timeline still holds %d events", e.Timeline().Len())
	}
	if len(dev.fires) == 0 || dev.fires[0] != 4 {
		t.Fatalf("device fires = %v, want first fire on tick 4", dev.fires)
	}
	if seen != 42 {
		t.Errorf("device observed setting %v at its due tick, want 42", seen)
	}
}

// TestSameTickOrderingWithWheel pins intra-tick ordering: on a due tick
// the timeline fires first, then active components step in registration
// order regardless of which scheduling path (always list or wheel) they
// arrived by.
func TestSameTickOrderingWithWheel(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	var order []string
	note := func(s string) { order = append(order, s) }
	e.Register(ComponentFunc{ID: "a", Fn: func(*Env) { note("a") }})
	dev := &accumCadenced{name: "b", periodS: 2}
	dev.observe = func() { note("b") }
	e.Register(dev)
	e.Register(ComponentFunc{ID: "c", Fn: func(*Env) { note("c") }})
	e.Timeline().At(testStart.Add(1*time.Second), "ev", func(*Env) { note("ev") })
	if err := e.RunTicks(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	// Period 2 s fires on ticks 1 and 3; the event lands on tick 1.
	want := []string{"a", "c", "ev", "a", "b", "c", "a", "c", "a", "b", "c"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

// TestErrStoppedMidWheelCatchesUp verifies the stop-condition return path
// flushes cadenced bookkeeping: a run stopped between due ticks leaves the
// component's per-tick state exactly where per-tick polling would have,
// with no observable work invented for the flushed ticks.
func TestErrStoppedMidWheelCatchesUp(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	dev := &accumCadenced{name: "dev", periodS: 5}
	e.Register(dev)
	e.SetStopCondition(func(env *Env) bool { return env.Tick() >= 3 })
	err := e.RunTicks(context.Background(), 100)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if dev.ticks != 3 {
		t.Errorf("device bookkeeping covers %d ticks after stop, want 3", dev.ticks)
	}
	if len(dev.fires) != 0 {
		t.Errorf("device fired at %v during catch-up; catch-up must not fire", dev.fires)
	}
	if dev.since != 3 {
		t.Errorf("accumulator = %v after 3 flushed ticks, want 3", dev.since)
	}
}

// TestCancellationCatchesUp verifies the context-cancellation return path
// also flushes cadenced bookkeeping through the last executed tick.
func TestCancellationCatchesUp(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	dev := &accumCadenced{name: "dev", periodS: 1 << 20}
	e.Register(dev)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.RunTicks(ctx, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The cancelled run executed zero ticks, and catch-up must agree.
	if dev.ticks != 0 {
		t.Errorf("device covers %d ticks after immediate cancellation, want 0", dev.ticks)
	}
}

// TestCompletionCatchesUp verifies a normally completed run leaves a
// cadenced component's bookkeeping covering every executed tick even when
// the run ends strictly between due ticks.
func TestCompletionCatchesUp(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	dev := &accumCadenced{name: "dev", periodS: 7}
	e.Register(dev)
	if err := e.RunTicks(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	if dev.ticks != 10 {
		t.Errorf("device bookkeeping covers %d ticks, want 10", dev.ticks)
	}
	if len(dev.fires) != 1 || dev.fires[0] != 6 {
		t.Errorf("fires = %v, want exactly [6]", dev.fires)
	}
	// A second run resumes cleanly from the flushed state.
	if err := e.RunTicks(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	if dev.ticks != 20 {
		t.Errorf("device bookkeeping covers %d ticks after resume, want 20", dev.ticks)
	}
	if len(dev.fires) != 2 || dev.fires[1] != 13 {
		t.Errorf("fires = %v, want second fire on tick 13", dev.fires)
	}
}

// TestFixedCadenceSchedule pins WithCadence semantics: due on the
// registration tick and every period thereafter, with sub-step periods
// clamped to every tick.
func TestFixedCadenceSchedule(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	var ticks []uint64
	e.Register(ComponentFunc{ID: "log", Fn: func(env *Env) {
		ticks = append(ticks, env.Tick())
	}}, WithCadence(3*time.Second))
	n := 0
	e.Register(ComponentFunc{ID: "dense", Fn: func(*Env) { n++ }}, WithCadence(time.Millisecond))
	if err := e.RunTicks(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 3, 6, 9}
	if fmt.Sprint(ticks) != fmt.Sprint(want) {
		t.Errorf("WithCadence(3s) stepped on %v, want %v", ticks, want)
	}
	if n != 10 {
		t.Errorf("WithCadence(1ms) stepped %d times, want every tick (10)", n)
	}
	stats := e.StepStats()
	if stats[0].Kind != "cadenced" || stats[0].Steps != 4 || stats[0].Skipped != 6 {
		t.Errorf("WithCadence stats = %+v, want cadenced 4/6", stats[0])
	}
}

// TestOnDemandWake pins on-demand scheduling: the component steps only
// on ticks it was woken for, a wake from an earlier-ordered component
// lands the same tick, and a wake from outside the run loop is not lost.
func TestOnDemandWake(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	var stepped []uint64
	var wake func()
	e.Register(ComponentFunc{ID: "producer", Fn: func(env *Env) {
		if tk := env.Tick(); tk == 2 || tk == 7 {
			wake()
		}
	}})
	wake = e.Register(ComponentFunc{ID: "net", Fn: func(env *Env) {
		stepped = append(stepped, env.Tick())
	}}, WithOnDemand()).Wake
	if err := e.RunTicks(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	want := []uint64{2, 7}
	if fmt.Sprint(stepped) != fmt.Sprint(want) {
		t.Errorf("on-demand stepped on %v, want %v", stepped, want)
	}
	stats := e.StepStats()
	if stats[1].Kind != "on-demand" || stats[1].Steps != 2 || stats[1].Skipped != 8 {
		t.Errorf("on-demand stats = %+v, want on-demand 2/8", stats[1])
	}

	// A wake issued between runs steps the component on the next tick.
	wake()
	if err := e.RunTicks(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(stepped) != fmt.Sprint([]uint64{2, 7, 10}) {
		t.Errorf("after out-of-loop wake, stepped = %v, want [2 7 10]", stepped)
	}
}

// TestWakeAfterPositionLandsNextTick documents the one-tick latency when
// the waker is ordered after the on-demand component: the flag persists
// and the component steps on the following tick.
func TestWakeAfterPositionLandsNextTick(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	var stepped []uint64
	wake := e.Register(ComponentFunc{ID: "net", Fn: func(env *Env) {
		stepped = append(stepped, env.Tick())
	}}, WithOnDemand()).Wake
	e.Register(ComponentFunc{ID: "late-producer", Fn: func(env *Env) {
		if env.Tick() == 4 {
			wake()
		}
	}})
	if err := e.RunTicks(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(stepped) != fmt.Sprint([]uint64{5}) {
		t.Errorf("stepped = %v, want [5]", stepped)
	}
}

// TestFarHorizonCadence exercises the far-heap path: cadences longer than
// the wheel horizon (64 ticks) must still fire on exactly the right tick.
func TestFarHorizonCadence(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	slow := &accumCadenced{name: "slow", periodS: 200}
	fast := &accumCadenced{name: "fast", periodS: 2}
	e.Register(slow)
	e.Register(fast)
	if err := e.RunTicks(context.Background(), 450); err != nil {
		t.Fatal(err)
	}
	if want := []uint64{199, 399}; fmt.Sprint(slow.fires) != fmt.Sprint(want) {
		t.Errorf("slow fires = %v, want %v", slow.fires, want)
	}
	if len(fast.fires) != 225 {
		t.Errorf("fast fired %d times, want 225", len(fast.fires))
	}
	if slow.ticks != 450 || fast.ticks != 450 {
		t.Errorf("bookkeeping covers %d/%d ticks, want 450/450", slow.ticks, fast.ticks)
	}
}
