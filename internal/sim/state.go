package sim

import (
	"fmt"
	"time"
)

// This file is the engine side of the digital-twin snapshot surface: the
// scheduling and randomness state that, together with each component's own
// exported state, lets a run checkpointed at tick T resume bit-identically
// in a fresh process.
//
// The restore model is rebuild-then-patch. Timeline events are closures
// and cannot be serialized, so a snapshot never tries to capture the
// engine structurally: the caller re-assembles the system from the same
// configuration (construction is deterministic — the same components
// register in the same order, the same timeline events are scheduled at
// the same instants, the same construction-time RNG draws happen), and
// RestoreState then overwrites the mutable residue: the clock tick, every
// RNG stream's PCG position, each entry's wheel scheduling counters, and
// the timeline's already-fired prefix (dropped, never re-fired — its
// effects live in the captured component state).

// StreamState is the captured position of one named RNG stream, in
// creation order.
//
//bzlint:state exportStreams restoreStreams
type StreamState struct {
	Name string
	// PCG is the rand.PCG marshaled state (the full generator state; the
	// wrapping rand.Rand is stateless beyond its source).
	PCG []byte
}

// EntrySched is the captured scheduling state of one registered component,
// in registration order.
//
//bzlint:state ExportState RestoreState
type EntrySched struct {
	// Name is the component name, used to verify the rebuilt engine
	// registered the same component at this position.
	Name string
	// DoneThrough and NextDue are the wheel bookkeeping for cadenced
	// entries (ticks [0, DoneThrough) delivered; next due tick absolute).
	DoneThrough uint64
	NextDue     uint64
	// UntilDue is the WithCadence wrapper's ticks-until-next-due counter;
	// zero for entries not registered with a fixed cadence.
	UntilDue uint64
	// Steps and RegTick feed StepStats.
	Steps   uint64
	RegTick uint64
	// Woken is the on-demand latch; Suspended the fault-injection flag;
	// TakenOver the external-stepper flag (structural — verified, not
	// restored: the rebuilder must have taken over the same components).
	Woken     bool
	Suspended bool
	TakenOver bool
}

// EngineState is everything the engine itself contributes to a snapshot.
// Component-internal state (accumulators, controller integrals, physics)
// is captured by the components' own export hooks.
//
//bzlint:state ExportState RestoreState
type EngineState struct {
	Tick    uint64
	Streams []StreamState
	Entries []EntrySched
}

// ExportState captures the engine's scheduling and randomness state.
// Call it between ticks (e.g. at an epoch boundary) after FlushCadenced —
// the same quiescent point RestoreState resumes from.
func (e *Engine) ExportState() (EngineState, error) {
	streams, err := e.rng.exportStreams()
	if err != nil {
		return EngineState{}, err
	}
	st := EngineState{
		Tick:    e.clock.Tick(),
		Streams: streams,
		Entries: make([]EntrySched, len(e.entries)),
	}
	for i, ent := range e.entries {
		es := EntrySched{
			Name:        ent.c.Name(),
			DoneThrough: ent.doneThrough,
			NextDue:     ent.nextDue,
			Steps:       ent.steps,
			RegTick:     ent.regTick,
			Woken:       ent.woken,
			Suspended:   ent.suspended,
			TakenOver:   ent.takenOver,
		}
		if fc, ok := ent.c.(*fixedCadence); ok {
			es.UntilDue = fc.untilDue
		}
		st.Entries[i] = es
	}
	return st, nil
}

// RestoreState patches a freshly assembled engine to the captured point:
// it sets the clock, restores every RNG stream, overwrites each entry's
// scheduling counters, rebuilds the due-wheel around the restored due
// ticks, and drops the timeline prefix the original run had already fired.
// The engine must have been assembled from the same configuration as the
// exported one (same registrations in the same order, same timeline); any
// structural mismatch is reported as an error.
func (e *Engine) RestoreState(st EngineState) error {
	if len(st.Entries) != len(e.entries) {
		return fmt.Errorf("sim: restore: engine has %d registrations, snapshot has %d",
			len(e.entries), len(st.Entries))
	}
	for i, es := range st.Entries {
		ent := e.entries[i]
		if ent.c.Name() != es.Name {
			return fmt.Errorf("sim: restore: registration %d is %q, snapshot has %q",
				i, ent.c.Name(), es.Name)
		}
		if ent.takenOver != es.TakenOver {
			return fmt.Errorf("sim: restore: registration %q taken-over mismatch (have %v, snapshot %v)",
				es.Name, ent.takenOver, es.TakenOver)
		}
	}
	if err := e.rng.restoreStreams(st.Streams); err != nil {
		return err
	}
	e.clock.tick = st.Tick
	// Rebuild the wheel from scratch around the restored due ticks: the
	// construction-time scheduling (every cadenced entry pushed at its
	// registration-derived first due tick) is stale once the clock moves.
	e.wheel = dueWheel{}
	for i, es := range st.Entries {
		ent := e.entries[i]
		ent.doneThrough = es.DoneThrough
		ent.nextDue = es.NextDue
		ent.steps = es.Steps
		ent.regTick = es.RegTick
		ent.woken = es.Woken
		ent.suspended = es.Suspended
		if fc, ok := ent.c.(*fixedCadence); ok {
			fc.untilDue = es.UntilDue
		}
		if ent.cad != nil {
			e.wheel.push(ent, st.Tick)
		}
	}
	// Drop the timeline events the original run had fired: fire at tick k
	// covers instants <= Now(k), so after T completed ticks everything at
	// or before the tick T-1 instant is spent. Events landing exactly on
	// the tick-T instant have NOT fired yet and stay pending.
	if st.Tick > 0 {
		e.timeline.dropThrough(e.clock.start.Add(time.Duration(st.Tick-1) * e.clock.step))
	}
	return nil
}
