package sim

// Cadenced is an optional extension of Component for participants whose
// observable work happens only on a sparse, self-predictable set of ticks
// (sensor sampling loops, periodic broadcasters). Engine.Register places a
// Cadenced component on the due-wheel: instead of a Step call on every
// tick it receives one StepN call on each due tick covering every tick
// since the previous one. Always-on physics (thermal zones, hydraulic
// loops, PID controllers that integrate over dt) should implement only
// Component and stay on the every-tick path.
//
// The due schedule must be a pure function of the component's own state:
// nothing outside the component may change when it next needs to run. A
// component whose cadence can be altered by other components between its
// due ticks must be registered as an ordinary every-tick Component.
type Cadenced interface {
	Component

	// StepN advances the component by n consecutive ticks ending at the
	// engine's current tick, exactly equivalent to n successive Step
	// calls. The engine guarantees that no tick in the range except
	// possibly the last is due, so implementations replay their per-tick
	// bookkeeping (accumulators, idle energy draw) in a tight loop and
	// perform observable work only when their own state says it is time.
	// During end-of-run catch-up no tick in the range is due;
	// implementations must not assume the final tick fires.
	StepN(env *Env, n uint64)

	// NextDue returns how many ticks after the current one the component
	// next performs observable work (always >= 1), given the fixed step
	// duration in seconds. Implementations replay the exact float
	// arithmetic of their accumulators so the predicted tick is
	// bit-identical to the tick on which per-tick polling would have
	// fired.
	NextDue(dtS float64) uint64
}

// entry is the engine-side scheduling record for one registered component.
type entry struct {
	c   Component
	cad Cadenced // non-nil for due-wheel entries
	idx int      // registration index: the data-flow step order

	// nextDue is the absolute tick of the next due step and doneThrough
	// the number of ticks already applied to the component (ticks
	// [0, doneThrough) are covered). Wheel entries only.
	nextDue     uint64
	doneThrough uint64

	onDemand bool // stepped only on ticks it was woken for
	woken    bool

	// suspended entries are skipped by every delivery path (always list,
	// wheel polls, catch-up) until their Registration resumes them.
	suspended bool

	// takenOver entries were removed from the every-tick list via
	// Registration.TakeOver; an external driver steps them directly.
	takenOver bool

	steps   uint64 // due-tick activations
	regTick uint64 // clock tick at registration, for skip accounting
}

// wheelSlots is the hashed wheel's horizon in ticks. Power of two, so the
// slot index is a mask. Cadences shorter than the horizon (the dense case
// at coarse steps — sampling every 2–5 ticks) live in the slot ring and
// schedule with O(1) appends; longer cadences wait in a far-horizon
// min-heap that costs one comparison per tick until they approach.
const wheelSlots = 64

// dueWheel is a hashed tick wheel: slot tick&(wheelSlots-1) holds exactly
// the entries due on that tick (entries are only ringed when their due
// tick is less than a full horizon away, so a slot can never hold a
// not-yet-due entry when the engine visits it).
type dueWheel struct {
	slots [wheelSlots][]*entry
	far   farHeap
	spare []*entry // rotates with slot backings so takeDue never allocates
	count int      // total entries in slots + far
}

// push schedules ent (whose nextDue is already set) relative to the
// current tick.
func (w *dueWheel) push(ent *entry, tick uint64) {
	w.count++
	if ent.nextDue-tick < wheelSlots {
		w.ring(ent)
		return
	}
	w.far.push(ent)
}

// ring appends ent to its slot. Slot backings rotate through takeDue's
// spare buffer, so with plain append-doubling each of the ~wheelSlots+1
// circulating backings would re-allocate several times on its way up from
// empty — tens of thousands of steady-state allocations across a fleet of
// engines. A slot can never hold more than the wheel's total entry count,
// so on growth the backing jumps straight to that capacity: at most one
// allocation per circulating backing for the engine's life.
func (w *dueWheel) ring(ent *entry) {
	s := ent.nextDue & (wheelSlots - 1)
	slot := w.slots[s]
	if len(slot) == cap(slot) {
		grown := make([]*entry, len(slot), w.count)
		copy(grown, slot)
		slot = grown
	}
	w.slots[s] = append(slot, ent)
}

// takeDue removes and returns the entries due on tick, sorted by
// registration index. The returned slice is only valid until the next
// takeDue call.
func (w *dueWheel) takeDue(tick uint64) []*entry {
	// Ring far entries that entered the horizon. One comparison per tick
	// while the earliest far entry is still distant.
	for len(w.far) > 0 && w.far[0].nextDue-tick < wheelSlots {
		w.ring(w.far.pop())
	}
	s := tick & (wheelSlots - 1)
	due := w.slots[s]
	if len(due) == 0 {
		return nil
	}
	// Hand the slot a fresh backing (the processed buffer from last time)
	// before stepping: an entry rescheduled exactly one horizon ahead
	// lands back in this same slot and must not join the batch in flight.
	w.slots[s] = w.spare[:0]
	w.spare = due
	w.count -= len(due)
	// Entries arrive grouped by the tick that scheduled them, so the
	// batch is a handful of idx-sorted runs; insertion sort restores the
	// global registration order cheaply.
	for i := 1; i < len(due); i++ {
		ent := due[i]
		j := i - 1
		for j >= 0 && due[j].idx > ent.idx {
			due[j+1] = due[j]
			j--
		}
		due[j+1] = ent
	}
	return due
}

// farHeap is a binary min-heap of entries ordered by due tick (ties by
// registration index). Hand-rolled rather than container/heap so the
// occasional horizon crossing stays free of interface conversions.
type farHeap []*entry

func (e *entry) before(o *entry) bool {
	if e.nextDue != o.nextDue {
		return e.nextDue < o.nextDue
	}
	return e.idx < o.idx
}

func (w *farHeap) push(ent *entry) {
	h := append(*w, ent)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].before(h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	*w = h
}

func (w *farHeap) pop() *entry {
	h := *w
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	*w = h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r].before(h[l]) {
			m = r
		}
		if !h[m].before(h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// fixedCadence adapts a plain Component registered with WithCadence to
// the wheel: it is due on the registration tick and every periodTicks
// thereafter, and skipped ticks are genuinely skipped (the wrapped
// component sees no catch-up calls for them).
type fixedCadence struct {
	c           Component
	periodTicks uint64
	untilDue    uint64 // ticks until the next due step
}

var _ Cadenced = (*fixedCadence)(nil)

func (f *fixedCadence) Name() string { return f.c.Name() }

func (f *fixedCadence) Step(env *Env) { f.StepN(env, 1) }

func (f *fixedCadence) StepN(env *Env, n uint64) {
	if n > f.untilDue {
		n = f.untilDue // defensive: the engine never overshoots the due tick
	}
	f.untilDue -= n
	if f.untilDue == 0 {
		f.c.Step(env)
		f.untilDue = f.periodTicks
	}
}

func (f *fixedCadence) NextDue(float64) uint64 { return f.untilDue }

// ComponentStats describes one component's scheduling over the engine's
// lifetime.
type ComponentStats struct {
	// Name is the component name.
	Name string
	// Kind is "every-tick", "cadenced", or "on-demand".
	Kind string
	// Steps counts the ticks on which the scheduler activated the
	// component (a Step call, or a StepN call on a due tick; end-of-run
	// catch-up is not an activation).
	Steps uint64
	// Skipped counts the processed ticks on which the component was not
	// activated.
	Skipped uint64
}

// StepStats reports per-component step/skip counters in registration
// order — the observable evidence that cadenced and on-demand components
// run only on the ticks that need them.
func (e *Engine) StepStats() []ComponentStats {
	out := make([]ComponentStats, len(e.entries))
	now := e.clock.Tick()
	for i, ent := range e.entries {
		kind := "every-tick"
		switch {
		case ent.cad != nil:
			kind = "cadenced"
		case ent.onDemand:
			kind = "on-demand"
		case ent.takenOver:
			// Steps freeze at the takeover count; the external driver's
			// calls are not visible to the scheduler.
			kind = "taken-over"
		}
		ticks := now - ent.regTick
		out[i] = ComponentStats{
			Name:    ent.c.Name(),
			Kind:    kind,
			Steps:   ent.steps,
			Skipped: ticks - ent.steps,
		}
	}
	return out
}
