package sim

import (
	"container/heap"
	"time"
)

// Event is a one-shot action scheduled on the timeline.
type Event struct {
	At   time.Time
	Name string
	Fn   func(env *Env)

	seq uint64 // insertion order tiebreak for deterministic firing
}

// Timeline schedules one-shot events at absolute simulated instants. Events
// fire at the first tick whose time is >= the scheduled instant, in
// (time, insertion) order.
type Timeline struct {
	h   eventHeap
	seq uint64
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{}
}

// At schedules fn to run at instant t.
func (tl *Timeline) At(t time.Time, name string, fn func(env *Env)) {
	tl.seq++
	heap.Push(&tl.h, &Event{At: t, Name: name, Fn: fn, seq: tl.seq})
}

// Len reports the number of pending events.
func (tl *Timeline) Len() int { return tl.h.Len() }

// fire runs all events due at or before env.Now(). The current time is
// only materialised when events are pending, keeping the empty-timeline
// per-tick cost to a length check.
func (tl *Timeline) fire(env *Env) {
	if tl.h.Len() == 0 {
		return
	}
	now := env.Now()
	for tl.h.Len() > 0 && !tl.h[0].At.After(now) {
		ev, ok := heap.Pop(&tl.h).(*Event)
		if !ok {
			return
		}
		ev.Fn(env)
	}
}

// dropThrough discards, without firing, every pending event scheduled at
// or before t. Restore-from-snapshot uses it: a rebuilt system re-schedules
// its full timeline, then drops the prefix the original run had already
// fired (their effects are part of the captured state).
func (tl *Timeline) dropThrough(t time.Time) {
	for tl.h.Len() > 0 && !tl.h[0].At.After(t) {
		heap.Pop(&tl.h)
	}
}

type eventHeap []*Event

var _ heap.Interface = (*eventHeap)(nil)

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At.Equal(h[j].At) {
		return h[i].seq < h[j].seq
	}
	return h[i].At.Before(h[j].At)
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
