package sim

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Env is the per-tick view of the simulation handed to components. It is
// valid only for the duration of a single Step call.
type Env struct {
	clock *Clock
	rng   *RNG
	dtS   float64
}

// NewEnv returns an Env over the given clock and RNG. The engine builds
// its own Env for normal runs; this constructor exists so tests and
// benchmarks can drive a single component's Step directly (e.g. the
// AllocsPerRun pins on the tick kernel).
func NewEnv(clock *Clock, rng *RNG) *Env {
	return &Env{clock: clock, rng: rng, dtS: clock.Step().Seconds()}
}

// Now returns the simulated time at the start of the current step.
func (e *Env) Now() time.Time { return e.clock.Now() }

// Dt returns the step duration as seconds. Physical models integrate with
// this value. The Duration-to-seconds conversion is done once at Env
// construction, not per call — the step never changes over a clock's life.
func (e *Env) Dt() float64 { return e.dtS }

// Step returns the step duration.
func (e *Env) Step() time.Duration { return e.clock.Step() }

// Tick returns the current tick index.
func (e *Env) Tick() uint64 { return e.clock.Tick() }

// Elapsed returns the simulated time since the engine started.
func (e *Env) Elapsed() time.Duration { return e.clock.Elapsed() }

// RNG returns the engine's deterministic random source.
func (e *Env) RNG() *RNG { return e.rng }

// Component is a simulation participant. Step is called once per tick in
// registration order. Components that need a coarser cadence either keep
// their own accumulators, or implement Cadenced and let the engine's
// due-wheel skip the ticks between their due points entirely.
type Component interface {
	// Name identifies the component in error messages and traces.
	Name() string
	// Step advances the component by one tick.
	Step(env *Env)
}

// ComponentFunc adapts a function to the Component interface.
type ComponentFunc struct {
	ID string
	Fn func(env *Env)
}

var _ Component = ComponentFunc{}

// Name implements Component.
func (c ComponentFunc) Name() string { return c.ID }

// Step implements Component.
func (c ComponentFunc) Step(env *Env) { c.Fn(env) }

// ErrStopped is returned by Run when a stop condition halted the engine
// before the requested duration elapsed.
var ErrStopped = errors.New("sim: stopped by condition")

// Engine advances a set of components through simulated time. Components
// are stepped in the order they were added; the order is the data-flow
// order of the physical system (environment → plant → sensors → network →
// controllers → actuators).
//
// Scheduling is cadence-aware: every-tick components (the default) are
// stepped on every tick, components implementing Cadenced sit on a
// due-wheel and are stepped only on the ticks their own accumulators say
// are due, and on-demand components run only on ticks they were woken
// for. Within any single tick the active components still step in
// registration order, so the schedule is observationally identical to
// stepping everything every tick — skipped ticks are exactly the ticks on
// which the component would have done nothing.
type Engine struct {
	clock    *Clock
	rng      *RNG
	timeline *Timeline
	stopFn   func(env *Env) bool
	dtS      float64

	entries []*entry // every registered component, registration order
	always  []*entry // every-tick and on-demand entries, registration order
	wheel   dueWheel // cadenced entries, hashed by due tick

	env *Env // lazily built, reused by every run entry point
}

// NewEngine returns an engine over the given clock and seed.
func NewEngine(clock *Clock, seed uint64) *Engine {
	return &Engine{
		clock:    clock,
		rng:      NewRNG(seed),
		timeline: NewTimeline(),
		dtS:      clock.Step().Seconds(),
	}
}

// Clock returns the engine clock.
func (e *Engine) Clock() *Clock { return e.clock }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Timeline returns the engine's event timeline for scheduling one-shot
// events (door openings, setpoint changes, ...).
func (e *Engine) Timeline() *Timeline { return e.timeline }

// SetStopCondition installs a predicate checked after every tick; when it
// returns true Run stops early with ErrStopped. The predicate sees
// every-tick components fully stepped; cadenced components are caught up
// to their last due tick only (their internal state flushes when the run
// returns). A stop condition that needs exact per-tick state of a
// cadenced component should register that component with Register
// (every-tick, the default) instead.
func (e *Engine) SetStopCondition(fn func(env *Env) bool) {
	e.stopFn = fn
}

// ctxCheckSimTime bounds how much simulated time may elapse between
// context checks, so cancellation latency is bounded in simulated time
// regardless of the step size. maxCtxCheckTicks additionally bounds the
// tick count for coarse steps (a one-minute step would otherwise check
// every tick anyway; a sub-millisecond step would go tens of thousands of
// ticks between checks without the cap keeping per-check work bounded).
const (
	ctxCheckSimTime  = time.Minute
	maxCtxCheckTicks = 4096
)

// ctxCheckEvery returns how many ticks may pass between context checks:
// at most one simulated minute and at most maxCtxCheckTicks, whichever is
// fewer ticks, and never less than one.
func (e *Engine) ctxCheckEvery() uint64 {
	every := uint64(ctxCheckSimTime / e.clock.Step())
	if every < 1 {
		every = 1
	}
	if every > maxCtxCheckTicks {
		every = maxCtxCheckTicks
	}
	return every
}

// RunFor advances the simulation by d of simulated time, rounded DOWN to
// whole ticks: a duration that is not a whole multiple of the step
// silently truncates, so 90 s at a 60 s step runs exactly one tick and
// d < step runs none. Callers that need the remainder covered must round
// d up to a multiple of Clock.Step themselves. The context is checked at
// least once per simulated minute (and at least every 4096 ticks, for
// steps coarser than ~15 ms) so that long runs remain cancellable without
// a per-tick overhead.
func (e *Engine) RunFor(ctx context.Context, d time.Duration) error {
	ticks := uint64(d / e.clock.Step())
	return e.RunTicks(ctx, ticks)
}

// RunTicks advances the simulation by n ticks. On every return path —
// completion, stop condition, cancellation — cadenced components are
// caught up through the last executed tick, so post-run observers read
// exactly the state per-tick stepping would have produced.
//
//bzlint:hotpath
func (e *Engine) RunTicks(ctx context.Context, n uint64) error {
	env := e.sharedEnv()
	ctxCheckEvery := e.ctxCheckEvery()
	for i := uint64(0); i < n; i++ {
		if i%ctxCheckEvery == 0 {
			select {
			case <-ctx.Done():
				e.catchUp(env)
				//bzlint:allow hotpath cold cancellation exit, runs at most once per run
				return fmt.Errorf("sim: run: %w", ctx.Err())
			default:
			}
		}
		e.timeline.fire(env)
		e.stepDue(env)
		e.clock.Advance()
		if e.stopFn != nil && e.stopFn(env) {
			e.catchUp(env)
			return ErrStopped
		}
	}
	e.catchUp(env)
	return nil
}

// sharedEnv returns the engine's reusable per-tick Env. An Env is an
// immutable view (clock pointer, RNG pointer, fixed dt), so one instance
// serves every run for the engine's life — fleets stepping thousands of
// engines tick-by-tick would otherwise pay one allocation per engine per
// epoch.
func (e *Engine) sharedEnv() *Env {
	if e.env == nil {
		e.env = NewEnv(e.clock, e.rng)
	}
	return e.env
}

// StepTick advances the simulation by exactly one tick — the fine-grained
// form of RunTicks for callers that interleave engine ticks with work the
// engine does not schedule (a fleet shard stepping every building's
// taken-over physics in one fused pass between ticks). It fires due
// timeline events, steps due components, and advances the clock; the
// caller owns context checks and must call FlushCadenced before observing
// cadenced component state.
//
// The return value reports whether the engine's stop condition fired this
// tick. The condition is evaluated inside the tick, so components taken
// over and stepped externally after StepTick returns are seen pre-step;
// engines driven through StepTick should either have no stop condition or
// one that does not read taken-over state.
//
//bzlint:hotpath
func (e *Engine) StepTick() bool {
	env := e.sharedEnv()
	e.timeline.fire(env)
	e.stepDue(env)
	e.clock.Advance()
	return e.stopFn != nil && e.stopFn(env)
}

// FlushCadenced catches every cadenced component up through the current
// tick — the end-of-run flush RunTicks performs on its own return paths.
// Callers driving the engine via StepTick must invoke it before observers
// read cadenced component state (and at the latest when the run ends);
// splitting a run's flushes across multiple calls is bit-identical to one
// final flush by the StepN contract.
func (e *Engine) FlushCadenced() { e.catchUp(e.sharedEnv()) }

// stepDue advances every component scheduled for the current tick: the
// wheel entries due now, merged with the every-tick list in registration
// order.
func (e *Engine) stepDue(env *Env) {
	tick := e.clock.Tick()
	var due []*entry
	if e.wheel.count != 0 {
		due = e.wheel.takeDue(tick)
	}
	always := e.always
	ai, di := 0, 0
	for ai < len(always) && di < len(due) {
		if always[ai].idx < due[di].idx {
			e.stepAlways(always[ai], env)
			ai++
		} else {
			e.stepWheel(due[di], env, tick)
			di++
		}
	}
	for ; ai < len(always); ai++ {
		e.stepAlways(always[ai], env)
	}
	for ; di < len(due); di++ {
		e.stepWheel(due[di], env, tick)
	}
}

func (e *Engine) stepAlways(ent *entry, env *Env) {
	if ent.suspended {
		// A wake received while suspended stays latched and fires on the
		// first processed tick after Resume.
		return
	}
	if ent.onDemand {
		if !ent.woken {
			return
		}
		ent.woken = false
	}
	ent.c.Step(env)
	ent.steps++
}

// stepWheel catches a due entry up through the current tick (one StepN
// call covering every tick since its last activation), then reschedules
// it at its next due tick. Suspended entries keep their slot but the
// poll is a no-op: the covered ticks are marked done without being
// delivered, so the outage is never replayed.
func (e *Engine) stepWheel(ent *entry, env *Env, tick uint64) {
	if ent.suspended {
		ent.doneThrough = tick + 1
		ent.nextDue = tick + ent.cad.NextDue(e.dtS)
		e.wheel.push(ent, tick)
		return
	}
	ent.cad.StepN(env, tick+1-ent.doneThrough)
	ent.doneThrough = tick + 1
	ent.steps++
	ent.nextDue = tick + ent.cad.NextDue(e.dtS)
	e.wheel.push(ent, tick)
}

// catchUp flushes every wheel entry's per-tick internal state (idle
// battery draw, accumulators) through the last executed tick, so post-run
// observers (battery gauges, example snapshots) read exactly the state
// per-tick polling would have produced. Nothing fires during catch-up:
// every flushed tick is strictly before the entry's next due tick.
func (e *Engine) catchUp(env *Env) {
	now := e.clock.Tick()
	for _, ent := range e.entries {
		if ent.cad == nil || ent.suspended || ent.doneThrough >= now {
			continue
		}
		ent.cad.StepN(env, now-ent.doneThrough)
		ent.doneThrough = now
	}
}
