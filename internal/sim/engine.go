package sim

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Env is the per-tick view of the simulation handed to components. It is
// valid only for the duration of a single Step call.
type Env struct {
	clock *Clock
	rng   *RNG
}

// NewEnv returns an Env over the given clock and RNG. The engine builds
// its own Env for normal runs; this constructor exists so tests and
// benchmarks can drive a single component's Step directly (e.g. the
// AllocsPerRun pins on the tick kernel).
func NewEnv(clock *Clock, rng *RNG) *Env {
	return &Env{clock: clock, rng: rng}
}

// Now returns the simulated time at the start of the current step.
func (e *Env) Now() time.Time { return e.clock.Now() }

// Dt returns the step duration as seconds. Physical models integrate with
// this value.
func (e *Env) Dt() float64 { return e.clock.Step().Seconds() }

// Step returns the step duration.
func (e *Env) Step() time.Duration { return e.clock.Step() }

// Tick returns the current tick index.
func (e *Env) Tick() uint64 { return e.clock.Tick() }

// Elapsed returns the simulated time since the engine started.
func (e *Env) Elapsed() time.Duration { return e.clock.Elapsed() }

// RNG returns the engine's deterministic random source.
func (e *Env) RNG() *RNG { return e.rng }

// Component is a simulation participant. Step is called once per tick in
// registration order. Components that need a different cadence keep their
// own accumulators.
type Component interface {
	// Name identifies the component in error messages and traces.
	Name() string
	// Step advances the component by one tick.
	Step(env *Env)
}

// ComponentFunc adapts a function to the Component interface.
type ComponentFunc struct {
	ID string
	Fn func(env *Env)
}

var _ Component = ComponentFunc{}

// Name implements Component.
func (c ComponentFunc) Name() string { return c.ID }

// Step implements Component.
func (c ComponentFunc) Step(env *Env) { c.Fn(env) }

// ErrStopped is returned by Run when a stop condition halted the engine
// before the requested duration elapsed.
var ErrStopped = errors.New("sim: stopped by condition")

// Engine advances a set of components through simulated time. Components
// are stepped in the order they were added; the order is the data-flow
// order of the physical system (environment → plant → sensors → network →
// controllers → actuators).
type Engine struct {
	clock      *Clock
	rng        *RNG
	components []Component
	timeline   *Timeline
	stopFn     func(env *Env) bool
}

// NewEngine returns an engine over the given clock and seed.
func NewEngine(clock *Clock, seed uint64) *Engine {
	return &Engine{
		clock:    clock,
		rng:      NewRNG(seed),
		timeline: NewTimeline(),
	}
}

// Clock returns the engine clock.
func (e *Engine) Clock() *Clock { return e.clock }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Timeline returns the engine's event timeline for scheduling one-shot
// events (door openings, setpoint changes, ...).
func (e *Engine) Timeline() *Timeline { return e.timeline }

// Add registers components in step order.
func (e *Engine) Add(cs ...Component) {
	e.components = append(e.components, cs...)
}

// SetStopCondition installs a predicate checked after every tick; when it
// returns true Run stops early with ErrStopped.
func (e *Engine) SetStopCondition(fn func(env *Env) bool) {
	e.stopFn = fn
}

// ctxCheckSimTime bounds how much simulated time may elapse between
// context checks, so cancellation latency is bounded in simulated time
// regardless of the step size. maxCtxCheckTicks additionally bounds the
// tick count for coarse steps (a one-minute step would otherwise check
// every tick anyway; a sub-millisecond step would go tens of thousands of
// ticks between checks without the cap keeping per-check work bounded).
const (
	ctxCheckSimTime  = time.Minute
	maxCtxCheckTicks = 4096
)

// ctxCheckEvery returns how many ticks may pass between context checks:
// at most one simulated minute and at most maxCtxCheckTicks, whichever is
// fewer ticks, and never less than one.
func (e *Engine) ctxCheckEvery() uint64 {
	every := uint64(ctxCheckSimTime / e.clock.Step())
	if every < 1 {
		every = 1
	}
	if every > maxCtxCheckTicks {
		every = maxCtxCheckTicks
	}
	return every
}

// RunFor advances the simulation by d of simulated time, rounded DOWN to
// whole ticks: a duration that is not a whole multiple of the step
// silently truncates, so 90 s at a 60 s step runs exactly one tick and
// d < step runs none. Callers that need the remainder covered must round
// d up to a multiple of Clock.Step themselves. The context is checked at
// least once per simulated minute (and at least every 4096 ticks, for
// steps coarser than ~15 ms) so that long runs remain cancellable without
// a per-tick overhead.
func (e *Engine) RunFor(ctx context.Context, d time.Duration) error {
	ticks := uint64(d / e.clock.Step())
	return e.RunTicks(ctx, ticks)
}

// RunTicks advances the simulation by n ticks.
func (e *Engine) RunTicks(ctx context.Context, n uint64) error {
	env := &Env{clock: e.clock, rng: e.rng}
	ctxCheckEvery := e.ctxCheckEvery()
	for i := uint64(0); i < n; i++ {
		if i%ctxCheckEvery == 0 {
			select {
			case <-ctx.Done():
				return fmt.Errorf("sim: run: %w", ctx.Err())
			default:
			}
		}
		e.timeline.fire(env)
		for _, c := range e.components {
			c.Step(env)
		}
		e.clock.Advance()
		if e.stopFn != nil && e.stopFn(env) {
			return ErrStopped
		}
	}
	return nil
}
