package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
)

// RNG is a deterministic random source handed to components. Each named
// stream is derived from the engine seed so that adding a new consumer of
// randomness does not perturb the draws seen by existing consumers — a
// property that keeps regression baselines stable as the simulator grows.
type RNG struct {
	seed uint64

	// streams records every generator handed out, in creation order, so a
	// snapshot can capture and restore the exact PCG position of each one.
	// Construction is deterministic, so a rebuilt system creates the same
	// streams in the same order — the pairing the restore path relies on.
	streams []rngStream
}

// rngStream pairs a handed-out generator's name with the PCG source
// backing it (rand.Rand draws straight from the source, so the source
// state is the whole generator state).
type rngStream struct {
	name string
	pcg  *rand.PCG
}

// NewRNG returns a root RNG for the given seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{seed: seed}
}

// Stream returns an independent *rand.Rand derived from the root seed and
// the stream name. Calling Stream twice with the same name yields two
// generators that produce identical sequences.
func (r *RNG) Stream(name string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	s1 := r.seed ^ h.Sum64()
	// A second, differently salted hash decorrelates the two PCG words.
	h2 := fnv.New64a()
	_, _ = h2.Write([]byte(name))
	_, _ = h2.Write([]byte{0x9e, 0x37, 0x79, 0xb9})
	s2 := (r.seed * 0x9e3779b97f4a7c15) ^ h2.Sum64()
	pcg := rand.NewPCG(s1, s2)
	r.streams = append(r.streams, rngStream{name: name, pcg: pcg})
	return rand.New(pcg)
}

// exportStreams captures every handed-out generator's PCG state in
// creation order.
func (r *RNG) exportStreams() ([]StreamState, error) {
	out := make([]StreamState, len(r.streams))
	for i, s := range r.streams {
		b, err := s.pcg.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("sim: rng stream %q: %w", s.name, err)
		}
		out[i] = StreamState{Name: s.name, PCG: b}
	}
	return out, nil
}

// restoreStreams overwrites each handed-out generator's PCG state with the
// captured one. The receiver must have created the same streams in the
// same order as the RNG the states were exported from.
func (r *RNG) restoreStreams(states []StreamState) error {
	if len(states) != len(r.streams) {
		return fmt.Errorf("sim: rng stream count mismatch: have %d, snapshot has %d",
			len(r.streams), len(states))
	}
	for i, st := range states {
		s := r.streams[i]
		if s.name != st.Name {
			return fmt.Errorf("sim: rng stream %d is %q, snapshot has %q", i, s.name, st.Name)
		}
		if err := s.pcg.UnmarshalBinary(st.PCG); err != nil {
			return fmt.Errorf("sim: rng stream %q: %w", s.name, err)
		}
	}
	return nil
}

// Seed returns the root seed.
func (r *RNG) Seed() uint64 { return r.seed }
