package sim

import (
	"hash/fnv"
	"math/rand/v2"
)

// RNG is a deterministic random source handed to components. Each named
// stream is derived from the engine seed so that adding a new consumer of
// randomness does not perturb the draws seen by existing consumers — a
// property that keeps regression baselines stable as the simulator grows.
type RNG struct {
	seed uint64
}

// NewRNG returns a root RNG for the given seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{seed: seed}
}

// Stream returns an independent *rand.Rand derived from the root seed and
// the stream name. Calling Stream twice with the same name yields two
// generators that produce identical sequences.
func (r *RNG) Stream(name string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	s1 := r.seed ^ h.Sum64()
	// A second, differently salted hash decorrelates the two PCG words.
	h2 := fnv.New64a()
	_, _ = h2.Write([]byte(name))
	_, _ = h2.Write([]byte{0x9e, 0x37, 0x79, 0xb9})
	s2 := (r.seed * 0x9e3779b97f4a7c15) ^ h2.Sum64()
	return rand.New(rand.NewPCG(s1, s2))
}

// Seed returns the root seed.
func (r *RNG) Seed() uint64 { return r.seed }
