// Package sim provides the discrete-time simulation kernel used by every
// BubbleZERO subsystem: a fixed-step clock, a component scheduler, a
// deterministic random-number plumbing scheme, and an event timeline.
//
// The kernel is deliberately simple — a fixed time step advanced
// synchronously across all registered components — because the physical
// processes being simulated (room thermal dynamics, water loops) are stiff
// on the order of minutes while the controllers and the wireless network
// operate on the order of seconds. A one-second base step resolves both.
package sim

import (
	"fmt"
	"time"
)

// Clock tracks simulated time. It advances in fixed steps and is shared by
// every component of an Engine. The zero value is not usable; construct one
// with NewClock.
type Clock struct {
	start time.Time
	step  time.Duration
	tick  uint64
}

// NewClock returns a clock starting at start that advances by step per tick.
// step must be positive.
func NewClock(start time.Time, step time.Duration) (*Clock, error) {
	if step <= 0 {
		return nil, fmt.Errorf("sim: clock step must be positive, got %v", step)
	}
	return &Clock{start: start, step: step}, nil
}

// MustClock is NewClock that panics on error. Intended for tests and
// program initialisation where the step is a compile-time constant.
func MustClock(start time.Time, step time.Duration) *Clock {
	c, err := NewClock(start, step)
	if err != nil {
		panic(err)
	}
	return c
}

// Now returns the current simulated instant.
func (c *Clock) Now() time.Time {
	return c.start.Add(time.Duration(c.tick) * c.step)
}

// Start returns the simulated instant the clock was created at.
func (c *Clock) Start() time.Time { return c.start }

// Step returns the fixed tick duration.
func (c *Clock) Step() time.Duration { return c.step }

// Tick returns the number of steps taken so far.
func (c *Clock) Tick() uint64 { return c.tick }

// Elapsed returns the simulated time since the clock started.
func (c *Clock) Elapsed() time.Duration {
	return time.Duration(c.tick) * c.step
}

// Advance moves the clock forward one step.
func (c *Clock) Advance() {
	c.tick++
}
