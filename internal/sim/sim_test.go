package sim

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

var testStart = time.Date(2014, 3, 10, 13, 0, 0, 0, time.UTC)

func TestNewClockRejectsNonPositiveStep(t *testing.T) {
	for _, step := range []time.Duration{0, -time.Second} {
		if _, err := NewClock(testStart, step); err == nil {
			t.Errorf("NewClock(step=%v) expected error", step)
		}
	}
}

func TestClockAdvance(t *testing.T) {
	c := MustClock(testStart, time.Second)
	if got := c.Now(); !got.Equal(testStart) {
		t.Fatalf("Now() = %v, want %v", got, testStart)
	}
	for i := 0; i < 90; i++ {
		c.Advance()
	}
	want := testStart.Add(90 * time.Second)
	if got := c.Now(); !got.Equal(want) {
		t.Errorf("after 90 steps Now() = %v, want %v", got, want)
	}
	if got := c.Elapsed(); got != 90*time.Second {
		t.Errorf("Elapsed() = %v, want 90s", got)
	}
	if got := c.Tick(); got != 90 {
		t.Errorf("Tick() = %d, want 90", got)
	}
}

func TestClockSubSecondStep(t *testing.T) {
	c := MustClock(testStart, 250*time.Millisecond)
	for i := 0; i < 7; i++ {
		c.Advance()
	}
	want := testStart.Add(1750 * time.Millisecond)
	if got := c.Now(); !got.Equal(want) {
		t.Errorf("Now() = %v, want %v", got, want)
	}
}

func TestRNGStreamsAreDeterministic(t *testing.T) {
	a := NewRNG(42).Stream("thermal")
	b := NewRNG(42).Stream("thermal")
	for i := 0; i < 100; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("draw %d differs: %v vs %v", i, av, bv)
		}
	}
}

func TestRNGStreamsAreIndependentByName(t *testing.T) {
	root := NewRNG(42)
	a := root.Stream("thermal")
	b := root.Stream("network")
	same := 0
	const n = 64
	for i := 0; i < n; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == n {
		t.Fatal("streams with different names produced identical sequences")
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1).Stream("s")
	b := NewRNG(2).Stream("s")
	same := 0
	const n = 64
	for i := 0; i < n; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestEngineStepsComponentsInOrder(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	var order []string
	mk := func(name string) Component {
		return ComponentFunc{ID: name, Fn: func(*Env) { order = append(order, name) }}
	}
	e.Register(mk("plant"))
	e.Register(mk("sensors"))
	e.Register(mk("controller"))
	if err := e.RunTicks(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	want := []string{"plant", "sensors", "controller", "plant", "sensors", "controller"}
	if len(order) != len(want) {
		t.Fatalf("got %d calls, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("call %d = %s, want %s", i, order[i], want[i])
		}
	}
}

func TestEngineRunForWholeTicks(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	n := 0
	e.Register(ComponentFunc{ID: "count", Fn: func(*Env) { n++ }})
	if err := e.RunFor(context.Background(), 90*time.Second); err != nil {
		t.Fatal(err)
	}
	if n != 90 {
		t.Errorf("component stepped %d times, want 90", n)
	}
}

func TestEngineContextCancellation(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	e.Register(ComponentFunc{ID: "noop", Fn: func(*Env) {}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := e.RunTicks(ctx, 10)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Errorf("RunTicks with cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestEngineStopCondition(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	n := 0
	e.Register(ComponentFunc{ID: "count", Fn: func(*Env) { n++ }})
	e.SetStopCondition(func(env *Env) bool { return n >= 5 })
	err := e.RunTicks(context.Background(), 100)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if n != 5 {
		t.Errorf("stopped after %d ticks, want 5", n)
	}
}

func TestEnvExposesClock(t *testing.T) {
	e := NewEngine(MustClock(testStart, 2*time.Second), 1)
	var dts []float64
	var ticks []uint64
	e.Register(ComponentFunc{ID: "probe", Fn: func(env *Env) {
		dts = append(dts, env.Dt())
		ticks = append(ticks, env.Tick())
	}})
	if err := e.RunTicks(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	for i, dt := range dts {
		if dt != 2.0 {
			t.Errorf("Dt at tick %d = %v, want 2.0", i, dt)
		}
	}
	for i, tk := range ticks {
		if tk != uint64(i) {
			t.Errorf("Tick %d reported as %d", i, tk)
		}
	}
}

func TestTimelineFiresInOrder(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	e.Register(ComponentFunc{ID: "noop", Fn: func(*Env) {}})
	var fired []string
	e.Timeline().At(testStart.Add(5*time.Second), "b", func(*Env) { fired = append(fired, "b") })
	e.Timeline().At(testStart.Add(2*time.Second), "a", func(*Env) { fired = append(fired, "a") })
	e.Timeline().At(testStart.Add(5*time.Second), "c", func(*Env) { fired = append(fired, "c") })
	if err := e.RunTicks(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("fired[%d] = %s, want %s", i, fired[i], want[i])
		}
	}
	if e.Timeline().Len() != 0 {
		t.Errorf("timeline still has %d events", e.Timeline().Len())
	}
}

func TestTimelineEventAtStartFiresOnFirstTick(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	fired := false
	e.Timeline().At(testStart, "boot", func(*Env) { fired = true })
	if err := e.RunTicks(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("event scheduled at clock start did not fire on tick 0")
	}
}

func TestTimelinePastEventFiresImmediately(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	fired := false
	e.Timeline().At(testStart.Add(-time.Hour), "past", func(*Env) { fired = true })
	if err := e.RunTicks(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("past-dated event did not fire")
	}
}

// Property: clock time after n steps equals start + n*step for any small n
// and step.
func TestClockAdvanceProperty(t *testing.T) {
	f := func(nRaw uint16, stepMsRaw uint16) bool {
		n := uint64(nRaw % 1000)
		stepMs := int64(stepMsRaw%5000) + 1
		c := MustClock(testStart, time.Duration(stepMs)*time.Millisecond)
		for i := uint64(0); i < n; i++ {
			c.Advance()
		}
		want := testStart.Add(time.Duration(int64(n)*stepMs) * time.Millisecond)
		return c.Now().Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: timeline fires every scheduled event exactly once regardless of
// scheduling order, as long as the run covers the horizon.
func TestTimelineAllEventsFireProperty(t *testing.T) {
	f := func(offsets []uint8) bool {
		if len(offsets) > 50 {
			offsets = offsets[:50]
		}
		e := NewEngine(MustClock(testStart, time.Second), 1)
		count := 0
		for _, off := range offsets {
			at := testStart.Add(time.Duration(off%100) * time.Second)
			e.Timeline().At(at, "ev", func(*Env) { count++ })
		}
		if err := e.RunTicks(context.Background(), 101); err != nil {
			return false
		}
		return count == len(offsets)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCtxCheckEveryStepAware(t *testing.T) {
	cases := []struct {
		step time.Duration
		want uint64
	}{
		{time.Second, 60},             // one simulated minute
		{30 * time.Second, 2},         // coarse step, still once a minute
		{2 * time.Minute, 1},          // step longer than the bound
		{time.Millisecond, 4096},      // fine step hits the tick cap
		{15 * time.Millisecond, 4000}, // just under the cap
	}
	for _, tc := range cases {
		e := NewEngine(MustClock(time.Unix(0, 0).UTC(), tc.step), 1)
		if got := e.ctxCheckEvery(); got != tc.want {
			t.Errorf("step %v: ctxCheckEvery = %d, want %d", tc.step, got, tc.want)
		}
	}
}

func TestRunForCancellationLatencyBoundedInSimTime(t *testing.T) {
	// With a coarse 30 s step, cancellation must be noticed within a
	// simulated minute (2 ticks), not 4096 ticks.
	e := NewEngine(MustClock(time.Unix(0, 0).UTC(), 30*time.Second), 1)
	ctx, cancel := context.WithCancel(context.Background())
	ticks := 0
	e.Register(ComponentFunc{ID: "counter", Fn: func(*Env) {
		ticks++
		if ticks == 1 {
			cancel()
		}
	}})
	err := e.RunFor(ctx, 24*time.Hour)
	if err == nil {
		t.Fatal("cancelled run should fail")
	}
	if ticks > 2 {
		t.Errorf("ran %d ticks after cancellation, want <= 2 (one simulated minute)", ticks)
	}
}

func TestRunForTruncatesPartialTicks(t *testing.T) {
	// RunFor rounds the duration DOWN to whole ticks: 90 s at a 60 s step
	// runs exactly one tick, and a duration shorter than the step runs
	// none. This pins the documented contract.
	cases := []struct {
		d     time.Duration
		ticks int
	}{
		{90 * time.Second, 1},
		{59 * time.Second, 0},
		{60 * time.Second, 1},
		{119 * time.Second, 1},
		{180 * time.Second, 3},
	}
	for _, tc := range cases {
		e := NewEngine(MustClock(time.Unix(0, 0).UTC(), time.Minute), 1)
		ticks := 0
		e.Register(ComponentFunc{ID: "counter", Fn: func(*Env) { ticks++ }})
		if err := e.RunFor(context.Background(), tc.d); err != nil {
			t.Fatal(err)
		}
		if ticks != tc.ticks {
			t.Errorf("RunFor(%v) at 60 s step ran %d ticks, want %d", tc.d, ticks, tc.ticks)
		}
	}
}

func TestNewEnvMatchesEngineEnv(t *testing.T) {
	clock := MustClock(time.Unix(0, 0).UTC(), 250*time.Millisecond)
	e := NewEngine(clock, 9)
	env := NewEnv(e.Clock(), e.RNG())
	if env.Dt() != 0.25 || env.Step() != 250*time.Millisecond {
		t.Errorf("NewEnv dt = %v step = %v, want 0.25 / 250ms", env.Dt(), env.Step())
	}
	if env.RNG() != e.RNG() || !env.Now().Equal(clock.Now()) {
		t.Error("NewEnv must expose the given clock and RNG")
	}
}
