package sim

import "time"

// regOpts collects the effect of the options passed to one Register call.
type regOpts struct {
	cadence    time.Duration
	hasCadence bool
	onDemand   bool
	faultable  bool
}

// RegOption configures a single Engine.Register call.
type RegOption func(*regOpts)

// WithCadence places the component on the due-wheel with a fixed cadence:
// it is stepped on the registration tick and every period thereafter. The
// skipped ticks are genuinely skipped — the component receives no
// catch-up calls for them — so a fixed cadence suits coarse periodic work
// (logging, checkpointing, supervisory decisions) that does not integrate
// over dt. period is rounded down to whole ticks with a minimum of one; a
// period of one step is equivalent to registering with no options.
// Mutually exclusive with WithOnDemand.
func WithCadence(period time.Duration) RegOption {
	return func(o *regOpts) { o.cadence, o.hasCadence = period, true }
}

// WithOnDemand registers the component to be stepped, at its position in
// the registration order, only on ticks during which Registration.Wake
// was called. A wake during tick T from a component ordered before it
// steps the component on tick T itself; a wake after its position (or
// from outside the run loop) steps it on the next processed tick. The
// flag persists until the component is stepped, so a wake is never lost.
// Mutually exclusive with WithCadence.
func WithOnDemand() RegOption {
	return func(o *regOpts) { o.onDemand = true }
}

// WithFaultable enables Registration.Suspend and Resume on the returned
// handle, so fault injectors can take the component offline mid-run. The
// option costs nothing at steady state: suspension is a per-entry flag
// checked on the paths the scheduler already walks.
func WithFaultable() RegOption {
	return func(o *regOpts) { o.faultable = true }
}

// Registration is the scheduling handle returned by Engine.Register. The
// zero value is not meaningful; handles are only created by Register.
type Registration struct {
	e         *Engine
	ent       *entry
	faultable bool
}

// Wake marks an on-demand component to be stepped on the current (or
// next) processed tick. Panics if the component was not registered
// WithOnDemand.
func (r *Registration) Wake() {
	if !r.ent.onDemand {
		panic("sim: Registration.Wake: component " + r.ent.c.Name() + " not registered WithOnDemand")
	}
	r.ent.woken = true
}

// Suspend takes the component offline: the scheduler stops delivering
// Step/StepN calls (including end-of-run catch-up) until Resume. A
// suspended due-wheel entry keeps its slot but each poll is a no-op, so
// suspension and resumption are quantized to the entry's own due ticks —
// at most one cadence period of latency, which is far below any fault
// duration of interest. Ticks that elapsed before the suspension are
// flushed first, so the component's internal accumulators stay exact.
// Panics if the component was not registered WithFaultable.
func (r *Registration) Suspend() {
	r.checkFaultable("Suspend")
	ent := r.ent
	if !ent.suspended && ent.cad != nil {
		if now := r.e.clock.Tick(); ent.doneThrough < now {
			ent.cad.StepN(NewEnv(r.e.clock, r.e.rng), now-ent.doneThrough)
			ent.doneThrough = now
		}
	}
	ent.suspended = true
}

// Resume puts a suspended component back on its schedule. The ticks
// spent suspended are not replayed: the component's accumulators are
// frozen across the outage, as if the hardware had been powered off.
// Panics if the component was not registered WithFaultable.
func (r *Registration) Resume() {
	r.checkFaultable("Resume")
	ent := r.ent
	ent.suspended = false
	// Skip the suspended span so the next due poll does not replay it.
	if ent.cad != nil {
		if now := r.e.clock.Tick(); ent.doneThrough < now {
			ent.doneThrough = now
		}
	}
}

// Suspended reports whether the component is currently suspended.
func (r *Registration) Suspended() bool { return r.ent.suspended }

// TakeOver removes an every-tick component from the engine's delivery: the
// caller assumes responsibility for stepping it on every tick, outside the
// engine. This is the fleet's physics-takeover hook — a shard takes over
// each building's room and steps all of them in one fused bank pass
// between engine ticks. Because the component was registered last in its
// engine's step order (or the caller otherwise steps it at the position it
// held), the externally driven schedule is the same sequence of Step calls
// the engine would have made, so results are unchanged.
//
// Only plain every-tick components can be taken over: cadenced and
// on-demand entries have engine-owned schedule state that an external
// stepper cannot honor. Suspension does not apply to a taken-over
// component — the external stepper bypasses the scheduler entirely.
// Panics if the component is cadenced, on-demand, or already taken over.
func (r *Registration) TakeOver() {
	ent := r.ent
	if ent.cad != nil || ent.onDemand {
		panic("sim: Registration.TakeOver: component " + ent.c.Name() + " is not a plain every-tick component")
	}
	if ent.takenOver {
		panic("sim: Registration.TakeOver: component " + ent.c.Name() + " already taken over")
	}
	for i, a := range r.e.always {
		if a == ent {
			r.e.always = append(r.e.always[:i], r.e.always[i+1:]...)
			ent.takenOver = true
			return
		}
	}
	panic("sim: Registration.TakeOver: component " + ent.c.Name() + " not on the every-tick list")
}

// TakenOver reports whether the component's stepping was taken over.
func (r *Registration) TakenOver() bool { return r.ent.takenOver }

func (r *Registration) checkFaultable(op string) {
	if !r.faultable {
		panic("sim: Registration." + op + ": component " + r.ent.c.Name() + " not registered WithFaultable")
	}
}

// Register adds c to the engine at the next position in step order and
// returns its scheduling handle. With no options the component is stepped
// every tick, unless it implements Cadenced, in which case it is placed
// on the due-wheel and stepped only on the ticks its own accumulators say
// are due. WithCadence forces a fixed due-wheel cadence regardless of the
// component's own interfaces; WithOnDemand parks the component until the
// handle's Wake is called; WithFaultable additionally arms the handle's
// Suspend/Resume. Register components between runs, not from inside a
// Step call.
func (e *Engine) Register(c Component, opts ...RegOption) *Registration {
	var o regOpts
	for _, opt := range opts {
		opt(&o)
	}
	if o.hasCadence && o.onDemand {
		panic("sim: Register: WithCadence and WithOnDemand are mutually exclusive")
	}
	ent := &entry{c: c, idx: len(e.entries), regTick: e.clock.Tick()}
	reg := &Registration{e: e, ent: ent, faultable: o.faultable}
	if o.onDemand {
		ent.onDemand = true
		e.entries = append(e.entries, ent)
		e.always = append(e.always, ent)
		return reg
	}
	ent.doneThrough = e.clock.Tick()
	if o.hasCadence {
		ticks := uint64(o.cadence / e.clock.Step())
		if ticks < 1 {
			ticks = 1
		}
		ent.c = &fixedCadence{c: c, periodTicks: ticks, untilDue: 1}
	}
	e.entries = append(e.entries, ent)
	if cad, ok := ent.c.(Cadenced); ok {
		ent.cad = cad
		ent.nextDue = ent.doneThrough + cad.NextDue(e.dtS) - 1
		e.wheel.push(ent, e.clock.Tick())
	} else {
		e.always = append(e.always, ent)
	}
	return reg
}
