package sim

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// Register API tests: default scheduling, option composition, and the
// fault-suspension semantics WithFaultable arms.

func TestRegisterDefaults(t *testing.T) {
	// Register with no options puts a plain component on the every-tick
	// path and a Cadenced one on the due-wheel, with identical observable
	// behavior: the accumulator covers every tick and fires on schedule.
	e := NewEngine(MustClock(testStart, time.Second), 1)
	var n uint64
	e.Register(ComponentFunc{ID: "plain", Fn: func(*Env) { n++ }})
	dev := &accumCadenced{name: "dev", periodS: 3}
	e.Register(dev)
	if err := e.RunTicks(context.Background(), 20); err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Errorf("plain component stepped %d times, want every tick (20)", n)
	}
	if dev.ticks != 20 {
		t.Errorf("cadenced bookkeeping covers %d ticks, want 20", dev.ticks)
	}
	want := []uint64{2, 5, 8, 11, 14, 17}
	if fmt.Sprint(dev.fires) != fmt.Sprint(want) {
		t.Errorf("cadenced fires = %v, want %v", dev.fires, want)
	}
	stats := e.StepStats()
	if stats[0].Kind != "every-tick" || stats[1].Kind != "cadenced" {
		t.Errorf("stats kinds = %s/%s, want every-tick/cadenced", stats[0].Kind, stats[1].Kind)
	}
}

func TestWithCadenceSchedule(t *testing.T) {
	// WithCadence forces a plain component onto the wheel: stepped on the
	// registration tick and every period thereafter.
	e := NewEngine(MustClock(testStart, time.Second), 1)
	var ticks []uint64
	c := ComponentFunc{ID: "log", Fn: func(env *Env) { ticks = append(ticks, env.Tick()) }}
	e.Register(c, WithCadence(4*time.Second))
	if err := e.RunTicks(context.Background(), 13); err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 4, 8, 12}
	if fmt.Sprint(ticks) != fmt.Sprint(want) {
		t.Errorf("Register(WithCadence(4s)) stepped on %v, want %v", ticks, want)
	}
}

func TestWithOnDemandSameTickWake(t *testing.T) {
	// A wake from an earlier-ordered component lands on the same tick.
	e := NewEngine(MustClock(testStart, time.Second), 1)
	var stepped []uint64
	var wake func()
	e.Register(ComponentFunc{ID: "producer", Fn: func(env *Env) {
		if env.Tick()%3 == 0 {
			wake()
		}
	}})
	c := ComponentFunc{ID: "net", Fn: func(env *Env) { stepped = append(stepped, env.Tick()) }}
	wake = e.Register(c, WithOnDemand()).Wake
	if err := e.RunTicks(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 3, 6, 9}
	if fmt.Sprint(stepped) != fmt.Sprint(want) {
		t.Errorf("Register(WithOnDemand) stepped on %v, want %v", stepped, want)
	}
}

func TestRegisterOptionPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	e := NewEngine(MustClock(testStart, time.Second), 1)
	noop := ComponentFunc{ID: "noop", Fn: func(*Env) {}}
	mustPanic("WithCadence+WithOnDemand", func() {
		e.Register(noop, WithCadence(time.Second), WithOnDemand())
	})
	mustPanic("Wake on non-on-demand", func() {
		e.Register(noop).Wake()
	})
	mustPanic("Suspend without WithFaultable", func() {
		e.Register(noop).Suspend()
	})
	mustPanic("Resume without WithFaultable", func() {
		e.Register(noop).Resume()
	})
}

func TestSuspendResumeAlwaysComponent(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	var stepped []uint64
	reg := e.Register(ComponentFunc{ID: "c", Fn: func(env *Env) {
		stepped = append(stepped, env.Tick())
	}}, WithFaultable())
	if err := e.RunTicks(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	reg.Suspend()
	if !reg.Suspended() {
		t.Fatal("Suspended() false after Suspend")
	}
	if err := e.RunTicks(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	reg.Resume()
	if reg.Suspended() {
		t.Fatal("Suspended() true after Resume")
	}
	if err := e.RunTicks(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	// Ticks 0-2 stepped, 3-6 suspended (not replayed), 7-9 stepped.
	want := []uint64{0, 1, 2, 7, 8, 9}
	if fmt.Sprint(stepped) != fmt.Sprint(want) {
		t.Errorf("stepped on %v, want %v", stepped, want)
	}
}

func TestSuspendResumeCadencedComponent(t *testing.T) {
	// A due-wheel mote suspended mid-run: the outage ticks are never
	// replayed, the accumulator freezes across the outage, and after
	// Resume the device is back on its own schedule.
	e := NewEngine(MustClock(testStart, time.Second), 1)
	dev := &accumCadenced{name: "dev", periodS: 3}
	reg := e.Register(dev, WithFaultable())
	if err := e.RunTicks(context.Background(), 7); err != nil {
		t.Fatal(err)
	}
	// Fires at ticks 2 and 5; tick 6 has been applied (flush-on-suspend
	// brings doneThrough to the clock even off a due boundary).
	reg.Suspend()
	ticksAtSuspend := dev.ticks
	if err := e.RunTicks(context.Background(), 9); err != nil {
		t.Fatal(err)
	}
	if dev.ticks != ticksAtSuspend {
		t.Errorf("suspended device applied %d ticks during the outage", dev.ticks-ticksAtSuspend)
	}
	reg.Resume()
	if err := e.RunTicks(context.Background(), 9); err != nil {
		t.Fatal(err)
	}
	// The outage span [7,16) is skipped entirely: total applied ticks are
	// the 7 before plus at most the 9 after (quantization to due ticks may
	// withhold the first post-resume poll).
	if dev.ticks > ticksAtSuspend+9 {
		t.Errorf("device applied %d ticks after resume, want <= 9 (no outage replay)",
			dev.ticks-ticksAtSuspend)
	}
	for _, f := range dev.fires {
		if f >= 7 && f < 16 {
			t.Errorf("device fired on tick %d inside the outage", f)
		}
	}
	if len(dev.fires) < 4 {
		t.Errorf("device fired %d times (%v), want it back on schedule after resume",
			len(dev.fires), dev.fires)
	}
}

func TestSuspendFlushesPendingTicks(t *testing.T) {
	// Suspending between due ticks must first apply the elapsed span, so
	// accumulators (battery drain analogue) stay exact up to the outage.
	e := NewEngine(MustClock(testStart, time.Second), 1)
	dev := &accumCadenced{name: "dev", periodS: 5}
	reg := e.Register(dev, WithFaultable())
	if err := e.RunTicks(context.Background(), 7); err != nil {
		t.Fatal(err)
	}
	reg.Suspend()
	if dev.ticks != 7 {
		t.Errorf("device saw %d ticks at suspend, want all 7 flushed", dev.ticks)
	}
}

func TestSuspendedStepStatsCountSkips(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	reg := e.Register(ComponentFunc{ID: "c", Fn: func(*Env) {}}, WithFaultable())
	reg.Suspend()
	if err := e.RunTicks(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	stats := e.StepStats()
	if stats[0].Steps != 0 || stats[0].Skipped != 5 {
		t.Errorf("suspended stats = %+v, want 0 steps / 5 skipped", stats[0])
	}
}

func TestWakeLatchedAcrossSuspension(t *testing.T) {
	// A wake delivered while the component is suspended must not be lost:
	// it steps on the first processed tick after Resume.
	e := NewEngine(MustClock(testStart, time.Second), 1)
	var stepped []uint64
	reg := e.Register(ComponentFunc{ID: "net", Fn: func(env *Env) {
		stepped = append(stepped, env.Tick())
	}}, WithOnDemand(), WithFaultable())
	reg.Wake()
	reg.Suspend()
	if err := e.RunTicks(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if len(stepped) != 0 {
		t.Fatalf("suspended on-demand component stepped on %v", stepped)
	}
	reg.Resume()
	if err := e.RunTicks(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(stepped) != fmt.Sprint([]uint64{3}) {
		t.Errorf("stepped on %v, want [3] (wake latched across suspension)", stepped)
	}
}

func TestWithCadenceSubTickClamp(t *testing.T) {
	e := NewEngine(MustClock(testStart, time.Second), 1)
	n := 0
	e.Register(ComponentFunc{ID: "dense", Fn: func(*Env) { n++ }}, WithCadence(time.Nanosecond))
	if err := e.RunTicks(context.Background(), 6); err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("sub-tick cadence stepped %d times, want every tick (6)", n)
	}
}
