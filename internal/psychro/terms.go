package psychro

import "math"

// Terms bundles the pressure-dependent constants of the psychrometric
// relations so a batch kernel pays for them once per tick (or once per
// climate change), not once per zone. The scalar package functions above
// recompute `p / RDryAir` and `log(magnusC)` on every call; at four zones
// per building and thousands of buildings per fleet epoch those folds are
// the difference between a fused multiply and a divide-plus-transcendental
// inside the innermost loop.
//
// The hoisted forms are algebraically identical to the scalar reference
// but associate the floating-point operations differently, so results can
// differ in the last few mantissa bits. The equivalence is pinned by
// property tests (terms_test.go): every Terms method must agree with its
// scalar counterpart within 1e-9 relative error over a seeded input sweep.
// Code that needs bit-identical agreement with the scalar functions (the
// lazily-cached derived state in internal/thermal, for example) keeps
// calling the scalar forms; the batch kernel's per-zone flow math uses
// Terms under the golden-epoch tolerance discipline.
type Terms struct {
	// P is the total pressure the terms were built for, in Pa.
	P float64
	// rhoNum is P / RDryAir: the dry-air density numerator, so density
	// is a single divide rhoNum / T_K instead of p / (R · T_K).
	rhoNum float64
	// lnC is log(magnusC), hoisted out of the dew-point inversion so the
	// per-call work is one log instead of a divide feeding a log.
	lnC float64
}

// NewTerms precomputes the hoisted constants for total pressure p (Pa).
// Pressure defaults to AtmPressure if p <= 0.
func NewTerms(p float64) Terms {
	if p <= 0 {
		p = AtmPressure
	}
	return Terms{P: p, rhoNum: p / RDryAir, lnC: math.Log(magnusC)}
}

// Density returns the dry-air density (kg/m³) at dry bulb t (°C) — the
// hoisted counterpart of DryAirDensity(t, tm.P).
func (tm Terms) Density(t float64) float64 {
	return tm.rhoNum / (t + 273.15)
}

// DewPointFromW returns the dew point (°C) of air with humidity ratio w
// (kg/kg) — the hoisted counterpart of DewPointFromHumidityRatio(w, tm.P):
// log(pv/magnusC) is evaluated as log(pv) − lnC.
func (tm Terms) DewPointFromW(w float64) float64 {
	if w <= 0 {
		w = 1e-9
	}
	pv := w * tm.P / (epsilonWater + w)
	x := math.Log(pv) - tm.lnC
	return MagnusA * x / (MagnusB - x)
}

// RHFromW returns relative humidity (%) at dry bulb t (°C) with humidity
// ratio w — the counterpart of RHFromHumidityRatio(t, w, tm.P), clamped to
// (0, 100] the same way.
func (tm Terms) RHFromW(t, w float64) float64 {
	pv := w * tm.P / (epsilonWater + w)
	rh := 100 * pv / SatPressure(t)
	if rh > 100 {
		return 100
	}
	if rh <= 0 {
		return 1e-6
	}
	return rh
}

// SatPressureAt returns the saturation vapour pressure (Pa) at t (°C).
// The Magnus form has no pressure-dependent factor to hoist; the method
// exists so batch-kernel call sites read uniformly off one Terms value and
// stay covered by the same equivalence property test.
func (tm Terms) SatPressureAt(t float64) float64 { return SatPressure(t) }

// EnthalpyAt returns the moist-air specific enthalpy (kJ/kg dry air) at
// dry bulb t (°C) and humidity ratio w. The enthalpy constants (cp of dry
// air and vapour, latent heat at 0 °C) are compile-time constants already;
// the method keeps the batch kernel's psychrometric surface on Terms.
func (tm Terms) EnthalpyAt(t, w float64) float64 { return Enthalpy(t, w) }
