package psychro

import (
	"math"
	"math/rand/v2"
	"testing"
)

// The batch kernel evaluates its per-zone psychrometrics through Terms,
// whose hoisted constant folds associate the float operations differently
// from the scalar reference functions. The golden-epoch discipline allows
// that — paper metrics are asserted within tolerance, not bit-identity —
// but the two forms must stay numerically interchangeable. This property
// sweep pins every Terms method to its scalar counterpart within 1e-9
// relative error across the full HVAC operating envelope (and well
// beyond it), at three total pressures.
func TestTermsMatchScalarReference(t *testing.T) {
	pressures := []float64{AtmPressure, 90000, 104000}
	rng := rand.New(rand.NewPCG(0xb0b2, 0x5eed))

	relErr := func(got, want float64) float64 {
		d := math.Abs(got - want)
		if m := math.Abs(want); m > 1 {
			return d / m
		}
		return d
	}

	for _, p := range pressures {
		tm := NewTerms(p)
		if tm.P != p {
			t.Fatalf("NewTerms(%v).P = %v", p, tm.P)
		}
		for i := 0; i < 200000; i++ {
			// Dry bulb −40…+60 °C, humidity ratio 0…0.04 kg/kg: the
			// Magnus validity range, spanning every climate boundary the
			// fleet parameterisation can generate.
			tc := -40 + 100*rng.Float64()
			w := 0.04 * rng.Float64()

			if got, want := tm.Density(tc), DryAirDensity(tc, p); relErr(got, want) > 1e-9 {
				t.Fatalf("p=%v t=%v: Terms.Density=%v, DryAirDensity=%v", p, tc, got, want)
			}
			if got, want := tm.DewPointFromW(w), DewPointFromHumidityRatio(w, p); relErr(got, want) > 1e-9 {
				t.Fatalf("p=%v w=%v: Terms.DewPointFromW=%v, DewPointFromHumidityRatio=%v", p, w, got, want)
			}
			if got, want := tm.RHFromW(tc, w), RHFromHumidityRatio(tc, w, p); relErr(got, want) > 1e-9 {
				t.Fatalf("p=%v t=%v w=%v: Terms.RHFromW=%v, RHFromHumidityRatio=%v", p, tc, w, got, want)
			}
			if got, want := tm.SatPressureAt(tc), SatPressure(tc); got != want {
				t.Fatalf("p=%v t=%v: Terms.SatPressureAt=%v, SatPressure=%v", p, tc, got, want)
			}
			if got, want := tm.EnthalpyAt(tc, w), Enthalpy(tc, w); got != want {
				t.Fatalf("p=%v t=%v w=%v: Terms.EnthalpyAt=%v, Enthalpy=%v", p, tc, w, got, want)
			}
		}
	}
}

// Degenerate inputs must clamp identically to the scalar reference: the
// kernel feeds Terms whatever the integrator produced, including the
// w→0 floor after the moisture clamp.
func TestTermsEdgeCasesMatchScalar(t *testing.T) {
	tm := NewTerms(0) // defaults to AtmPressure
	if tm.P != AtmPressure {
		t.Fatalf("NewTerms(0).P = %v, want AtmPressure", tm.P)
	}
	for _, w := range []float64{0, -1e-9, 1e-12, 1e-9} {
		got, want := tm.DewPointFromW(w), DewPointFromHumidityRatio(w, AtmPressure)
		if math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Errorf("w=%v: Terms dew %v, scalar %v", w, got, want)
		}
	}
	// RH clamps: supersaturated air reports 100, bone-dry reports the
	// positive floor — exactly as the scalar form does.
	if got := tm.RHFromW(20, 0.05); got != 100 {
		t.Errorf("supersaturated RHFromW = %v, want 100", got)
	}
	if got := tm.RHFromW(20, 0); got != 1e-6 {
		t.Errorf("dry RHFromW = %v, want 1e-6 floor", got)
	}
}
