// Package psychro implements the moist-air (psychrometric) relations used
// throughout BubbleZERO: the Magnus dew-point formula the paper controls
// against (§III-B, with a = 243.12 and b = 17.62), saturation vapour
// pressure, conversions between relative humidity, humidity ratio and dew
// point, moist-air enthalpy, and air density.
//
// Temperatures are in degrees Celsius, pressures in pascals, humidity
// ratios in kg water vapour per kg dry air, and relative humidity in
// percent (0–100) — matching the units the paper reports.
package psychro

import (
	"fmt"
	"math"
)

const (
	// MagnusA and MagnusB are the Magnus-formula coefficients used by the
	// paper's dew-point equation (valid −45 °C … +60 °C over water).
	MagnusA = 243.12 // °C
	MagnusB = 17.62  // dimensionless

	// magnusC completes the Magnus saturation-pressure form
	// e_s(T) = magnusC · exp(MagnusB·T / (MagnusA + T)).
	magnusC = 611.2 // Pa at 0 °C

	// AtmPressure is standard sea-level atmospheric pressure.
	AtmPressure = 101325.0 // Pa

	// epsilonWater is the molecular-weight ratio of water to dry air.
	epsilonWater = 0.621945

	// Specific heats and latent heat for enthalpy (kJ/kg basis).
	cpDryAir    = 1.006  // kJ/(kg·K)
	cpVapour    = 1.86   // kJ/(kg·K)
	latentHeat0 = 2501.0 // kJ/kg at 0 °C

	// LatentHeatJPerKg is the latent heat of vaporisation of water used for
	// condensation power accounting.
	LatentHeatJPerKg = 2.501e6 // J/kg

	// RDryAir is the specific gas constant of dry air.
	RDryAir = 287.058 // J/(kg·K)
)

// SatPressure returns the saturation vapour pressure over liquid water at
// temperature t (°C) using the Magnus form consistent with the paper's
// dew-point constants.
func SatPressure(t float64) float64 {
	return magnusC * math.Exp(MagnusB*t/(MagnusA+t))
}

// VapourPressure returns the partial pressure of water vapour for air at
// temperature t (°C) and relative humidity rh (%).
func VapourPressure(t, rh float64) float64 {
	return rh / 100 * SatPressure(t)
}

// DewPoint returns the dew-point temperature (°C) for air at temperature t
// (°C) and relative humidity rh (%), using the paper's exact formula:
//
//	Tdew(T,H) = a·γ / (b − γ),  γ = ln(H/100) + b·T/(a+T)
//
// with a = 243.12 and b = 17.62. rh is clamped to a small positive floor
// to keep the logarithm finite for bone-dry air.
func DewPoint(t, rh float64) float64 {
	if rh < 1e-6 {
		rh = 1e-6
	}
	if rh > 100 {
		rh = 100
	}
	gamma := math.Log(rh/100) + MagnusB*t/(MagnusA+t)
	return MagnusA * gamma / (MagnusB - gamma)
}

// RHFromDewPoint inverts DewPoint: the relative humidity (%) of air at dry
// bulb t (°C) whose dew point is tdew (°C). Results are clamped to
// (0, 100]: a dew point above the dry bulb is physically supersaturated and
// reports 100 %.
func RHFromDewPoint(t, tdew float64) float64 {
	rh := 100 * SatPressure(tdew) / SatPressure(t)
	if rh > 100 {
		return 100
	}
	if rh <= 0 {
		return 1e-6
	}
	return rh
}

// HumidityRatio returns the humidity ratio W (kg/kg dry air) of air at
// temperature t (°C), relative humidity rh (%), and total pressure p (Pa).
func HumidityRatio(t, rh, p float64) float64 {
	pv := VapourPressure(t, rh)
	if pv >= p {
		pv = 0.999 * p
	}
	return epsilonWater * pv / (p - pv)
}

// HumidityRatioFromDewPoint returns the humidity ratio of air whose dew
// point is tdew (°C) at total pressure p (Pa). The humidity ratio depends
// only on vapour partial pressure, hence only on the dew point.
func HumidityRatioFromDewPoint(tdew, p float64) float64 {
	pv := SatPressure(tdew)
	if pv >= p {
		pv = 0.999 * p
	}
	return epsilonWater * pv / (p - pv)
}

// DewPointFromHumidityRatio inverts HumidityRatioFromDewPoint: the dew
// point (°C) of air with humidity ratio w (kg/kg) at pressure p (Pa).
func DewPointFromHumidityRatio(w, p float64) float64 {
	if w <= 0 {
		w = 1e-9
	}
	pv := w * p / (epsilonWater + w)
	// Invert e_s(T) = magnusC·exp(b·T/(a+T)).
	x := math.Log(pv / magnusC)
	return MagnusA * x / (MagnusB - x)
}

// RHFromHumidityRatio returns relative humidity (%) for air at dry bulb t
// (°C) with humidity ratio w at pressure p (Pa), clamped to (0, 100].
func RHFromHumidityRatio(t, w, p float64) float64 {
	pv := w * p / (epsilonWater + w)
	rh := 100 * pv / SatPressure(t)
	if rh > 100 {
		return 100
	}
	if rh <= 0 {
		return 1e-6
	}
	return rh
}

// Enthalpy returns the specific enthalpy (kJ/kg dry air) of moist air at
// dry bulb t (°C) and humidity ratio w (kg/kg).
func Enthalpy(t, w float64) float64 {
	return cpDryAir*t + w*(latentHeat0+cpVapour*t)
}

// WetBulb returns the thermodynamic wet-bulb temperature (°C) of air at
// dry bulb t (°C) and humidity ratio w (kg/kg) at pressure p (Pa), by
// bisecting the adiabatic-saturation balance
// cp·(t − twb) = L·(w_s(twb) − w). It lies between the dew point and the
// dry bulb.
func WetBulb(t, w, p float64) float64 {
	if p <= 0 {
		p = AtmPressure
	}
	lo := DewPointFromHumidityRatio(w, p)
	hi := t
	if lo >= hi {
		return t
	}
	const latentKJ = latentHeat0
	balance := func(twb float64) float64 {
		ws := HumidityRatioFromDewPoint(twb, p) // saturated at twb
		return cpDryAir*(t-twb) - latentKJ*(ws-w)
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if balance(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// DryAirDensity returns the density (kg/m³) of dry air at temperature t
// (°C) and pressure p (Pa). Good to within ~1 % for HVAC humidity levels,
// which is the accuracy class of the whole lumped model.
func DryAirDensity(t, p float64) float64 {
	return p / (RDryAir * (t + 273.15))
}

// State is a moist-air state: dry-bulb temperature and humidity ratio at a
// given pressure. It bundles the two prognostic variables the thermal model
// integrates, with derived quantities as methods.
type State struct {
	// T is the dry-bulb temperature in °C.
	T float64
	// W is the humidity ratio in kg water vapour / kg dry air.
	W float64
	// P is the total pressure in Pa.
	P float64
}

// NewState builds a moist-air state from dry bulb (°C) and relative
// humidity (%). Pressure defaults to AtmPressure if p <= 0.
func NewState(t, rh, p float64) State {
	if p <= 0 {
		p = AtmPressure
	}
	return State{T: t, W: HumidityRatio(t, rh, p), P: p}
}

// NewStateDewPoint builds a moist-air state from dry bulb and dew point
// (both °C). Pressure defaults to AtmPressure if p <= 0.
func NewStateDewPoint(t, tdew, p float64) State {
	if p <= 0 {
		p = AtmPressure
	}
	return State{T: t, W: HumidityRatioFromDewPoint(tdew, p), P: p}
}

// RH returns the state's relative humidity in percent.
func (s State) RH() float64 { return RHFromHumidityRatio(s.T, s.W, s.P) }

// DewPoint returns the state's dew-point temperature in °C.
func (s State) DewPoint() float64 { return DewPointFromHumidityRatio(s.W, s.P) }

// Enthalpy returns the state's specific enthalpy in kJ/kg dry air.
func (s State) Enthalpy() float64 { return Enthalpy(s.T, s.W) }

// Saturated reports whether the state is at or beyond saturation.
func (s State) Saturated() bool { return s.RH() >= 100 }

// String renders the state for logs.
func (s State) String() string {
	return fmt.Sprintf("%.2f°C / %.2f°C dp / %.1f%%RH", s.T, s.DewPoint(), s.RH())
}

// Mix returns the adiabatic mix of two moist-air streams with dry-air mass
// flows ma and mb (kg/s). Zero total flow returns state a unchanged.
func Mix(a State, ma float64, b State, mb float64) State {
	total := ma + mb
	if total <= 0 {
		return a
	}
	// Mixing conserves dry-air mass, water mass, and enthalpy.
	w := (ma*a.W + mb*b.W) / total
	h := (ma*a.Enthalpy() + mb*b.Enthalpy()) / total
	// Invert h = cp·T + w(L + cpv·T) for T.
	t := (h - w*latentHeat0) / (cpDryAir + w*cpVapour)
	return State{T: t, W: w, P: a.P}
}
