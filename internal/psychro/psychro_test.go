package psychro

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSatPressureReferencePoints(t *testing.T) {
	// Reference values for the Magnus form (±1.5 % of standard tables).
	tests := []struct {
		tC   float64
		want float64 // Pa
		tol  float64
	}{
		{0, 611.2, 1},
		{10, 1228, 15},
		{20, 2339, 30},
		{25, 3169, 40},
		{30, 4246, 60},
	}
	for _, tc := range tests {
		got := SatPressure(tc.tC)
		if !almostEqual(got, tc.want, tc.tol) {
			t.Errorf("SatPressure(%.0f) = %.1f Pa, want %.1f±%.1f", tc.tC, got, tc.want, tc.tol)
		}
	}
}

func TestSatPressureMonotone(t *testing.T) {
	prev := SatPressure(-20)
	for tc := -19.0; tc <= 50; tc++ {
		cur := SatPressure(tc)
		if cur <= prev {
			t.Fatalf("SatPressure not monotone at %.0f°C: %v <= %v", tc, cur, prev)
		}
		prev = cur
	}
}

func TestDewPointSaturatedAirEqualsDryBulb(t *testing.T) {
	for _, tc := range []float64{5, 15, 25, 28.9, 35} {
		got := DewPoint(tc, 100)
		if !almostEqual(got, tc, 1e-9) {
			t.Errorf("DewPoint(%.1f, 100) = %.6f, want %.1f", tc, got, tc)
		}
	}
}

func TestDewPointKnownValues(t *testing.T) {
	// Standard psychrometric reference combinations.
	tests := []struct {
		tC, rh, want, tol float64
	}{
		{25, 50, 13.9, 0.2},
		{30, 80, 26.2, 0.3},
		{20, 60, 12.0, 0.3},
		{28.9, 92, 27.4, 0.3}, // the paper's outdoor condition: ~92 % RH gives 27.4 °C dp
	}
	for _, tc := range tests {
		got := DewPoint(tc.tC, tc.rh)
		if !almostEqual(got, tc.want, tc.tol) {
			t.Errorf("DewPoint(%.1f, %.0f%%) = %.2f, want %.1f±%.1f", tc.tC, tc.rh, got, tc.want, tc.tol)
		}
	}
}

func TestDewPointBelowDryBulbWhenUnsaturated(t *testing.T) {
	for rh := 10.0; rh < 100; rh += 10 {
		for tc := 0.0; tc <= 40; tc += 5 {
			if dp := DewPoint(tc, rh); dp >= tc {
				t.Fatalf("DewPoint(%.0f, %.0f) = %.2f not below dry bulb", tc, rh, dp)
			}
		}
	}
}

func TestDewPointRHRoundTrip(t *testing.T) {
	f := func(tRaw, rhRaw uint16) bool {
		tC := float64(tRaw%400)/10 + 1    // 0.1 … 41 °C
		rh := float64(rhRaw%950)/10 + 5.0 // 5 … 100 %
		dp := DewPoint(tC, rh)
		back := RHFromDewPoint(tC, dp)
		return almostEqual(back, rh, 0.01)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHumidityRatioDewPointRoundTrip(t *testing.T) {
	f := func(dpRaw uint16) bool {
		dp := float64(dpRaw%350)/10 + 0.1 // 0.1 … 35 °C
		w := HumidityRatioFromDewPoint(dp, AtmPressure)
		back := DewPointFromHumidityRatio(w, AtmPressure)
		return almostEqual(back, dp, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHumidityRatioKnownValue(t *testing.T) {
	// 25 °C, 50 % RH at sea level → W ≈ 0.0099 kg/kg.
	w := HumidityRatio(25, 50, AtmPressure)
	if !almostEqual(w, 0.0099, 0.0004) {
		t.Errorf("HumidityRatio(25,50) = %.5f, want ≈0.0099", w)
	}
}

func TestHumidityRatioIncreasingInRH(t *testing.T) {
	prev := -1.0
	for rh := 5.0; rh <= 100; rh += 5 {
		w := HumidityRatio(25, rh, AtmPressure)
		if w <= prev {
			t.Fatalf("HumidityRatio not increasing at rh=%.0f", rh)
		}
		prev = w
	}
}

func TestEnthalpyKnownValue(t *testing.T) {
	// 25 °C, W = 0.010 → h ≈ 25.15 + 25.475 ≈ 50.6 kJ/kg.
	h := Enthalpy(25, 0.010)
	if !almostEqual(h, 50.6, 0.3) {
		t.Errorf("Enthalpy(25, 0.010) = %.2f, want ≈50.6", h)
	}
}

func TestDryAirDensityKnownValue(t *testing.T) {
	rho := DryAirDensity(20, AtmPressure)
	if !almostEqual(rho, 1.204, 0.01) {
		t.Errorf("DryAirDensity(20) = %.4f, want ≈1.204", rho)
	}
}

func TestStateConstructionAndDerived(t *testing.T) {
	s := NewState(25, 65, 0)
	if s.P != AtmPressure {
		t.Errorf("default pressure = %v, want %v", s.P, AtmPressure)
	}
	if !almostEqual(s.RH(), 65, 0.01) {
		t.Errorf("RH round trip = %.3f, want 65", s.RH())
	}
	dp := s.DewPoint()
	if dp >= s.T || dp < 0 {
		t.Errorf("implausible dew point %.2f for %v", dp, s)
	}
}

func TestStateDewPointConstruction(t *testing.T) {
	s := NewStateDewPoint(28.9, 27.4, 0)
	if !almostEqual(s.DewPoint(), 27.4, 1e-6) {
		t.Errorf("DewPoint = %.4f, want 27.4", s.DewPoint())
	}
	if s.RH() < 85 || s.RH() > 100 {
		t.Errorf("tropical outdoor RH = %.1f%%, want ~92%%", s.RH())
	}
}

func TestStateSaturated(t *testing.T) {
	if NewState(25, 50, 0).Saturated() {
		t.Error("50% RH state reported saturated")
	}
	if !NewState(25, 100, 0).Saturated() {
		t.Error("100% RH state not reported saturated")
	}
}

func TestMixConservesWaterAndEnthalpy(t *testing.T) {
	a := NewState(30, 80, 0)
	b := NewState(18, 40, 0)
	m := Mix(a, 2, b, 3)
	wantW := (2*a.W + 3*b.W) / 5
	if !almostEqual(m.W, wantW, 1e-12) {
		t.Errorf("mixed W = %v, want %v", m.W, wantW)
	}
	wantH := (2*a.Enthalpy() + 3*b.Enthalpy()) / 5
	if !almostEqual(m.Enthalpy(), wantH, 1e-9) {
		t.Errorf("mixed h = %v, want %v", m.Enthalpy(), wantH)
	}
	if m.T <= b.T || m.T >= a.T {
		t.Errorf("mixed T = %.2f outside (%v, %v)", m.T, b.T, a.T)
	}
}

func TestMixZeroFlowReturnsFirst(t *testing.T) {
	a := NewState(30, 80, 0)
	b := NewState(18, 40, 0)
	m := Mix(a, 0, b, 0)
	if m != a {
		t.Errorf("Mix with zero flows = %+v, want %+v", m, a)
	}
}

func TestMixIsSymmetricProperty(t *testing.T) {
	f := func(t1Raw, t2Raw, rh1Raw, rh2Raw uint8) bool {
		t1 := float64(t1Raw%35) + 5
		t2 := float64(t2Raw%35) + 5
		rh1 := float64(rh1Raw%90) + 5
		rh2 := float64(rh2Raw%90) + 5
		a := NewState(t1, rh1, 0)
		b := NewState(t2, rh2, 0)
		m1 := Mix(a, 1, b, 2)
		m2 := Mix(b, 2, a, 1)
		return almostEqual(m1.T, m2.T, 1e-9) && almostEqual(m1.W, m2.W, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDewPointExtremeRHClamped(t *testing.T) {
	if dp := DewPoint(25, 0); math.IsNaN(dp) || math.IsInf(dp, 0) {
		t.Errorf("DewPoint(25, 0) = %v, want finite", dp)
	}
	if dp := DewPoint(25, 150); !almostEqual(dp, 25, 1e-9) {
		t.Errorf("DewPoint(25, 150) = %v, want clamp to 25", dp)
	}
}

func TestRHFromDewPointSupersaturatedClamps(t *testing.T) {
	if rh := RHFromDewPoint(20, 25); rh != 100 {
		t.Errorf("RHFromDewPoint(20, 25) = %v, want 100", rh)
	}
}

func TestWetBulbKnownValue(t *testing.T) {
	// 25 °C, 50 % RH → wet bulb ≈ 17.9 °C (psychrometric chart).
	w := HumidityRatio(25, 50, AtmPressure)
	got := WetBulb(25, w, AtmPressure)
	if !almostEqual(got, 17.9, 0.5) {
		t.Errorf("WetBulb(25, 50%%) = %.2f, want ≈17.9", got)
	}
}

func TestWetBulbSaturatedEqualsDryBulb(t *testing.T) {
	w := HumidityRatio(25, 100, AtmPressure)
	if got := WetBulb(25, w, AtmPressure); !almostEqual(got, 25, 0.05) {
		t.Errorf("saturated wet bulb = %.3f, want 25", got)
	}
}

func TestWetBulbOrderingProperty(t *testing.T) {
	f := func(tRaw, rhRaw uint8) bool {
		tC := 5 + float64(tRaw%35)
		rh := 10 + float64(rhRaw%90)
		w := HumidityRatio(tC, rh, AtmPressure)
		twb := WetBulb(tC, w, AtmPressure)
		dp := DewPointFromHumidityRatio(w, AtmPressure)
		// dew point <= wet bulb <= dry bulb
		return dp-1e-6 <= twb && twb <= tC+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWetBulbDefaultPressure(t *testing.T) {
	w := HumidityRatio(25, 50, AtmPressure)
	if WetBulb(25, w, 0) != WetBulb(25, w, AtmPressure) {
		t.Error("zero pressure should default to AtmPressure")
	}
}

func TestStateString(t *testing.T) {
	s := NewStateDewPoint(25, 18, 0)
	str := s.String()
	if len(str) == 0 || str[0] != '2' {
		t.Errorf("State.String = %q", str)
	}
}
