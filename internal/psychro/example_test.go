package psychro_test

import (
	"fmt"

	"bubblezero/internal/psychro"
)

// The control laws compute dew points from temperature and relative
// humidity with the Magnus formula (a = 243.12, b = 17.62) — the exact
// equation in the paper's §III-B.
func ExampleDewPoint() {
	// The paper's outdoor condition: 28.9 °C at tropical humidity.
	fmt.Printf("outdoor dew point: %.1f °C\n", psychro.DewPoint(28.9, 92))
	// The occupant target: 25 °C at 65.3 % RH.
	fmt.Printf("target dew point: %.1f °C\n", psychro.DewPoint(25, 65.3))
	// Output:
	// outdoor dew point: 27.5 °C
	// target dew point: 18.0 °C
}

// States bundle dry-bulb temperature and humidity ratio; derived
// quantities (RH, dew point, enthalpy) come from methods.
func ExampleState() {
	outdoor := psychro.NewStateDewPoint(28.9, 27.4, 0)
	target := psychro.NewStateDewPoint(25, 18, 0)
	fmt.Printf("outdoor: %.1f kJ/kg\n", outdoor.Enthalpy())
	fmt.Printf("target:  %.1f kJ/kg\n", target.Enthalpy())
	// Output:
	// outdoor: 88.3 kJ/kg
	// target:  58.0 kJ/kg
}

// Mix models the adiabatic merging of two air streams — the airbox outlet
// joining room air, or the AirCon's fresh-air blend.
func ExampleMix() {
	room := psychro.NewState(25, 60, 0)
	fresh := psychro.NewStateDewPoint(18, 16, 0)
	blended := psychro.Mix(room, 0.8, fresh, 0.2)
	fmt.Printf("blend: %.1f °C, dew %.1f °C\n", blended.T, blended.DewPoint())
	// Output:
	// blend: 23.6 °C, dew 16.6 °C
}
