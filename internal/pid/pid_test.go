package pid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"valid", Config{Kp: 1, OutMin: 0, OutMax: 5}, false},
		{"inverted limits", Config{Kp: 1, OutMin: 5, OutMax: 0}, true},
		{"equal limits", Config{Kp: 1, OutMin: 1, OutMax: 1}, true},
		{"negative gain", Config{Kp: -1, OutMin: 0, OutMax: 5}, true},
		{"all zero gains", Config{OutMin: 0, OutMax: 5}, true},
		{"integral only", Config{Ki: 0.5, OutMin: 0, OutMax: 5}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestProportionalResponse(t *testing.T) {
	c := Must(Config{Kp: 2, OutMin: -100, OutMax: 100})
	c.SetSetpoint(10)
	if got := c.Update(4, 1); got != 12 {
		t.Errorf("P-only output = %v, want 12", got)
	}
}

func TestReverseActing(t *testing.T) {
	c := Must(Config{Kp: 2, OutMin: -100, OutMax: 100, Reverse: true})
	c.SetSetpoint(10)
	// Measurement above setpoint with Reverse → positive output.
	if got := c.Update(14, 1); got != 8 {
		t.Errorf("reverse-acting output = %v, want 8", got)
	}
}

func TestOutputClamped(t *testing.T) {
	c := Must(Config{Kp: 100, OutMin: 0, OutMax: 5})
	c.SetSetpoint(10)
	if got := c.Update(0, 1); got != 5 {
		t.Errorf("output = %v, want clamp at 5", got)
	}
	if got := c.Update(100, 1); got != 0 {
		t.Errorf("output = %v, want clamp at 0", got)
	}
}

func TestIntegralEliminatesSteadyStateError(t *testing.T) {
	// First-order plant: y' = (u - y)/tau. P-only control of this plant has
	// steady-state error; PI must drive the error to ~0.
	c := Must(Config{Kp: 0.5, Ki: 0.4, OutMin: 0, OutMax: 50})
	c.SetSetpoint(10)
	y := 0.0
	const dt, tau = 0.1, 2.0
	for i := 0; i < 5000; i++ {
		u := c.Update(y, dt)
		y += dt * (u - y) / tau
	}
	if math.Abs(y-10) > 0.05 {
		t.Errorf("steady state y = %v, want ≈10", y)
	}
}

func TestAntiWindupRecovery(t *testing.T) {
	// Saturate hard for a long time, then flip the setpoint: a wound-up
	// integrator would take many steps to unwind; conditional integration
	// must recover quickly.
	c := Must(Config{Kp: 1, Ki: 1, OutMin: 0, OutMax: 1})
	c.SetSetpoint(100)
	for i := 0; i < 1000; i++ {
		c.Update(0, 1) // massive persistent error, output pinned at 1
	}
	c.SetSetpoint(0)
	out := c.Update(0, 1)
	if out > 0.5 {
		t.Errorf("post-windup output = %v, want prompt recovery below 0.5", out)
	}
}

func TestDerivativeOnMeasurementNoSetpointKick(t *testing.T) {
	c := Must(Config{Kp: 1, Kd: 10, OutMin: -1000, OutMax: 1000})
	c.SetSetpoint(0)
	c.Update(5, 1)
	c.Update(5, 1) // establish steady measurement
	before := c.Output()
	c.SetSetpoint(50) // setpoint step with unchanged measurement
	after := c.Update(5, 1)
	// Without derivative kick, the jump must equal Kp * d(setpoint) alone.
	if math.Abs((after-before)-50) > 1e-9 {
		t.Errorf("setpoint step response = %v, want pure P jump of 50", after-before)
	}
}

func TestDerivativeDampsRateOfChange(t *testing.T) {
	c := Must(Config{Kp: 1, Kd: 5, OutMin: -1000, OutMax: 1000})
	c.SetSetpoint(0)
	c.Update(0, 1)
	// Measurement rising fast → derivative term should push output down
	// relative to pure P.
	out := c.Update(10, 1)
	pOnly := -10.0
	if out >= pOnly {
		t.Errorf("output with derivative = %v, want below P-only %v", out, pOnly)
	}
}

func TestNonPositiveDtReturnsPrevious(t *testing.T) {
	c := Must(Config{Kp: 1, OutMin: -10, OutMax: 10})
	c.SetSetpoint(5)
	first := c.Update(0, 1)
	if got := c.Update(100, 0); got != first {
		t.Errorf("dt=0 output = %v, want unchanged %v", got, first)
	}
	if got := c.Update(100, -1); got != first {
		t.Errorf("dt<0 output = %v, want unchanged %v", got, first)
	}
}

func TestNaNMeasurementIgnored(t *testing.T) {
	c := Must(Config{Kp: 1, Ki: 1, OutMin: -10, OutMax: 10})
	c.SetSetpoint(5)
	first := c.Update(0, 1)
	if got := c.Update(math.NaN(), 1); got != first {
		t.Errorf("NaN measurement output = %v, want unchanged %v", got, first)
	}
}

func TestResetClearsState(t *testing.T) {
	c := Must(Config{Kp: 1, Ki: 1, OutMin: 0, OutMax: 100})
	c.SetSetpoint(10)
	for i := 0; i < 50; i++ {
		c.Update(0, 1)
	}
	c.Reset()
	if c.Output() != 0 {
		t.Errorf("output after reset = %v, want OutMin 0", c.Output())
	}
	// One step after reset must equal a fresh controller's first step.
	fresh := Must(Config{Kp: 1, Ki: 1, OutMin: 0, OutMax: 100})
	fresh.SetSetpoint(10)
	if got, want := c.Update(3, 1), fresh.Update(3, 1); got != want {
		t.Errorf("post-reset step = %v, want %v", got, want)
	}
}

// Property: output is always within [OutMin, OutMax] regardless of inputs.
func TestOutputAlwaysInBoundsProperty(t *testing.T) {
	f := func(sp, meas int16, steps uint8) bool {
		c := Must(Config{Kp: 3, Ki: 2, Kd: 1, OutMin: -7, OutMax: 13})
		c.SetSetpoint(float64(sp))
		out := 0.0
		for i := 0; i <= int(steps%50); i++ {
			out = c.Update(float64(meas), 0.5)
			if out < -7 || out > 13 {
				return false
			}
		}
		return out >= -7 && out <= 13
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for a pure-P controller the output is a deterministic function
// of the last error only.
func TestPurePStatelessProperty(t *testing.T) {
	f := func(sp, m1, m2 int16) bool {
		a := Must(Config{Kp: 2, OutMin: -1e6, OutMax: 1e6})
		a.SetSetpoint(float64(sp))
		a.Update(float64(m1), 1)
		got := a.Update(float64(m2), 1)

		b := Must(Config{Kp: 2, OutMin: -1e6, OutMax: 1e6})
		b.SetSetpoint(float64(sp))
		want := b.Update(float64(m2), 1)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
