// Package pid implements the Proportional-Integral-Derivative controller
// used by both BubbleZERO control modules (§III-B and §III-C): the radiant
// module's F_mix flow controller and the ventilation module's coil-flow
// controller. The implementation uses derivative-on-measurement (avoids
// derivative kick on setpoint changes) and conditional-integration
// anti-windup (the integrator freezes while the output is saturated in the
// direction that would deepen saturation).
package pid

import (
	"fmt"
	"math"
)

// Config parameterises a Controller.
type Config struct {
	// Kp, Ki, Kd are the proportional, integral, and derivative gains.
	Kp, Ki, Kd float64
	// OutMin and OutMax clamp the controller output (actuator limits).
	OutMin, OutMax float64
	// Reverse inverts the error sign: use for processes where increasing
	// the actuator output decreases the measured value (e.g. more coolant
	// flow lowers temperature, so a cooling loop controlling temperature
	// directly is reverse-acting).
	Reverse bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.OutMax <= c.OutMin {
		return fmt.Errorf("pid: OutMax (%v) must exceed OutMin (%v)", c.OutMax, c.OutMin)
	}
	if c.Kp < 0 || c.Ki < 0 || c.Kd < 0 {
		return fmt.Errorf("pid: gains must be non-negative (kp=%v ki=%v kd=%v)", c.Kp, c.Ki, c.Kd)
	}
	if c.Kp == 0 && c.Ki == 0 && c.Kd == 0 {
		return fmt.Errorf("pid: at least one gain must be positive")
	}
	return nil
}

// Controller is a discrete PID controller. Construct with New; the zero
// value is not usable.
type Controller struct {
	cfg Config

	setpoint float64
	integral float64
	prevMeas float64
	hasPrev  bool
	frozen   bool
	lastOut  float64
}

// New returns a controller for the given configuration.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg, lastOut: cfg.OutMin}, nil
}

// Must is New that panics on error, for compile-time-constant configs.
func Must(cfg Config) *Controller {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// SetSetpoint updates the control target.
func (c *Controller) SetSetpoint(sp float64) { c.setpoint = sp }

// Setpoint returns the current control target.
func (c *Controller) Setpoint() float64 { return c.setpoint }

// Output returns the most recently computed output without advancing the
// controller.
func (c *Controller) Output() float64 { return c.lastOut }

// SetIntegratorFrozen holds the integral state constant across Update
// calls while on. Degradation logic freezes the integrator when the
// measurement feeding the loop has gone stale: a held (repeated) reading
// carries a persistent error that would otherwise wind the integrator
// toward an actuator extreme the real process never asked for. P and D
// action remain live so control resumes cleanly when the input returns.
func (c *Controller) SetIntegratorFrozen(on bool) { c.frozen = on }

// IntegratorFrozen reports whether the integrator is currently held.
func (c *Controller) IntegratorFrozen() bool { return c.frozen }

// Reset clears the integrator and derivative history, e.g. after a long
// actuator outage.
func (c *Controller) Reset() {
	c.integral = 0
	c.hasPrev = false
	c.lastOut = c.cfg.OutMin
}

// Update advances the controller by dt seconds given the latest process
// measurement and returns the clamped actuator command. dt must be
// positive; non-positive dt returns the previous output unchanged.
func (c *Controller) Update(measurement, dt float64) float64 {
	if dt <= 0 || math.IsNaN(measurement) {
		return c.lastOut
	}
	errv := c.setpoint - measurement
	if c.cfg.Reverse {
		errv = -errv
	}

	p := c.cfg.Kp * errv

	// Derivative on measurement: -Kd * d(meas)/dt (sign folded into errv
	// convention via Reverse).
	var d float64
	if c.hasPrev && c.cfg.Kd > 0 {
		dMeas := (measurement - c.prevMeas) / dt
		if c.cfg.Reverse {
			d = c.cfg.Kd * dMeas
		} else {
			d = -c.cfg.Kd * dMeas
		}
	}
	c.prevMeas = measurement
	c.hasPrev = true

	// Tentative integral advance with conditional anti-windup: only
	// integrate if the unsaturated output is inside limits, or the error
	// drives the output back toward the valid range. An externally frozen
	// integrator (stale input) skips the advance entirely.
	if !c.frozen {
		tentative := c.integral + c.cfg.Ki*errv*dt
		unsat := p + tentative + d
		switch {
		case unsat > c.cfg.OutMax && errv > 0:
			// would deepen high saturation: freeze integrator
		case unsat < c.cfg.OutMin && errv < 0:
			// would deepen low saturation: freeze integrator
		default:
			c.integral = tentative
		}
	}

	out := p + c.integral + d
	if out > c.cfg.OutMax {
		out = c.cfg.OutMax
	} else if out < c.cfg.OutMin {
		out = c.cfg.OutMin
	}
	c.lastOut = out
	return out
}
