package pid

// State is a Controller's mutable state, exported for digital-twin
// snapshots. The configuration is not part of the state: restore targets a
// controller rebuilt from the same config.
//
//bzlint:state ExportState RestoreState
type State struct {
	Setpoint float64
	Integral float64
	PrevMeas float64
	HasPrev  bool
	Frozen   bool
	LastOut  float64
}

// ExportState captures the controller's mutable state.
func (c *Controller) ExportState() State {
	return State{
		Setpoint: c.setpoint,
		Integral: c.integral,
		PrevMeas: c.prevMeas,
		HasPrev:  c.hasPrev,
		Frozen:   c.frozen,
		LastOut:  c.lastOut,
	}
}

// RestoreState overwrites the controller's mutable state.
func (c *Controller) RestoreState(st State) {
	c.setpoint = st.Setpoint
	c.integral = st.Integral
	c.prevMeas = st.PrevMeas
	c.hasPrev = st.HasPrev
	c.frozen = st.Frozen
	c.lastOut = st.LastOut
}
