package multihop

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"bubblezero/internal/wsn"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(7, 11)) }

func newNet(t *testing.T, mutate ...func(*Config)) *Network {
	t.Helper()
	cfg := DefaultConfig()
	cfg.LossFloor = 0
	for _, m := range mutate {
		m(&cfg)
	}
	n, err := NewNetwork(cfg, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// lineTopology builds a chain of nodes spaced 10 m apart (range 12 m, so
// only neighbours hear each other): a0 — a1 — ... — a(k-1).
func lineTopology(t *testing.T, n *Network, k int) {
	t.Helper()
	for i := 0; i < k; i++ {
		id := wsn.NodeID(fmt.Sprintf("a%d", i))
		if _, err := n.AddNode(id, float64(i)*10, 0, wsn.PowerAC); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.RangeM = 0 },
		func(c *Config) { c.AirtimeS = 0 },
		func(c *Config) { c.CCABlindS = 1 },
		func(c *Config) { c.LossFloor = 1 },
		func(c *Config) { c.TTL = 0 },
		func(c *Config) { c.Routing = 0 },
		func(c *Config) { c.TickS = 0 },
	}
	for i, m := range mutations {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate", i)
		}
	}
	if _, err := NewNetwork(DefaultConfig(), nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestRoutingString(t *testing.T) {
	if RoutingFlood.String() != "flood" || RoutingMesh.String() != "type-mesh" {
		t.Error("routing names wrong")
	}
	if Routing(99).String() == "" {
		t.Error("unknown routing should render")
	}
}

func TestAddNodeAndLookup(t *testing.T) {
	n := newNet(t)
	node, err := n.AddNode("s1", 3, 4, wsn.PowerBattery)
	if err != nil {
		t.Fatal(err)
	}
	if x, y := node.Position(); x != 3 || y != 4 {
		t.Errorf("position = (%v,%v)", x, y)
	}
	if node.Battery() == nil {
		t.Error("battery node lacks battery")
	}
	if n.Node("s1") != node || n.Node("nope") != nil {
		t.Error("lookup broken")
	}
	if _, err := n.AddNode("s1", 0, 0, wsn.PowerAC); err == nil {
		t.Error("duplicate accepted")
	}
	if n.NodeCount() != 1 {
		t.Errorf("NodeCount = %d", n.NodeCount())
	}
}

func TestDeclareUnknownNode(t *testing.T) {
	n := newNet(t)
	if err := n.DeclareProducer("ghost", wsn.MsgTemperature); err == nil {
		t.Error("unknown producer accepted")
	}
	if err := n.DeclareConsumer("ghost", wsn.MsgTemperature); err == nil {
		t.Error("unknown consumer accepted")
	}
}

func TestPublishValidation(t *testing.T) {
	n := newNet(t)
	if _, err := n.AddNode("s1", 0, 0, wsn.PowerAC); err != nil {
		t.Fatal(err)
	}
	if err := n.Publish("ghost", wsn.Message{Type: wsn.MsgTemperature}); err == nil {
		t.Error("publish from unknown node accepted")
	}
	if err := n.Publish("s1", wsn.Message{Type: wsn.MsgTemperature}); err == nil {
		t.Error("publish of undeclared type accepted")
	}
}

func TestSingleHopDelivery(t *testing.T) {
	n := newNet(t)
	lineTopology(t, n, 2)
	if err := n.DeclareProducer("a0", wsn.MsgTemperature); err != nil {
		t.Fatal(err)
	}
	if err := n.DeclareConsumer("a1", wsn.MsgTemperature); err != nil {
		t.Fatal(err)
	}
	var got []wsn.Message
	n.OnDeliver(func(c wsn.NodeID, m wsn.Message, hops int) {
		if c != "a1" || hops != 1 {
			t.Errorf("delivery to %s after %d hops", c, hops)
		}
		got = append(got, m)
	})
	if err := n.Publish("a0", wsn.Message{Type: wsn.MsgTemperature, Value: 25}); err != nil {
		t.Fatal(err)
	}
	n.RunUntilQuiet(10)
	if len(got) != 1 || got[0].Value != 25 {
		t.Fatalf("deliveries = %v", got)
	}
	if n.Stats().DeliveryRatio() != 1 {
		t.Errorf("delivery ratio %v", n.Stats().DeliveryRatio())
	}
}

func TestMultiHopChainDelivery(t *testing.T) {
	const k = 6
	for _, routing := range []Routing{RoutingFlood, RoutingMesh} {
		n := newNet(t, func(c *Config) { c.Routing = routing; c.TTL = k })
		lineTopology(t, n, k)
		if err := n.DeclareProducer("a0", wsn.MsgHumidity); err != nil {
			t.Fatal(err)
		}
		if err := n.DeclareConsumer(wsn.NodeID(fmt.Sprintf("a%d", k-1)), wsn.MsgHumidity); err != nil {
			t.Fatal(err)
		}
		if !n.Connected() {
			t.Fatalf("%v: chain should be connected", routing)
		}
		delivered := false
		hops := 0
		n.OnDeliver(func(c wsn.NodeID, m wsn.Message, h int) {
			delivered = true
			hops = h
		})
		if err := n.Publish("a0", wsn.Message{Type: wsn.MsgHumidity, Value: 60}); err != nil {
			t.Fatal(err)
		}
		n.RunUntilQuiet(2 * k)
		if !delivered {
			t.Fatalf("%v: message never crossed the chain", routing)
		}
		if hops != k-1 {
			t.Errorf("%v: hops = %d, want %d", routing, hops, k-1)
		}
	}
}

func TestTTLBoundsPropagation(t *testing.T) {
	n := newNet(t, func(c *Config) { c.TTL = 3 })
	lineTopology(t, n, 6)
	if err := n.DeclareProducer("a0", wsn.MsgCO2); err != nil {
		t.Fatal(err)
	}
	if err := n.DeclareConsumer("a5", wsn.MsgCO2); err != nil {
		t.Fatal(err)
	}
	delivered := false
	n.OnDeliver(func(wsn.NodeID, wsn.Message, int) { delivered = true })
	if err := n.Publish("a0", wsn.Message{Type: wsn.MsgCO2, Value: 500}); err != nil {
		t.Fatal(err)
	}
	n.RunUntilQuiet(20)
	if delivered {
		t.Error("TTL 3 should not reach 5 hops away")
	}
}

func TestMeshForwardsOnlyOnPath(t *testing.T) {
	// A 3×10m grid: producer at one corner, consumer at the opposite end
	// of the same row; the other rows should not be in the mesh.
	n := newNet(t)
	for row := 0; row < 3; row++ {
		for col := 0; col < 4; col++ {
			id := wsn.NodeID(fmt.Sprintf("n%d-%d", row, col))
			if _, err := n.AddNode(id, float64(col)*10, float64(row)*10, wsn.PowerAC); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := n.DeclareProducer("n0-0", wsn.MsgTemperature); err != nil {
		t.Fatal(err)
	}
	if err := n.DeclareConsumer("n0-3", wsn.MsgTemperature); err != nil {
		t.Fatal(err)
	}
	size := n.MeshSize(wsn.MsgTemperature)
	// The shortest row path has 4 nodes; diagonal alternatives don't
	// exist at 10 m spacing with 12 m range, so the mesh is exactly it.
	if size != 4 {
		t.Errorf("mesh size = %d, want 4 (the producer row)", size)
	}
}

func TestMeshCheaperThanFloodSameDelivery(t *testing.T) {
	build := func(routing Routing) Stats {
		n := newNet(t, func(c *Config) { c.Routing = routing; c.TTL = 10 })
		// 5×5 grid, 10 m pitch.
		for r := 0; r < 5; r++ {
			for c := 0; c < 5; c++ {
				id := wsn.NodeID(fmt.Sprintf("g%d-%d", r, c))
				if _, err := n.AddNode(id, float64(c)*10, float64(r)*10, wsn.PowerAC); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Same-row endpoints: corner-to-corner would put every grid node
		// on some shortest (monotone) path, leaving nothing to prune.
		if err := n.DeclareProducer("g0-0", wsn.MsgTemperature); err != nil {
			t.Fatal(err)
		}
		if err := n.DeclareConsumer("g0-4", wsn.MsgTemperature); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if err := n.Publish("g0-0", wsn.Message{Type: wsn.MsgTemperature, Value: float64(i)}); err != nil {
				t.Fatal(err)
			}
			n.RunUntilQuiet(40)
		}
		return n.Stats()
	}
	flood := build(RoutingFlood)
	mesh := build(RoutingMesh)
	if mesh.DeliveryRatio() < 0.9 {
		t.Errorf("mesh delivery ratio %.2f, want >= 0.9", mesh.DeliveryRatio())
	}
	if flood.DeliveryRatio() < 0.9 {
		t.Errorf("flood delivery ratio %.2f, want >= 0.9", flood.DeliveryRatio())
	}
	if mesh.Transmissions >= flood.Transmissions {
		t.Errorf("mesh transmissions %d >= flood %d; mesh should prune",
			mesh.Transmissions, flood.Transmissions)
	}
	if mesh.TxPerDelivery() >= flood.TxPerDelivery() {
		t.Errorf("mesh cost %.1f tx/delivery >= flood %.1f",
			mesh.TxPerDelivery(), flood.TxPerDelivery())
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// Triangle: every node hears both others, so flooding creates
	// duplicates that the seen-cache must absorb.
	n := newNet(t, func(c *Config) { c.Routing = RoutingFlood })
	for i, pos := range [][2]float64{{0, 0}, {8, 0}, {4, 6}} {
		if _, err := n.AddNode(wsn.NodeID(fmt.Sprintf("t%d", i)), pos[0], pos[1], wsn.PowerAC); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.DeclareProducer("t0", wsn.MsgTemperature); err != nil {
		t.Fatal(err)
	}
	if err := n.DeclareConsumer("t2", wsn.MsgTemperature); err != nil {
		t.Fatal(err)
	}
	deliveries := 0
	n.OnDeliver(func(wsn.NodeID, wsn.Message, int) { deliveries++ })
	if err := n.Publish("t0", wsn.Message{Type: wsn.MsgTemperature, Value: 1}); err != nil {
		t.Fatal(err)
	}
	n.RunUntilQuiet(10)
	if deliveries != 1 {
		t.Errorf("consumer delivered %d times, want exactly 1", deliveries)
	}
	if n.Stats().DuplicatesSuppressed == 0 {
		t.Error("triangle flood should suppress duplicates")
	}
}

func TestDisconnectedTopology(t *testing.T) {
	n := newNet(t)
	if _, err := n.AddNode("far1", 0, 0, wsn.PowerAC); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddNode("far2", 1000, 0, wsn.PowerAC); err != nil {
		t.Fatal(err)
	}
	if err := n.DeclareProducer("far1", wsn.MsgTemperature); err != nil {
		t.Fatal(err)
	}
	if err := n.DeclareConsumer("far2", wsn.MsgTemperature); err != nil {
		t.Fatal(err)
	}
	if n.Connected() {
		t.Error("1 km apart with 12 m range should be disconnected")
	}
	if err := n.Publish("far1", wsn.Message{Type: wsn.MsgTemperature, Value: 1}); err != nil {
		t.Fatal(err)
	}
	n.RunUntilQuiet(20)
	if n.Stats().Delivered != 0 {
		t.Error("message crossed a disconnected gap")
	}
}

func TestBatteryDrainOnForward(t *testing.T) {
	n := newNet(t)
	lineTopology(t, n, 2)
	relay, err := n.AddNode("relay", 5, 1, wsn.PowerBattery)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.DeclareProducer("a0", wsn.MsgTemperature); err != nil {
		t.Fatal(err)
	}
	if err := n.DeclareConsumer("a1", wsn.MsgTemperature); err != nil {
		t.Fatal(err)
	}
	// The relay sits between them and (in flood mode) forwards.
	nf := newNet(t, func(c *Config) { c.Routing = RoutingFlood })
	_ = nf
	cfgChange := relay.Battery().UsedJ()
	if cfgChange != 0 {
		t.Errorf("fresh battery used %v", cfgChange)
	}
	if err := n.Publish("a0", wsn.Message{Type: wsn.MsgTemperature, Value: 1}); err != nil {
		t.Fatal(err)
	}
	n.RunUntilQuiet(10)
	// In mesh mode the relay is on a shortest path (a0→a1 direct is also
	// 1 hop; the relay may or may not forward). The assertion here is
	// only that battery accounting happens when it does transmit.
	if relay.Battery().UsedJ() < 0 {
		t.Error("battery accounting went negative")
	}
}

func TestStatsHelpersEmpty(t *testing.T) {
	var s Stats
	if s.DeliveryRatio() != 0 || s.AvgHops() != 0 {
		t.Error("empty stats should be zero")
	}
	if !isInf(s.TxPerDelivery()) {
		t.Error("TxPerDelivery on empty stats should be +Inf")
	}
}

func isInf(f float64) bool { return f > 1e308 }

// Property: on a connected line with flood routing and lossless links,
// every publish reaches the far consumer within 2k ticks.
func TestLineAlwaysDeliversProperty(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := int(kRaw%5) + 2
		n, err := NewNetwork(Config{
			RangeM: 12, AirtimeS: 0.0043, CCABlindS: 0.0005,
			TTL: k + 1, Routing: RoutingFlood, TickS: 1,
		}, testRNG())
		if err != nil {
			return false
		}
		for i := 0; i < k; i++ {
			if _, err := n.AddNode(wsn.NodeID(fmt.Sprintf("a%d", i)), float64(i)*10, 0, wsn.PowerAC); err != nil {
				return false
			}
		}
		if err := n.DeclareProducer("a0", wsn.MsgTemperature); err != nil {
			return false
		}
		if err := n.DeclareConsumer(wsn.NodeID(fmt.Sprintf("a%d", k-1)), wsn.MsgTemperature); err != nil {
			return false
		}
		if err := n.Publish("a0", wsn.Message{Type: wsn.MsgTemperature, Value: 1}); err != nil {
			return false
		}
		n.RunUntilQuiet(2 * k)
		return n.Stats().Delivered == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestWingConfigValidate(t *testing.T) {
	if err := DefaultWing().Validate(); err != nil {
		t.Fatalf("default wing invalid: %v", err)
	}
	bad := []WingConfig{
		{Floors: 0, RoomsPerSide: 5, RoomPitchM: 8, FloorSepM: 20},
		{Floors: 3, RoomsPerSide: 0, RoomPitchM: 8, FloorSepM: 20},
		{Floors: 3, RoomsPerSide: 5, RoomPitchM: 0, FloorSepM: 20},
		{Floors: 3, RoomsPerSide: 5, RoomPitchM: 8, FloorSepM: 0},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("wing %d should be invalid", i)
		}
	}
}

func TestBuildWingConnectedAndSized(t *testing.T) {
	wing := DefaultWing()
	cfg := DefaultConfig()
	cfg.TTL = 12
	net, err := BuildWing(cfg, wing, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	// 3 floors × (10 motes + 1 controller) + 2 stair relays + supervisor.
	want := wing.Floors*(wing.RoomsPerSide*2+1) + (wing.Floors - 1) + 1
	if got := net.NodeCount(); got != want {
		t.Errorf("node count = %d, want %d", got, want)
	}
	if !net.Connected() {
		t.Error("reference wing must be radio-connected")
	}
}

func TestWingWorkloadMeshVsFlood(t *testing.T) {
	results := make(map[Routing]Stats)
	for _, routing := range []Routing{RoutingFlood, RoutingMesh} {
		cfg := DefaultConfig()
		cfg.Routing = routing
		cfg.TTL = 12
		net, err := BuildWing(cfg, DefaultWing(), testRNG())
		if err != nil {
			t.Fatal(err)
		}
		st, err := RunWingWorkload(net, DefaultWing(), 10)
		if err != nil {
			t.Fatal(err)
		}
		results[routing] = st
	}
	for routing, st := range results {
		if st.DeliveryRatio() < 0.9 {
			t.Errorf("%v delivery %.2f, want >= 0.9", routing, st.DeliveryRatio())
		}
	}
	if results[RoutingMesh].TxPerDelivery() >= results[RoutingFlood].TxPerDelivery() {
		t.Errorf("mesh cost %.2f >= flood %.2f tx/delivery",
			results[RoutingMesh].TxPerDelivery(), results[RoutingFlood].TxPerDelivery())
	}
}

func TestWingBatteryMotesDrain(t *testing.T) {
	wing := DefaultWing()
	cfg := DefaultConfig()
	net, err := BuildWing(cfg, wing, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWingWorkload(net, wing, 3); err != nil {
		t.Fatal(err)
	}
	mote := net.Node(wing.TempMote(0, 0))
	if mote == nil || mote.Battery() == nil {
		t.Fatal("room mote missing or AC-powered")
	}
	if mote.Battery().UsedJ() <= 0 {
		t.Error("publishing mote battery did not drain")
	}
}
