// Package multihop implements the paper's stated future work (§IV-A,
// §VII): extending BubbleZERO's type-addressed broadcast design to
// building-scale, multi-hop 802.15.4 networks by "forming 'type' based
// multicast groups and routing messages with existing ad-hoc multicast
// approaches".
//
// Nodes live on a 2D plane with a limited radio range. Producers declare
// the message types they publish and consumers the types they need; from
// that static interest graph the network derives, per type, a multicast
// mesh — the union of shortest paths from every producer to every consumer
// — and packets are forwarded only by mesh members. A TTL-limited flooding
// mode serves as the baseline, exactly the comparison a deployment would
// run before choosing a protocol.
//
// The medium model mirrors internal/wsn (per-tick airtime contention with
// a carrier-sense blind window) but with spatial reuse: only transmissions
// within range of a common receiver interfere.
package multihop

import (
	"fmt"
	"math"
	"math/rand/v2"

	"bubblezero/internal/energy"
	"bubblezero/internal/wsn"
)

// Routing selects the forwarding strategy.
type Routing int

// Routing modes.
const (
	// RoutingFlood forwards every packet at every node until the TTL
	// expires — the baseline.
	RoutingFlood Routing = iota + 1
	// RoutingMesh forwards only at nodes on a shortest path between some
	// producer and some consumer of the packet's type.
	RoutingMesh
)

// String implements fmt.Stringer.
func (r Routing) String() string {
	switch r {
	case RoutingFlood:
		return "flood"
	case RoutingMesh:
		return "type-mesh"
	default:
		return fmt.Sprintf("routing(%d)", int(r))
	}
}

// Config parameterises the multihop network.
type Config struct {
	// RangeM is the radio range in metres (the paper quotes ≈50 m
	// reliable indoor range for TelosB; building deployments see much
	// less through walls and floors).
	RangeM float64
	// AirtimeS and CCABlindS mirror the single-hop medium model.
	AirtimeS  float64
	CCABlindS float64
	// LossFloor is the independent per-link loss probability.
	LossFloor float64
	// TTL bounds flooding; mesh forwarding also respects it.
	TTL int
	// Routing selects the forwarding strategy.
	Routing Routing
	// TickS is the slot length within which contention is resolved.
	TickS float64
}

// DefaultConfig returns a building-scale parameterisation.
func DefaultConfig() Config {
	return Config{
		RangeM:    12,
		AirtimeS:  0.0043,
		CCABlindS: 0.0005,
		LossFloor: 0.01,
		TTL:       8,
		Routing:   RoutingMesh,
		TickS:     1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.RangeM <= 0:
		return fmt.Errorf("multihop: RangeM must be > 0, got %v", c.RangeM)
	case c.AirtimeS <= 0:
		return fmt.Errorf("multihop: AirtimeS must be > 0, got %v", c.AirtimeS)
	case c.CCABlindS < 0 || c.CCABlindS > c.AirtimeS:
		return fmt.Errorf("multihop: CCABlindS must be in [0, AirtimeS]")
	case c.LossFloor < 0 || c.LossFloor >= 1:
		return fmt.Errorf("multihop: LossFloor must be in [0, 1), got %v", c.LossFloor)
	case c.TTL < 1:
		return fmt.Errorf("multihop: TTL must be >= 1, got %d", c.TTL)
	case c.Routing != RoutingFlood && c.Routing != RoutingMesh:
		return fmt.Errorf("multihop: invalid routing %d", c.Routing)
	case c.TickS <= 0:
		return fmt.Errorf("multihop: TickS must be > 0, got %v", c.TickS)
	}
	return nil
}

// Node is a mote with a position.
type Node struct {
	id      wsn.NodeID
	x, y    float64
	class   wsn.PowerClass
	battery *energy.Battery

	produces map[wsn.MsgType]bool
	consumes map[wsn.MsgType]bool

	seq  uint32
	seen map[packetKey]bool
}

// ID returns the node identifier.
func (n *Node) ID() wsn.NodeID { return n.id }

// Position returns the node coordinates in metres.
func (n *Node) Position() (x, y float64) { return n.x, n.y }

// Battery returns the node battery (nil for AC nodes).
func (n *Node) Battery() *energy.Battery { return n.battery }

type packetKey struct {
	src wsn.NodeID
	seq uint32
}

// packet is an in-flight frame.
type packet struct {
	msg     wsn.Message
	ttl     int
	carrier *Node // current transmitter
	hops    int
}

// Stats aggregates network counters.
type Stats struct {
	// Originated counts application-level messages injected.
	Originated int
	// Transmissions counts every frame put on the air (including
	// forwards) — the energy-relevant figure.
	Transmissions int
	// Delivered counts (message, consumer) pairs that received the
	// message at least once.
	Delivered int
	// Wanted counts (message, consumer) pairs that should have received
	// it.
	Wanted int
	// DuplicatesSuppressed counts receptions dropped by the seen-cache.
	DuplicatesSuppressed int
	// Collisions counts frames corrupted by interference.
	Collisions int
	// TotalHops accumulates the hop count of first deliveries.
	TotalHops int
}

// DeliveryRatio returns delivered/wanted.
func (s Stats) DeliveryRatio() float64 {
	if s.Wanted == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(s.Wanted)
}

// AvgHops returns the mean hop count of first deliveries.
func (s Stats) AvgHops() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalHops) / float64(s.Delivered)
}

// TxPerDelivery returns the energy-proportional cost: transmissions per
// delivered (message, consumer) pair.
func (s Stats) TxPerDelivery() float64 {
	if s.Delivered == 0 {
		return math.Inf(1)
	}
	return float64(s.Transmissions) / float64(s.Delivered)
}

// Network is the building-scale multihop medium.
type Network struct {
	cfg   Config
	rng   *rand.Rand
	nodes []*Node
	byID  map[wsn.NodeID]*Node

	// adjacency[i] lists indices of nodes within radio range of node i.
	adjacency [][]int
	adjDirty  bool

	// mesh[t] is the set of node indices that forward type t.
	mesh map[wsn.MsgType]map[int]bool

	// queue holds frames awaiting their transmission slot (next tick).
	queue []packet
	// deliveredTo tracks which consumers already got each message.
	deliveredTo map[packetKey]map[wsn.NodeID]bool

	onDeliver func(consumer wsn.NodeID, msg wsn.Message, hops int)
	stats     Stats
}

// NewNetwork builds an empty multihop network.
func NewNetwork(cfg Config, rng *rand.Rand) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("multihop: rng must not be nil")
	}
	return &Network{
		cfg:         cfg,
		rng:         rng,
		byID:        make(map[wsn.NodeID]*Node),
		mesh:        make(map[wsn.MsgType]map[int]bool),
		deliveredTo: make(map[packetKey]map[wsn.NodeID]bool),
	}, nil
}

// AddNode places a mote at (x, y) metres.
func (n *Network) AddNode(id wsn.NodeID, x, y float64, class wsn.PowerClass) (*Node, error) {
	if _, exists := n.byID[id]; exists {
		return nil, fmt.Errorf("multihop: duplicate node %q", id)
	}
	node := &Node{
		id: id, x: x, y: y, class: class,
		produces: make(map[wsn.MsgType]bool),
		consumes: make(map[wsn.MsgType]bool),
		seen:     make(map[packetKey]bool),
	}
	if class == wsn.PowerBattery {
		node.battery = energy.NewTwoAA()
	}
	n.nodes = append(n.nodes, node)
	n.byID[id] = node
	n.adjDirty = true
	return node, nil
}

// Node returns a registered node by ID, or nil.
func (n *Network) Node(id wsn.NodeID) *Node { return n.byID[id] }

// NodeCount returns the number of nodes.
func (n *Network) NodeCount() int { return len(n.nodes) }

// DeclareProducer registers that node publishes msgs of the given types.
func (n *Network) DeclareProducer(id wsn.NodeID, types ...wsn.MsgType) error {
	node, ok := n.byID[id]
	if !ok {
		return fmt.Errorf("multihop: unknown producer %q", id)
	}
	for _, t := range types {
		node.produces[t] = true
	}
	n.mesh = make(map[wsn.MsgType]map[int]bool) // invalidate
	return nil
}

// DeclareConsumer registers that node needs msgs of the given types.
func (n *Network) DeclareConsumer(id wsn.NodeID, types ...wsn.MsgType) error {
	node, ok := n.byID[id]
	if !ok {
		return fmt.Errorf("multihop: unknown consumer %q", id)
	}
	for _, t := range types {
		node.consumes[t] = true
	}
	n.mesh = make(map[wsn.MsgType]map[int]bool)
	return nil
}

// OnDeliver registers the application-delivery callback.
func (n *Network) OnDeliver(fn func(consumer wsn.NodeID, msg wsn.Message, hops int)) {
	n.onDeliver = fn
}

// Stats returns the cumulative counters.
func (n *Network) Stats() Stats { return n.stats }

// rebuildAdjacency recomputes the connectivity graph.
func (n *Network) rebuildAdjacency() {
	n.adjacency = make([][]int, len(n.nodes))
	r2 := n.cfg.RangeM * n.cfg.RangeM
	for i, a := range n.nodes {
		for j, b := range n.nodes {
			if i == j {
				continue
			}
			dx, dy := a.x-b.x, a.y-b.y
			if dx*dx+dy*dy <= r2 {
				n.adjacency[i] = append(n.adjacency[i], j)
			}
		}
	}
	n.adjDirty = false
}

// Connected reports whether every consumer of every produced type is
// reachable from some producer of that type.
func (n *Network) Connected() bool {
	if n.adjDirty {
		n.rebuildAdjacency()
	}
	//bzlint:ordered pure for-all predicate; the result is independent of type visit order
	for t := range n.producedTypes() {
		dist := n.bfsFromProducers(t)
		for i, node := range n.nodes {
			if node.consumes[t] && dist[i] < 0 {
				return false
			}
		}
	}
	return true
}

func (n *Network) producedTypes() map[wsn.MsgType]bool {
	out := make(map[wsn.MsgType]bool)
	for _, node := range n.nodes {
		//bzlint:ordered commutative set union into out
		for t := range node.produces {
			out[t] = true
		}
	}
	return out
}

// bfsFromProducers returns hop distances from the producer set of type t
// (-1 = unreachable).
func (n *Network) bfsFromProducers(t wsn.MsgType) []int {
	dist := make([]int, len(n.nodes))
	for i := range dist {
		dist[i] = -1
	}
	var frontier []int
	for i, node := range n.nodes {
		if node.produces[t] {
			dist[i] = 0
			frontier = append(frontier, i)
		}
	}
	for len(frontier) > 0 {
		var next []int
		for _, i := range frontier {
			for _, j := range n.adjacency[i] {
				if dist[j] < 0 {
					dist[j] = dist[i] + 1
					next = append(next, j)
				}
			}
		}
		frontier = next
	}
	return dist
}

// bfsFrom returns hop distances from a single node (-1 = unreachable).
func (n *Network) bfsFrom(start int) []int {
	dist := make([]int, len(n.nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	frontier := []int{start}
	for len(frontier) > 0 {
		var next []int
		for _, i := range frontier {
			for _, j := range n.adjacency[i] {
				if dist[j] < 0 {
					dist[j] = dist[i] + 1
					next = append(next, j)
				}
			}
		}
		frontier = next
	}
	return dist
}

// meshFor lazily computes the type-t multicast mesh as the union, over
// every (producer, consumer) pair of the type, of the nodes on some
// shortest path between them: i is included iff
// dist_p[i] + dist_c[i] == dist_p[c].
func (n *Network) meshFor(t wsn.MsgType) map[int]bool {
	if m, ok := n.mesh[t]; ok {
		return m
	}
	if n.adjDirty {
		n.rebuildAdjacency()
	}
	m := make(map[int]bool)
	consumerDist := make(map[int][]int)
	for ci, cn := range n.nodes {
		if cn.consumes[t] {
			consumerDist[ci] = n.bfsFrom(ci)
		}
	}
	for pi, pn := range n.nodes {
		if !pn.produces[t] {
			continue
		}
		dp := n.bfsFrom(pi)
		//bzlint:ordered commutative set union into m; each (producer, consumer) pair contributes independently
		for ci, dc := range consumerDist {
			target := dp[ci]
			if target < 0 {
				continue
			}
			for i := range n.nodes {
				if dp[i] >= 0 && dc[i] >= 0 && dp[i]+dc[i] == target {
					m[i] = true
				}
			}
		}
	}
	n.mesh[t] = m
	return m
}

// MeshSize returns the number of forwarders for a type (diagnostics).
func (n *Network) MeshSize(t wsn.MsgType) int { return len(n.meshFor(t)) }

// Publish injects an application message from the named producer. The
// frame goes on the air in the next Step.
func (n *Network) Publish(id wsn.NodeID, msg wsn.Message) error {
	node, ok := n.byID[id]
	if !ok {
		return fmt.Errorf("multihop: unknown node %q", id)
	}
	if !node.produces[msg.Type] {
		return fmt.Errorf("multihop: node %q does not produce %v", id, msg.Type)
	}
	node.seq++
	msg.Source = id
	msg.Seq = node.seq
	n.stats.Originated++
	// Count the consumers that should see it.
	for _, c := range n.nodes {
		if c != node && c.consumes[msg.Type] {
			n.stats.Wanted++
		}
	}
	n.queue = append(n.queue, packet{msg: msg, ttl: n.cfg.TTL, carrier: node})
	return nil
}

// Step advances one tick: every queued frame is transmitted within the
// slot, contention is resolved per receiver neighbourhood, receivers
// dedupe, deliver, and (per the routing policy) enqueue forwards for the
// next tick.
func (n *Network) Step() {
	if len(n.queue) == 0 {
		return
	}
	if n.adjDirty {
		n.rebuildAdjacency()
	}
	frames := n.queue
	n.queue = nil

	// Assign transmission offsets within the tick.
	slots := make([]txSlot, 0, len(frames))
	for _, p := range frames {
		sender := n.indexOf(p.carrier)
		if sender < 0 {
			continue
		}
		if b := p.carrier.battery; b != nil {
			if b.Depleted() {
				continue
			}
			b.Drain(energy.TxEnergyPerPacketJ)
		}
		slots = append(slots, txSlot{
			pkt:    p,
			sender: sender,
			start:  n.rng.Float64() * n.cfg.TickS,
		})
		n.stats.Transmissions++
	}

	// Per-receiver interference: a reception fails if two in-range
	// transmissions overlap within the CCA blind window at that receiver.
	for _, s := range slots {
		for _, ri := range n.adjacency[s.sender] {
			receiver := n.nodes[ri]
			if n.interferedAt(ri, s, slots) {
				n.stats.Collisions++
				continue
			}
			if n.cfg.LossFloor > 0 && n.rng.Float64() < n.cfg.LossFloor {
				continue
			}
			n.receive(receiver, s.pkt)
		}
	}
}

// txSlot is one transmission attempt within the current tick.
type txSlot struct {
	pkt    packet
	sender int
	start  float64
}

// interferedAt reports whether slot s is corrupted at receiver ri by
// another overlapping transmission audible there.
func (n *Network) interferedAt(ri int, s txSlot, slots []txSlot) bool {
	for _, o := range slots {
		if o.sender == s.sender {
			continue
		}
		if !n.inRange(o.sender, ri) && o.sender != ri {
			continue
		}
		if math.Abs(o.start-s.start) < n.cfg.AirtimeS {
			return true
		}
	}
	return false
}

func (n *Network) inRange(i, j int) bool {
	for _, k := range n.adjacency[i] {
		if k == j {
			return true
		}
	}
	return false
}

func (n *Network) indexOf(node *Node) int {
	for i, c := range n.nodes {
		if c == node {
			return i
		}
	}
	return -1
}

// receive handles a successfully decoded frame at a node.
func (n *Network) receive(node *Node, p packet) {
	key := packetKey{src: p.msg.Source, seq: p.msg.Seq}
	if node.seen[key] {
		n.stats.DuplicatesSuppressed++
		return
	}
	node.seen[key] = true

	hops := p.hops + 1
	if node.consumes[p.msg.Type] {
		dset := n.deliveredTo[key]
		if dset == nil {
			dset = make(map[wsn.NodeID]bool)
			n.deliveredTo[key] = dset
		}
		if !dset[node.id] {
			dset[node.id] = true
			n.stats.Delivered++
			n.stats.TotalHops += hops
			if n.onDeliver != nil {
				n.onDeliver(node.id, p.msg, hops)
			}
		}
	}

	// Forwarding decision.
	if p.ttl <= 1 {
		return
	}
	forward := false
	switch n.cfg.Routing {
	case RoutingFlood:
		forward = true
	case RoutingMesh:
		idx := n.indexOf(node)
		forward = idx >= 0 && n.meshFor(p.msg.Type)[idx]
	}
	if !forward {
		return
	}
	n.queue = append(n.queue, packet{
		msg:     p.msg,
		ttl:     p.ttl - 1,
		carrier: node,
		hops:    hops,
	})
}

// RunUntilQuiet steps the network until no frames remain or maxTicks is
// reached, returning the number of ticks consumed.
func (n *Network) RunUntilQuiet(maxTicks int) int {
	ticks := 0
	for len(n.queue) > 0 && ticks < maxTicks {
		n.Step()
		ticks++
	}
	return ticks
}
