package multihop

import (
	"fmt"
	"math/rand/v2"

	"bubblezero/internal/wsn"
)

// WingConfig describes the reference building-wing topology used by the
// building-level evaluation: floors stacked FloorSepM apart, RoomsPerSide
// rooms along each corridor, two battery motes per room (temperature and
// humidity), an AC controller per floor, stairwell relays between floors,
// and a supervisor consuming everything on the ground floor.
type WingConfig struct {
	Floors       int
	RoomsPerSide int
	RoomPitchM   float64
	FloorSepM    float64
}

// DefaultWing returns the three-floor reference wing.
func DefaultWing() WingConfig {
	return WingConfig{Floors: 3, RoomsPerSide: 5, RoomPitchM: 8, FloorSepM: 20}
}

// Validate checks the wing parameters.
func (w WingConfig) Validate() error {
	if w.Floors < 1 || w.RoomsPerSide < 1 {
		return fmt.Errorf("multihop: wing needs >= 1 floor and room, got %d×%d",
			w.Floors, w.RoomsPerSide)
	}
	if w.RoomPitchM <= 0 || w.FloorSepM <= 0 {
		return fmt.Errorf("multihop: wing pitches must be > 0")
	}
	return nil
}

// TempMote / HumMote / Controller name the wing's nodes.
func (w WingConfig) TempMote(floor, room int) wsn.NodeID {
	return wsn.NodeID(fmt.Sprintf("f%d-r%d-temp", floor, room))
}

// HumMote names a room's humidity mote.
func (w WingConfig) HumMote(floor, room int) wsn.NodeID {
	return wsn.NodeID(fmt.Sprintf("f%d-r%d-hum", floor, room))
}

// Controller names a floor controller.
func (w WingConfig) Controller(floor int) wsn.NodeID {
	return wsn.NodeID(fmt.Sprintf("f%d-ctrl", floor))
}

// BuildWing assembles the wing topology on a fresh network.
func BuildWing(cfg Config, wing WingConfig, rng *rand.Rand) (*Network, error) {
	if err := wing.Validate(); err != nil {
		return nil, err
	}
	net, err := NewNetwork(cfg, rng)
	if err != nil {
		return nil, err
	}
	for f := 0; f < wing.Floors; f++ {
		y := float64(f) * wing.FloorSepM
		for r := 0; r < wing.RoomsPerSide; r++ {
			x := float64(r) * wing.RoomPitchM
			if _, err := net.AddNode(wing.TempMote(f, r), x, y, wsn.PowerBattery); err != nil {
				return nil, err
			}
			if _, err := net.AddNode(wing.HumMote(f, r), x, y+2, wsn.PowerBattery); err != nil {
				return nil, err
			}
			if err := net.DeclareProducer(wing.TempMote(f, r), wsn.MsgTemperature); err != nil {
				return nil, err
			}
			if err := net.DeclareProducer(wing.HumMote(f, r), wsn.MsgHumidity); err != nil {
				return nil, err
			}
		}
		ctrl := wing.Controller(f)
		if _, err := net.AddNode(ctrl, float64(wing.RoomsPerSide-1)*wing.RoomPitchM/2, y+4, wsn.PowerAC); err != nil {
			return nil, err
		}
		if err := net.DeclareConsumer(ctrl, wsn.MsgTemperature, wsn.MsgHumidity); err != nil {
			return nil, err
		}
		if f > 0 {
			relay := wsn.NodeID(fmt.Sprintf("stair-%d", f))
			if _, err := net.AddNode(relay, 0, y-wing.FloorSepM/2, wsn.PowerAC); err != nil {
				return nil, err
			}
		}
	}
	if _, err := net.AddNode("supervisor", 0, -3, wsn.PowerAC); err != nil {
		return nil, err
	}
	if err := net.DeclareConsumer("supervisor", wsn.MsgTemperature, wsn.MsgHumidity); err != nil {
		return nil, err
	}
	return net, nil
}

// RunWingWorkload publishes rounds of staggered per-room reports and
// returns the final statistics.
func RunWingWorkload(net *Network, wing WingConfig, rounds int) (Stats, error) {
	for round := 0; round < rounds; round++ {
		for f := 0; f < wing.Floors; f++ {
			for r := 0; r < wing.RoomsPerSide; r++ {
				if err := net.Publish(wing.TempMote(f, r),
					wsn.Message{Type: wsn.MsgTemperature, Value: 24 + float64(f)}); err != nil {
					return Stats{}, err
				}
				if err := net.Publish(wing.HumMote(f, r),
					wsn.Message{Type: wsn.MsgHumidity, Value: 55}); err != nil {
					return Stats{}, err
				}
				net.RunUntilQuiet(30)
			}
		}
	}
	return net.Stats(), nil
}
