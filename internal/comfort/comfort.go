// Package comfort implements the Fanger thermal-comfort model (PMV/PPD,
// ISO 7730): the quantity an HVAC system ultimately exists to deliver.
// The paper's evaluation reports physical setpoints (25 °C, 18 °C dew
// point); this package closes the loop by scoring those conditions the way
// building science does — the Predicted Mean Vote on the seven-point
// sensation scale and the Predicted Percentage Dissatisfied.
//
// BubbleZERO's radiant design is also specifically flattered by this
// model: ceiling panels lower the mean radiant temperature below the air
// temperature, so the same sensation is reached at a higher air
// temperature than an all-air system needs.
package comfort

import (
	"fmt"
	"math"

	"bubblezero/internal/psychro"
)

// Conditions are the six PMV inputs.
type Conditions struct {
	// AirTempC is the dry-bulb air temperature.
	AirTempC float64
	// RadiantTempC is the mean radiant temperature (panel surfaces pull
	// this below the air temperature in BubbleZERO).
	RadiantTempC float64
	// RH is the relative humidity in percent.
	RH float64
	// AirSpeedMS is the local air speed (m/s).
	AirSpeedMS float64
	// MetabolicMet is the activity level in met (1.0 seated quiet, 1.2
	// office work).
	MetabolicMet float64
	// ClothingClo is the clothing insulation in clo (0.5 tropical summer
	// office wear).
	ClothingClo float64
}

// DefaultOffice returns the paper's implied occupancy: seated office work
// in tropical summer clothing with gentle ventilation air movement.
func DefaultOffice(airTempC, radiantTempC, rh float64) Conditions {
	return Conditions{
		AirTempC:     airTempC,
		RadiantTempC: radiantTempC,
		RH:           rh,
		AirSpeedMS:   0.12,
		MetabolicMet: 1.1,
		ClothingClo:  0.5,
	}
}

// Validate checks the inputs are within the model's sane envelope.
func (c Conditions) Validate() error {
	switch {
	case c.AirTempC < 0 || c.AirTempC > 50:
		return fmt.Errorf("comfort: air temperature %v outside [0, 50]", c.AirTempC)
	case c.RH < 0 || c.RH > 100:
		return fmt.Errorf("comfort: RH %v outside [0, 100]", c.RH)
	case c.AirSpeedMS < 0:
		return fmt.Errorf("comfort: air speed %v negative", c.AirSpeedMS)
	case c.MetabolicMet <= 0:
		return fmt.Errorf("comfort: metabolic rate %v must be positive", c.MetabolicMet)
	case c.ClothingClo < 0:
		return fmt.Errorf("comfort: clothing %v negative", c.ClothingClo)
	}
	return nil
}

// PMV returns the Predicted Mean Vote on the ASHRAE seven-point scale
// (−3 cold … 0 neutral … +3 hot) using Fanger's heat-balance equations.
func PMV(c Conditions) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}

	pa := psychro.VapourPressure(c.AirTempC, c.RH) // Pa
	icl := 0.155 * c.ClothingClo                   // m²K/W
	m := c.MetabolicMet * 58.15                    // W/m²
	w := 0.0                                       // external work
	mw := m - w

	var fcl float64
	if icl <= 0.078 {
		fcl = 1 + 1.29*icl
	} else {
		fcl = 1.05 + 0.645*icl
	}

	// Iterate the clothing surface temperature.
	ta := c.AirTempC
	tr := c.RadiantTempC
	hcf := 12.1 * math.Sqrt(c.AirSpeedMS)
	taa := ta + 273
	tra := tr + 273
	tcla := taa + (35.5-ta)/(3.5*icl+0.1)

	p1 := icl * fcl
	p2 := p1 * 3.96
	p3 := p1 * 100
	p4 := p1 * taa
	p5 := 308.7 - 0.028*mw + p2*math.Pow(tra/100, 4)
	xn := tcla / 100
	xf := tcla / 50
	const eps = 0.00015
	hc := hcf
	for i := 0; i < 150 && math.Abs(xn-xf) > eps; i++ {
		xf = (xf + xn) / 2
		hcn := 2.38 * math.Pow(math.Abs(100*xf-taa), 0.25)
		if hcf > hcn {
			hc = hcf
		} else {
			hc = hcn
		}
		xn = (p5 + p4*hc - p2*math.Pow(xf, 4)) / (100 + p3*hc)
	}
	tcl := 100*xn - 273

	// Heat-loss components.
	hl1 := 3.05 * 0.001 * (5733 - 6.99*mw - pa) // skin diffusion
	var hl2 float64
	if mw > 58.15 {
		hl2 = 0.42 * (mw - 58.15) // sweating
	}
	hl3 := 1.7 * 0.00001 * m * (5867 - pa)                       // latent respiration
	hl4 := 0.0014 * m * (34 - ta)                                // dry respiration
	hl5 := 3.96 * fcl * (math.Pow(xn, 4) - math.Pow(tra/100, 4)) // radiation
	hl6 := fcl * hc * (tcl - ta)                                 // convection

	ts := 0.303*math.Exp(-0.036*m) + 0.028
	pmv := ts * (mw - hl1 - hl2 - hl3 - hl4 - hl5 - hl6)
	return pmv, nil
}

// PPD returns the Predicted Percentage Dissatisfied for a PMV value
// (minimum 5 % at PMV = 0).
func PPD(pmv float64) float64 {
	return 100 - 95*math.Exp(-0.03353*math.Pow(pmv, 4)-0.2179*math.Pow(pmv, 2))
}

// Assess returns both indices.
func Assess(c Conditions) (pmv, ppd float64, err error) {
	pmv, err = PMV(c)
	if err != nil {
		return 0, 0, err
	}
	return pmv, PPD(pmv), nil
}

// Category classifies a PMV into the ISO 7730 comfort categories.
func Category(pmv float64) string {
	a := math.Abs(pmv)
	switch {
	case a <= 0.2:
		return "A"
	case a <= 0.5:
		return "B"
	case a <= 0.7:
		return "C"
	default:
		return "outside"
	}
}
