package comfort

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := DefaultOffice(25, 24, 60).Validate(); err != nil {
		t.Fatalf("default office invalid: %v", err)
	}
	bad := []Conditions{
		{AirTempC: -10, RadiantTempC: 20, RH: 50, MetabolicMet: 1, ClothingClo: 0.5},
		{AirTempC: 25, RadiantTempC: 20, RH: 150, MetabolicMet: 1, ClothingClo: 0.5},
		{AirTempC: 25, RadiantTempC: 20, RH: 50, AirSpeedMS: -1, MetabolicMet: 1, ClothingClo: 0.5},
		{AirTempC: 25, RadiantTempC: 20, RH: 50, MetabolicMet: 0, ClothingClo: 0.5},
		{AirTempC: 25, RadiantTempC: 20, RH: 50, MetabolicMet: 1, ClothingClo: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("conditions %d should be invalid", i)
		}
	}
	if _, err := PMV(bad[0]); err == nil {
		t.Error("PMV accepted invalid conditions")
	}
}

func TestISO7730ReferencePoint(t *testing.T) {
	// ISO 7730 table D.1-style check: ta = tr = 22 °C, RH 60 %, 0.10 m/s,
	// 1.2 met, 0.5 clo → PMV ≈ −0.75 (±0.1).
	pmv, err := PMV(Conditions{
		AirTempC: 22, RadiantTempC: 22, RH: 60,
		AirSpeedMS: 0.10, MetabolicMet: 1.2, ClothingClo: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pmv-(-0.75)) > 0.12 {
		t.Errorf("PMV = %.3f, want ≈ -0.75 (ISO 7730 reference)", pmv)
	}
}

func TestISO7730NeutralPoint(t *testing.T) {
	// ta = tr = 26 °C, RH 60 %, 0.10 m/s, 1.2 met, 0.5 clo → PMV ≈ +0.39.
	pmv, err := PMV(Conditions{
		AirTempC: 26, RadiantTempC: 26, RH: 60,
		AirSpeedMS: 0.10, MetabolicMet: 1.2, ClothingClo: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pmv-0.39) > 0.12 {
		t.Errorf("PMV = %.3f, want ≈ +0.39 (ISO 7730 reference)", pmv)
	}
}

func TestBubbleZEROTargetIsComfortable(t *testing.T) {
	// The paper's target: 25 °C air, 18 °C dew (≈65 % RH), radiant panels
	// pulling the mean radiant temperature a little below air.
	pmv, ppd, err := Assess(DefaultOffice(25, 23.5, 65))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pmv) > 0.5 {
		t.Errorf("PMV at the paper's target = %.2f, want within ±0.5 (category B)", pmv)
	}
	if ppd > 12 {
		t.Errorf("PPD = %.1f%%, want near the 10%% band", ppd)
	}
}

func TestRadiantCoolingImprovesComfortAtSameAirTemp(t *testing.T) {
	warm, err := PMV(DefaultOffice(26, 26, 65)) // all-air: tr = ta
	if err != nil {
		t.Fatal(err)
	}
	radiant, err := PMV(DefaultOffice(26, 23, 65)) // cooled ceiling
	if err != nil {
		t.Fatal(err)
	}
	if radiant >= warm {
		t.Errorf("radiant PMV %.2f not cooler than all-air %.2f", radiant, warm)
	}
}

func TestPMVMonotoneInTemperature(t *testing.T) {
	prev := -10.0
	for ta := 18.0; ta <= 32; ta += 2 {
		pmv, err := PMV(DefaultOffice(ta, ta, 60))
		if err != nil {
			t.Fatal(err)
		}
		if pmv <= prev {
			t.Fatalf("PMV not increasing at %v°C: %v <= %v", ta, pmv, prev)
		}
		prev = pmv
	}
}

func TestPMVIncreasesWithHumidity(t *testing.T) {
	dry, err := PMV(DefaultOffice(28, 28, 30))
	if err != nil {
		t.Fatal(err)
	}
	humid, err := PMV(DefaultOffice(28, 28, 90))
	if err != nil {
		t.Fatal(err)
	}
	if humid <= dry {
		t.Errorf("humid PMV %.2f not warmer than dry %.2f", humid, dry)
	}
}

func TestPPDShape(t *testing.T) {
	if got := PPD(0); math.Abs(got-5) > 0.01 {
		t.Errorf("PPD(0) = %v, want 5 (the model's floor)", got)
	}
	// Symmetric and increasing away from neutral.
	if math.Abs(PPD(1)-PPD(-1)) > 1e-9 {
		t.Error("PPD not symmetric")
	}
	if PPD(2) <= PPD(1) || PPD(3) <= PPD(2) {
		t.Error("PPD not increasing with |PMV|")
	}
	// PMV ±1 ≈ 26 % dissatisfied (ISO 7730).
	if got := PPD(1); math.Abs(got-26.1) > 1 {
		t.Errorf("PPD(1) = %.1f, want ≈26", got)
	}
}

func TestCategory(t *testing.T) {
	cases := map[float64]string{0: "A", 0.19: "A", -0.35: "B", 0.65: "C", 1.2: "outside"}
	for pmv, want := range cases {
		if got := Category(pmv); got != want {
			t.Errorf("Category(%v) = %s, want %s", pmv, got, want)
		}
	}
}

// Property: PPD is always within [5, 100).
func TestPPDBoundsProperty(t *testing.T) {
	f := func(raw int16) bool {
		pmv := float64(raw) / 1000 // ±32
		ppd := PPD(pmv)
		return ppd >= 5-1e-9 && ppd < 100+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PMV is finite across the validated envelope.
func TestPMVFiniteProperty(t *testing.T) {
	f := func(taRaw, rhRaw, vRaw uint8) bool {
		c := Conditions{
			AirTempC:     5 + float64(taRaw%40),
			RadiantTempC: 5 + float64(rhRaw%40),
			RH:           float64(rhRaw) / 2.56,
			AirSpeedMS:   float64(vRaw) / 255,
			MetabolicMet: 1.1,
			ClothingClo:  0.5,
		}
		pmv, err := PMV(c)
		if err != nil {
			return true // rejected by validation is fine
		}
		return !math.IsNaN(pmv) && !math.IsInf(pmv, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
