package comfort_test

import (
	"fmt"

	"bubblezero/internal/comfort"
)

// Assess scores room conditions on the ASHRAE seven-point sensation scale;
// the paper's 25 °C / 18 °C-dew target with cooled ceiling panels lands in
// the ISO 7730 comfort band.
func ExampleAssess() {
	pmv, ppd, err := comfort.Assess(comfort.DefaultOffice(25, 23.5, 65))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("PMV %+.2f, PPD %.0f%%, category %s\n", pmv, ppd, comfort.Category(pmv))

	// The tropical start, for contrast.
	pmv, ppd, err = comfort.Assess(comfort.DefaultOffice(28.9, 28.9, 92))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("PMV %+.2f, PPD %.0f%%, category %s\n", pmv, ppd, comfort.Category(pmv))
	// Output:
	// PMV -0.32, PPD 7%, category B
	// PMV +1.54, PPD 53%, category outside
}
