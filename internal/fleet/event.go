package fleet

import (
	"fmt"
	"time"

	"bubblezero/internal/fault"
	"bubblezero/internal/psychro"
	"bubblezero/internal/thermal"
)

// EventKind enumerates the live mutations a running fleet accepts.
type EventKind int

// The event kinds. Climate is fleet-wide; Door and Fault target one
// building.
const (
	// EventClimate installs a new outdoor boundary (dry bulb + dew point)
	// on every building.
	EventClimate EventKind = iota + 1
	// EventDoor opens the target building's door for the given duration.
	EventDoor
	// EventFault schedules fault injections on the target building, with
	// offsets relative to the instant the event is applied.
	EventFault
)

var eventKindNames = map[EventKind]string{
	EventClimate: "climate",
	EventDoor:    "door",
	EventFault:   "fault",
}

// String returns the kind's stable name.
func (k EventKind) String() string {
	if s, ok := eventKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("fleet.EventKind(%d)", int(k))
}

// ParseEventKind resolves a kind name ("climate", "door", "fault").
func ParseEventKind(s string) (EventKind, error) {
	//bzlint:ordered names are unique, so at most one iteration matches regardless of order
	for k, name := range eventKindNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("fleet: unknown event kind %q", s)
}

// Event is a live mutation of a running fleet — the ONLY way state enters
// one after construction. Events are queued by Apply and take effect at
// the next epoch boundary, so every building sees them at the same tick
// regardless of sharding; the applied tick is journaled for snapshot
// replay.
type Event struct {
	Kind EventKind

	// Building targets Door and Fault events; ignored for Climate.
	Building int

	// TC and DewC are the new outdoor dry bulb and dew point (°C) for
	// Climate events.
	TC, DewC float64

	// Door is how long the door stays open for Door events.
	Door time.Duration

	// Faults are the injections for Fault events. Their At offsets are
	// relative to the epoch boundary where the event lands, not the start
	// of the run.
	Faults []fault.Event
}

// Validate checks the event against a fleet of the given size.
func (e Event) Validate(buildings int) error {
	switch e.Kind {
	case EventClimate:
		return nil
	case EventDoor:
		if e.Building < 0 || e.Building >= buildings {
			return fmt.Errorf("fleet: door event building %d out of range [0, %d)", e.Building, buildings)
		}
		if e.Door <= 0 {
			return fmt.Errorf("fleet: door event duration must be > 0, got %v", e.Door)
		}
		return nil
	case EventFault:
		if e.Building < 0 || e.Building >= buildings {
			return fmt.Errorf("fleet: fault event building %d out of range [0, %d)", e.Building, buildings)
		}
		if len(e.Faults) == 0 {
			return fmt.Errorf("fleet: fault event carries no fault events")
		}
		for i, fe := range e.Faults {
			if err := fe.Validate(); err != nil {
				return fmt.Errorf("fleet: fault event %d: %w", i, err)
			}
		}
		return nil
	}
	return fmt.Errorf("fleet: unknown event kind %d", int(e.Kind))
}

// AppliedEvent is one journal entry: the event plus the epoch boundary
// (in completed ticks) where it took effect. The journal is part of a
// fleet snapshot — fault events schedule timeline closures, which cannot
// be serialized, so restore replays them structurally at the same
// instants before patching component state.
type AppliedEvent struct {
	Event Event
	Tick  uint64
}

// Apply queues an event for application at the next epoch boundary (the
// top of the next RunTicks epoch). It is safe to call concurrently with a
// running RunTicks — the HTTP injection path does.
func (f *Fleet) Apply(ev Event) error {
	if err := ev.Validate(len(f.buildings)); err != nil {
		return err
	}
	f.evMu.Lock()
	f.pendingEv = append(f.pendingEv, ev)
	f.evMu.Unlock()
	return nil
}

// Journal returns a copy of the applied-event journal.
func (f *Fleet) Journal() []AppliedEvent {
	f.evMu.Lock()
	defer f.evMu.Unlock()
	return append([]AppliedEvent(nil), f.journal...)
}

// drainEvents applies every queued event at the current epoch boundary
// and journals it. Called single-threaded between epochs; the steady-state
// fast path (nothing queued) performs no allocations.
func (f *Fleet) drainEvents() error {
	f.evMu.Lock()
	if len(f.pendingEv) == 0 {
		f.evMu.Unlock()
		return nil
	}
	batch := f.pendingEv
	f.pendingEv = nil
	f.evMu.Unlock()

	for _, ev := range batch {
		if err := f.applyNow(ev, f.ticks); err != nil {
			return err
		}
		f.evMu.Lock()
		f.journal = append(f.journal, AppliedEvent{Event: ev, Tick: f.ticks})
		f.evMu.Unlock()
	}
	return nil
}

// applyNow applies one event at the boundary after `tick` completed
// ticks. Restore replays fault events through the same function with the
// journaled tick, so the scheduled instants reproduce exactly.
//
//bzlint:mutroute fleet.Apply the route itself: every journaled event lands here
func (f *Fleet) applyNow(ev Event, tick uint64) error {
	switch ev.Kind {
	case EventClimate:
		// One precomputed Climate, installed everywhere by assignment: a
		// bank-level sweep per shard on the banked path, a per-system loop
		// otherwise. Both routes go through thermal.NewClimate, so they are
		// bit-identical to each room recomputing its own boundary terms.
		c := thermal.NewClimate(psychro.NewStateDewPoint(ev.TC, ev.DewC, 0), f.cfg.Base.Thermal.OutdoorCO2PPM)
		if f.banks != nil {
			for _, bank := range f.banks {
				bank.SetClimateAll(c)
			}
			return nil
		}
		for _, sys := range f.buildings {
			sys.Room().SetClimate(c)
		}
		return nil
	case EventDoor:
		f.buildings[ev.Building].Room().OpenDoor(ev.Door)
		return nil
	case EventFault:
		plan, err := fault.NewPlan(ev.Faults...)
		if err != nil {
			return err
		}
		base := f.cfg.Base.Start.Add(time.Duration(tick) * f.step)
		return f.buildings[ev.Building].ApplyFaults(base, plan)
	}
	return fmt.Errorf("fleet: unknown event kind %d", int(ev.Kind))
}
