// Package fleet instantiates and steps thousands of independent
// BubbleZERO buildings in one process. Every building is a full
// core.System — room physics, hydraulics, sensor network, controllers —
// assembled from a single validated core.Shared configuration handle,
// parameterized per building (seed, climate boundary, occupancy, fault
// plan) by a pure function of the fleet seed and the building index.
//
// Buildings are sharded across a bounded worker pool: each shard owns a
// disjoint subset and steps it sequentially, so inside an epoch there is
// no cross-shard synchronization and no shared mutable state. Because
// buildings never interact, a building stepped inside an N-building fleet
// at any shard count produces bit-identical outputs to the same building
// stepped alone — the property the determinism tests pin.
package fleet

import (
	"fmt"

	"bubblezero/internal/core"
	"bubblezero/internal/fault"
	"bubblezero/internal/runner"
	"bubblezero/internal/thermal"
)

// Variation bounds the deterministic per-building parameter draws. Zero
// values disable the corresponding axis.
type Variation struct {
	// OutdoorTempLoC/HiC bound the outdoor dry-bulb draw in °C. Equal
	// values (including both zero) disable climate variation and every
	// building inherits Base.Thermal.Outdoor.
	OutdoorTempLoC, OutdoorTempHiC float64
	// OutdoorDewLoC/HiC bound the outdoor dew-point draw in °C. Draws are
	// clamped at least 1 K below the building's dry-bulb draw.
	OutdoorDewLoC, OutdoorDewHiC float64
	// MaxOccupants caps the uniform per-zone occupant draw (0 leaves
	// every zone empty).
	MaxOccupants int
}

func (v Variation) validate() error {
	if v.OutdoorTempHiC < v.OutdoorTempLoC {
		return fmt.Errorf("fleet: Vary.OutdoorTempHiC %v < OutdoorTempLoC %v", v.OutdoorTempHiC, v.OutdoorTempLoC)
	}
	if v.OutdoorDewHiC < v.OutdoorDewLoC {
		return fmt.Errorf("fleet: Vary.OutdoorDewHiC %v < OutdoorDewLoC %v", v.OutdoorDewHiC, v.OutdoorDewLoC)
	}
	if v.MaxOccupants < 0 {
		return fmt.Errorf("fleet: Vary.MaxOccupants must be >= 0, got %d", v.MaxOccupants)
	}
	return nil
}

// climate reports whether the variation draws a per-building climate.
func (v Variation) climate() bool {
	return v.OutdoorTempHiC > v.OutdoorTempLoC || v.OutdoorDewHiC > v.OutdoorDewLoC ||
		//bzlint:allow floateq zero-value sentinel; an all-zero range means "axis disabled", a degenerate nonzero Lo==Hi range is a real fixed-value draw
		v.OutdoorTempLoC != 0 || v.OutdoorDewLoC != 0
}

// Config parameterises a Fleet.
type Config struct {
	// Buildings is the fleet size N. Must be > 0.
	Buildings int
	// Shards is the number of workers the buildings are partitioned
	// across. 0 selects NumCPU; otherwise it must lie in [1, Buildings].
	// The shard count never affects simulation results, only wall-clock.
	Shards int
	// Seed is the fleet seed every per-building seed derives from.
	Seed uint64
	// Base is the building template. Per-building seed and climate ride
	// as per-instance overrides, so all buildings share this one config
	// (validated once, behind a core.Shared handle).
	Base core.Config
	// MemBudgetBytes caps the measured live-heap bytes per building at
	// construction; New fails when the fleet exceeds it. 0 disables the
	// check. Must be >= 0.
	MemBudgetBytes int64
	// SampleEvery enables trace recording on every k-th building
	// (indices 0, k, 2k, …). 0 records no traces anywhere — the fleet
	// default, worth ~2.7 MB/building of chunked series otherwise.
	// Requires Base.TracePeriod > 0 when set.
	SampleEvery int
	// SampleRetention bounds each sampled building's series to a
	// pre-allocated ring of the most recent n samples. 0 keeps unbounded
	// history (the single-building default).
	SampleRetention int
	// EpochTicks is the epoch length: shards synchronize (and the run
	// becomes cancellable) every EpochTicks ticks. 0 selects 512. The
	// epoch length never affects per-building results.
	EpochTicks int
	// Bank selects the fused shard step: each shard's buildings bind
	// their zone state into one contiguous thermal.RoomBank and the shard
	// advances tick-phased — every building's engine steps its sensors,
	// network, controllers, and glue for a tick, then one RoomBank.StepAll
	// pass integrates the whole shard's physics. Per-building results are
	// bit-identical to the unbanked path (and to Standalone): the bank
	// runs the identical kernel per building in the identical within-tick
	// position, only the storage layout and stepping order across
	// *independent* buildings change. DefaultConfig enables it.
	Bank bool
	// Vary bounds the deterministic per-building parameter draws.
	Vary Variation
	// FaultPlan, when non-nil, supplies a fault plan per building (nil
	// return = fault-free). It must return an independent plan per call:
	// plans are armed on the building's own timeline and must not be
	// shared between buildings.
	FaultPlan func(building int, seed uint64) *fault.Plan `json:"-"`
}

// DefaultConfig returns an n-building fleet over the paper-calibrated
// building template with a tropical climate spread (outdoor 28–34 °C,
// dew 24–27 °C), up to two occupants per subspace, no trace recording,
// and a 128 KiB per-building memory budget.
func DefaultConfig(n int) Config {
	return Config{
		Buildings:      n,
		Seed:           1,
		Base:           core.DefaultConfig(),
		MemBudgetBytes: 128 << 10,
		Bank:           true,
		Vary: Variation{
			OutdoorTempLoC: 28, OutdoorTempHiC: 34,
			OutdoorDewLoC: 24, OutdoorDewHiC: 27,
			MaxOccupants: 2,
		},
	}
}

// Validate checks the fleet configuration, including the fleet knobs'
// ranges: building count > 0, shard count in [1, N] (or 0 for auto), and
// a non-negative memory budget.
func (c Config) Validate() error {
	if c.Buildings <= 0 {
		return fmt.Errorf("fleet: Buildings must be > 0, got %d", c.Buildings)
	}
	if c.Shards < 0 {
		return fmt.Errorf("fleet: Shards must be >= 0 (0 = NumCPU), got %d", c.Shards)
	}
	if c.Shards > c.Buildings {
		return fmt.Errorf("fleet: Shards %d exceeds Buildings %d", c.Shards, c.Buildings)
	}
	if c.MemBudgetBytes < 0 {
		return fmt.Errorf("fleet: MemBudgetBytes must be >= 0, got %d", c.MemBudgetBytes)
	}
	if c.SampleEvery < 0 {
		return fmt.Errorf("fleet: SampleEvery must be >= 0, got %d", c.SampleEvery)
	}
	if c.SampleEvery > 0 && c.Base.TracePeriod <= 0 {
		return fmt.Errorf("fleet: SampleEvery %d needs Base.TracePeriod > 0 to record anything", c.SampleEvery)
	}
	if c.SampleRetention < 0 {
		return fmt.Errorf("fleet: SampleRetention must be >= 0, got %d", c.SampleRetention)
	}
	if c.EpochTicks < 0 {
		return fmt.Errorf("fleet: EpochTicks must be >= 0, got %d", c.EpochTicks)
	}
	if err := c.Vary.validate(); err != nil {
		return err
	}
	return c.Base.Validate()
}

// BuildingParams is the deterministic parameterisation of one building:
// a pure function of (fleet seed, index) via ParamsFor, independent of
// shard count, worker scheduling, and every other building.
type BuildingParams struct {
	Index int
	// Seed drives every stochastic element of the building's simulation.
	Seed uint64
	// Climate reports whether OutdoorC/OutdoorDewC override the template
	// boundary condition.
	Climate               bool
	OutdoorC, OutdoorDewC float64
	// Occupants is the initial per-subspace occupancy.
	Occupants [thermal.NumZones]int
}

// Sub-stream tags for the per-building parameter draws. Each draw hashes
// (building seed, tag) so adding a tag never shifts the others.
const (
	tagOutdoorTemp = 1
	tagOutdoorDew  = 2
	tagOccupants   = 16 // ..16+NumZones
)

// unit maps (seed, tag) to a uniform draw in [0, 1) via the same
// splitmix64 finalizer that derives job seeds.
func unit(seed, tag uint64) float64 {
	return float64(runner.DeriveSeed(seed, tag)>>11) / (1 << 53)
}

// ParamsFor derives building i's parameters from the fleet seed.
func (c Config) ParamsFor(i int) BuildingParams {
	p := BuildingParams{Index: i, Seed: runner.DeriveSeed(c.Seed, uint64(i))}
	if v := c.Vary; v.climate() {
		p.Climate = true
		p.OutdoorC = v.OutdoorTempLoC + (v.OutdoorTempHiC-v.OutdoorTempLoC)*unit(p.Seed, tagOutdoorTemp)
		p.OutdoorDewC = v.OutdoorDewLoC + (v.OutdoorDewHiC-v.OutdoorDewLoC)*unit(p.Seed, tagOutdoorDew)
		// A dew point at or above the dry-bulb would start the run inside
		// fog; keep the boundary at least 1 K of depression.
		if p.OutdoorDewC > p.OutdoorC-1 {
			p.OutdoorDewC = p.OutdoorC - 1
		}
	}
	if max := c.Vary.MaxOccupants; max > 0 {
		for z := range p.Occupants {
			n := int(unit(p.Seed, tagOccupants+uint64(z)) * float64(max+1))
			if n > max {
				n = max
			}
			p.Occupants[z] = n
		}
	}
	return p
}
