package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"bubblezero/internal/core"
	"bubblezero/internal/psychro"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // substring; "" means valid
	}{
		{"default", func(c *Config) {}, ""},
		{"zero buildings", func(c *Config) { c.Buildings = 0 }, "Buildings must be > 0"},
		{"negative buildings", func(c *Config) { c.Buildings = -3 }, "Buildings must be > 0"},
		{"auto shards", func(c *Config) { c.Shards = 0 }, ""},
		{"negative shards", func(c *Config) { c.Shards = -1 }, "Shards must be >= 0"},
		{"shards at N", func(c *Config) { c.Shards = c.Buildings }, ""},
		{"shards over N", func(c *Config) { c.Shards = c.Buildings + 1 }, "exceeds Buildings"},
		{"negative budget", func(c *Config) { c.MemBudgetBytes = -1 }, "MemBudgetBytes must be >= 0"},
		{"negative sample every", func(c *Config) { c.SampleEvery = -2 }, "SampleEvery must be >= 0"},
		{"sampling without trace period", func(c *Config) {
			c.SampleEvery = 4
			c.Base.TracePeriod = 0
		}, "needs Base.TracePeriod > 0"},
		{"sampling with trace period", func(c *Config) {
			c.SampleEvery = 4
			c.Base.TracePeriod = 15 * time.Second
		}, ""},
		{"negative retention", func(c *Config) { c.SampleRetention = -1 }, "SampleRetention must be >= 0"},
		{"negative epoch", func(c *Config) { c.EpochTicks = -1 }, "EpochTicks must be >= 0"},
		{"inverted temp range", func(c *Config) {
			c.Vary.OutdoorTempLoC, c.Vary.OutdoorTempHiC = 34, 28
		}, "OutdoorTempHiC"},
		{"inverted dew range", func(c *Config) {
			c.Vary.OutdoorDewLoC, c.Vary.OutdoorDewHiC = 27, 24
		}, "OutdoorDewHiC"},
		{"negative occupants", func(c *Config) { c.Vary.MaxOccupants = -1 }, "MaxOccupants"},
		{"invalid base", func(c *Config) { c.Base.Step = 0 }, "Step must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(16)
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestParamsForDeterministicAndBounded(t *testing.T) {
	cfg := DefaultConfig(64)
	for i := 0; i < 64; i++ {
		p := cfg.ParamsFor(i)
		q := cfg.ParamsFor(i)
		if p != q {
			t.Fatalf("ParamsFor(%d) not deterministic: %+v vs %+v", i, p, q)
		}
		if !p.Climate {
			t.Fatalf("ParamsFor(%d): expected climate variation", i)
		}
		if p.OutdoorC < cfg.Vary.OutdoorTempLoC || p.OutdoorC >= cfg.Vary.OutdoorTempHiC {
			t.Fatalf("ParamsFor(%d): OutdoorC %v outside [%v, %v)", i, p.OutdoorC,
				cfg.Vary.OutdoorTempLoC, cfg.Vary.OutdoorTempHiC)
		}
		if p.OutdoorDewC < cfg.Vary.OutdoorDewLoC-1 || p.OutdoorDewC > p.OutdoorC-1 {
			t.Fatalf("ParamsFor(%d): OutdoorDewC %v outside plausible range (temp %v)", i, p.OutdoorDewC, p.OutdoorC)
		}
		for z, n := range p.Occupants {
			if n < 0 || n > cfg.Vary.MaxOccupants {
				t.Fatalf("ParamsFor(%d): zone %d occupants %d outside [0, %d]", i, z, n, cfg.Vary.MaxOccupants)
			}
		}
	}
	// Different indices must draw different seeds (splitmix64 collision on
	// consecutive indices would be a derivation bug, not chance).
	seen := make(map[uint64]int, 64)
	for i := 0; i < 64; i++ {
		s := cfg.ParamsFor(i).Seed
		if j, dup := seen[s]; dup {
			t.Fatalf("buildings %d and %d derived the same seed %#x", j, i, s)
		}
		seen[s] = i
	}
}

// traceSHA fingerprints a building's full recorded history with the same
// exact hex-float dump the Fig10 golden uses.
func traceSHA(t *testing.T, sys *core.System) string {
	t.Helper()
	h := sha256.New()
	if err := sys.Recorder().WriteExact(h); err != nil {
		t.Fatalf("WriteExact: %v", err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestFleetDeterminismAcrossShardCounts pins the tentpole property: every
// building in a sharded fleet is bit-identical to the same building run
// standalone, and the shard count and epoch length change nothing.
func TestFleetDeterminismAcrossShardCounts(t *testing.T) {
	const (
		buildings = 5
		ticks     = 900 // 15 simulated minutes at the 1 s default step
	)
	base := DefaultConfig(buildings)
	base.SampleEvery = 1 // record traces on every building so SHAs are meaningful
	base.MemBudgetBytes = 0

	// Standalone reference: each building alone, one continuous run.
	want := make([]string, buildings)
	for i := 0; i < buildings; i++ {
		sys, err := Standalone(base, i)
		if err != nil {
			t.Fatalf("Standalone(%d): %v", i, err)
		}
		if err := sys.Engine().RunTicks(context.Background(), ticks); err != nil {
			t.Fatalf("standalone run %d: %v", i, err)
		}
		want[i] = traceSHA(t, sys)
	}
	for i := 1; i < buildings; i++ {
		if want[i] == want[0] {
			t.Fatalf("buildings 0 and %d produced identical traces; per-building variation is not applied", i)
		}
	}

	shardCounts := []int{1, runtime.NumCPU(), 4}
	for _, shards := range shardCounts {
		if shards > buildings {
			shards = buildings
		}
		for _, epoch := range []int{128, ticks} {
			cfg := base
			cfg.Shards = shards
			cfg.EpochTicks = epoch
			fl, err := New(context.Background(), cfg)
			if err != nil {
				t.Fatalf("New(shards=%d): %v", shards, err)
			}
			if fl.Shards() != shards {
				t.Fatalf("Shards() = %d, want %d", fl.Shards(), shards)
			}
			if err := fl.RunTicks(context.Background(), ticks); err != nil {
				t.Fatalf("RunTicks(shards=%d, epoch=%d): %v", shards, epoch, err)
			}
			if got := fl.Ticks(); got != ticks {
				t.Fatalf("Ticks() = %d, want %d", got, ticks)
			}
			for i := 0; i < buildings; i++ {
				if got := traceSHA(t, fl.Building(i)); got != want[i] {
					t.Errorf("shards=%d epoch=%d building %d: trace %s != standalone %s",
						shards, epoch, i, got[:12], want[i][:12])
				}
			}
		}
	}
}

// TestFleetSetOutdoorMatchesPerBuilding pins the shared-climate fast
// path: installing one precomputed Climate across the fleet must be
// bit-identical to each building recomputing its own boundary terms via
// Room.SetOutdoor.
func TestFleetSetOutdoorMatchesPerBuilding(t *testing.T) {
	const (
		buildings = 4
		ticks     = 300
	)
	cfg := DefaultConfig(buildings)
	cfg.SampleEvery = 1
	cfg.MemBudgetBytes = 0
	cfg.Shards = 2

	mk := func() *Fleet {
		fl, err := New(context.Background(), cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := fl.RunTicks(context.Background(), ticks); err != nil {
			t.Fatalf("RunTicks: %v", err)
		}
		return fl
	}
	shared, perBuilding := mk(), mk()

	shared.SetOutdoor(33.0, 27.8)
	for i := 0; i < buildings; i++ {
		perBuilding.Building(i).Room().SetOutdoor(psychro.NewStateDewPoint(33.0, 27.8, 0))
	}

	if err := shared.RunTicks(context.Background(), ticks); err != nil {
		t.Fatalf("RunTicks after SetOutdoor: %v", err)
	}
	if err := perBuilding.RunTicks(context.Background(), ticks); err != nil {
		t.Fatalf("RunTicks after per-building SetOutdoor: %v", err)
	}
	for i := 0; i < buildings; i++ {
		a, b := traceSHA(t, shared.Building(i)), traceSHA(t, perBuilding.Building(i))
		if a != b {
			t.Errorf("building %d: fleet SetOutdoor trace %s != per-building %s", i, a[:12], b[:12])
		}
		if got := shared.Building(i).Room().Outdoor().T; got != 33.0 {
			t.Errorf("building %d: outdoor T = %v after fleet SetOutdoor, want 33", i, got)
		}
	}
}

func TestFleetMemoryBudget(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Shards = 1
	fl, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	got := fl.BytesPerBuilding()
	if got <= 0 {
		t.Fatalf("BytesPerBuilding() = %d, want > 0", got)
	}
	if got > cfg.MemBudgetBytes {
		t.Fatalf("BytesPerBuilding() = %d exceeds the %d budget", got, cfg.MemBudgetBytes)
	}

	tight := cfg
	tight.MemBudgetBytes = 1
	if _, err := New(context.Background(), tight); err == nil {
		t.Fatal("New with a 1-byte budget succeeded, want over-budget error")
	} else if !strings.Contains(err.Error(), "over the") {
		t.Fatalf("New with 1-byte budget: %v, want over-budget error", err)
	}
}

func TestStandaloneIndexRange(t *testing.T) {
	cfg := DefaultConfig(4)
	for _, i := range []int{-1, 4} {
		if _, err := Standalone(cfg, i); err == nil {
			t.Fatalf("Standalone(%d) succeeded, want out-of-range error", i)
		}
	}
}

func TestFleetStats(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.Shards = 2
	cfg.MemBudgetBytes = 0
	fl, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := fl.Run(context.Background(), 10*time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := fl.Stats()
	if st.Buildings != 6 {
		t.Fatalf("Stats.Buildings = %d, want 6", st.Buildings)
	}
	if st.TicksRun != uint64(10*time.Minute/cfg.Base.Step) {
		t.Fatalf("Stats.TicksRun = %d", st.TicksRun)
	}
	if math.IsNaN(st.AvgTempC) || st.AvgTempC < 10 || st.AvgTempC > 45 {
		t.Fatalf("Stats.AvgTempC = %v, outside plausible range", st.AvgTempC)
	}
	if st.MinTempC > st.AvgTempC || st.MaxTempC < st.AvgTempC {
		t.Fatalf("Stats min/avg/max inconsistent: %v / %v / %v", st.MinTempC, st.AvgTempC, st.MaxTempC)
	}
	if math.IsNaN(st.AvgDewC) {
		t.Fatal("Stats.AvgDewC is NaN")
	}
}
