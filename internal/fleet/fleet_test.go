package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"bubblezero/internal/core"
	"bubblezero/internal/fault"
	"bubblezero/internal/psychro"
	"bubblezero/internal/thermal"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // substring; "" means valid
	}{
		{"default", func(c *Config) {}, ""},
		{"zero buildings", func(c *Config) { c.Buildings = 0 }, "Buildings must be > 0"},
		{"negative buildings", func(c *Config) { c.Buildings = -3 }, "Buildings must be > 0"},
		{"auto shards", func(c *Config) { c.Shards = 0 }, ""},
		{"negative shards", func(c *Config) { c.Shards = -1 }, "Shards must be >= 0"},
		{"shards at N", func(c *Config) { c.Shards = c.Buildings }, ""},
		{"shards over N", func(c *Config) { c.Shards = c.Buildings + 1 }, "exceeds Buildings"},
		{"negative budget", func(c *Config) { c.MemBudgetBytes = -1 }, "MemBudgetBytes must be >= 0"},
		{"negative sample every", func(c *Config) { c.SampleEvery = -2 }, "SampleEvery must be >= 0"},
		{"sampling without trace period", func(c *Config) {
			c.SampleEvery = 4
			c.Base.TracePeriod = 0
		}, "needs Base.TracePeriod > 0"},
		{"sampling with trace period", func(c *Config) {
			c.SampleEvery = 4
			c.Base.TracePeriod = 15 * time.Second
		}, ""},
		{"negative retention", func(c *Config) { c.SampleRetention = -1 }, "SampleRetention must be >= 0"},
		{"negative epoch", func(c *Config) { c.EpochTicks = -1 }, "EpochTicks must be >= 0"},
		{"inverted temp range", func(c *Config) {
			c.Vary.OutdoorTempLoC, c.Vary.OutdoorTempHiC = 34, 28
		}, "OutdoorTempHiC"},
		{"inverted dew range", func(c *Config) {
			c.Vary.OutdoorDewLoC, c.Vary.OutdoorDewHiC = 27, 24
		}, "OutdoorDewHiC"},
		{"negative occupants", func(c *Config) { c.Vary.MaxOccupants = -1 }, "MaxOccupants"},
		{"invalid base", func(c *Config) { c.Base.Step = 0 }, "Step must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(16)
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestParamsForDeterministicAndBounded(t *testing.T) {
	cfg := DefaultConfig(64)
	for i := 0; i < 64; i++ {
		p := cfg.ParamsFor(i)
		q := cfg.ParamsFor(i)
		if p != q {
			t.Fatalf("ParamsFor(%d) not deterministic: %+v vs %+v", i, p, q)
		}
		if !p.Climate {
			t.Fatalf("ParamsFor(%d): expected climate variation", i)
		}
		if p.OutdoorC < cfg.Vary.OutdoorTempLoC || p.OutdoorC >= cfg.Vary.OutdoorTempHiC {
			t.Fatalf("ParamsFor(%d): OutdoorC %v outside [%v, %v)", i, p.OutdoorC,
				cfg.Vary.OutdoorTempLoC, cfg.Vary.OutdoorTempHiC)
		}
		if p.OutdoorDewC < cfg.Vary.OutdoorDewLoC-1 || p.OutdoorDewC > p.OutdoorC-1 {
			t.Fatalf("ParamsFor(%d): OutdoorDewC %v outside plausible range (temp %v)", i, p.OutdoorDewC, p.OutdoorC)
		}
		for z, n := range p.Occupants {
			if n < 0 || n > cfg.Vary.MaxOccupants {
				t.Fatalf("ParamsFor(%d): zone %d occupants %d outside [0, %d]", i, z, n, cfg.Vary.MaxOccupants)
			}
		}
	}
	// Different indices must draw different seeds (splitmix64 collision on
	// consecutive indices would be a derivation bug, not chance).
	seen := make(map[uint64]int, 64)
	for i := 0; i < 64; i++ {
		s := cfg.ParamsFor(i).Seed
		if j, dup := seen[s]; dup {
			t.Fatalf("buildings %d and %d derived the same seed %#x", j, i, s)
		}
		seen[s] = i
	}
}

// traceSHA fingerprints a building's full recorded history with the same
// exact hex-float dump the Fig10 golden uses.
func traceSHA(t *testing.T, sys *core.System) string {
	t.Helper()
	h := sha256.New()
	if err := sys.Recorder().WriteExact(h); err != nil {
		t.Fatalf("WriteExact: %v", err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestFleetDeterminismAcrossShardCounts pins the tentpole property: every
// building in a sharded fleet is bit-identical to the same building run
// standalone, and the shard count and epoch length change nothing.
func TestFleetDeterminismAcrossShardCounts(t *testing.T) {
	const (
		buildings = 5
		ticks     = 900 // 15 simulated minutes at the 1 s default step
	)
	base := DefaultConfig(buildings)
	base.SampleEvery = 1 // record traces on every building so SHAs are meaningful
	base.MemBudgetBytes = 0

	// Standalone reference: each building alone, one continuous run.
	want := make([]string, buildings)
	for i := 0; i < buildings; i++ {
		sys, err := Standalone(base, i)
		if err != nil {
			t.Fatalf("Standalone(%d): %v", i, err)
		}
		if err := sys.Engine().RunTicks(context.Background(), ticks); err != nil {
			t.Fatalf("standalone run %d: %v", i, err)
		}
		want[i] = traceSHA(t, sys)
	}
	for i := 1; i < buildings; i++ {
		if want[i] == want[0] {
			t.Fatalf("buildings 0 and %d produced identical traces; per-building variation is not applied", i)
		}
	}

	shardCounts := []int{1, runtime.NumCPU(), 4}
	for _, shards := range shardCounts {
		if shards > buildings {
			shards = buildings
		}
		for _, epoch := range []int{128, ticks} {
			cfg := base
			cfg.Shards = shards
			cfg.EpochTicks = epoch
			fl, err := New(context.Background(), cfg)
			if err != nil {
				t.Fatalf("New(shards=%d): %v", shards, err)
			}
			if fl.Shards() != shards {
				t.Fatalf("Shards() = %d, want %d", fl.Shards(), shards)
			}
			if err := fl.RunTicks(context.Background(), ticks); err != nil {
				t.Fatalf("RunTicks(shards=%d, epoch=%d): %v", shards, epoch, err)
			}
			if got := fl.Ticks(); got != ticks {
				t.Fatalf("Ticks() = %d, want %d", got, ticks)
			}
			for i := 0; i < buildings; i++ {
				if got := traceSHA(t, fl.Building(i)); got != want[i] {
					t.Errorf("shards=%d epoch=%d building %d: trace %s != standalone %s",
						shards, epoch, i, got[:12], want[i][:12])
				}
			}
		}
	}
}

// roomStateKey fingerprints a building's exact zone state (temperature,
// humidity ratio, CO₂ per zone) as hex float bits, so two buildings
// compare bit-for-bit without a recorder.
func roomStateKey(sys *core.System) string {
	var sb strings.Builder
	for z := 0; z < thermal.NumZones; z++ {
		st := sys.Room().Zone(thermal.ZoneID(z))
		fmt.Fprintf(&sb, "%x/%x/%x;", math.Float64bits(st.T), math.Float64bits(st.W), math.Float64bits(st.CO2PPM))
	}
	return sb.String()
}

// TestFleetBankBitIdenticalAcrossShards pins the fused-bank tentpole:
// a banked fleet's buildings are bit-identical to their unbanked
// Standalone references at every shard count, including a shard that
// mixes a fault-plan building with retention-sampled buildings (at
// shards=3 the middle shard owns buildings {2,3,4}: 2 and 4 sampled
// with bounded retention, 3 carrying the fault plan).
func TestFleetBankBitIdenticalAcrossShards(t *testing.T) {
	const (
		buildings = 8
		ticks     = 900
	)
	base := DefaultConfig(buildings)
	base.MemBudgetBytes = 0
	base.SampleEvery = 2
	base.SampleRetention = 64
	base.FaultPlan = func(i int, seed uint64) *fault.Plan {
		if i != 3 {
			return nil
		}
		plan, err := fault.NewPlan(
			fault.BurstLoss(2*time.Minute, 3*time.Minute, 0.5),
			fault.ChillerTrip(5*time.Minute, 5*time.Minute, fault.LoopVent),
		)
		if err != nil {
			t.Fatalf("NewPlan: %v", err)
		}
		return plan
	}

	// Standalone builds are never banked: the reference is the room with
	// private storage, stepped in-line by its own engine.
	wantTrace := make([]string, buildings)
	wantState := make([]string, buildings)
	for i := 0; i < buildings; i++ {
		sys, err := Standalone(base, i)
		if err != nil {
			t.Fatalf("Standalone(%d): %v", i, err)
		}
		if err := sys.Engine().RunTicks(context.Background(), ticks); err != nil {
			t.Fatalf("standalone run %d: %v", i, err)
		}
		wantTrace[i] = traceSHA(t, sys)
		wantState[i] = roomStateKey(sys)
	}

	for _, shards := range []int{1, 3, 8} {
		cfg := base
		cfg.Shards = shards
		fl, err := New(context.Background(), cfg)
		if err != nil {
			t.Fatalf("New(shards=%d): %v", shards, err)
		}
		if !fl.Banked() {
			t.Fatalf("shards=%d: fleet is not banked with Config.Bank set", shards)
		}
		if err := fl.RunTicks(context.Background(), ticks); err != nil {
			t.Fatalf("RunTicks(shards=%d): %v", shards, err)
		}
		for i := 0; i < buildings; i++ {
			if got := roomStateKey(fl.Building(i)); got != wantState[i] {
				t.Errorf("shards=%d building %d: banked zone state diverged from standalone", shards, i)
			}
			if got := traceSHA(t, fl.Building(i)); got != wantTrace[i] {
				t.Errorf("shards=%d building %d: banked trace %s != standalone %s",
					shards, i, got[:12], wantTrace[i][:12])
			}
		}
	}
}

// TestFleetTickSteadyStateAllocs pins the fleet tick allocation-free in
// steady state: once histograms have learned their variance ranges and
// the cadence-wheel and network backings have grown, an entire epoch
// allocates only the worker-pool dispatch scaffolding (the per-epoch
// jobs slice and its closures — 3 objects on the single-shard fast
// path), independent of the tick count covered.
func TestFleetTickSteadyStateAllocs(t *testing.T) {
	for _, bank := range []bool{true, false} {
		t.Run(fmt.Sprintf("bank=%v", bank), func(t *testing.T) {
			cfg := DefaultConfig(12)
			cfg.Shards = 1
			cfg.EpochTicks = 256
			cfg.Bank = bank
			f, err := New(context.Background(), cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			ctx := context.Background()
			// Warm up past the adaptive layer's range-learning phase (the
			// paper's var_max settles within ~1.5 simulated hours).
			if err := f.RunTicks(ctx, 12000); err != nil {
				t.Fatalf("warm-up: %v", err)
			}
			avg := testing.AllocsPerRun(5, func() {
				if err := f.RunTicks(ctx, 256); err != nil {
					t.Fatalf("RunTicks: %v", err)
				}
			})
			if avg > 4 {
				t.Errorf("steady-state fleet epoch allocated %.1f objects, want <= 4 (dispatch scaffolding only)", avg)
			}
		})
	}
}

// TestFleetClimateEventMatchesPerBuilding pins the shared-climate fast
// path behind the event API: a queued EventClimate — applied at the next
// epoch boundary as a bank-level SetClimateAll per shard on the banked
// path, a per-system loop otherwise — must be bit-identical to each
// building recomputing its own boundary terms via Room.SetOutdoor. Both
// updates land between RunTicks calls at ticks 300 and 512+300, neither a
// multiple of the 512-tick epoch grid, so the banked path proves a
// weather change between phased epochs reaches every bank row.
func TestFleetClimateEventMatchesPerBuilding(t *testing.T) {
	const buildings = 4
	for _, bank := range []bool{true, false} {
		t.Run(fmt.Sprintf("bank=%v", bank), func(t *testing.T) {
			cfg := DefaultConfig(buildings)
			cfg.SampleEvery = 1
			cfg.MemBudgetBytes = 0
			cfg.Shards = 2
			cfg.EpochTicks = 512
			cfg.Bank = bank

			mk := func() *Fleet {
				fl, err := New(context.Background(), cfg)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				if err := fl.RunTicks(context.Background(), 300); err != nil {
					t.Fatalf("RunTicks: %v", err)
				}
				return fl
			}
			shared, perBuilding := mk(), mk()

			update := func(tC, dewC float64) {
				if err := shared.Apply(Event{Kind: EventClimate, TC: tC, DewC: dewC}); err != nil {
					t.Fatalf("Apply climate event: %v", err)
				}
				for i := 0; i < buildings; i++ {
					perBuilding.Building(i).Room().SetOutdoor(psychro.NewStateDewPoint(tC, dewC, 0))
				}
			}
			run := func(n uint64) {
				if err := shared.RunTicks(context.Background(), n); err != nil {
					t.Fatalf("RunTicks after climate event: %v", err)
				}
				if err := perBuilding.RunTicks(context.Background(), n); err != nil {
					t.Fatalf("RunTicks after per-building SetOutdoor: %v", err)
				}
			}
			update(33.0, 27.8)
			run(512) // crosses the epoch boundary at tick 512
			update(29.5, 26.0)
			run(300)

			for i := 0; i < buildings; i++ {
				a, b := traceSHA(t, shared.Building(i)), traceSHA(t, perBuilding.Building(i))
				if a != b {
					t.Errorf("building %d: climate-event trace %s != per-building %s", i, a[:12], b[:12])
				}
				if got := shared.Building(i).Room().Outdoor().T; got != 29.5 {
					t.Errorf("building %d: outdoor T = %v after climate event, want 29.5", i, got)
				}
			}
			if j := shared.Journal(); len(j) != 2 || j[0].Tick != 300 || j[1].Tick != 812 {
				t.Errorf("journal = %+v, want two climate entries at ticks 300 and 812", j)
			}
		})
	}
}

func TestFleetMemoryBudget(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Shards = 1
	fl, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	got := fl.BytesPerBuilding()
	if got <= 0 {
		t.Fatalf("BytesPerBuilding() = %d, want > 0", got)
	}
	if got > cfg.MemBudgetBytes {
		t.Fatalf("BytesPerBuilding() = %d exceeds the %d budget", got, cfg.MemBudgetBytes)
	}

	tight := cfg
	tight.MemBudgetBytes = 1
	if _, err := New(context.Background(), tight); err == nil {
		t.Fatal("New with a 1-byte budget succeeded, want over-budget error")
	} else if !strings.Contains(err.Error(), "over the") {
		t.Fatalf("New with 1-byte budget: %v, want over-budget error", err)
	}
}

func TestStandaloneIndexRange(t *testing.T) {
	cfg := DefaultConfig(4)
	for _, i := range []int{-1, 4} {
		if _, err := Standalone(cfg, i); err == nil {
			t.Fatalf("Standalone(%d) succeeded, want out-of-range error", i)
		}
	}
}

func TestFleetStats(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.Shards = 2
	cfg.MemBudgetBytes = 0
	fl, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := fl.Run(context.Background(), 10*time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := fl.Stats()
	if st.Buildings != 6 {
		t.Fatalf("Stats.Buildings = %d, want 6", st.Buildings)
	}
	if st.TicksRun != uint64(10*time.Minute/cfg.Base.Step) {
		t.Fatalf("Stats.TicksRun = %d", st.TicksRun)
	}
	if math.IsNaN(st.AvgTempC) || st.AvgTempC < 10 || st.AvgTempC > 45 {
		t.Fatalf("Stats.AvgTempC = %v, outside plausible range", st.AvgTempC)
	}
	if st.MinTempC > st.AvgTempC || st.MaxTempC < st.AvgTempC {
		t.Fatalf("Stats min/avg/max inconsistent: %v / %v / %v", st.MinTempC, st.AvgTempC, st.MaxTempC)
	}
	if math.IsNaN(st.AvgDewC) {
		t.Fatal("Stats.AvgDewC is NaN")
	}
}
