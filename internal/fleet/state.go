package fleet

import (
	"fmt"

	"bubblezero/internal/core"
)

// State is a fleet snapshot: the tick count, the applied-event journal,
// and every building's full mutable state. Export only between RunTicks
// calls — every epoch exit flushes each engine's cadence wheel, so that
// point is quiescent — and restore only into a freshly constructed Fleet
// built from the same Config. Construction is deterministic, so the
// rebuilt topology matches position for position; journaled fault events
// scheduled timeline closures, which cannot be serialized, so restore
// replays them at their journaled instants before patching component
// state. Climate and door events mutate component state directly, so
// their effect travels inside the building snapshots and they are never
// replayed.
//
//bzlint:state ExportState RestoreState
type State struct {
	Ticks     uint64
	Journal   []AppliedEvent
	Buildings []core.SystemState
}

// ExportState captures the fleet's full mutable state. Events queued but
// not yet drained are applied first, at the current epoch boundary —
// exactly where the next RunTicks would land them — so nothing in flight
// is silently dropped from the snapshot.
func (f *Fleet) ExportState() (State, error) {
	if err := f.drainEvents(); err != nil {
		return State{}, err
	}
	st := State{
		Ticks:     f.ticks,
		Journal:   f.Journal(),
		Buildings: make([]core.SystemState, len(f.buildings)),
	}
	for i, sys := range f.buildings {
		bs, err := sys.ExportState()
		if err != nil {
			return State{}, fmt.Errorf("fleet: export building %d: %w", i, err)
		}
		st.Buildings[i] = bs
	}
	return st, nil
}

// RestoreState patches a freshly constructed Fleet to the captured point.
// The receiver must have been built from the same Config as the exporter
// and not yet run. Journaled fault events replay first: applyNow
// re-schedules the same timeline closures at the same absolute instants,
// and each engine's restore then drops exactly the prefix that had
// already fired before the snapshot. Structural mismatches are reported
// before any building is mutated.
func (f *Fleet) RestoreState(st State) error {
	if f.ticks != 0 || len(f.Journal()) != 0 {
		return fmt.Errorf("fleet: restore target must be freshly constructed (ticks=%d)", f.ticks)
	}
	if len(st.Buildings) != len(f.buildings) {
		return fmt.Errorf("fleet: fleet has %d buildings, snapshot has %d",
			len(f.buildings), len(st.Buildings))
	}
	for i, ae := range st.Journal {
		if ae.Event.Kind != EventFault {
			continue
		}
		if err := ae.Event.Validate(len(f.buildings)); err != nil {
			return fmt.Errorf("fleet: journal entry %d: %w", i, err)
		}
		if err := f.applyNow(ae.Event, ae.Tick); err != nil {
			return fmt.Errorf("fleet: replay journal entry %d: %w", i, err)
		}
	}
	for i, sys := range f.buildings {
		if err := sys.RestoreState(st.Buildings[i]); err != nil {
			return fmt.Errorf("fleet: restore building %d: %w", i, err)
		}
	}
	f.ticks = st.Ticks
	f.evMu.Lock()
	f.journal = append([]AppliedEvent(nil), st.Journal...)
	f.evMu.Unlock()
	return nil
}
