package fleet

import (
	"context"
	"strings"
	"testing"
	"time"

	"bubblezero/internal/fault"
)

// snapshotCfg is the round-trip scenario: a small sharded fleet with full
// sampling, a construction fault plan on building 1 (so its watchdog is
// armed and its state travels in the snapshot), banked or not.
func snapshotCfg(t *testing.T, bank bool) Config {
	t.Helper()
	cfg := DefaultConfig(4)
	cfg.SampleEvery = 1
	cfg.MemBudgetBytes = 0
	cfg.Shards = 2
	cfg.EpochTicks = 256
	cfg.Bank = bank
	cfg.FaultPlan = func(i int, seed uint64) *fault.Plan {
		if i != 1 {
			return nil
		}
		plan, err := fault.NewPlan(
			fault.SensorStuck(2*time.Minute, 3*time.Minute, "bt-temp-2"),
		)
		if err != nil {
			t.Fatalf("NewPlan: %v", err)
		}
		return plan
	}
	return cfg
}

// liveEvents is the mutation batch both runs inject at the tick-300
// boundary: a fleet-wide weather change, a door disturbance, and a live
// fault plan on building 2 whose first event fires before the snapshot
// point (tick 556) and whose second fires after it — so restore must both
// drop a fired closure prefix and re-schedule a pending one.
func liveEvents() []Event {
	return []Event{
		{Kind: EventClimate, TC: 33.5, DewC: 27.2},
		{Kind: EventDoor, Building: 0, Door: 90 * time.Second},
		{Kind: EventFault, Building: 2, Faults: []fault.Event{
			fault.BurstLoss(60*time.Second, 120*time.Second, 0.5),               // fires 360, clears 480
			fault.ChillerTrip(400*time.Second, 120*time.Second, fault.LoopVent), // fires 700, clears 820
		}},
	}
}

func applyAll(t *testing.T, fl *Fleet, evs []Event) {
	t.Helper()
	for i, ev := range evs {
		if err := fl.Apply(ev); err != nil {
			t.Fatalf("Apply event %d: %v", i, err)
		}
	}
}

// TestFleetSnapshotRoundTrip pins the digital-twin checkpoint contract:
// a fleet checkpointed at tick 556 and restored into a freshly built
// fleet (same Config) must finish the run bit-identical — trace SHA and
// Float64bits zone state — to the uninterrupted reference, with no
// golden-epoch re-pin. The scenario covers a construction-armed fault
// plan, a live-injected plan replayed from the journal, and climate/door
// events carried purely by component state.
func TestFleetSnapshotRoundTrip(t *testing.T) {
	const (
		preTicks  = 300 // before the mutation batch
		snapTicks = 256 // mutation batch → checkpoint at tick 556
		endTicks  = 900
	)
	for _, bank := range []bool{true, false} {
		t.Run(boolName("bank", bank), func(t *testing.T) {
			cfg := snapshotCfg(t, bank)

			// Uninterrupted reference.
			ref, err := New(context.Background(), cfg)
			if err != nil {
				t.Fatalf("New(ref): %v", err)
			}
			if err := ref.RunTicks(context.Background(), preTicks); err != nil {
				t.Fatalf("ref pre-run: %v", err)
			}
			applyAll(t, ref, liveEvents())
			if err := ref.RunTicks(context.Background(), endTicks-preTicks); err != nil {
				t.Fatalf("ref run to end: %v", err)
			}

			// Checkpointed run: identical through tick 556, then export.
			chk, err := New(context.Background(), cfg)
			if err != nil {
				t.Fatalf("New(chk): %v", err)
			}
			if err := chk.RunTicks(context.Background(), preTicks); err != nil {
				t.Fatalf("chk pre-run: %v", err)
			}
			applyAll(t, chk, liveEvents())
			if err := chk.RunTicks(context.Background(), snapTicks); err != nil {
				t.Fatalf("chk run to snapshot: %v", err)
			}
			st, err := chk.ExportState()
			if err != nil {
				t.Fatalf("ExportState: %v", err)
			}
			if st.Ticks != preTicks+snapTicks {
				t.Fatalf("snapshot Ticks = %d, want %d", st.Ticks, preTicks+snapTicks)
			}

			// Fresh process stand-in: new fleet from the same config,
			// restored, run to the end.
			res, err := New(context.Background(), cfg)
			if err != nil {
				t.Fatalf("New(res): %v", err)
			}
			if err := res.RestoreState(st); err != nil {
				t.Fatalf("RestoreState: %v", err)
			}
			if err := res.RunTicks(context.Background(), endTicks-preTicks-snapTicks); err != nil {
				t.Fatalf("restored run to end: %v", err)
			}

			if got := res.Ticks(); got != endTicks {
				t.Fatalf("restored Ticks() = %d, want %d", got, endTicks)
			}
			for i := 0; i < cfg.Buildings; i++ {
				if got, want := roomStateKey(res.Building(i)), roomStateKey(ref.Building(i)); got != want {
					t.Errorf("building %d: restored zone state diverged from uninterrupted run", i)
				}
				if got, want := traceSHA(t, res.Building(i)), traceSHA(t, ref.Building(i)); got != want {
					t.Errorf("building %d: restored trace %s != uninterrupted %s", i, got[:12], want[:12])
				}
			}
			if got, want := res.Journal(), ref.Journal(); len(got) != len(want) {
				t.Errorf("restored journal has %d entries, reference %d", len(got), len(want))
			}
		})
	}
}

// TestFleetSnapshotExportDrainsPending pins that events still queued at
// export time land in the snapshot: they are applied at the current
// boundary and journaled, not dropped.
func TestFleetSnapshotExportDrainsPending(t *testing.T) {
	cfg := snapshotCfg(t, false)
	fl, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := fl.RunTicks(context.Background(), 128); err != nil {
		t.Fatalf("RunTicks: %v", err)
	}
	if err := fl.Apply(Event{Kind: EventClimate, TC: 30, DewC: 25}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	st, err := fl.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	if len(st.Journal) != 1 || st.Journal[0].Tick != 128 {
		t.Fatalf("journal = %+v, want one climate entry at tick 128", st.Journal)
	}
	if got := fl.Building(0).Room().Outdoor().T; got != 30 {
		t.Fatalf("outdoor T = %v after export-time drain, want 30", got)
	}
}

// TestFleetRestoreRejectsMismatch pins the structural guards: restore
// refuses a fleet that has already run and a snapshot sized for a
// different fleet.
func TestFleetRestoreRejectsMismatch(t *testing.T) {
	cfg := snapshotCfg(t, false)
	src, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := src.RunTicks(context.Background(), 64); err != nil {
		t.Fatalf("RunTicks: %v", err)
	}
	st, err := src.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}

	if err := src.RestoreState(st); err == nil || !strings.Contains(err.Error(), "freshly constructed") {
		t.Fatalf("restore into run fleet: err = %v, want freshly-constructed guard", err)
	}

	small := cfg
	small.Buildings = 2
	tgt, err := New(context.Background(), small)
	if err != nil {
		t.Fatalf("New(small): %v", err)
	}
	if err := tgt.RestoreState(st); err == nil || !strings.Contains(err.Error(), "buildings") {
		t.Fatalf("restore into wrong-size fleet: err = %v, want building-count guard", err)
	}
}

func boolName(prefix string, v bool) string {
	if v {
		return prefix + "=true"
	}
	return prefix + "=false"
}
