package fleet

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"bubblezero/internal/core"
	"bubblezero/internal/runner"
	"bubblezero/internal/sim"
	"bubblezero/internal/thermal"
)

// defaultEpochTicks is the epoch length when Config.EpochTicks is 0. It
// only trades scheduling granularity (cancellation latency, shard
// rebalancing points) against per-epoch dispatch overhead; results are
// epoch-invariant because sim.Engine.RunTicks flushes the cadence wheel
// on every run exit.
const defaultEpochTicks = 512

// Fleet is N independent BubbleZERO buildings stepped in lockstep epochs,
// sharded across a bounded worker pool. With Config.Bank set, each
// shard's buildings bind their zone state into one contiguous
// thermal.RoomBank and the shard steps tick-phased: engines first, then
// one fused StepAll physics pass over the whole bank.
//
//bzlint:guards evMu pendingEv,journal
type Fleet struct {
	cfg       Config
	shards    [][]*core.System    // disjoint contiguous blocks of buildings
	buildings []*core.System      // index order, buildings[i] is building i
	banks     []*thermal.RoomBank // per-shard zone banks; nil when Config.Bank is off
	pool      *runner.Pool

	epochTicks       uint64
	step             time.Duration
	dtS              float64 // step in seconds, the engines' integration dt
	ticks            uint64  // ticks advanced so far
	bytesPerBuilding int64   // measured live-heap delta at construction

	// Live-mutation queue and journal (event.go). evMu guards both:
	// Apply may race RunTicks, which drains the queue at epoch
	// boundaries.
	evMu      sync.Mutex
	pendingEv []Event
	journal   []AppliedEvent
}

// New validates cfg, instantiates the fleet's buildings in parallel, and
// partitions them into shards. Construction measures the live-heap cost
// per building and fails if it exceeds cfg.MemBudgetBytes.
//
//bzlint:mutroute fleet.Apply construction: the fleet is not running yet and takeover precedes the first tick
func New(ctx context.Context, cfg Config) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nShards := cfg.Shards
	if nShards == 0 {
		nShards = runtime.NumCPU()
	}
	if nShards > cfg.Buildings {
		nShards = cfg.Buildings
	}
	epoch := uint64(cfg.EpochTicks)
	if epoch == 0 {
		epoch = defaultEpochTicks
	}

	quiet, sampled, err := sharedHandles(cfg)
	if err != nil {
		return nil, err
	}

	f := &Fleet{
		cfg:        cfg,
		buildings:  make([]*core.System, cfg.Buildings),
		pool:       runner.NewPool(nShards),
		epochTicks: epoch,
		step:       cfg.Base.Step,
		dtS:        cfg.Base.Step.Seconds(),
	}

	// Live-heap cost per building: GC-settled HeapAlloc delta across the
	// construction of all N buildings, amortized. This is the number the
	// memory budget gates and the fleet benchmark reports.
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	// On the banked path each shard gets one RoomBank sized to the block
	// partition it will own (shard s steps buildings [s*N/S, (s+1)*N/S)),
	// and building i binds row i-lo of its shard's bank. The banks are
	// allocated inside the measured memory window: their rows replace the
	// per-room private storage an unbanked build would have allocated, so
	// the budget still gates the real per-building live-heap cost.
	var bankOf []*thermal.RoomBank
	var rowOf []int
	if cfg.Bank {
		f.banks = make([]*thermal.RoomBank, nShards)
		bankOf = make([]*thermal.RoomBank, cfg.Buildings)
		rowOf = make([]int, cfg.Buildings)
		for s := 0; s < nShards; s++ {
			lo := s * cfg.Buildings / nShards
			hi := (s + 1) * cfg.Buildings / nShards
			bank, err := thermal.NewRoomBank(hi - lo)
			if err != nil {
				return nil, fmt.Errorf("fleet: shard %d bank: %w", s, err)
			}
			f.banks[s] = bank
			for i := lo; i < hi; i++ {
				bankOf[i], rowOf[i] = bank, i-lo
			}
		}
	}

	// Buildings are independent, so construction parallelises across the
	// same pool that will step them. Each job writes only its own slot
	// (bank row binding is goroutine-safe: rows are disjoint).
	if err := f.pool.ForEach(ctx, cfg.Buildings, func(_ context.Context, i int) error {
		var bank *thermal.RoomBank
		var row int
		if bankOf != nil {
			bank, row = bankOf[i], rowOf[i]
		}
		sys, err := newBuilding(&cfg, quiet, sampled, i, bank, row)
		if err != nil {
			return fmt.Errorf("fleet: building %d: %w", i, err)
		}
		f.buildings[i] = sys
		return nil
	}); err != nil {
		return nil, err
	}

	// Banked rooms are stepped by the shard's fused StepAll pass, not by
	// their own engines: take each room over so the engine skips it.
	if cfg.Bank {
		for _, sys := range f.buildings {
			sys.TakeOverRoom()
		}
	}

	var after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&after)
	if d := int64(after.HeapAlloc) - int64(before.HeapAlloc); d > 0 {
		f.bytesPerBuilding = d / int64(cfg.Buildings)
	}
	if cfg.MemBudgetBytes > 0 && f.bytesPerBuilding > cfg.MemBudgetBytes {
		return nil, fmt.Errorf("fleet: %d buildings cost %d B/building live heap, over the %d B budget",
			cfg.Buildings, f.bytesPerBuilding, cfg.MemBudgetBytes)
	}

	// Contiguous block partition: shard s owns [s*N/S, (s+1)*N/S). Block
	// assignment keeps each shard's buildings adjacent in memory and makes
	// the ownership trivially disjoint.
	f.shards = make([][]*core.System, nShards)
	for s := 0; s < nShards; s++ {
		lo := s * cfg.Buildings / nShards
		hi := (s + 1) * cfg.Buildings / nShards
		f.shards[s] = f.buildings[lo:hi:hi]
	}
	return f, nil
}

// sharedHandles builds the one (or two) validated read-only config
// handles every building aliases: a quiet template with tracing disabled,
// and — only when sampling is on — a template with the Base trace period.
func sharedHandles(cfg Config) (quiet, sampled *core.Shared, err error) {
	quietCfg := cfg.Base
	quietCfg.TracePeriod = 0
	quiet, err = core.NewShared(quietCfg)
	if err != nil {
		return nil, nil, err
	}
	if cfg.SampleEvery > 0 {
		sampled, err = core.NewShared(cfg.Base)
		if err != nil {
			return nil, nil, err
		}
	}
	return quiet, sampled, nil
}

// newBuilding assembles building i exactly as Standalone does: shared
// template + the deterministic per-building parameterisation. A non-nil
// bank binds the building's zone state into the given bank row; the
// assembled system is bit-identical either way.
//
//bzlint:mutroute fleet.Apply construction: deterministic per-building parameterisation before the first tick
func newBuilding(cfg *Config, quiet, sampled *core.Shared, i int, bank *thermal.RoomBank, row int) (*core.System, error) {
	p := cfg.ParamsFor(i)
	opts := make([]core.Option, 0, 4)
	opts = append(opts, core.WithSeed(p.Seed))
	if bank != nil {
		opts = append(opts, core.WithZoneBank(bank, row))
	}
	if p.Climate {
		opts = append(opts, core.WithOutdoor(p.OutdoorC, p.OutdoorDewC))
	}
	if cfg.FaultPlan != nil {
		if plan := cfg.FaultPlan(i, p.Seed); plan != nil {
			opts = append(opts, core.WithFaultPlan(plan))
		}
	}
	sh := quiet
	isSampled := cfg.SampleEvery > 0 && i%cfg.SampleEvery == 0
	if isSampled {
		sh = sampled
	}
	sys, err := sh.NewSystem(opts...)
	if err != nil {
		return nil, err
	}
	for z := 0; z < thermal.NumZones; z++ {
		if n := p.Occupants[z]; n > 0 {
			sys.Room().SetOccupants(thermal.ZoneID(z), n)
		}
	}
	if isSampled && cfg.SampleRetention > 0 {
		rec := sys.Recorder()
		for _, name := range rec.Names() {
			rec.Series(name).SetRetention(cfg.SampleRetention)
		}
	}
	return sys, nil
}

// Standalone assembles building i of the fleet described by cfg as a
// single System, outside any fleet. With the same cfg and i it is
// bit-identical to Fleet.Building(i) stepped the same number of ticks —
// the property the determinism tests pin.
func Standalone(cfg Config, i int) (*core.System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if i < 0 || i >= cfg.Buildings {
		return nil, fmt.Errorf("fleet: building index %d out of range [0, %d)", i, cfg.Buildings)
	}
	quiet, sampled, err := sharedHandles(cfg)
	if err != nil {
		return nil, err
	}
	// Standalone builds are never banked: they are the private-storage
	// reference the banked fleet's bit-identity is pinned against.
	return newBuilding(&cfg, quiet, sampled, i, nil, 0)
}

// stepShard advances every building the shard owns by `ticks`. This is
// the fleet hot path: everything it reaches must stay deterministic and
// allocation-free in steady state.
//
//bzlint:hotpath
func stepShard(ctx context.Context, systems []*core.System, ticks uint64) error {
	for _, sys := range systems {
		if err := sys.Engine().RunTicks(ctx, ticks); err != nil {
			return err
		}
	}
	return nil
}

// bankedCtxCheckTicks bounds how many phased ticks pass between context
// checks on the banked path. One phased tick steps the whole shard, so a
// check per 64 ticks is already far more frequent per unit of work than
// RunTicks' once-per-simulated-minute cadence for any shard size.
const bankedCtxCheckTicks = 64

// flushShard flushes every engine's cadence wheel — the end-of-run
// catch-up RunTicks performs on each of its own return paths, applied on
// every exit from a phased epoch.
func flushShard(systems []*core.System) {
	for _, sys := range systems {
		sys.Engine().FlushCadenced()
	}
}

// bankBlockBuildings is the phased block width: how many buildings step
// together tick-by-tick before the shard moves to the next block. Within
// a block, each tick steps every engine then one fused StepRange pass
// over the block's bank rows. The width trades physics fusion against
// cache residency — a block's full working set (engines, devices,
// controllers, zone rows) must stay resident across an epoch for the
// phased loop to beat per-building stepping, so the width is sized for
// a few hundred KiB, well inside L2.
const bankBlockBuildings = 8

// stepShardBanked advances a banked shard in phased blocks: for each
// block of bankBlockBuildings buildings, every tick first steps each
// building's engine — sensors, network, controllers, glue; the room
// physics is taken over — then runs one fused RoomBank.StepRange pass
// over the block's zone rows. Buildings never interact, and within a
// tick each building's components still run in registration order with
// its room last — exactly the position the engine would have stepped
// it — so neither the tick-level interleaving inside a block nor the
// block order can change any building's outputs: results are
// bit-identical to stepShard.
//
//bzlint:hotpath
func stepShardBanked(ctx context.Context, systems []*core.System, bank *thermal.RoomBank, dtS float64, ticks uint64) error {
	for lo := 0; lo < len(systems); lo += bankBlockBuildings {
		hi := lo + bankBlockBuildings
		if hi > len(systems) {
			hi = len(systems)
		}
		block := systems[lo:hi]
		for t := uint64(0); t < ticks; t++ {
			if t%bankedCtxCheckTicks == 0 {
				select {
				case <-ctx.Done():
					flushShard(systems)
					//bzlint:allow hotpath cold cancellation exit, runs at most once per run
					return fmt.Errorf("fleet: run: %w", ctx.Err())
				default:
				}
			}
			for _, sys := range block {
				if sys.Engine().StepTick() {
					// Fleet buildings install no stop conditions today; mirror
					// RunTicks' contract anyway so one never silently no-ops.
					flushShard(systems)
					return sim.ErrStopped
				}
			}
			bank.StepRange(lo, hi, dtS)
		}
	}
	flushShard(systems)
	return nil
}

// RunTicks advances every building by n ticks, in epochs of EpochTicks.
// Within an epoch each shard steps its buildings sequentially with no
// cross-shard communication; shards only rejoin at epoch boundaries.
// Per-building results are independent of the shard count and epoch
// length.
func (f *Fleet) RunTicks(ctx context.Context, n uint64) error {
	for n > 0 {
		if err := f.drainEvents(); err != nil {
			return err
		}
		t := f.epochTicks
		if t > n {
			t = n
		}
		if err := f.pool.ForEach(ctx, len(f.shards), func(ctx context.Context, s int) error {
			if f.banks != nil {
				return stepShardBanked(ctx, f.shards[s], f.banks[s], f.dtS, t)
			}
			return stepShard(ctx, f.shards[s], t)
		}); err != nil {
			return err
		}
		f.ticks += t
		n -= t
	}
	return nil
}

// Run advances every building by d of simulated time (truncated to whole
// ticks, matching System.Run).
func (f *Fleet) Run(ctx context.Context, d time.Duration) error {
	return f.RunTicks(ctx, uint64(d/f.step))
}

// Buildings returns the fleet size.
func (f *Fleet) Buildings() int { return len(f.buildings) }

// Shards returns the effective shard count.
func (f *Fleet) Shards() int { return len(f.shards) }

// Banked reports whether the fleet steps through per-shard zone banks.
func (f *Fleet) Banked() bool { return f.banks != nil }

// Ticks returns how many ticks every building has advanced.
func (f *Fleet) Ticks() uint64 { return f.ticks }

// Building returns building i.
func (f *Fleet) Building(i int) *core.System { return f.buildings[i] }

// BytesPerBuilding returns the measured live-heap bytes per building at
// construction (GC-settled HeapAlloc delta across instantiation,
// amortized over N).
func (f *Fleet) BytesPerBuilding() int64 { return f.bytesPerBuilding }

// Stats is a fleet-wide aggregate, accumulated in building-index order so
// the float sums are deterministic.
type Stats struct {
	Buildings int
	TicksRun  uint64
	// Room air temperature across the fleet (per-building averages).
	AvgTempC, MinTempC, MaxTempC float64
	// Average per-building dew point.
	AvgDewC float64
	// Mean whole-system COP over buildings with accumulated duty.
	AvgCOP     float64
	COPSamples int
	// Total condensation exposure across the fleet.
	CondensationS float64
}

// Stats aggregates the fleet's current state deterministically.
func (f *Fleet) Stats() Stats {
	st := Stats{
		Buildings: len(f.buildings),
		TicksRun:  f.ticks,
		MinTempC:  math.Inf(1),
		MaxTempC:  math.Inf(-1),
	}
	var sumT, sumDew, sumCOP float64
	for _, sys := range f.buildings {
		t := sys.Room().AverageT()
		sumT += t
		sumDew += sys.Room().AverageDewPoint()
		if t < st.MinTempC {
			st.MinTempC = t
		}
		if t > st.MaxTempC {
			st.MaxTempC = t
		}
		if cop := sys.COPTotal().Value(); !math.IsNaN(cop) && !math.IsInf(cop, 0) {
			sumCOP += cop
			st.COPSamples++
		}
		st.CondensationS += sys.CondensationSeconds()
	}
	n := float64(len(f.buildings))
	st.AvgTempC = sumT / n
	st.AvgDewC = sumDew / n
	if st.COPSamples > 0 {
		st.AvgCOP = sumCOP / float64(st.COPSamples)
	}
	return st
}
