// Package runner provides the concurrency substrate for the experiment
// suite: a bounded worker Pool that fans independent experiment closures
// across goroutines with first-error cancellation, a singleflight Cache
// that deduplicates identical expensive computations, and deterministic
// per-job seed derivation so parallel experiments draw from disjoint,
// reproducible random streams.
//
// Determinism contract: the pool never communicates results — jobs write
// into caller-owned, per-index slots — and seeds are derived from (base,
// index) alone, so the outcome of a fan-out is identical at any worker
// count, including 1.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Job is one unit of independent work. Jobs must not share mutable state
// except through distinct result slots owned by the caller.
type Job func(ctx context.Context) error

// Pool executes batches of independent jobs on a bounded set of workers.
// A Pool is stateless between Run calls and safe for concurrent use.
type Pool struct {
	workers int
}

// NewPool returns a pool with the given worker count; workers <= 0 selects
// runtime.NumCPU().
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{workers: workers}
}

// Workers returns the configured worker count.
func (p *Pool) Workers() int { return p.workers }

// Run executes the jobs concurrently on at most Workers goroutines and
// waits for all of them. The first error cancels the context handed to the
// remaining jobs; jobs not yet started are skipped once an error is
// recorded. The first error (in completion order) is returned.
func (p *Pool) Run(ctx context.Context, jobs ...Job) error {
	if len(jobs) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// A single in-flight job needs no goroutines; this keeps width-1 pools
	// (and the common one-job case) trivially deterministic to debug.
	if len(jobs) == 1 {
		return jobs[0](ctx)
	}

	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	workers := p.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	next := make(chan Job)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for job := range next {
				if jobCtx.Err() != nil {
					continue // drain: an earlier job already failed
				}
				if err := job(jobCtx); err != nil {
					fail(err)
				}
			}
		}()
	}
	for _, job := range jobs {
		next <- job
	}
	close(next)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// ForEach runs fn for every index in [0, n) through the pool. Results
// must be written into per-index slots; the iteration order is unspecified
// but the set of indices is exactly [0, n).
func (p *Pool) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = func(ctx context.Context) error {
			if err := fn(ctx, i); err != nil {
				return fmt.Errorf("job %d: %w", i, err)
			}
			return nil
		}
	}
	return p.Run(ctx, jobs...)
}

// DeriveSeed maps a (base seed, job index) pair to an independent seed via
// a splitmix64 finalizer. Two jobs of the same fan-out never share a
// stream, and the mapping depends only on its inputs — never on worker
// count or scheduling — so parallel sweeps stay bit-reproducible.
func DeriveSeed(base, index uint64) uint64 {
	z := base + 0x9e3779b97f4a7c15*(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
