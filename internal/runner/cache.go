package runner

import (
	"context"
	"sync"
	"time"
)

// Cache memoizes the results of expensive computations keyed by K, with
// singleflight deduplication: concurrent Do calls for the same key block
// on one execution and share its result. Successful results are retained
// (up to the entry bound); failed flights are forgotten so a later call
// retries instead of caching the error.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*flight[V]
	order   []K // insertion order, for FIFO eviction
	max     int // max retained entries; <= 0 means unbounded
}

type flight[V any] struct {
	done chan struct{} // closed when val/err are final
	val  V
	err  error
}

// NewCache returns a cache retaining at most maxEntries successful
// results; maxEntries <= 0 disables the bound. In-flight computations are
// never evicted.
func NewCache[K comparable, V any](maxEntries int) *Cache[K, V] {
	return &Cache[K, V]{entries: make(map[K]*flight[V]), max: maxEntries}
}

// Do returns the cached value for key, or runs fn to compute it. If
// another Do for the same key is already in flight, the call waits for it
// and shares its outcome instead of recomputing. Waiters whose context is
// cancelled return early with the context error; the in-flight
// computation itself keeps the context of the caller that started it.
func (c *Cache[K, V]) Do(ctx context.Context, key K, fn func(ctx context.Context) (V, error)) (V, error) {
	c.mu.Lock()
	if f, ok := c.entries[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, f.err
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err()
		}
	}
	f := &flight[V]{done: make(chan struct{})}
	c.entries[key] = f
	c.mu.Unlock()

	f.val, f.err = fn(ctx)
	close(f.done)

	c.mu.Lock()
	if f.err != nil {
		// Do not cache failures (cancellation included): the next caller
		// gets a fresh attempt.
		delete(c.entries, key)
	} else {
		c.order = append(c.order, key)
		c.evictLocked()
	}
	c.mu.Unlock()
	return f.val, f.err
}

// evictLocked drops the oldest completed entries beyond the bound.
func (c *Cache[K, V]) evictLocked() {
	if c.max <= 0 {
		return
	}
	for len(c.order) > c.max {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
}

// Len returns the number of retained (completed) entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.order)
}

// Purge drops every completed entry, releasing the memory held by cached
// values. In-flight computations are unaffected.
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, k := range c.order {
		delete(c.entries, k)
	}
	c.order = nil
}

// ScenarioKey identifies one simulated scenario: everything else about a
// run is derived deterministically from the seed and the horizon.
type ScenarioKey struct {
	Seed     uint64
	Duration time.Duration
}

// ScenarioCache memoizes scenario results keyed by (seed, duration). V is
// the scenario result type; it is a type parameter so the runner does not
// import the experiment packages it serves.
type ScenarioCache[V any] struct {
	cache Cache[ScenarioKey, V]
}

// NewScenarioCache returns a scenario cache bounded to maxEntries
// scenarios (<= 0 for unbounded). Scenario results hold every recorded
// sample of a multi-hour run, so the bound is the cache's memory budget.
func NewScenarioCache[V any](maxEntries int) *ScenarioCache[V] {
	return &ScenarioCache[V]{cache: Cache[ScenarioKey, V]{
		entries: make(map[ScenarioKey]*flight[V]), max: maxEntries,
	}}
}

// Get returns the memoized scenario for (seed, d), running fn at most once
// per key across all concurrent callers.
func (c *ScenarioCache[V]) Get(ctx context.Context, seed uint64, d time.Duration, fn func(ctx context.Context, seed uint64, d time.Duration) (V, error)) (V, error) {
	return c.cache.Do(ctx, ScenarioKey{Seed: seed, Duration: d}, func(ctx context.Context) (V, error) {
		return fn(ctx, seed, d)
	})
}

// Len returns the number of retained scenarios.
func (c *ScenarioCache[V]) Len() int { return c.cache.Len() }

// Purge drops every retained scenario.
func (c *ScenarioCache[V]) Purge() { c.cache.Purge() }
