package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEveryJobOnce(t *testing.T) {
	const n = 100
	var counts [n]atomic.Int32
	p := NewPool(4)
	err := p.ForEach(context.Background(), n, func(_ context.Context, i int) error {
		counts[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Errorf("job %d ran %d times", i, got)
		}
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	p := NewPool(workers)
	err := p.ForEach(context.Background(), 50, func(context.Context, int) error {
		cur := inFlight.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", got, workers)
	}
}

func TestPoolFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var started, cancelled atomic.Int32
	p := NewPool(2)
	err := p.ForEach(context.Background(), 40, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		select {
		case <-ctx.Done():
			cancelled.Add(1)
		case <-time.After(5 * time.Millisecond):
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if started.Load() == 40 {
		t.Log("all jobs started before cancellation propagated (timing-dependent, not a failure)")
	}
}

func TestPoolRespectsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := NewPool(2)
	ran := false
	err := p.Run(ctx, func(context.Context) error { ran = true; return nil },
		func(context.Context) error { ran = true; return nil })
	if err == nil {
		t.Error("cancelled context should fail the batch")
	}
	if ran {
		t.Error("no job should run under a pre-cancelled context")
	}
}

func TestPoolWidthIndependence(t *testing.T) {
	// The same fan-out must produce identical per-slot results at any
	// worker count — the determinism contract the experiment sweeps rely
	// on.
	run := func(workers int) []uint64 {
		out := make([]uint64, 64)
		p := NewPool(workers)
		if err := p.ForEach(context.Background(), len(out), func(_ context.Context, i int) error {
			out[i] = DeriveSeed(42, uint64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	wide := run(8)
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("slot %d differs: width-1 %d vs width-8 %d", i, serial[i], wide[i])
		}
	}
}

func TestDeriveSeedDisjoint(t *testing.T) {
	seen := make(map[uint64]uint64)
	for base := uint64(0); base < 4; base++ {
		for i := uint64(0); i < 1000; i++ {
			s := DeriveSeed(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %d (base %d idx %d, prev %d)", s, base, i, prev)
			}
			seen[s] = base
			if s == base {
				t.Errorf("derived seed equals base %d at idx %d", base, i)
			}
		}
	}
}

func TestCacheSingleflight(t *testing.T) {
	var runs atomic.Int32
	c := NewCache[string, int](0)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := c.Do(context.Background(), "k", func(context.Context) (int, error) {
				runs.Add(1)
				time.Sleep(2 * time.Millisecond)
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1 (singleflight)", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	var runs int
	c := NewCache[int, int](0)
	fail := errors.New("transient")
	if _, err := c.Do(context.Background(), 1, func(context.Context) (int, error) {
		runs++
		return 0, fail
	}); !errors.Is(err, fail) {
		t.Fatalf("err = %v", err)
	}
	v, err := c.Do(context.Background(), 1, func(context.Context) (int, error) {
		runs++
		return 9, nil
	})
	if err != nil || v != 9 {
		t.Fatalf("retry = %d, %v", v, err)
	}
	if runs != 2 {
		t.Errorf("fn ran %d times, want 2 (errors are not memoized)", runs)
	}
}

func TestCacheEvictsOldest(t *testing.T) {
	c := NewCache[int, int](2)
	for k := 0; k < 3; k++ {
		if _, err := c.Do(context.Background(), k, func(context.Context) (int, error) {
			return k * 10, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// Key 0 was evicted: recomputing it must call fn again.
	recomputed := false
	if _, err := c.Do(context.Background(), 0, func(context.Context) (int, error) {
		recomputed = true
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Error("oldest entry survived past the bound")
	}
	// Key 2 must still be cached.
	if _, err := c.Do(context.Background(), 2, func(context.Context) (int, error) {
		t.Error("recent entry was evicted")
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCachePurge(t *testing.T) {
	c := NewCache[int, int](0)
	for k := 0; k < 4; k++ {
		if _, err := c.Do(context.Background(), k, func(context.Context) (int, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("Len after Purge = %d", c.Len())
	}
	fresh := false
	if _, err := c.Do(context.Background(), 0, func(context.Context) (int, error) { fresh = true; return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if !fresh {
		t.Error("purged entry still served from cache")
	}
}

func TestScenarioCacheKeyedBySeedAndDuration(t *testing.T) {
	c := NewScenarioCache[string](0)
	var runs atomic.Int32
	get := func(seed uint64, d time.Duration) string {
		v, err := c.Get(context.Background(), seed, d, func(_ context.Context, seed uint64, d time.Duration) (string, error) {
			runs.Add(1)
			return fmt.Sprintf("%d/%v", seed, d), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	a := get(1, time.Hour)
	b := get(1, time.Hour) // memoized
	if a != b || runs.Load() != 1 {
		t.Errorf("identical keys recomputed: %q %q (%d runs)", a, b, runs.Load())
	}
	get(1, 2*time.Hour) // different duration
	get(2, time.Hour)   // different seed
	if got := runs.Load(); got != 3 {
		t.Errorf("fn ran %d times, want 3 distinct keys", got)
	}
}

func TestCacheWaiterCancellation(t *testing.T) {
	c := NewCache[string, int](0)
	blocked := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _ = c.Do(context.Background(), "slow", func(context.Context) (int, error) {
			close(blocked)
			<-release
			return 1, nil
		})
	}()
	<-blocked
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Do(ctx, "slow", func(context.Context) (int, error) { return 2, nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter err = %v, want context.Canceled", err)
	}
	close(release)
}
