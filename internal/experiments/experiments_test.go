package experiments

import (
	"context"
	"strings"
	"testing"
	"time"
)

// The experiment horizons here are shortened from the paper's five hours
// to keep the suite fast; the assertions target shape, not exact values.

func TestFig10ReproducesHeadline(t *testing.T) {
	r, err := Fig10(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.TempConverge <= 0 || r.TempConverge > 45*time.Minute {
		t.Errorf("temp convergence %v, want ≈30 min", r.TempConverge)
	}
	if r.DewConverge <= 0 || r.DewConverge > 45*time.Minute {
		t.Errorf("dew convergence %v, want ≈30 min", r.DewConverge)
	}
	if r.Event1DewBlipC < 0.15 || r.Event1DewBlipC > 2 {
		t.Errorf("door blip %.2f °C, want O(0.6)", r.Event1DewBlipC)
	}
	if r.Event2RecoveryMin < 0 || r.Event2RecoveryMin > 20 {
		t.Errorf("2-min door recovery %.0f min, want <= 20", r.Event2RecoveryMin)
	}
	if r.CondensationS > 5 {
		t.Errorf("condensation %.0f s, want ≈0", r.CondensationS)
	}
	if s := r.Summary(); !strings.Contains(s, "Fig10") {
		t.Errorf("summary malformed: %s", s)
	}
}

func TestFig10WriteTable(t *testing.T) {
	r, err := Fig10(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// 105 minutes at 30 s + header = 211 + 1.
	if len(lines) < 200 {
		t.Errorf("table has %d rows, want ≈212", len(lines))
	}
	if !strings.Contains(lines[0], "temp.subsp1") || !strings.Contains(lines[0], "dew.subsp4") {
		t.Errorf("header missing series: %s", lines[0])
	}
}

func TestFig11Ordering(t *testing.T) {
	r, err := Fig11(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(r.BubbleC > r.BubbleZERO && r.BubbleZERO > r.AirCon && r.BubbleC > r.BubbleV) {
		t.Errorf("COP ordering broken: %+v", r)
	}
	if r.ImprovementPct < 25 {
		t.Errorf("improvement %.1f%%, want >25%% (paper 45.5%%)", r.ImprovementPct)
	}
	// Raw power magnitudes in the paper's ballpark.
	if r.RadiantRemovedW < 500 || r.RadiantRemovedW > 1500 {
		t.Errorf("radiant removed %.0f W, want O(965)", r.RadiantRemovedW)
	}
	if r.VentRemovedW < 50 || r.VentRemovedW > 600 {
		t.Errorf("vent removed %.0f W, want O(213)", r.VentRemovedW)
	}
}

func TestNetScenarioStructure(t *testing.T) {
	sc, err := RunNetScenario(context.Background(), 1, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.EventTimes) == 0 {
		t.Fatal("no door/window events scheduled")
	}
	if len(sc.Readings) != 18 {
		t.Errorf("readings for %d devices, want 18", len(sc.Readings))
	}
	for id, rs := range sc.Readings {
		if len(rs) < 100 {
			t.Errorf("device %s recorded only %d samples", id, len(rs))
		}
	}
	if sc.MeanTsndS() <= 2 {
		t.Errorf("mean Tsnd %.1f s, want backoff above the sampling period", sc.MeanTsndS())
	}
	if sc.NetStats.DeliveryRate() < 0.95 {
		t.Errorf("delivery %.3f, want > 0.95", sc.NetStats.DeliveryRate())
	}
	if sc.SteadyElapsed <= 0 {
		t.Error("steady window not recorded")
	}
	for id, d := range sc.SteadyDrainJ {
		if d <= 0 {
			t.Errorf("device %s steady drain %.3f J, want > 0", id, d)
		}
	}
	if len(sc.DetectionDelays(2*time.Minute)) == 0 {
		t.Error("no events detected by the observing motes")
	}
}

func TestFig12ShapeRisingAndSaturating(t *testing.T) {
	r, err := Fig12(context.Background(), 1, 2*time.Hour, []int{5, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	small, big := r.Points[0], r.Points[1]
	if small.AccuracyPct >= big.AccuracyPct {
		t.Errorf("accuracy not rising with N: N=5 %.1f%% vs N=40 %.1f%%",
			small.AccuracyPct, big.AccuracyPct)
	}
	if big.AccuracyPct < 88 {
		t.Errorf("N=40 accuracy %.1f%%, want high (paper ≈98%%)", big.AccuracyPct)
	}
	if small.RAMBytes >= big.RAMBytes || small.CPUSeconds >= big.CPUSeconds {
		t.Error("RAM/CPU not increasing with N")
	}
	if s := r.Summary(); !strings.Contains(s, "Fig12") {
		t.Errorf("summary malformed: %s", s)
	}
}

func TestFig13AccuracyStabilisesHigh(t *testing.T) {
	r, err := Fig13(context.Background(), 1, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalAccuracyPct < 90 {
		t.Errorf("final accuracy %.1f%%, want 97–99%% band", r.FinalAccuracyPct)
	}
	if st := r.Accuracy.Stats(); st.Min >= st.Max {
		t.Error("accuracy series is flat; expected an early dip")
	}
	if r.VarMinStableS <= 0 {
		t.Error("var_min stability instant missing")
	}
	if r.VarMaxStableS < r.VarMinStableS {
		t.Errorf("var_max (%.0f s) should stabilise after var_min (%.0f s)",
			r.VarMaxStableS, r.VarMinStableS)
	}
}

func TestFig14DetectionWithinSeconds(t *testing.T) {
	r, err := Fig14(context.Background(), 1, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if r.StableTsndS != 64 {
		t.Errorf("stable Tsnd %.0f s, want 64 (2 s × w_max 32)", r.StableTsndS)
	}
	if r.Total == 0 || r.Detected == 0 {
		t.Fatalf("no door events detected (%d/%d)", r.Detected, r.Total)
	}
	if r.MeanDelayS <= 0 || r.MeanDelayS > 10 {
		t.Errorf("mean detection delay %.1f s, want a few seconds (paper 2.7)", r.MeanDelayS)
	}
}

func TestFig15LifetimesAndCDF(t *testing.T) {
	r, err := Fig15(context.Background(), 1, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if r.AdaptiveYears <= r.FixedYears {
		t.Errorf("adaptive lifetime %.2f y not above fixed %.2f y", r.AdaptiveYears, r.FixedYears)
	}
	if r.AdaptiveYears < 1.5 {
		t.Errorf("adaptive lifetime %.2f y, want multi-year (paper 3.2)", r.AdaptiveYears)
	}
	if r.FixedYears > 1.3 {
		t.Errorf("fixed lifetime %.2f y, want below ≈1 (paper 0.7)", r.FixedYears)
	}
	if len(r.CDFXs) < 3 {
		t.Errorf("CDF has %d points, want a spread of periods", len(r.CDFXs))
	}
	if last := r.CDFPs[len(r.CDFPs)-1]; last != 1 {
		t.Errorf("CDF does not end at 1: %v", last)
	}
}

func TestAblationSupplyTempCrossover(t *testing.T) {
	pts, err := AblationSupplyTemp(context.Background(), 1, []float64{12, 18})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].ChillerCOP >= pts[1].ChillerCOP {
		t.Error("chiller COP should rise with supply temperature")
	}
	if pts[0].SystemCOP >= pts[1].SystemCOP {
		t.Errorf("18 °C system COP (%.2f) should beat 12 °C (%.2f)",
			pts[1].SystemCOP, pts[0].SystemCOP)
	}
	if !pts[1].ReachedTarget {
		t.Error("18 °C design should still hold the room at target")
	}
	if s := SummarizeSupplyTemp(pts); !strings.Contains(s, "Tsupp") {
		t.Errorf("summary malformed: %s", s)
	}
}

func TestAblationNoCouplingShowsCondensation(t *testing.T) {
	r, err := AblationNoCoupling(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.GuardedCondensationS > 5 {
		t.Errorf("guarded run condensed %.0f s", r.GuardedCondensationS)
	}
	if r.UnguardedCondensationS < 60 {
		t.Errorf("unguarded run condensed only %.0f s; the ablation should wet the panels",
			r.UnguardedCondensationS)
	}
}

func TestAblationDesyncReducesCollisions(t *testing.T) {
	r, err := AblationDesync(context.Background(), 1, 15*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if r.WithoutDesync.Collided == 0 {
		t.Fatal("no collisions under random offsets; contention model inert")
	}
	if r.WithDesync.Collided >= r.WithoutDesync.Collided {
		t.Errorf("desync collisions %d >= random %d",
			r.WithDesync.Collided, r.WithoutDesync.Collided)
	}
}

func TestAblationHistogramReset(t *testing.T) {
	r, err := AblationHistogramReset(context.Background(), 1, 2*time.Hour, 40*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// The paper resets weekly; at this compressed scale (40-minute resets
	// against 30-minute events) the re-learning transient visibly costs
	// accuracy, which is exactly what the ablation demonstrates: the
	// reset period must be long relative to the event interval.
	if r.WithoutResetPct < 85 {
		t.Errorf("no-reset accuracy %.1f%%, want high", r.WithoutResetPct)
	}
	if r.WithResetPct < 55 {
		t.Errorf("with-reset accuracy %.1f%% collapsed entirely", r.WithResetPct)
	}
	if r.WithResetPct > r.WithoutResetPct+5 {
		t.Errorf("frequent resets should not beat no-reset: %.1f%% vs %.1f%%",
			r.WithResetPct, r.WithoutResetPct)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Fig10(ctx, 1); err == nil {
		t.Error("cancelled Fig10 should fail")
	}
	if _, err := RunNetScenario(ctx, 1, time.Hour); err == nil {
		t.Error("cancelled scenario should fail")
	}
}

func TestExergyAuditDecomposition(t *testing.T) {
	r, err := ExergyAudit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	byName := map[string]ExergyRow{}
	for _, row := range r.Rows {
		byName[row.Name] = row
		if row.RemovedW <= 0 || row.ActualW <= 0 {
			t.Errorf("%s: empty measurement %+v", row.Name, row)
		}
		if row.MinWorkW >= row.ActualW {
			t.Errorf("%s: minimum work %.1f >= actual %.1f violates the second law",
				row.Name, row.MinWorkW, row.ActualW)
		}
		eff := row.SecondLawEff()
		if eff <= 0.1 || eff >= 1 {
			t.Errorf("%s: second-law efficiency %.2f implausible", row.Name, eff)
		}
	}
	// The decomposition's core claim: per joule moved, the 18 °C loop
	// needs far less minimum work than the 8 °C systems.
	radiant := byName["Bubble-C (18 °C water)"]
	aircon := byName["AirCon (8 °C air)"]
	radiantPerJoule := radiant.MinWorkW / radiant.RemovedW
	airconPerJoule := aircon.MinWorkW / aircon.RemovedW
	if radiantPerJoule >= airconPerJoule*0.7 {
		t.Errorf("18 °C exergy/J (%.4f) should be well below 8 °C (%.4f)",
			radiantPerJoule, airconPerJoule)
	}
	if s := r.Summary(); !strings.Contains(s, "Exergy audit") {
		t.Errorf("summary malformed: %s", s)
	}
}

func TestFig11StableAcrossSeeds(t *testing.T) {
	// The headline efficiency result must not be a single-seed artefact:
	// three independent trials land in the same band and ordering.
	for seed := uint64(1); seed <= 3; seed++ {
		r, err := Fig11(context.Background(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if r.BubbleZERO < 3.5 || r.BubbleZERO > 4.6 {
			t.Errorf("seed %d: BubbleZERO COP %.2f outside band", seed, r.BubbleZERO)
		}
		if !(r.BubbleC > r.BubbleZERO && r.BubbleZERO > r.AirCon) {
			t.Errorf("seed %d: ordering broken %+v", seed, r)
		}
	}
}

func TestFig10StableAcrossSeeds(t *testing.T) {
	for seed := uint64(2); seed <= 3; seed++ {
		r, err := Fig10(context.Background(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if r.TempConverge <= 0 || r.TempConverge > 45*time.Minute {
			t.Errorf("seed %d: temp convergence %v", seed, r.TempConverge)
		}
		if r.CondensationS > 5 {
			t.Errorf("seed %d: condensation %.0f s", seed, r.CondensationS)
		}
	}
}
