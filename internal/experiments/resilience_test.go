package experiments

import (
	"context"
	"crypto/sha256"
	"fmt"
	"testing"
	"time"

	"bubblezero/internal/core"
	"bubblezero/internal/fault"
)

// Resilience and lifetime experiment tests. The full matrix runs in the
// binary; here a small sub-matrix proves the plumbing: determinism across
// same-seed replays, bounded condensation, recovery after clearance, and
// the empty-plan bit-identity guarantee at the experiment level.

// digestFig10 runs Fig10 and hashes its bit-exact trace dump.
func digestFig10(t *testing.T, opts ...core.Option) string {
	t.Helper()
	r, err := Fig10(context.Background(), 1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	if err := r.Recorder.WriteExact(h); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func TestFig10EmptyFaultPlanMatchesGolden(t *testing.T) {
	// A system carrying an (empty) fault plan threads the watchdog-free
	// path and must reproduce the current golden epoch's digest bit for
	// bit.
	if testing.Short() {
		t.Skip("full 105-minute trial; skipped in -short mode")
	}
	e := loadEpoch(t)
	got := digestFig10(t, core.WithFaultPlan(fault.MustPlan()))
	if got != e.Digest {
		t.Errorf("empty fault plan changed the Fig10 trace:\n got  %s\n want %s", got, e.Digest)
	}
}

func TestResilienceCaseDeterministicAcrossReplays(t *testing.T) {
	if testing.Short() {
		t.Skip("two 120-minute trials; skipped in -short mode")
	}
	rc := ResilienceCase{
		Name: "replay",
		Plan: fault.MustPlan(
			fault.BurstLoss(60*time.Minute, 10*time.Minute, 0.7),
			fault.ChillerTrip(70*time.Minute, 5*time.Minute, fault.LoopVent),
		),
		ClearAt: 80 * time.Minute,
	}
	a, err := runResilienceCase(context.Background(), 1, rc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runResilienceCase(context.Background(), 1, rc)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed + same plan diverged:\n%+v\n%+v", a, b)
	}
}

func TestResilienceSubMatrixBoundedAndRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-case 120-minute trials; skipped in -short mode")
	}
	full := ResilienceMatrix()
	pick := map[string]bool{"jam-15min": true, "chiller-trip-radiant": true, "pump-degrade-severe": true}
	var cases []ResilienceCase
	for _, c := range full {
		if pick[c.Name] {
			cases = append(cases, c)
		}
	}
	if len(cases) != len(pick) {
		t.Fatalf("matrix lost named cases: have %d, want %d", len(cases), len(pick))
	}
	res, err := Default.Resilience(context.Background(), 1, cases)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if o.CondensationS > 60 {
			t.Errorf("%s: condensation %.0f s, want the safety bound to hold", o.Name, o.CondensationS)
		}
		if o.RecoveredMin < 0 {
			t.Errorf("%s: never recovered after clearance (final %.2f °C / %.2f °C dew)",
				o.Name, o.FinalTempC, o.FinalDewC)
		}
	}
	// The jam must have exercised the watchdog; the plant faults must not.
	byName := map[string]ResilienceOutcome{}
	for _, o := range res.Outcomes {
		byName[o.Name] = o
	}
	if byName["jam-15min"].DegradeTransitions == 0 {
		t.Error("15-minute jam produced no degradation transitions")
	}
	if byName["chiller-trip-radiant"].DegradeTransitions != 0 {
		t.Error("chiller trip tripped the staleness watchdog; plant faults must not look like sensor faults")
	}
}

func TestLifetimeAdaptiveOutlastsFixed(t *testing.T) {
	if testing.Short() {
		t.Skip("two multi-hour trials; skipped in -short mode")
	}
	res, err := Lifetime(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Adaptive.Motes) != 18 || len(res.Fixed.Motes) != 18 {
		t.Fatalf("expected 18 motes per run, got %d/%d", len(res.Adaptive.Motes), len(res.Fixed.Motes))
	}
	if res.Fixed.MedianMin <= 0 {
		t.Fatalf("fixed-rate median lifetime %.1f min; the scale-down fault did not bite", res.Fixed.MedianMin)
	}
	if r := res.Ratio(); r < 1.5 {
		t.Errorf("adaptive/fixed median lifetime ratio %.2f, want > 1.5 (adaptive %0.f min, fixed %.0f min)",
			r, res.Adaptive.MedianMin, res.Fixed.MedianMin)
	}
}
