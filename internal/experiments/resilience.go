package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"bubblezero/internal/core"
	"bubblezero/internal/fault"
)

// The resilience experiment: a matrix of fault type × severity injected
// into the settled system, measuring how far the control decomposition
// lets the room drift and how fast it comes back. Every case follows the
// same clock: 60 minutes of fault-free settling, the fault window, and
// observation until the 120-minute mark. All cases are independent and
// deterministic per seed, so the matrix fans out across the worker pool.

// resilienceSettle is the fault-free settling period before injection.
const resilienceSettle = 60 * time.Minute

// resilienceHorizon is the total simulated length of every case.
const resilienceHorizon = 120 * time.Minute

// ResilienceCase names one cell of the fault matrix.
type ResilienceCase struct {
	// Name is the stable case identifier (kind-severity).
	Name string
	// Plan is the fault schedule, offsets relative to run start.
	Plan *fault.Plan
	// ClearAt is the offset at which the last fault clears (injection
	// offset for permanent faults), the origin for recovery timing.
	ClearAt time.Duration
}

// ResilienceMatrix returns the default fault type × severity matrix.
func ResilienceMatrix() []ResilienceCase {
	at := resilienceSettle
	return []ResilienceCase{
		{"burst-loss-0.5", fault.MustPlan(fault.BurstLoss(at, 15*time.Minute, 0.5)), at + 15*time.Minute},
		{"burst-loss-0.9", fault.MustPlan(fault.BurstLoss(at, 15*time.Minute, 0.9)), at + 15*time.Minute},
		{"jam-5min", fault.MustPlan(fault.Jam(at, 5*time.Minute)), at + 5*time.Minute},
		{"jam-15min", fault.MustPlan(fault.Jam(at, 15*time.Minute)), at + 15*time.Minute},
		{"stuck-temp-2", fault.MustPlan(fault.SensorStuck(at, 15*time.Minute, "bt-temp-2")), at + 15*time.Minute},
		{"drift-temp-2", fault.MustPlan(fault.SensorDrift(at, 15*time.Minute, "bt-temp-2", -0.005)), at + 15*time.Minute},
		{"paneldew-1-offline", fault.MustPlan(fault.MoteOffline(at, 15*time.Minute, "bt-paneldew-1")), at + 15*time.Minute},
		{"chiller-trip-radiant", fault.MustPlan(fault.ChillerTrip(at, 10*time.Minute, fault.LoopRadiant)), at + 10*time.Minute},
		{"chiller-trip-vent", fault.MustPlan(fault.ChillerTrip(at, 10*time.Minute, fault.LoopVent)), at + 10*time.Minute},
		{"pump-degrade-mild", fault.MustPlan(fault.PumpDegrade(at, 15*time.Minute, fault.LoopRadiant, 0.7)), at + 15*time.Minute},
		{"pump-degrade-severe", fault.MustPlan(fault.PumpDegrade(at, 15*time.Minute, fault.LoopRadiant, 0.3)), at + 15*time.Minute},
	}
}

// ResilienceOutcome is one case's measured behaviour.
type ResilienceOutcome struct {
	// Name echoes the case name.
	Name string
	// WorstTempDevK / WorstDewDevK are the largest deviations of the room
	// averages from the 25 °C / 18 °C-dew targets from injection onward.
	WorstTempDevK, WorstDewDevK float64
	// CondensationS is cumulative wet-panel time across the whole run —
	// the safety property every fault must leave bounded.
	CondensationS float64
	// RecoveredMin is the time from fault clearance until the room
	// averages re-enter the target band (within 0.4 K / 0.5 K-dew) and
	// stay for the rest of the run; 0 when the band was never left after
	// clearance, -1 when it was never re-entered.
	RecoveredMin float64
	// DegradeTransitions counts watchdog state-machine edges — non-zero
	// exactly when the fault made a consumed input stale.
	DegradeTransitions int
	// FinalTempC / FinalDewC are the end-of-run room averages.
	FinalTempC, FinalDewC float64
}

// ResilienceResult is the full matrix run.
type ResilienceResult struct {
	Seed     uint64
	Outcomes []ResilienceOutcome
}

// runResilienceCase executes one matrix cell.
func runResilienceCase(ctx context.Context, seed uint64, rc ResilienceCase) (ResilienceOutcome, error) {
	out := ResilienceOutcome{Name: rc.Name}
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	sys, err := core.NewSystem(cfg, core.WithFaultPlan(rc.Plan))
	if err != nil {
		return out, err
	}
	start := sys.Now()
	if err := sys.Run(ctx, resilienceHorizon); err != nil {
		return out, err
	}
	out.CondensationS = sys.CondensationSeconds()
	out.FinalTempC = sys.Room().AverageT()
	out.FinalDewC = sys.Room().AverageDewPoint()
	out.DegradeTransitions = sys.Degradation().Transitions

	injected := start.Add(resilienceSettle)
	cleared := start.Add(rc.ClearAt)
	temp := sys.Recorder().Series("temp.avg")
	dew := sys.Recorder().Series("dew.avg")
	for _, p := range temp.Points() {
		if p.At.Before(injected) {
			continue
		}
		if d := math.Abs(p.Value - 25); d > out.WorstTempDevK {
			out.WorstTempDevK = d
		}
	}
	for _, p := range dew.Points() {
		if p.At.Before(injected) {
			continue
		}
		if d := math.Abs(p.Value - 18); d > out.WorstDewDevK {
			out.WorstDewDevK = d
		}
	}

	// Recovery: the last sample after clearance found outside the band
	// marks how long the fault's effects lingered.
	inBand := func(tempC, dewC float64) bool {
		return math.Abs(tempC-25) <= 0.4 && dewC <= 18.5
	}
	lastOut := time.Time{}
	tempPts, dewPts := temp.Points(), dew.Points()
	for i := range tempPts {
		p := tempPts[i]
		if p.At.Before(cleared) {
			continue
		}
		if !inBand(p.Value, dewPts[i].Value) {
			lastOut = p.At
		}
	}
	switch {
	case lastOut.IsZero():
		out.RecoveredMin = 0
	case lastOut.After(start.Add(resilienceHorizon - 2*time.Minute)):
		out.RecoveredMin = -1 // still out of band at the end of the run
	default:
		out.RecoveredMin = lastOut.Sub(cleared).Minutes()
	}
	return out, nil
}

// Resilience runs the fault matrix, one system per case, fanned across
// the suite's pool.
func (s *Suite) Resilience(ctx context.Context, seed uint64, cases []ResilienceCase) (*ResilienceResult, error) {
	if len(cases) == 0 {
		cases = ResilienceMatrix()
	}
	res := &ResilienceResult{Seed: seed, Outcomes: make([]ResilienceOutcome, len(cases))}
	err := s.pool.ForEach(ctx, len(cases), func(ctx context.Context, i int) error {
		out, err := runResilienceCase(ctx, seed, cases[i])
		if err != nil {
			return err
		}
		res.Outcomes[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Resilience runs the matrix on the default suite.
func Resilience(ctx context.Context, seed uint64) (*ResilienceResult, error) {
	return Default.Resilience(ctx, seed, nil)
}

// WriteTable renders the matrix as a markdown-style table.
func (r *ResilienceResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-22s %9s %9s %8s %8s %6s\n",
		"case", "worstT(K)", "worstDew", "cond(s)", "rec(min)", "edges"); err != nil {
		return err
	}
	for _, o := range r.Outcomes {
		rec := fmt.Sprintf("%.1f", o.RecoveredMin)
		if o.RecoveredMin < 0 {
			rec = "never"
		}
		if _, err := fmt.Fprintf(w, "%-22s %9.2f %9.2f %8.0f %8s %6d\n",
			o.Name, o.WorstTempDevK, o.WorstDewDevK, o.CondensationS, rec, o.DegradeTransitions); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders the headline: worst case by dew deviation and the
// safety bound.
func (r *ResilienceResult) Summary() string {
	worst, maxDew, maxCond := "", 0.0, 0.0
	recovered := 0
	for _, o := range r.Outcomes {
		if o.WorstDewDevK > maxDew {
			worst, maxDew = o.Name, o.WorstDewDevK
		}
		if o.CondensationS > maxCond {
			maxCond = o.CondensationS
		}
		if o.RecoveredMin >= 0 {
			recovered++
		}
	}
	return fmt.Sprintf("Resilience: %d/%d cases recovered, worst dew excursion %.2f K (%s), max condensation %.0f s",
		recovered, len(r.Outcomes), maxDew, worst, maxCond)
}
