// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): Figure 10's control trajectories, Figure 11's COP
// comparison, Figures 12–15's networking results, and the ablations
// DESIGN.md calls out. Each experiment is a plain function returning a
// structured result so that both the cmd/experiments binary and the
// benchmark harness can drive it.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"bubblezero/internal/core"
	"bubblezero/internal/sim"
	"bubblezero/internal/thermal"
	"bubblezero/internal/trace"
)

// Fig10Result captures the "Overall HVAC performance" experiment: the
// two-phase trial from 13:00 to 14:45 with the 14:05 (15 s) and 14:25
// (2 min) door openings.
type Fig10Result struct {
	// Recorder holds the per-subspace temperature and dew-point series
	// ("temp.subsp1" … "dew.subsp4", plus outdoor references).
	Recorder *trace.Recorder
	// Start is the simulated trial start (13:00).
	Start time.Time
	// TempConverge and DewConverge are the times from start until the
	// room average first reached within 0.3 K of the targets.
	TempConverge, DewConverge time.Duration
	// Event1DewBlipC is the subspace-1 dew excursion after the 15 s door
	// opening (paper: ≈0.6 °C).
	Event1DewBlipC float64
	// Event2RecoveryMin is the time to re-enter the target band after the
	// 2-minute opening (paper: ≈15 min).
	Event2RecoveryMin float64
	// CondensationS is the cumulative panel condensation time (must stay
	// ≈0).
	CondensationS float64
	// FinalTempC and FinalDewC are the end-of-trial room averages.
	FinalTempC, FinalDewC float64
	// FinalCOP is the whole-system COP at end of trial (paper Fig. 11).
	FinalCOP float64
	// SchedStats is the scheduler's per-component step accounting over the
	// trial.
	SchedStats []sim.ComponentStats
	// NetworkSteps is how many ticks the on-demand WSN network component
	// actually ran. Unlike the cadenced counts (pure schedule arithmetic)
	// this is value-dependent — adaptive transmission wakes the network
	// when readings move — so it is pinned by the golden epoch, not
	// derivable from the §IV-B periods.
	NetworkSteps uint64
}

// Fig10 runs the 105-minute Figure 10 trial. Extra options are passed
// through to core.NewSystem — the determinism tests use this to prove an
// empty fault plan leaves the trial bit-identical.
func Fig10(ctx context.Context, seed uint64, opts ...core.Option) (*Fig10Result, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	sys, err := core.NewSystem(cfg, opts...)
	if err != nil {
		return nil, err
	}
	start := sys.Now()
	// Phase two events at the paper's wall-clock instants.
	event1 := start.Add(65 * time.Minute) // 14:05
	event2 := start.Add(85 * time.Minute) // 14:25
	sys.OpenDoorAt(event1, 15*time.Second)
	sys.OpenDoorAt(event2, 2*time.Minute)

	if err := sys.Run(ctx, 105*time.Minute); err != nil {
		return nil, err
	}

	res := &Fig10Result{
		Recorder:      sys.Recorder(),
		Start:         start,
		CondensationS: sys.CondensationSeconds(),
		FinalTempC:    sys.Room().AverageT(),
		FinalDewC:     sys.Room().AverageDewPoint(),
		FinalCOP:      sys.COPTotal().Value(),
		SchedStats:    sys.Engine().StepStats(),
	}
	for _, cs := range res.SchedStats {
		if cs.Name == "wsn.network" {
			res.NetworkSteps = cs.Steps
		}
	}

	if at, ok := sys.Recorder().Series("temp.avg").FirstCrossing(25.3, true); ok {
		res.TempConverge = at.Sub(start)
	}
	if at, ok := sys.Recorder().Series("dew.avg").FirstCrossing(18.3, true); ok {
		res.DewConverge = at.Sub(start)
	}

	// Event 1: subspace-1 dew blip relative to just before the opening.
	dew1 := sys.Recorder().Series("dew.subsp1")
	baseline, _ := dew1.At(event1.Add(-30 * time.Second))
	peak := dew1.StatsBetween(event1, event1.Add(3*time.Minute)).Max
	res.Event1DewBlipC = peak - baseline

	// Event 2: first time after the 2-minute opening that the average dew
	// re-enters the band.
	dewAvg := sys.Recorder().Series("dew.avg")
	recovered := false
	for _, p := range dewAvg.Points() {
		if p.At.Before(event2.Add(2 * time.Minute)) {
			continue
		}
		if p.Value <= 18.4 {
			res.Event2RecoveryMin = p.At.Sub(event2).Minutes()
			recovered = true
			break
		}
	}
	if !recovered {
		res.Event2RecoveryMin = -1
	}
	return res, nil
}

// WriteTable renders the paper-style series (one row per 30 s, per-zone
// temperature and dew point) as CSV.
func (r *Fig10Result) WriteTable(w io.Writer) error {
	names := make([]string, 0, 2*thermal.NumZones+2)
	for z := 1; z <= thermal.NumZones; z++ {
		names = append(names, fmt.Sprintf("temp.subsp%d", z))
	}
	for z := 1; z <= thermal.NumZones; z++ {
		names = append(names, fmt.Sprintf("dew.subsp%d", z))
	}
	names = append(names, "temp.outdoor", "dew.outdoor")
	return r.Recorder.WriteCSV(w, names, r.Start, r.Start.Add(105*time.Minute), 30*time.Second)
}

// Summary renders the headline numbers next to the paper's.
func (r *Fig10Result) Summary() string {
	return fmt.Sprintf(
		"Fig10: temp 28.9→25 in %.0f min (paper ≈30), dew 27.4→18 in %.0f min (paper ≈30), "+
			"15s-door blip %.2f °C (paper ≈0.6), 2min-door recovery %.0f min (paper ≈15), condensation %.0f s",
		r.TempConverge.Minutes(), r.DewConverge.Minutes(),
		r.Event1DewBlipC, r.Event2RecoveryMin, r.CondensationS)
}
