package experiments

import (
	"context"
	"fmt"
	"time"

	"bubblezero/internal/baseline"
	"bubblezero/internal/core"
	"bubblezero/internal/sim"
	"bubblezero/internal/thermal"
)

// Fig11Result is the energy-efficiency comparison via the standard COP
// metric (paper Figure 11: AirCon 2.8, Bubble-C 4.52, Bubble-V 2.82,
// BubbleZERO 4.07).
type Fig11Result struct {
	AirCon     float64
	BubbleC    float64
	BubbleV    float64
	BubbleZERO float64
	// ImprovementPct is BubbleZERO's gain over AirCon (paper: 45.5 %).
	ImprovementPct float64
	// RadiantRemovedW / RadiantConsumedW echo the paper's raw power
	// readings (964.8 W / 213.4 W), vent likewise (213.2 W / 75.6 W),
	// averaged over the measurement hour.
	RadiantRemovedW, RadiantConsumedW float64
	VentRemovedW, VentConsumedW       float64
}

// Fig11 boots both systems to steady state and measures one steady hour.
func Fig11(ctx context.Context, seed uint64) (*Fig11Result, error) {
	const (
		boot    = time.Hour
		measure = time.Hour
	)

	// BubbleZERO.
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.Run(ctx, boot); err != nil {
		return nil, err
	}
	sys.ResetCOP()
	if err := sys.Run(ctx, measure); err != nil {
		return nil, err
	}

	// Conventional AirCon on an identical room.
	room, err := thermal.NewRoomAtOutdoor(cfg.Thermal)
	if err != nil {
		return nil, err
	}
	unit, err := baseline.New(baseline.DefaultConfig(), room)
	if err != nil {
		return nil, err
	}
	clock := sim.MustClock(cfg.Start, cfg.Step)
	engine := sim.NewEngine(clock, seed)
	engine.Register(unit)
	engine.Register(room)
	if err := engine.RunFor(ctx, boot); err != nil {
		return nil, err
	}
	unit.ResetCOP()
	if err := engine.RunFor(ctx, measure); err != nil {
		return nil, err
	}

	r := sys.COPRadiant()
	v := sys.COPVent()
	res := &Fig11Result{
		AirCon:           unit.COP().Value(),
		BubbleC:          r.Value(),
		BubbleV:          v.Value(),
		BubbleZERO:       sys.COPTotal().Value(),
		RadiantRemovedW:  r.RemovedJ / measure.Seconds(),
		RadiantConsumedW: r.ConsumedJ / measure.Seconds(),
		VentRemovedW:     v.RemovedJ / measure.Seconds(),
		VentConsumedW:    v.ConsumedJ / measure.Seconds(),
	}
	if res.AirCon > 0 {
		res.ImprovementPct = (res.BubbleZERO - res.AirCon) / res.AirCon * 100
	}
	return res, nil
}

// Summary renders the bar values next to the paper's.
func (r *Fig11Result) Summary() string {
	return fmt.Sprintf(
		"Fig11 COP: AirCon %.2f (paper 2.80) | Bubble-C %.2f (4.52) | Bubble-V %.2f (2.82) | "+
			"BubbleZERO %.2f (4.07) | improvement %.1f%% (45.5%%)",
		r.AirCon, r.BubbleC, r.BubbleV, r.BubbleZERO, r.ImprovementPct)
}
