package experiments

import (
	"context"
	"crypto/sha256"
	"fmt"
	"testing"
)

// loadEpoch loads the repository's current golden epoch, failing the test
// if the record is missing or structurally invalid.
func loadEpoch(t *testing.T) *GoldenEpoch {
	t.Helper()
	e, err := LoadGoldenEpoch(GoldenEpochPath)
	if err != nil {
		t.Fatalf("loading golden epoch: %v", err)
	}
	return e
}

// The deterministic kernel is pinned by a versioned golden epoch: the
// SHA-256 of the bit-exact Figure 10 trace dump must match the digest of
// the epoch record in testdata/. The dump renders every sample as a hex
// float (strconv 'x' format), so a single flipped mantissa bit in any
// series changes the digest.
//
// A digest mismatch means the kernel's float arithmetic moved. If that was
// intentional (an optimization or model change), re-pin the epoch — the
// re-pin validates the paper metrics against Fig10Bounds and records the
// old→new delta:
//
//	make repin REASON="why the bits moved"
func TestFig10TraceBitIdenticalToGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full 105-minute trial; skipped in -short mode")
	}
	e := loadEpoch(t)

	r, err := Fig10(context.Background(), e.Seed)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	if err := r.Recorder.WriteExact(h); err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("%x", h.Sum(nil))
	if got != e.Digest {
		t.Errorf("Fig10 seed-%d trace digest drifted from golden epoch v%d:\n got  %s\n want %s\n"+
			"if the kernel change is intentional, re-pin with: make repin REASON=\"...\"",
			e.Seed, e.Version, got, e.Digest)
	}
}

// TestFig10MetricsWithinGoldenEpochBounds is the tolerance-based half of
// the epoch discipline: regardless of float-level bit movement, the
// trial's headline paper metrics must sit inside the documented
// Fig10Bounds, and the epoch record must agree with a fresh run (the
// digest pin makes the run deterministic, so agreement is exact).
func TestFig10MetricsWithinGoldenEpochBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("full 105-minute trial; skipped in -short mode")
	}
	e := loadEpoch(t)

	r, err := Fig10(context.Background(), e.Seed)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Metrics()
	if err := CheckFig10Bounds(m); err != nil {
		t.Errorf("fresh Fig10 run: %v", err)
	}
	if m != e.Metrics {
		t.Errorf("fresh Fig10 metrics diverged from golden epoch v%d record:\n got  %+v\n want %+v\n"+
			"re-pin with: make repin REASON=\"...\"", e.Version, m, e.Metrics)
	}
	if r.NetworkSteps != e.NetworkSteps {
		t.Errorf("network steps = %d, epoch pins %d; re-pin with: make repin REASON=\"...\"",
			r.NetworkSteps, e.NetworkSteps)
	}
	// The previous epoch's metrics must also have been inside the bounds:
	// a re-pin may move bits, never the physics envelope.
	if e.PrevMetrics != nil {
		if err := CheckFig10Bounds(*e.PrevMetrics); err != nil {
			t.Errorf("epoch v%d prev_metrics: %v", e.Version, err)
		}
	}
}
