package experiments

import (
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The tick-kernel optimizations (derived-state caching, scratch-reuse
// networking, the incremental exact clusterer) claim bit-identity, and this
// test enforces it: the SHA-256 of the bit-exact Figure 10 trace dump must
// match the golden digest captured before any of those changes landed. The
// dump renders every sample as a hex float (strconv 'x' format), so a
// single flipped mantissa bit in any series changes the digest.
//
// Regenerate the golden (only after an intentional model change) with:
//
//	go run ./cmd/goldendump -seed 1 > internal/experiments/testdata/fig10_trace_seed1.sha256
func TestFig10TraceBitIdenticalToGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full 105-minute trial; skipped in -short mode")
	}
	goldenPath := filepath.Join("testdata", "fig10_trace_seed1.sha256")
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden digest: %v", err)
	}
	want := strings.TrimSpace(string(raw))

	r, err := Fig10(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	if err := r.Recorder.WriteExact(h); err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("%x", h.Sum(nil))
	if got != want {
		t.Errorf("Fig10 seed-1 trace digest changed:\n got  %s\n want %s\n"+
			"the tick kernel is no longer bit-identical to the pre-optimization baseline", got, want)
	}
}
