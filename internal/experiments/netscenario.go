package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"bubblezero/internal/core"
	"bubblezero/internal/sim"
	"bubblezero/internal/thermal"
	"bubblezero/internal/trace"
	"bubblezero/internal/wsn"
)

// netScenarioRuns counts actual scenario simulations (not cache hits), so
// tests can assert the memoization contract: one simulation per
// (seed, duration) no matter how many figures consume it.
var netScenarioRuns atomic.Int64

// NetScenarioRunCount returns how many times RunNetScenario has executed
// in this process. Tests compare deltas around a suite run.
func NetScenarioRunCount() int64 { return netScenarioRuns.Load() }

// NetScenario is the shared workload behind Figures 12–15: the paper
// re-launches BubbleZERO for five hours and triggers external events
// (door and window openings) about every 30 minutes, logging every
// device's readings, transmission periods, and ground truth (§V-C).
type NetScenario struct {
	Start    time.Time
	Duration time.Duration
	// EventTimes are the disturbance instants (alternating door/window).
	EventTimes []time.Time
	// DoorEvents marks which events were door openings (affect
	// subspace-1) versus window openings (subspace-3).
	DoorEvents []bool

	// Readings are the raw sampled values per device, in sample order —
	// the replay input for Figure 12's histogram-size sweep.
	Readings map[string][]float64
	// TsplS is each device's sampling period.
	TsplS map[string]float64
	// Tsnd records the transmission period in effect at every sampling
	// instant per device.
	Tsnd map[string]*trace.Series
	// Transitions are the instants each device flagged a transition.
	Transitions map[string][]time.Time
	// Accuracy is the fleet-average rolling decision accuracy, sampled
	// every five minutes (Figure 13).
	Accuracy *trace.Series
	// VarMaxStableAt / VarMinStableAt are the fleet-median instants after
	// which each device's histogram range bound stopped moving (Figure 13
	// discussion: var_max stabilises after ≈1.5 h, var_min after ≈140 s).
	VarMaxStableAt, VarMinStableAt time.Duration
	// DrainJ is each battery device's total energy use over the run.
	DrainJ map[string]float64
	// SteadyDrainJ is the drain excluding the pull-down hour, over
	// SteadyElapsed — the basis for lifetime projection (the paper
	// projects from steady operation with events every ≈30 min).
	SteadyDrainJ  map[string]float64
	SteadyElapsed time.Duration
	// NetStats are the medium counters at the end of the run.
	NetStats wsn.Stats
}

// RunNetScenario executes the §V-C workload for the given duration. Every
// call simulates from scratch; use Suite.NetScenario for the memoized
// path shared by Figures 12–15. The returned scenario is immutable once
// returned and safe to read from concurrent goroutines.
func RunNetScenario(ctx context.Context, seed uint64, d time.Duration) (*NetScenario, error) {
	netScenarioRuns.Add(1)
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.TrackExact = true
	cfg.TracePeriod = 0 // the scenario keeps its own traces
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}

	sc := &NetScenario{
		Start:        sys.Now(),
		Duration:     d,
		Readings:     make(map[string][]float64),
		TsplS:        make(map[string]float64),
		Tsnd:         make(map[string]*trace.Series),
		Transitions:  make(map[string][]time.Time),
		Accuracy:     trace.NewRecorder().Series("accuracy"),
		DrainJ:       make(map[string]float64),
		SteadyDrainJ: make(map[string]float64),
	}

	// External events every ~30 minutes, cycling through the paper's
	// §IV-B repertoire: "opening door, opening window, occupant density
	// varying, occupant transition between different rooms". Door and
	// window alternate in even slots (they anchor the Figure 14 detection
	// delays); occupancy events fill the odd slots so temperature and CO₂
	// motes see real dynamics too.
	occupiedZone := -1
	idx := 0
	for at := 30 * time.Minute; at < d; at += 30 * time.Minute {
		when := sc.Start.Add(at)
		switch idx % 4 {
		case 0:
			sc.EventTimes = append(sc.EventTimes, when)
			sc.DoorEvents = append(sc.DoorEvents, true)
			sys.OpenDoorAt(when, 30*time.Second)
		case 2:
			sc.EventTimes = append(sc.EventTimes, when)
			sc.DoorEvents = append(sc.DoorEvents, false)
			sys.OpenWindowAt(when, 30*time.Second)
		case 1:
			// Occupant density varies: three people arrive in (or leave)
			// a subspace.
			zone := thermal.ZoneID((idx / 4) % thermal.NumZones)
			if occupiedZone < 0 {
				sys.SetOccupantsAt(when, zone, 3)
				occupiedZone = int(zone)
			} else {
				sys.SetOccupantsAt(when, thermal.ZoneID(occupiedZone), 0)
				occupiedZone = -1
			}
		case 3:
			// Occupant transition between rooms.
			if occupiedZone >= 0 {
				next := (occupiedZone + 1) % thermal.NumZones
				sys.SetOccupantsAt(when, thermal.ZoneID(occupiedZone), 0)
				sys.SetOccupantsAt(when, thermal.ZoneID(next), 3)
				occupiedZone = next
			}
		}
		idx++
	}

	// Per-device hooks.
	engine := sys.Engine()
	for _, dev := range sys.Devices() {
		dev := dev
		id := string(dev.Node().ID())
		sc.TsplS[id] = dev.Scheduler().Config().TsplS
		tsnd := trace.NewRecorder().Series("tsnd." + id)
		sc.Tsnd[id] = tsnd
		dev.OnSample(func(value, tsndS float64, transition bool) {
			sc.Readings[id] = append(sc.Readings[id], value)
			_ = tsnd.Append(engine.Clock().Now(), tsndS)
			if transition {
				sc.Transitions[id] = append(sc.Transitions[id], engine.Clock().Now())
			}
		})
	}

	// Fleet accuracy sampling and histogram-range stability tracking.
	lastRange := make(map[string][2]float64)
	lastMinChange := make(map[string]time.Duration)
	lastMaxChange := make(map[string]time.Duration)
	var sinceAcc float64
	engine.Register(sim.ComponentFunc{ID: "scenario.probe", Fn: func(env *sim.Env) {
		for _, dev := range sys.Devices() {
			id := string(dev.Node().ID())
			lo, hi, ok := dev.Scheduler().Histogram().Range()
			if !ok {
				continue
			}
			prev, seen := lastRange[id]
			if !seen || prev[0] != lo {
				lastMinChange[id] = env.Elapsed()
			}
			if !seen || prev[1] != hi {
				lastMaxChange[id] = env.Elapsed()
			}
			lastRange[id] = [2]float64{lo, hi}
		}
		sinceAcc += env.Dt()
		if sinceAcc >= 300 {
			sinceAcc = 0
			var sum float64
			n := 0
			for _, dev := range sys.Devices() {
				if frac, win := dev.Scheduler().RecentAccuracy(); win > 0 {
					sum += frac
					n++
				}
			}
			if n > 0 {
				_ = sc.Accuracy.Append(env.Now(), sum/float64(n))
			}
		}
	}})

	// Boot period: run the pull-down hour (or half the horizon for short
	// runs), then measure steady drain over the remainder.
	boot := time.Hour
	if boot > d/2 {
		boot = d / 2
	}
	if err := sys.Run(ctx, boot); err != nil {
		return nil, err
	}
	bootDrain := make(map[string]float64, len(sys.Devices()))
	for _, dev := range sys.Devices() {
		bootDrain[string(dev.Node().ID())] = dev.Node().Battery().UsedJ()
	}
	if err := sys.Run(ctx, d-boot); err != nil {
		return nil, err
	}
	sc.SteadyElapsed = d - boot

	for _, dev := range sys.Devices() {
		id := string(dev.Node().ID())
		sc.DrainJ[id] = dev.Node().Battery().UsedJ()
		sc.SteadyDrainJ[id] = sc.DrainJ[id] - bootDrain[id]
	}
	sc.VarMinStableAt = medianDuration(lastMinChange)
	sc.VarMaxStableAt = medianDuration(lastMaxChange)
	sc.NetStats = sys.Network().Stats()
	return sc, nil
}

// medianDuration returns the median of the map values (0 when empty).
func medianDuration(m map[string]time.Duration) time.Duration {
	if len(m) == 0 {
		return 0
	}
	ds := make([]time.Duration, 0, len(m))
	for _, d := range m {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// sortedKeys returns the map's keys in sorted order. Fleet aggregations
// iterate devices in this order so floating-point accumulation is
// bit-identical run to run — Go's randomized map order would otherwise
// reorder the additions and perturb the last bits.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// AllTsndSamples flattens every device's transmission-period samples —
// the Figure 15 CDF population.
func (sc *NetScenario) AllTsndSamples() []float64 {
	var out []float64
	for _, id := range sortedKeys(sc.Tsnd) {
		for _, p := range sc.Tsnd[id].Points() {
			out = append(out, p.Value)
		}
	}
	return out
}

// MeanTsndS is the fleet-mean transmission period.
func (sc *NetScenario) MeanTsndS() float64 {
	var sum float64
	n := 0
	for _, id := range sortedKeys(sc.Tsnd) {
		st := sc.Tsnd[id].Stats()
		sum += st.Mean * float64(st.N)
		n += st.N
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// DeviceForEvent maps a disturbance to the humidity mote that observes it
// most directly: door events hit subspace-1, window events subspace-3.
func DeviceForEvent(isDoor bool) string {
	if isDoor {
		return "bt-hum-1"
	}
	return "bt-hum-3"
}

// DetectionDelays returns, for each event, the delay until the observing
// humidity mote flagged a transition (Figure 14's detection delay; paper:
// max 4 s, mean 2.7 s). Events with no detection within the window are
// skipped.
func (sc *NetScenario) DetectionDelays(window time.Duration) []time.Duration {
	var delays []time.Duration
	for i, ev := range sc.EventTimes {
		id := DeviceForEvent(sc.DoorEvents[i])
		for _, tr := range sc.Transitions[id] {
			if tr.Before(ev) || tr.After(ev.Add(window)) {
				continue
			}
			delays = append(delays, tr.Sub(ev))
			break
		}
	}
	return delays
}

// String summarises the scenario.
func (sc *NetScenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "net scenario: %v, %d events, mean Tsnd %.1fs, delivery %.3f",
		sc.Duration, len(sc.EventTimes), sc.MeanTsndS(), sc.NetStats.DeliveryRate())
	return b.String()
}
