package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"bubblezero/internal/baseline"
	"bubblezero/internal/core"
	"bubblezero/internal/exergy"
	"bubblezero/internal/sim"
	"bubblezero/internal/thermal"
)

// ExergyRow is one subsystem's second-law account over the measurement
// window.
type ExergyRow struct {
	// Name identifies the subsystem.
	Name string
	// TWorkC is the working temperature the heat is moved at.
	TWorkC float64
	// RemovedW is the mean thermal power moved.
	RemovedW float64
	// MinWorkW is the thermodynamic minimum electrical power to move it
	// (the Carnot bound at the working temperature against the outdoor
	// rejection) — the exergy rate of the duty.
	MinWorkW float64
	// ActualW is the measured electrical power.
	ActualW float64
}

// SecondLawEff is the exergy efficiency: minimum work over actual work.
func (r ExergyRow) SecondLawEff() float64 {
	if r.ActualW <= 0 {
		return 0
	}
	return r.MinWorkW / r.ActualW
}

// ExergyAuditResult decomposes the Figure 11 gain: the same cooling duty
// carries far less exergy at 18 °C than at 8 °C, so BubbleZERO's minimum
// work — and with a fixed-quality chiller, its actual work — is smaller.
type ExergyAuditResult struct {
	Rows    []ExergyRow
	Outdoor float64
}

// ExergyAudit measures one steady-state hour of BubbleZERO and the AirCon
// baseline and accounts for each subsystem's exergy flow.
func ExergyAudit(ctx context.Context, seed uint64) (*ExergyAuditResult, error) {
	const boot, measure = time.Hour, time.Hour

	cfg := core.DefaultConfig()
	cfg.Seed = seed
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.Run(ctx, boot); err != nil {
		return nil, err
	}
	sys.ResetCOP()
	if err := sys.Run(ctx, measure); err != nil {
		return nil, err
	}

	room, err := thermal.NewRoomAtOutdoor(cfg.Thermal)
	if err != nil {
		return nil, err
	}
	unit, err := baseline.New(baseline.DefaultConfig(), room)
	if err != nil {
		return nil, err
	}
	engine := sim.NewEngine(sim.MustClock(cfg.Start, cfg.Step), seed)
	engine.Register(unit)
	engine.Register(room)
	if err := engine.RunFor(ctx, boot); err != nil {
		return nil, err
	}
	unit.ResetCOP()
	if err := engine.RunFor(ctx, measure); err != nil {
		return nil, err
	}

	outdoor := cfg.Thermal.Outdoor.T
	secs := measure.Seconds()
	minWork := func(q, tWork float64) float64 {
		carnot := exergy.CarnotCOPCooling(tWork, outdoor)
		return q / carnot
	}

	radiant := sys.COPRadiant()
	vent := sys.COPVent()
	aircon := unit.COP()
	res := &ExergyAuditResult{Outdoor: outdoor}
	rows := []ExergyRow{
		{
			Name:     "Bubble-C (18 °C water)",
			TWorkC:   cfg.RadiantSetpointC,
			RemovedW: radiant.RemovedJ / secs,
			MinWorkW: minWork(radiant.RemovedJ/secs, cfg.RadiantSetpointC),
			ActualW:  radiant.ConsumedJ / secs,
		},
		{
			Name:     "Bubble-V (8 °C water)",
			TWorkC:   cfg.VentSetpointC,
			RemovedW: vent.RemovedJ / secs,
			MinWorkW: minWork(vent.RemovedJ/secs, cfg.VentSetpointC),
			ActualW:  vent.ConsumedJ / secs,
		},
		{
			Name:     "AirCon (8 °C air)",
			TWorkC:   baseline.DefaultConfig().SupplyAirC,
			RemovedW: aircon.RemovedJ / secs,
			MinWorkW: minWork(aircon.RemovedJ/secs, baseline.DefaultConfig().SupplyAirC),
			ActualW:  aircon.ConsumedJ / secs,
		},
	}
	// Whole-BubbleZERO row: duty-weighted across the two modules.
	total := ExergyRow{
		Name:     "BubbleZERO (combined)",
		TWorkC:   cfg.RadiantSetpointC,
		RemovedW: rows[0].RemovedW + rows[1].RemovedW,
		MinWorkW: rows[0].MinWorkW + rows[1].MinWorkW,
		ActualW:  rows[0].ActualW + rows[1].ActualW,
	}
	res.Rows = append(rows, total)
	return res, nil
}

// Summary renders the audit table.
func (r *ExergyAuditResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Exergy audit (rejection at %.1f °C): minimum vs actual work per subsystem\n", r.Outdoor)
	b.WriteString("  subsystem                Twork  removed(W)  minWork(W)  actual(W)  2nd-law eff\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-24s %4.0f°C    %7.1f     %6.1f     %6.1f      %5.2f\n",
			row.Name, row.TWorkC, row.RemovedW, row.MinWorkW, row.ActualW, row.SecondLawEff())
	}
	b.WriteString("  the decomposition moves most heat at 18 °C, where each joule needs ~60% less work\n")
	return b.String()
}
