package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"bubblezero/internal/adaptive"
)

// Fig12Point is one row of the histogram-size selection study.
type Fig12Point struct {
	N           int
	AccuracyPct float64
	RAMBytes    int
	CPUSeconds  float64 // modelled MSP430 execution time of Algorithm 1
}

// Fig12Result is the "Choosing the right N" study (paper Figure 12):
// accuracy climbs to ≈98 % for large N while RAM grows linearly (130 B at
// N = 60) and CPU time superlinearly (≈1.6 s at N = 60), motivating the
// default N = 40.
type Fig12Result struct {
	Points []Fig12Point
	// Scenario is the workload the replay used.
	Scenario *NetScenario
}

// Fig12 replays the scenario's recorded sensor streams through schedulers
// of varying histogram size and scores each against the exact-clustering
// ground truth. It runs through the Default suite: the scenario is
// memoized and the per-N replays execute in parallel.
func Fig12(ctx context.Context, seed uint64, d time.Duration, ns []int) (*Fig12Result, error) {
	return Default.Fig12(ctx, seed, d, ns)
}

// fig12Point scores one histogram size against the recorded streams. It
// only reads the scenario, so distinct Ns replay concurrently.
func fig12Point(sc *NetScenario, n int) (Fig12Point, error) {
	acc, err := replayAccuracy(sc, n)
	if err != nil {
		return Fig12Point{}, err
	}
	hist, err := adaptive.NewHistogram(n)
	if err != nil {
		return Fig12Point{}, err
	}
	return Fig12Point{
		N:           n,
		AccuracyPct: acc * 100,
		RAMBytes:    hist.RAMBytes(),
		CPUSeconds:  adaptive.CPUSecondsMSP430(n),
	}, nil
}

// replayAccuracy feeds every recorded device stream through a fresh
// scheduler with histogram size n and returns the mean decision accuracy.
// Devices are visited in sorted order so the accumulated mean is
// bit-identical across runs and pool widths.
func replayAccuracy(sc *NetScenario, n int) (float64, error) {
	var sum float64
	devices := 0
	for _, id := range sortedKeys(sc.Readings) {
		cfg := adaptive.DefaultConfig(sc.TsplS[id])
		cfg.N = n
		cfg.TrackExact = true
		sched, err := adaptive.NewScheduler(cfg)
		if err != nil {
			return 0, err
		}
		for _, v := range sc.Readings[id] {
			sched.OnSample(v)
		}
		if frac, decisions := sched.Accuracy(); decisions > 0 {
			sum += frac
			devices++
		}
	}
	if devices == 0 {
		return 0, fmt.Errorf("experiments: no devices produced decisions")
	}
	return sum / float64(devices), nil
}

// Summary renders the N-selection table.
func (r *Fig12Result) Summary() string {
	var b strings.Builder
	b.WriteString("Fig12: N selection (paper: ≈98% accuracy for large N; 130 B and ≈1.6 s at N=60)\n")
	b.WriteString("   N  accuracy%%  RAM(B)  MSP430 CPU(s)\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %2d     %6.2f    %4d         %6.3f\n",
			p.N, p.AccuracyPct, p.RAMBytes, p.CPUSeconds)
	}
	return b.String()
}
