package experiments

import (
	"context"
	"testing"
)

// The cadence-aware scheduler's win must be observable, not asserted:
// over the Figure 10 trial (6300 one-second ticks) every sensor mote and
// AC broadcaster must be activated exactly on its sampling/broadcast
// ticks and skipped on all others, the network must run on demand, and
// the physics/control path must remain every-tick. The cadenced counts
// are pure arithmetic on the paper's §IV-B periods: a device's sampling
// accumulator first crosses at tick period−1 (floor(6300/p) activations),
// a broadcaster fires on its registration tick and every period after.
// The on-demand network count is value-dependent (adaptive transmission
// wakes it when readings move), so it is pinned by the golden epoch.
func TestFig10SchedulerStepStats(t *testing.T) {
	if testing.Short() {
		t.Skip("full 105-minute trial; skipped in -short mode")
	}
	e := loadEpoch(t)
	r, err := Fig10(context.Background(), e.Seed)
	if err != nil {
		t.Fatal(err)
	}

	const ticks = 6300
	// Expected due-tick activations per cadenced component.
	wantSteps := map[string]uint64{
		"wsn.sensor.bt-temp-1": 2100, // T_spl = 3 s
		"wsn.sensor.bt-temp-2": 2100,
		"wsn.sensor.bt-temp-3": 2100,
		"wsn.sensor.bt-temp-4": 2100,
		"wsn.sensor.bt-hum-1":  3150, // 2 s
		"wsn.sensor.bt-hum-2":  3150,
		"wsn.sensor.bt-hum-3":  3150,
		"wsn.sensor.bt-hum-4":  3150,
		"wsn.sensor.bt-co2-1":  1575, // 4 s
		"wsn.sensor.bt-co2-2":  1575,
		"wsn.sensor.bt-co2-3":  1575,
		"wsn.sensor.bt-co2-4":  1575,

		"wsn.sensor.bt-paneldew-1": 3150, // 2 s
		"wsn.sensor.bt-paneldew-2": 3150,
		"wsn.sensor.bt-boxdew-1":   3150,
		"wsn.sensor.bt-boxdew-2":   3150,
		"wsn.sensor.bt-boxdew-3":   3150,
		"wsn.sensor.bt-boxdew-4":   3150,

		"wsn.periodic.ac-control-c1":   1260, // 5 s
		"wsn.periodic.ac-control-c2-1": 3150, // 2 s
		"wsn.periodic.ac-control-c2-2": 3150,
		"wsn.periodic.ac-control-v1":   1260, // 5 s
		"wsn.periodic.ac-control-v2-1": 3150, // 2 s
		"wsn.periodic.ac-control-v2-2": 3150,
		"wsn.periodic.ac-control-v2-3": 3150,
		"wsn.periodic.ac-control-v2-4": 3150,
		"wsn.periodic.ac-control-v3-1": 3150,
		"wsn.periodic.ac-control-v3-2": 3150,
		"wsn.periodic.ac-control-v3-3": 3150,
		"wsn.periodic.ac-control-v3-4": 3150,
	}
	everyTick := map[string]bool{
		"radiant.module": true,
		"vent.module":    true,
		"core.glue":      true,
		"thermal.room":   true,
	}

	stats := r.SchedStats
	if want := len(wantSteps) + len(everyTick) + 1; len(stats) != want {
		t.Fatalf("StepStats reports %d components, want %d", len(stats), want)
	}
	var cadencedSkipped, cadencedTicks uint64
	for _, cs := range stats {
		if cs.Steps+cs.Skipped != ticks {
			t.Errorf("%s: steps %d + skipped %d != %d processed ticks",
				cs.Name, cs.Steps, cs.Skipped, uint64(ticks))
		}
		if cs.Kind == "cadenced" {
			cadencedSkipped += cs.Skipped
			cadencedTicks += ticks
		}
		switch {
		case cs.Name == "wsn.network":
			if cs.Kind != "on-demand" {
				t.Errorf("wsn.network kind = %q, want on-demand", cs.Kind)
			}
			// Woken at least on the 2-second broadcaster ticks, and idle
			// on at least the ticks where no producer ran at all.
			if cs.Steps < 3150 || cs.Steps >= ticks {
				t.Errorf("wsn.network stepped %d of %d ticks, want in [3150, %d)",
					cs.Steps, uint64(ticks), uint64(ticks))
			}
			// And exactly the count the golden epoch pinned.
			if cs.Steps != e.NetworkSteps {
				t.Errorf("wsn.network stepped %d ticks, epoch v%d pins %d; "+
					"if intentional, re-pin with: make repin REASON=\"...\"",
					cs.Steps, e.Version, e.NetworkSteps)
			}
		case everyTick[cs.Name]:
			if cs.Kind != "every-tick" {
				t.Errorf("%s kind = %q, want every-tick", cs.Name, cs.Kind)
			}
			if cs.Steps != ticks || cs.Skipped != 0 {
				t.Errorf("%s stepped %d/%d ticks (skipped %d), want all",
					cs.Name, cs.Steps, uint64(ticks), cs.Skipped)
			}
		default:
			want, ok := wantSteps[cs.Name]
			if !ok {
				t.Errorf("unexpected component %q in StepStats", cs.Name)
				continue
			}
			if cs.Kind != "cadenced" {
				t.Errorf("%s kind = %q, want cadenced", cs.Name, cs.Kind)
			}
			if cs.Steps != want {
				t.Errorf("%s stepped %d ticks, want exactly %d", cs.Name, cs.Steps, want)
			}
		}
	}
	// The headline: across the trial the wheel skipped over half of the
	// component-ticks that per-tick polling of the motes and broadcasters
	// would have paid (57.6% at the §IV-B periods).
	if cadencedSkipped*2 < cadencedTicks {
		t.Errorf("scheduler skipped only %d of %d cadenced component-ticks",
			cadencedSkipped, cadencedTicks)
	}
}
