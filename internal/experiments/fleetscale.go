package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"bubblezero/internal/fleet"
)

// FleetScaleResult captures the fleet-scale experiment: N independent
// BubbleZERO buildings with varied climates and occupancy, stepped
// sharded across cores, with the per-building memory cost and the
// aggregate stepping rate measured on the way.
type FleetScaleResult struct {
	Buildings int
	Shards    int
	SimHours  float64
	// BytesPerBuilding is the GC-settled live-heap cost per instantiated
	// building, measured at construction.
	BytesPerBuilding int64
	// BuildingTicksPerSec is the aggregate stepping rate: simulated
	// building-seconds per wall-clock second over the whole run. Unlike
	// everything else here it depends on the host, so it is reported but
	// never golden-pinned.
	BuildingTicksPerSec float64
	// Stats is the deterministic fleet-wide aggregate at the end of the
	// run.
	Stats fleet.Stats

	cfg fleet.Config
	fl  *fleet.Fleet
}

// FleetScale builds an n-building fleet from the default tropical
// variation template and steps it for d of simulated time. shards = 0
// picks NumCPU.
func FleetScale(ctx context.Context, seed uint64, n, shards int, d time.Duration) (*FleetScaleResult, error) {
	cfg := fleet.DefaultConfig(n)
	cfg.Seed = seed
	cfg.Shards = shards
	fl, err := fleet.New(ctx, cfg)
	if err != nil {
		return nil, err
	}
	wall := time.Now()
	if err := fl.Run(ctx, d); err != nil {
		return nil, err
	}
	elapsed := time.Since(wall).Seconds()
	r := &FleetScaleResult{
		Buildings:        n,
		Shards:           fl.Shards(),
		SimHours:         d.Hours(),
		BytesPerBuilding: fl.BytesPerBuilding(),
		Stats:            fl.Stats(),
		cfg:              cfg,
		fl:               fl,
	}
	if elapsed > 0 {
		r.BuildingTicksPerSec = float64(fl.Ticks()) * float64(n) / elapsed
	}
	return r, nil
}

// Summary renders the fleet experiment for the console.
func (r *FleetScaleResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet: %d buildings × %.1f h across %d shard(s): %.1f KiB/building, %.0f building-ticks/s\n",
		r.Buildings, r.SimHours, r.Shards,
		float64(r.BytesPerBuilding)/1024, r.BuildingTicksPerSec)
	fmt.Fprintf(&b, "  temp avg %.2f°C [%.2f, %.2f], dew avg %.2f°C, COP %.2f (%d/%d buildings), condensation %.0f s\n",
		r.Stats.AvgTempC, r.Stats.MinTempC, r.Stats.MaxTempC, r.Stats.AvgDewC,
		r.Stats.AvgCOP, r.Stats.COPSamples, r.Stats.Buildings, r.Stats.CondensationS)
	return b.String()
}

// WriteTable emits the per-building outcomes as CSV: the drawn boundary
// conditions next to the end-of-run room state, in building-index order.
func (r *FleetScaleResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintln(w,
		"building,seed,outdoor_c,outdoor_dew_c,avg_temp_c,avg_dew_c,cop,condensation_s"); err != nil {
		return err
	}
	for i := 0; i < r.Buildings; i++ {
		p := r.cfg.ParamsFor(i)
		sys := r.fl.Building(i)
		if _, err := fmt.Fprintf(w, "%d,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.1f\n",
			i, p.Seed, p.OutdoorC, p.OutdoorDewC,
			sys.Room().AverageT(), sys.Room().AverageDewPoint(),
			sys.COPTotal().Value(), sys.CondensationSeconds()); err != nil {
			return err
		}
	}
	return nil
}
