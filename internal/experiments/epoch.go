package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// GoldenEpochPath is the repository location of the current golden epoch,
// relative to the internal/experiments package directory.
const GoldenEpochPath = "testdata/golden_epoch.json"

// Fig10Metrics are the headline paper metrics of the Figure 10 trial, the
// quantities the golden epoch pins with tolerances (Fig10Bounds) rather
// than bit-identity. They answer "does the model still reproduce §V?"
// independently of the float-level digest.
type Fig10Metrics struct {
	// TempConvergeMin / DewConvergeMin: minutes until the room average
	// first reaches within 0.3 K of the 25 °C / 18 °C-dew targets
	// (paper: ≈30 min each).
	TempConvergeMin float64 `json:"temp_converge_min"`
	DewConvergeMin  float64 `json:"dew_converge_min"`
	// Event1DewBlipC: subspace-1 dew excursion after the 15 s door
	// opening (paper: ≈0.6 °C).
	Event1DewBlipC float64 `json:"event1_dew_blip_c"`
	// Event2RecoveryMin: minutes to re-enter the dew band after the
	// 2-minute opening (paper: ≈15 min).
	Event2RecoveryMin float64 `json:"event2_recovery_min"`
	// CondensationS: cumulative panel condensation exposure (paper:
	// condensation never occurred).
	CondensationS float64 `json:"condensation_s"`
	// FinalTempC / FinalDewC: end-of-trial room averages.
	FinalTempC float64 `json:"final_temp_c"`
	FinalDewC  float64 `json:"final_dew_c"`
	// FinalCOP: end-of-trial whole-system COP (paper Fig. 11: ≈3.9 for
	// the high-temperature-cooling system).
	FinalCOP float64 `json:"final_cop"`
}

// Metrics extracts the epoch-pinned paper metrics from a trial result.
func (r *Fig10Result) Metrics() Fig10Metrics {
	return Fig10Metrics{
		TempConvergeMin:   r.TempConverge.Minutes(),
		DewConvergeMin:    r.DewConverge.Minutes(),
		Event1DewBlipC:    r.Event1DewBlipC,
		Event2RecoveryMin: r.Event2RecoveryMin,
		CondensationS:     r.CondensationS,
		FinalTempC:        r.FinalTempC,
		FinalDewC:         r.FinalDewC,
		FinalCOP:          r.FinalCOP,
	}
}

// CheckFig10Bounds validates metrics against the documented paper-anchored
// tolerance bounds. These are the acceptance envelope for a golden-epoch
// re-pin: a kernel restructure may move float bits, but if it pushes any
// headline metric outside these bounds it changed the physics, not just
// the arithmetic association, and must not be pinned.
//
// The bounds and their anchors:
//
//	temp/dew convergence  20–40 min   paper §V: "approximately 30 minutes"
//	15 s door dew blip    0.3–1.2 °C  paper Fig. 10: ≈0.6 °C excursion
//	2 min door recovery   1–20 min    paper §V: "around 15 minutes"
//	condensation          ≤ 30 s      paper §V: condensation never occurred
//	final room average    25 ± 0.3 °C control target band
//	final room dew point  17–18.3 °C  dew target is a ceiling (≤18 °C for
//	                                  comfort + condensation margin), so
//	                                  undershoot is in-spec; +0.3 °C band
//	                                  above
//	final COP             3.0–5.0     paper Fig. 11: COP ≈ 3.9 (end-of-trial
//	                                  value sits lower after the door events)
func CheckFig10Bounds(m Fig10Metrics) error {
	var violations []string
	check := func(name string, v, lo, hi float64) {
		if v < lo || v > hi {
			violations = append(violations,
				fmt.Sprintf("%s = %v outside [%v, %v]", name, v, lo, hi))
		}
	}
	check("temp_converge_min", m.TempConvergeMin, 20, 40)
	check("dew_converge_min", m.DewConvergeMin, 20, 40)
	check("event1_dew_blip_c", m.Event1DewBlipC, 0.3, 1.2)
	check("event2_recovery_min", m.Event2RecoveryMin, 1, 20)
	check("condensation_s", m.CondensationS, 0, 30)
	check("final_temp_c", m.FinalTempC, 24.7, 25.3)
	check("final_dew_c", m.FinalDewC, 17.0, 18.3)
	check("final_cop", m.FinalCOP, 3.0, 5.0)
	if violations != nil {
		return fmt.Errorf("Fig10 metrics outside paper bounds:\n  %s",
			strings.Join(violations, "\n  "))
	}
	return nil
}

// GoldenEpoch is the versioned record that pins the deterministic kernel.
// The digest pins every traced bit of the seed-1 Figure 10 trial; the
// metrics pin the paper's results within Fig10Bounds; NetworkSteps pins
// the one scheduler count that is value-dependent (adaptive transmission)
// rather than pure cadence arithmetic. A re-pin (make repin) bumps the
// version and carries the outgoing digest and metrics forward as
// PrevDigest/PrevMetrics, so every epoch documents its own delta.
type GoldenEpoch struct {
	Version int    `json:"version"`
	Pinned  string `json:"pinned"` // ISO date of the re-pin
	Reason  string `json:"reason"` // why the bits were allowed to move
	Seed    uint64 `json:"seed"`

	Digest       string       `json:"digest"` // SHA-256 of the bit-exact trace dump
	NetworkSteps uint64       `json:"network_steps"`
	Metrics      Fig10Metrics `json:"metrics"`

	PrevDigest  string        `json:"prev_digest,omitempty"`
	PrevMetrics *Fig10Metrics `json:"prev_metrics,omitempty"`
}

// Validate checks structural sanity and that the pinned metrics sit inside
// the paper bounds.
func (e *GoldenEpoch) Validate() error {
	switch {
	case e.Version < 1:
		return fmt.Errorf("golden epoch: version %d < 1", e.Version)
	case len(e.Digest) != 64:
		return fmt.Errorf("golden epoch: digest %q is not a SHA-256 hex string", e.Digest)
	case e.Reason == "":
		return fmt.Errorf("golden epoch: empty reason")
	case e.NetworkSteps == 0:
		return fmt.Errorf("golden epoch: zero network steps")
	}
	if err := CheckFig10Bounds(e.Metrics); err != nil {
		return fmt.Errorf("golden epoch: pinned %w", err)
	}
	return nil
}

// LoadGoldenEpoch reads and validates an epoch record.
func LoadGoldenEpoch(path string) (*GoldenEpoch, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("golden epoch: %w", err)
	}
	var e GoldenEpoch
	if err := json.Unmarshal(raw, &e); err != nil {
		return nil, fmt.Errorf("golden epoch: parsing %s: %w", path, err)
	}
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return &e, nil
}

// WriteGoldenEpoch writes an epoch record as indented JSON.
func WriteGoldenEpoch(path string, e *GoldenEpoch) error {
	if err := e.Validate(); err != nil {
		return err
	}
	out, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
