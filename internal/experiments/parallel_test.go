package experiments

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// The parallel-runner rewiring must never change results: the scenario
// cache, the worker pool, and the fan-out are pure plumbing. These tests
// pin bit-identical outputs across cache on/off and pool widths.

const detHorizon = time.Hour

func TestScenarioCacheBitIdentical(t *testing.T) {
	ctx := context.Background()
	const seed = 7

	// Cache disabled: simulate directly and extract each figure.
	direct, err := RunNetScenario(ctx, seed, detHorizon)
	if err != nil {
		t.Fatal(err)
	}
	d13 := Fig13FromScenario(direct)
	d14 := Fig14FromScenario(direct)
	d15, err := Fig15FromScenario(ctx, direct, seed)
	if err != nil {
		t.Fatal(err)
	}

	// Cache enabled: a fresh suite memoizes one simulation shared by all
	// figures.
	suite := NewSuite(runtime.NumCPU())
	c13, err := suite.Fig13(ctx, seed, detHorizon)
	if err != nil {
		t.Fatal(err)
	}
	c14, err := suite.Fig14(ctx, seed, detHorizon)
	if err != nil {
		t.Fatal(err)
	}
	c15, err := suite.Fig15(ctx, seed, detHorizon)
	if err != nil {
		t.Fatal(err)
	}

	if d13.VarMinStableS != c13.VarMinStableS || d13.VarMaxStableS != c13.VarMaxStableS ||
		d13.FinalAccuracyPct != c13.FinalAccuracyPct {
		t.Errorf("Fig13 differs: direct %+v vs cached %+v", d13, c13)
	}
	if !reflect.DeepEqual(d13.Accuracy.Points(), c13.Accuracy.Points()) {
		t.Error("Fig13 accuracy series differs between cached and uncached runs")
	}
	if d14.StableTsndS != c14.StableTsndS || d14.Detected != c14.Detected ||
		d14.Total != c14.Total || d14.MaxDelayS != c14.MaxDelayS || d14.MeanDelayS != c14.MeanDelayS {
		t.Errorf("Fig14 differs: direct %+v vs cached %+v", d14, c14)
	}
	if d15.MeanTsndS != c15.MeanTsndS || d15.AdaptiveYears != c15.AdaptiveYears ||
		d15.FixedYears != c15.FixedYears {
		t.Errorf("Fig15 differs: direct %+v vs cached %+v", d15, c15)
	}
	if !reflect.DeepEqual(d15.CDFXs, c15.CDFXs) || !reflect.DeepEqual(d15.CDFPs, c15.CDFPs) {
		t.Error("Fig15 CDF differs between cached and uncached runs")
	}
}

func TestPoolWidthBitIdentical(t *testing.T) {
	// Width 1 vs NumCPU: identical Fig12 tables and ablation sweeps. Each
	// suite owns a fresh cache, so the scenario is re-simulated per suite —
	// any RNG-stream sharing across worker goroutines would diverge here.
	ctx := context.Background()
	const seed = 3
	ns := []int{5, 20, 40}

	serial := NewSuite(1)
	wide := NewSuite(runtime.NumCPU())

	f12s, err := serial.Fig12(ctx, seed, detHorizon, ns)
	if err != nil {
		t.Fatal(err)
	}
	f12w, err := wide.Fig12(ctx, seed, detHorizon, ns)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f12s.Points, f12w.Points) {
		t.Errorf("Fig12 differs across pool widths:\n width 1: %+v\n width N: %+v",
			f12s.Points, f12w.Points)
	}

	temps := []float64{12, 18, 21}
	sweepS, err := serial.AblationSupplyTemp(ctx, seed, temps)
	if err != nil {
		t.Fatal(err)
	}
	sweepW, err := wide.AblationSupplyTemp(ctx, seed, temps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sweepS, sweepW) {
		t.Errorf("supply sweep differs across pool widths:\n width 1: %+v\n width N: %+v",
			sweepS, sweepW)
	}

	ncS, err := serial.AblationNoCoupling(ctx, seed)
	if err != nil {
		t.Fatal(err)
	}
	ncW, err := wide.AblationNoCoupling(ctx, seed)
	if err != nil {
		t.Fatal(err)
	}
	if *ncS != *ncW {
		t.Errorf("no-coupling ablation differs across pool widths: %+v vs %+v", ncS, ncW)
	}
}

func TestSuiteSimulatesScenarioOnce(t *testing.T) {
	ctx := context.Background()
	suite := NewSuite(runtime.NumCPU())
	before := NetScenarioRunCount()

	// Every consumer of the scenario, concurrently — the worst case the
	// old code quadruplicated.
	err := suite.Pool().Run(ctx,
		func(ctx context.Context) error { _, err := suite.Fig12(ctx, 11, detHorizon, []int{5, 40}); return err },
		func(ctx context.Context) error { _, err := suite.Fig13(ctx, 11, detHorizon); return err },
		func(ctx context.Context) error { _, err := suite.Fig14(ctx, 11, detHorizon); return err },
		func(ctx context.Context) error { _, err := suite.Fig15(ctx, 11, detHorizon); return err },
	)
	if err != nil {
		t.Fatal(err)
	}
	if runs := NetScenarioRunCount() - before; runs != 1 {
		t.Errorf("scenario simulated %d times, want exactly 1 (singleflight + memoization)", runs)
	}
	if suite.CachedScenarios() != 1 {
		t.Errorf("cache retains %d scenarios, want 1", suite.CachedScenarios())
	}

	// A second batch with the same key is a pure cache hit.
	if _, err := suite.Fig13(ctx, 11, detHorizon); err != nil {
		t.Fatal(err)
	}
	if runs := NetScenarioRunCount() - before; runs != 1 {
		t.Errorf("cache hit re-simulated: %d runs", runs)
	}

	// Purging releases the memo; the next request simulates again.
	suite.PurgeScenarios()
	if _, err := suite.Fig13(ctx, 11, detHorizon); err != nil {
		t.Fatal(err)
	}
	if runs := NetScenarioRunCount() - before; runs != 2 {
		t.Errorf("purged suite ran %d simulations, want 2", runs)
	}
}

func TestSuiteCancellationNotCached(t *testing.T) {
	suite := NewSuite(2)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := suite.Fig13(cancelled, 5, detHorizon); err == nil {
		t.Fatal("cancelled scenario request should fail")
	}
	// The failure must not poison the cache: a live context succeeds.
	if _, err := suite.Fig13(context.Background(), 5, detHorizon); err != nil {
		t.Errorf("cache poisoned by cancelled run: %v", err)
	}
}
