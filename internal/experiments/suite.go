package experiments

import (
	"context"
	"time"

	"bubblezero/internal/runner"
)

// scenarioCacheEntries bounds the scenario memo: each retained scenario
// holds every recorded sample of a multi-hour run (~tens of MB at the
// five-hour horizon), so the cache keeps only the few most recent
// (seed, duration) keys. Evaluation suites touch exactly one key; seed
// sweeps cycle through the bound FIFO-style.
const scenarioCacheEntries = 4

// Suite bundles the concurrency substrate for the experiment battery: a
// bounded worker pool for fanning out independent runs and a singleflight
// scenario cache so every figure that replays the §V-C workload shares
// one simulation per (seed, duration).
//
// Results are deterministic at any pool width: jobs write into per-index
// slots, each simulation owns its RNG streams, and fleet aggregations
// iterate devices in sorted order.
type Suite struct {
	pool      *runner.Pool
	scenarios *runner.ScenarioCache[*NetScenario]
}

// NewSuite returns a suite with the given worker count (<= 0 selects
// NumCPU) and a fresh scenario cache.
func NewSuite(workers int) *Suite {
	return &Suite{
		pool:      runner.NewPool(workers),
		scenarios: runner.NewScenarioCache[*NetScenario](scenarioCacheEntries),
	}
}

// Default is the suite behind the package-level experiment functions. It
// spans the whole process so repeated figure calls (benchmarks, the
// cmd/experiments binary, tests) share scenario simulations.
var Default = NewSuite(0)

// Pool returns the suite's worker pool.
func (s *Suite) Pool() *runner.Pool { return s.pool }

// NetScenario returns the memoized §V-C scenario for (seed, d), running
// the simulation at most once per key across all concurrent callers. The
// scenario is shared: callers must treat it as read-only.
func (s *Suite) NetScenario(ctx context.Context, seed uint64, d time.Duration) (*NetScenario, error) {
	return s.scenarios.Get(ctx, seed, d, RunNetScenario)
}

// CachedScenarios returns how many scenarios the suite currently retains.
func (s *Suite) CachedScenarios() int { return s.scenarios.Len() }

// PurgeScenarios drops every retained scenario, releasing their memory.
func (s *Suite) PurgeScenarios() { s.scenarios.Purge() }

// Fig12 is the N-selection study against the suite's cached scenario,
// with the per-N replays fanned across the pool.
func (s *Suite) Fig12(ctx context.Context, seed uint64, d time.Duration, ns []int) (*Fig12Result, error) {
	if len(ns) == 0 {
		ns = []int{5, 10, 15, 20, 25, 30, 40, 50, 60, 70}
	}
	sc, err := s.NetScenario(ctx, seed, d)
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{Scenario: sc, Points: make([]Fig12Point, len(ns))}
	err = s.pool.ForEach(ctx, len(ns), func(_ context.Context, i int) error {
		p, err := fig12Point(sc, ns[i])
		if err != nil {
			return err
		}
		res.Points[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Fig13 extracts the accuracy trajectory from the cached scenario.
func (s *Suite) Fig13(ctx context.Context, seed uint64, d time.Duration) (*Fig13Result, error) {
	sc, err := s.NetScenario(ctx, seed, d)
	if err != nil {
		return nil, err
	}
	return Fig13FromScenario(sc), nil
}

// Fig14 extracts one device's adaptation behaviour from the cached
// scenario.
func (s *Suite) Fig14(ctx context.Context, seed uint64, d time.Duration) (*Fig14Result, error) {
	sc, err := s.NetScenario(ctx, seed, d)
	if err != nil {
		return nil, err
	}
	return Fig14FromScenario(sc), nil
}

// Fig15 extracts the T_snd distribution from the cached scenario and runs
// the (uncached, one-hour) fixed-mode baseline for the lifetime
// comparison.
func (s *Suite) Fig15(ctx context.Context, seed uint64, d time.Duration) (*Fig15Result, error) {
	sc, err := s.NetScenario(ctx, seed, d)
	if err != nil {
		return nil, err
	}
	return Fig15FromScenario(ctx, sc, seed)
}

// AblationSupplyTemp fans the per-temperature steady-state runs across
// the pool; each run derives its own system, so results are independent
// of worker count.
func (s *Suite) AblationSupplyTemp(ctx context.Context, seed uint64, temps []float64) ([]SupplyTempPoint, error) {
	if len(temps) == 0 {
		temps = []float64{10, 14, 18, 21}
	}
	out := make([]SupplyTempPoint, len(temps))
	err := s.pool.ForEach(ctx, len(temps), func(ctx context.Context, i int) error {
		p, err := supplyTempPoint(ctx, seed, temps[i])
		if err != nil {
			return err
		}
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AblationNoCoupling runs the guarded and unguarded systems concurrently.
func (s *Suite) AblationNoCoupling(ctx context.Context, seed uint64) (*NoCouplingResult, error) {
	var res NoCouplingResult
	err := s.pool.Run(ctx,
		func(ctx context.Context) error {
			v, err := runNoCoupling(ctx, seed, false)
			res.GuardedCondensationS = v
			return err
		},
		func(ctx context.Context) error {
			v, err := runNoCoupling(ctx, seed, true)
			res.UnguardedCondensationS = v
			return err
		})
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// AblationDesync runs the desynchronised and random-offset systems
// concurrently.
func (s *Suite) AblationDesync(ctx context.Context, seed uint64, d time.Duration) (*DesyncResult, error) {
	var res DesyncResult
	err := s.pool.Run(ctx,
		func(ctx context.Context) error {
			st, err := runDesync(ctx, seed, d, true)
			res.WithDesync = st
			return err
		},
		func(ctx context.Context) error {
			st, err := runDesync(ctx, seed, d, false)
			res.WithoutDesync = st
			return err
		})
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// AblationHistogramReset replays the cached scenario with and without
// periodic histogram resets, the two replays in parallel.
func (s *Suite) AblationHistogramReset(ctx context.Context, seed uint64, d time.Duration, resetEvery time.Duration) (*HistogramResetResult, error) {
	sc, err := s.NetScenario(ctx, seed, d)
	if err != nil {
		return nil, err
	}
	var res HistogramResetResult
	err = s.pool.Run(ctx,
		func(context.Context) error {
			v, err := replayHistogramReset(sc, resetEvery, true)
			res.WithResetPct = v
			return err
		},
		func(context.Context) error {
			v, err := replayHistogramReset(sc, resetEvery, false)
			res.WithoutResetPct = v
			return err
		})
	if err != nil {
		return nil, err
	}
	return &res, nil
}
