package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"bubblezero/internal/core"
	"bubblezero/internal/energy"
	"bubblezero/internal/fault"
	"bubblezero/internal/sim"
	"bubblezero/internal/wsn"
)

// The mote-lifetime experiment: the paper's battery argument (§IV-C) is
// that adaptive transmission stretches sensor lifetime by sending only
// on change. Rather than simulate months, a fault-plan BatteryScale
// event fast-forwards every mote to its last few joules once the room
// has settled; from there, time-to-depletion differs only by how often
// each policy actually keys the radio.

// lifetimeSettle lets the room and the adaptive send-rate converge
// before the batteries are scaled down.
const lifetimeSettle = 45 * time.Minute

// lifetimeRemainingJ is the energy each mote is left with at the scale
// event — enough for hours under adaptive sending, a fraction of that
// under fixed-rate sending.
const lifetimeRemainingJ = 4.0

// lifetimeHorizon bounds the run; motes still alive at the end are
// censored at the horizon, which only understates the adaptive margin.
const lifetimeHorizon = 6 * time.Hour

// MoteLifetime holds one device's depletion record.
type MoteLifetime struct {
	Node string
	// DiedAfterMin is minutes from the battery-scale event to depletion;
	// Censored marks motes still alive at the horizon (DiedAfterMin then
	// holds the observation bound).
	DiedAfterMin float64
	Censored     bool
}

// LifetimeRun is one transmission policy's outcome.
type LifetimeRun struct {
	Mode  wsn.TxMode
	Motes []MoteLifetime
	// MedianMin is the median time-to-depletion in minutes (censored
	// motes count at the horizon, a lower bound).
	MedianMin float64
	// Alive is the number of motes still running at the horizon.
	Alive int
}

// LifetimeResult compares adaptive against fixed-rate transmission.
type LifetimeResult struct {
	Seed            uint64
	Adaptive, Fixed LifetimeRun
}

// lifetimePlan scales every mote's battery down at the settle mark.
func lifetimePlan() *fault.Plan {
	frac := lifetimeRemainingJ / energy.TwoAACapacityJ
	evs := make([]fault.Event, 0, 18)
	for z := 1; z <= 4; z++ {
		evs = append(evs,
			fault.BatteryScale(lifetimeSettle, fmt.Sprintf("bt-temp-%d", z), frac),
			fault.BatteryScale(lifetimeSettle, fmt.Sprintf("bt-hum-%d", z), frac),
			fault.BatteryScale(lifetimeSettle, fmt.Sprintf("bt-co2-%d", z), frac),
			fault.BatteryScale(lifetimeSettle, fmt.Sprintf("bt-boxdew-%d", z), frac),
		)
	}
	evs = append(evs,
		fault.BatteryScale(lifetimeSettle, "bt-paneldew-1", frac),
		fault.BatteryScale(lifetimeSettle, "bt-paneldew-2", frac),
	)
	return fault.MustPlan(evs...)
}

// runLifetime executes one policy.
func runLifetime(ctx context.Context, seed uint64, mode wsn.TxMode) (LifetimeRun, error) {
	out := LifetimeRun{Mode: mode}
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	sys, err := core.NewSystem(cfg, core.WithTxMode(mode), core.WithFaultPlan(lifetimePlan()))
	if err != nil {
		return out, err
	}
	// Probe: record the elapsed time at which each mote's battery first
	// reads depleted. Registration order puts the probe after the motes,
	// so a device dying on tick T is seen on tick T.
	devs := sys.Devices()
	diedAtS := make([]float64, len(devs))
	for i := range diedAtS {
		diedAtS[i] = -1
	}
	sys.Engine().Register(sim.ComponentFunc{ID: "lifetime.probe", Fn: func(env *sim.Env) {
		for i, d := range devs {
			if diedAtS[i] < 0 && d.Node().Battery().Depleted() {
				diedAtS[i] = env.Elapsed().Seconds()
			}
		}
	}})
	if err := sys.Run(ctx, lifetimeHorizon); err != nil {
		return out, err
	}

	scaleS := lifetimeSettle.Seconds()
	boundMin := (lifetimeHorizon.Seconds() - scaleS) / 60
	times := make([]float64, 0, len(devs))
	for i, d := range devs {
		m := MoteLifetime{Node: string(d.Node().ID())}
		if diedAtS[i] < 0 {
			m.DiedAfterMin, m.Censored = boundMin, true
			out.Alive++
		} else {
			m.DiedAfterMin = (diedAtS[i] - scaleS) / 60
		}
		out.Motes = append(out.Motes, m)
		times = append(times, m.DiedAfterMin)
	}
	sort.Float64s(times)
	out.MedianMin = times[len(times)/2]
	return out, nil
}

// Lifetime runs both policies on the suite's pool.
func (s *Suite) Lifetime(ctx context.Context, seed uint64) (*LifetimeResult, error) {
	res := &LifetimeResult{Seed: seed}
	err := s.pool.Run(ctx,
		func(ctx context.Context) error {
			r, err := runLifetime(ctx, seed, wsn.ModeAdaptive)
			res.Adaptive = r
			return err
		},
		func(ctx context.Context) error {
			r, err := runLifetime(ctx, seed, wsn.ModeFixed)
			res.Fixed = r
			return err
		},
	)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Lifetime runs the comparison on the default suite.
func Lifetime(ctx context.Context, seed uint64) (*LifetimeResult, error) {
	return Default.Lifetime(ctx, seed)
}

// Ratio is the adaptive/fixed median lifetime ratio (censoring makes it
// a lower bound when adaptive motes outlive the horizon).
func (r *LifetimeResult) Ratio() float64 {
	if r.Fixed.MedianMin == 0 {
		return 0
	}
	return r.Adaptive.MedianMin / r.Fixed.MedianMin
}

// WriteTable renders per-mote depletion times side by side.
func (r *LifetimeResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-16s %14s %14s\n", "mote", "adaptive(min)", "fixed(min)"); err != nil {
		return err
	}
	fixedByNode := make(map[string]MoteLifetime, len(r.Fixed.Motes))
	for _, m := range r.Fixed.Motes {
		fixedByNode[m.Node] = m
	}
	cell := func(m MoteLifetime) string {
		if m.Censored {
			return fmt.Sprintf(">%.0f", m.DiedAfterMin)
		}
		return fmt.Sprintf("%.1f", m.DiedAfterMin)
	}
	for _, a := range r.Adaptive.Motes {
		if _, err := fmt.Fprintf(w, "%-16s %14s %14s\n", a.Node, cell(a), cell(fixedByNode[a.Node])); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders the headline comparison.
func (r *LifetimeResult) Summary() string {
	return fmt.Sprintf(
		"Lifetime: from %.0f J/mote, adaptive median %.0f min (%d/%d alive at horizon) vs fixed %.0f min — %.1f× longer",
		lifetimeRemainingJ, r.Adaptive.MedianMin, r.Adaptive.Alive, len(r.Adaptive.Motes),
		r.Fixed.MedianMin, r.Ratio())
}
