package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"bubblezero/internal/core"
	"bubblezero/internal/energy"
	"bubblezero/internal/trace"
	"bubblezero/internal/wsn"
)

// Fig13Result is "Accuracy as time elapses" (paper Figure 13): rolling
// decision accuracy starts around the high-80s while var_max/var_min are
// still moving and settles to 97–99 % once enough events have been seen.
type Fig13Result struct {
	// Accuracy is the fleet-average rolling accuracy sampled every 5 min.
	Accuracy *trace.Series
	// VarMinStableS / VarMaxStableS are when the histogram range bounds
	// last moved (paper: var_min ≈140 s, var_max ≈1.5 h).
	VarMinStableS, VarMaxStableS float64
	// FinalAccuracyPct is the last sampled fleet accuracy.
	FinalAccuracyPct float64
}

// Fig13 runs (or reuses, via the Default suite's scenario cache) the
// event workload and extracts the accuracy trajectory.
func Fig13(ctx context.Context, seed uint64, d time.Duration) (*Fig13Result, error) {
	return Default.Fig13(ctx, seed, d)
}

// Fig13FromScenario extracts the Figure 13 trajectory from an
// already-simulated scenario. It only reads the scenario.
func Fig13FromScenario(sc *NetScenario) *Fig13Result {
	res := &Fig13Result{
		Accuracy:      sc.Accuracy,
		VarMinStableS: sc.VarMinStableAt.Seconds(),
		VarMaxStableS: sc.VarMaxStableAt.Seconds(),
	}
	if v, ok := sc.Accuracy.Last(); ok {
		res.FinalAccuracyPct = v * 100
	}
	return res
}

// Summary renders the trajectory endpoints.
func (r *Fig13Result) Summary() string {
	st := r.Accuracy.Stats()
	return fmt.Sprintf(
		"Fig13: accuracy min %.1f%% → final %.1f%% (paper: ≈87%% → 97–99%%); "+
			"var_min stable after %.0f s (paper ≈140 s), var_max after %.1f h (paper ≈1.5 h)",
		st.Min*100, r.FinalAccuracyPct, r.VarMinStableS, r.VarMaxStableS/3600)
}

// Fig14Result is the T_snd adaptation snapshot (paper Figure 14): the
// transmission period sits at w_max·T_spl during stability, snaps to
// T_spl on each door event, and the detection delay is a few seconds.
type Fig14Result struct {
	// Tsnd is the observed device's transmission-period timeline.
	Tsnd *trace.Series
	// DeviceID is the humidity mote observed (subspace-1).
	DeviceID string
	// EventTimes are the door events within the observed window.
	EventTimes []time.Time
	// MaxDelayS and MeanDelayS are the event-detection delays (paper:
	// max 4 s, mean 2.7 s).
	MaxDelayS, MeanDelayS float64
	// Detected is how many events were detected, out of Total.
	Detected, Total int
	// StableTsndS is the plateau transmission period (paper: 64 s).
	StableTsndS float64
}

// Fig14 runs (or reuses, via the Default suite's scenario cache) the
// event workload and extracts one device's adaptation behaviour.
func Fig14(ctx context.Context, seed uint64, d time.Duration) (*Fig14Result, error) {
	return Default.Fig14(ctx, seed, d)
}

// Fig14FromScenario extracts the Figure 14 adaptation metrics from an
// already-simulated scenario. It only reads the scenario.
func Fig14FromScenario(sc *NetScenario) *Fig14Result {
	id := DeviceForEvent(true)
	res := &Fig14Result{
		Tsnd:        sc.Tsnd[id],
		DeviceID:    id,
		StableTsndS: sc.Tsnd[id].Stats().Max,
	}
	for i, ev := range sc.EventTimes {
		if !sc.DoorEvents[i] {
			continue
		}
		res.EventTimes = append(res.EventTimes, ev)
		res.Total++
		for _, tr := range sc.Transitions[id] {
			if tr.Before(ev) || tr.After(ev.Add(2*time.Minute)) {
				continue
			}
			delay := tr.Sub(ev).Seconds()
			res.Detected++
			res.MeanDelayS += delay
			if delay > res.MaxDelayS {
				res.MaxDelayS = delay
			}
			break
		}
	}
	if res.Detected > 0 {
		res.MeanDelayS /= float64(res.Detected)
	}
	return res
}

// Summary renders the adaptation metrics.
func (r *Fig14Result) Summary() string {
	return fmt.Sprintf(
		"Fig14 (%s): stable Tsnd %.0f s (paper 64), %d/%d door events detected, "+
			"delay max %.1f s mean %.1f s (paper max 4, mean 2.7)",
		r.DeviceID, r.StableTsndS, r.Detected, r.Total, r.MaxDelayS, r.MeanDelayS)
}

// Fig15Result is the T_snd distribution and lifetime comparison (paper
// Figure 15): the Fixed scheme pins T_snd at T_spl while BT-ADPT spans
// 2–64 s with a mean around 48 s, stretching two AA cells from ≈0.7 to
// ≈3.2 years.
type Fig15Result struct {
	// CDFXs / CDFPs are the BT-ADPT T_snd empirical CDF.
	CDFXs, CDFPs []float64
	// MeanTsndS is the fleet-mean adaptive transmission period.
	MeanTsndS float64
	// AdaptiveYears / FixedYears are projected battery lifetimes from the
	// measured drain rates.
	AdaptiveYears, FixedYears float64
}

// Fig15 runs (or reuses, via the Default suite's scenario cache) the
// adaptive workload, plus a short fixed-mode run to measure the baseline
// drain rate, and projects battery lifetimes.
func Fig15(ctx context.Context, seed uint64, d time.Duration) (*Fig15Result, error) {
	return Default.Fig15(ctx, seed, d)
}

// Fig15FromScenario extracts the Figure 15 distribution from an
// already-simulated scenario and runs the short fixed-mode baseline for
// the lifetime comparison (stationary by construction, so it is cheap and
// not worth caching).
func Fig15FromScenario(ctx context.Context, sc *NetScenario, seed uint64) (*Fig15Result, error) {
	res := &Fig15Result{MeanTsndS: sc.MeanTsndS()}
	res.CDFXs, res.CDFPs = trace.CDF(sc.AllTsndSamples())

	// Lifetime projection from the steady-state drain (the boot hour's
	// legitimate high-rate traffic is not representative of years of
	// operation).
	res.AdaptiveYears = meanLifetimeYears(sc.SteadyDrainJ, sc.SteadyElapsed)

	// Fixed-mode drain rate: stationary by construction, one hour is
	// plenty.
	fixedCfg := core.DefaultConfig()
	fixedCfg.Seed = seed
	fixedCfg.TxMode = wsn.ModeFixed
	fixedCfg.TracePeriod = 0
	fixedSys, err := core.NewSystem(fixedCfg)
	if err != nil {
		return nil, err
	}
	const fixedRun = time.Hour
	if err := fixedSys.Run(ctx, fixedRun); err != nil {
		return nil, err
	}
	fixedDrain := make(map[string]float64)
	for _, dev := range fixedSys.Devices() {
		fixedDrain[string(dev.Node().ID())] = dev.Node().Battery().UsedJ()
	}
	res.FixedYears = meanLifetimeYears(fixedDrain, fixedRun)
	return res, nil
}

// meanLifetimeYears projects the mean battery lifetime from per-device
// drains over the elapsed run. Devices are visited in sorted order so the
// accumulated mean is bit-identical across runs.
func meanLifetimeYears(drains map[string]float64, elapsed time.Duration) float64 {
	if len(drains) == 0 {
		return 0
	}
	var sum float64
	for _, id := range sortedKeys(drains) {
		d := drains[id]
		if d <= 0 {
			continue
		}
		avgPower := d / elapsed.Seconds()
		sum += energy.Years(energy.NewTwoAA().Lifetime(avgPower))
	}
	return sum / float64(len(drains))
}

// Summary renders the distribution and lifetime numbers.
func (r *Fig15Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b,
		"Fig15: BT-ADPT mean Tsnd %.1f s (paper ≈48); lifetime adaptive %.1f y vs fixed %.1f y "+
			"(paper 3.2 vs 0.7)\n", r.MeanTsndS, r.AdaptiveYears, r.FixedYears)
	b.WriteString("  CDF: ")
	for i := range r.CDFXs {
		fmt.Fprintf(&b, "%.0fs:%.2f ", r.CDFXs[i], r.CDFPs[i])
	}
	return b.String()
}
