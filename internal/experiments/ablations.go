package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"bubblezero/internal/adaptive"
	"bubblezero/internal/core"
	"bubblezero/internal/exergy"
	"bubblezero/internal/wsn"
)

// SupplyTempPoint is one row of the low-exergy design ablation.
type SupplyTempPoint struct {
	TSupplyC float64
	// ChillerCOP is the device-level coefficient of performance at this
	// supply temperature (exergy argument).
	ChillerCOP float64
	// SystemCOP is the whole-system measured COP from a steady-state run
	// with the radiant tank at this setpoint.
	SystemCOP float64
	// ReachedTarget reports whether the room still converged to 25 °C.
	ReachedTarget bool
}

// AblationSupplyTemp sweeps the radiant supply-water temperature,
// demonstrating the paper's central design argument: warmer water means
// less lift, less exergy, and higher COP — until the panels can no longer
// move enough heat. The per-temperature runs fan out across the Default
// suite's pool.
func AblationSupplyTemp(ctx context.Context, seed uint64, temps []float64) ([]SupplyTempPoint, error) {
	return Default.AblationSupplyTemp(ctx, seed, temps)
}

// supplyTempPoint runs one steady-state trial of the supply-temperature
// sweep. Each call builds its own system (and RNG streams), so points are
// independent and safe to compute concurrently.
func supplyTempPoint(ctx context.Context, seed uint64, tc float64) (SupplyTempPoint, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.RadiantSetpointC = tc
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return SupplyTempPoint{}, err
	}
	if err := sys.Run(ctx, time.Hour); err != nil {
		return SupplyTempPoint{}, err
	}
	sys.ResetCOP()
	if err := sys.Run(ctx, time.Hour); err != nil {
		return SupplyTempPoint{}, err
	}
	return SupplyTempPoint{
		TSupplyC:      tc,
		ChillerCOP:    exergy.DefaultChiller().COP(tc, cfg.Thermal.Outdoor.T),
		SystemCOP:     sys.COPTotal().Value(),
		ReachedTarget: sys.Room().AverageT() < 25.6,
	}, nil
}

// NoCouplingResult is the control-decomposition ablation: running the
// radiant loop without the dew-point guard in tropical air.
type NoCouplingResult struct {
	GuardedCondensationS   float64
	UnguardedCondensationS float64
}

// AblationNoCoupling runs the system with and without the condensation
// guard (the two arms concurrently, via the Default suite). The decomposed
// design only works because the modules collaborate; removing the coupling
// wets the panels within minutes.
func AblationNoCoupling(ctx context.Context, seed uint64) (*NoCouplingResult, error) {
	return Default.AblationNoCoupling(ctx, seed)
}

// runNoCoupling measures condensation seconds with the dew guard on or
// off. Each call owns its system, so the two arms run concurrently.
func runNoCoupling(ctx context.Context, seed uint64, ignore bool) (float64, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Radiant.IgnoreDewGuard = ignore
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return 0, err
	}
	if err := sys.Run(ctx, 45*time.Minute); err != nil {
		return 0, err
	}
	return sys.CondensationSeconds(), nil
}

// DesyncResult compares the AC-device schedule adaptation on and off
// under a heavy (fixed-mode) traffic load.
type DesyncResult struct {
	WithDesync, WithoutDesync wsn.Stats
}

// AblationDesync measures collision counts with and without the AC
// schedule desynchronisation (the two arms concurrently, via the Default
// suite).
func AblationDesync(ctx context.Context, seed uint64, d time.Duration) (*DesyncResult, error) {
	return Default.AblationDesync(ctx, seed, d)
}

// runDesync measures medium statistics under fixed-mode channel pressure
// with the AC desynchronisation on or off.
func runDesync(ctx context.Context, seed uint64, d time.Duration, desync bool) (wsn.Stats, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.TxMode = wsn.ModeFixed // maximum channel pressure
	cfg.Net.Desync = desync
	cfg.TracePeriod = 0
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return wsn.Stats{}, err
	}
	if err := sys.Run(ctx, d); err != nil {
		return wsn.Stats{}, err
	}
	return sys.Network().Stats(), nil
}

// HistogramResetResult measures the weekly counter-reset policy's effect
// on decision accuracy over a long horizon.
type HistogramResetResult struct {
	// WithResetPct / WithoutResetPct are final fleet accuracies.
	WithResetPct, WithoutResetPct float64
}

// AblationHistogramReset replays one device stream with and without a
// periodic histogram reset (via the Default suite's cached scenario). The
// paper resets U_i weekly "to eliminate approximation errors cumulated in
// the past week"; over the simulated horizon the effect is small but
// measurable.
func AblationHistogramReset(ctx context.Context, seed uint64, d time.Duration, resetEvery time.Duration) (*HistogramResetResult, error) {
	return Default.AblationHistogramReset(ctx, seed, d, resetEvery)
}

// replayHistogramReset scores the recorded streams with or without the
// periodic reset. It only reads the scenario; devices are visited in
// sorted order for bit-identical accumulation.
func replayHistogramReset(sc *NetScenario, resetEvery time.Duration, reset bool) (float64, error) {
	var sum float64
	n := 0
	for _, id := range sortedKeys(sc.Readings) {
		cfg := adaptive.DefaultConfig(sc.TsplS[id])
		cfg.TrackExact = true
		sched, err := adaptive.NewScheduler(cfg)
		if err != nil {
			return 0, err
		}
		samplesPerReset := int(resetEvery.Seconds() / sc.TsplS[id])
		for i, v := range sc.Readings[id] {
			if reset && samplesPerReset > 0 && i > 0 && i%samplesPerReset == 0 {
				sched.Histogram().Reset()
			}
			sched.OnSample(v)
		}
		if frac, decisions := sched.Accuracy(); decisions > 0 {
			sum += frac
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("experiments: no decisions in reset ablation")
	}
	return sum / float64(n) * 100, nil
}

// SummarizeSupplyTemp renders the sweep.
func SummarizeSupplyTemp(pts []SupplyTempPoint) string {
	var b strings.Builder
	b.WriteString("Ablation: radiant supply temperature sweep (low-exergy argument)\n")
	b.WriteString("  Tsupp  chillerCOP  systemCOP  reaches 25°C\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "  %4.0f°C     %6.2f      %5.2f       %v\n",
			p.TSupplyC, p.ChillerCOP, p.SystemCOP, p.ReachedTarget)
	}
	return b.String()
}
