package radiant

import (
	"context"
	"math"
	"testing"
	"time"

	"bubblezero/internal/exergy"
	"bubblezero/internal/hydraulic"
	"bubblezero/internal/sim"
)

var testStart = time.Date(2014, 3, 10, 13, 0, 0, 0, time.UTC)

type rig struct {
	tank   *hydraulic.Tank
	module *Module
	air    [NumPanels]float64
}

func newRig(t *testing.T) *rig {
	t.Helper()
	tank, err := hydraulic.NewTank(200, 18, exergy.DefaultChiller(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{tank: tank}
	r.air[0], r.air[1] = 28.9, 28.9
	var loops [NumPanels]*hydraulic.MixingLoop
	for i := range loops {
		loop, err := hydraulic.NewMixingLoop(tank,
			&hydraulic.Pump{MaxFlowLpm: 6, MaxPowerW: 12, StandbyW: 0.5},
			&hydraulic.Pump{MaxFlowLpm: 6, MaxPowerW: 12, StandbyW: 0.5},
			hydraulic.Panel{UAWater: 85, HAAir: 170})
		if err != nil {
			t.Fatal(err)
		}
		loops[i] = loop
	}
	m, err := New(DefaultConfig(), tank, loops, func(p int) float64 { return r.air[p] })
	if err != nil {
		t.Fatal(err)
	}
	r.module = m
	return r
}

func (r *rig) run(t *testing.T, d time.Duration, extra ...sim.Component) {
	t.Helper()
	e := sim.NewEngine(sim.MustClock(testStart, time.Second), 3)
	for _, c := range extra {
		e.Register(c)
	}
	e.Register(r.module)
	e.Register(sim.ComponentFunc{ID: "tank", Fn: func(env *sim.Env) {
		r.tank.Step(env.Dt(), 25, 28.9)
	}})
	if err := e.RunFor(context.Background(), d); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	c := DefaultConfig()
	c.FMixMax = 0
	if err := c.Validate(); err == nil {
		t.Error("zero FMixMax accepted")
	}
	c = DefaultConfig()
	c.DewMargin = -1
	if err := c.Validate(); err == nil {
		t.Error("negative DewMargin accepted")
	}
}

func TestNewValidation(t *testing.T) {
	r := newRig(t)
	var loops [NumPanels]*hydraulic.MixingLoop
	loops[0] = r.module.loops[0]
	loops[1] = r.module.loops[1]
	if _, err := New(DefaultConfig(), nil, loops, func(int) float64 { return 25 }); err == nil {
		t.Error("nil tank accepted")
	}
	if _, err := New(DefaultConfig(), r.tank, loops, nil); err == nil {
		t.Error("nil panelAir accepted")
	}
	var badLoops [NumPanels]*hydraulic.MixingLoop
	if _, err := New(DefaultConfig(), r.tank, badLoops, func(int) float64 { return 25 }); err == nil {
		t.Error("nil loop accepted")
	}
}

func TestNoCoolingBeforeObservations(t *testing.T) {
	r := newRig(t)
	r.run(t, time.Minute)
	for p := 0; p < NumPanels; p++ {
		if q := r.module.Loop(p).Result().QW; q != 0 {
			t.Errorf("panel %d cooling %v W before any observation", p, q)
		}
	}
}

func TestDewBelowSupplyUsesPureSupplyTarget(t *testing.T) {
	r := newRig(t)
	r.module.ObservePanelDew(0, 14) // dry room: 14 °C dew, well below 18 °C water
	r.module.ObservePanelDew(1, 14)
	for z := 0; z < 4; z++ {
		r.module.ObserveZoneTemp(z, 28.9) // hot room
	}
	r.run(t, 5*time.Minute)
	for p := 0; p < NumPanels; p++ {
		if got := r.module.TMixTarget(p); math.Abs(got-18) > 0.01 {
			t.Errorf("panel %d TMixTarget = %v, want T_supp 18", p, got)
		}
		if got := r.module.FMixTarget(p); got <= 1 {
			t.Errorf("panel %d FMixTarget = %v, want substantial flow for 3.9 K error", p, got)
		}
		if q := r.module.Loop(p).Result().QW; q <= 100 {
			t.Errorf("panel %d duty = %v W, want substantial cooling", p, q)
		}
	}
}

func TestHumidAirRaisesMixTargetAboveSupply(t *testing.T) {
	r := newRig(t)
	r.module.ObservePanelDew(0, 27.4) // tropical startup: dew above water temp
	r.module.ObservePanelDew(1, 27.4)
	for z := 0; z < 4; z++ {
		r.module.ObserveZoneTemp(z, 28.9)
	}
	r.run(t, 5*time.Minute)
	for p := 0; p < NumPanels; p++ {
		want := 27.4 + DefaultConfig().DewMargin
		if got := r.module.TMixTarget(p); math.Abs(got-want) > 0.01 {
			t.Errorf("panel %d TMixTarget = %v, want T_cdew+margin %v", p, got, want)
		}
		// Condensation safety: the panel surface must stay at or above the
		// dew point (within sensor-noise tolerance).
		if surf := r.module.Loop(p).Result().TSurface; surf < 27.3 {
			t.Errorf("panel %d surface %v below dew threshold 27.4", p, surf)
		}
	}
}

func TestFlowBacksOffAtSetpoint(t *testing.T) {
	r := newRig(t)
	r.module.ObservePanelDew(0, 14)
	r.module.ObservePanelDew(1, 14)
	for z := 0; z < 4; z++ {
		r.module.ObserveZoneTemp(z, 25.0) // already at setpoint
	}
	r.run(t, 10*time.Minute)
	for p := 0; p < NumPanels; p++ {
		if got := r.module.FMixTarget(p); got > 1.0 {
			t.Errorf("panel %d flow = %v at setpoint, want near zero", p, got)
		}
	}
}

func TestClosedLoopCoolsVirtualRoom(t *testing.T) {
	// Couple the module to a toy one-node room: the PID must pull the
	// room from 28.9 °C to the 25 °C target without oscillating wildly.
	r := newRig(t)
	roomT := 28.9
	const heatCapJperK = 580000.0 // matches the lab's effective capacity
	coupler := sim.ComponentFunc{ID: "virtual-room", Fn: func(env *sim.Env) {
		r.module.ObservePanelDew(0, 14)
		r.module.ObservePanelDew(1, 14)
		for z := 0; z < 4; z++ {
			r.module.ObserveZoneTemp(z, roomT)
		}
		r.air[0], r.air[1] = roomT, roomT
		var q float64
		for p := 0; p < NumPanels; p++ {
			q += r.module.Loop(p).Result().QW
		}
		gain := 220 * (28.9 - roomT) // envelope
		roomT += (gain - q) / heatCapJperK * env.Dt()
	}}
	r.run(t, 90*time.Minute, coupler)
	if math.Abs(roomT-25) > 0.4 {
		t.Errorf("virtual room settled at %v °C, want ≈25", roomT)
	}
}

func TestSetTPrefPropagates(t *testing.T) {
	r := newRig(t)
	r.module.SetTPref(23)
	if r.module.TPref() != 23 {
		t.Errorf("TPref = %v", r.module.TPref())
	}
	for _, c := range r.module.pids {
		if c.Setpoint() != 23 {
			t.Errorf("pid setpoint = %v, want 23", c.Setpoint())
		}
	}
}

func TestObserveIgnoresInvalid(t *testing.T) {
	r := newRig(t)
	r.module.ObservePanelDew(-1, 20)
	r.module.ObservePanelDew(99, 20)
	r.module.ObservePanelDew(0, math.NaN())
	r.module.ObserveZoneTemp(-1, 25)
	r.module.ObserveZoneTemp(99, 25)
	r.module.ObserveZoneTemp(0, math.NaN())
	if !math.IsNaN(r.module.RoomTemp()) {
		t.Error("invalid observations were recorded")
	}
	if !math.IsNaN(r.module.TMixTarget(-1)) || !math.IsNaN(r.module.FMixTarget(99)) {
		t.Error("out-of-range target queries should return NaN")
	}
	if r.module.Loop(-1) != nil || r.module.Loop(99) != nil {
		t.Error("out-of-range Loop should return nil")
	}
}

func TestRoomTempAveragesPartialObservations(t *testing.T) {
	r := newRig(t)
	r.module.ObserveZoneTemp(0, 26)
	r.module.ObserveZoneTemp(2, 28)
	if got := r.module.RoomTemp(); math.Abs(got-27) > 1e-9 {
		t.Errorf("RoomTemp = %v, want 27 (mean of reported zones)", got)
	}
}

func TestPanelZoneMapping(t *testing.T) {
	if PanelZones(0) != [2]int{0, 1} || PanelZones(1) != [2]int{2, 3} {
		t.Error("PanelZones mapping wrong")
	}
	for z, want := range []int{0, 0, 1, 1} {
		if got := PanelForZone(z); got != want {
			t.Errorf("PanelForZone(%d) = %d, want %d", z, got, want)
		}
	}
}

func TestPumpPowerReported(t *testing.T) {
	r := newRig(t)
	r.module.ObservePanelDew(0, 14)
	r.module.ObservePanelDew(1, 14)
	for z := 0; z < 4; z++ {
		r.module.ObserveZoneTemp(z, 28.9)
	}
	r.run(t, time.Minute)
	if got := r.module.PumpPowerW(); got <= 0 {
		t.Errorf("PumpPowerW = %v, want > 0 while pumping", got)
	}
}
