package radiant

import (
	"bubblezero/internal/hydraulic"
	"bubblezero/internal/pid"
)

// ModuleState is the radiant module's full mutable state, loops and PIDs
// included. TPref travels because SetTPref mutates it at runtime; each
// PID state carries its own setpoint.
//
//bzlint:state ExportState RestoreState
type ModuleState struct {
	TPref float64

	PanelDew   [NumPanels]float64 // NaN until first observation
	ZoneTemp   [4]float64
	TMixTarget [NumPanels]float64
	FMixTarget [NumPanels]float64
	SafeMode   [NumPanels]bool

	PIDs  [NumPanels]pid.State
	Loops [NumPanels]hydraulic.MixingLoopState
}

// ExportState captures the module's mutable state.
func (m *Module) ExportState() ModuleState {
	st := ModuleState{
		TPref:      m.cfg.TPref,
		PanelDew:   m.panelDew,
		ZoneTemp:   m.zoneTemp,
		TMixTarget: m.tMixTarget,
		FMixTarget: m.fMixTarget,
		SafeMode:   m.safeMode,
	}
	for i := range m.pids {
		st.PIDs[i] = m.pids[i].ExportState()
		st.Loops[i] = m.loops[i].ExportState()
	}
	return st
}

// RestoreState overwrites the module's mutable state.
func (m *Module) RestoreState(st ModuleState) {
	m.cfg.TPref = st.TPref
	m.panelDew = st.PanelDew
	m.zoneTemp = st.ZoneTemp
	m.tMixTarget = st.TMixTarget
	m.fMixTarget = st.FMixTarget
	m.safeMode = st.SafeMode
	for i := range m.pids {
		m.pids[i].RestoreState(st.PIDs[i])
		m.loops[i].RestoreState(st.Loops[i])
	}
}
