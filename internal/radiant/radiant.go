// Package radiant implements BubbleZERO's radiant cooling module
// (§III-B): the Control-C-1 / Control-C-2 logic that drives the two
// ceiling-panel mixing loops. Per panel it
//
//   - computes the panel-surface condensation threshold T_cdew from the
//     under-panel temperature/humidity sensors,
//   - holds the mixed water temperature at the target
//     T_t_mix = max(T_supp, T_cdew) by splitting flow between the supply
//     and recycle pumps, and
//   - runs a PID controller that maps the room-temperature error
//     ΔT = T_room − T_pref to the mixed flow target F_t_mix.
package radiant

import (
	"fmt"
	"math"

	"bubblezero/internal/hydraulic"
	"bubblezero/internal/pid"
	"bubblezero/internal/sim"
)

// NumPanels is the number of ceiling panels ("Two radiant panels are
// deployed on the ceiling and controlled separately").
const NumPanels = 2

// Config parameterises the module.
type Config struct {
	// TPref is the occupant's preferred room temperature in °C.
	TPref float64
	// FMixMax is the maximum mixed flow per panel in L/min (both pumps
	// combined).
	FMixMax float64
	// DewMargin is an additional safety margin (K) added above T_cdew
	// when computing the mixed-water target. The paper runs with the bare
	// max{T_supp, T_cdew}; a small margin absorbs sensor noise.
	DewMargin float64
	// IgnoreDewGuard disables the condensation coupling entirely: the
	// loop always targets T_mix = T_supp regardless of the under-panel
	// dew point. This is the ablation showing why the decomposed modules
	// must collaborate — running it in tropical air wets the panels.
	IgnoreDewGuard bool
	// SafeModeRaiseK is the extra margin (K) added on top of DewMargin
	// while a panel is in safe mode — the degradation watchdog's response
	// to untrusted humidity data. The held dew estimate may be wrong by
	// however far the room has moved since it froze, so the mixed-water
	// target backs away from the condensation threshold at the cost of
	// some cooling capacity.
	SafeModeRaiseK float64
	// PID is the F_mix controller configuration. Zero value selects the
	// calibrated default.
	PID pid.Config
}

// DefaultConfig returns the paper's operating configuration (25 °C target).
func DefaultConfig() Config {
	return Config{
		TPref:          25,
		FMixMax:        6,
		DewMargin:      0.2,
		SafeModeRaiseK: 1.5,
		PID: pid.Config{
			Kp:      2.0,
			Ki:      0.01,
			Kd:      0,
			OutMin:  0,
			OutMax:  6,
			Reverse: true, // room hotter than target → more flow
		},
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.FMixMax <= 0 {
		return fmt.Errorf("radiant: FMixMax must be > 0, got %v", c.FMixMax)
	}
	if c.DewMargin < 0 {
		return fmt.Errorf("radiant: DewMargin must be >= 0, got %v", c.DewMargin)
	}
	if c.SafeModeRaiseK < 0 {
		return fmt.Errorf("radiant: SafeModeRaiseK must be >= 0, got %v", c.SafeModeRaiseK)
	}
	return c.PID.Validate()
}

// Module is the radiant cooling controller plus its two hydraulic loops.
// Observations arrive through the Observe* methods (wired to the wireless
// network by the core system); Step runs the control law and advances the
// loops.
type Module struct {
	cfg   Config
	tank  *hydraulic.Tank
	loops [NumPanels]*hydraulic.MixingLoop
	pids  [NumPanels]*pid.Controller

	// Latest observations; NaN until first data arrives.
	panelDew [NumPanels]float64
	zoneTemp [4]float64

	// panelAir returns the current air temperature under each panel; set
	// by the core system (panel 0 spans subspaces 1–2, panel 1 spans 3–4).
	panelAir func(panel int) float64

	tMixTarget [NumPanels]float64
	fMixTarget [NumPanels]float64

	// safeMode panels target dew + DewMargin + SafeModeRaiseK (set by the
	// degradation watchdog while the panel's humidity inputs are stale).
	safeMode [NumPanels]bool
}

var _ sim.Component = (*Module)(nil)

// New builds the module over a tank and two mixing loops. panelAir
// supplies the true air temperature each panel exchanges against.
func New(cfg Config, tank *hydraulic.Tank, loops [NumPanels]*hydraulic.MixingLoop,
	panelAir func(panel int) float64) (*Module, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tank == nil {
		return nil, fmt.Errorf("radiant: tank must not be nil")
	}
	if panelAir == nil {
		return nil, fmt.Errorf("radiant: panelAir must not be nil")
	}
	m := &Module{cfg: cfg, tank: tank, loops: loops, panelAir: panelAir}
	for i := range m.pids {
		if loops[i] == nil {
			return nil, fmt.Errorf("radiant: loop %d must not be nil", i)
		}
		ctrl, err := pid.New(cfg.PID)
		if err != nil {
			return nil, err
		}
		ctrl.SetSetpoint(cfg.TPref)
		m.pids[i] = ctrl
	}
	for i := range m.panelDew {
		m.panelDew[i] = math.NaN()
	}
	for i := range m.zoneTemp {
		m.zoneTemp[i] = math.NaN()
	}
	return m, nil
}

// Name implements sim.Component.
func (m *Module) Name() string { return "radiant.module" }

// SetTPref changes the occupant temperature setpoint.
func (m *Module) SetTPref(t float64) {
	m.cfg.TPref = t
	for _, c := range m.pids {
		c.SetSetpoint(t)
	}
}

// TPref returns the current temperature setpoint.
func (m *Module) TPref() float64 { return m.cfg.TPref }

// SetSafeMode switches a panel's condensation safe mode: while on, the
// mixed-water target carries SafeModeRaiseK of extra margin above the
// (possibly stale) dew estimate. Out-of-range panels are ignored.
func (m *Module) SetSafeMode(panel int, on bool) {
	if panel >= 0 && panel < NumPanels {
		m.safeMode[panel] = on
	}
}

// SafeMode reports whether a panel is in condensation safe mode.
func (m *Module) SafeMode(panel int) bool {
	return panel >= 0 && panel < NumPanels && m.safeMode[panel]
}

// SetIntegratorsFrozen freezes or thaws the F_mix PID integrators of
// both panels — the watchdog's response to the room-temperature feed
// going entirely stale (see pid.Controller.SetIntegratorFrozen).
func (m *Module) SetIntegratorsFrozen(on bool) {
	for _, c := range m.pids {
		c.SetIntegratorFrozen(on)
	}
}

// DeratePumps limits every loop pump of the module to frac of its
// commanded flow (1 restores healthy pumps) — the fault layer's
// pump-degradation hook.
func (m *Module) DeratePumps(frac float64) {
	for _, l := range m.loops {
		l.Supply.SetDerate(frac)
		l.Recycle.SetDerate(frac)
	}
}

// ObservePanelDew feeds an under-panel dew-point reading (°C) for the
// given panel, as computed by Control-C-1 from its six temperature and
// humidity sensors.
func (m *Module) ObservePanelDew(panel int, dew float64) {
	if panel >= 0 && panel < NumPanels && !math.IsNaN(dew) {
		m.panelDew[panel] = dew
	}
}

// ObserveZoneTemp feeds a room temperature reading (°C) for a subspace;
// the module averages the per-zone values into T_room.
func (m *Module) ObserveZoneTemp(zone int, t float64) {
	if zone >= 0 && zone < len(m.zoneTemp) && !math.IsNaN(t) {
		m.zoneTemp[zone] = t
	}
}

// RoomTemp returns the averaged observed room temperature, or NaN if no
// zone has reported yet.
func (m *Module) RoomTemp() float64 {
	var sum float64
	n := 0
	for _, t := range m.zoneTemp {
		if !math.IsNaN(t) {
			sum += t
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// TMixTarget returns the current mixed-water temperature target for a
// panel (T_t_mix).
func (m *Module) TMixTarget(panel int) float64 {
	if panel < 0 || panel >= NumPanels {
		return math.NaN()
	}
	return m.tMixTarget[panel]
}

// FMixTarget returns the current mixed-flow target for a panel (F_t_mix).
func (m *Module) FMixTarget(panel int) float64 {
	if panel < 0 || panel >= NumPanels {
		return math.NaN()
	}
	return m.fMixTarget[panel]
}

// Loop exposes a panel's hydraulic loop for instrumentation.
func (m *Module) Loop(panel int) *hydraulic.MixingLoop {
	if panel < 0 || panel >= NumPanels {
		return nil
	}
	return m.loops[panel]
}

// PumpPowerW returns the combined pump draw of both loops.
func (m *Module) PumpPowerW() float64 {
	var sum float64
	for _, l := range m.loops {
		sum += l.PumpPowerW()
	}
	return sum
}

// Step implements sim.Component: one pass of the §III-B control law
// followed by the hydraulic update.
//
//bzlint:hotpath
func (m *Module) Step(env *sim.Env) {
	dt := env.Dt()
	tSupp := m.tank.Temp()
	troom := m.RoomTemp()

	for p := 0; p < NumPanels; p++ {
		// T_t_mix = max{T_supp, T_cdew}: supply water directly if it is
		// already above the condensation threshold, otherwise recycle
		// return water to lift the mixture to the threshold. Before the
		// first dew observation the module holds the loop at the air
		// temperature (no cooling) — the condensation-safe default.
		dew := m.panelDew[p]
		if math.IsNaN(dew) && !m.cfg.IgnoreDewGuard {
			m.tMixTarget[p] = m.panelAir(p)
			m.fMixTarget[p] = 0
			m.loops[p].CommandFlows(m.tMixTarget[p], 0)
			m.loops[p].Step(m.panelAir(p), dt)
			continue
		}
		if m.cfg.IgnoreDewGuard {
			m.tMixTarget[p] = tSupp
		} else {
			margin := m.cfg.DewMargin
			if m.safeMode[p] {
				margin += m.cfg.SafeModeRaiseK
			}
			m.tMixTarget[p] = math.Max(tSupp, dew+margin)
		}

		// F_t_mix from the PID on ΔT = T_room − T_pref. Without a room
		// reading yet the flow stays off.
		if math.IsNaN(troom) {
			m.fMixTarget[p] = 0
		} else {
			m.fMixTarget[p] = m.pids[p].Update(troom, dt)
			if m.fMixTarget[p] > m.cfg.FMixMax {
				m.fMixTarget[p] = m.cfg.FMixMax
			}
		}

		m.loops[p].CommandFlows(m.tMixTarget[p], m.fMixTarget[p])
		m.loops[p].Step(m.panelAir(p), dt)
	}
}

// PanelZones maps a panel index to the subspaces it covers: panel 0 cools
// subspaces 1–2, panel 1 cools subspaces 3–4.
func PanelZones(panel int) [2]int {
	if panel == 0 {
		return [2]int{0, 1}
	}
	return [2]int{2, 3}
}

// PanelForZone maps a subspace to the panel above it.
func PanelForZone(zone int) int {
	if zone <= 1 {
		return 0
	}
	return 1
}
