// Package core assembles the full BubbleZERO system: the four-subspace
// laboratory thermal model, the 18 °C radiant cooling loop and the 8 °C
// distributed ventilation loop with their control modules, the 802.15.4
// wireless sensor network carrying every observation between boards
// (Figure 8's supply/consumption topology), per-load energy metering, and
// the trace recorder the experiments replay.
package core

import (
	"fmt"
	"time"

	"bubblezero/internal/adaptive"
	"bubblezero/internal/exergy"
	"bubblezero/internal/radiant"
	"bubblezero/internal/thermal"
	"bubblezero/internal/vent"
	"bubblezero/internal/wsn"
)

// Config parameterises a System.
type Config struct {
	// Start is the simulated wall-clock start (the paper's trial runs
	// start at 13:00).
	Start time.Time
	// Step is the simulation tick.
	Step time.Duration
	// Seed drives every stochastic element (sensor noise, radio
	// contention) deterministically.
	Seed uint64

	// Thermal is the laboratory model configuration.
	Thermal thermal.Config
	// Radiant is the radiant cooling module configuration.
	Radiant radiant.Config
	// Vent is the distributed ventilation module configuration.
	Vent vent.Config
	// Net is the radio medium configuration.
	Net wsn.Config
	// TxMode selects adaptive (BT-ADPT) or fixed transmission for
	// battery devices.
	TxMode wsn.TxMode
	// TrackExact additionally runs the exact clusterer inside every
	// adaptive scheduler for accuracy evaluation (Figures 12–13).
	TrackExact bool

	// Chiller is the refrigeration model shared by both tanks.
	Chiller exergy.Chiller
	// RadiantTankL / RadiantSetpointC / RadiantCapacityW describe the
	// 18 °C tank.
	RadiantTankL     float64
	RadiantSetpointC float64
	RadiantCapacityW float64
	// VentTankL / VentSetpointC / VentCapacityW describe the 8 °C tank.
	VentTankL     float64
	VentSetpointC float64
	VentCapacityW float64

	// PanelUAWater / PanelHAAir parameterise each ceiling panel.
	PanelUAWater float64
	PanelHAAir   float64
	// PumpMaxFlowLpm / PumpMaxPowerW parameterise the radiant loop pumps.
	PumpMaxFlowLpm float64
	PumpMaxPowerW  float64

	// SensorNoise enables datasheet-grade noise on every sensor reading.
	SensorNoise bool
	// TracePeriod is the recorder sampling period (0 disables tracing).
	TracePeriod time.Duration

	// TsplTemperatureS / TsplHumidityS / TsplCO2S are the bt-device
	// sampling periods in seconds (§IV-B: 3 s, 2 s, 4 s). All must be
	// positive.
	TsplTemperatureS float64
	TsplHumidityS    float64
	TsplCO2S         float64

	// DegradeStaleAfter is how long a consumed sensor input may go
	// without a fresh broadcast before the degradation watchdog declares
	// it stale and falls back (neighbor substitution, integrator freeze,
	// condensation safe mode). It must comfortably exceed the adaptive
	// scheme's maximum transmission gap (T_snd ≤ 32·T_spl, ≈2 minutes)
	// plus a lost packet, or the watchdog would fire during healthy runs.
	// Only consulted when a fault plan arms the watchdog.
	DegradeStaleAfter time.Duration
}

// DefaultConfig returns the full paper-calibrated system: 18 °C radiant
// water, 8 °C ventilation water, 25 °C / 18 °C-dew targets, adaptive
// transmission.
func DefaultConfig() Config {
	return Config{
		Start:            time.Date(2014, 3, 10, 13, 0, 0, 0, time.UTC),
		Step:             time.Second,
		Seed:             1,
		Thermal:          thermal.DefaultConfig(),
		Radiant:          radiant.DefaultConfig(),
		Vent:             vent.DefaultConfig(),
		Net:              wsn.DefaultConfig(),
		TxMode:           wsn.ModeAdaptive,
		Chiller:          exergy.DefaultChiller(),
		RadiantTankL:     200,
		RadiantSetpointC: 18,
		RadiantCapacityW: 3000,
		VentTankL:        150,
		VentSetpointC:    8,
		VentCapacityW:    4200,
		PanelUAWater:     85,
		PanelHAAir:       170,
		PumpMaxFlowLpm:   6,
		PumpMaxPowerW:    12,
		SensorNoise:      true,
		TracePeriod:      15 * time.Second,

		TsplTemperatureS:  adaptive.TsplTemperatureS,
		TsplHumidityS:     adaptive.TsplHumidityS,
		TsplCO2S:          adaptive.TsplCO2S,
		DegradeStaleAfter: 5 * time.Minute,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Step <= 0 {
		return fmt.Errorf("core: Step must be positive, got %v", c.Step)
	}
	if c.RadiantTankL <= 0 || c.VentTankL <= 0 {
		return fmt.Errorf("core: tank volumes must be > 0")
	}
	if c.RadiantCapacityW <= 0 || c.VentCapacityW <= 0 {
		return fmt.Errorf("core: chiller capacities must be > 0")
	}
	if c.PanelUAWater <= 0 || c.PanelHAAir <= 0 {
		return fmt.Errorf("core: panel conductances must be > 0")
	}
	if c.PumpMaxFlowLpm <= 0 {
		return fmt.Errorf("core: PumpMaxFlowLpm must be > 0")
	}
	if c.TxMode != wsn.ModeAdaptive && c.TxMode != wsn.ModeFixed {
		return fmt.Errorf("core: invalid TxMode %d", c.TxMode)
	}
	if c.Net.LossFloor < 0 || c.Net.LossFloor > 1 {
		return fmt.Errorf("core: Net.LossFloor must be in [0, 1], got %v", c.Net.LossFloor)
	}
	if c.TsplTemperatureS <= 0 || c.TsplHumidityS <= 0 || c.TsplCO2S <= 0 {
		return fmt.Errorf("core: sensor sampling periods must be > 0 (temp=%v hum=%v co2=%v)",
			c.TsplTemperatureS, c.TsplHumidityS, c.TsplCO2S)
	}
	if c.DegradeStaleAfter <= 0 {
		return fmt.Errorf("core: DegradeStaleAfter must be > 0, got %v", c.DegradeStaleAfter)
	}
	if err := c.Thermal.Validate(); err != nil {
		return err
	}
	if err := c.Radiant.Validate(); err != nil {
		return err
	}
	if err := c.Vent.Validate(); err != nil {
		return err
	}
	if err := c.Net.Validate(); err != nil {
		return err
	}
	return c.Chiller.Validate()
}
