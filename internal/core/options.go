package core

import (
	"time"

	"bubblezero/internal/fault"
	"bubblezero/internal/psychro"
	"bubblezero/internal/thermal"
	"bubblezero/internal/trace"
	"bubblezero/internal/wsn"
)

// Option configures NewSystem beyond the Config literal. Config-editing
// options are applied in argument order before validation, so later
// options win; structural options (fault plan, recorder) attach extra
// machinery to the assembled system.
type Option func(*sysOpts)

type sysOpts struct {
	cfgEdits []func(*Config)
	plan     *fault.Plan
	rec      *trace.Recorder

	// Per-instance overrides that deliberately do NOT edit the Config:
	// fleet members built from one Shared handle differ only in these, so
	// keeping them out of cfgEdits lets every member alias the handle's
	// single validated Config instead of carrying a private copy.
	seed    *uint64
	outdoor *psychro.State

	bank    *thermal.RoomBank
	bankRow int
}

func (o *sysOpts) edit(fn func(*Config)) {
	o.cfgEdits = append(o.cfgEdits, fn)
}

// WithFaultPlan schedules the plan's events on the system timeline and
// arms the stale-reading degradation watchdog. A nil or empty plan is a
// no-op: the run stays bit-identical to a plain NewSystem(cfg).
func WithFaultPlan(p *fault.Plan) Option {
	return func(o *sysOpts) { o.plan = p }
}

// WithRecorder substitutes a caller-owned trace recorder for the one the
// system would otherwise create, so several runs can be compared through
// one recorder namespace or a pre-configured recorder reused.
func WithRecorder(r *trace.Recorder) Option {
	return func(o *sysOpts) { o.rec = r }
}

// WithSeed overrides the seed driving every stochastic element, without
// editing (or copying) the shared Config.
func WithSeed(seed uint64) Option {
	return func(o *sysOpts) { o.seed = &seed }
}

// WithTxMode overrides Config.TxMode (adaptive vs fixed transmission).
func WithTxMode(mode wsn.TxMode) Option {
	return func(o *sysOpts) { o.edit(func(c *Config) { c.TxMode = mode }) }
}

// WithSensorNoise enables or disables datasheet sensor noise.
func WithSensorNoise(on bool) Option {
	return func(o *sysOpts) { o.edit(func(c *Config) { c.SensorNoise = on }) }
}

// WithLossFloor overrides the radio medium's packet-loss floor.
func WithLossFloor(p float64) Option {
	return func(o *sysOpts) { o.edit(func(c *Config) { c.Net.LossFloor = p }) }
}

// WithVentCapacityW overrides the 8 °C tank's chiller capacity.
func WithVentCapacityW(w float64) Option {
	return func(o *sysOpts) { o.edit(func(c *Config) { c.VentCapacityW = w }) }
}

// WithOutdoor overrides the outdoor boundary condition (dry-bulb and dew
// point, °C) the thermal model is initialised from. Like WithSeed it is a
// per-instance override, not a Config edit, so fleet members with varied
// climates still share one Config.
func WithOutdoor(tC, dewC float64) Option {
	return func(o *sysOpts) {
		st := psychro.NewStateDewPoint(tC, dewC, 0)
		o.outdoor = &st
	}
}

// WithZoneBank builds the system's thermal room as a view into row of a
// shard-level RoomBank instead of private heap storage. The room runs the
// identical kernel either way (results are bit-identical to an unbanked
// build); what the bank buys a fleet is contiguous zone state, so a shard
// can take over every building's physics (System.TakeOverRoom) and stream
// one fused RoomBank.StepAll pass per tick. A per-instance override like
// WithSeed: fleet members sharing one Config bind disjoint bank rows.
func WithZoneBank(bank *thermal.RoomBank, row int) Option {
	return func(o *sysOpts) { o.bank, o.bankRow = bank, row }
}

// WithTracePeriod overrides the recorder sampling period (0 disables
// tracing).
func WithTracePeriod(d time.Duration) Option {
	return func(o *sysOpts) { o.edit(func(c *Config) { c.TracePeriod = d }) }
}

// WithDegradeStaleAfter overrides how long a consumed input may go
// without a fresh broadcast before the watchdog degrades it.
func WithDegradeStaleAfter(d time.Duration) Option {
	return func(o *sysOpts) { o.edit(func(c *Config) { c.DegradeStaleAfter = d }) }
}

// WithConfigEdit applies an arbitrary Config mutation — the escape hatch
// for fields without a dedicated option.
func WithConfigEdit(fn func(*Config)) Option {
	return func(o *sysOpts) { o.edit(fn) }
}
