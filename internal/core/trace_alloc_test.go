package core

import (
	"context"
	"testing"
	"time"
)

// TestRecordTraceZeroAlloc pins the trace hot path: once the series
// handles are open and capacity is reserved, recording a tick performs no
// allocations — no name formatting, no map lookups, no slice growth.
func TestRecordTraceZeroAlloc(t *testing.T) {
	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A short run populates the COP accumulators so both conditional
	// series record, covering every branch of the hot path.
	if err := sys.Run(context.Background(), 10*time.Minute); err != nil {
		t.Fatal(err)
	}

	const runs = 1000
	for _, name := range sys.Recorder().Names() {
		sys.Recorder().Series(name).Grow(runs + 2) // +warmup call headroom
	}
	now := sys.Now()
	allocs := testing.AllocsPerRun(runs, func() {
		now = now.Add(time.Second)
		sys.recordTrace(now)
	})
	if allocs != 0 {
		t.Errorf("recordTrace allocates %.2f/op, want 0", allocs)
	}
}

// TestTraceSeriesOpenedUpFront verifies the handles cover exactly the
// series the recorder traces, in the historical name order.
func TestTraceSeriesOpenedUpFront(t *testing.T) {
	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"temp.subsp1", "dew.subsp1", "co2.subsp1",
		"temp.subsp2", "dew.subsp2", "co2.subsp2",
		"temp.subsp3", "dew.subsp3", "co2.subsp3",
		"temp.subsp4", "dew.subsp4", "co2.subsp4",
		"temp.outdoor", "dew.outdoor", "temp.avg", "dew.avg",
		"tank.radiant", "tank.vent", "cop.total", "cop.radiant", "cop.vent",
	}
	got := sys.Recorder().Names()
	if len(got) != len(want) {
		t.Fatalf("recorder has %d series, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("series[%d] = %q, want %q", i, got[i], want[i])
		}
	}

	// Tracing disabled: the recorder stays empty, as before.
	cfg := DefaultConfig()
	cfg.TracePeriod = 0
	quiet, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(quiet.Recorder().Names()); n != 0 {
		t.Errorf("untraced system opened %d series, want 0", n)
	}
}
