package core

import (
	"math"
	"math/rand/v2"

	"bubblezero/internal/adaptive"
	"bubblezero/internal/psychro"
	"bubblezero/internal/radiant"
	"bubblezero/internal/sensor"
	"bubblezero/internal/thermal"
	"bubblezero/internal/vent"
	"bubblezero/internal/wsn"
)

// panelDewIndex extracts N from a "bt-paneldew-N" node id. Parsed by
// hand: fmt.Sscanf on this per-message path builds a scan state and
// reads the string rune-by-rune, which shows up in tick-kernel profiles.
func panelDewIndex(id string) (int, bool) {
	const prefix = "bt-paneldew-"
	if len(id) <= len(prefix) || id[:len(prefix)] != prefix {
		return 0, false
	}
	n := 0
	for i := len(prefix); i < len(id); i++ {
		c := id[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// buildTopology instantiates the deployment's nodes and the Figure 8
// supply/consumption wiring:
//
//   - battery devices: per subspace one temperature (T_spl = 3 s), one
//     humidity (2 s), and one CO₂ (4 s) sensor mote; per ceiling panel one
//     under-panel dew mote; per airbox one outlet SHT75 mote,
//   - AC boards: Control-C-1 (publishes T_supp), Control-C-2 ×2 (publish
//     pump/flow state), Control-V-1 (publishes the dew target),
//     Control-V-2 ×4 (fan commands), Control-V-3 ×4 (flap commands),
//   - subscriptions: the radiant module consumes temperature and
//     under-panel dew; the ventilation module consumes temperature,
//     humidity, CO₂, airbox dew, and Control-C-1's supply temperature.
func (s *System) buildTopology() error {
	// noise streams are named by the precomputed topoNames table (full
	// "sensor.…" strings), so construction formats no per-instance names.
	noise := func(stream string) *rand.Rand {
		return s.engine.RNG().Stream(stream)
	}
	maybe := func(m sensor.Model, truth float64, rng *rand.Rand) float64 {
		if !s.cfg.SensorNoise {
			return m.Read(truth, nil)
		}
		return m.Read(truth, rng)
	}

	addSensor := func(id wsn.NodeID, typ wsn.MsgType, zone int, tspl float64, read func() float64) error {
		node, err := s.net.AddNode(id, wsn.PowerBattery)
		if err != nil {
			return err
		}
		var sched *adaptive.Scheduler
		if s.cfg.TxMode == wsn.ModeAdaptive {
			cfg := adaptive.DefaultConfig(tspl)
			cfg.TrackExact = s.cfg.TrackExact
			sched, err = adaptive.NewScheduler(cfg)
			if err != nil {
				return err
			}
		}
		dev, err := wsn.NewSensorDevice(wsn.SensorDeviceConfig{
			Node: node, Network: s.net, Type: typ, Zone: zone,
			Read: read, Mode: s.cfg.TxMode, TsplS: tspl, Scheduler: sched,
		})
		if err != nil {
			return err
		}
		s.devices = append(s.devices, dev)
		return nil
	}

	// Per-subspace room sensors (bt-devices, §IV-B sampling periods).
	for z := 0; z < thermal.NumZones; z++ {
		z := z
		names := &topoNames.zones[z]
		tempModel := sensor.SHT75Temperature().WithRandomBias(noise(names.biasTemp))
		tempRNG := noise(names.temp)
		if err := addSensor(names.tempID, wsn.MsgTemperature, z,
			s.cfg.TsplTemperatureS, func() float64 {
				return maybe(tempModel, s.room.Zone(thermal.ZoneID(z)).T, tempRNG)
			}); err != nil {
			return err
		}
		rhModel := sensor.SHT75Humidity().WithRandomBias(noise(names.biasRH))
		rhRNG := noise(names.rh)
		if err := addSensor(names.humID, wsn.MsgHumidity, z,
			s.cfg.TsplHumidityS, func() float64 {
				return maybe(rhModel, s.room.ZoneRH(thermal.ZoneID(z)), rhRNG)
			}); err != nil {
			return err
		}
		co2Model := sensor.CO2NDIR().WithRandomBias(noise(names.biasCO2))
		co2RNG := noise(names.co2)
		if err := addSensor(names.co2ID, wsn.MsgCO2, z,
			s.cfg.TsplCO2S, func() float64 {
				return maybe(co2Model, s.room.Zone(thermal.ZoneID(z)).CO2PPM, co2RNG)
			}); err != nil {
			return err
		}
	}

	// Under-panel condensation sentinels: Control-C-1 computes T_cdew
	// from six SHT pairs below each panel; we model the fused result as
	// the wetter of the panel's two subspaces plus sensor noise.
	for p := 0; p < radiant.NumPanels; p++ {
		p := p
		names := &topoNames.panels[p]
		tModel := sensor.SHT75Temperature().WithRandomBias(noise(names.biasT))
		rhModel := sensor.SHT75Humidity().WithRandomBias(noise(names.biasRH))
		rng := noise(names.rng)
		if err := addSensor(names.dewID, wsn.MsgPanelDew, -1,
			s.cfg.TsplHumidityS, func() float64 {
				zs := radiant.PanelZones(p)
				dew := -100.0
				for _, z := range zs {
					zid := thermal.ZoneID(z)
					tr := maybe(tModel, s.room.Zone(zid).T, rng)
					rr := maybe(rhModel, s.room.ZoneRH(zid), rng)
					if d := psychro.DewPoint(tr, rr); d > dew {
						dew = d
					}
				}
				return dew
			}); err != nil {
			return err
		}
	}

	// Airbox outlet SHT75 motes.
	for b := 0; b < vent.NumBoxes; b++ {
		b := b
		names := &topoNames.boxes[b]
		tModel := sensor.SHT75Temperature().WithRandomBias(noise(names.biasT))
		rhModel := sensor.SHT75Humidity().WithRandomBias(noise(names.biasRH))
		rng := noise(names.rng)
		// The outlet state is often bit-identical between samples — a
		// parked box passes the (constant) outdoor state through, and a
		// running coil's first-order lag settles onto a float fixed point —
		// so the RH conversion is cached by exact state. NaN keys never
		// compare equal, so the first sample always computes.
		rhT, rhW, rhP := math.NaN(), math.NaN(), math.NaN()
		var rhOut float64
		if err := addSensor(names.dewID, wsn.MsgAirboxDew, b,
			s.cfg.TsplHumidityS, func() float64 {
				out := s.ventMod.Box(b).Outlet()
				//bzlint:allow floateq exact-key memo; outlet state is bit-identical between samples at steady state
				if out.T != rhT || out.W != rhW || out.P != rhP {
					rhT, rhW, rhP = out.T, out.W, out.P
					rhOut = out.RH()
				}
				tr := maybe(tModel, out.T, rng)
				rr := maybe(rhModel, rhOut, rng)
				return psychro.DewPoint(tr, rr)
			}); err != nil {
			return err
		}
	}

	// AC control boards publishing their processed data (Figure 8).
	addAC := func(id wsn.NodeID, typ wsn.MsgType, zone int, period float64, read func() float64) error {
		node, err := s.net.AddNode(id, wsn.PowerAC)
		if err != nil {
			return err
		}
		pb, err := wsn.NewPeriodicBroadcaster(node, s.net, typ, zone, period, read)
		if err != nil {
			return err
		}
		s.broadcasters = append(s.broadcasters, pb)
		return nil
	}
	suppModel := sensor.ADT7410().WithRandomBias(noise("sensor.bias-tsupp"))
	suppRNG := noise("sensor.tsupp")
	if err := addAC("ac-control-c1", wsn.MsgSupplyTemp, -1, 5, func() float64 {
		return maybe(suppModel, s.radiantTank.Temp(), suppRNG)
	}); err != nil {
		return err
	}
	for p := 0; p < radiant.NumPanels; p++ {
		p := p
		if err := addAC(topoNames.panels[p].c2ID, wsn.MsgWaterFlow, -1, 2, func() float64 {
			return s.radiantMod.Loop(p).FMix()
		}); err != nil {
			return err
		}
	}
	if err := addAC("ac-control-v1", wsn.MsgDewTarget, -1, 5, func() float64 {
		return s.ventMod.TaTarget()
	}); err != nil {
		return err
	}
	for b := 0; b < vent.NumBoxes; b++ {
		b := b
		names := &topoNames.boxes[b]
		if err := addAC(names.v2ID, wsn.MsgFanSpeed, b, 2, func() float64 {
			return s.ventMod.Box(b).FanFlow()
		}); err != nil {
			return err
		}
		if err := addAC(names.v3ID, wsn.MsgFlapCmd, b, 2, func() float64 {
			if s.ventMod.Box(b).FlapOpen() {
				return 1
			}
			return 0
		}); err != nil {
			return err
		}
	}

	// Consumer-side filtering (the type-addressed broadcast bus). When a
	// fault plan armed the degradation watchdog, every consumed delivery
	// also refreshes its staleness clock; fault-free systems keep the
	// original callbacks so the hot path carries no extra branch.
	if w := s.watch; w != nil {
		s.net.Subscribe(func(m wsn.Message) {
			s.radiantMod.ObserveZoneTemp(m.Zone, m.Value)
			s.ventMod.ObserveZoneTemp(m.Zone, m.Value)
			w.noteZoneTemp(m.Zone, m.Value)
		}, wsn.MsgTemperature)
		s.net.Subscribe(func(m wsn.Message) {
			s.ventMod.ObserveZoneRH(m.Zone, m.Value)
			w.noteZoneRH(m.Zone)
		}, wsn.MsgHumidity)
		s.net.Subscribe(func(m wsn.Message) {
			s.ventMod.ObserveZoneCO2(m.Zone, m.Value)
		}, wsn.MsgCO2)
		s.net.Subscribe(func(m wsn.Message) {
			if p, ok := panelDewIndex(string(m.Source)); ok {
				s.radiantMod.ObservePanelDew(p-1, m.Value)
				w.notePanelDew(p - 1)
			}
		}, wsn.MsgPanelDew)
		s.net.Subscribe(func(m wsn.Message) {
			s.ventMod.ObserveSupplyTemp(m.Value)
			w.noteSupplyTemp()
		}, wsn.MsgSupplyTemp)
		s.net.Subscribe(func(m wsn.Message) {
			s.ventMod.ObserveAirboxDew(m.Zone, m.Value)
			w.noteBoxDew(m.Zone)
		}, wsn.MsgAirboxDew)
		return nil
	}
	s.net.Subscribe(func(m wsn.Message) {
		s.radiantMod.ObserveZoneTemp(m.Zone, m.Value)
		s.ventMod.ObserveZoneTemp(m.Zone, m.Value)
	}, wsn.MsgTemperature)
	s.net.Subscribe(func(m wsn.Message) {
		s.ventMod.ObserveZoneRH(m.Zone, m.Value)
	}, wsn.MsgHumidity)
	s.net.Subscribe(func(m wsn.Message) {
		s.ventMod.ObserveZoneCO2(m.Zone, m.Value)
	}, wsn.MsgCO2)
	s.net.Subscribe(func(m wsn.Message) {
		// Panel index is encoded in the source node name bt-paneldew-N.
		if p, ok := panelDewIndex(string(m.Source)); ok {
			s.radiantMod.ObservePanelDew(p-1, m.Value)
		}
	}, wsn.MsgPanelDew)
	s.net.Subscribe(func(m wsn.Message) {
		s.ventMod.ObserveSupplyTemp(m.Value)
	}, wsn.MsgSupplyTemp)
	s.net.Subscribe(func(m wsn.Message) {
		s.ventMod.ObserveAirboxDew(m.Zone, m.Value)
	}, wsn.MsgAirboxDew)

	return nil
}
