package core

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"bubblezero/internal/thermal"
	"bubblezero/internal/wsn"
)

func newSystem(t *testing.T, opts ...Option) *System {
	t.Helper()
	s, err := NewSystem(DefaultConfig(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func run(t *testing.T, s *System, d time.Duration) {
	t.Helper()
	if err := s.Run(context.Background(), d); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero step", func(c *Config) { c.Step = 0 }},
		{"zero radiant tank", func(c *Config) { c.RadiantTankL = 0 }},
		{"zero vent tank", func(c *Config) { c.VentTankL = 0 }},
		{"zero radiant capacity", func(c *Config) { c.RadiantCapacityW = 0 }},
		{"zero vent capacity", func(c *Config) { c.VentCapacityW = 0 }},
		{"zero panel UA", func(c *Config) { c.PanelUAWater = 0 }},
		{"zero panel HA", func(c *Config) { c.PanelHAAir = 0 }},
		{"zero pump flow", func(c *Config) { c.PumpMaxFlowLpm = 0 }},
		{"invalid tx mode", func(c *Config) { c.TxMode = 0 }},
		{"zero zone volume", func(c *Config) { c.Thermal.ZoneVolume = 0 }},
		{"zero fmix max", func(c *Config) { c.Radiant.FMixMax = 0 }},
		{"zero horizon", func(c *Config) { c.Vent.HorizonS = 0 }},
		{"zero airtime", func(c *Config) { c.Net.AirtimeS = 0 }},
		{"zero chiller eta", func(c *Config) { c.Chiller.Eta = 0 }},
		{"negative loss floor", func(c *Config) { c.Net.LossFloor = -0.1 }},
		{"loss floor above one", func(c *Config) { c.Net.LossFloor = 1.5 }},
		{"zero temp cadence", func(c *Config) { c.TsplTemperatureS = 0 }},
		{"negative temp cadence", func(c *Config) { c.TsplTemperatureS = -3 }},
		{"zero humidity cadence", func(c *Config) { c.TsplHumidityS = 0 }},
		{"negative humidity cadence", func(c *Config) { c.TsplHumidityS = -2 }},
		{"zero co2 cadence", func(c *Config) { c.TsplCO2S = 0 }},
		{"negative co2 cadence", func(c *Config) { c.TsplCO2S = -4 }},
		{"zero stale budget", func(c *Config) { c.DegradeStaleAfter = 0 }},
		{"negative stale budget", func(c *Config) { c.DegradeStaleAfter = -time.Minute }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate accepted the bad config")
			}
			if _, err := NewSystem(cfg); err == nil {
				t.Error("NewSystem accepted the bad config")
			}
		})
	}
}

func TestTopologyNodeCount(t *testing.T) {
	s := newSystem(t)
	// 18 battery motes (4 temp + 4 humidity + 4 CO2 + 2 panel-dew +
	// 4 airbox-dew) + 12 AC boards (C-1, C-2 ×2, V-1, V-2 ×4, V-3 ×4).
	if got := s.Network().NodeCount(); got != 30 {
		t.Errorf("node count = %d, want 30", got)
	}
	if got := len(s.Devices()); got != 18 {
		t.Errorf("battery devices = %d, want 18", got)
	}
	for _, d := range s.Devices() {
		if d.Node().Battery() == nil {
			t.Errorf("device %s has no battery", d.Node().ID())
		}
	}
	if s.Device("bt-temp-1") == nil {
		t.Error("bt-temp-1 not found")
	}
	if s.Device("nope") != nil {
		t.Error("unknown device lookup should return nil")
	}
}

// Device is an O(1) lookup over the map built in NewSystem; it must agree
// with a linear scan of Devices() for every registered device, and
// Devices() must keep its registration order (callers iterate it for
// stable per-device reporting).
func TestDeviceLookupConsistentWithDevices(t *testing.T) {
	s := newSystem(t)
	devs := s.Devices()
	for i, d := range devs {
		id := d.Node().ID()
		if got := s.Device(id); got != d {
			t.Errorf("Device(%q) = %p, want Devices()[%d] = %p", id, got, i, d)
		}
	}
	again := s.Devices()
	if len(again) != len(devs) {
		t.Fatalf("Devices() length changed: %d -> %d", len(devs), len(again))
	}
	for i := range devs {
		if devs[i] != again[i] {
			t.Errorf("Devices() order unstable at %d: %s vs %s",
				i, devs[i].Node().ID(), again[i].Node().ID())
		}
	}
}

// TestFig10PullDown reproduces the headline Figure 10 behaviour: from the
// tropical initial condition (28.9 °C, 27.4 °C dew) the system approaches
// the 25 °C / 18 °C-dew target in roughly 30 minutes and holds it.
func TestFig10PullDown(t *testing.T) {
	s := newSystem(t)
	run(t, s, 40*time.Minute)
	sn := s.Snapshot()
	if sn.AvgTempC > 25.3 {
		t.Errorf("temperature after 40 min = %.2f, want <= 25.3 (paper: 30 min)", sn.AvgTempC)
	}
	if sn.AvgDewC > 18.3 {
		t.Errorf("dew point after 40 min = %.2f, want <= 18.3 (paper: 30 min)", sn.AvgDewC)
	}
	// All four subspaces individually converge (Figure 10 plots each).
	for z := 0; z < thermal.NumZones; z++ {
		if sn.ZoneTempC[z] > 25.8 {
			t.Errorf("subspace-%d temp = %.2f, want near target", z+1, sn.ZoneTempC[z])
		}
		if sn.ZoneDewC[z] > 18.8 {
			t.Errorf("subspace-%d dew = %.2f, want near target", z+1, sn.ZoneDewC[z])
		}
	}

	// Equilibrium hold for another 30 minutes.
	run(t, s, 30*time.Minute)
	sn = s.Snapshot()
	if math.Abs(sn.AvgTempC-25) > 0.5 {
		t.Errorf("equilibrium temp = %.2f, want 25±0.5", sn.AvgTempC)
	}
	if math.Abs(sn.AvgDewC-18) > 0.6 {
		t.Errorf("equilibrium dew = %.2f, want 18±0.6", sn.AvgDewC)
	}
}

// TestNoCondensation asserts the control decomposition's core safety
// property: despite 18 °C water under a 27.4 °C-dew startup, the panel
// surfaces never drop below the local dew point for more than a fleeting
// transient.
func TestNoCondensation(t *testing.T) {
	s := newSystem(t)
	run(t, s, 90*time.Minute)
	if cs := s.CondensationSeconds(); cs > 5 {
		t.Errorf("condensation for %.0f s, want ~0 (paper: condensation is prevented)", cs)
	}
}

// TestDoorDisturbanceShort reproduces Figure 10's phase two, first event:
// a 15 s door opening perturbs subspaces 1–2 (≈0.6 °C dew blip) and the
// system recovers quickly.
func TestDoorDisturbanceShort(t *testing.T) {
	s := newSystem(t)
	run(t, s, 65*time.Minute) // settle
	base := s.Snapshot()
	eventAt := s.Now()
	s.Room().OpenDoor(15 * time.Second)
	run(t, s, 3*time.Minute)
	// The blip peaks within the first minute; read it from the trace.
	peak1 := s.Recorder().Series("dew.subsp1").StatsBetween(eventAt, eventAt.Add(3*time.Minute)).Max
	peak4 := s.Recorder().Series("dew.subsp4").StatsBetween(eventAt, eventAt.Add(3*time.Minute)).Max
	rise1 := peak1 - base.ZoneDewC[0]
	rise4 := peak4 - base.ZoneDewC[3]
	if rise1 < 0.15 {
		t.Errorf("subspace-1 dew rise = %.2f, want a visible blip (paper ≈0.6)", rise1)
	}
	if rise1 > 2.0 {
		t.Errorf("subspace-1 dew rise = %.2f, implausibly large for 15 s", rise1)
	}
	if rise1 <= rise4 {
		t.Errorf("door zone rise (%.2f) should exceed far zone rise (%.2f)", rise1, rise4)
	}
	// Recovery within ~12 minutes.
	run(t, s, 12*time.Minute)
	rec := s.Snapshot()
	if rec.AvgDewC > 18.5 {
		t.Errorf("dew after recovery = %.2f, want back near 18", rec.AvgDewC)
	}
}

// TestDoorDisturbanceLong reproduces Figure 10's phase two, second event:
// a 2-minute opening perturbs all subspaces and the system re-converges
// within roughly 15 minutes.
func TestDoorDisturbanceLong(t *testing.T) {
	s := newSystem(t)
	run(t, s, 65*time.Minute)
	s.Room().OpenDoor(2 * time.Minute)
	run(t, s, 4*time.Minute)
	peak := s.Snapshot()
	if peak.AvgDewC < 18.2 {
		t.Errorf("avg dew after 2-min door = %.2f, want visible excursion", peak.AvgDewC)
	}
	run(t, s, 15*time.Minute)
	rec := s.Snapshot()
	if math.Abs(rec.AvgTempC-25) > 0.6 {
		t.Errorf("temp 15 min after event = %.2f, want recovered (paper: 15 min)", rec.AvgTempC)
	}
	if rec.AvgDewC > 18.6 {
		t.Errorf("dew 15 min after event = %.2f, want recovered", rec.AvgDewC)
	}
}

// TestFig11COPBand verifies the energy-efficiency result: steady-state
// COPs near the paper's Bubble-C 4.52 / Bubble-V 2.82 / BubbleZERO 4.07,
// i.e. a >30 % improvement over the conventional 2.8.
func TestFig11COPBand(t *testing.T) {
	s := newSystem(t)
	run(t, s, time.Hour)
	s.ResetCOP()
	run(t, s, time.Hour)
	radiant := s.COPRadiant().Value()
	vent := s.COPVent().Value()
	total := s.COPTotal().Value()
	if radiant < 4.0 || radiant > 5.0 {
		t.Errorf("Bubble-C COP = %.2f, want ≈4.5", radiant)
	}
	if vent < 2.4 || vent > 3.3 {
		t.Errorf("Bubble-V COP = %.2f, want ≈2.8", vent)
	}
	if total < 3.6 || total > 4.6 {
		t.Errorf("BubbleZERO COP = %.2f, want ≈4.07", total)
	}
	if radiant <= vent {
		t.Error("low-exergy radiant loop must beat the 8 °C ventilation loop")
	}
	if imp := (total - 2.8) / 2.8 * 100; imp < 28 {
		t.Errorf("improvement over AirCon = %.1f%%, want >28%% (paper: up to 45.5%%)", imp)
	}
}

func TestNetworkSupportsControl(t *testing.T) {
	s := newSystem(t)
	run(t, s, 30*time.Minute)
	st := s.Network().Stats()
	if st.Sent == 0 {
		t.Fatal("no packets sent")
	}
	if rate := st.DeliveryRate(); rate < 0.95 {
		t.Errorf("delivery rate = %.3f, want > 0.95", rate)
	}
	if st.AvgDelayS() <= 0 || st.AvgDelayS() > 0.1 {
		t.Errorf("avg delay = %.4f s, want small positive", st.AvgDelayS())
	}
}

func TestAdaptiveDevicesBackOffAtEquilibrium(t *testing.T) {
	s := newSystem(t)
	run(t, s, 2*time.Hour)
	// After an hour of stability, at least half of the bt-devices should
	// have grown their transmission periods beyond the sampling period.
	backedOff := 0
	for _, d := range s.Devices() {
		if d.TsndS() > d.Scheduler().Config().TsplS {
			backedOff++
		}
	}
	if backedOff < len(s.Devices())/2 {
		t.Errorf("only %d/%d devices backed off at equilibrium", backedOff, len(s.Devices()))
	}
}

func TestAdaptiveSavesEnergyVsFixed(t *testing.T) {
	// Compare the marginal battery drain over two steady-state hours: the
	// pull-down transient legitimately keeps adaptive devices at short
	// periods, so the saving materialises once the room settles.
	used := func(mode wsn.TxMode) float64 {
		s := newSystem(t, WithTxMode(mode))
		run(t, s, time.Hour)
		var before float64
		for _, d := range s.Devices() {
			before += d.Node().Battery().UsedJ()
		}
		run(t, s, 2*time.Hour)
		var after float64
		for _, d := range s.Devices() {
			after += d.Node().Battery().UsedJ()
		}
		return after - before
	}
	fixed := used(wsn.ModeFixed)
	adaptive := used(wsn.ModeAdaptive)
	if adaptive >= fixed*0.45 {
		t.Errorf("steady-state drain: adaptive %.1f J vs fixed %.1f J, want >2x saving", adaptive, fixed)
	}
}

func TestOccupancyCO2Response(t *testing.T) {
	s := newSystem(t)
	run(t, s, 50*time.Minute)
	// Four people walk into subspace-2.
	s.Room().SetOccupants(1, 4)
	run(t, s, 40*time.Minute)
	sn := s.Snapshot()
	// CO2 must be elevated but controlled: above outdoor, at or around
	// the 800 ppm target rather than running away.
	if sn.ZoneCO2PPM[1] < 450 {
		t.Errorf("occupied zone CO2 = %.0f, want elevated", sn.ZoneCO2PPM[1])
	}
	if sn.ZoneCO2PPM[1] > 1100 {
		t.Errorf("occupied zone CO2 = %.0f, want ventilation to cap near 800", sn.ZoneCO2PPM[1])
	}
}

func TestDeterministicUnderSameSeed(t *testing.T) {
	a := newSystem(t)
	b := newSystem(t)
	run(t, a, 20*time.Minute)
	run(t, b, 20*time.Minute)
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.AvgTempC != sb.AvgTempC || sa.AvgDewC != sb.AvgDewC {
		t.Errorf("same seed diverged: %+v vs %+v", sa, sb)
	}
	if sa.NetStats != sb.NetStats {
		t.Errorf("network stats diverged: %+v vs %+v", sa.NetStats, sb.NetStats)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := newSystem(t)
	b := newSystem(t, WithSeed(99))
	run(t, a, 10*time.Minute)
	run(t, b, 10*time.Minute)
	if a.Snapshot().AvgTempC == b.Snapshot().AvgTempC &&
		a.Snapshot().NetStats == b.Snapshot().NetStats {
		t.Error("different seeds produced identical runs")
	}
}

func TestRecorderCapturesSeries(t *testing.T) {
	s := newSystem(t)
	run(t, s, 10*time.Minute)
	rec := s.Recorder()
	for _, name := range []string{"temp.subsp1", "dew.subsp4", "temp.avg", "dew.avg", "cop.total"} {
		if !rec.Has(name) {
			t.Errorf("recorder missing series %q", name)
		}
	}
	if got := rec.Series("temp.avg").Len(); got < 30 {
		t.Errorf("temp.avg has %d points over 10 min at 15 s, want ≈40", got)
	}
}

func TestScheduledDisturbances(t *testing.T) {
	s := newSystem(t)
	start := s.Now()
	s.OpenDoorAt(start.Add(5*time.Minute), 15*time.Second)
	s.OpenWindowAt(start.Add(6*time.Minute), 15*time.Second)
	s.SetOccupantsAt(start.Add(7*time.Minute), 2, 3)
	run(t, s, 8*time.Minute)
	if s.Room().DoorOpenings() != 1 {
		t.Errorf("door openings = %d, want 1", s.Room().DoorOpenings())
	}
	if s.Room().Occupants(2) != 3 {
		t.Errorf("occupants = %d, want 3", s.Room().Occupants(2))
	}
}

func TestSnapshotString(t *testing.T) {
	s := newSystem(t)
	run(t, s, time.Minute)
	if str := s.Snapshot().String(); len(str) == 0 {
		t.Error("empty snapshot string")
	}
}

func TestSnapshotComfortIndices(t *testing.T) {
	s := newSystem(t)
	run(t, s, 70*time.Minute)
	sn := s.Snapshot()
	// At the paper's setpoint with cooled ceiling panels the room should
	// score inside the ISO 7730 comfort envelope.
	if math.Abs(sn.PMV) > 0.7 {
		t.Errorf("PMV at target = %.2f, want within ±0.7", sn.PMV)
	}
	if sn.PPD <= 0 || sn.PPD > 20 {
		t.Errorf("PPD = %.1f%%, want a small positive percentage", sn.PPD)
	}
	// Before any cooling, the tropical start is uncomfortable.
	hot, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	run(t, hot, time.Minute)
	if hotSn := hot.Snapshot(); hotSn.PMV <= sn.PMV {
		t.Errorf("tropical start PMV %.2f should exceed conditioned PMV %.2f",
			hotSn.PMV, sn.PMV)
	}
}

func TestAttachSniffer(t *testing.T) {
	s := newSystem(t)
	var log strings.Builder
	sniffer, err := s.AttachSniffer(&log)
	if err != nil {
		t.Fatal(err)
	}
	run(t, s, 5*time.Minute)
	if sniffer.Total() == 0 {
		t.Fatal("sniffer saw no packets")
	}
	if sniffer.TypeCount(wsn.MsgTemperature) == 0 {
		t.Error("no temperature packets observed")
	}
	if sniffer.Err() != nil {
		t.Errorf("log error: %v", sniffer.Err())
	}
	lines := strings.Count(log.String(), "\n")
	if lines != sniffer.Total()+1 {
		t.Errorf("log rows %d != packets+header %d", lines, sniffer.Total()+1)
	}
	// The observed inter-arrival of the supply-temp type equals
	// Control-C-1's 5 s broadcast period.
	mean, _, n := sniffer.InterArrival(wsn.MsgSupplyTemp)
	if n == 0 || math.Abs(mean-5) > 0.5 {
		t.Errorf("supply-temp inter-arrival = %.2f s over %d gaps, want ≈5", mean, n)
	}
}
