package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"bubblezero/internal/comfort"
	"bubblezero/internal/energy"
	"bubblezero/internal/fault"
	"bubblezero/internal/hydraulic"
	"bubblezero/internal/psychro"
	"bubblezero/internal/radiant"
	"bubblezero/internal/sim"
	"bubblezero/internal/thermal"
	"bubblezero/internal/trace"
	"bubblezero/internal/vent"
	"bubblezero/internal/wsn"
)

// System is the assembled BubbleZERO deployment.
type System struct {
	// cfg points either at a Shared handle's single validated Config
	// (aliased by every fleet member built from it) or at this instance's
	// private copy (when an option edited it). It is read-only either way.
	cfg *Config

	engine  *sim.Engine
	room    *thermal.Room
	roomReg *sim.Registration
	net     *wsn.Network

	radiantTank *hydraulic.Tank
	ventTank    *hydraulic.Tank
	radiantMod  *radiant.Module
	ventMod     *vent.Module

	devices      []*wsn.SensorDevice
	deviceByID   map[wsn.NodeID]*wsn.SensorDevice
	deviceReg    map[wsn.NodeID]*sim.Registration
	broadcasters []*wsn.PeriodicBroadcaster
	rec          *trace.Recorder
	ts           traceSeries

	plan  *fault.Plan
	watch *watchdog

	copRadiant energy.COP
	copVent    energy.COP

	condensationS float64 // cumulative seconds any panel surface was wet
	sinceTrace    float64

	// wSurfMemo caches HumidityRatioFromDewPoint(TSurface) per panel,
	// keyed on the exact surface temperature. The hydraulic loops settle
	// onto exact float fixed points at steady state, so after the pull-down
	// transient the key matches tick after tick; on any miss the value is
	// recomputed with the same pure function and arguments, keeping the
	// condensation check bit-identical. Keys start NaN, which never
	// matches.
	wSurfMemo [radiant.NumPanels]struct{ tSurf, w float64 }
}

// traceSeries holds the recorder handles for every series the glue traces,
// opened once at construction so the per-tick recording path performs no
// name formatting and no map lookups (and therefore no allocations).
type traceSeries struct {
	zoneTemp [thermal.NumZones]*trace.Series
	zoneDew  [thermal.NumZones]*trace.Series
	zoneCO2  [thermal.NumZones]*trace.Series

	outdoorTemp, outdoorDew *trace.Series
	avgTemp, avgDew         *trace.Series
	tankRadiant, tankVent   *trace.Series

	copTotal, copRadiant, copVent *trace.Series
}

// openTraceSeries opens every traced series on rec. The order matches the
// historical first-record order so Recorder.Names() stays stable.
func openTraceSeries(rec *trace.Recorder) traceSeries {
	var ts traceSeries
	for z := 0; z < thermal.NumZones; z++ {
		ts.zoneTemp[z] = rec.Series(fmt.Sprintf("temp.subsp%d", z+1))
		ts.zoneDew[z] = rec.Series(fmt.Sprintf("dew.subsp%d", z+1))
		ts.zoneCO2[z] = rec.Series(fmt.Sprintf("co2.subsp%d", z+1))
	}
	ts.outdoorTemp = rec.Series("temp.outdoor")
	ts.outdoorDew = rec.Series("dew.outdoor")
	ts.avgTemp = rec.Series("temp.avg")
	ts.avgDew = rec.Series("dew.avg")
	ts.tankRadiant = rec.Series("tank.radiant")
	ts.tankVent = rec.Series("tank.vent")
	ts.copTotal = rec.Series("cop.total")
	ts.copRadiant = rec.Series("cop.radiant")
	ts.copVent = rec.Series("cop.vent")
	return ts
}

// NewSystem assembles and wires the full deployment. Options are applied
// in order: config-editing options (WithLossFloor, WithTracePeriod, …)
// mutate cfg before validation, WithSeed/WithOutdoor override the seed
// and climate boundary per instance, WithRecorder substitutes the trace
// recorder, and WithFaultPlan schedules fault injections on the timeline
// and arms the degradation watchdog. Fleets assembling many Systems from
// one configuration should validate it once via NewShared and build
// through Shared.NewSystem instead.
func NewSystem(cfg Config, opts ...Option) (*System, error) {
	var o sysOpts
	for _, opt := range opts {
		opt(&o)
	}
	for _, edit := range o.cfgEdits {
		edit(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return assemble(&cfg, &o)
}

// assemble wires a System over the validated configuration at cfg, which
// the System retains and treats as read-only (it may be a Shared handle's
// Config, aliased by thousands of sibling instances).
func assemble(cfg *Config, o *sysOpts) (*System, error) {
	if err := o.plan.Validate(); err != nil {
		return nil, err
	}
	clock, err := sim.NewClock(cfg.Start, cfg.Step)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if o.seed != nil {
		seed = *o.seed
	}
	engine := sim.NewEngine(clock, seed)

	thermalCfg := cfg.Thermal
	if o.outdoor != nil {
		thermalCfg.Outdoor = *o.outdoor
	}
	var room *thermal.Room
	if o.bank != nil {
		// Banked build: the room's state lives in the shard bank's row.
		// Same kernel, same arithmetic — only the storage moves.
		room, err = o.bank.NewRoomAtOutdoor(o.bankRow, thermalCfg)
	} else {
		room, err = thermal.NewRoomAtOutdoor(thermalCfg)
	}
	if err != nil {
		return nil, err
	}

	radiantTank, err := hydraulic.NewTank(cfg.RadiantTankL, cfg.RadiantSetpointC, cfg.Chiller, cfg.RadiantCapacityW)
	if err != nil {
		return nil, err
	}
	ventTank, err := hydraulic.NewTank(cfg.VentTankL, cfg.VentSetpointC, cfg.Chiller, cfg.VentCapacityW)
	if err != nil {
		return nil, err
	}
	// The laboratory's tanks are well insulated; standing losses are a
	// fraction of a watt per kelvin.
	radiantTank.LossUA = 0.5
	ventTank.LossUA = 0.5

	var loops [radiant.NumPanels]*hydraulic.MixingLoop
	panel := hydraulic.Panel{UAWater: cfg.PanelUAWater, HAAir: cfg.PanelHAAir}
	for p := range loops {
		supply := &hydraulic.Pump{MaxFlowLpm: cfg.PumpMaxFlowLpm, MaxPowerW: cfg.PumpMaxPowerW, StandbyW: 0.5}
		recycle := &hydraulic.Pump{MaxFlowLpm: cfg.PumpMaxFlowLpm, MaxPowerW: cfg.PumpMaxPowerW, StandbyW: 0.5}
		loop, err := hydraulic.NewMixingLoop(radiantTank, supply, recycle, panel)
		if err != nil {
			return nil, err
		}
		loops[p] = loop
	}

	panelAir := func(p int) float64 {
		zs := radiant.PanelZones(p)
		return (room.Zone(thermal.ZoneID(zs[0])).T + room.Zone(thermal.ZoneID(zs[1])).T) / 2
	}
	radiantMod, err := radiant.New(cfg.Radiant, radiantTank, loops, panelAir)
	if err != nil {
		return nil, err
	}

	ventMod, err := vent.New(cfg.Vent, ventTank, room.Outdoor, cfg.Thermal.OutdoorCO2PPM)
	if err != nil {
		return nil, err
	}

	net, err := wsn.NewNetwork(cfg.Net, engine.RNG().Stream("wsn"))
	if err != nil {
		return nil, err
	}

	rec := o.rec
	if rec == nil {
		rec = trace.NewRecorder()
	}
	s := &System{
		cfg:         cfg,
		engine:      engine,
		room:        room,
		net:         net,
		radiantTank: radiantTank,
		ventTank:    ventTank,
		radiantMod:  radiantMod,
		ventMod:     ventMod,
		rec:         rec,
		plan:        o.plan,
	}
	if !o.plan.Empty() {
		// Armed before buildTopology so the subscription callbacks see a
		// non-nil watchdog and report freshness to it.
		s.watch = newWatchdog(s)
	}
	for p := range s.wSurfMemo {
		s.wSurfMemo[p].tSurf = math.NaN()
	}
	if cfg.TracePeriod > 0 {
		s.ts = openTraceSeries(s.rec)
	}

	if err := s.buildTopology(); err != nil {
		return nil, err
	}
	s.deviceByID = make(map[wsn.NodeID]*wsn.SensorDevice, len(s.devices))
	for _, d := range s.devices {
		s.deviceByID[d.Node().ID()] = d
	}

	// Component order is the data-flow order: sensor devices sample and
	// enqueue, the network delivers to the control boards, the watchdog
	// (when armed) judges freshness, the modules actuate their
	// hydraulics, and the glue pushes the plant forward.
	//
	// Scheduling is cadence-aware: devices and broadcasters implement
	// sim.Cadenced, so Register places them on the engine's due-wheel and
	// they are stepped only on sampling/broadcast ticks; the network runs
	// on demand, woken exactly on ticks where some producer transmitted
	// (its Step was a no-op on the other ticks). The controllers, glue,
	// and room integrate over dt every tick and stay on the always path.
	//
	// Devices register faultable so a fault plan can suspend and resume
	// them (KindMoteOffline); their registrations are indexed by node id.
	s.deviceReg = make(map[wsn.NodeID]*sim.Registration, len(s.devices))
	for _, d := range s.devices {
		s.deviceReg[d.Node().ID()] = engine.Register(d, sim.WithFaultable())
	}
	for _, b := range s.broadcasters {
		engine.Register(b)
	}
	net.SetWake(engine.Register(net, sim.WithOnDemand()).Wake)
	if s.watch != nil {
		engine.Register(sim.ComponentFunc{ID: "core.watchdog", Fn: s.watch.step})
	}
	engine.Register(radiantMod)
	engine.Register(ventMod)
	engine.Register(sim.ComponentFunc{ID: "core.glue", Fn: s.glue})
	// The room is registered LAST: within a tick everything else (sensors,
	// network, controllers, glue) runs first, then the physics advances.
	// TakeOverRoom relies on this — a fleet stepping the room externally
	// after Engine.StepTick reproduces the same within-tick position.
	s.roomReg = engine.Register(room)

	if err := s.plan.Apply(engine.Timeline(), cfg.Start, s.faultTarget()); err != nil {
		return nil, err
	}
	return s, nil
}

// FaultPlan returns the fault plan the system was armed with (nil when
// running fault-free).
func (s *System) FaultPlan() *fault.Plan { return s.plan }

// ApplyFaults schedules the plan's events on the engine timeline with
// offsets relative to base — the live-injection entry point. For
// construction-time plans use WithFaultPlan instead, which also arms the
// degradation watchdog; a live-injected plan does not (arming changes the
// engine's registration order, which must stay a pure function of the
// construction inputs for snapshot restore to rebuild it).
//
//bzlint:mutsetter fleet.Apply
func (s *System) ApplyFaults(base time.Time, plan *fault.Plan) error {
	return plan.Apply(s.engine.Timeline(), base, s.faultTarget())
}

// Engine returns the simulation engine (for scheduling scenario events).
func (s *System) Engine() *sim.Engine { return s.engine }

// TakeOverRoom removes the thermal room from the engine's per-tick
// delivery and hands stepping responsibility to the caller — the fleet's
// physics-takeover hook. The room is the last component in the engine's
// step order, so a caller that runs Engine.StepTick and then steps the
// room (directly or via RoomBank.StepAll) executes the exact sequence the
// engine would have: sensors → network → controllers → glue → physics.
//
//bzlint:mutsetter fleet.Apply
func (s *System) TakeOverRoom() { s.roomReg.TakeOver() }

// Room returns the thermal model.
func (s *System) Room() *thermal.Room { return s.room }

// Network returns the wireless network.
func (s *System) Network() *wsn.Network { return s.net }

// Radiant returns the radiant cooling module.
func (s *System) Radiant() *radiant.Module { return s.radiantMod }

// Vent returns the distributed ventilation module.
func (s *System) Vent() *vent.Module { return s.ventMod }

// RadiantTank returns the 18 °C tank.
func (s *System) RadiantTank() *hydraulic.Tank { return s.radiantTank }

// VentTank returns the 8 °C tank.
func (s *System) VentTank() *hydraulic.Tank { return s.ventTank }

// Devices returns all battery sensor devices (for per-device hooks).
func (s *System) Devices() []*wsn.SensorDevice {
	out := make([]*wsn.SensorDevice, len(s.devices))
	copy(out, s.devices)
	return out
}

// Device returns the sensor device with the given node ID, or nil. The
// lookup is an O(1) map access over the index built in NewSystem.
func (s *System) Device(id wsn.NodeID) *wsn.SensorDevice {
	return s.deviceByID[id]
}

// Recorder returns the trace recorder.
func (s *System) Recorder() *trace.Recorder { return s.rec }

// AttachSniffer installs a packet sniffer on the network, timestamped by
// the simulation clock; w (optional) receives the CSV packet log — the
// paper's analysis methodology.
func (s *System) AttachSniffer(w io.Writer) (*wsn.Sniffer, error) {
	sniffer, err := wsn.NewSniffer(s.engine.Clock().Now, w)
	if err != nil {
		return nil, err
	}
	sniffer.Attach(s.net)
	return sniffer, nil
}

// COPRadiant returns the radiant module's accumulated COP (Bubble-C).
func (s *System) COPRadiant() energy.COP { return s.copRadiant }

// COPVent returns the ventilation module's accumulated COP (Bubble-V).
func (s *System) COPVent() energy.COP { return s.copVent }

// COPTotal returns the whole-system COP (the paper's "BubbleZERO" bar).
func (s *System) COPTotal() energy.COP {
	return energy.Combine(s.copRadiant, s.copVent)
}

// ResetCOP clears the COP accumulators, e.g. after the boot transient.
func (s *System) ResetCOP() {
	s.copRadiant = energy.COP{}
	s.copVent = energy.COP{}
}

// CondensationSeconds returns how long any panel surface has been below
// the local dew point — the failure mode the control decomposition must
// prevent.
func (s *System) CondensationSeconds() float64 { return s.condensationS }

// Run advances the system by d of simulated time.
func (s *System) Run(ctx context.Context, d time.Duration) error {
	return s.engine.RunFor(ctx, d)
}

// Now returns the current simulated time.
func (s *System) Now() time.Time { return s.engine.Clock().Now() }

// OpenDoorAt schedules a door-opening disturbance. The setter runs
// inside a timeline closure at a deterministic simulated instant, which
// is the standalone-system analogue of a journaled event.
//
//bzlint:mutroute fleet.Apply timeline-scheduled: fires at a deterministic simulated instant, standalone systems have no journal
func (s *System) OpenDoorAt(at time.Time, d time.Duration) {
	s.engine.Timeline().At(at, "door-open", func(*sim.Env) { s.room.OpenDoor(d) })
}

// OpenWindowAt schedules a window-opening disturbance.
func (s *System) OpenWindowAt(at time.Time, d time.Duration) {
	s.engine.Timeline().At(at, "window-open", func(*sim.Env) { s.room.OpenWindow(d) })
}

// SetOccupantsAt schedules an occupancy change in a subspace. The
// setter runs inside a timeline closure at a deterministic simulated
// instant, which is the standalone-system analogue of a journaled event.
//
//bzlint:mutroute fleet.Apply timeline-scheduled: fires at a deterministic simulated instant, standalone systems have no journal
func (s *System) SetOccupantsAt(at time.Time, zone thermal.ZoneID, n int) {
	s.engine.Timeline().At(at, "occupancy", func(*sim.Env) { s.room.SetOccupants(zone, n) })
}

// Snapshot is a point-in-time view of the system for examples and logs.
type Snapshot struct {
	Time       time.Time
	ZoneTempC  [thermal.NumZones]float64
	ZoneDewC   [thermal.NumZones]float64
	ZoneCO2PPM [thermal.NumZones]float64
	AvgTempC   float64
	AvgDewC    float64
	// PMV and PPD are the Fanger comfort indices for the average room
	// state, with the mean radiant temperature pulled down by the cooled
	// ceiling panels.
	PMV, PPD      float64
	RadiantTankC  float64
	VentTankC     float64
	COPRadiant    float64
	COPVent       float64
	COPTotal      float64
	NetStats      wsn.Stats
	CondensationS float64
}

// Snapshot captures the current state.
func (s *System) Snapshot() Snapshot {
	snap := Snapshot{
		Time:          s.Now(),
		AvgTempC:      s.room.AverageT(),
		AvgDewC:       s.room.AverageDewPoint(),
		RadiantTankC:  s.radiantTank.Temp(),
		VentTankC:     s.ventTank.Temp(),
		COPRadiant:    s.copRadiant.Value(),
		COPVent:       s.copVent.Value(),
		COPTotal:      s.COPTotal().Value(),
		NetStats:      s.net.Stats(),
		CondensationS: s.condensationS,
	}
	for z := 0; z < thermal.NumZones; z++ {
		zid := thermal.ZoneID(z)
		zone := s.room.Zone(zid)
		snap.ZoneTempC[z] = zone.T
		snap.ZoneDewC[z] = s.room.ZoneDewPoint(zid)
		snap.ZoneCO2PPM[z] = zone.CO2PPM
	}

	// Comfort: the ceiling panels occupy roughly the ceiling's view
	// factor of the occupant, pulling the mean radiant temperature below
	// the air temperature.
	var surfSum float64
	for p := 0; p < radiant.NumPanels; p++ {
		surfSum += s.radiantMod.Loop(p).Result().TSurface
	}
	meanSurf := surfSum / radiant.NumPanels
	const ceilingViewFactor = 0.25
	tr := ceilingViewFactor*meanSurf + (1-ceilingViewFactor)*snap.AvgTempC
	rh := psychro.RHFromHumidityRatio(snap.AvgTempC, s.room.AverageW(), psychro.AtmPressure)
	if pmv, ppd, err := comfort.Assess(comfort.DefaultOffice(snap.AvgTempC, tr, rh)); err == nil {
		snap.PMV = pmv
		snap.PPD = ppd
	}
	return snap
}

// String renders the snapshot compactly.
func (sn Snapshot) String() string {
	return fmt.Sprintf("%s avg %.2f°C dew %.2f°C COP %.2f (C %.2f / V %.2f)",
		sn.Time.Format("15:04:05"), sn.AvgTempC, sn.AvgDewC,
		sn.COPTotal, sn.COPRadiant, sn.COPVent)
}

// glue applies actuator outputs to the plant, steps the tanks, detects
// condensation, accumulates COP, and records traces.
//
//bzlint:hotpath
func (s *System) glue(env *sim.Env) {
	dt := env.Dt()
	outdoor := s.room.Outdoor()

	// Radiant panels → per-zone extraction, with condensation physics.
	var radiantRemovedW float64
	condensing := false
	for p := 0; p < radiant.NumPanels; p++ {
		res := s.radiantMod.Loop(p).Result()
		radiantRemovedW += res.QW
		// The saturation humidity ratio at the panel surface depends only
		// on the (per-panel) surface temperature, so it is computed once
		// per panel, not once per zone — and cached against the exact
		// surface temperature, which sits on a float fixed point once the
		// loop reaches steady state.
		//bzlint:allow floateq exact-key memo; surface temp sits on a float fixed point at steady state
		if m := &s.wSurfMemo[p]; m.tSurf != res.TSurface {
			m.tSurf = res.TSurface
			m.w = psychro.HumidityRatioFromDewPoint(res.TSurface, psychro.AtmPressure)
		}
		wSurf := s.wSurfMemo[p].w
		zs := radiant.PanelZones(p)
		for _, z := range zs {
			zid := thermal.ZoneID(z)
			s.room.SetPanelExtraction(zid, res.QW/2)
			// Condensation: if the panel surface sits below the zone dew
			// point, vapour condenses at a rate set by the air-side film.
			zone := s.room.Zone(zid)
			if zone.W > wSurf && res.TSurface < s.room.ZoneDewPoint(zid) {
				condensing = true
				rate := s.cfg.PanelHAAir / 2 / 1006 * (zone.W - wSurf)
				s.room.SetCondensation(zid, rate)
			} else {
				s.room.SetCondensation(zid, 0)
			}
		}
	}
	if condensing {
		s.condensationS += dt
	}

	// Ventilation boundary conditions, installed through the batch entry so
	// one call refreshes the whole building's supply terms.
	var vents [thermal.NumZones]thermal.VentInput
	for z := 0; z < thermal.NumZones; z++ {
		flow, supply, co2 := s.ventMod.VentInputFor(z)
		vents[z] = thermal.VentInput{VolFlow: flow, Supply: supply, SupplyCO2PPM: co2}
	}
	s.room.SetVentBatch(&vents)

	// Tanks. The room average is computed once per tick and threaded
	// through both tank steps (the COP path below needs no air state).
	avgT := s.room.AverageT()
	s.radiantTank.Step(dt, avgT, outdoor.T)
	s.ventTank.Step(dt, avgT, outdoor.T)

	// COP accounting at the paper's measurement points.
	s.copRadiant.Add(radiantRemovedW,
		s.radiantTank.ChillerElectricalW()+s.radiantMod.PumpPowerW(), dt)
	// The paper's COP measurement boundary covers chillers and pumps; the
	// small DC fans are not behind a power meter (§V: "we also install
	// power meters at major energy consuming devices, including chillers
	// and pumps").
	s.copVent.Add(s.ventMod.CoilLoadW(),
		s.ventTank.ChillerElectricalW()+s.ventMod.CoilPumpPowerW(), dt)

	// Tracing.
	if s.cfg.TracePeriod > 0 {
		s.sinceTrace += dt
		if s.sinceTrace >= s.cfg.TracePeriod.Seconds() {
			s.sinceTrace = 0
			s.recordTrace(env.Now())
		}
	}
}

// recordTrace appends one sample to every traced series through the
// handles opened at construction, reading the room's per-tick derived
// caches (the same exact values the glue and sensors consumed). The path
// is allocation-free per tick apart from amortized slice growth inside
// Series.Append.
func (s *System) recordTrace(now time.Time) {
	for z := 0; z < thermal.NumZones; z++ {
		zid := thermal.ZoneID(z)
		zone := s.room.Zone(zid)
		_ = s.ts.zoneTemp[z].Append(now, zone.T)
		_ = s.ts.zoneDew[z].Append(now, s.room.ZoneDewPoint(zid))
		_ = s.ts.zoneCO2[z].Append(now, zone.CO2PPM)
	}
	_ = s.ts.outdoorTemp.Append(now, s.room.Outdoor().T)
	_ = s.ts.outdoorDew.Append(now, s.room.OutdoorDewPoint())
	_ = s.ts.avgTemp.Append(now, s.room.AverageT())
	_ = s.ts.avgDew.Append(now, s.room.AverageDewPoint())
	_ = s.ts.tankRadiant.Append(now, s.radiantTank.Temp())
	_ = s.ts.tankVent.Append(now, s.ventTank.Temp())
	_ = s.ts.copTotal.Append(now, s.COPTotal().Value())
	if v := s.copRadiant.Value(); !math.IsNaN(v) {
		_ = s.ts.copRadiant.Append(now, v)
	}
	if v := s.copVent.Value(); !math.IsNaN(v) {
		_ = s.ts.copVent.Append(now, v)
	}
}
