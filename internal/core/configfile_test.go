package core

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"bubblezero/internal/wsn"
)

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "config.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadConfigDefaultsWhenEmpty(t *testing.T) {
	cfg, err := LoadConfig(writeConfig(t, `{}`))
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig()
	if cfg.Seed != def.Seed || cfg.RadiantSetpointC != def.RadiantSetpointC {
		t.Errorf("empty config changed defaults: %+v", cfg)
	}
}

func TestLoadConfigOverlays(t *testing.T) {
	cfg, err := LoadConfig(writeConfig(t, `{
		"seed": 7,
		"txMode": "fixed",
		"stepSeconds": 2,
		"radiantSetpointC": 16,
		"ventSetpointC": 9,
		"tPrefC": 24,
		"rhPrefPct": 60,
		"co2TargetPPM": 900,
		"outdoorC": 31,
		"outdoorDewC": 26,
		"sensorNoise": false,
		"desync": false,
		"lossFloor": 0.02
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.TxMode != wsn.ModeFixed || cfg.Step != 2*time.Second {
		t.Errorf("basic fields not applied: %+v", cfg)
	}
	if cfg.RadiantSetpointC != 16 || cfg.VentSetpointC != 9 {
		t.Error("setpoints not applied")
	}
	if cfg.Radiant.TPref != 24 || cfg.Vent.TPref != 24 {
		t.Error("tPref must propagate to both modules")
	}
	if cfg.Vent.RHPref != 60 || cfg.Vent.CO2TargetPPM != 900 {
		t.Error("vent preferences not applied")
	}
	if cfg.Thermal.Outdoor.T != 31 {
		t.Errorf("outdoor T = %v", cfg.Thermal.Outdoor.T)
	}
	if dew := cfg.Thermal.Outdoor.DewPoint(); dew < 25.9 || dew > 26.1 {
		t.Errorf("outdoor dew = %v, want 26", dew)
	}
	if cfg.SensorNoise || cfg.Net.Desync {
		t.Error("booleans not applied")
	}
	if cfg.Net.LossFloor != 0.02 {
		t.Errorf("lossFloor = %v", cfg.Net.LossFloor)
	}
	// The overlaid config still builds a runnable system.
	if _, err := NewSystem(cfg); err != nil {
		t.Errorf("overlaid config rejected by NewSystem: %v", err)
	}
}

func TestLoadConfigRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `{"tyopMode": "fixed"}`,
		"bad txMode":     `{"txMode": "sometimes"}`,
		"bad step":       `{"stepSeconds": 0}`,
		"dew above bulb": `{"outdoorC": 25, "outdoorDewC": 29}`,
		"invalid after":  `{"lossFloor": 2}`,
		"not json":       `setpoint = 18`,
	}
	for name, body := range cases {
		if _, err := LoadConfig(writeConfig(t, body)); err == nil {
			t.Errorf("%s: accepted %q", name, body)
		}
	}
	if _, err := LoadConfig(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadConfigPartialOutdoor(t *testing.T) {
	// Only the dry bulb stated: the dew point keeps its default 27.4 °C.
	cfg, err := LoadConfig(writeConfig(t, `{"outdoorC": 30}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Thermal.Outdoor.T != 30 {
		t.Errorf("outdoor T = %v", cfg.Thermal.Outdoor.T)
	}
	if dew := cfg.Thermal.Outdoor.DewPoint(); dew < 27.3 || dew > 27.5 {
		t.Errorf("outdoor dew = %v, want default 27.4", dew)
	}
}
