package core

import (
	"bubblezero/internal/fault"
	"bubblezero/internal/sim"
	"bubblezero/internal/wsn"
)

// faultTarget adapts the assembled system onto the small injection
// surfaces a fault.Plan acts through.
func (s *System) faultTarget() fault.Target {
	return fault.Target{
		Sensor: func(node string) fault.SensorTarget {
			dev := s.deviceByID[wsn.NodeID(node)]
			if dev == nil {
				return nil
			}
			return &deviceFaultTarget{dev: dev, reg: s.deviceReg[wsn.NodeID(node)]}
		},
		Network: s.net, // *wsn.Network satisfies fault.NetworkTarget directly
		Plant:   plantFaultTarget{s},
	}
}

// deviceFaultTarget is one mote's fault surface: its sensor device for
// channel faults, its battery for energy faults, and its engine
// registration for whole-mote outages.
type deviceFaultTarget struct {
	dev *wsn.SensorDevice
	reg *sim.Registration
}

func (t *deviceFaultTarget) DepleteBattery() {
	b := t.dev.Node().Battery()
	b.Drain(b.RemainingJ())
}

func (t *deviceFaultTarget) ScaleBatteryRemaining(frac float64) {
	t.dev.Node().Battery().ScaleRemaining(frac)
}

func (t *deviceFaultTarget) SetStuck(on bool) { t.dev.SetStuck(on) }

func (t *deviceFaultTarget) SetDrift(ratePerS float64) { t.dev.SetDrift(ratePerS) }

func (t *deviceFaultTarget) SetOffline(on bool) {
	if on {
		t.reg.Suspend()
	} else {
		t.reg.Resume()
	}
}

// plantFaultTarget maps fault.Loop names onto the two tanks and their
// loops' pumps.
type plantFaultTarget struct{ s *System }

func (t plantFaultTarget) SetChillerTripped(loop fault.Loop, on bool) {
	if loop == fault.LoopRadiant {
		t.s.radiantTank.SetChillerTripped(on)
		return
	}
	t.s.ventTank.SetChillerTripped(on)
}

func (t plantFaultTarget) SetPumpDerate(loop fault.Loop, frac float64) {
	if loop == fault.LoopRadiant {
		t.s.radiantMod.DeratePumps(frac)
		return
	}
	t.s.ventMod.DeratePumps(frac)
}
