package core

import (
	"math"
	"testing"
	"time"

	"bubblezero/internal/fault"
	"bubblezero/internal/trace"
)

// Degradation-path tests: a fault plan arms the watchdog, faults make
// inputs stale, and the system must degrade along the documented state
// machine — neighbour fallback, integrator freeze, condensation safe
// mode — then recover once the fault clears.

func TestFaultPlanArmsWatchdog(t *testing.T) {
	plain := newSystem(t)
	if d := plain.Degradation(); d.Armed {
		t.Error("fault-free system reports an armed watchdog")
	}
	armed := newSystem(t, WithFaultPlan(fault.MustPlan(fault.Jam(time.Hour, time.Minute))))
	if d := armed.Degradation(); !d.Armed {
		t.Error("system with a fault plan did not arm the watchdog")
	}
	if armed.FaultPlan() == nil || len(armed.FaultPlan().Events()) != 1 {
		t.Error("FaultPlan accessor lost the plan")
	}
}

func TestEmptyFaultPlanMatchesFaultFree(t *testing.T) {
	a := newSystem(t)
	b := newSystem(t, WithFaultPlan(fault.MustPlan()))
	run(t, a, 30*time.Minute)
	run(t, b, 30*time.Minute)
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.AvgTempC != sb.AvgTempC || sa.AvgDewC != sb.AvgDewC || sa.NetStats != sb.NetStats {
		t.Errorf("empty plan diverged from fault-free run:\n%+v\n%+v", sa, sb)
	}
}

func TestMoteOfflineTriggersNeighbourFallback(t *testing.T) {
	// Subspace-2's temperature mote crashes for 30 minutes: after the
	// staleness budget its control input is substituted from the freshest
	// other zone, and the substitution clears once the mote is back.
	plan := fault.MustPlan(fault.MoteOffline(40*time.Minute, 30*time.Minute, "bt-temp-2"))
	s := newSystem(t, WithFaultPlan(plan))
	run(t, s, 40*time.Minute)
	if d := s.Degradation(); d.TempSubstituted[1] {
		t.Fatal("substitution active before the fault")
	}
	run(t, s, 10*time.Minute) // 10 min into the outage > 5 min budget
	if d := s.Degradation(); !d.TempSubstituted[1] {
		t.Error("zone-2 temperature not substituted during the outage")
	} else if d.TempSubstituted[0] || d.TempSubstituted[2] || d.TempSubstituted[3] {
		t.Errorf("healthy zones substituted: %+v", d.TempSubstituted)
	}
	run(t, s, 25*time.Minute) // outage ends at 70 min; 25 min of slack
	if d := s.Degradation(); d.TempSubstituted[1] {
		t.Error("substitution still active after the mote recovered")
	}
	// One zone coasting on a neighbour must not lose the room.
	sn := s.Snapshot()
	if math.Abs(sn.AvgTempC-25) > 0.6 {
		t.Errorf("avg temp = %.2f through a single-mote outage", sn.AvgTempC)
	}
	if s.CondensationSeconds() > 10 {
		t.Errorf("condensation %.0f s through a single-mote outage", s.CondensationSeconds())
	}
}

func TestJamFreezesIntegratorsAndRecovers(t *testing.T) {
	// A 15-minute jam silences every broadcast. All zone temperatures go
	// stale (integrator freeze), both condensation sentinels go stale
	// (safe mode), all airbox dew channels go stale (model fallback) —
	// and everything un-degrades after clearance.
	plan := fault.MustPlan(fault.Jam(45*time.Minute, 15*time.Minute))
	s := newSystem(t, WithFaultPlan(plan))
	run(t, s, 55*time.Minute)
	d := s.Degradation()
	if !d.IntegratorsFrozen {
		t.Error("integrators not frozen with every temperature stale")
	}
	for p, on := range d.SafeMode {
		if !on {
			t.Errorf("panel %d not in safe mode during the jam", p)
		}
	}
	for b, on := range d.BoxDewUntrusted {
		if !on {
			t.Errorf("box %d dew still trusted during the jam", b)
		}
	}
	if !d.SupplyStale {
		t.Error("supply temperature not flagged stale during the jam")
	}
	if s.Network().Stats().Jammed == 0 {
		t.Error("no frames accounted as jammed")
	}
	run(t, s, 25*time.Minute) // jam clears at 60 min
	d = s.Degradation()
	if d.IntegratorsFrozen || d.SafeMode[0] || d.SafeMode[1] || d.SupplyStale {
		t.Errorf("degradation persists after recovery: %+v", d)
	}
	for b, on := range d.BoxDewUntrusted {
		if on {
			t.Errorf("box %d dew still untrusted after recovery", b)
		}
	}
	if s.CondensationSeconds() > 30 {
		t.Errorf("condensation %.0f s across a 15-minute jam", s.CondensationSeconds())
	}
	if temp := s.Room().AverageT(); math.Abs(temp-25) > 0.8 {
		t.Errorf("avg temp = %.2f after jam recovery", temp)
	}
}

func TestBatteryDepletionEntersSafeMode(t *testing.T) {
	// Panel 1's condensation sentinel battery dies permanently: the
	// watchdog must put that panel (and only that panel) in safe mode,
	// and the ceiling must stay dry on the raised margin.
	plan := fault.MustPlan(fault.BatteryDeplete(40*time.Minute, "bt-paneldew-1"))
	s := newSystem(t, WithFaultPlan(plan))
	run(t, s, 50*time.Minute)
	d := s.Degradation()
	if !d.SafeMode[0] {
		t.Error("panel 1 not in safe mode after its sentinel died")
	}
	if d.SafeMode[1] {
		t.Error("panel 2 in safe mode with a healthy sentinel")
	}
	dev := s.Device("bt-paneldew-1")
	if !dev.Node().Battery().Depleted() {
		t.Error("sentinel battery not depleted")
	}
	run(t, s, 40*time.Minute)
	if s.CondensationSeconds() > 10 {
		t.Errorf("condensation %.0f s running on the safe-mode margin", s.CondensationSeconds())
	}
}

func TestChillerTripRaisesTankThenRecovers(t *testing.T) {
	plan := fault.MustPlan(fault.ChillerTrip(60*time.Minute, 10*time.Minute, fault.LoopRadiant))
	s := newSystem(t, WithFaultPlan(plan))
	run(t, s, 60*time.Minute)
	base := s.RadiantTank().Temp()
	run(t, s, 10*time.Minute)
	tripped := s.RadiantTank().Temp()
	if tripped < base+0.3 {
		t.Errorf("tank %.2f → %.2f across the trip, want a visible rise", base, tripped)
	}
	run(t, s, 30*time.Minute)
	if got := s.RadiantTank().Temp(); math.Abs(got-18) > 0.5 {
		t.Errorf("tank = %.2f 30 min after the trip cleared, want ≈18", got)
	}
	if s.CondensationSeconds() > 10 {
		t.Errorf("condensation %.0f s across a chiller trip", s.CondensationSeconds())
	}
}

func TestPumpDegradeStillConverges(t *testing.T) {
	// Worn impellers at 50% delivered flow from the start: pull-down is
	// slower but the room still reaches the band and stays dry.
	plan := fault.MustPlan(fault.PumpDegrade(0, 0, fault.LoopRadiant, 0.5))
	s := newSystem(t, WithFaultPlan(plan))
	run(t, s, 90*time.Minute)
	if temp := s.Room().AverageT(); temp > 26 {
		t.Errorf("avg temp = %.2f with half-flow radiant pumps", temp)
	}
	if s.CondensationSeconds() > 10 {
		t.Errorf("condensation %.0f s with degraded pumps", s.CondensationSeconds())
	}
}

func TestFaultRunDeterministicSameSeed(t *testing.T) {
	plan := fault.MustPlan(
		fault.BurstLoss(20*time.Minute, 10*time.Minute, 0.6),
		fault.SensorStuck(30*time.Minute, 20*time.Minute, "bt-temp-3"),
		fault.ChillerTrip(40*time.Minute, 10*time.Minute, fault.LoopVent),
	)
	mk := func() *System { return newSystem(t, WithFaultPlan(plan)) }
	a, b := mk(), mk()
	run(t, a, 65*time.Minute)
	run(t, b, 65*time.Minute)
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.AvgTempC != sb.AvgTempC || sa.AvgDewC != sb.AvgDewC {
		t.Errorf("same seed + same plan diverged: %+v vs %+v", sa, sb)
	}
	if sa.NetStats != sb.NetStats {
		t.Errorf("network stats diverged: %+v vs %+v", sa.NetStats, sb.NetStats)
	}
	if da, db := a.Degradation(), b.Degradation(); da != db {
		t.Errorf("degradation state diverged: %+v vs %+v", da, db)
	}
}

func TestWithRecorderSubstitutes(t *testing.T) {
	rec := trace.NewRecorder()
	s := newSystem(t, WithRecorder(rec))
	if s.Recorder() != rec {
		t.Fatal("WithRecorder ignored")
	}
	run(t, s, 5*time.Minute)
	if !rec.Has("temp.avg") {
		t.Error("caller-owned recorder captured nothing")
	}
}
