package core

import (
	"math"

	"bubblezero/internal/radiant"
	"bubblezero/internal/sim"
	"bubblezero/internal/thermal"
	"bubblezero/internal/vent"
)

// watchdog implements the graceful-degradation state machine for stale
// sensor inputs. It is only constructed (and only registered on the
// engine) when a fault plan arms it, so fault-free runs carry zero
// watchdog work and stay bit-identical to the pinned golden trace.
//
// Freshness is tracked per consumed input. Each input moves through
// three stages as its age grows:
//
//	fresh ──(age > staleAfter)──► degraded ──(fresh broadcast)──► fresh
//
// with a kind-specific degraded behaviour:
//
//   - zone temperature: substitute the freshest other zone's last value
//     into the radiant and ventilation observers (neighbour fallback);
//     if every zone is stale, freeze the radiant PID integrators so the
//     controllers coast on their last proportional point instead of
//     winding up against a frozen measurement.
//   - zone humidity / under-panel dew: the condensation guard cannot be
//     trusted, so the affected panel enters safe mode — its dew margin
//     is raised by Radiant.SafeModeRaiseK (T_mix rises, trading cooling
//     capacity for a guaranteed dry ceiling).
//   - airbox outlet dew: the box falls back to its physical coil model's
//     outlet dew and freezes the dew PID integrator.
//   - supply temperature: last-good-hold only; the 5 s AC broadcast is
//     redundant enough that substitution would add nothing.
//
// All transitions are pure functions of simulated time and the message
// stream, so degradation is as deterministic as the faults that cause
// it.
type watchdog struct {
	s      *System
	staleS float64

	// Last-fresh timestamps (simulated seconds since start) and last
	// values per consumed input. Construction counts as time 0 freshness:
	// every sensor broadcasts within its first adaptive period, far
	// inside any sane staleness budget.
	tempAtS   [thermal.NumZones]float64
	tempVal   [thermal.NumZones]float64
	rhAtS     [thermal.NumZones]float64
	panelAtS  [radiant.NumPanels]float64
	boxAtS    [vent.NumBoxes]float64
	supplyAtS float64

	// Current degraded flags, kept to act only on transitions.
	tempSub   [thermal.NumZones]bool
	frozen    bool
	safeMode  [radiant.NumPanels]bool
	boxStale  [vent.NumBoxes]bool
	supplyOld bool

	transitions int
}

func newWatchdog(s *System) *watchdog {
	return &watchdog{s: s, staleS: s.cfg.DegradeStaleAfter.Seconds()}
}

// Freshness notes, called from the network subscription callbacks. The
// timestamps come from the engine clock, which the network steps under.
func (w *watchdog) nowS() float64 {
	return float64(w.s.engine.Clock().Tick()) * w.s.cfg.Step.Seconds()
}

func (w *watchdog) noteZoneTemp(zone int, v float64) {
	if zone >= 0 && zone < thermal.NumZones {
		w.tempAtS[zone] = w.nowS()
		w.tempVal[zone] = v
	}
}

func (w *watchdog) noteZoneRH(zone int) {
	if zone >= 0 && zone < thermal.NumZones {
		w.rhAtS[zone] = w.nowS()
	}
}

func (w *watchdog) notePanelDew(panel int) {
	if panel >= 0 && panel < radiant.NumPanels {
		w.panelAtS[panel] = w.nowS()
	}
}

func (w *watchdog) noteBoxDew(box int) {
	if box >= 0 && box < vent.NumBoxes {
		w.boxAtS[box] = w.nowS()
	}
}

func (w *watchdog) noteSupplyTemp() { w.supplyAtS = w.nowS() }

// step runs once per tick, after the network delivery and before the
// control modules, so a degradation decision is made on this tick's
// freshest possible picture and the substituted observations are the
// ones the modules act on.
//
//bzlint:hotpath
func (w *watchdog) step(env *sim.Env) {
	now := env.Elapsed().Seconds()

	// Zone temperatures: neighbour fallback, then all-stale freeze.
	staleTemps := 0
	for z := 0; z < thermal.NumZones; z++ {
		stale := now-w.tempAtS[z] > w.staleS
		if stale {
			staleTemps++
		}
		if stale != w.tempSub[z] {
			w.tempSub[z] = stale
			w.transitions++
		}
		if !stale {
			continue
		}
		// Freshest other zone; ties break toward the lowest index so the
		// substitution source is deterministic.
		best, bestAt := -1, math.Inf(-1)
		for o := 0; o < thermal.NumZones; o++ {
			if o == z || now-w.tempAtS[o] > w.staleS {
				continue
			}
			if w.tempAtS[o] > bestAt {
				best, bestAt = o, w.tempAtS[o]
			}
		}
		if best >= 0 {
			w.s.radiantMod.ObserveZoneTemp(z, w.tempVal[best])
			w.s.ventMod.ObserveZoneTemp(z, w.tempVal[best])
		}
	}
	if frozen := staleTemps == thermal.NumZones; frozen != w.frozen {
		w.frozen = frozen
		w.transitions++
		w.s.radiantMod.SetIntegratorsFrozen(frozen)
	}

	// Condensation guard inputs: a panel's dew sentinel, or both room
	// humidity channels it fuses with, going dark puts it in safe mode.
	for p := 0; p < radiant.NumPanels; p++ {
		zs := radiant.PanelZones(p)
		rhDark := now-w.rhAtS[zs[0]] > w.staleS && now-w.rhAtS[zs[1]] > w.staleS
		unsafe := now-w.panelAtS[p] > w.staleS || rhDark
		if unsafe != w.safeMode[p] {
			w.safeMode[p] = unsafe
			w.transitions++
			w.s.radiantMod.SetSafeMode(p, unsafe)
		}
	}

	// Airbox dew: fall back to the coil model's outlet state.
	for b := 0; b < vent.NumBoxes; b++ {
		stale := now-w.boxAtS[b] > w.staleS
		if stale != w.boxStale[b] {
			w.boxStale[b] = stale
			w.transitions++
			w.s.ventMod.SetBoxDewUntrusted(b, stale)
		}
	}

	w.supplyOld = now-w.supplyAtS > w.staleS
}

// DegradationState is a snapshot of the watchdog's current decisions.
type DegradationState struct {
	// Armed reports whether a fault plan armed the watchdog at all.
	Armed bool
	// TempSubstituted marks zones running on a neighbour's temperature.
	TempSubstituted [thermal.NumZones]bool
	// IntegratorsFrozen is set while every zone temperature is stale.
	IntegratorsFrozen bool
	// SafeMode marks panels running with the raised condensation margin.
	SafeMode [radiant.NumPanels]bool
	// BoxDewUntrusted marks airboxes coasting on modelled outlet dew.
	BoxDewUntrusted [vent.NumBoxes]bool
	// SupplyStale reports a stale supply-temperature broadcast.
	SupplyStale bool
	// Transitions counts state-machine edges since the start of the run.
	Transitions int
}

// Degradation returns the watchdog's current state; the zero value (not
// armed) when the system runs without a fault plan.
func (s *System) Degradation() DegradationState {
	w := s.watch
	if w == nil {
		return DegradationState{}
	}
	return DegradationState{
		Armed:             true,
		TempSubstituted:   w.tempSub,
		IntegratorsFrozen: w.frozen,
		SafeMode:          w.safeMode,
		BoxDewUntrusted:   w.boxStale,
		SupplyStale:       w.supplyOld,
		Transitions:       w.transitions,
	}
}
