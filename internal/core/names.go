package core

import (
	"fmt"

	"bubblezero/internal/radiant"
	"bubblezero/internal/thermal"
	"bubblezero/internal/vent"
	"bubblezero/internal/wsn"
)

// Topology names are identical for every System — the deployment shape is
// fixed by the paper's Figure 8 — so the node ids and RNG stream names are
// formatted once per process instead of once per instance. At fleet scale
// this removes ~60 fmt.Sprintf/concat allocations from every building's
// construction (over a million for a 10k-building fleet) and lets all
// instances share one set of interned strings.
//
// The strings must stay byte-identical to the historical per-instance
// formatting: RNG stream names feed the seed derivation, so any drift
// here would silently change every stochastic draw and break the pinned
// golden traces.

type zoneNames struct {
	tempID, humID, co2ID wsn.NodeID
	// RNG stream names ("sensor." prefix included).
	biasTemp, temp, biasRH, rh, biasCO2, co2 string
}

type panelNames struct {
	dewID         wsn.NodeID
	biasT, biasRH string
	rng           string
	c2ID          wsn.NodeID
}

type boxNames struct {
	dewID         wsn.NodeID
	biasT, biasRH string
	rng           string
	v2ID, v3ID    wsn.NodeID
}

type topoNameTable struct {
	zones  [thermal.NumZones]zoneNames
	panels [radiant.NumPanels]panelNames
	boxes  [vent.NumBoxes]boxNames
}

var topoNames = buildTopoNames()

func buildTopoNames() topoNameTable {
	var t topoNameTable
	for z := range t.zones {
		t.zones[z] = zoneNames{
			tempID:   wsn.NodeID(fmt.Sprintf("bt-temp-%d", z+1)),
			humID:    wsn.NodeID(fmt.Sprintf("bt-hum-%d", z+1)),
			co2ID:    wsn.NodeID(fmt.Sprintf("bt-co2-%d", z+1)),
			biasTemp: fmt.Sprintf("sensor.bias-temp%d", z),
			temp:     fmt.Sprintf("sensor.temp%d", z),
			biasRH:   fmt.Sprintf("sensor.bias-rh%d", z),
			rh:       fmt.Sprintf("sensor.rh%d", z),
			biasCO2:  fmt.Sprintf("sensor.bias-co2%d", z),
			co2:      fmt.Sprintf("sensor.co2%d", z),
		}
	}
	for p := range t.panels {
		t.panels[p] = panelNames{
			dewID:  wsn.NodeID(fmt.Sprintf("bt-paneldew-%d", p+1)),
			biasT:  fmt.Sprintf("sensor.bias-pdt%d", p),
			biasRH: fmt.Sprintf("sensor.bias-pdrh%d", p),
			rng:    fmt.Sprintf("sensor.paneldew%d", p),
			c2ID:   wsn.NodeID(fmt.Sprintf("ac-control-c2-%d", p+1)),
		}
	}
	for b := range t.boxes {
		t.boxes[b] = boxNames{
			dewID:  wsn.NodeID(fmt.Sprintf("bt-boxdew-%d", b+1)),
			biasT:  fmt.Sprintf("sensor.bias-bdt%d", b),
			biasRH: fmt.Sprintf("sensor.bias-bdrh%d", b),
			rng:    fmt.Sprintf("sensor.boxdew%d", b),
			v2ID:   wsn.NodeID(fmt.Sprintf("ac-control-v2-%d", b+1)),
			v3ID:   wsn.NodeID(fmt.Sprintf("ac-control-v3-%d", b+1)),
		}
	}
	return t
}
