package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"bubblezero/internal/psychro"
	"bubblezero/internal/wsn"
)

// FileConfig is the JSON schema accepted by LoadConfig — the operator-
// facing subset of Config. Absent (null) fields keep their defaults, so a
// config file only states what it changes.
type FileConfig struct {
	// Seed selects the deterministic trial.
	Seed *uint64 `json:"seed"`
	// TxMode is "adaptive" (BT-ADPT) or "fixed".
	TxMode *string `json:"txMode"`
	// StepSeconds is the simulation tick length.
	StepSeconds *float64 `json:"stepSeconds"`

	// RadiantSetpointC / VentSetpointC are the tank water temperatures.
	RadiantSetpointC *float64 `json:"radiantSetpointC"`
	VentSetpointC    *float64 `json:"ventSetpointC"`

	// TPrefC / RHPrefPct are the occupant comfort preference.
	TPrefC    *float64 `json:"tPrefC"`
	RHPrefPct *float64 `json:"rhPrefPct"`
	// CO2TargetPPM is the air-quality target.
	CO2TargetPPM *float64 `json:"co2TargetPPM"`

	// OutdoorC / OutdoorDewC are the boundary condition.
	OutdoorC    *float64 `json:"outdoorC"`
	OutdoorDewC *float64 `json:"outdoorDewC"`

	// SensorNoise toggles datasheet sensor imperfection.
	SensorNoise *bool `json:"sensorNoise"`
	// Desync toggles the AC-device schedule desynchronisation.
	Desync *bool `json:"desync"`
	// LossFloor is the radio's independent per-packet loss probability.
	LossFloor *float64 `json:"lossFloor"`
}

// Apply overlays the file's stated fields onto cfg.
func (f FileConfig) Apply(cfg *Config) error {
	if f.Seed != nil {
		cfg.Seed = *f.Seed
	}
	if f.TxMode != nil {
		switch *f.TxMode {
		case "adaptive":
			cfg.TxMode = wsn.ModeAdaptive
		case "fixed":
			cfg.TxMode = wsn.ModeFixed
		default:
			return fmt.Errorf("core: txMode %q must be \"adaptive\" or \"fixed\"", *f.TxMode)
		}
	}
	if f.StepSeconds != nil {
		if *f.StepSeconds <= 0 {
			return fmt.Errorf("core: stepSeconds must be positive, got %v", *f.StepSeconds)
		}
		cfg.Step = time.Duration(*f.StepSeconds * float64(time.Second))
	}
	if f.RadiantSetpointC != nil {
		cfg.RadiantSetpointC = *f.RadiantSetpointC
	}
	if f.VentSetpointC != nil {
		cfg.VentSetpointC = *f.VentSetpointC
	}
	if f.TPrefC != nil {
		cfg.Radiant.TPref = *f.TPrefC
		cfg.Vent.TPref = *f.TPrefC
	}
	if f.RHPrefPct != nil {
		cfg.Vent.RHPref = *f.RHPrefPct
	}
	if f.CO2TargetPPM != nil {
		cfg.Vent.CO2TargetPPM = *f.CO2TargetPPM
	}
	if f.OutdoorC != nil || f.OutdoorDewC != nil {
		t := cfg.Thermal.Outdoor.T
		dew := cfg.Thermal.Outdoor.DewPoint()
		if f.OutdoorC != nil {
			t = *f.OutdoorC
		}
		if f.OutdoorDewC != nil {
			dew = *f.OutdoorDewC
		}
		if dew > t {
			return fmt.Errorf("core: outdoor dew point %v above dry bulb %v", dew, t)
		}
		cfg.Thermal.Outdoor = psychro.NewStateDewPoint(t, dew, 0)
	}
	if f.SensorNoise != nil {
		cfg.SensorNoise = *f.SensorNoise
	}
	if f.Desync != nil {
		cfg.Net.Desync = *f.Desync
	}
	if f.LossFloor != nil {
		cfg.Net.LossFloor = *f.LossFloor
	}
	return nil
}

// LoadConfig reads a FileConfig JSON file and overlays it on the defaults.
// Unknown fields are rejected so typos fail loudly.
func LoadConfig(path string) (Config, error) {
	cfg := DefaultConfig()
	raw, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("core: read config: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var fc FileConfig
	if err := dec.Decode(&fc); err != nil {
		return Config{}, fmt.Errorf("core: parse config %s: %w", path, err)
	}
	if err := fc.Apply(&cfg); err != nil {
		return Config{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("core: config %s: %w", path, err)
	}
	return cfg, nil
}
