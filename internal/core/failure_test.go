package core

import (
	"math"
	"testing"
	"time"

	"bubblezero/internal/psychro"
	"bubblezero/internal/sim"
	"bubblezero/internal/wsn"
)

// Failure-injection tests: the distributed design must degrade gracefully
// when the wireless network, the sensors, or the plant misbehave — the
// conditions a real deployment meets that the paper's §IV motivates
// (limited data rate, contention, battery exhaustion).

func TestSurvivesSevereRadioLoss(t *testing.T) {
	// One packet in three lost: control updates arrive late but the
	// system must still converge, just possibly slower.
	s := newSystem(t, WithLossFloor(0.33))
	run(t, s, 70*time.Minute)
	sn := s.Snapshot()
	if sn.AvgTempC > 25.8 {
		t.Errorf("temp = %.2f under 33%% loss, want convergence", sn.AvgTempC)
	}
	if sn.AvgDewC > 18.8 {
		t.Errorf("dew = %.2f under 33%% loss, want convergence", sn.AvgDewC)
	}
	if s.CondensationSeconds() > 10 {
		t.Errorf("condensation %.0f s under loss; safety margin must hold", s.CondensationSeconds())
	}
}

func TestPanelDewSensorDeathFailsSafe(t *testing.T) {
	// Kill both under-panel condensation sentinels mid-run: their last
	// reported dew stays in effect (stale but conservative at
	// equilibrium), and the condensation guard must keep holding.
	s := newSystem(t)
	run(t, s, 40*time.Minute)
	for _, id := range []string{"bt-paneldew-1", "bt-paneldew-2"} {
		dev := s.Device(wsn.NodeID(id))
		if dev == nil {
			t.Fatalf("device %s missing", id)
		}
		dev.Node().Battery().Drain(dev.Node().Battery().RemainingJ())
	}
	run(t, s, 40*time.Minute)
	if s.CondensationSeconds() > 10 {
		t.Errorf("condensation %.0f s after sentinel death", s.CondensationSeconds())
	}
	// The room should still be held (cooling continues on stale dew).
	if got := s.Room().AverageT(); got > 25.8 {
		t.Errorf("temp drifted to %.2f after sentinel death", got)
	}
}

func TestAllBatteryDeathStopsCoolingSafely(t *testing.T) {
	// Every battery mote dies: the controllers stop receiving data. The
	// radiant module keeps its last observations (stale) — the failure
	// mode is loss of responsiveness, not condensation.
	s := newSystem(t)
	run(t, s, 40*time.Minute)
	for _, dev := range s.Devices() {
		dev.Node().Battery().Drain(dev.Node().Battery().RemainingJ())
	}
	run(t, s, 30*time.Minute)
	if s.CondensationSeconds() > 10 {
		t.Errorf("condensation %.0f s after total sensor death", s.CondensationSeconds())
	}
}

func TestUndersizedVentChillerDegradesGracefully(t *testing.T) {
	// A ventilation chiller at a fraction of design capacity: the 8 °C
	// tank runs warm during pull-down, the coil outlet dew floor rises,
	// and dehumidification slows — but nothing diverges and the radiant
	// guard still prevents condensation.
	s := newSystem(t, WithVentCapacityW(800))
	run(t, s, 90*time.Minute)
	if s.CondensationSeconds() > 10 {
		t.Errorf("condensation %.0f s with undersized chiller", s.CondensationSeconds())
	}
	// With a third of the design capacity the 8 °C tank runs warm and the
	// dew floor rises: progress is slow but monotone (27.4 → ≈24.4 in
	// 90 min instead of 30 min to 18).
	if dew := s.Room().AverageDewPoint(); dew > 26 {
		t.Errorf("dew stuck at %.2f; even an undersized coil should make progress", dew)
	}
	if temp := s.Room().AverageT(); temp > 27.5 {
		t.Errorf("temp stuck at %.2f", temp)
	}
}

func TestHotterOutdoorStillConverges(t *testing.T) {
	// A 31 °C afternoon: ≈50 % more envelope load and a worse chiller
	// lift, still just inside the plant's ≈1.4 kW capacity envelope.
	s := newSystem(t, WithOutdoor(31, 27.5))
	run(t, s, 90*time.Minute)
	sn := s.Snapshot()
	if sn.AvgTempC > 26 {
		t.Errorf("temp = %.2f at 31 °C outdoor", sn.AvgTempC)
	}
	if sn.AvgDewC > 18.8 {
		t.Errorf("dew = %.2f at 31 °C outdoor", sn.AvgDewC)
	}
	// Efficiency drops with the bigger lift — the physics must show it.
	s2 := newSystem(t)
	run(t, s2, 90*time.Minute)
	if s.COPTotal().Value() >= s2.COPTotal().Value() {
		t.Errorf("hotter outdoor COP %.2f >= baseline %.2f; lift dependence missing",
			s.COPTotal().Value(), s2.COPTotal().Value())
	}
}

func TestDiurnalWeatherHold(t *testing.T) {
	// A compressed day: outdoor temperature swings 26→33 °C sinusoidally
	// while the dew point stays tropical. The system must hold the target
	// band throughout.
	s := newSystem(t)
	room := s.Room()
	s.Engine().Register(sim.ComponentFunc{ID: "weather", Fn: func(env *sim.Env) {
		h := env.Elapsed().Hours() * 8 // compress 24 h into 3 h
		// 28–31 °C swing: the upper bound of the plant's capacity
		// envelope (panels max out near 31 °C outdoor with UA = 220 W/K).
		tOut := 29.5 + 1.5*math.Sin(2*math.Pi*h/24)
		room.SetOutdoor(psychro.NewStateDewPoint(tOut, 26.5, 0))
	}})
	run(t, s, time.Hour) // pull-down
	worstT, worstDew := 0.0, 0.0
	for i := 0; i < 8; i++ {
		run(t, s, 15*time.Minute)
		sn := s.Snapshot()
		if d := math.Abs(sn.AvgTempC - 25); d > worstT {
			worstT = d
		}
		if d := math.Abs(sn.AvgDewC - 18); d > worstDew {
			worstDew = d
		}
	}
	if worstT > 0.8 {
		t.Errorf("worst temp deviation %.2f K across the diurnal sweep", worstT)
	}
	if worstDew > 1.0 {
		t.Errorf("worst dew deviation %.2f K across the diurnal sweep", worstDew)
	}
	if s.CondensationSeconds() > 10 {
		t.Errorf("condensation %.0f s across the diurnal sweep", s.CondensationSeconds())
	}
}

func TestSensorNoiseOffStillWorks(t *testing.T) {
	s := newSystem(t, WithSensorNoise(false))
	run(t, s, 45*time.Minute)
	if got := s.Room().AverageT(); got > 25.5 {
		t.Errorf("noiseless run temp = %.2f", got)
	}
}

func TestOccupantsPlusDoorCompound(t *testing.T) {
	// Compound disturbance: people in two zones plus a long door opening.
	s := newSystem(t)
	run(t, s, 60*time.Minute)
	s.Room().SetOccupants(0, 2)
	s.Room().SetOccupants(3, 2)
	s.Room().OpenDoor(90 * time.Second)
	run(t, s, 30*time.Minute)
	sn := s.Snapshot()
	if math.Abs(sn.AvgTempC-25) > 0.8 {
		t.Errorf("temp = %.2f under compound load", sn.AvgTempC)
	}
	if sn.AvgDewC > 19 {
		t.Errorf("dew = %.2f under compound load", sn.AvgDewC)
	}
	if s.CondensationSeconds() > 10 {
		t.Errorf("condensation %.0f s under compound load", s.CondensationSeconds())
	}
}
