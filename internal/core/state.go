package core

import (
	"fmt"
	"math"

	"bubblezero/internal/energy"
	"bubblezero/internal/hydraulic"
	"bubblezero/internal/radiant"
	"bubblezero/internal/sim"
	"bubblezero/internal/thermal"
	"bubblezero/internal/trace"
	"bubblezero/internal/vent"
	"bubblezero/internal/wsn"
)

// This file is the system side of the digital-twin snapshot surface (the
// engine side lives in internal/sim/state.go). Export only at a quiescent
// point between ticks — the same point restore resumes from — and restore
// only into a System assembled from the same configuration, seed, options,
// and fault plan: construction is deterministic, so the rebuilt topology
// matches position for position, and RestoreState patches the mutable
// residue on top.

// WatchdogState is the degradation watchdog's mutable state; present in a
// snapshot exactly when the exporting system was armed with a fault plan.
//
//bzlint:state ExportState RestoreState
type WatchdogState struct {
	TempAtS   [thermal.NumZones]float64
	TempVal   [thermal.NumZones]float64
	RHAtS     [thermal.NumZones]float64
	PanelAtS  [radiant.NumPanels]float64
	BoxAtS    [vent.NumBoxes]float64
	SupplyAtS float64

	TempSub   [thermal.NumZones]bool
	Frozen    bool
	SafeMode  [radiant.NumPanels]bool
	BoxStale  [vent.NumBoxes]bool
	SupplyOld bool

	Transitions int
}

// DeviceState pairs a sensor device's node ID with its exported state so
// restore can verify the rebuilt topology put the same device at the same
// position.
//
//bzlint:state ExportState RestoreState
type DeviceState struct {
	ID    wsn.NodeID
	State wsn.SensorDeviceState
}

// SystemState is a System's full mutable state: engine scheduling and RNG,
// plant physics, hydraulics, control modules, radio layer, accounting, and
// traces. The wSurfMemo condensation cache is deliberately absent — restore
// keys it to NaN and the next glue tick recomputes the same bits.
//
//bzlint:state ExportState RestoreState
type SystemState struct {
	Engine sim.EngineState

	Room        thermal.RoomState
	Net         wsn.NetworkState
	RadiantTank hydraulic.TankState
	VentTank    hydraulic.TankState
	Radiant     radiant.ModuleState
	Vent        vent.ModuleState

	Devices      []DeviceState                  // in registration order
	Broadcasters []wsn.PeriodicBroadcasterState // in registration order

	Recorder trace.RecorderState

	Watch *WatchdogState // nil when no fault plan armed the watchdog

	COPRadiant energy.COP
	COPVent    energy.COP

	CondensationS float64
	SinceTrace    float64
}

// ExportState captures the system's full mutable state. Call it between
// ticks, after sim.Engine.FlushCadenced.
func (s *System) ExportState() (SystemState, error) {
	eng, err := s.engine.ExportState()
	if err != nil {
		return SystemState{}, err
	}
	st := SystemState{
		Engine:        eng,
		Room:          s.room.ExportState(),
		Net:           s.net.ExportState(),
		RadiantTank:   s.radiantTank.ExportState(),
		VentTank:      s.ventTank.ExportState(),
		Radiant:       s.radiantMod.ExportState(),
		Vent:          s.ventMod.ExportState(),
		Devices:       make([]DeviceState, len(s.devices)),
		Broadcasters:  make([]wsn.PeriodicBroadcasterState, len(s.broadcasters)),
		Recorder:      s.rec.ExportState(),
		COPRadiant:    s.copRadiant,
		COPVent:       s.copVent,
		CondensationS: s.condensationS,
		SinceTrace:    s.sinceTrace,
	}
	for i, d := range s.devices {
		ds, err := d.ExportState()
		if err != nil {
			return SystemState{}, err
		}
		st.Devices[i] = DeviceState{ID: d.Node().ID(), State: ds}
	}
	for i, b := range s.broadcasters {
		st.Broadcasters[i] = b.ExportState()
	}
	if s.watch != nil {
		w := s.watch
		st.Watch = &WatchdogState{
			TempAtS:     w.tempAtS,
			TempVal:     w.tempVal,
			RHAtS:       w.rhAtS,
			PanelAtS:    w.panelAtS,
			BoxAtS:      w.boxAtS,
			SupplyAtS:   w.supplyAtS,
			TempSub:     w.tempSub,
			Frozen:      w.frozen,
			SafeMode:    w.safeMode,
			BoxStale:    w.boxStale,
			SupplyOld:   w.supplyOld,
			Transitions: w.transitions,
		}
	}
	return st, nil
}

// RestoreState patches a freshly assembled System to the captured point.
// The receiver must have been built from the same configuration, seed,
// options, and fault plan as the exporter; structural mismatches are
// reported as errors before any state is overwritten.
func (s *System) RestoreState(st SystemState) error {
	if len(st.Devices) != len(s.devices) {
		return fmt.Errorf("core: restore: system has %d devices, snapshot has %d",
			len(s.devices), len(st.Devices))
	}
	for i, d := range s.devices {
		if d.Node().ID() != st.Devices[i].ID {
			return fmt.Errorf("core: restore: device %d is %q, snapshot has %q",
				i, d.Node().ID(), st.Devices[i].ID)
		}
	}
	if len(st.Broadcasters) != len(s.broadcasters) {
		return fmt.Errorf("core: restore: system has %d broadcasters, snapshot has %d",
			len(s.broadcasters), len(st.Broadcasters))
	}
	if (s.watch != nil) != (st.Watch != nil) {
		return fmt.Errorf("core: restore: watchdog armed = %v, snapshot has %v",
			s.watch != nil, st.Watch != nil)
	}
	if err := s.engine.RestoreState(st.Engine); err != nil {
		return err
	}
	s.room.RestoreState(st.Room)
	if err := s.net.RestoreState(st.Net); err != nil {
		return err
	}
	s.radiantTank.RestoreState(st.RadiantTank)
	s.ventTank.RestoreState(st.VentTank)
	s.radiantMod.RestoreState(st.Radiant)
	s.ventMod.RestoreState(st.Vent)
	for i, d := range s.devices {
		if err := d.RestoreState(st.Devices[i].State); err != nil {
			return err
		}
	}
	for i, b := range s.broadcasters {
		b.RestoreState(st.Broadcasters[i])
	}
	s.rec.RestoreState(st.Recorder)
	if st.Watch != nil {
		w := s.watch
		w.tempAtS = st.Watch.TempAtS
		w.tempVal = st.Watch.TempVal
		w.rhAtS = st.Watch.RHAtS
		w.panelAtS = st.Watch.PanelAtS
		w.boxAtS = st.Watch.BoxAtS
		w.supplyAtS = st.Watch.SupplyAtS
		w.tempSub = st.Watch.TempSub
		w.frozen = st.Watch.Frozen
		w.safeMode = st.Watch.SafeMode
		w.boxStale = st.Watch.BoxStale
		w.supplyOld = st.Watch.SupplyOld
		w.transitions = st.Watch.Transitions
	}
	s.copRadiant = st.COPRadiant
	s.copVent = st.COPVent
	s.condensationS = st.CondensationS
	s.sinceTrace = st.SinceTrace
	for p := range s.wSurfMemo {
		s.wSurfMemo[p].tSurf = math.NaN()
		s.wSurfMemo[p].w = 0
	}
	return nil
}
