package core

// Shared is a validated, read-only configuration handle that many Systems
// can be assembled from. It exists for fleet-scale instantiation: the
// Config is validated once, stored once, and every System built from the
// handle aliases it instead of carrying a private copy — per-building
// differences (seed, climate boundary) ride in the per-instance options
// that deliberately do not edit the Config (WithSeed, WithOutdoor).
//
// The handle is immutable after construction. Callers must not mutate the
// Config reachable through it; Systems read it concurrently from every
// fleet shard.
type Shared struct {
	cfg Config
}

// NewShared validates cfg and wraps it in a read-only handle.
func NewShared(cfg Config) (*Shared, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Shared{cfg: cfg}, nil
}

// Config returns a copy of the shared configuration.
func (sh *Shared) Config() Config { return sh.cfg }

// NewSystem assembles one System over the shared configuration. Options
// that edit the Config (WithTracePeriod, WithLossFloor, …) force a
// private validated copy for this instance; the per-instance overrides
// WithSeed and WithOutdoor do not, so a homogeneous fleet with varied
// seeds and climates keeps exactly one Config in memory.
func (sh *Shared) NewSystem(opts ...Option) (*System, error) {
	var o sysOpts
	for _, opt := range opts {
		opt(&o)
	}
	cfgp := &sh.cfg
	if len(o.cfgEdits) > 0 {
		cfg := sh.cfg
		for _, edit := range o.cfgEdits {
			edit(&cfg)
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		cfgp = &cfg
	}
	return assemble(cfgp, &o)
}
