package twin

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bubblezero/internal/core"
	"bubblezero/internal/fault"
	"bubblezero/internal/fleet"
	"bubblezero/internal/thermal"
)

// testConfig pins shards explicitly so two twins built from it are
// structurally identical regardless of the host's core count.
func testConfig() Config {
	return Config{Buildings: 3, Shards: 2, Seed: 7, EpochTicks: 256}
}

// fingerprint is a building's bit-exact identity: Float64bits zone state
// plus the SHA-256 of the recorder's exact hex-float dump.
func fingerprint(t *testing.T, sys *core.System) string {
	t.Helper()
	var sb strings.Builder
	for z := 0; z < thermal.NumZones; z++ {
		st := sys.Room().Zone(thermal.ZoneID(z))
		fmt.Fprintf(&sb, "%x/%x/%x;", math.Float64bits(st.T), math.Float64bits(st.W), math.Float64bits(st.CO2PPM))
	}
	h := sha256.New()
	if err := sys.Recorder().WriteExact(h); err != nil {
		t.Fatalf("WriteExact: %v", err)
	}
	sb.WriteString(hex.EncodeToString(h.Sum(nil)))
	return sb.String()
}

func fingerprints(t *testing.T, tw *Twin) []string {
	t.Helper()
	var fps []string
	err := tw.View(func(fl *fleet.Fleet) error {
		for i := 0; i < fl.Buildings(); i++ {
			fps = append(fps, fingerprint(t, fl.Building(i)))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	return fps
}

// waitIdle polls until the twin's runner has drained to wantTicks.
func waitIdle(t *testing.T, tw *Twin, wantTicks uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := tw.Status()
		if st.Err != "" {
			t.Fatalf("twin runner failed: %s", st.Err)
		}
		if st.Pending == 0 && st.Ticks == wantTicks {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("twin did not reach tick %d: %+v", wantTicks, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// testEvents is the mutation batch injected at tick 300: a weather change
// and a live chiller trip whose injection fires before the tick-556
// snapshot and whose clear fires after it.
func testEvents() []fleet.Event {
	return []fleet.Event{
		{Kind: fleet.EventClimate, TC: 33, DewC: 27},
		{Kind: fleet.EventFault, Building: 1, Faults: []fault.Event{
			fault.ChillerTrip(200*time.Second, 120*time.Second, fault.LoopVent), // fires 500, clears 620
		}},
	}
}

// runReference produces the uninterrupted run the snapshot paths are
// measured against: 300 ticks, the event batch, then straight to 900.
func runReference(t *testing.T) []string {
	t.Helper()
	ref, err := NewTwin(context.Background(), testConfig())
	if err != nil {
		t.Fatalf("NewTwin(ref): %v", err)
	}
	defer ref.Close()
	if err := ref.RunTicks(300); err != nil {
		t.Fatalf("ref run: %v", err)
	}
	waitIdle(t, ref, 300)
	for i, ev := range testEvents() {
		if err := ref.Apply(ev); err != nil {
			t.Fatalf("ref event %d: %v", i, err)
		}
	}
	if err := ref.RunTicks(600); err != nil {
		t.Fatalf("ref run to end: %v", err)
	}
	waitIdle(t, ref, 900)
	return fingerprints(t, ref)
}

// TestTwinSnapshotRoundTrip pins the service-layer checkpoint contract at
// the Go API level: snapshot at tick 556, gob-encode to bytes, decode in
// a "fresh process" (a new Twin built by RestoreTwin), run to 900, and
// compare bit-exact fingerprints against the uninterrupted reference.
func TestTwinSnapshotRoundTrip(t *testing.T) {
	want := runReference(t)

	chk, err := NewTwin(context.Background(), testConfig())
	if err != nil {
		t.Fatalf("NewTwin(chk): %v", err)
	}
	defer chk.Close()
	if err := chk.RunTicks(300); err != nil {
		t.Fatalf("chk run: %v", err)
	}
	waitIdle(t, chk, 300)
	for i, ev := range testEvents() {
		if err := chk.Apply(ev); err != nil {
			t.Fatalf("chk event %d: %v", i, err)
		}
	}
	if err := chk.RunTicks(256); err != nil {
		t.Fatalf("chk run to snapshot: %v", err)
	}
	waitIdle(t, chk, 556)

	snap, err := chk.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	decoded, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}

	res, err := RestoreTwin(context.Background(), decoded)
	if err != nil {
		t.Fatalf("RestoreTwin: %v", err)
	}
	defer res.Close()
	if got := res.Status().Ticks; got != 556 {
		t.Fatalf("restored twin at tick %d, want 556", got)
	}
	if err := res.RunTicks(344); err != nil {
		t.Fatalf("restored run: %v", err)
	}
	waitIdle(t, res, 900)

	got := fingerprints(t, res)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("building %d: restored fingerprint diverged from uninterrupted run", i)
		}
	}
}

// httpJSON performs one JSON request against the test server and decodes
// the response into out (skipped when out is nil).
func httpJSON(t *testing.T, client *http.Client, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal %s %s: %v", method, url, err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("request %s %s: %v", method, url, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, raw, err)
		}
	}
}

// waitIdleHTTP polls the status endpoint until the backlog drains.
func waitIdleHTTP(t *testing.T, client *http.Client, base, id string, wantTicks uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st statusResponse
		httpJSON(t, client, http.MethodGet, base+"/twins/"+id, nil, http.StatusOK, &st)
		if st.Err != "" {
			t.Fatalf("twin %s failed: %s", id, st.Err)
		}
		if st.Pending == 0 && st.Ticks == wantTicks {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("twin %s did not reach tick %d: %+v", id, wantTicks, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServerSnapshotRestoreAcrossServers drives the whole redesigned API
// over HTTP: create → run → inject events → run → download snapshot, then
// restore the bytes into a second server (a fresh process stand-in), run
// the remainder there, and require bit-identity with the uninterrupted
// reference run.
func TestServerSnapshotRestoreAcrossServers(t *testing.T) {
	want := runReference(t)

	srvA := NewServer()
	defer srvA.Close()
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()
	client := tsA.Client()

	var created createResponse
	httpJSON(t, client, http.MethodPost, tsA.URL+"/twins", testConfig(), http.StatusCreated, &created)
	id := created.ID
	if created.Buildings != 3 {
		t.Fatalf("created %d buildings, want 3", created.Buildings)
	}

	httpJSON(t, client, http.MethodPost, tsA.URL+"/twins/"+id+"/run", map[string]uint64{"ticks": 300}, http.StatusAccepted, nil)
	waitIdleHTTP(t, client, tsA.URL, id, 300)

	httpJSON(t, client, http.MethodPost, tsA.URL+"/twins/"+id+"/events",
		eventRequest{Kind: "climate", TC: 33, DewC: 27}, http.StatusAccepted, nil)
	httpJSON(t, client, http.MethodPost, tsA.URL+"/twins/"+id+"/events",
		eventRequest{Kind: "fault", Building: 1, Faults: []faultRequest{
			{Kind: "chiller-trip", AtS: 200, ForS: 120, Loop: "vent"},
		}}, http.StatusAccepted, nil)

	httpJSON(t, client, http.MethodPost, tsA.URL+"/twins/"+id+"/run", map[string]uint64{"ticks": 256}, http.StatusAccepted, nil)
	waitIdleHTTP(t, client, tsA.URL, id, 556)

	resp, err := client.Get(tsA.URL + "/twins/" + id + "/snapshot")
	if err != nil {
		t.Fatalf("GET snapshot: %v", err)
	}
	snapBytes, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET snapshot: status %d, err %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("snapshot Content-Type = %q", ct)
	}

	srvB := NewServer()
	defer srvB.Close()
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	respB, err := tsB.Client().Post(tsB.URL+"/twins/restore", "application/octet-stream", bytes.NewReader(snapBytes))
	if err != nil {
		t.Fatalf("POST restore: %v", err)
	}
	var restored createResponse
	rawB, _ := io.ReadAll(respB.Body)
	respB.Body.Close()
	if respB.StatusCode != http.StatusCreated {
		t.Fatalf("POST restore: status %d: %s", respB.StatusCode, rawB)
	}
	if err := json.Unmarshal(rawB, &restored); err != nil {
		t.Fatalf("restore response %q: %v", rawB, err)
	}
	if restored.Ticks != 556 {
		t.Fatalf("restored twin at tick %d, want 556", restored.Ticks)
	}

	httpJSON(t, tsB.Client(), http.MethodPost, tsB.URL+"/twins/"+restored.ID+"/run", map[string]uint64{"ticks": 344}, http.StatusAccepted, nil)
	waitIdleHTTP(t, tsB.Client(), tsB.URL, restored.ID, 900)

	resTwin, ok := srvB.reg.get(restored.ID)
	if !ok {
		t.Fatalf("restored twin %q missing from registry", restored.ID)
	}
	got := fingerprints(t, resTwin)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("building %d: HTTP-restored fingerprint diverged from uninterrupted run", i)
		}
	}
}

// TestServerQueryEndpoints pins the read surface: series listing, JSON
// downsampled buckets with aggregates, CSV export, and the error mapping
// (404 unknown series / twin, 400 bad parameters).
func TestServerQueryEndpoints(t *testing.T) {
	srv := NewServer()
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	var created createResponse
	httpJSON(t, client, http.MethodPost, ts.URL+"/twins", Config{Buildings: 2, Shards: 1, EpochTicks: 256}, http.StatusCreated, &created)
	id := created.ID
	httpJSON(t, client, http.MethodPost, ts.URL+"/twins/"+id+"/run", map[string]uint64{"ticks": 600}, http.StatusAccepted, nil)
	waitIdleHTTP(t, client, ts.URL, id, 600)

	var series struct {
		Building int      `json:"building"`
		Series   []string `json:"series"`
	}
	httpJSON(t, client, http.MethodGet, ts.URL+"/twins/"+id+"/series?building=1", nil, http.StatusOK, &series)
	if len(series.Series) == 0 || series.Building != 1 {
		t.Fatalf("series listing = %+v, want non-empty for building 1", series)
	}
	name := series.Series[0]

	var qr queryResponse
	httpJSON(t, client, http.MethodGet,
		ts.URL+"/twins/"+id+"/query?building=1&series="+name+"&from_s=0&to_s=600&step_s=60&agg=mean",
		nil, http.StatusOK, &qr)
	if len(qr.Points) != 11 {
		t.Fatalf("query returned %d points, want 11", len(qr.Points))
	}
	if qr.Agg != "mean" || qr.Series != name {
		t.Fatalf("query response header = %+v", qr)
	}
	sawValue := false
	for _, p := range qr.Points {
		if p.Value != nil {
			sawValue = true
		}
	}
	if !sawValue {
		t.Fatalf("query returned no data in any bucket: %+v", qr.Points)
	}

	resp, err := client.Get(ts.URL + "/twins/" + id + "/query?building=0&format=csv&from_s=0&to_s=600&step_s=60")
	if err != nil {
		t.Fatalf("GET csv: %v", err)
	}
	csvBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET csv: status %d: %s", resp.StatusCode, csvBody)
	}
	if lines := strings.Count(string(csvBody), "\n"); lines != 12 {
		t.Fatalf("CSV has %d lines, want 12 (header + 11 buckets):\n%s", lines, csvBody)
	}

	for path, wantStatus := range map[string]int{
		"/twins/nope": http.StatusNotFound,
		"/twins/" + id + "/query?series=zzz&from_s=0&to_s=10&step_s=1":         http.StatusNotFound,
		"/twins/" + id + "/query?series=" + name:                               http.StatusBadRequest,
		"/twins/" + id + "/query?series=" + name + "&from_s=9&to_s=1&step_s=1": http.StatusBadRequest,
		"/twins/" + id + "/series?building=99":                                 http.StatusBadRequest,
	} {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, wantStatus)
		}
	}
}

// TestServerEventValidation pins the mutation surface's error mapping.
func TestServerEventValidation(t *testing.T) {
	srv := NewServer()
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	var created createResponse
	httpJSON(t, client, http.MethodPost, ts.URL+"/twins", Config{Buildings: 1, Shards: 1}, http.StatusCreated, &created)
	id := created.ID

	bad := []eventRequest{
		{Kind: "weather"},                      // unknown kind
		{Kind: "door", Building: 5, DoorS: 30}, // building out of range
		{Kind: "door", Building: 0},            // non-positive duration
		{Kind: "fault", Building: 0},           // no fault events
		{Kind: "fault", Building: 0, Faults: []faultRequest{{Kind: "melted"}}}, // unknown fault kind
	}
	for i, ev := range bad {
		httpJSON(t, client, http.MethodPost, ts.URL+"/twins/"+id+"/events", ev, http.StatusBadRequest, nil)
		_ = i
	}
	httpJSON(t, client, http.MethodPost, ts.URL+"/twins/"+id+"/events",
		eventRequest{Kind: "door", Building: 0, DoorS: 45}, http.StatusAccepted, nil)
}

// TestSnapshotVersionGuard pins the wire-format version check.
func TestSnapshotVersionGuard(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&Snapshot{Version: SnapshotVersion + 1}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := ReadSnapshot(&buf); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("ReadSnapshot of future version: err = %v, want version guard", err)
	}
}
