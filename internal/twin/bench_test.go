package twin_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bubblezero/internal/twin"
)

// HTTP service-layer benchmark: downsampled telemetry reads against a
// live 1000-building twin via the bubblezerod handler stack — route
// match, parameter parsing, the trace.Query bucket fold, and JSON
// encoding, everything a dashboard poll pays except the TCP socket.
// The headline metric is queries/s; recorded in BENCH_http.json via
// `make bench-http-json`, gated by scripts/benchguard.
//
// Requests rotate across buildings and series so the fold touches many
// recorders rather than one hot series. The fleet is advanced once,
// before the timer: the gate measures read throughput at a quiescent
// epoch boundary, which is also the only state the lock-chunked runner
// ever exposes to a reader.
func BenchmarkHTTPQuery(b *testing.B) {
	const (
		buildings = 1000
		runTicks  = 600
	)
	srv := twin.NewServer()
	defer srv.Close()
	h := srv.Handler()

	do := func(method, target, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, target, strings.NewReader(body))
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	rec := do(http.MethodPost, "/twins",
		fmt.Sprintf(`{"buildings": %d, "seed": 7}`, buildings))
	if rec.Code != http.StatusCreated {
		b.Fatalf("create twin: status %d: %s", rec.Code, rec.Body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		b.Fatal(err)
	}
	id := created.ID

	rec = do(http.MethodPost, "/twins/"+id+"/run",
		fmt.Sprintf(`{"ticks": %d}`, runTicks))
	if rec.Code != http.StatusAccepted {
		b.Fatalf("run: status %d: %s", rec.Code, rec.Body)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var st struct {
			Ticks   uint64 `json:"ticks"`
			Pending uint64 `json:"pending"`
			Err     string `json:"error"`
		}
		rec = do(http.MethodGet, "/twins/"+id, "")
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			b.Fatal(err)
		}
		if st.Err != "" {
			b.Fatalf("twin runner failed: %s", st.Err)
		}
		if st.Pending == 0 && st.Ticks >= runTicks {
			break
		}
		if time.Now().After(deadline) {
			b.Fatalf("twin stuck at tick %d with %d pending", st.Ticks, st.Pending)
		}
		time.Sleep(2 * time.Millisecond)
	}

	rec = do(http.MethodGet, "/twins/"+id+"/series?building=0", "")
	var series struct {
		Series []string `json:"series"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &series); err != nil {
		b.Fatal(err)
	}
	if len(series.Series) == 0 {
		b.Fatal("no recorded series on building 0")
	}

	// Precompute a rotation of query targets: a stride through the fleet
	// crossed with the series list, every read a 60-bucket mean fold.
	targets := make([]string, 0, 64)
	for i := 0; len(targets) < cap(targets); i++ {
		bld := (i * 137) % buildings
		name := series.Series[i%len(series.Series)]
		targets = append(targets, fmt.Sprintf(
			"/twins/%s/query?building=%d&series=%s&from_s=0&to_s=%d&step_s=10&agg=mean",
			id, bld, name, runTicks))
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := do(http.MethodGet, targets[i%len(targets)], "")
		if rec.Code != http.StatusOK {
			b.Fatalf("query: status %d: %s", rec.Code, rec.Body)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}
