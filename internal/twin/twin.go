// Package twin is the digital-twin service layer: it wraps an
// internal/fleet simulation in a long-lived handle that an HTTP server
// (cmd/bubblezerod) can create from a validated config, advance in the
// background, mutate through fleet.Apply events, read through
// deterministic trace queries, and checkpoint/restore through a versioned
// gob snapshot.
//
// The twin never touches the wall clock: runs advance by explicit tick
// counts, queries address simulated time as offsets from the config's
// start instant, and snapshot identity is pinned by the same bit-exact
// fingerprints the fleet tests use. A twin restored from a snapshot in a
// fresh process replays the remainder of its run bit-identically to an
// uninterrupted one.
package twin

import (
	"context"
	"fmt"
	"sync"
	"time"

	"bubblezero/internal/fleet"
)

// Config is the JSON surface a twin is created from. It maps onto
// fleet.DefaultConfig with the fleet's memory budget disabled (twins
// record telemetry, whose cost the budget would misattribute) and trace
// sampling on by default — telemetry is the point of a twin. Construction
// fault plans are deliberately absent: faults enter a twin only as live
// events, which the journal can replay on restore.
type Config struct {
	// Buildings is the fleet size. Must be > 0.
	Buildings int `json:"buildings"`
	// Shards partitions the buildings across workers; 0 selects NumCPU.
	Shards int `json:"shards,omitempty"`
	// Seed is the fleet seed; 0 keeps the fleet default.
	Seed uint64 `json:"seed,omitempty"`
	// EpochTicks is the epoch length; 0 keeps the fleet default (512).
	EpochTicks int `json:"epoch_ticks,omitempty"`
	// Unbanked disables the fused zone bank (banked is the default and
	// changes no results, only locality).
	Unbanked bool `json:"unbanked,omitempty"`
	// SampleEvery records traces on every k-th building; 0 selects 1
	// (every building).
	SampleEvery int `json:"sample_every,omitempty"`
	// SampleRetention bounds each sampled series to a ring of the most
	// recent n samples; 0 keeps unbounded history.
	SampleRetention int `json:"sample_retention,omitempty"`
}

// FleetConfig expands the twin config into the full fleet configuration.
// The expansion is deterministic, so a snapshot that carries the twin
// config rebuilds an identical fleet in a fresh process.
func (c Config) FleetConfig() (fleet.Config, error) {
	fc := fleet.DefaultConfig(c.Buildings)
	fc.Shards = c.Shards
	if c.Seed != 0 {
		fc.Seed = c.Seed
	}
	fc.EpochTicks = c.EpochTicks
	fc.Bank = !c.Unbanked
	fc.MemBudgetBytes = 0
	fc.SampleEvery = c.SampleEvery
	if fc.SampleEvery == 0 {
		fc.SampleEvery = 1
	}
	fc.SampleRetention = c.SampleRetention
	if err := fc.Validate(); err != nil {
		return fleet.Config{}, err
	}
	return fc, nil
}

// runChunkTicks bounds how long the runner holds the fleet lock: one
// chunk per lock window, so reads and snapshots interleave with a long
// run at epoch granularity.
const runChunkTicks = 512

// Twin is one live simulation: a fleet plus a background runner that
// advances it on demand. All exported methods are safe for concurrent use
// by HTTP handlers. When both locks are taken, mu nests inside nothing:
// the runner and every reader release mu before touching runMu.
//
//bzlint:guards mu fl
//bzlint:guards runMu pending,runErr
type Twin struct {
	cfg   Config
	start time.Time // simulated start instant; query offsets are relative to it

	// mu serializes fleet access: the runner holds it for one chunk of
	// ticks at a time, queries and snapshots take it between chunks.
	mu sync.Mutex
	fl *fleet.Fleet

	// runMu guards the run queue and the runner's terminal error.
	runMu   sync.Mutex
	pending uint64
	runErr  error

	wake chan struct{}
	quit chan struct{}
	done chan struct{}
}

// NewTwin validates cfg, builds its fleet, and starts the runner.
func NewTwin(ctx context.Context, cfg Config) (*Twin, error) {
	fc, err := cfg.FleetConfig()
	if err != nil {
		return nil, err
	}
	fl, err := fleet.New(ctx, fc)
	if err != nil {
		return nil, err
	}
	return startTwin(cfg, fc.Base.Start, fl), nil
}

func startTwin(cfg Config, start time.Time, fl *fleet.Fleet) *Twin {
	t := &Twin{
		cfg:   cfg,
		start: start,
		fl:    fl,
		wake:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	//bzlint:allow determinism service-layer runner, not tick code: the fleet it drives applies events only at epoch boundaries, so scheduling cannot reorder simulated state
	go t.runLoop()
	return t
}

// Config returns the twin's creation config.
func (t *Twin) Config() Config { return t.cfg }

// Start returns the simulated start instant; query time offsets are
// seconds since it.
func (t *Twin) Start() time.Time { return t.start }

// RunTicks queues n more ticks for the background runner. It returns the
// runner's terminal error, if one has occurred: a failed twin stays
// readable but will not advance further.
func (t *Twin) RunTicks(n uint64) error {
	t.runMu.Lock()
	defer t.runMu.Unlock()
	if t.runErr != nil {
		return t.runErr
	}
	t.pending += n
	select {
	case t.wake <- struct{}{}:
	default:
	}
	return nil
}

// Status is a twin's progress report.
type Status struct {
	Buildings int    `json:"buildings"`
	Ticks     uint64 `json:"ticks"`
	Pending   uint64 `json:"pending"`
	Err       string `json:"error,omitempty"`
}

// Status reports the twin's current tick count and run backlog.
func (t *Twin) Status() Status {
	t.mu.Lock()
	ticks := t.fl.Ticks()
	buildings := t.fl.Buildings()
	t.mu.Unlock()
	t.runMu.Lock()
	st := Status{Buildings: buildings, Ticks: ticks, Pending: t.pending}
	if t.runErr != nil {
		st.Err = t.runErr.Error()
	}
	t.runMu.Unlock()
	return st
}

// Apply injects a live event; it lands at the next epoch boundary.
// Lock-free by design: the fl pointer is immutable after construction and
// fleet.Apply synchronizes internally (evMu), so taking mu here would
// only serialize event injection against long run chunks.
//
//bzlint:allow lockcheck fl pointer is immutable after construction; fleet.Apply locks evMu internally
func (t *Twin) Apply(ev fleet.Event) error { return t.fl.Apply(ev) }

// View runs fn with exclusive access to the fleet, between run chunks.
// fn must read only — mutations bypass the event journal and would break
// snapshot replay.
func (t *Twin) View(fn func(fl *fleet.Fleet) error) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return fn(t.fl)
}

// Snapshot captures the twin at the current epoch boundary.
func (t *Twin) Snapshot() (*Snapshot, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, err := t.fl.ExportState()
	if err != nil {
		return nil, err
	}
	return &Snapshot{Version: SnapshotVersion, Config: t.cfg, State: st}, nil
}

// RestoreTwin builds a fresh twin from a snapshot: the fleet is
// reconstructed from the embedded config — construction is deterministic,
// so the topology matches position for position — and patched to the
// captured tick, journal replay included.
func RestoreTwin(ctx context.Context, snap *Snapshot) (*Twin, error) {
	fc, err := snap.Config.FleetConfig()
	if err != nil {
		return nil, fmt.Errorf("twin: restore: %w", err)
	}
	fl, err := fleet.New(ctx, fc)
	if err != nil {
		return nil, fmt.Errorf("twin: restore: %w", err)
	}
	if err := fl.RestoreState(snap.State); err != nil {
		return nil, fmt.Errorf("twin: restore: %w", err)
	}
	return startTwin(snap.Config, fc.Base.Start, fl), nil
}

// Close stops the runner and waits for it to exit. Queued ticks that have
// not started are abandoned.
func (t *Twin) Close() {
	select {
	case <-t.quit:
	default:
		close(t.quit)
	}
	<-t.done
}

// runLoop drains the run queue in bounded chunks, releasing the fleet
// lock between chunks so reads and snapshots interleave with long runs.
func (t *Twin) runLoop() {
	defer close(t.done)
	for {
		select {
		case <-t.quit:
			return
		case <-t.wake:
		}
		for {
			select {
			case <-t.quit:
				return
			default:
			}
			t.runMu.Lock()
			chunk := t.pending
			if chunk > runChunkTicks {
				chunk = runChunkTicks
			}
			t.runMu.Unlock()
			if chunk == 0 {
				break
			}
			t.mu.Lock()
			err := t.fl.RunTicks(context.Background(), chunk)
			t.mu.Unlock()
			t.runMu.Lock()
			if err != nil {
				t.runErr = err
				t.pending = 0
			} else {
				t.pending -= chunk
			}
			t.runMu.Unlock()
			if err != nil {
				break
			}
		}
	}
}
