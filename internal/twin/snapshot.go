package twin

import (
	"encoding/gob"
	"fmt"
	"io"

	"bubblezero/internal/fleet"
)

// SnapshotVersion is the wire-format version WriteSnapshot stamps and
// ReadSnapshot enforces. Bump it on any incompatible change to the
// snapshot graph (fleet.State and everything it embeds); a version
// mismatch is a hard error, never a silent partial decode.
const SnapshotVersion = 1

// Snapshot is a twin checkpoint: the config the fleet was built from —
// config expansion and fleet construction are deterministic, so the
// config IS the structural half of the snapshot — plus the fleet's full
// mutable state, event journal included.
//
// The encoding is gob: float64 payloads round-trip bit-exactly (gob
// transmits the IEEE bits, NaN included), which is what makes a restored
// twin's remaining run bit-identical to an uninterrupted one rather than
// merely close. A snapshot taken at tick T never re-pins a golden epoch:
// the restored run continues the original sample streams.
//
//bzlint:state Snapshot RestoreTwin
type Snapshot struct {
	//bzlint:allow statecov restore only validates Version (ReadSnapshot rejects mismatches); there is nothing to patch into the rebuilt twin
	Version int
	Config  Config
	State   fleet.State
}

// WriteSnapshot gob-encodes the snapshot, stamping the current version.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	s.Version = SnapshotVersion
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("twin: encode snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot decodes one snapshot and verifies its version.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("twin: decode snapshot: %w", err)
	}
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("twin: snapshot version %d, this build reads %d", s.Version, SnapshotVersion)
	}
	return &s, nil
}
