package twin

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bubblezero/internal/fault"
	"bubblezero/internal/fleet"
	"bubblezero/internal/trace"
)

// Server is the digital-twin HTTP API: a registry of live twins behind a
// redesigned query/mutation surface. Reads go through deterministic
// trace queries, writes go through fleet.Apply events — the one mutation
// route a running fleet has — and checkpoints travel as versioned gob.
//
//	POST   /twins                 create a twin from a Config JSON body
//	POST   /twins/restore         create a twin from a snapshot body
//	GET    /twins                 list twin IDs
//	GET    /twins/{id}            status (ticks, backlog, config)
//	DELETE /twins/{id}            stop and remove the twin
//	POST   /twins/{id}/run        {"ticks": n} — queue n ticks
//	POST   /twins/{id}/events     inject one live event (climate/door/fault)
//	GET    /twins/{id}/series     list a building's series names
//	GET    /twins/{id}/query      downsampled read (JSON buckets or CSV)
//	GET    /twins/{id}/snapshot   checkpoint as application/octet-stream
type Server struct {
	reg registry
}

// registry is the ID→twin map. Its own lock stays separate from the
// twins' run locks so a slow simulation never blocks the listing.
//
//bzlint:guards mu twins,next
type registry struct {
	mu    sync.Mutex
	twins map[string]*Twin
	next  int
}

func (r *registry) add(t *Twin) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	id := fmt.Sprintf("t%d", r.next)
	r.twins[id] = t
	return id
}

func (r *registry) get(id string) (*Twin, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.twins[id]
	return t, ok
}

func (r *registry) remove(id string) (*Twin, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.twins[id]
	if ok {
		delete(r.twins, id)
	}
	return t, ok
}

func (r *registry) ids() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, 0, len(r.twins))
	//bzlint:allow determinism listing is sorted below; handler output does not depend on iteration order
	for id := range r.twins {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// NewServer returns an empty twin registry.
func NewServer() *Server {
	return &Server{reg: registry{twins: make(map[string]*Twin)}}
}

// Close stops every registered twin.
func (s *Server) Close() {
	for _, id := range s.reg.ids() {
		if t, ok := s.reg.remove(id); ok {
			t.Close()
		}
	}
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /twins", s.handleCreate)
	mux.HandleFunc("POST /twins/restore", s.handleRestore)
	mux.HandleFunc("GET /twins", s.handleList)
	mux.HandleFunc("GET /twins/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /twins/{id}", s.handleDelete)
	mux.HandleFunc("POST /twins/{id}/run", s.handleRun)
	mux.HandleFunc("POST /twins/{id}/events", s.handleEvent)
	mux.HandleFunc("GET /twins/{id}/series", s.handleSeries)
	mux.HandleFunc("GET /twins/{id}/query", s.handleQuery)
	mux.HandleFunc("GET /twins/{id}/snapshot", s.handleSnapshot)
	return mux
}

// maxJSONBody bounds JSON request bodies; snapshot uploads are exempt
// (a large fleet's state is legitimately megabytes).
const maxJSONBody = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) twinOr404(w http.ResponseWriter, r *http.Request) (*Twin, string, bool) {
	id := r.PathValue("id")
	t, ok := s.reg.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("twin %q not found", id))
		return nil, id, false
	}
	return t, id, true
}

type createResponse struct {
	ID string `json:"id"`
	Status
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var cfg Config
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("config: %w", err))
		return
	}
	t, err := NewTwin(r.Context(), cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id := s.reg.add(t)
	writeJSON(w, http.StatusCreated, createResponse{ID: id, Status: t.Status()})
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	snap, err := ReadSnapshot(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	t, err := RestoreTwin(r.Context(), snap)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id := s.reg.add(t)
	writeJSON(w, http.StatusCreated, createResponse{ID: id, Status: t.Status()})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"twins": s.reg.ids()})
}

type statusResponse struct {
	ID     string `json:"id"`
	Config Config `json:"config"`
	Status
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	t, id, ok := s.twinOr404(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, statusResponse{ID: id, Config: t.Config(), Status: t.Status()})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, ok := s.reg.remove(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("twin %q not found", id))
		return
	}
	t.Close()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	t, _, ok := s.twinOr404(w, r)
	if !ok {
		return
	}
	var req struct {
		Ticks uint64 `json:"ticks"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("run request: %w", err))
		return
	}
	if req.Ticks == 0 {
		writeError(w, http.StatusBadRequest, errors.New("run request: ticks must be > 0"))
		return
	}
	if err := t.RunTicks(req.Ticks); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, t.Status())
}

// eventRequest is the wire form of a live mutation.
type eventRequest struct {
	Kind     string         `json:"kind"` // "climate", "door", or "fault"
	Building int            `json:"building,omitempty"`
	TC       float64        `json:"t_c,omitempty"`
	DewC     float64        `json:"dew_c,omitempty"`
	DoorS    float64        `json:"door_s,omitempty"`
	Faults   []faultRequest `json:"faults,omitempty"`
}

// faultRequest is the wire form of one fault injection; offsets are
// seconds relative to the epoch boundary where the event lands.
type faultRequest struct {
	Kind      string  `json:"kind"`
	AtS       float64 `json:"at_s"`
	ForS      float64 `json:"for_s,omitempty"`
	Node      string  `json:"node,omitempty"`
	Loop      string  `json:"loop,omitempty"`
	Magnitude float64 `json:"magnitude,omitempty"`
}

func (e eventRequest) toEvent() (fleet.Event, error) {
	kind, err := fleet.ParseEventKind(e.Kind)
	if err != nil {
		return fleet.Event{}, err
	}
	ev := fleet.Event{
		Kind:     kind,
		Building: e.Building,
		TC:       e.TC,
		DewC:     e.DewC,
		Door:     secondsToDuration(e.DoorS),
	}
	for _, fr := range e.Faults {
		fk, err := fault.ParseKind(fr.Kind)
		if err != nil {
			return fleet.Event{}, err
		}
		ev.Faults = append(ev.Faults, fault.Event{
			Kind:      fk,
			At:        secondsToDuration(fr.AtS),
			For:       secondsToDuration(fr.ForS),
			Node:      fr.Node,
			Loop:      fault.Loop(fr.Loop),
			Magnitude: fr.Magnitude,
		})
	}
	return ev, nil
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

func (s *Server) handleEvent(w http.ResponseWriter, r *http.Request) {
	t, _, ok := s.twinOr404(w, r)
	if !ok {
		return
	}
	var req eventRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("event: %w", err))
		return
	}
	ev, err := req.toEvent()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := t.Apply(ev); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"kind": ev.Kind.String(), "status": "queued"})
}

func parseBuilding(r *http.Request, buildings int) (int, error) {
	raw := r.URL.Query().Get("building")
	if raw == "" {
		return 0, nil
	}
	b, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("building: %w", err)
	}
	if b < 0 || b >= buildings {
		return 0, fmt.Errorf("building %d out of range [0, %d)", b, buildings)
	}
	return b, nil
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	t, _, ok := s.twinOr404(w, r)
	if !ok {
		return
	}
	var names []string
	var building int
	err := t.View(func(fl *fleet.Fleet) error {
		var err error
		building, err = parseBuilding(r, fl.Buildings())
		if err != nil {
			return err
		}
		names = fl.Building(building).Recorder().Names()
		return nil
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"building": building, "series": names})
}

// queryPoint is one downsampled bucket; value is null when the bucket had
// no data (and, for AggLast, no carry).
type queryPoint struct {
	AtS   float64  `json:"at_s"`
	Value *float64 `json:"value"`
}

type queryResponse struct {
	Building int          `json:"building"`
	Series   string       `json:"series"`
	Agg      string       `json:"agg"`
	Points   []queryPoint `json:"points"`
}

// parseWindow extracts the from_s/to_s/step_s offsets (seconds since the
// simulated start) shared by the query and CSV paths.
func parseWindow(r *http.Request, start time.Time) (from, to time.Time, step time.Duration, err error) {
	q := r.URL.Query()
	parse := func(key string) (float64, error) {
		raw := q.Get(key)
		if raw == "" {
			return 0, fmt.Errorf("missing query parameter %q", key)
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", key, err)
		}
		return v, nil
	}
	fromS, err := parse("from_s")
	if err != nil {
		return from, to, step, err
	}
	toS, err := parse("to_s")
	if err != nil {
		return from, to, step, err
	}
	stepS, err := parse("step_s")
	if err != nil {
		return from, to, step, err
	}
	return start.Add(secondsToDuration(fromS)), start.Add(secondsToDuration(toS)), secondsToDuration(stepS), nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t, _, ok := s.twinOr404(w, r)
	if !ok {
		return
	}
	from, to, step, err := parseWindow(r, t.Start())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("format") == "csv" {
		s.handleQueryCSV(w, r, t, from, to, step)
		return
	}
	name := r.URL.Query().Get("series")
	if name == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing query parameter \"series\""))
		return
	}
	agg, err := trace.ParseAgg(r.URL.Query().Get("agg"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var building int
	var pts []trace.QueryPoint
	err = t.View(func(fl *fleet.Fleet) error {
		var err error
		building, err = parseBuilding(r, fl.Buildings())
		if err != nil {
			return err
		}
		pts, err = fl.Building(building).Recorder().Query(name,
			trace.Query{From: from, To: to, Step: step, Agg: agg}, nil)
		return err
	})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, trace.ErrNoSeries) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	resp := queryResponse{Building: building, Series: name, Agg: agg.String(), Points: make([]queryPoint, len(pts))}
	for i, p := range pts {
		qp := queryPoint{AtS: p.At.Sub(t.Start()).Seconds()}
		if p.OK {
			v := p.Value
			qp.Value = &v
		}
		resp.Points[i] = qp
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleQueryCSV streams the sample-and-hold CSV export for one or more
// series (comma-separated "series" parameter; empty means every series).
func (s *Server) handleQueryCSV(w http.ResponseWriter, r *http.Request, t *Twin, from, to time.Time, step time.Duration) {
	err := t.View(func(fl *fleet.Fleet) error {
		building, err := parseBuilding(r, fl.Buildings())
		if err != nil {
			return err
		}
		rec := fl.Building(building).Recorder()
		names := rec.Names()
		if raw := r.URL.Query().Get("series"); raw != "" {
			names = strings.Split(raw, ",")
		}
		w.Header().Set("Content-Type", "text/csv")
		return rec.WriteCSV(w, names, from, to, step)
	})
	if err != nil {
		// Headers may already be out; report what we can.
		writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	t, id, ok := s.twinOr404(w, r)
	if !ok {
		return
	}
	snap, err := t.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.twinsnap", id))
	if err := WriteSnapshot(w, snap); err != nil {
		// The body is already streaming; nothing recoverable to send.
		return
	}
}
