package trace

import (
	"errors"
	"fmt"
	"time"
)

// Agg selects the per-bucket aggregate a Query computes.
type Agg int

const (
	// AggLast is sample-and-hold: each bucket reports the most recent
	// value at or before the bucket instant, carrying the previous value
	// across empty buckets — the semantics CSV export and dashboards
	// expect for step-wise signals.
	AggLast Agg = iota
	// AggMin reports the minimum over the bucket window.
	AggMin
	// AggMax reports the maximum over the bucket window.
	AggMax
	// AggMean reports the arithmetic mean over the bucket window.
	AggMean
)

// String returns the aggregate's stable name.
func (a Agg) String() string {
	switch a {
	case AggLast:
		return "last"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggMean:
		return "mean"
	}
	return fmt.Sprintf("trace.Agg(%d)", int(a))
}

// ParseAgg maps an aggregate name ("last", "min", "max", "mean") to its
// Agg value — the inverse of String, for query-string parsing.
func ParseAgg(s string) (Agg, error) {
	switch s {
	case "", "last":
		return AggLast, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "mean":
		return AggMean, nil
	}
	return 0, fmt.Errorf("trace: unknown aggregate %q (want last, min, max, or mean)", s)
}

// Query describes one deterministic downsampled read over a series: a
// sample at every instant From, From+Step, …, up to and including the last
// instant not after To. Bucket k (k >= 1) aggregates the window
// (From+(k-1)·Step, From+k·Step]; bucket 0 covers the single instant From.
//
// Bucket boundaries are a pure function of From and Step — never of the
// series contents — so a ring-retained series answers the same query with
// the same boundaries regardless of which samples retention has evicted:
// eviction can only empty a bucket (or shorten AggLast's lookback), never
// shift one. That stability is what makes downsampled reads reproducible
// while the underlying ring turns over.
type Query struct {
	From, To time.Time
	Step     time.Duration
	Agg      Agg
}

// QueryPoint is one bucket of a query result. OK reports whether the
// bucket had data: for AggLast, whether any sample exists at or before the
// bucket instant; for the windowed aggregates, whether the bucket window
// contained at least one sample.
type QueryPoint struct {
	At    time.Time
	Value float64
	OK    bool
}

// ErrNoSeries is returned by Recorder.Query for an unknown series name.
var ErrNoSeries = errors.New("trace: no such series")

// Query evaluates q over the series in one pass and appends the buckets to
// dst, returning the extended slice. dst's backing array is reused (pass a
// recycled buffer for allocation-free steady-state reads, or nil for a
// fresh one). Samples are visited in time order, so the aggregate folds
// are deterministic.
//
//bzlint:hotpath
func (s *Series) Query(q Query, dst []QueryPoint) ([]QueryPoint, error) {
	if q.Step <= 0 {
		//bzlint:allow hotpath cold validation exit, not on the steady-state read path
		return dst, fmt.Errorf("trace: query step must be positive, got %v", q.Step)
	}
	if q.To.Before(q.From) {
		//bzlint:allow hotpath cold validation exit, not on the steady-state read path
		return dst, fmt.Errorf("trace: query window [%v, %v] is inverted", q.From, q.To)
	}
	dst = dst[:0]
	fromN := q.From.UnixNano()
	stepN := q.Step.Nanoseconds()
	last := int64(q.To.Sub(q.From) / q.Step) // index of the final bucket
	n := s.Len()

	// One forward sweep: i consumes samples in time order; samples before
	// a bucket's window still advance the AggLast carry.
	i := 0
	var carry float64
	haveCarry := false
	for k := int64(0); k <= last; k++ {
		endN := fromN + k*stepN
		// Fold every not-yet-consumed sample at or before the bucket
		// instant. For bucket 0 only the exact From instant is "inside";
		// earlier samples feed the carry alone.
		startN := endN - stepN
		if k == 0 {
			startN = fromN - 1
		}
		inWindow := 0
		minV, maxV, sum := 0.0, 0.0, 0.0
		for i < n {
			p := s.at(i)
			if p.nanos > endN {
				break
			}
			carry, haveCarry = p.value, true
			if p.nanos > startN {
				if inWindow == 0 {
					minV, maxV = p.value, p.value
				} else {
					if p.value < minV {
						minV = p.value
					}
					if p.value > maxV {
						maxV = p.value
					}
				}
				sum += p.value
				inWindow++
			}
			i++
		}
		pt := QueryPoint{At: time.Unix(0, endN).UTC()}
		switch q.Agg {
		case AggLast:
			pt.Value, pt.OK = carry, haveCarry
		case AggMin:
			pt.Value, pt.OK = minV, inWindow > 0
		case AggMax:
			pt.Value, pt.OK = maxV, inWindow > 0
		case AggMean:
			if inWindow > 0 {
				pt.Value, pt.OK = sum/float64(inWindow), true
			}
		}
		dst = append(dst, pt)
	}
	return dst, nil
}

// Query evaluates q over the named series. Unknown names return
// ErrNoSeries (wrapped with the name), so servers can map them to a 404
// without creating empty series as a side effect.
func (r *Recorder) Query(name string, q Query, dst []QueryPoint) ([]QueryPoint, error) {
	s, ok := r.series[name]
	if !ok {
		return dst, fmt.Errorf("trace: series %q: %w", name, ErrNoSeries)
	}
	return s.Query(q, dst)
}
