package trace

import (
	"math"
	"strings"
	"testing"
	"time"
)

func fill(s *Series, t *testing.T, vals ...float64) {
	t.Helper()
	for i, v := range vals {
		if err := s.Append(t0.Add(time.Duration(i)*time.Second), v); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQueryAggregates(t *testing.T) {
	s := NewRecorder().Series("q")
	fill(s, t, 1, 5, 3, 9, 2, 7) // at t0+0s .. t0+5s

	q := Query{From: t0, To: t0.Add(5 * time.Second), Step: 2 * time.Second}

	// Buckets: k=0 instant t0 (sample 1); k=1 window (t0, t0+2s] (5, 3);
	// k=2 window (t0+2s, t0+4s] (9, 2).
	cases := []struct {
		agg  Agg
		want [3]float64
	}{
		{AggLast, [3]float64{1, 3, 2}},
		{AggMin, [3]float64{1, 3, 2}},
		{AggMax, [3]float64{1, 5, 9}},
		{AggMean, [3]float64{1, 4, 5.5}},
	}
	for _, c := range cases {
		q.Agg = c.agg
		pts, err := s.Query(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != 3 {
			t.Fatalf("%v: got %d buckets, want 3", c.agg, len(pts))
		}
		for k, p := range pts {
			if !p.OK {
				t.Errorf("%v bucket %d: not OK", c.agg, k)
			}
			if p.Value != c.want[k] {
				t.Errorf("%v bucket %d = %v, want %v", c.agg, k, p.Value, c.want[k])
			}
			wantAt := t0.Add(time.Duration(2*k) * time.Second)
			if !p.At.Equal(wantAt) {
				t.Errorf("%v bucket %d at %v, want %v", c.agg, k, p.At, wantAt)
			}
		}
	}
}

func TestQueryEmptyBucketsAndCarry(t *testing.T) {
	s := NewRecorder().Series("sparse")
	// Samples only at t0+10s and t0+11s; query from t0 at 5s steps.
	if err := s.Append(t0.Add(10*time.Second), 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(t0.Add(11*time.Second), 6); err != nil {
		t.Fatal(err)
	}
	q := Query{From: t0, To: t0.Add(20 * time.Second), Step: 5 * time.Second, Agg: AggLast}
	pts, err := s.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	// k=0,1 (t0, t0+5s): no data yet. k=2 (t0+10s): 4. k=3, k=4: carry 6.
	wantOK := []bool{false, false, true, true, true}
	wantV := []float64{0, 0, 4, 6, 6}
	for k, p := range pts {
		if p.OK != wantOK[k] || (p.OK && p.Value != wantV[k]) {
			t.Errorf("last bucket %d = (%v, %v), want (%v, %v)", k, p.Value, p.OK, wantV[k], wantOK[k])
		}
	}

	// Windowed aggregates report empty buckets as not-OK, no carry:
	// t0+10s is in bucket 2's window (t0+5s, t0+10s]; t0+11s in bucket 3's.
	q.Agg = AggMean
	pts, err = s.Query(q, pts)
	if err != nil {
		t.Fatal(err)
	}
	wantOK = []bool{false, false, true, true, false}
	for k, p := range pts {
		if p.OK != wantOK[k] {
			t.Errorf("mean bucket %d OK = %v, want %v", k, p.OK, wantOK[k])
		}
	}
	if pts[2].Value != 4 || pts[3].Value != 6 {
		t.Errorf("mean buckets 2,3 = %v, %v; want 4, 6", pts[2].Value, pts[3].Value)
	}
}

func TestQueryWindowEdges(t *testing.T) {
	// A sample exactly on a bucket boundary belongs to the earlier bucket
	// (windows are half-open (start, end]).
	s := NewRecorder().Series("edge")
	if err := s.Append(t0.Add(2*time.Second), 1); err != nil {
		t.Fatal(err)
	}
	q := Query{From: t0, To: t0.Add(4 * time.Second), Step: 2 * time.Second, Agg: AggMax}
	pts, err := s.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pts[1].OK || pts[2].OK {
		t.Errorf("boundary sample must land in bucket 1: got OK = %v, %v", pts[1].OK, pts[2].OK)
	}
}

func TestQueryValidation(t *testing.T) {
	s := NewRecorder().Series("v")
	if _, err := s.Query(Query{From: t0, To: t0.Add(time.Second)}, nil); err == nil {
		t.Error("zero step must be rejected")
	}
	if _, err := s.Query(Query{From: t0, To: t0.Add(time.Second), Step: -time.Second}, nil); err == nil {
		t.Error("negative step must be rejected")
	}
	if _, err := s.Query(Query{From: t0.Add(time.Second), To: t0, Step: time.Second}, nil); err == nil {
		t.Error("inverted window must be rejected")
	}
	// A recycled buffer passed alongside a rejected query comes back
	// untruncated — validation must not clobber the caller's data.
	buf := []QueryPoint{{Value: 42, OK: true}}
	out, err := s.Query(Query{From: t0, To: t0.Add(time.Second)}, buf)
	if err == nil {
		t.Fatal("zero step must be rejected")
	}
	if len(out) != 1 || out[0].Value != 42 {
		t.Errorf("rejected query mangled the caller's buffer: %v", out)
	}
}

// A query over a series that has never seen a sample is not an error: it
// reports the full bucket grid, every bucket empty, under every aggregate.
func TestQueryEmptySeries(t *testing.T) {
	s := NewRecorder().Series("empty")
	q := Query{From: t0, To: t0.Add(10 * time.Second), Step: 2 * time.Second}
	for _, agg := range []Agg{AggLast, AggMin, AggMax, AggMean} {
		q.Agg = agg
		pts, err := s.Query(q, nil)
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		if len(pts) != 6 {
			t.Fatalf("%v: got %d buckets, want 6", agg, len(pts))
		}
		for k, p := range pts {
			if p.OK {
				t.Errorf("%v bucket %d reports data in an empty series", agg, k)
			}
			wantAt := t0.Add(time.Duration(2*k) * time.Second)
			if !p.At.Equal(wantAt) {
				t.Errorf("%v bucket %d at %v, want %v", agg, k, p.At, wantAt)
			}
		}
	}
}

// A query window that ends before the oldest retained sample — e.g. a
// dashboard asking for history the ring has already turned past — yields
// the full bucket grid with every bucket empty. AggLast has no carry to
// offer either: the surviving samples are all after the window, and a
// later sample must never flow backwards into an earlier bucket.
func TestQueryWindowOutsideRetention(t *testing.T) {
	s := NewRecorder().Series("gone")
	s.SetRetention(8)
	for i := 0; i < 100; i++ {
		if err := s.Append(t0.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Ring now holds t0+92s .. t0+99s; query t0 .. t0+30s, fully evicted.
	q := Query{From: t0, To: t0.Add(30 * time.Second), Step: 5 * time.Second}
	for _, agg := range []Agg{AggLast, AggMin, AggMax, AggMean} {
		q.Agg = agg
		pts, err := s.Query(q, nil)
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		if len(pts) != 7 {
			t.Fatalf("%v: got %d buckets, want 7", agg, len(pts))
		}
		for k, p := range pts {
			if p.OK {
				t.Errorf("%v bucket %d = %v reports data from a fully evicted window", agg, k, p.Value)
			}
		}
	}
}

func TestRecorderQueryUnknownSeries(t *testing.T) {
	r := NewRecorder()
	_, err := r.Query("nope", Query{From: t0, To: t0, Step: time.Second}, nil)
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("want wrapped ErrNoSeries naming the series, got %v", err)
	}
	if !errorsIs(err, ErrNoSeries) {
		t.Fatalf("want ErrNoSeries in chain, got %v", err)
	}
	if r.Has("nope") {
		t.Error("Query must not create series as a side effect")
	}
}

// errorsIs avoids importing errors twice in tests split across files.
func errorsIs(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Bucket boundaries depend only on From/Step, never on which samples
// retention has evicted: the same query against a full-history series and
// a ring that has dropped the early samples reports identical buckets
// wherever the ring still has the window's data.
func TestQueryStableUnderRetentionEviction(t *testing.T) {
	full := NewRecorder().Series("full")
	ring := NewRecorder().Series("ring")
	ring.SetRetention(16)
	for i := 0; i < 100; i++ {
		v := math.Sin(float64(i) / 7)
		if err := full.Append(t0.Add(time.Duration(i)*time.Second), v); err != nil {
			t.Fatal(err)
		}
		if err := ring.Append(t0.Add(time.Duration(i)*time.Second), v); err != nil {
			t.Fatal(err)
		}
	}
	q := Query{From: t0, To: t0.Add(99 * time.Second), Step: 4 * time.Second, Agg: AggMean}
	fp, err := full.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := ring.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp) != len(rp) {
		t.Fatalf("bucket counts differ: %d vs %d", len(fp), len(rp))
	}
	// The ring holds samples 84..99: buckets whose window lies fully in
	// that range must be bit-identical; earlier ring buckets are empty.
	for k := range fp {
		if !fp[k].At.Equal(rp[k].At) {
			t.Fatalf("bucket %d boundary moved under eviction: %v vs %v", k, fp[k].At, rp[k].At)
		}
	}
	lastK := len(fp) - 1
	if !rp[lastK].OK || rp[lastK].Value != fp[lastK].Value {
		t.Errorf("final bucket differs: ring (%v, %v) vs full (%v, %v)",
			rp[lastK].Value, rp[lastK].OK, fp[lastK].Value, fp[lastK].OK)
	}
	if rp[2].OK {
		t.Error("evicted window must report an empty bucket, not shifted data")
	}
}

// WriteCSV is a stack of AggLast queries; its sample-and-hold cells must
// match Series.At at every row instant.
func TestQueryLastMatchesAt(t *testing.T) {
	s := NewRecorder().Series("hold")
	fill(s, t, 10, 20, 30, 40, 50)
	q := Query{From: t0.Add(-2 * time.Second), To: t0.Add(8 * time.Second), Step: 1500 * time.Millisecond, Agg: AggLast}
	pts, err := s.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		v, ok := s.At(p.At)
		if ok != p.OK || (ok && v != p.Value) {
			t.Errorf("at %v: Query (%v, %v) vs At (%v, %v)", p.At, p.Value, p.OK, v, ok)
		}
	}
}

// Steady-state telemetry reads are allocation-free: a query over a
// retained ring into a recycled buffer must not allocate once the buffer
// has grown to the bucket count.
func TestQuerySteadyStateAllocs(t *testing.T) {
	s := NewRecorder().Series("alloc")
	s.SetRetention(64)
	for i := 0; i < 200; i++ {
		if err := s.Append(t0.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	q := Query{From: t0.Add(100 * time.Second), To: t0.Add(199 * time.Second), Step: 5 * time.Second, Agg: AggMean}
	buf, err := s.Query(q, nil) // warm the buffer to full bucket capacity
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf, err = s.Query(q, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("steady-state Query allocates %.1f/op, want 0", allocs)
	}
}
