package trace

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2014, 3, 10, 13, 0, 0, 0, time.UTC)

func TestSeriesAppendOrdered(t *testing.T) {
	s := NewRecorder().Series("temp")
	if err := s.Append(t0, 25); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(t0.Add(time.Second), 26); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(t0.Add(time.Second), 26.5); err != nil {
		t.Fatalf("equal-time append should be allowed: %v", err)
	}
	if err := s.Append(t0, 24); err == nil {
		t.Fatal("out-of-order append should fail")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
}

func TestSeriesAt(t *testing.T) {
	s := NewRecorder().Series("x")
	for i := 0; i < 5; i++ {
		if err := s.Append(t0.Add(time.Duration(i)*10*time.Second), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tests := []struct {
		offset time.Duration
		want   float64
		ok     bool
	}{
		{-time.Second, 0, false},
		{0, 0, true},
		{5 * time.Second, 0, true},
		{10 * time.Second, 1, true},
		{39 * time.Second, 3, true},
		{time.Hour, 4, true},
	}
	for _, tc := range tests {
		got, ok := s.At(t0.Add(tc.offset))
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("At(+%v) = %v,%v, want %v,%v", tc.offset, got, ok, tc.want, tc.ok)
		}
	}
}

func TestSeriesLast(t *testing.T) {
	s := NewRecorder().Series("x")
	if _, ok := s.Last(); ok {
		t.Error("Last on empty series should report !ok")
	}
	_ = s.Append(t0, 1)
	_ = s.Append(t0.Add(time.Second), 2)
	if v, ok := s.Last(); !ok || v != 2 {
		t.Errorf("Last = %v,%v, want 2,true", v, ok)
	}
}

func TestSeriesStats(t *testing.T) {
	s := NewRecorder().Series("x")
	for i, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		_ = s.Append(t0.Add(time.Duration(i)*time.Second), v)
	}
	st := s.Stats()
	if st.N != 8 || st.Min != 2 || st.Max != 9 {
		t.Errorf("Stats = %+v, want N=8 Min=2 Max=9", st)
	}
	if math.Abs(st.Mean-5) > 1e-9 {
		t.Errorf("Mean = %v, want 5", st.Mean)
	}
	if math.Abs(st.Std-2) > 1e-9 {
		t.Errorf("Std = %v, want 2", st.Std)
	}
}

func TestStatsEmpty(t *testing.T) {
	s := NewRecorder().Series("x")
	if st := s.Stats(); st.N != 0 || st.Min != 0 || st.Max != 0 {
		t.Errorf("empty Stats = %+v, want zero value", st)
	}
}

func TestStatsBetween(t *testing.T) {
	s := NewRecorder().Series("x")
	for i := 0; i < 10; i++ {
		_ = s.Append(t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	st := s.StatsBetween(t0.Add(2*time.Minute), t0.Add(5*time.Minute))
	if st.N != 4 || st.Min != 2 || st.Max != 5 {
		t.Errorf("StatsBetween = %+v, want N=4 Min=2 Max=5", st)
	}
}

func TestFirstCrossing(t *testing.T) {
	s := NewRecorder().Series("temp")
	// Descending from 28.9 toward 25.
	for i := 0; i <= 40; i++ {
		_ = s.Append(t0.Add(time.Duration(i)*time.Minute), 28.9-float64(i)*0.15)
	}
	at, ok := s.FirstCrossing(25.0, true)
	if !ok {
		t.Fatal("no crossing found")
	}
	want := t0.Add(26 * time.Minute) // 28.9 - 26*0.15 = 25.0
	if !at.Equal(want) {
		t.Errorf("crossing at %v, want %v", at, want)
	}
	if _, ok := s.FirstCrossing(10, true); ok {
		t.Error("found impossible crossing")
	}
	// Ascending crossing on the same series must be immediate (starts at 28.9 >= 26).
	at, ok = s.FirstCrossing(26, false)
	if !ok || !at.Equal(t0) {
		t.Errorf("ascending crossing = %v,%v, want t0,true", at, ok)
	}
}

func TestRecorderSeriesIdentityAndNames(t *testing.T) {
	r := NewRecorder()
	a := r.Series("a")
	b := r.Series("b")
	if r.Series("a") != a || r.Series("b") != b {
		t.Error("Series did not return the same instance on repeat lookup")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v, want [a b]", names)
	}
	if !r.Has("a") || r.Has("zzz") {
		t.Error("Has misreports series existence")
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	for i := 0; i <= 4; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		if err := r.Record("temp", at, 25+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	err := r.WriteCSV(&sb, []string{"temp", "missing"}, t0, t0.Add(2*time.Second), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), sb.String())
	}
	if lines[0] != "elapsed_s,temp,missing" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.0,25.0000,") {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.HasSuffix(lines[1], ",") {
		t.Errorf("missing series should render empty cell: %q", lines[1])
	}
}

func TestWriteCSVRejectsBadPeriod(t *testing.T) {
	r := NewRecorder()
	var sb strings.Builder
	if err := r.WriteCSV(&sb, nil, t0, t0.Add(time.Second), 0); err == nil {
		t.Error("zero period should error")
	}
}

func TestCDF(t *testing.T) {
	xs, ps := CDF([]float64{2, 2, 64, 4, 2, 64})
	wantXs := []float64{2, 4, 64}
	wantPs := []float64{0.5, 4.0 / 6.0, 1}
	if len(xs) != len(wantXs) {
		t.Fatalf("xs = %v, want %v", xs, wantXs)
	}
	for i := range wantXs {
		if xs[i] != wantXs[i] || math.Abs(ps[i]-wantPs[i]) > 1e-12 {
			t.Errorf("CDF[%d] = (%v,%v), want (%v,%v)", i, xs[i], ps[i], wantXs[i], wantPs[i])
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	xs, ps := CDF(nil)
	if xs != nil || ps != nil {
		t.Errorf("CDF(nil) = %v,%v, want nil,nil", xs, ps)
	}
}

// Property: CDF xs are strictly increasing, ps non-decreasing and end at 1.
func TestCDFWellFormedProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v % 16)
		}
		xs, ps := CDF(vals)
		if !sort.Float64sAreSorted(xs) {
			return false
		}
		for i := 1; i < len(xs); i++ {
			if xs[i] == xs[i-1] || ps[i] < ps[i-1] {
				return false
			}
		}
		return math.Abs(ps[len(ps)-1]-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Stats.Min <= Mean <= Max for any non-empty series.
func TestStatsOrderingProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewRecorder().Series("x")
		for i, v := range raw {
			_ = s.Append(t0.Add(time.Duration(i)*time.Second), float64(v))
		}
		st := s.Stats()
		return st.Min <= st.Mean+1e-9 && st.Mean <= st.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpenReturnsSameHandle(t *testing.T) {
	r := NewRecorder()
	s := r.Open("temp.subsp1")
	if s != r.Series("temp.subsp1") || s != r.Open("temp.subsp1") {
		t.Error("Open and Series must return the same handle for a name")
	}
	if !r.Has("temp.subsp1") {
		t.Error("Open should create the series")
	}
}

func TestGrowMakesAppendAllocationFree(t *testing.T) {
	s := NewRecorder().Open("x")
	const n = 1000
	s.Grow(n + 1) // AllocsPerRun warms up with one extra call
	i := 0
	allocs := testing.AllocsPerRun(n, func() {
		_ = s.Append(t0.Add(time.Duration(i)*time.Second), float64(i))
		i++
	})
	if allocs != 0 {
		t.Errorf("Append after Grow allocates %.1f/op, want 0", allocs)
	}
	if s.Len() < n {
		t.Errorf("Len = %d after %d appends", s.Len(), n)
	}
	// Growing an already-roomy series is a no-op.
	before := s.Len()
	s.Grow(0)
	s.Grow(-5)
	if s.Len() != before {
		t.Error("Grow must not change the sample count")
	}
}
