package trace

import (
	"strings"
	"testing"
	"time"
)

var retT0 = time.Date(2014, 3, 10, 13, 0, 0, 0, time.UTC)

func appendN(t *testing.T, s *Series, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		if err := s.Append(retT0.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSetRetentionKeepsMostRecentWindow(t *testing.T) {
	s := NewRecorder().Series("win")
	appendN(t, s, 0, 10)
	s.SetRetention(4)
	if got := s.Len(); got != 4 {
		t.Fatalf("Len after SetRetention(4) = %d, want 4", got)
	}
	pts := s.Points()
	for i, p := range pts {
		if want := float64(6 + i); p.Value != want {
			t.Errorf("point %d = %v, want %v", i, p.Value, want)
		}
	}
	// Wrap the ring several times; the window must slide.
	appendN(t, s, 10, 11)
	pts = s.Points()
	if len(pts) != 4 {
		t.Fatalf("Len after wrap = %d, want 4", len(pts))
	}
	for i, p := range pts {
		if want := float64(17 + i); p.Value != want {
			t.Errorf("wrapped point %d = %v, want %v", i, p.Value, want)
		}
	}
	if v, ok := s.Last(); !ok || v != 20 {
		t.Errorf("Last = %v, %v, want 20, true", v, ok)
	}
	// Readers over the ring: stats, crossings, time queries, exact dump.
	st := s.Stats()
	if st.N != 4 || st.Min != 17 || st.Max != 20 {
		t.Errorf("Stats = %+v, want N=4 min=17 max=20", st)
	}
	if at, ok := s.FirstCrossing(19, false); !ok || at != retT0.Add(19*time.Second) {
		t.Errorf("FirstCrossing(19) = %v, %v", at, ok)
	}
	if v, ok := s.At(retT0.Add(18500 * time.Millisecond)); !ok || v != 18 {
		t.Errorf("At(18.5s) = %v, %v, want 18, true", v, ok)
	}
	st = s.StatsBetween(retT0.Add(18*time.Second), retT0.Add(19*time.Second))
	if st.N != 2 || st.Mean != 18.5 {
		t.Errorf("StatsBetween = %+v, want N=2 mean=18.5", st)
	}
}

func TestSetRetentionZeroRestoresUnbounded(t *testing.T) {
	s := NewRecorder().Series("back")
	s.SetRetention(3)
	appendN(t, s, 0, 8) // ring holds 5, 6, 7
	s.SetRetention(0)
	if got := s.Retention(); got != 0 {
		t.Fatalf("Retention = %d, want 0", got)
	}
	appendN(t, s, 8, 4)
	pts := s.Points()
	want := []float64{5, 6, 7, 8, 9, 10, 11}
	if len(pts) != len(want) {
		t.Fatalf("Len = %d, want %d", len(pts), len(want))
	}
	for i, p := range pts {
		if p.Value != want[i] {
			t.Errorf("point %d = %v, want %v", i, p.Value, want[i])
		}
	}
}

func TestRetentionRejectsOutOfOrderAcrossWrap(t *testing.T) {
	s := NewRecorder().Series("order")
	s.SetRetention(2)
	appendN(t, s, 0, 5)
	if err := s.Append(retT0.Add(3*time.Second), 3); err == nil {
		t.Error("out-of-order append into a wrapped ring was accepted")
	}
}

func TestWriteExactCoversRingSeries(t *testing.T) {
	r := NewRecorder()
	s := r.Series("ring")
	s.SetRetention(2)
	appendN(t, s, 0, 4)
	var sb strings.Builder
	if err := r.WriteExact(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("WriteExact emitted %d lines, want 2 (ring window)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "ring ") {
		t.Errorf("unexpected line %q", lines[0])
	}
}

// TestRecorderRecordZeroAlloc pins the Record hot path: through the
// string-keyed convenience API, a pre-grown unbounded series and a
// retained ring series must both append with zero allocations per call —
// the ring by reusing its slots, the chunked series from capacity
// reserved by Grow. A regression here (a new box, a map rehash on the
// lookup path, a chunk alloc inside the measured window) fails hard.
func TestRecorderRecordZeroAlloc(t *testing.T) {
	const rounds = 1000

	r := NewRecorder()
	grown := r.Series("grown")
	grown.Grow(rounds + 1)
	i := 0
	allocs := testing.AllocsPerRun(rounds, func() {
		if err := r.Record("grown", retT0.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("Record on a pre-grown series allocates %.2f per op, want 0", allocs)
	}

	ring := r.Series("ring")
	ring.SetRetention(64)
	// Fill past capacity first so the measured window is pure slot reuse.
	appendN(t, ring, 0, 200)
	j := 200
	allocs = testing.AllocsPerRun(rounds, func() {
		if err := r.Record("ring", retT0.Add(time.Duration(j)*time.Second), float64(j)); err != nil {
			t.Fatal(err)
		}
		j++
	})
	if allocs != 0 {
		t.Errorf("Record on a retained ring series allocates %.2f per op, want 0 (slot reuse)", allocs)
	}
}
