package trace

import (
	"math"
	"strings"
	"testing"
	"time"
)

// Export → restore into a fresh recorder reproduces WriteExact output
// byte-for-byte, including ring retention mode and NaN payloads.
func TestRecorderStateRoundTrip(t *testing.T) {
	r := NewRecorder()
	a := r.Series("a")
	b := r.Series("b")
	b.SetRetention(8)
	for i := 0; i < 20; i++ {
		v := math.Sqrt(float64(i)) * 1.0000000000000002
		if err := a.Append(t0.Add(time.Duration(i)*time.Second), v); err != nil {
			t.Fatal(err)
		}
		if err := b.Append(t0.Add(time.Duration(i)*time.Second), -v); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Append(t0.Add(20*time.Second), math.NaN()); err != nil {
		t.Fatal(err)
	}

	st := r.ExportState()
	fresh := NewRecorder()
	// A rebuilt system opens its series (empty) before restore arrives.
	fresh.Series("a")
	fresh.Series("b")
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}

	var want, got strings.Builder
	if err := r.WriteExact(&want); err != nil {
		t.Fatal(err)
	}
	if err := fresh.WriteExact(&got); err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Fatal("restored recorder WriteExact differs from original")
	}
	if fresh.Series("b").Retention() != 8 {
		t.Errorf("retention = %d, want 8", fresh.Series("b").Retention())
	}

	// The restored ring must keep ring behavior: further appends evict.
	rb := fresh.Series("b")
	if err := rb.Append(t0.Add(30*time.Second), 1); err != nil {
		t.Fatal(err)
	}
	if rb.Len() != 8 {
		t.Errorf("ring len after append = %d, want 8", rb.Len())
	}
}
