package trace

// Snapshot support: a recorder's contents exported as plain data. Values
// round-trip bit-exactly (float64 payloads are carried as-is; encoders like
// gob preserve the bit pattern), so a restored recorder's WriteExact output
// is byte-identical to the original's — the property the twin round-trip
// tests pin.

// SeriesState is one series' captured contents in time order, plus its
// retention mode.
//
//bzlint:state ExportState RestoreState
type SeriesState struct {
	Name      string
	Retention int // ring capacity; 0 for unbounded chunked storage
	Points    []Point
}

// RecorderState is every series in creation order.
//
//bzlint:state ExportState RestoreState
type RecorderState struct {
	Series []SeriesState
}

// ExportState captures all series, in creation order, with their retained
// samples.
func (r *Recorder) ExportState() RecorderState {
	st := RecorderState{Series: make([]SeriesState, 0, len(r.order))}
	for _, name := range r.order {
		s := r.series[name]
		st.Series = append(st.Series, SeriesState{
			Name:      name,
			Retention: s.retain,
			Points:    s.Points(),
		})
	}
	return st
}

// RestoreState replaces each named series' contents and retention with the
// captured ones, creating series as needed. Series the recorder already
// holds but the state does not are left untouched (a rebuilt system opens
// its series empty before restore, so in practice the state covers them
// all).
func (r *Recorder) RestoreState(st RecorderState) error {
	for _, ss := range st.Series {
		s := r.Series(ss.Name)
		s.chunks, s.spare = nil, nil
		s.retain, s.ring, s.head, s.rlen = 0, nil, 0, 0
		if ss.Retention > 0 {
			s.SetRetention(ss.Retention)
		}
		for _, p := range ss.Points {
			if err := s.Append(p.At, p.Value); err != nil {
				return err
			}
		}
	}
	return nil
}
