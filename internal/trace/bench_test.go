package trace

import (
	"testing"
	"time"
)

var benchT0 = time.Date(2014, 3, 10, 13, 0, 0, 0, time.UTC)

// BenchmarkSeriesAppend measures the amortized cost of growing a series
// one sample at a time — the simulator's per-tick recording primitive.
// The geometric growth of the backing array keeps allocs/op near zero.
func BenchmarkSeriesAppend(b *testing.B) {
	s := NewRecorder().Series("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(benchT0.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeriesAppendPregrown measures the strictly allocation-free
// path: capacity reserved via Grow before the loop, as the core trace
// recorder does for a known horizon.
func BenchmarkSeriesAppendPregrown(b *testing.B) {
	s := NewRecorder().Series("bench")
	s.Grow(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(benchT0.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecorderRecord measures the convenience string-keyed path for
// contrast: every sample pays a map lookup on the series name. Hot loops
// should Open once and Append instead.
func BenchmarkRecorderRecord(b *testing.B) {
	r := NewRecorder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Record("bench", benchT0.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
