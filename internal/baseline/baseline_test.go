package baseline

import (
	"context"
	"math"
	"testing"
	"time"

	"bubblezero/internal/psychro"
	"bubblezero/internal/sim"
	"bubblezero/internal/thermal"
)

var testStart = time.Date(2014, 3, 10, 13, 0, 0, 0, time.UTC)

func newRig(t *testing.T) (*Unit, *thermal.Room, *sim.Engine) {
	t.Helper()
	room, err := thermal.NewRoomAtOutdoor(thermal.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	unit, err := New(DefaultConfig(), room)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine(sim.MustClock(testStart, time.Second), 17)
	e.Register(unit)
	e.Register(room)
	return unit, room, e
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.MaxFlowM3s = 0 },
		func(c *Config) { c.FreshAirFraction = -0.1 },
		func(c *Config) { c.FreshAirFraction = 1.1 },
		func(c *Config) { c.FanMaxPowerW = -1 },
		func(c *Config) { c.SupplyDewC = c.SupplyAirC + 1 },
		func(c *Config) { c.Chiller.Eta = 0 },
		func(c *Config) { c.PID.OutMax = -1 },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate", i)
		}
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Error("nil room accepted")
	}
}

func TestAirConReachesSetpoint(t *testing.T) {
	unit, room, e := newRig(t)
	if err := e.RunFor(context.Background(), 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := room.AverageT(); math.Abs(got-25) > 0.5 {
		t.Errorf("room settled at %v °C, want ≈25", got)
	}
	// 8 °C supply air overdries: the room dew point must fall well below
	// the outdoor 27.4 °C (and typically below even the 18 °C target).
	if dew := room.AverageDewPoint(); dew > 19 {
		t.Errorf("room dew %v, want strong dehumidification", dew)
	}
	if unit.Flow() <= 0 {
		t.Error("unit idle at steady state despite envelope load")
	}
}

func TestAirConCOPNearPaperValue(t *testing.T) {
	unit, _, e := newRig(t)
	// Boot transient.
	if err := e.RunFor(context.Background(), time.Hour); err != nil {
		t.Fatal(err)
	}
	unit.ResetCOP()
	if err := e.RunFor(context.Background(), time.Hour); err != nil {
		t.Fatal(err)
	}
	cop := unit.COP().Value()
	// Paper (and the literature it cites): traditional systems ≈2.8.
	if cop < 2.3 || cop > 3.2 {
		t.Errorf("AirCon COP = %.2f, want ≈2.8", cop)
	}
}

func TestAirConIdleWhenRoomCold(t *testing.T) {
	cfg := thermal.DefaultConfig()
	room, err := thermal.NewRoom(cfg, psychro.NewState(21, 40, 0), 450)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := New(DefaultConfig(), room)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine(sim.MustClock(testStart, time.Second), 17)
	e.Register(unit)
	e.Register(room)
	if err := e.RunFor(context.Background(), time.Minute); err != nil {
		t.Fatal(err)
	}
	if unit.Flow() > 0.001 {
		t.Errorf("unit blowing %v m³/s into an already-cold room", unit.Flow())
	}
	if unit.PowerW() != 0 {
		t.Errorf("idle power = %v, want 0", unit.PowerW())
	}
}

func TestResetCOPClears(t *testing.T) {
	unit, _, e := newRig(t)
	if err := e.RunFor(context.Background(), 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if unit.COP().ConsumedJ == 0 {
		t.Fatal("no consumption recorded")
	}
	unit.ResetCOP()
	if unit.COP().ConsumedJ != 0 || unit.COP().RemovedJ != 0 {
		t.Error("ResetCOP did not clear accumulators")
	}
}
