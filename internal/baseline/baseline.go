// Package baseline implements the conventional "AirCon" HVAC system the
// paper compares against in Figure 11: a single all-air unit that uses
// ≈8 °C supply air for cooling, dehumidification, and ventilation at
// once. Because every joule is moved at the 8 °C working temperature, the
// temperature lift — and therefore the exergy cost — is high, and the
// measured COP lands around 2.8 (the value the paper cites from [23][26])
// instead of BubbleZERO's 4.07.
package baseline

import (
	"fmt"

	"bubblezero/internal/energy"
	"bubblezero/internal/exergy"
	"bubblezero/internal/pid"
	"bubblezero/internal/psychro"
	"bubblezero/internal/sim"
	"bubblezero/internal/thermal"
)

// Config parameterises the AirCon unit.
type Config struct {
	// TPref is the thermostat setpoint in °C.
	TPref float64
	// SupplyAirC is the coil discharge air temperature (the traditional
	// "as low as 8 °C air for both cooling and dehumidification").
	SupplyAirC float64
	// SupplyDewC is the coil discharge dew point (air leaves the coil
	// nearly saturated).
	SupplyDewC float64
	// MaxFlowM3s is the air handler's total supply capacity.
	MaxFlowM3s float64
	// FreshAirFraction is the outdoor-air fraction mixed into the return
	// stream for ventilation.
	FreshAirFraction float64
	// FanMaxPowerW is the air-handler fan draw at full flow.
	FanMaxPowerW float64
	// Chiller is the refrigeration model (same machine class as
	// BubbleZERO's, producing a much colder medium).
	Chiller exergy.Chiller
	// PID is the supply-flow controller configuration.
	PID pid.Config
}

// DefaultConfig returns the calibrated conventional system.
func DefaultConfig() Config {
	return Config{
		TPref:            25,
		SupplyAirC:       8,
		SupplyDewC:       7.5,
		MaxFlowM3s:       0.12,
		FreshAirFraction: 0.15,
		FanMaxPowerW:     60,
		Chiller:          exergy.DefaultChiller(),
		PID: pid.Config{
			Kp:      0.04,
			Ki:      0.0004,
			OutMin:  0,
			OutMax:  0.12,
			Reverse: true,
		},
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.MaxFlowM3s <= 0:
		return fmt.Errorf("baseline: MaxFlowM3s must be > 0, got %v", c.MaxFlowM3s)
	case c.FreshAirFraction < 0 || c.FreshAirFraction > 1:
		return fmt.Errorf("baseline: FreshAirFraction must be in [0, 1], got %v", c.FreshAirFraction)
	case c.FanMaxPowerW < 0:
		return fmt.Errorf("baseline: FanMaxPowerW must be >= 0, got %v", c.FanMaxPowerW)
	case c.SupplyDewC > c.SupplyAirC:
		return fmt.Errorf("baseline: SupplyDewC (%v) cannot exceed SupplyAirC (%v)",
			c.SupplyDewC, c.SupplyAirC)
	}
	if err := c.Chiller.Validate(); err != nil {
		return err
	}
	return c.PID.Validate()
}

// Unit is the AirCon system operating on a thermal.Room via wired
// sensing (no WSN — the conventional system is centrally wired).
type Unit struct {
	cfg  Config
	room *thermal.Room
	ctrl *pid.Controller

	flow     float64 // current total supply flow, m³/s
	coilLoad float64 // W
	elec     float64 // W (chiller + fan)
	cop      energy.COP
}

var _ sim.Component = (*Unit)(nil)

// New builds an AirCon unit over the given room.
func New(cfg Config, room *thermal.Room) (*Unit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if room == nil {
		return nil, fmt.Errorf("baseline: room must not be nil")
	}
	ctrl, err := pid.New(cfg.PID)
	if err != nil {
		return nil, err
	}
	ctrl.SetSetpoint(cfg.TPref)
	return &Unit{cfg: cfg, room: room, ctrl: ctrl}, nil
}

// Name implements sim.Component.
func (u *Unit) Name() string { return "baseline.aircon" }

// Flow returns the current supply flow in m³/s.
func (u *Unit) Flow() float64 { return u.flow }

// CoilLoadW returns the last step's coil thermal load.
func (u *Unit) CoilLoadW() float64 { return u.coilLoad }

// PowerW returns the last step's electrical draw.
func (u *Unit) PowerW() float64 { return u.elec }

// COP returns the accumulated coefficient-of-performance measurement.
func (u *Unit) COP() energy.COP { return u.cop }

// ResetCOP clears the COP accumulators (e.g. after the boot transient, so
// the steady-state hour is measured alone).
func (u *Unit) ResetCOP() { u.cop = energy.COP{} }

// Step implements sim.Component: thermostat → supply flow → coil energy
// balance → room boundary conditions.
func (u *Unit) Step(env *sim.Env) {
	dt := env.Dt()
	u.flow = u.ctrl.Update(u.room.AverageT(), dt)
	if u.flow <= 0 {
		u.coilLoad = 0
		u.elec = 0
		for z := 0; z < thermal.NumZones; z++ {
			u.room.SetVent(thermal.ZoneID(z), thermal.VentInput{})
		}
		return
	}

	outdoor := u.room.Outdoor()
	supply := psychro.NewStateDewPoint(u.cfg.SupplyAirC, u.cfg.SupplyDewC, outdoor.P)

	// Return air is the average room state mixed with the fresh-air
	// fraction; the coil cools the mixture down to the supply state.
	ret := psychro.State{T: u.room.AverageT(), W: u.room.AverageW(), P: outdoor.P}
	mdot := u.flow * psychro.DryAirDensity(ret.T, ret.P)
	mix := psychro.Mix(ret, mdot*(1-u.cfg.FreshAirFraction), outdoor, mdot*u.cfg.FreshAirFraction)
	u.coilLoad = mdot * (mix.Enthalpy() - supply.Enthalpy()) * 1000
	if u.coilLoad < 0 {
		u.coilLoad = 0
	}

	chillerElec := u.cfg.Chiller.Power(u.coilLoad, u.cfg.SupplyAirC, outdoor.T)
	frac := u.flow / u.cfg.MaxFlowM3s
	fan := u.cfg.FanMaxPowerW * frac * frac * frac
	u.elec = chillerElec + fan

	// The removed heat the paper's COP uses is what the coil moves.
	u.cop.Add(u.coilLoad, u.elec, dt)

	perZone := u.flow / thermal.NumZones
	for z := 0; z < thermal.NumZones; z++ {
		u.room.SetVent(thermal.ZoneID(z), thermal.VentInput{
			VolFlow:      perZone,
			Supply:       supply,
			SupplyCO2PPM: u.room.Config().OutdoorCO2PPM,
		})
	}
}
