package exergy_test

import (
	"fmt"

	"bubblezero/internal/exergy"
)

// The paper's §II argument in two lines: the same kilowatt of cooling
// carries half the exergy at 18 °C as at 8 °C, so the chiller that
// produces 18 °C water runs at a much higher COP.
func ExampleChiller_COP() {
	c := exergy.DefaultChiller()
	outdoor := 28.9
	fmt.Printf("exergy per kW at 18 °C: %.0f W\n", exergy.OfHeatFlux(1000, 18, outdoor))
	fmt.Printf("exergy per kW at  8 °C: %.0f W\n", exergy.OfHeatFlux(1000, 8, outdoor))
	fmt.Printf("chiller COP at 18 °C: %.2f\n", c.COP(18, outdoor))
	fmt.Printf("chiller COP at  8 °C: %.2f\n", c.COP(8, outdoor))
	// Output:
	// exergy per kW at 18 °C: 36 W
	// exergy per kW at  8 °C: 69 W
	// chiller COP at 18 °C: 4.56
	// chiller COP at  8 °C: 2.88
}

// Power converts a thermal duty into electrical draw; this reproduces the
// paper's radiant-module measurement (964.8 W of heat for ≈213 W of
// electricity).
func ExampleChiller_Power() {
	c := exergy.DefaultChiller()
	fmt.Printf("%.0f W electric\n", c.Power(964.8, 18, 28.9))
	// Output:
	// 212 W electric
}
