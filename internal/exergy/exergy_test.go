package exergy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOfHeatFluxSign(t *testing.T) {
	// Moving heat at a temperature below reference carries positive exergy
	// (work must be supplied to create the cold).
	if ex := OfHeatFlux(1000, 18, 28.9); ex <= 0 {
		t.Errorf("exergy of 18°C flux vs 28.9°C ref = %v, want > 0", ex)
	}
	// At the reference temperature the exergy is zero.
	if ex := OfHeatFlux(1000, 25, 25); math.Abs(ex) > 1e-9 {
		t.Errorf("exergy at reference temp = %v, want 0", ex)
	}
}

func TestOfHeatFluxLowerTempMoreExergy(t *testing.T) {
	// The paper's core claim: a higher temperature gradient (lower working
	// temperature for cooling) costs dramatically more exergy.
	ex18 := math.Abs(OfHeatFlux(1000, 18, 28.9))
	ex8 := math.Abs(OfHeatFlux(1000, 8, 28.9))
	if ex8 <= ex18 {
		t.Errorf("exergy at 8°C (%v) should exceed exergy at 18°C (%v)", ex8, ex18)
	}
	if ratio := ex8 / ex18; ratio < 1.5 {
		t.Errorf("exergy ratio 8°C/18°C = %.2f, expected well above 1.5", ratio)
	}
}

func TestOfHeatFluxLinearInQ(t *testing.T) {
	f := func(qRaw uint16) bool {
		q := float64(qRaw)
		return math.Abs(OfHeatFlux(2*q, 18, 28.9)-2*OfHeatFlux(q, 18, 28.9)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCarnotCOPCoolingKnownValue(t *testing.T) {
	// Evap 0°C, cond 30°C: 273.15/30 ≈ 9.105.
	got := CarnotCOPCooling(0, 30)
	if math.Abs(got-9.105) > 0.01 {
		t.Errorf("CarnotCOPCooling(0,30) = %v, want ≈9.105", got)
	}
}

func TestCarnotCOPCoolingNoLift(t *testing.T) {
	if got := CarnotCOPCooling(20, 20); !math.IsInf(got, 1) {
		t.Errorf("zero lift COP = %v, want +Inf", got)
	}
	if got := CarnotCOPCooling(25, 20); !math.IsInf(got, 1) {
		t.Errorf("negative lift COP = %v, want +Inf", got)
	}
}

func TestCarnotCOPDecreasesWithLift(t *testing.T) {
	prev := math.Inf(1)
	for lift := 5.0; lift <= 50; lift += 5 {
		cop := CarnotCOPCooling(20-lift, 20)
		if cop >= prev {
			t.Fatalf("Carnot COP not decreasing at lift %v", lift)
		}
		prev = cop
	}
}

func TestChillerValidate(t *testing.T) {
	valid := DefaultChiller()
	if err := valid.Validate(); err != nil {
		t.Errorf("default chiller invalid: %v", err)
	}
	bad := []Chiller{
		{Eta: 0, EvapApproachK: 4, CondApproachK: 4},
		{Eta: 1.5, EvapApproachK: 4, CondApproachK: 4},
		{Eta: 0.3, EvapApproachK: -1, CondApproachK: 4},
		{Eta: 0.3, EvapApproachK: 4, CondApproachK: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("chiller %d should be invalid: %+v", i, c)
		}
	}
}

func TestDefaultChillerReproducesPaperCOPBand(t *testing.T) {
	c := DefaultChiller()
	outdoor := 28.9
	// Radiant loop: 18 °C supply water → paper measures COP 4.52.
	radiant := c.COP(18, outdoor)
	if radiant < 4.0 || radiant > 5.1 {
		t.Errorf("radiant-loop chiller COP = %.2f, want in [4.0, 5.1] (paper 4.52)", radiant)
	}
	// Ventilation loop: 8 °C coil water → paper measures COP 2.82.
	vent := c.COP(8, outdoor)
	if vent < 2.5 || vent > 3.3 {
		t.Errorf("vent-loop chiller COP = %.2f, want in [2.5, 3.3] (paper 2.82)", vent)
	}
	if radiant <= vent {
		t.Errorf("18°C loop COP (%.2f) must exceed 8°C loop COP (%.2f)", radiant, vent)
	}
}

func TestChillerPower(t *testing.T) {
	c := DefaultChiller()
	p := c.Power(964.8, 18, 28.9)
	// Paper: radiant module moves 964.8 W with 213.4 W of electricity.
	if p < 180 || p < 0 || p > 250 {
		t.Errorf("chiller power for 964.8 W @ 18°C = %.1f W, want ≈213 W", p)
	}
	if got := c.Power(0, 18, 28.9); got != 0 {
		t.Errorf("zero heat → power %v, want 0", got)
	}
	if got := c.Power(-50, 18, 28.9); got != 0 {
		t.Errorf("negative heat → power %v, want 0", got)
	}
}

func TestChillerPowerZeroWhenNoLift(t *testing.T) {
	c := Chiller{Eta: 0.3, EvapApproachK: 0, CondApproachK: 0}
	if got := c.Power(1000, 30, 20); got != 0 {
		t.Errorf("free cooling power = %v, want 0", got)
	}
}

func TestLiftSweepShape(t *testing.T) {
	pts := LiftSweep(DefaultChiller(), 8, 20, 2, 28.9)
	if len(pts) != 7 {
		t.Fatalf("len(pts) = %d, want 7", len(pts))
	}
	// COP must increase and per-kW exergy must decrease with supply temp.
	for i := 1; i < len(pts); i++ {
		if pts[i].COP <= pts[i-1].COP {
			t.Errorf("COP not increasing at %v°C", pts[i].TSupplyC)
		}
		if pts[i].ExergyPerKW >= pts[i-1].ExergyPerKW {
			t.Errorf("exergy not decreasing at %v°C", pts[i].TSupplyC)
		}
	}
}

func TestLiftSweepDegenerateInputs(t *testing.T) {
	if pts := LiftSweep(DefaultChiller(), 8, 20, 0, 28.9); pts != nil {
		t.Errorf("zero step sweep = %v, want nil", pts)
	}
	if pts := LiftSweep(DefaultChiller(), 20, 8, 1, 28.9); pts != nil {
		t.Errorf("inverted range sweep = %v, want nil", pts)
	}
}

// Property: chiller COP is monotonically increasing in supply temperature
// for any rejection temperature above it.
func TestChillerCOPMonotoneProperty(t *testing.T) {
	c := DefaultChiller()
	f := func(t1Raw, dRaw uint8) bool {
		t1 := float64(t1Raw%20) + 2   // 2 … 22 °C
		d := float64(dRaw%10)/2 + 0.5 // 0.5 … 5.5 °C higher
		reject := 35.0                // hot tropical rejection
		return c.COP(t1+d, reject) > c.COP(t1, reject)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
