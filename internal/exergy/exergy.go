// Package exergy implements the second-law quantities behind the paper's
// "low exergy" argument (§II): the exergy content of a heat flux, the
// Carnot coefficient of performance, and a Carnot-fraction chiller model
// whose electrical consumption depends on the temperature lift between the
// cold medium it produces and the environment it rejects heat to.
//
// This is the piece that makes the 45.5 % efficiency gain of Figure 11 an
// *output* of the simulation rather than an assumed constant: producing
// 18 °C water requires far less lift — and therefore less work per joule
// moved — than producing 8 °C air.
package exergy

import (
	"fmt"
	"math"
)

// KelvinOffset converts °C to K.
const KelvinOffset = 273.15

// OfHeatFlux returns the exergy (W) of moving heat flux q (W) at working
// temperature tWork (°C) relative to reference temperature tRef (°C),
// using the paper's definition Ex = Q·(1 − T/T₀) with absolute
// temperatures. For cooling below the reference the result is positive:
// the flux carries useful work potential that the chiller must supply.
func OfHeatFlux(q, tWork, tRef float64) float64 {
	t := tWork + KelvinOffset
	t0 := tRef + KelvinOffset
	return q * (1 - t/t0)
}

// CarnotCOPCooling returns the ideal (Carnot) coefficient of performance
// of a refrigeration cycle pumping heat from tEvap to tCond (both °C):
// COP_Carnot = T_evap / (T_cond − T_evap) in Kelvin. It returns +Inf when
// tCond <= tEvap (no lift required).
func CarnotCOPCooling(tEvap, tCond float64) float64 {
	lift := tCond - tEvap
	if lift <= 0 {
		return math.Inf(1)
	}
	return (tEvap + KelvinOffset) / lift
}

// Chiller is a vapour-compression chiller modelled as a fixed fraction of
// the Carnot limit with fixed heat-exchanger approach temperatures. The
// evaporator runs EvapApproachK below the cold medium it produces, and the
// condenser runs CondApproachK above the environment it rejects to.
type Chiller struct {
	// Eta is the second-law (Carnot) efficiency, typically 0.25–0.45 for
	// small water chillers.
	Eta float64
	// EvapApproachK is the evaporator approach: the evaporator refrigerant
	// temperature is the produced medium temperature minus this (K).
	EvapApproachK float64
	// CondApproachK is the condenser approach above the rejection
	// temperature (K).
	CondApproachK float64
}

// Validate checks the chiller parameters.
func (c Chiller) Validate() error {
	if c.Eta <= 0 || c.Eta > 1 {
		return fmt.Errorf("exergy: chiller Eta must be in (0, 1], got %v", c.Eta)
	}
	if c.EvapApproachK < 0 || c.CondApproachK < 0 {
		return fmt.Errorf("exergy: chiller approaches must be >= 0, got evap %v cond %v",
			c.EvapApproachK, c.CondApproachK)
	}
	return nil
}

// COP returns the chiller coefficient of performance when producing a cold
// medium at tSupply (°C) while rejecting heat to an environment at
// tReject (°C).
func (c Chiller) COP(tSupply, tReject float64) float64 {
	tEvap := tSupply - c.EvapApproachK
	tCond := tReject + c.CondApproachK
	carnot := CarnotCOPCooling(tEvap, tCond)
	if math.IsInf(carnot, 1) {
		return math.Inf(1)
	}
	return c.Eta * carnot
}

// Power returns the electrical power (W) the chiller draws to move thermal
// power q (W) out of a medium at tSupply (°C) with rejection at tReject
// (°C). Zero or negative q draws no power.
func (c Chiller) Power(q, tSupply, tReject float64) float64 {
	if q <= 0 {
		return 0
	}
	cop := c.COP(tSupply, tReject)
	if math.IsInf(cop, 1) {
		return 0
	}
	return q / cop
}

// DefaultChiller returns the chiller parameterisation used across the
// repository. With Eta = 0.30 and 4 K approaches it reproduces the paper's
// measured COP band: ≈4.5 for the 18 °C radiant loop, ≈2.9 for the 8 °C
// ventilation loop, and ≈2.8 for a conventional 8 °C-air system with its
// extra coil approach (see internal/baseline).
func DefaultChiller() Chiller {
	return Chiller{Eta: 0.30, EvapApproachK: 4, CondApproachK: 4}
}

// LiftSweepPoint is one row of a supply-temperature ablation sweep.
type LiftSweepPoint struct {
	TSupplyC float64
	COP      float64
	// ExergyPerKW is the exergy (W) embedded in moving 1 kW of heat at the
	// supply temperature against the rejection temperature.
	ExergyPerKW float64
}

// LiftSweep evaluates the chiller COP and per-kW exergy across supply
// temperatures [lo, hi] in the given step, with heat rejection at tReject
// (°C). It powers the supply-temperature ablation benchmark.
func LiftSweep(c Chiller, lo, hi, step, tReject float64) []LiftSweepPoint {
	if step <= 0 || hi < lo {
		return nil
	}
	pts := make([]LiftSweepPoint, 0, int((hi-lo)/step)+1)
	for t := lo; t <= hi+1e-9; t += step {
		pts = append(pts, LiftSweepPoint{
			TSupplyC:    t,
			COP:         c.COP(t, tReject),
			ExergyPerKW: OfHeatFlux(1000, t, tReject),
		})
	}
	return pts
}
