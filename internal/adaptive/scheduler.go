package adaptive

import (
	"fmt"
	"math"
)

// Default parameters from the paper (§IV-B and §V-C).
const (
	// DefaultN is the histogram size chosen in Figure 12 ("we select
	// N = 40 as the default setting").
	DefaultN = 40
	// DefaultWMax is the maximum transmission-period multiplier ("We set
	// the maximum w to be 32").
	DefaultWMax = 32
	// DefaultStableRuns is the number of successive stable sampling
	// periods before T_snd doubles ("T_snd is doubled if the variance does
	// not exceed the threshold after 10 successive T_spls").
	DefaultStableRuns = 10
	// DefaultWindow is the sliding-window length (in samples) for the
	// variance computation.
	DefaultWindow = 8
	// DefaultLambdaPeriodS is the λ recomputation period ("the updating of
	// λ is periodical, which is empirically set to be 20 minutes").
	DefaultLambdaPeriodS = 20 * 60
)

// Sampling periods per data type (§IV-B: "the sampling period T_spl for
// temperature, humidity, CO2 concentration sensors in BubbleZERO is set to
// be 3s, 2s, and 4s, respectively").
const (
	TsplTemperatureS = 3
	TsplHumidityS    = 2
	TsplCO2S         = 4
)

// Config parameterises a Scheduler.
type Config struct {
	// TsplS is the sampling period in seconds.
	TsplS float64
	// Window is the sliding-window length in samples.
	Window int
	// N is the histogram slot count.
	N int
	// WMax is the maximum period multiplier.
	WMax int
	// StableRuns is the number of consecutive stable samples required to
	// double w.
	StableRuns int
	// LambdaPeriodS is the seconds between λ recomputations.
	LambdaPeriodS float64
	// TrackExact additionally maintains the exact clusterer as ground
	// truth and records decision accuracy (costs unbounded memory; used
	// for the Figure 12/13 evaluation, not on real motes).
	TrackExact bool
}

// DefaultConfig returns the paper's configuration for the given sampling
// period.
func DefaultConfig(tsplS float64) Config {
	return Config{
		TsplS:         tsplS,
		Window:        DefaultWindow,
		N:             DefaultN,
		WMax:          DefaultWMax,
		StableRuns:    DefaultStableRuns,
		LambdaPeriodS: DefaultLambdaPeriodS,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.TsplS <= 0:
		return fmt.Errorf("adaptive: TsplS must be > 0, got %v", c.TsplS)
	case c.Window < 2:
		return fmt.Errorf("adaptive: Window must be >= 2, got %d", c.Window)
	case c.N < 2:
		return fmt.Errorf("adaptive: N must be >= 2, got %d", c.N)
	case c.WMax < 1:
		return fmt.Errorf("adaptive: WMax must be >= 1, got %d", c.WMax)
	case c.StableRuns < 1:
		return fmt.Errorf("adaptive: StableRuns must be >= 1, got %d", c.StableRuns)
	case c.LambdaPeriodS <= 0:
		return fmt.Errorf("adaptive: LambdaPeriodS must be > 0, got %v", c.LambdaPeriodS)
	}
	return nil
}

// Event is the outcome of one sampling step.
type Event struct {
	// Send reports whether the device transmits this sample.
	Send bool
	// Transition reports whether the variance classified as a transition
	// (variance > λ) at this step.
	Transition bool
	// TsndS is the transmission period in effect after this step.
	TsndS float64
	// Variance is the sliding-window variance, NaN until the window fills.
	Variance float64
}

// Scheduler implements the bt-device transmission logic. Drive it by
// calling OnSample once per sampling period with the latest sensor
// reading.
type Scheduler struct {
	cfg Config

	window []float64
	wpos   int
	wcount int
	sum    float64
	sumSq  float64

	hist  *Histogram
	exact *ExactClusterer

	lambda      float64
	lambdaOK    bool
	sinceLambda float64

	// Ground-truth threshold, recomputed on the same cadence as λ.
	exactLambda float64
	exactOK     bool

	w         int
	stableRun int
	sinceSend float64
	everSent  bool

	// Accuracy bookkeeping (TrackExact only).
	decisions        int
	matchedDecisions int
	recent           []bool // ring of recent decision matches
	recentPos        int
	recentFull       bool
}

// recentWindow is the size of the rolling decision-accuracy window used by
// RecentAccuracy (the Figure 13 "accuracy as time elapses" curve).
const recentWindow = 256

// NewScheduler returns a scheduler for the given configuration.
func NewScheduler(cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hist, err := NewHistogram(cfg.N)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:    cfg,
		window: make([]float64, cfg.Window),
		hist:   hist,
		w:      1,
	}
	if cfg.TrackExact {
		s.exact = &ExactClusterer{}
	}
	return s, nil
}

// Config returns the scheduler configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// TsndS returns the current transmission period in seconds.
func (s *Scheduler) TsndS() float64 { return float64(s.w) * s.cfg.TsplS }

// W returns the current period multiplier.
func (s *Scheduler) W() int { return s.w }

// Lambda returns the current threshold and whether one has been learned.
func (s *Scheduler) Lambda() (float64, bool) { return s.lambda, s.lambdaOK }

// Histogram exposes the underlying histogram (for RAM accounting and the
// periodic reset policy).
func (s *Scheduler) Histogram() *Histogram { return s.hist }

// Accuracy returns the fraction of stable/transition decisions that
// matched the exact-clustering ground truth, and the number of decisions
// made. Requires TrackExact; returns 0, 0 otherwise.
func (s *Scheduler) Accuracy() (frac float64, decisions int) {
	if s.decisions == 0 {
		return 0, 0
	}
	return float64(s.matchedDecisions) / float64(s.decisions), s.decisions
}

// RecentAccuracy returns the decision accuracy over the most recent
// window of decisions (up to 256), and the window size. Requires
// TrackExact.
func (s *Scheduler) RecentAccuracy() (frac float64, window int) {
	if s.recent == nil {
		return 0, 0
	}
	n := recentWindow
	if !s.recentFull {
		n = s.recentPos
	}
	if n == 0 {
		return 0, 0
	}
	matched := 0
	for i := 0; i < n; i++ {
		if s.recent[i] {
			matched++
		}
	}
	return float64(matched) / float64(n), n
}

// variance returns the sliding-window variance var(X) = E[X²] − (E[X])²,
// clamped at zero against floating-point cancellation.
func (s *Scheduler) variance() float64 {
	n := float64(s.wcount)
	mean := s.sum / n
	v := s.sumSq/n - mean*mean
	if v < 0 {
		return 0
	}
	return v
}

// OnSample advances the scheduler by one sampling period with the given
// reading and returns the resulting event.
func (s *Scheduler) OnSample(reading float64) Event {
	// Slide the window.
	if s.wcount == s.cfg.Window {
		old := s.window[s.wpos]
		s.sum -= old
		s.sumSq -= old * old
	} else {
		s.wcount++
	}
	s.window[s.wpos] = reading
	s.sum += reading
	s.sumSq += reading * reading
	// Wrap with a compare instead of % — the divide is measurable on the
	// per-sample path and the increment is always < Window.
	if s.wpos++; s.wpos == s.cfg.Window {
		s.wpos = 0
	}

	s.sinceSend += s.cfg.TsplS
	s.sinceLambda += s.cfg.TsplS

	ev := Event{Variance: math.NaN(), TsndS: s.TsndS()}
	if s.wcount < s.cfg.Window {
		// Window not yet full: behave as stable with the initial period.
		if !s.everSent || s.sinceSend >= s.TsndS() {
			ev.Send = true
			s.sinceSend = 0
			s.everSent = true
		}
		return ev
	}

	v := s.variance()
	ev.Variance = v
	loBefore, hiBefore, okBefore := s.hist.Range()
	s.hist.Add(v)
	if s.exact != nil {
		s.exact.Add(v)
		// A histogram rescale is where the approximation error enters
		// (old counts are re-rounded onto the new grid) while the device's
		// own λ stays stale until its periodic update. Refreshing the
		// ground truth at these instants is what produces the paper's
		// lower accuracy "before sufficient external events are
		// encountered" (Figure 13).
		//bzlint:allow floateq rescale detection compares stored bounds, copied not recomputed
		if lo, hi, ok := s.hist.Range(); ok != okBefore || lo != loBefore || hi != hiBefore {
			if l, ok := s.exact.Threshold(); ok {
				s.exactLambda = l
				s.exactOK = true
			}
		}
	}

	// Periodic λ update (also bootstraps the first λ). The ground-truth
	// threshold refreshes on the same cadence so the accuracy comparison
	// is like-for-like.
	if !s.lambdaOK || s.sinceLambda >= s.cfg.LambdaPeriodS {
		if l, ok := s.hist.Threshold(); ok {
			s.lambda = l
			s.lambdaOK = true
			s.sinceLambda = 0
		}
		if s.exact != nil {
			if l, ok := s.exact.Threshold(); ok {
				s.exactLambda = l
				s.exactOK = true
			}
		}
	}

	transition := s.lambdaOK && v > s.lambda
	ev.Transition = transition

	if s.exact != nil && s.lambdaOK {
		s.decisions++
		exactTransition := s.exactOK && v > s.exactLambda
		matched := exactTransition == transition
		if matched {
			s.matchedDecisions++
		}
		if s.recent == nil {
			s.recent = make([]bool, recentWindow)
		}
		s.recent[s.recentPos] = matched
		if s.recentPos++; s.recentPos == recentWindow {
			s.recentPos = 0
		}
		if s.recentPos == 0 {
			s.recentFull = true
		}
	}

	if transition {
		// "The device adjusts T_snd the same as T_spl and immediately
		// resets the timer using the updated T_snd" — an expired timer
		// sends at once.
		s.w = 1
		s.stableRun = 0
		ev.Send = true
		s.sinceSend = 0
		s.everSent = true
		ev.TsndS = s.TsndS()
		return ev
	}

	s.stableRun++
	if s.stableRun >= s.cfg.StableRuns && s.w < s.cfg.WMax {
		s.w *= 2
		if s.w > s.cfg.WMax {
			s.w = s.cfg.WMax
		}
		s.stableRun = 0
	}
	ev.TsndS = s.TsndS()

	if !s.everSent || s.sinceSend >= s.TsndS() {
		ev.Send = true
		s.sinceSend = 0
		s.everSent = true
	}
	return ev
}
