package adaptive

// MSP430 cost model for Algorithm 1, used to regenerate Figure 12(b)/(c).
// The TelosB's MSP430F1611 runs at 8 MHz with no floating-point unit;
// every float operation is a software-emulated routine costing on the
// order of a thousand cycles. Algorithm 1 performs ≈3·N float operations
// per candidate split across N−1 splits, i.e. ≈3·N² operations total.
// FloatOpCycles is calibrated so that N = 60 costs ≈1.6 s, the value the
// paper measures (Figure 12(c)).
const (
	// MSP430ClockHz is the TelosB MCU clock.
	MSP430ClockHz = 8_000_000
	// FloatOpCycles is the average software floating-point cost per
	// operation, calibrated against the paper's measurement.
	FloatOpCycles = 1185
)

// CPUSecondsMSP430 returns the modelled MSP430 execution time (seconds) of
// one Algorithm 1 threshold computation for a histogram of n slots.
func CPUSecondsMSP430(n int) float64 {
	if n < 2 {
		return 0
	}
	ops := 3 * float64(n) * float64(n)
	return ops * FloatOpCycles / MSP430ClockHz
}
