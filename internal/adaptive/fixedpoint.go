package adaptive

import (
	"fmt"
	"math"
)

// Q16 is a Q16.16 fixed-point number — the arithmetic a real TelosB
// deployment would use, since the MSP430 has no floating-point unit and
// software floats are what make Algorithm 1 cost seconds (Figure 12(c)).
// FixedHistogram mirrors Histogram on Q16 values so the repository can
// demonstrate that the paper's constant-memory design survives integer
// arithmetic: thresholds match the float implementation to within one slot
// width (verified by property test).
type Q16 int64

// Q16One is the fixed-point representation of 1.0.
const Q16One Q16 = 1 << 16

// ToQ16 converts a float64 (saturating at the int64 range).
func ToQ16(f float64) Q16 {
	v := f * float64(Q16One)
	if v >= math.MaxInt64 {
		return Q16(math.MaxInt64)
	}
	if v <= math.MinInt64 {
		return Q16(math.MinInt64)
	}
	return Q16(math.Round(v))
}

// Float converts back to float64.
func (q Q16) Float() float64 { return float64(q) / float64(Q16One) }

// MulQ16 multiplies two Q16 values.
func MulQ16(a, b Q16) Q16 { return Q16((int64(a) * int64(b)) >> 16) }

// DivQ16 divides a by b (b must be non-zero).
func DivQ16(a, b Q16) Q16 {
	if b == 0 {
		return 0
	}
	return Q16((int64(a) << 16) / int64(b))
}

// AbsQ16 returns |q|.
func AbsQ16(q Q16) Q16 {
	if q < 0 {
		return -q
	}
	return q
}

// FixedHistogram is the integer-arithmetic twin of Histogram: N slots over
// [varMin, varMax] in Q16.16, uint16 counters, and Algorithm 1 evaluated
// entirely in fixed point. Its memory footprint is identical to the
// paper's accounting (2 bytes per slot + bookkeeping).
type FixedHistogram struct {
	n        int
	varMin   Q16
	varMax   Q16
	counts   []uint16
	total    int
	hasRange bool
}

// NewFixedHistogram returns a fixed-point histogram with n >= 2 slots.
func NewFixedHistogram(n int) (*FixedHistogram, error) {
	if n < 2 {
		return nil, fmt.Errorf("adaptive: fixed histogram needs >= 2 slots, got %d", n)
	}
	return &FixedHistogram{n: n, counts: make([]uint16, n)}, nil
}

// N returns the slot count.
func (h *FixedHistogram) N() int { return h.n }

// Total returns the number of recorded values.
func (h *FixedHistogram) Total() int { return h.total }

// Range returns the observed bounds as floats.
func (h *FixedHistogram) Range() (varMin, varMax float64, ok bool) {
	return h.varMin.Float(), h.varMax.Float(), h.hasRange
}

func (h *FixedHistogram) slotWidth() Q16 {
	return Q16(int64(h.varMax-h.varMin) / int64(h.n))
}

func (h *FixedHistogram) slotFor(v Q16) int {
	w := h.slotWidth()
	if w <= 0 {
		return 0
	}
	i := int(int64(v-h.varMin) / int64(w))
	if i < 0 {
		i = 0
	}
	if i >= h.n {
		i = h.n - 1
	}
	return i
}

// AddFloat records a variance given as float64.
func (h *FixedHistogram) AddFloat(v float64) { h.Add(ToQ16(v)) }

// Add records a variance value with the same half-slot range-expansion
// tolerance as the float implementation.
func (h *FixedHistogram) Add(v Q16) {
	if v < 0 {
		return
	}
	halfSlot := h.slotWidth() / 2
	switch {
	case h.total == 0:
		h.varMin, h.varMax = v, v
	case !h.hasRange:
		if v < h.varMin {
			h.rescale(v, h.varMax)
		} else if v > h.varMax {
			h.rescale(h.varMin, v)
		}
	case v < h.varMin-halfSlot:
		h.rescale(v, h.varMax)
	case v > h.varMax+halfSlot:
		h.rescale(h.varMin, v)
	}
	if h.varMax > h.varMin {
		h.hasRange = true
	}
	if c := h.counts[h.slotFor(v)]; c < math.MaxUint16 {
		h.counts[h.slotFor(v)] = c + 1
	}
	h.total++
}

func (h *FixedHistogram) rescale(lo, hi Q16) {
	old := h.counts
	oldMin := h.varMin
	oldWidth := h.slotWidth()
	h.varMin, h.varMax = lo, hi
	h.counts = make([]uint16, h.n)
	if !h.hasRange || oldWidth <= 0 {
		var mass int
		for _, c := range old {
			mass += int(c)
		}
		if mass > 0 {
			slot := h.slotFor(oldMin)
			if mass > math.MaxUint16 {
				mass = math.MaxUint16
			}
			h.counts[slot] = uint16(mass)
		}
		return
	}
	for i, c := range old {
		if c == 0 {
			continue
		}
		center := oldMin + Q16(int64(oldWidth)*int64(i)) + oldWidth/2
		slot := h.slotFor(center)
		sum := int(h.counts[slot]) + int(c)
		if sum > math.MaxUint16 {
			sum = math.MaxUint16
		}
		h.counts[slot] = uint16(sum)
	}
}

// Threshold runs Algorithm 1 in pure integer arithmetic and returns λ as a
// float for comparison with the reference implementation.
func (h *FixedHistogram) Threshold() (lambda float64, ok bool) {
	if !h.hasRange || h.total < 2 {
		return 0, false
	}
	width := h.slotWidth()
	if width <= 0 {
		return 0, false
	}
	center := func(k int) Q16 { // 1-based slot center
		return h.varMin + Q16(int64(width)*int64(k-1)) + width/2
	}
	bestSum := Q16(math.MaxInt64)
	bestJ := 0
	for j := 1; j < h.n; j++ {
		// cc1 = varMin + (j/2)·width; cc2 = varMin + ((j+n)/2)·width, in
		// fixed point without losing the half step.
		cc1 := h.varMin + Q16(int64(width)*int64(j)/2)
		cc2 := h.varMin + Q16(int64(width)*int64(j+h.n)/2)
		var sum Q16
		for k := 1; k <= j; k++ {
			sum += Q16(int64(h.counts[k-1]) * int64(AbsQ16(center(k)-cc1)))
		}
		for k := j + 1; k <= h.n; k++ {
			sum += Q16(int64(h.counts[k-1]) * int64(AbsQ16(center(k)-cc2)))
		}
		if sum < bestSum {
			bestSum = sum
			bestJ = j
		}
	}
	if bestJ == 0 {
		return 0, false
	}
	return (h.varMin + Q16(int64(width)*int64(bestJ))).Float(), true
}

// RAMBytes matches the paper's footprint accounting.
func (h *FixedHistogram) RAMBytes() int { return 2*h.n + 10 }
