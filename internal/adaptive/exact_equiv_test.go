package adaptive

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

// referenceThreshold is the direct evaluation the incremental clusterer
// replaced: fresh sort, fresh prefix sums, and a binary search per grid
// candidate. The fast path must reproduce it bit for bit — same split
// indices, same float expressions, same tie-breaking — which this copy of
// the original implementation pins.
func referenceThreshold(values []float64) (float64, bool) {
	n := len(values)
	if n < 2 {
		return 0, false
	}
	sorted := make([]float64, n)
	copy(sorted, values)
	sort.Float64s(sorted)
	vmin, vmax := sorted[0], sorted[n-1]
	if vmin == vmax {
		return 0, false
	}

	prefix := make([]float64, n+1)
	for i, v := range sorted {
		prefix[i+1] = prefix[i] + v
	}
	absDev := func(lo, hi int, c float64) float64 {
		if lo >= hi {
			return 0
		}
		k := lo + sort.SearchFloat64s(sorted[lo:hi], c)
		below := c*float64(k-lo) - (prefix[k] - prefix[lo])
		above := (prefix[hi] - prefix[k]) - c*float64(hi-k)
		return below + above
	}

	width := (vmax - vmin) / exactGrid
	bestCost := math.Inf(1)
	bestB := vmin + width
	for j := 1; j < exactGrid; j++ {
		b := vmin + float64(j)*width
		split := sort.SearchFloat64s(sorted, b)
		cc1 := (vmin + b) / 2
		cc2 := (b + vmax) / 2
		cost := absDev(0, split, cc1) + absDev(split, n, cc2)
		if cost < bestCost {
			bestCost = cost
			bestB = b
		}
	}
	return bestB, true
}

func TestExactThresholdMatchesReferenceIncrementally(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	e := &ExactClusterer{}
	var log []float64

	// Interleave growth and Threshold calls the way the scheduler does:
	// bursts of Adds between evaluations, including duplicate and zero
	// variances (stable windows) and heavy-tailed spikes (transitions).
	for round := 0; round < 60; round++ {
		burst := 1 + rng.IntN(50)
		for i := 0; i < burst; i++ {
			var v float64
			switch rng.IntN(4) {
			case 0:
				v = 0 // clamped stable-window variance
			case 1:
				v = math.Trunc(rng.Float64()*8) / 16 // frequent exact duplicates
			default:
				v = rng.ExpFloat64() * math.Pow(10, float64(rng.IntN(5)-2))
			}
			e.Add(v)
			if !(math.IsNaN(v) || math.IsInf(v, 0) || v < 0) {
				log = append(log, v)
			}
		}
		got, gotOK := e.Threshold()
		want, wantOK := referenceThreshold(log)
		if gotOK != wantOK || got != want {
			t.Fatalf("round %d (n=%d): Threshold = %v,%v; reference = %v,%v",
				round, len(log), got, gotOK, want, wantOK)
		}
	}

	// Reset discards history for both paths.
	e.Reset()
	if _, ok := e.Threshold(); ok {
		t.Error("Threshold after Reset should report ok=false")
	}
	e.Add(1)
	e.Add(2)
	if got, ok := e.Threshold(); !ok || got != mustRef(t, []float64{1, 2}) {
		t.Errorf("post-Reset Threshold = %v,%v", got, ok)
	}
}

func mustRef(t *testing.T, vals []float64) float64 {
	t.Helper()
	v, ok := referenceThreshold(vals)
	if !ok {
		t.Fatal("reference threshold not ok")
	}
	return v
}

func TestExactThresholdDegenerateInputs(t *testing.T) {
	e := &ExactClusterer{}
	if _, ok := e.Threshold(); ok {
		t.Error("empty clusterer should report ok=false")
	}
	e.Add(3)
	if _, ok := e.Threshold(); ok {
		t.Error("single value should report ok=false")
	}
	e.Add(3)
	e.Add(3)
	if _, ok := e.Threshold(); ok {
		t.Error("identical values should report ok=false")
	}
	e.Add(5) // now two distinct values
	if v, ok := e.Threshold(); !ok || v != mustRef(t, []float64{3, 3, 3, 5}) {
		t.Errorf("distinct-value Threshold = %v,%v", v, ok)
	}
	// Rejected inputs must not enter the log.
	e.Add(math.NaN())
	e.Add(math.Inf(1))
	e.Add(-1)
	if e.Total() != 4 {
		t.Errorf("Total = %d after rejected adds, want 4", e.Total())
	}
}

// At steady state (no new values since the last call) Threshold performs
// no allocations: the sorted mirror, scratch, and prefix buffers are all
// retained.
func TestExactThresholdSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	e := &ExactClusterer{}
	for i := 0; i < 2000; i++ {
		e.Add(rng.ExpFloat64())
	}
	if _, ok := e.Threshold(); !ok {
		t.Fatal("threshold not ok")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, ok := e.Threshold(); !ok {
			t.Fatal("threshold not ok")
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Threshold allocates %.2f/op, want 0", allocs)
	}
}
