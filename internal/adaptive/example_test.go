package adaptive_test

import (
	"fmt"

	"bubblezero/internal/adaptive"
)

// The paper's Figure 9 worked example: variances in [0, 10] across five
// slots with counts U = [5, 10, 3, 7, 5]. Algorithm 1 finds the split
// after slot 3 (total intra-cluster distance 28), so λ = 6.
func ExampleHistogram_Threshold() {
	h, err := adaptive.NewHistogram(5)
	if err != nil {
		fmt.Println(err)
		return
	}
	// Establish the [0, 10] range, then fill the paper's counts (the two
	// seeding values land in the first and last slots).
	h.Add(0)
	h.Add(10)
	counts := []int{4, 10, 3, 7, 4} // minus the two seeds
	for slot, c := range counts {
		center := 1.0 + 2.0*float64(slot)
		for i := 0; i < c; i++ {
			h.Add(center)
		}
	}
	lambda, ok := h.Threshold()
	fmt.Printf("lambda = %.0f (ok=%v)\n", lambda, ok)
	fmt.Printf("RAM footprint: %d bytes\n", h.RAMBytes())
	// Output:
	// lambda = 6 (ok=true)
	// RAM footprint: 20 bytes
}

// A scheduler backs off to T_snd = w_max × T_spl under stable readings and
// snaps back to T_spl when the variance crosses λ.
func ExampleScheduler() {
	s, err := adaptive.NewScheduler(adaptive.DefaultConfig(2))
	if err != nil {
		fmt.Println(err)
		return
	}
	for i := 0; i < 400; i++ {
		s.OnSample(25.0) // perfectly stable room
	}
	fmt.Printf("stable: w=%d, Tsnd=%.0fs\n", s.W(), s.TsndS())
	// Output:
	// stable: w=32, Tsnd=64s
}

// CPUSecondsMSP430 models Algorithm 1's on-mote cost; the paper measures
// ≈1.6 s at N = 60 on the TelosB's 8 MHz MSP430.
func ExampleCPUSecondsMSP430() {
	fmt.Printf("N=40: %.2f s\n", adaptive.CPUSecondsMSP430(40))
	fmt.Printf("N=60: %.2f s\n", adaptive.CPUSecondsMSP430(60))
	// Output:
	// N=40: 0.71 s
	// N=60: 1.60 s
}
