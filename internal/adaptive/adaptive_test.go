package adaptive

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramPaperWorkedExample(t *testing.T) {
	// Figure 9: varmin = 0, varmax = 10, N = 5, U = [5, 10, 3, 7, 5].
	// The paper computes the j = 3 split cost as 28; by enumeration the
	// costs are j=1:55, j=2:31, j=3:28, j=4:49, so λ = 0 + 3·2 = 6.
	h, err := NewHistogram(5)
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{5, 10, 3, 7, 5}
	// Slot centers are 1,3,5,7,9 with range [0,10]; seed the range first.
	h.Add(0)
	h.Add(10)
	// Remove the two seeding counts from the desired profile.
	counts[0]--
	counts[4]--
	for i, c := range counts {
		center := 1.0 + 2.0*float64(i)
		for k := 0; k < c; k++ {
			h.Add(center)
		}
	}
	lambda, ok := h.Threshold()
	if !ok {
		t.Fatal("no threshold")
	}
	if math.Abs(lambda-6) > 1e-9 {
		t.Errorf("λ = %v, want 6 (paper's worked example)", lambda)
	}
}

func TestHistogramNeedsRange(t *testing.T) {
	h, _ := NewHistogram(10)
	if _, ok := h.Threshold(); ok {
		t.Error("empty histogram produced a threshold")
	}
	h.Add(5)
	h.Add(5)
	h.Add(5)
	if _, ok := h.Threshold(); ok {
		t.Error("degenerate (single-value) histogram produced a threshold")
	}
}

func TestHistogramRejectsInvalidValues(t *testing.T) {
	h, _ := NewHistogram(10)
	h.Add(math.NaN())
	h.Add(math.Inf(1))
	h.Add(-1)
	if h.Total() != 0 {
		t.Errorf("invalid values recorded: total %d", h.Total())
	}
}

func TestHistogramRescalePreservesMass(t *testing.T) {
	h, _ := NewHistogram(8)
	for _, v := range []float64{1, 2, 3, 2.5, 1.5} {
		h.Add(v)
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	h.Add(100) // expands varMax dramatically, triggers re-binning
	h.Add(0.1) // within half a slot of varMin: clamps into slot 1, no rescale
	if h.Total() != 7 {
		t.Errorf("total after rescale = %d, want 7", h.Total())
	}
	var mass uint32
	for _, c := range h.counts {
		mass += c
	}
	if int(mass) != 7 {
		t.Errorf("counter mass = %d, want 7", mass)
	}
	lo, hi, ok := h.Range()
	if !ok || lo != 1 || hi != 100 {
		t.Errorf("range = [%v,%v,%v], want [1,100,true]", lo, hi, ok)
	}
	// A value far below the half-slot tolerance does rescale.
	h2, _ := NewHistogram(8)
	h2.Add(10)
	h2.Add(100)
	h2.Add(0.5) // 10 − 0.5 = 9.5 > halfSlot (5.6): rescales
	lo2, _, _ := h2.Range()
	if lo2 != 0.5 {
		t.Errorf("far-below value did not rescale: varMin = %v", lo2)
	}
}

func TestHistogramResetKeepsRange(t *testing.T) {
	h, _ := NewHistogram(8)
	h.Add(1)
	h.Add(9)
	h.Reset()
	if h.Total() != 0 {
		t.Errorf("total after reset = %d", h.Total())
	}
	lo, hi, ok := h.Range()
	if !ok || lo != 1 || hi != 9 {
		t.Errorf("range not kept: [%v,%v,%v]", lo, hi, ok)
	}
}

func TestHistogramRAMBytesMatchesPaper(t *testing.T) {
	h, _ := NewHistogram(60)
	// Figure 12(b): "when N = 60, it takes 130 bytes ... to store the
	// entire histogram".
	if got := h.RAMBytes(); got != 130 {
		t.Errorf("RAMBytes(60) = %d, want 130", got)
	}
	h2, _ := NewHistogram(40)
	if got := h2.RAMBytes(); got != 90 {
		t.Errorf("RAMBytes(40) = %d, want 90", got)
	}
}

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(1); err == nil {
		t.Error("single-slot histogram accepted")
	}
}

func TestHistogramSeparatesBimodalClusters(t *testing.T) {
	h, _ := NewHistogram(40)
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 500; i++ {
		h.Add(0.01 + rng.Float64()*0.02) // stable cluster around 0.02
	}
	for i := 0; i < 40; i++ {
		h.Add(0.8 + rng.Float64()*0.3) // transition cluster around 0.95
	}
	lambda, ok := h.Threshold()
	if !ok {
		t.Fatal("no threshold")
	}
	if lambda < 0.03 || lambda > 0.8 {
		t.Errorf("λ = %v, want between the clusters (0.03, 0.8)", lambda)
	}
}

func TestExactClustererBimodal(t *testing.T) {
	var e ExactClusterer
	for _, v := range []float64{1, 1.1, 0.9, 10, 10.2, 9.8} {
		e.Add(v)
	}
	lambda, ok := e.Threshold()
	if !ok {
		t.Fatal("no threshold")
	}
	if lambda <= 1.1 || lambda >= 9.8 {
		t.Errorf("λ = %v, want between clusters", lambda)
	}
}

func TestExactClustererDegenerate(t *testing.T) {
	var e ExactClusterer
	if _, ok := e.Threshold(); ok {
		t.Error("empty clusterer produced threshold")
	}
	e.Add(5)
	e.Add(5)
	if _, ok := e.Threshold(); ok {
		t.Error("single-value clusterer produced threshold")
	}
	e.Reset()
	if e.Total() != 0 {
		t.Error("reset did not clear values")
	}
}

// bruteForceThreshold is the naive O(grid·n) reference for the
// Algorithm-1-objective ground truth: subrange-midpoint centers, summed
// absolute deviations, candidates on the same 4096-point grid.
func bruteForceThreshold(values []float64) (float64, bool) {
	n := len(values)
	if n < 2 {
		return 0, false
	}
	sorted := make([]float64, n)
	copy(sorted, values)
	sort.Float64s(sorted)
	vmin, vmax := sorted[0], sorted[n-1]
	if vmin == vmax {
		return 0, false
	}
	const grid = 4096
	width := (vmax - vmin) / grid
	best := math.Inf(1)
	bestB := vmin + width
	for j := 1; j < grid; j++ {
		b := vmin + float64(j)*width
		cc1 := (vmin + b) / 2
		cc2 := (b + vmax) / 2
		var cost float64
		for _, v := range sorted {
			if v < b { // matches SearchFloat64s boundary semantics
				cost += math.Abs(v - cc1)
			} else {
				cost += math.Abs(v - cc2)
			}
		}
		if cost < best {
			best = cost
			bestB = b
		}
	}
	return bestB, true
}

// splitCost evaluates the Algorithm-1 objective for a given threshold.
func splitCost(values []float64, b float64) float64 {
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	vmin, vmax := sorted[0], sorted[len(sorted)-1]
	cc1 := (vmin + b) / 2
	cc2 := (b + vmax) / 2
	var cost float64
	for _, v := range sorted {
		if v < b {
			cost += math.Abs(v - cc1)
		} else {
			cost += math.Abs(v - cc2)
		}
	}
	return cost
}

func TestExactMatchesBruteForceProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 60 {
			raw = raw[:60]
		}
		var e ExactClusterer
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r) / 7.0
			e.Add(vals[i])
		}
		got, gotOK := e.Threshold()
		want, wantOK := bruteForceThreshold(vals)
		if gotOK != wantOK {
			return false
		}
		if !gotOK {
			return true
		}
		// Prefix-sum vs direct summation can flip the argmin between
		// near-tied grid candidates; require the *costs* to agree.
		cGot := splitCost(vals, got)
		cWant := splitCost(vals, want)
		return math.Abs(cGot-cWant) <= 1e-9*(1+math.Abs(cWant))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchedulerConfigValidation(t *testing.T) {
	if err := DefaultConfig(2).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{TsplS: 0, Window: 8, N: 40, WMax: 32, StableRuns: 10, LambdaPeriodS: 1200},
		{TsplS: 2, Window: 1, N: 40, WMax: 32, StableRuns: 10, LambdaPeriodS: 1200},
		{TsplS: 2, Window: 8, N: 1, WMax: 32, StableRuns: 10, LambdaPeriodS: 1200},
		{TsplS: 2, Window: 8, N: 40, WMax: 0, StableRuns: 10, LambdaPeriodS: 1200},
		{TsplS: 2, Window: 8, N: 40, WMax: 32, StableRuns: 0, LambdaPeriodS: 1200},
		{TsplS: 2, Window: 8, N: 40, WMax: 32, StableRuns: 10, LambdaPeriodS: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestSchedulerStableStreamDoublesToWMax(t *testing.T) {
	s, err := NewScheduler(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		s.OnSample(25.0) // perfectly stable
	}
	if s.W() != DefaultWMax {
		t.Errorf("w = %d, want %d after sustained stability", s.W(), DefaultWMax)
	}
	if got := s.TsndS(); got != 64 {
		t.Errorf("TsndS = %v, want 64 (paper: 2 s × 32)", got)
	}
}

func TestSchedulerSendCadenceAtWMax(t *testing.T) {
	s, _ := NewScheduler(DefaultConfig(2))
	// Warm up to wMax.
	for i := 0; i < 600; i++ {
		s.OnSample(25.0)
	}
	sends := 0
	const steps = 320 // 640 s of samples at 2 s
	for i := 0; i < steps; i++ {
		if s.OnSample(25.0).Send {
			sends++
		}
	}
	if sends != 10 {
		t.Errorf("sends = %d over 640 s at T_snd = 64 s, want 10", sends)
	}
}

// eventStream produces a reading stream with stable Gaussian noise and
// occasional step events, the workload of §V-C.
func eventStream(n int, eventEvery int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	level := 25.0
	for i := range out {
		if eventEvery > 0 && i > 0 && i%eventEvery == 0 {
			level += 2.5 // door-opening style step
		}
		// Slow relaxation back toward 25.
		level += (25 - level) * 0.01
		out[i] = level + rng.NormFloat64()*0.02
	}
	return out
}

func TestSchedulerReactsToEvents(t *testing.T) {
	s, _ := NewScheduler(DefaultConfig(2))
	rng := rand.New(rand.NewPCG(9, 9))
	stream := eventStream(4000, 450, rng)
	var sawTransition bool
	var wBeforeLastEvent int
	for i, v := range stream {
		ev := s.OnSample(v)
		if i == 3599 {
			// Just before the last event: by now λ has been learned from
			// earlier events and sustained stability should have grown w.
			// (Before the *first* event the variance history is unimodal
			// and λ flaps — the paper's "initially low accuracy" regime.)
			wBeforeLastEvent = s.W()
		}
		if ev.Transition {
			sawTransition = true
			if s.W() != 1 {
				t.Fatalf("transition did not reset w: %d", s.W())
			}
			if !ev.Send {
				t.Fatal("transition must trigger an immediate send")
			}
		}
	}
	if !sawTransition {
		t.Error("no transition detected across events")
	}
	if wBeforeLastEvent <= 1 {
		t.Errorf("w before last event = %d, want growth during stability", wBeforeLastEvent)
	}
}

func TestSchedulerAccuracyTracking(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.TrackExact = true
	s, _ := NewScheduler(cfg)
	rng := rand.New(rand.NewPCG(5, 6))
	for _, v := range eventStream(3000, 400, rng) {
		s.OnSample(v)
	}
	frac, n := s.Accuracy()
	if n == 0 {
		t.Fatal("no decisions recorded")
	}
	if frac < 0.80 || frac > 1.0 {
		t.Errorf("accuracy = %v, want in [0.80, 1.0] (paper reaches ~98%%)", frac)
	}
}

func TestSchedulerAccuracyWithoutTracking(t *testing.T) {
	s, _ := NewScheduler(DefaultConfig(2))
	s.OnSample(1)
	if frac, n := s.Accuracy(); frac != 0 || n != 0 {
		t.Errorf("accuracy without tracking = %v,%v, want 0,0", frac, n)
	}
}

func TestSchedulerFirstSampleSends(t *testing.T) {
	s, _ := NewScheduler(DefaultConfig(2))
	if !s.OnSample(25).Send {
		t.Error("first sample should transmit (device boot announcement)")
	}
}

// Property: T_snd is always T_spl times a power of two between 1 and WMax.
func TestSchedulerTsndIsPowerOfTwoProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		s, err := NewScheduler(DefaultConfig(2))
		if err != nil {
			return false
		}
		for _, r := range raw {
			s.OnSample(float64(r % 30))
			w := s.W()
			if w < 1 || w > DefaultWMax || w&(w-1) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCPUSecondsMSP430MatchesPaper(t *testing.T) {
	// Figure 12(c): N = 60 takes ≈1600 ms on the MSP430.
	got := CPUSecondsMSP430(60)
	if got < 1.4 || got > 1.8 {
		t.Errorf("CPUSecondsMSP430(60) = %v s, want ≈1.6 s", got)
	}
	if CPUSecondsMSP430(1) != 0 {
		t.Error("degenerate N should cost 0")
	}
	prev := 0.0
	for n := 5; n <= 80; n += 5 {
		c := CPUSecondsMSP430(n)
		if c <= prev {
			t.Fatalf("cost not increasing at N=%d", n)
		}
		prev = c
	}
}

func TestSchedulerAccessors(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.TrackExact = true
	s, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Config().TsplS != 2 {
		t.Errorf("Config().TsplS = %v", s.Config().TsplS)
	}
	if s.Histogram() == nil || s.Histogram().N() != DefaultN {
		t.Error("Histogram accessor broken")
	}
	if _, ok := s.Lambda(); ok {
		t.Error("fresh scheduler should have no lambda")
	}
	if frac, win := s.RecentAccuracy(); frac != 0 || win != 0 {
		t.Error("fresh RecentAccuracy should be empty")
	}
	// Feed a bimodal stream so lambda and recent accuracy materialise.
	rng := rand.New(rand.NewPCG(2, 3))
	for _, v := range eventStream(1500, 300, rng) {
		s.OnSample(v)
	}
	if _, ok := s.Lambda(); !ok {
		t.Error("lambda not learned after events")
	}
	if frac, win := s.RecentAccuracy(); win == 0 || frac < 0.3 {
		t.Errorf("RecentAccuracy = %v over %v", frac, win)
	}
}

func TestFixedHistogramRangeAccessor(t *testing.T) {
	h, _ := NewFixedHistogram(8)
	if _, _, ok := h.Range(); ok {
		t.Error("fresh histogram has a range")
	}
	h.AddFloat(1)
	h.AddFloat(9)
	lo, hi, ok := h.Range()
	if !ok || lo > 1.01 || lo < 0.99 || hi < 8.99 || hi > 9.01 {
		t.Errorf("Range = %v,%v,%v", lo, hi, ok)
	}
}
