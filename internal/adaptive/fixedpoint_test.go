package adaptive

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestQ16RoundTrip(t *testing.T) {
	for _, f := range []float64{0, 1, -1, 0.5, 3.14159, 1000.25, -42.0625} {
		q := ToQ16(f)
		if math.Abs(q.Float()-f) > 1.0/65536 {
			t.Errorf("Q16 round trip of %v = %v", f, q.Float())
		}
	}
}

func TestQ16Saturation(t *testing.T) {
	if q := ToQ16(math.Inf(1)); q != Q16(math.MaxInt64) {
		t.Errorf("+Inf = %v, want saturate", q)
	}
	if q := ToQ16(math.Inf(-1)); q != Q16(math.MinInt64) {
		t.Errorf("-Inf = %v, want saturate", q)
	}
}

func TestQ16Arithmetic(t *testing.T) {
	a, b := ToQ16(2.5), ToQ16(4)
	if got := MulQ16(a, b).Float(); math.Abs(got-10) > 1e-4 {
		t.Errorf("2.5 × 4 = %v", got)
	}
	if got := DivQ16(b, a).Float(); math.Abs(got-1.6) > 1e-4 {
		t.Errorf("4 / 2.5 = %v", got)
	}
	if got := DivQ16(a, 0); got != 0 {
		t.Errorf("div by zero = %v, want 0", got)
	}
	if AbsQ16(ToQ16(-3)).Float() != 3 {
		t.Error("AbsQ16 broken")
	}
}

func TestFixedHistogramValidation(t *testing.T) {
	if _, err := NewFixedHistogram(1); err == nil {
		t.Error("single-slot accepted")
	}
	h, err := NewFixedHistogram(40)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 40 || h.RAMBytes() != 90 {
		t.Errorf("N=%d RAM=%d", h.N(), h.RAMBytes())
	}
	h.Add(-1)
	if h.Total() != 0 {
		t.Error("negative value recorded")
	}
}

func TestFixedHistogramPaperExample(t *testing.T) {
	// The Figure 9 worked example must yield λ = 6 in fixed point too.
	h, err := NewFixedHistogram(5)
	if err != nil {
		t.Fatal(err)
	}
	h.AddFloat(0)
	h.AddFloat(10)
	counts := []int{4, 10, 3, 7, 4}
	for slot, c := range counts {
		for i := 0; i < c; i++ {
			h.AddFloat(1.0 + 2.0*float64(slot))
		}
	}
	lambda, ok := h.Threshold()
	if !ok || math.Abs(lambda-6) > 0.01 {
		t.Errorf("fixed-point λ = %v (ok=%v), want 6", lambda, ok)
	}
}

func TestFixedHistogramNeedsRange(t *testing.T) {
	h, _ := NewFixedHistogram(8)
	if _, ok := h.Threshold(); ok {
		t.Error("empty histogram produced threshold")
	}
	h.AddFloat(5)
	h.AddFloat(5)
	if _, ok := h.Threshold(); ok {
		t.Error("degenerate histogram produced threshold")
	}
}

// Property: the fixed-point threshold matches the float implementation to
// within one slot width across random variance streams — integer MCU
// arithmetic does not change Algorithm 1's behaviour.
func TestFixedMatchesFloatProperty(t *testing.T) {
	f := func(seed uint16, nRaw uint8) bool {
		n := int(nRaw%30) + 10
		rng := rand.New(rand.NewPCG(uint64(seed), 99))
		fl, err1 := NewHistogram(n)
		fx, err2 := NewFixedHistogram(n)
		if err1 != nil || err2 != nil {
			return false
		}
		// Bimodal stream like a real variance log.
		for i := 0; i < 400; i++ {
			var v float64
			if rng.Float64() < 0.9 {
				v = rng.Float64() * 0.05
			} else {
				v = 1 + rng.Float64()*4
			}
			fl.Add(v)
			fx.AddFloat(v)
		}
		lf, okf := fl.Threshold()
		lx, okx := fx.Threshold()
		if okf != okx {
			return false
		}
		if !okf {
			return true
		}
		lo, hi, _ := fl.Range()
		slot := (hi - lo) / float64(n)
		return math.Abs(lf-lx) <= slot+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: counters never overflow silently (saturate at uint16 max).
func TestFixedHistogramCounterSaturation(t *testing.T) {
	h, _ := NewFixedHistogram(2)
	h.AddFloat(0)
	h.AddFloat(10)
	for i := 0; i < 70000; i++ {
		h.AddFloat(1)
	}
	if h.Total() != 70002 {
		t.Errorf("total = %d", h.Total())
	}
	// No panic and a usable threshold is the contract.
	if _, ok := h.Threshold(); !ok {
		t.Error("saturated histogram lost its threshold")
	}
}
