// Package adaptive implements the paper's adaptive sensory-data
// transmission scheme for battery-powered devices (§IV-B): sensory
// readings are sampled every T_spl; the variance over a sliding window
// classifies the environment as stable or in transition against a
// threshold λ; λ is learned online by clustering historical variances with
// a constant-memory histogram (Algorithm 1); and the transmission period
// T_snd = w·T_spl doubles after sustained stability (w ≤ 32) and snaps
// back to T_spl the moment a transition is detected.
package adaptive

import (
	"fmt"
	"math"
)

// Histogram approximates the set of observed variance values with N
// equal-width slots between the minimum and maximum seen so far, storing
// only a counter per slot — the paper's constant-memory design ("devices
// round each variance value to the closest slot center and maintain a
// counter U_i").
type Histogram struct {
	n      int
	varMin float64
	varMax float64
	// width caches (varMax − varMin)/n, refreshed whenever the range
	// changes. slotWidth is on the per-sample path and in Threshold's
	// O(N²) inner loop via center; the cached value is the same float the
	// divide would produce because it is computed from the same operands.
	width  float64
	counts []uint32
	// scratch is the retired counts backing, reused by rescale so that
	// range expansions — which every device performs as it learns its
	// environment — stop allocating once the histogram exists. The swap
	// moves integer counters only, so it cannot perturb any float result.
	scratch  []uint32
	total    int
	hasRange bool
}

// NewHistogram returns a histogram with n slots. n must be at least 2.
func NewHistogram(n int) (*Histogram, error) {
	if n < 2 {
		return nil, fmt.Errorf("adaptive: histogram needs >= 2 slots, got %d", n)
	}
	return &Histogram{n: n, counts: make([]uint32, n), scratch: make([]uint32, n)}, nil
}

// N returns the slot count.
func (h *Histogram) N() int { return h.n }

// Total returns the number of recorded variance values.
func (h *Histogram) Total() int { return h.total }

// Range returns the observed [varMin, varMax] and whether any range
// exists yet (requires at least two distinct values).
func (h *Histogram) Range() (varMin, varMax float64, ok bool) {
	return h.varMin, h.varMax, h.hasRange
}

// slotWidth returns Δvar = (varMax − varMin)/N.
func (h *Histogram) slotWidth() float64 { return h.width }

// setRange updates the range and the cached slot width.
func (h *Histogram) setRange(lo, hi float64) {
	h.varMin, h.varMax = lo, hi
	h.width = (hi - lo) / float64(h.n)
}

// center returns the center c_i of 1-based slot i:
// c_i = varMin + (i − 0.5)·Δvar.
func (h *Histogram) center(i int) float64 {
	return h.varMin + (float64(i)-0.5)*h.slotWidth()
}

// slotFor maps a value to a 0-based slot index within the current range.
func (h *Histogram) slotFor(v float64) int {
	w := h.slotWidth()
	if w <= 0 {
		return 0
	}
	i := int((v - h.varMin) / w)
	if i < 0 {
		i = 0
	}
	if i >= h.n {
		i = h.n - 1
	}
	return i
}

// Add records a variance value, expanding and re-binning the histogram if
// the value falls outside the current [varMin, varMax] range ("if either
// varmax or varmin is changed, histogram values will be rounded to N new
// slot centers").
func (h *Histogram) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return
	}
	// Values within half a slot of the boundary round into the edge slot
	// anyway, so they do not trigger a rescale. This is what lets
	// var_min/var_max stabilise on a real device instead of being moved
	// by every record-breaking float (the paper observes var_min settling
	// after ≈140 s and var_max after ≈1.5 h).
	halfSlot := h.slotWidth() / 2
	switch {
	case h.total == 0:
		h.setRange(v, v)
	case !h.hasRange:
		// Second distinct value establishes the range.
		if v < h.varMin {
			h.rescale(v, h.varMax)
		} else if v > h.varMax {
			h.rescale(h.varMin, v)
		}
	case v < h.varMin-halfSlot:
		h.rescale(v, h.varMax)
	case v > h.varMax+halfSlot:
		h.rescale(h.varMin, v)
	}
	if h.varMax > h.varMin {
		h.hasRange = true
	}
	h.counts[h.slotFor(v)]++
	h.total++
}

// rescale re-bins existing counts onto a new [lo, hi] grid by rounding
// each old slot center to the nearest new slot — the approximation-error
// source evaluated in Figure 13.
func (h *Histogram) rescale(lo, hi float64) {
	old := h.counts
	oldMin, oldMax := h.varMin, h.varMax
	oldWidth := (oldMax - oldMin) / float64(h.n)
	h.setRange(lo, hi)
	next := h.scratch
	for i := range next {
		next[i] = 0
	}
	h.counts, h.scratch = next, old
	if !h.hasRange || oldWidth <= 0 {
		// All prior mass sits at a single value (oldMin == oldMax).
		var mass uint32
		for _, c := range old {
			mass += c
		}
		if mass > 0 {
			h.counts[h.slotFor(oldMin)] += mass
		}
		return
	}
	for i, c := range old {
		if c == 0 {
			continue
		}
		oldCenter := oldMin + (float64(i)+0.5)*oldWidth
		h.counts[h.slotFor(oldCenter)] += c
	}
}

// Reset zeroes the counters while keeping the learned range; the paper
// resets each U_i periodically (e.g. weekly) "to eliminate approximation
// errors cumulated in the past week".
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
}

// Threshold runs Algorithm 1: it enumerates the N−1 candidate split
// positions j, computes the two cluster centers as the unweighted means of
// their slot centers, sums the count-weighted intra-cluster distances, and
// returns λ = varMin + j*·Δvar for the split minimising the total. ok is
// false until the histogram has a usable range.
func (h *Histogram) Threshold() (lambda float64, ok bool) {
	if !h.hasRange || h.total < 2 {
		return 0, false
	}
	width := h.slotWidth()
	bestSum := math.Inf(1)
	bestJ := 0
	for j := 1; j < h.n; j++ {
		// Cluster centers: unweighted means of slot centers, exactly as
		// the paper defines cc1 and cc2.
		cc1 := h.varMin + (float64(j)/2)*width     // mean of centers 1..j
		cc2 := h.varMin + (float64(j+h.n)/2)*width // mean of centers j+1..N
		var sum float64
		for k := 1; k <= j; k++ {
			sum += float64(h.counts[k-1]) * math.Abs(h.center(k)-cc1)
		}
		for k := j + 1; k <= h.n; k++ {
			sum += float64(h.counts[k-1]) * math.Abs(h.center(k)-cc2)
		}
		if sum < bestSum {
			bestSum = sum
			bestJ = j
		}
	}
	if bestJ == 0 {
		return 0, false
	}
	return h.varMin + float64(bestJ)*width, true
}

// RAMBytes returns the on-mote memory footprint of the histogram: one
// 16-bit counter per slot plus ten bytes of bookkeeping (varMin, varMax as
// 32-bit floats, λ, and the slot count) — 130 bytes at N = 60, matching
// Figure 12(b).
func (h *Histogram) RAMBytes() int { return 2*h.n + 10 }
