package adaptive

import (
	"math"
	"sort"
)

// exactGrid is the threshold-candidate resolution of the ground-truth
// clusterer: equivalent to running Algorithm 1 with a 4096-slot histogram
// but with exact (unrounded) variance values. This is the N→∞ limit the
// paper's accuracy metric measures the histogram approximation against.
const exactGrid = 4096

// ExactClusterer stores every observed variance value and computes the
// optimal two-cluster threshold under the same objective as Algorithm 1 —
// cluster centers at the midpoints of the two subranges, cost equal to the
// summed absolute deviations of the member values — but evaluated on the
// exact values over a fine threshold grid instead of N coarse slots. It is
// the memory-unbounded ground truth for the paper's accuracy metric
// ("we can further use exact variance values to conduct clustering and
// obtain the optimal adaptation decisions").
type ExactClusterer struct {
	values []float64
}

// Add records a variance value.
func (e *ExactClusterer) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return
	}
	e.values = append(e.values, v)
}

// Total returns the number of stored values.
func (e *ExactClusterer) Total() int { return len(e.values) }

// Reset discards the history.
func (e *ExactClusterer) Reset() { e.values = e.values[:0] }

// Threshold returns the split λ minimising the Algorithm-1 objective over
// the candidate grid. ok is false with fewer than two distinct values.
func (e *ExactClusterer) Threshold() (lambda float64, ok bool) {
	n := len(e.values)
	if n < 2 {
		return 0, false
	}
	sorted := make([]float64, n)
	copy(sorted, e.values)
	sort.Float64s(sorted)
	vmin, vmax := sorted[0], sorted[n-1]
	if vmin == vmax {
		return 0, false
	}

	prefix := make([]float64, n+1)
	for i, v := range sorted {
		prefix[i+1] = prefix[i] + v
	}
	// absDev returns Σ|v − c| over sorted[lo:hi].
	absDev := func(lo, hi int, c float64) float64 {
		if lo >= hi {
			return 0
		}
		k := lo + sort.SearchFloat64s(sorted[lo:hi], c)
		below := c*float64(k-lo) - (prefix[k] - prefix[lo])
		above := (prefix[hi] - prefix[k]) - c*float64(hi-k)
		return below + above
	}

	width := (vmax - vmin) / exactGrid
	bestCost := math.Inf(1)
	bestB := vmin + width
	for j := 1; j < exactGrid; j++ {
		b := vmin + float64(j)*width
		split := sort.SearchFloat64s(sorted, b) // values <= b (b is off-grid of most values)
		cc1 := (vmin + b) / 2
		cc2 := (b + vmax) / 2
		cost := absDev(0, split, cc1) + absDev(split, n, cc2)
		if cost < bestCost {
			bestCost = cost
			bestB = b
		}
	}
	return bestB, true
}
