package adaptive

import (
	"math"
	"slices"
)

// exactGrid is the threshold-candidate resolution of the ground-truth
// clusterer: equivalent to running Algorithm 1 with a 4096-slot histogram
// but with exact (unrounded) variance values. This is the N→∞ limit the
// paper's accuracy metric measures the histogram approximation against.
const exactGrid = 4096

// ExactClusterer stores every observed variance value and computes the
// optimal two-cluster threshold under the same objective as Algorithm 1 —
// cluster centers at the midpoints of the two subranges, cost equal to the
// summed absolute deviations of the member values — but evaluated on the
// exact values over a fine threshold grid instead of N coarse slots. It is
// the memory-unbounded ground truth for the paper's accuracy metric
// ("we can further use exact variance values to conduct clustering and
// obtain the optimal adaptation decisions").
//
// Threshold is the hottest call in the Figure 12/13 tick path, so the
// clusterer keeps a persistent sorted mirror of the value log (merged
// incrementally per call) and reusable scratch buffers, and scans the
// candidate grid with monotone pointers instead of per-candidate binary
// searches: O(new·log new + n + grid) per call and allocation-free at
// steady state, with bit-identical results to the direct evaluation.
type ExactClusterer struct {
	values []float64

	// sorted mirrors values[:len(sorted)] in ascending order; Threshold
	// merges the unsorted tail in before evaluating. tail and merged are
	// the scratch buffers for that merge; prefix holds the prefix sums.
	sorted []float64
	tail   []float64
	merged []float64
	prefix []float64
}

// Add records a variance value.
func (e *ExactClusterer) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return
	}
	e.values = append(e.values, v)
}

// Total returns the number of stored values.
func (e *ExactClusterer) Total() int { return len(e.values) }

// Reset discards the history.
func (e *ExactClusterer) Reset() {
	e.values = e.values[:0]
	e.sorted = e.sorted[:0]
}

// syncSorted brings the persistent sorted mirror up to date with the
// value log: the values appended since the last call are sorted on their
// own and merged with the already-sorted prefix. Equal values are
// interchangeable float64 bit patterns (NaN is rejected by Add, and ±0
// behave identically in every downstream comparison and sum), so the
// result is indistinguishable from sorting the whole log afresh.
func (e *ExactClusterer) syncSorted() {
	n := len(e.values)
	s := len(e.sorted)
	if s == n {
		return
	}
	if cap(e.tail) < n {
		e.tail = make([]float64, 0, n)
	}
	tail := append(e.tail[:0], e.values[s:n]...)
	slices.Sort(tail)
	if s == 0 {
		e.sorted = append(e.sorted[:0], tail...)
		return
	}
	if cap(e.merged) < n {
		e.merged = make([]float64, 0, n)
	}
	out := e.merged[:0]
	i, j := 0, 0
	for i < s && j < len(tail) {
		if e.sorted[i] <= tail[j] {
			out = append(out, e.sorted[i])
			i++
		} else {
			out = append(out, tail[j])
			j++
		}
	}
	out = append(out, e.sorted[i:]...)
	out = append(out, tail[j:]...)
	e.sorted, e.merged = out, e.sorted
}

// Threshold returns the split λ minimising the Algorithm-1 objective over
// the candidate grid. ok is false with fewer than two distinct values.
func (e *ExactClusterer) Threshold() (lambda float64, ok bool) {
	n := len(e.values)
	if n < 2 {
		return 0, false
	}
	e.syncSorted()
	sorted := e.sorted
	vmin, vmax := sorted[0], sorted[n-1]
	//bzlint:allow floateq degenerate-range check on stored samples; no arithmetic has touched them
	if vmin == vmax {
		return 0, false
	}

	if cap(e.prefix) < n+1 {
		e.prefix = make([]float64, n+1)
	}
	prefix := e.prefix[:n+1]
	prefix[0] = 0
	for i, v := range sorted {
		prefix[i+1] = prefix[i] + v
	}
	// The candidate b and both cluster centers increase monotonically with
	// j, so the three partition indices a binary search used to locate are
	// maintained as forward-only pointers: split is the first value ≥ b,
	// k1 the first ≥ cc1 (clamped to the lower cluster), and k2 the first
	// ≥ cc2 (always ≥ split whenever the upper cluster is non-empty).
	width := (vmax - vmin) / exactGrid
	bestCost := math.Inf(1)
	bestB := vmin + width
	split, k1, k2 := 0, 0, 0
	for j := 1; j < exactGrid; j++ {
		b := vmin + float64(j)*width
		for split < n && sorted[split] < b {
			split++
		}
		cc1 := (vmin + b) / 2
		cc2 := (b + vmax) / 2
		for k1 < n && sorted[k1] < cc1 {
			k1++
		}
		for k2 < n && sorted[k2] < cc2 {
			k2++
		}
		kLo := k1
		if kLo > split {
			kLo = split
		}
		cost := absDev(prefix, 0, split, kLo, cc1) + absDev(prefix, split, n, k2, cc2)
		if cost < bestCost {
			bestCost = cost
			bestB = b
		}
	}
	return bestB, true
}

// absDev returns Σ|v − c| over sorted[lo:hi] given prefix, the
// prefix-sum array of sorted, where k is the index of the first value in
// [lo, hi] not below c. It is a plain function rather than a closure so
// the hot Threshold path captures nothing.
func absDev(prefix []float64, lo, hi, k int, c float64) float64 {
	if lo >= hi {
		return 0
	}
	below := c*float64(k-lo) - (prefix[k] - prefix[lo])
	above := (prefix[hi] - prefix[k]) - c*float64(hi-k)
	return below + above
}
