package adaptive

import "fmt"

// HistogramState is a Histogram's mutable state. The cached slot width is
// not stored: restore recomputes it from the same (varMin, varMax, n)
// operands, yielding the same float.
//
//bzlint:state ExportState RestoreState
type HistogramState struct {
	VarMin, VarMax float64
	Counts         []uint32
	Total          int
	HasRange       bool
}

// ExportState captures the histogram contents.
func (h *Histogram) ExportState() HistogramState {
	counts := make([]uint32, len(h.counts))
	copy(counts, h.counts)
	return HistogramState{
		VarMin:   h.varMin,
		VarMax:   h.varMax,
		Counts:   counts,
		Total:    h.total,
		HasRange: h.hasRange,
	}
}

// RestoreState overwrites the histogram contents. The receiver must have
// the same slot count the state was exported with.
func (h *Histogram) RestoreState(st HistogramState) error {
	if len(st.Counts) != h.n {
		return fmt.Errorf("adaptive: histogram has %d slots, snapshot has %d", h.n, len(st.Counts))
	}
	h.setRange(st.VarMin, st.VarMax)
	copy(h.counts, st.Counts)
	h.total = st.Total
	h.hasRange = st.HasRange
	return nil
}

// SchedulerState is a Scheduler's mutable state. TrackExact schedulers
// (the Figure 12/13 evaluation mode, never used in assembled systems) are
// not snapshotable: the exact clusterer holds unbounded history.
//
//bzlint:state ExportState RestoreState
type SchedulerState struct {
	Window      []float64
	WPos        int
	WCount      int
	Sum         float64
	SumSq       float64
	Hist        HistogramState
	Lambda      float64
	LambdaOK    bool
	SinceLambda float64
	W           int
	StableRun   int
	SinceSend   float64
	EverSent    bool
}

// ExportState captures the scheduler's learning and timing state.
func (s *Scheduler) ExportState() (SchedulerState, error) {
	if s.exact != nil {
		return SchedulerState{}, fmt.Errorf("adaptive: TrackExact scheduler is not snapshotable")
	}
	window := make([]float64, len(s.window))
	copy(window, s.window)
	return SchedulerState{
		Window:      window,
		WPos:        s.wpos,
		WCount:      s.wcount,
		Sum:         s.sum,
		SumSq:       s.sumSq,
		Hist:        s.hist.ExportState(),
		Lambda:      s.lambda,
		LambdaOK:    s.lambdaOK,
		SinceLambda: s.sinceLambda,
		W:           s.w,
		StableRun:   s.stableRun,
		SinceSend:   s.sinceSend,
		EverSent:    s.everSent,
	}, nil
}

// RestoreState overwrites the scheduler's state. The receiver must have
// been built from the same configuration.
func (s *Scheduler) RestoreState(st SchedulerState) error {
	if s.exact != nil {
		return fmt.Errorf("adaptive: TrackExact scheduler is not snapshotable")
	}
	if len(st.Window) != len(s.window) {
		return fmt.Errorf("adaptive: scheduler window is %d samples, snapshot has %d",
			len(s.window), len(st.Window))
	}
	copy(s.window, st.Window)
	s.wpos = st.WPos
	s.wcount = st.WCount
	s.sum = st.Sum
	s.sumSq = st.SumSq
	if err := s.hist.RestoreState(st.Hist); err != nil {
		return err
	}
	s.lambda = st.Lambda
	s.lambdaOK = st.LambdaOK
	s.sinceLambda = st.SinceLambda
	s.w = st.W
	s.stableRun = st.StableRun
	s.sinceSend = st.SinceSend
	s.everSent = st.EverSent
	return nil
}
