package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Config scopes the analyzers per package (by package base name, which
// is unambiguous in this repository).
type Config struct {
	// Deterministic lists the packages whose code must replay
	// bit-identically from a seed: the determinism analyzer forbids wall
	// clocks, global math/rand, goroutine launches, and unordered map
	// iteration there.
	Deterministic map[string]bool
	// FloatEq lists the packages where ==/!= between floating-point
	// operands is flagged. Exact float comparison is occasionally
	// intentional (fixed-point caches, sentinel values); those sites
	// carry //bzlint:allow floateq waivers.
	FloatEq map[string]bool
}

// DefaultConfig is the repository policy: the deterministic set is every
// package on the seeded replay path (one stray time.Now() or map-order
// dependence there silently breaks the golden Fig10 SHA), and the float
// comparison rule covers the same set plus psychro, whose exact-key
// memos are the approved — and annotated — exception.
func DefaultConfig() Config {
	det := map[string]bool{
		"sim": true, "core": true, "wsn": true, "adaptive": true,
		"fault": true, "thermal": true, "hydraulic": true,
		"radiant": true, "vent": true, "multihop": true, "trace": true,
		"fleet": true, "twin": true,
	}
	feq := map[string]bool{"psychro": true}
	for k := range det {
		feq[k] = true
	}
	return Config{Deterministic: det, FloatEq: feq}
}

// Diagnostic is one finding, carrying the position, the analyzer that
// produced it, the violation, and a suggested rewrite.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Hint     string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Directive comments recognized in linted source:
//
//	//bzlint:ordered <reason>            waives a map-range on the same or next line
//	//bzlint:allow <analyzer> <reason>   waives that analyzer on the same or next line
//	//bzlint:hotpath                     marks the function below as a hot-path root
//
// A waiver without a reason is itself a diagnostic: the point of a
// waiver is the recorded justification.
const (
	dirOrdered = "//bzlint:ordered"
	dirAllow   = "//bzlint:allow"
	dirHotpath = "//bzlint:hotpath"
)

// fileDirectives indexes one file's bzlint comments by line.
type fileDirectives struct {
	ordered map[int]string            // line → reason
	allow   map[int]map[string]string // line → analyzer → reason
}

// pass bundles what every analyzer needs: the package under analysis,
// the waiver index, and the diagnostic sink.
type pass struct {
	pkg  *Package
	fset *token.FileSet
	dirs map[*ast.File]*fileDirectives
	out  *[]Diagnostic
}

// parseDirectives scans a file's comments, indexes waivers by line, and
// reports malformed directives (unknown verb, missing reason) so a bad
// waiver cannot silently disable a check.
func parseDirectives(p *pass, f *ast.File) *fileDirectives {
	d := &fileDirectives{ordered: map[int]string{}, allow: map[int]map[string]string{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, "//bzlint:") {
				continue
			}
			line := p.fset.Position(c.Pos()).Line
			switch {
			case strings.HasPrefix(text, dirOrdered):
				reason := strings.TrimSpace(strings.TrimPrefix(text, dirOrdered))
				if reason == "" {
					p.emit(c.Pos(), "bzlint", "//bzlint:ordered waiver without a reason", "state why the loop body is order-insensitive")
					continue
				}
				d.ordered[line] = reason
			case strings.HasPrefix(text, dirAllow):
				fields := strings.Fields(strings.TrimPrefix(text, dirAllow))
				if len(fields) < 2 {
					p.emit(c.Pos(), "bzlint", "//bzlint:allow waiver needs an analyzer and a reason", "write //bzlint:allow <analyzer> <reason>")
					continue
				}
				if d.allow[line] == nil {
					d.allow[line] = map[string]string{}
				}
				d.allow[line][fields[0]] = strings.Join(fields[1:], " ")
			case text == dirHotpath:
				// Consumed by the hotpath analyzer via FuncDecl docs.
			default:
				p.emit(c.Pos(), "bzlint", fmt.Sprintf("unknown bzlint directive %q", text), "known directives: ordered, allow, hotpath")
			}
		}
	}
	return d
}

// waived reports whether a diagnostic from the analyzer at pos is
// covered by an allow waiver on the same line or the line above.
func (p *pass) waived(f *ast.File, pos token.Pos, analyzer string) bool {
	d := p.dirs[f]
	line := p.fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		if reason, ok := d.allow[l][analyzer]; ok && reason != "" {
			return true
		}
	}
	return false
}

// orderedWaiver reports whether a map-range at pos carries a
// //bzlint:ordered waiver (same line or line above).
func (p *pass) orderedWaiver(f *ast.File, pos token.Pos) bool {
	d := p.dirs[f]
	line := p.fset.Position(pos).Line
	return d.ordered[line] != "" || d.ordered[line-1] != ""
}

// emit appends a diagnostic unconditionally (waiver checks happen at the
// call sites, where the owning file is known).
func (p *pass) emit(pos token.Pos, analyzer, msg, hint string) {
	*p.out = append(*p.out, Diagnostic{Pos: p.fset.Position(pos), Analyzer: analyzer, Message: msg, Hint: hint})
}

// report emits unless an allow waiver covers the line.
func (p *pass) report(f *ast.File, pos token.Pos, analyzer, msg, hint string) {
	if p.waived(f, pos, analyzer) {
		return
	}
	p.emit(pos, analyzer, msg, hint)
}

// Run executes the four analyzers over pkgs and returns the surviving
// diagnostics in file/line order. The hot-path call graph is built over
// the whole package set, so roots in one package taint their callees in
// another.
func Run(fset *token.FileSet, pkgs []*Package, cfg Config) []Diagnostic {
	var out []Diagnostic
	passes := make(map[*Package]*pass, len(pkgs))
	for _, pkg := range pkgs {
		p := &pass{pkg: pkg, fset: fset, dirs: map[*ast.File]*fileDirectives{}, out: &out}
		for _, f := range pkg.Files {
			p.dirs[f] = parseDirectives(p, f)
		}
		passes[pkg] = p
	}
	for _, pkg := range pkgs {
		p := passes[pkg]
		if cfg.Deterministic[pkg.Name] {
			runDeterminism(p)
		}
		if cfg.FloatEq[pkg.Name] {
			runFloatEq(p)
		}
	}
	runHotpath(pkgs, passes)
	runDeprecated(pkgs, passes)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}
