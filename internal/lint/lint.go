package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Config scopes the per-package analyzers. Map keys come in two forms:
// a bare package base name ("wsn"), or — for trees where a base name is
// or may become ambiguous — an import-path suffix containing a slash
// ("internal/trace"), which matches exactly the packages whose import
// path equals the key or ends in "/"+key. A path-style key never matches
// by base name, so a second package that happens to share a base name
// cannot silently inherit the wrong analyzer set.
type Config struct {
	// Deterministic lists the packages whose code must replay
	// bit-identically from a seed: the determinism analyzer forbids wall
	// clocks, global math/rand, goroutine launches, and unordered map
	// iteration there.
	Deterministic map[string]bool
	// FloatEq lists the packages where ==/!= between floating-point
	// operands is flagged. Exact float comparison is occasionally
	// intentional (fixed-point caches, sentinel values); those sites
	// carry //bzlint:allow floateq waivers.
	FloatEq map[string]bool
	// StaleAllow reports //bzlint:allow and //bzlint:ordered waivers that
	// no longer suppress any diagnostic. A stale waiver is a hole in the
	// policy: the code it excused is gone, but the excuse would still
	// silence a future finding on that line.
	StaleAllow bool
}

// DefaultConfig is the repository policy: the deterministic set is every
// package on the seeded replay path (one stray time.Now() or map-order
// dependence there silently breaks the golden Fig10 SHA), the float
// comparison rule covers the same set plus psychro, whose exact-key
// memos are the approved — and annotated — exception, and stale-waiver
// reporting is on (CI deletes excuses that outlive their code).
func DefaultConfig() Config {
	det := map[string]bool{
		"sim": true, "core": true, "wsn": true, "adaptive": true,
		"fault": true, "thermal": true, "hydraulic": true,
		"radiant": true, "vent": true, "multihop": true, "trace": true,
		"fleet": true, "twin": true,
	}
	feq := map[string]bool{"psychro": true}
	for k := range det {
		feq[k] = true
	}
	return Config{Deterministic: det, FloatEq: feq, StaleAllow: true}
}

// scopeHas reports whether a Config scope set selects pkg: bare keys
// match the package base name, keys containing a slash match the import
// path itself or a "/"-delimited suffix of it.
func scopeHas(set map[string]bool, pkg *Package) bool {
	if set[pkg.Name] {
		return true
	}
	for k, on := range set {
		if on && strings.Contains(k, "/") &&
			(pkg.Path == k || strings.HasSuffix(pkg.Path, "/"+k)) {
			return true
		}
	}
	return false
}

// Diagnostic is one finding, carrying the position, the analyzer that
// produced it, the violation, and a suggested rewrite.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Hint     string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Directive comments recognized in linted source:
//
//	//bzlint:ordered <reason>              waives a map-range on the same or next line
//	//bzlint:allow <analyzer> <reason>     waives that analyzer on the same or next line
//	//bzlint:hotpath                       marks the function below as a hot-path root
//	//bzlint:state <capture> <restore>     marks the struct below as snapshot state (statecov)
//	//bzlint:guards <mu> <field,...>       declares mu-guarded fields on the struct below (lockcheck)
//	//bzlint:holds <mu>                    documents that the function below runs with mu held
//	//bzlint:mutsetter <route>             marks the function below as a guarded mutation setter
//	//bzlint:mutroute <route> <reason>     admits the function below to a mutation route
//
// A waiver without a reason is itself a diagnostic: the point of a
// waiver is the recorded justification. Likewise a malformed declaration
// directive (wrong operand count) is reported rather than ignored, so a
// typo cannot silently disable a check.
const (
	dirPrefix  = "//bzlint:"
	dirHotpath = "//bzlint:hotpath"
)

// allowDir is one //bzlint:allow waiver, with usage tracked for the
// stale-waiver report.
type allowDir struct {
	pos    token.Pos
	reason string
	used   bool
}

// orderedDir is one //bzlint:ordered waiver, with usage tracked.
type orderedDir struct {
	pos  token.Pos
	used bool
}

// fileDirectives indexes one file's bzlint waiver comments by line.
type fileDirectives struct {
	ordered map[int]*orderedDir
	allow   map[int]map[string]*allowDir // line → analyzer → waiver
}

// pass bundles what every analyzer needs: the package under analysis,
// the waiver index, and the diagnostic sink.
type pass struct {
	pkg  *Package
	fset *token.FileSet
	dirs map[*ast.File]*fileDirectives
	out  *[]Diagnostic
}

// directiveArity maps each declaration-annotation verb to its exact
// operand count; -1 means "at least that many" (a trailing free-form
// reason). ordered/allow/hotpath are handled separately.
var directiveMinArgs = map[string]int{
	"state":     2, // capture restore
	"guards":    2, // mu field,field
	"holds":     1, // mu
	"mutsetter": 1, // route
	"mutroute":  2, // route reason...
}
var directiveExactArgs = map[string]bool{
	"state": true, "guards": true, "holds": true, "mutsetter": true,
}

// parseDirectives scans a file's comments, indexes waivers by line, and
// reports malformed directives (unknown verb, missing reason or operand)
// so a bad waiver cannot silently disable a check.
func parseDirectives(p *pass, f *ast.File) *fileDirectives {
	d := &fileDirectives{ordered: map[int]*orderedDir{}, allow: map[int]map[string]*allowDir{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, dirPrefix) {
				continue
			}
			line := p.fset.Position(c.Pos()).Line
			fields := strings.Fields(strings.TrimPrefix(text, dirPrefix))
			verb := ""
			if len(fields) > 0 {
				verb = fields[0]
			}
			args := fields[1:]
			switch verb {
			case "ordered":
				if len(args) == 0 {
					p.emit(c.Pos(), "bzlint", "//bzlint:ordered waiver without a reason", "state why the loop body is order-insensitive")
					continue
				}
				d.ordered[line] = &orderedDir{pos: c.Pos()}
			case "allow":
				if len(args) < 2 {
					p.emit(c.Pos(), "bzlint", "//bzlint:allow waiver needs an analyzer and a reason", "write //bzlint:allow <analyzer> <reason>")
					continue
				}
				if d.allow[line] == nil {
					d.allow[line] = map[string]*allowDir{}
				}
				d.allow[line][args[0]] = &allowDir{pos: c.Pos(), reason: strings.Join(args[1:], " ")}
			case "hotpath":
				// Consumed by the hotpath analyzer via FuncDecl docs; the
				// marker takes no operands.
				if len(args) != 0 {
					p.emit(c.Pos(), "bzlint", "//bzlint:hotpath takes no operands", "put the marker on its own doc-comment line")
				}
			case "state", "guards", "holds", "mutsetter", "mutroute":
				// Consumed by the statecov/lockcheck/mutroute analyzers via
				// declaration docs; validated here so a malformed annotation
				// is a finding, not a silently inert comment.
				min := directiveMinArgs[verb]
				if len(args) < min || (directiveExactArgs[verb] && len(args) != min) {
					p.emit(c.Pos(), "bzlint",
						fmt.Sprintf("malformed //bzlint:%s directive (want %d operand(s))", verb, min),
						directiveUsage(verb))
				}
			default:
				p.emit(c.Pos(), "bzlint", fmt.Sprintf("unknown bzlint directive %q", text), "known directives: ordered, allow, hotpath, state, guards, holds, mutsetter, mutroute")
			}
		}
	}
	return d
}

func directiveUsage(verb string) string {
	switch verb {
	case "state":
		return "write //bzlint:state <captureFunc> <restoreFunc>"
	case "guards":
		return "write //bzlint:guards <mutexField> <field,field,...>"
	case "holds":
		return "write //bzlint:holds <mutexField>"
	case "mutsetter":
		return "write //bzlint:mutsetter <route>"
	case "mutroute":
		return "write //bzlint:mutroute <route> <reason>"
	}
	return ""
}

// declDirectives returns the operand lists of every well-formed directive
// with the given verb in a declaration's doc comment.
func declDirectives(doc *ast.CommentGroup, verb string) [][]string {
	if doc == nil {
		return nil
	}
	var out [][]string
	for _, c := range doc.List {
		fields := strings.Fields(strings.TrimPrefix(c.Text, dirPrefix))
		if !strings.HasPrefix(c.Text, dirPrefix) || len(fields) == 0 || fields[0] != verb {
			continue
		}
		args := fields[1:]
		min := directiveMinArgs[verb]
		if len(args) < min || (directiveExactArgs[verb] && len(args) != min) {
			continue // parseDirectives already reported it
		}
		out = append(out, args)
	}
	return out
}

// waived reports whether a diagnostic from the analyzer at pos is
// covered by an allow waiver on the same line or the line above, and
// marks a matching waiver as used.
func (p *pass) waived(f *ast.File, pos token.Pos, analyzer string) bool {
	d := p.dirs[f]
	line := p.fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		if w, ok := d.allow[l][analyzer]; ok && w.reason != "" {
			w.used = true
			return true
		}
	}
	return false
}

// orderedWaiver reports whether a map-range at pos carries a
// //bzlint:ordered waiver (same line or line above), marking it used.
func (p *pass) orderedWaiver(f *ast.File, pos token.Pos) bool {
	d := p.dirs[f]
	line := p.fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		if w, ok := d.ordered[l]; ok {
			w.used = true
			return true
		}
	}
	return false
}

// emit appends a diagnostic unconditionally (waiver checks happen at the
// call sites, where the owning file is known).
func (p *pass) emit(pos token.Pos, analyzer, msg, hint string) {
	*p.out = append(*p.out, Diagnostic{Pos: p.fset.Position(pos), Analyzer: analyzer, Message: msg, Hint: hint})
}

// report emits unless an allow waiver covers the line.
func (p *pass) report(f *ast.File, pos token.Pos, analyzer, msg, hint string) {
	if p.waived(f, pos, analyzer) {
		return
	}
	p.emit(pos, analyzer, msg, hint)
}

// runStaleAllow reports waivers that suppressed nothing across the whole
// run. Runs last: every analyzer must have had its chance to consume
// them first.
func runStaleAllow(passes map[*Package]*pass) {
	for _, p := range passes {
		for _, d := range p.dirs {
			for _, od := range d.ordered {
				if !od.used {
					p.emit(od.pos, "staleallow",
						"//bzlint:ordered waiver suppresses no diagnostic",
						"the map-range it excused is gone; delete the stale waiver")
				}
			}
			for _, byAn := range d.allow {
				for an, w := range byAn {
					if !w.used {
						p.emit(w.pos, "staleallow",
							fmt.Sprintf("//bzlint:allow %s waiver suppresses no diagnostic", an),
							"the finding it excused is gone; delete the stale waiver")
					}
				}
			}
		}
	}
}

// Run executes the analyzer suite over pkgs and returns the surviving
// diagnostics in file/line order. The call-graph analyzers (hotpath,
// deprecated, lockcheck, mutroute) are built over the whole package set,
// so declarations in one package constrain call sites in another.
func Run(fset *token.FileSet, pkgs []*Package, cfg Config) []Diagnostic {
	var out []Diagnostic
	passes := make(map[*Package]*pass, len(pkgs))
	for _, pkg := range pkgs {
		p := &pass{pkg: pkg, fset: fset, dirs: map[*ast.File]*fileDirectives{}, out: &out}
		for _, f := range pkg.Files {
			p.dirs[f] = parseDirectives(p, f)
		}
		passes[pkg] = p
	}
	for _, pkg := range pkgs {
		p := passes[pkg]
		if scopeHas(cfg.Deterministic, pkg) {
			runDeterminism(p)
		}
		if scopeHas(cfg.FloatEq, pkg) {
			runFloatEq(p)
		}
	}
	runHotpath(pkgs, passes)
	runDeprecated(pkgs, passes)
	runStatecov(pkgs, passes)
	runLockcheck(pkgs, passes)
	runMutroute(pkgs, passes)
	if cfg.StaleAllow {
		runStaleAllow(passes)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}
