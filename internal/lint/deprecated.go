package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The deprecated analyzer flags in-repo references to functions and
// methods whose doc comment carries a "Deprecated:" paragraph. A
// deprecation with live callers is a migration that stalled halfway;
// this keeps the window between deprecating and deleting an API visible
// in CI instead of in archaeology.
func runDeprecated(pkgs []*Package, passes map[*Package]*pass) {
	const an = "deprecated"

	// Collect deprecated functions across the loaded set, keyed like the
	// hot-path graph, with the first line of the deprecation note.
	note := map[string]string{}
	inDecl := map[string]*ast.FuncDecl{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				msg := deprecationNote(fd.Doc.Text())
				if msg == "" {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					note[obj.FullName()] = msg
					inDecl[obj.FullName()] = fd
				}
			}
		}
	}
	if len(note) == 0 {
		return
	}

	for _, pkg := range pkgs {
		p := passes[pkg]
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := pkg.Info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				msg, dep := note[fn.FullName()]
				if !dep {
					return true
				}
				// A deprecated wrapper may reference its replacement (or
				// itself); uses inside any deprecated body don't count.
				if fd := inDecl[fn.FullName()]; fd != nil && id.Pos() >= fd.Pos() && id.Pos() < fd.End() {
					return true
				}
				p.report(f, id.Pos(), an,
					"reference to deprecated "+fn.FullName(),
					msg)
				return true
			})
		}
	}
}

// deprecationNote extracts the first line of a doc comment's
// "Deprecated:" paragraph, or "" when the doc has none.
func deprecationNote(doc string) string {
	for _, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "Deprecated:") {
			return line
		}
	}
	return ""
}
