// Package statecov is the statecov analyzer fixture: a fully threaded
// state struct (negative case), a struct with unthreaded, unexported,
// and unserializable fields (positive cases), a per-field waiver, a
// directive naming missing functions, and a directive on a non-struct.
package statecov

import "time"

// Machine is the live object the state structs snapshot.
type Machine struct {
	a float64
	b int
	t time.Time
	n Nest
}

// GoodState is fully threaded through Export and Restore — every line
// below is a negative case.
//
//bzlint:state Export Restore
type GoodState struct {
	A  float64
	B  int
	At time.Time // self-serializing via MarshalBinary: no gob finding
}

// BadState exercises the positive cases: an unthreaded field, a
// gob-invisible unexported field, unserializable field types, a field
// reaching a struct with unexported fields, and a waived field.
//
//bzlint:state Export Restore
type BadState struct {
	Seen    float64
	Dropped float64  // want `field BadState.Dropped is not referenced in capture function Export` `field BadState.Dropped is not referenced in restore function Restore`
	hidden  int      // want `unexported field BadState.hidden is invisible to gob`
	Fn      func()   // want `field BadState.Fn cannot round-trip through gob: func types are not serializable`
	Ch      chan int // want `field BadState.Ch cannot round-trip through gob: chan types are not serializable`
	In      Nest     // want `field BadState.In cannot round-trip through gob: reaches struct with unexported field x, which gob drops silently`
	//bzlint:allow statecov derived cache in this fixture, rebuilt on restore
	Waived float64
}

// Nest has an unexported field, making any state field of this type
// gob-invisible in part.
type Nest struct {
	x int
}

// Orphan names capture/restore functions the package does not declare.
//
//bzlint:state CaptureMissing RestoreMissing
type Orphan struct { // want `state struct Orphan names CaptureMissing in //bzlint:state, but package statecov declares no such function` `state struct Orphan names RestoreMissing in //bzlint:state, but package statecov declares no such function`
	X int
}

// NotStruct cannot carry field coverage at all.
//
//bzlint:state Export Restore
type NotStruct int // want `//bzlint:state directive on NotStruct, which is not a struct type`

// Export captures every threaded field of both annotated structs.
func Export(m *Machine) (GoodState, BadState) {
	b := BadState{Seen: m.a}
	b.hidden = m.b
	b.Fn = nil
	b.Ch = nil
	b.In = m.n
	return GoodState{A: m.a, B: m.b, At: m.t}, b
}

// Restore patches every threaded field of both annotated structs.
func Restore(m *Machine, g GoodState, b BadState) {
	m.a = g.A + b.Seen
	m.b = g.B + b.hidden
	m.t = g.At
	m.n = b.In
	if b.Fn != nil {
		b.Fn()
	}
	if b.Ch != nil {
		close(b.Ch)
	}
}
