// Package mutcall is the caller half of the mutroute fixture: an
// audited route member (legal), a bypassing caller (finding), and a
// waived call site.
package mutcall

import "bzlint.test/mutset"

// Apply is the audited route entry point.
//
//bzlint:mutroute apply.Route the journaled entry point of this fixture
func Apply(r *mutset.Room, n int) {
	r.SetOcc(n)
}

// Bypass reaches around the route from another package.
func Bypass(r *mutset.Room) {
	r.SetOcc(1) // want `call to \(\*bzlint\.test/mutset\.Room\)\.SetOcc bypasses mutation route apply\.Route`
}

// Waived carries a reasoned waiver on the direct call.
func Waived(r *mutset.Room) {
	//bzlint:allow mutroute fixture: construction helper outside the setter package
	r.SetOcc(2)
}
