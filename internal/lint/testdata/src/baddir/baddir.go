// Package baddir is a malformed-directive fixture: a reasonless
// //bzlint:ordered and an unknown directive verb each produce a
// meta-diagnostic, and the reasonless waiver does not suppress the
// map-range diagnostic it sits on.
package baddir

func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//bzlint:ordered
	for k := range m {
		out = append(out, k)
	}
	return out
}

//bzlint:frobnicate not a directive
func other() {}
