// Package sim is a determinism-analyzer fixture: its package name puts
// it in the fixture config's deterministic set, so wall-clock reads,
// global rand draws, and go statements below must all be flagged.
package sim

import (
	"math/rand/v2"
	"time"
)

func wallClock() time.Duration {
	t := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(t) // want `time\.Since reads the wall clock`
}

func globalRand() int {
	return rand.IntN(6) // want `global rand\.IntN draws from the process-wide source`
}

func seededRand() *rand.Rand {
	// Constructors build seeded sources and are allowed.
	return rand.New(rand.NewPCG(1, 2))
}

func launch(fn func()) {
	go fn() // want `go statement in deterministic package sim`
}

func simulatedClock(now time.Time) time.Time {
	// Arithmetic on an injected time value is deterministic.
	return now.Add(time.Second)
}

func waivedClock() time.Time {
	//bzlint:allow determinism fixture: cold path outside the replay loop
	return time.Now()
}
