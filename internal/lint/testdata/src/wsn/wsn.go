// Package wsn is a map-iteration fixture for the determinism analyzer:
// a bare map range is flagged, an //bzlint:ordered range and a slice
// range are not.
package wsn

import "sort"

func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		total += v
	}
	return total
}

func orderedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//bzlint:ordered keys are collected and sorted before any ordered use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sliceRange(xs []int) int {
	total := 0
	for _, v := range xs { // slice iteration is deterministic
		total += v
	}
	return total
}
