// Package stale is the staleallow fixture: one consumed //bzlint:ordered
// waiver (not reported), one ordered waiver with no map range left, and
// one allow waiver whose finding is gone.
package stale

// Sum consumes its waiver: the map range below is a real diagnostic the
// waiver suppresses.
func Sum(m map[string]int) int {
	s := 0
	//bzlint:ordered sum is commutative, iteration order is immaterial
	for _, v := range m {
		s += v
	}
	return s
}

// Plain has no map range left; its ordered waiver is stale.
func Plain() int {
	//bzlint:ordered the loop this excused was deleted
	return 1
}

// Ratio has no float comparison left; its allow waiver is stale.
func Ratio() float64 {
	//bzlint:allow floateq the comparison this excused was deleted
	return 2.5
}
