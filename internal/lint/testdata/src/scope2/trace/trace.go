// Package trace (under scope2/) shares its base name with the package
// under scope/ — see that package's comment.
package trace

// FirstKey ranges a map — a determinism finding when this package is in
// scope.
func FirstKey(m map[int]int) int {
	for k := range m {
		return k
	}
	return 0
}
