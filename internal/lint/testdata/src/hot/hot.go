// Package hot is a hotpath-analyzer fixture: tick is the root, format /
// label / waivedErr are reached through the call graph, and coldReport
// is not reachable and so never flagged.
package hot

import "fmt"

//bzlint:hotpath
func tick(values []float64) string {
	out := format(values[0])
	out += label() // want `string \+= allocates`
	var fresh []int
	fresh = append(fresh, 1) // want `append to fresh, a fresh slice`
	_ = fresh
	sized := make([]int, 0, 8)
	sized = append(sized, 2) // preallocated capacity: not flagged
	_ = sized
	f := func() float64 { return values[0] } // want `closure captures values`
	_ = f
	_ = waivedErr(nil)
	return out
}

func format(v float64) string {
	return fmt.Sprintf("%0.2f", v) // want `fmt\.Sprintf allocates`
}

func label() string {
	return "t=" + suffix() // want `string concatenation allocates`
}

func suffix() string { return "s" }

func coldReport(v float64) string {
	return fmt.Sprintf("cold %v", v) // unreachable from the root: not flagged
}

func waivedErr(err error) error {
	if err != nil {
		//bzlint:allow hotpath fixture: cold rejection path
		return fmt.Errorf("hot: %w", err)
	}
	return nil
}
