// Package floatcmp is a floateq-analyzer fixture: runtime ==/!= between
// float operands is flagged; integer compares, compile-time-constant
// compares, and waived exact-key memos are not.
package floatcmp

func exactEqual(a, b float64) bool {
	return a == b // want `exact floating-point == comparison`
}

func exactNotEqual(a float32, b float64) bool {
	return float64(a) != b // want `exact floating-point != comparison`
}

func intEqual(a, b int) bool {
	return a == b // integers compare exactly: not flagged
}

func constFolded() bool {
	return 1.5 == 3.0/2.0 // folded at compile time: not flagged
}

type memo struct {
	key   float64
	value float64
}

func (m *memo) lookup(key float64) (float64, bool) {
	//bzlint:allow floateq fixture: exact-key memo, NaN keys never match
	if m.key == key {
		return m.value, true
	}
	return 0, false
}
