// Package oldapi is a deprecated-analyzer fixture: references to a
// // Deprecated: function are flagged, recursive self-references inside
// the deprecated body and calls to the replacement are not.
package oldapi

// Old is the stalled half of a migration.
//
// Deprecated: use Current instead.
func Old(n int) int {
	if n > 1 {
		return Old(n - 1) // self-reference inside the deprecated body: not flagged
	}
	return Current(n)
}

// Current is the replacement API.
func Current(n int) int { return n }

func caller() int {
	return Old(3) // want `reference to deprecated .*oldapi\.Old`
}

func modernCaller() int {
	return Current(3) // replacement API: not flagged
}

func takeRef() func(int) int {
	return Old // want `reference to deprecated .*oldapi\.Old`
}
