// Package lockcheck is the lockcheck analyzer fixture: locked and
// unlocked guarded-field accesses, a documented //bzlint:holds callee
// with good and bad callers, a by-value mutex copy, a lock-order
// inversion pair, an unlock with no preceding lock, and a waived access.
package lockcheck

import "sync"

// Counter guards count with mu.
//
//bzlint:guards mu count
type Counter struct {
	mu    sync.Mutex
	count int
}

// NewCounter constructs via composite literal — keys are not accesses.
func NewCounter() *Counter {
	return &Counter{count: 0}
}

// Inc locks before touching count — negative case.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
}

// Racy reads count with no lock anywhere in the body.
func (c *Counter) Racy() int {
	return c.count // want `Counter.Racy accesses Counter.mu-guarded field count without locking`
}

// bump documents that its callers hold mu.
//
//bzlint:holds mu
func (c *Counter) bump() {
	c.count++
}

// GoodCaller locks before calling the holds-annotated callee.
func (c *Counter) GoodCaller() {
	c.mu.Lock()
	c.bump()
	c.mu.Unlock()
}

// BadCaller calls the holds-annotated callee without the lock.
func (c *Counter) BadCaller() {
	c.bump() // want `Counter.BadCaller calls bump, which requires Counter.mu held, without locking it`
}

// WaivedRead carries a reasoned waiver on the unlocked access.
func (c *Counter) WaivedRead() int {
	//bzlint:allow lockcheck fixture: value is immutable after construction here
	return c.count
}

// CopyByValue receives the guarded struct by value, duplicating mu.
func CopyByValue(c Counter) int { // want `Counter passed by value copies its mutex Counter.mu`
	return 0
}

// BadUnlock unlocks a mutex this body never locked.
func (c *Counter) BadUnlock() {
	c.mu.Unlock() // want `Counter.BadUnlock unlocks Counter.mu without a preceding Lock on this path`
}

// Pair holds two mutexes whose acquisition order inverts between
// LockAB and LockBA.
//
//bzlint:guards a x
//bzlint:guards b y
type Pair struct {
	a, b sync.Mutex
	x, y int
}

// LockAB nests b inside a.
func (p *Pair) LockAB() {
	p.a.Lock()
	p.b.Lock() // want `lock-order inversion: lockcheck.Pair.LockAB acquires Pair.b while holding Pair.a, but the opposite order also exists`
	p.x++
	p.y++
	p.b.Unlock()
	p.a.Unlock()
}

// LockBA nests a inside b — the inverted order.
func (p *Pair) LockBA() {
	p.b.Lock()
	p.a.Lock() // want `lock-order inversion: lockcheck.Pair.LockBA acquires Pair.a while holding Pair.b, but the opposite order also exists`
	p.x++
	p.y++
	p.a.Unlock()
	p.b.Unlock()
}
