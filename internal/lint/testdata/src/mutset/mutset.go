// Package mutset is the setter half of the mutroute fixture: it
// declares a guarded mutation setter and calls it in-package, which is
// always legal (construction and restore live next to the state they
// mutate).
package mutset

// Room is the mutable state the route guards.
type Room struct {
	occ int
}

// SetOcc mutates the room.
//
//bzlint:mutsetter apply.Route
func (r *Room) SetOcc(n int) {
	r.occ = n
}

// NewRoom calls the setter from the setter's own package — negative
// case, construction is exempt.
func NewRoom(n int) *Room {
	r := &Room{}
	r.SetOcc(n)
	return r
}
