// Package trace (under scope/) shares its base name with the package
// under scope2/ — the Config path-suffix scoping fixture. Each package
// holds one map range; a path-scoped Deterministic key must flag exactly
// its own package.
package trace

// FirstKey ranges a map — a determinism finding when this package is in
// scope.
func FirstKey(m map[int]int) int {
	for k := range m {
		return k
	}
	return 0
}
