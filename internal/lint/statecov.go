package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The statecov analyzer pins the snapshot/restore completeness
// invariant: a struct annotated
//
//	//bzlint:state <capture> <restore>
//
// is serialized state (gob, DESIGN.md §11), and every one of its fields
// must be referenced both in the named capture function and in the named
// restore function — matched by base name among the package's function
// and method declarations — or carry a per-field
// //bzlint:allow statecov <reason> waiver. A field threaded through a
// full positional composite literal counts as referenced; a keyed
// composite literal counts only the keys it names. The analyzer also
// flags fields whose types gob cannot round-trip: func and chan types
// anywhere in the field's type graph, and reachable struct types with
// unexported fields (gob silently drops them) unless the type
// serializes itself via GobEncode or MarshalBinary.
func runStatecov(pkgs []*Package, passes map[*Package]*pass) {
	for _, pkg := range pkgs {
		p := passes[pkg]

		// Index this package's function declarations by base name: the
		// directive names capture/restore functions in the struct's own
		// package (methods included — "RestoreState" matches every
		// receiver's RestoreState, which is exactly right for the
		// per-module ExportState/RestoreState pairs).
		funcs := map[string][]*ast.FuncDecl{}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					funcs[fd.Name.Name] = append(funcs[fd.Name.Name], fd)
				}
			}
		}

		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil && len(gd.Specs) == 1 {
						doc = gd.Doc
					}
					dirs := declDirectives(doc, "state")
					if len(dirs) == 0 {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						p.report(f, ts.Pos(), "statecov",
							fmt.Sprintf("//bzlint:state directive on %s, which is not a struct type", ts.Name.Name),
							"annotate the state struct declaration itself")
						continue
					}
					checkStateStruct(p, f, ts, st, dirs[0][0], dirs[0][1], funcs)
				}
			}
		}
	}
}

// checkStateStruct verifies one annotated state struct against its
// capture and restore functions.
func checkStateStruct(p *pass, f *ast.File, ts *ast.TypeSpec, st *ast.StructType,
	captureName, restoreName string, funcs map[string][]*ast.FuncDecl) {
	const an = "statecov"
	sname := ts.Name.Name

	stype, ok := p.pkg.Info.TypeOf(ts.Type).(*types.Struct)
	if !ok {
		return
	}

	// Resolve each AST field entry to its *types.Var. The type-checked
	// struct flattens multi-name fields, so walk both in lockstep.
	type fieldInfo struct {
		obj *types.Var
		pos token.Pos
	}
	var fields []fieldInfo
	idx := 0
	for _, af := range st.Fields.List {
		n := len(af.Names)
		if n == 0 {
			n = 1 // embedded field
		}
		for i := 0; i < n; i++ {
			if idx >= stype.NumFields() {
				break
			}
			pos := af.Pos()
			if i < len(af.Names) {
				pos = af.Names[i].Pos()
			}
			fields = append(fields, fieldInfo{obj: stype.Field(idx), pos: pos})
			idx++
		}
	}

	missingFn := false
	for _, want := range [2]string{captureName, restoreName} {
		if len(funcs[want]) == 0 {
			p.report(f, ts.Pos(), an,
				fmt.Sprintf("state struct %s names %s in //bzlint:state, but package %s declares no such function",
					sname, want, p.pkg.Name),
				"name the capture and restore functions that thread every field")
			missingFn = true
		}
	}

	// Collect the field objects referenced inside the capture set and the
	// restore set.
	refs := func(decls []*ast.FuncDecl) map[*types.Var]bool {
		out := map[*types.Var]bool{}
		for _, fd := range decls {
			collectFieldRefs(p.pkg.Info, fd.Body, stype, out)
		}
		return out
	}
	capRefs := refs(funcs[captureName])
	resRefs := refs(funcs[restoreName])

	for _, fi := range fields {
		name := fi.obj.Name()
		if !missingFn {
			if !capRefs[fi.obj] {
				p.report(f, fi.pos, an,
					fmt.Sprintf("field %s.%s is not referenced in capture function %s", sname, name, captureName),
					"thread the field through capture and restore, or waive it with //bzlint:allow statecov <reason>")
			}
			if !resRefs[fi.obj] {
				p.report(f, fi.pos, an,
					fmt.Sprintf("field %s.%s is not referenced in restore function %s", sname, name, restoreName),
					"thread the field through capture and restore, or waive it with //bzlint:allow statecov <reason>")
			}
		}
		if !fi.obj.Exported() {
			p.report(f, fi.pos, an,
				fmt.Sprintf("unexported field %s.%s is invisible to gob", sname, name),
				"export the field or waive it with //bzlint:allow statecov <reason>")
		}
		if why := unserializable(fi.obj.Type(), map[types.Type]bool{}); why != "" {
			p.report(f, fi.pos, an,
				fmt.Sprintf("field %s.%s cannot round-trip through gob: %s", sname, name, why),
				"store serializable state and rebuild the live object on restore")
		}
	}
}

// collectFieldRefs marks which fields of stype the body references:
// selector expressions resolving to a field, keyed composite-literal
// keys, and — for a full positional composite literal of the struct —
// every field at once.
func collectFieldRefs(info *types.Info, body *ast.BlockStmt, stype *types.Struct, out map[*types.Var]bool) {
	if body == nil {
		return
	}
	fieldSet := map[*types.Var]bool{}
	for i := 0; i < stype.NumFields(); i++ {
		fieldSet[stype.Field(i)] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok {
				if v, ok := sel.Obj().(*types.Var); ok && fieldSet[v] {
					out[v] = true
				}
			}
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil {
				return true
			}
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if t.Underlying() != stype {
				return true
			}
			keyed := false
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				keyed = true
				if id, ok := kv.Key.(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok && fieldSet[v] {
						out[v] = true
					}
				}
			}
			if !keyed && len(n.Elts) == stype.NumFields() {
				for i := 0; i < stype.NumFields(); i++ {
					out[stype.Field(i)] = true
				}
			}
		}
		return true
	})
}

// unserializable reports why a type cannot round-trip through gob, or
// "" when it can. The walk follows pointers, slices, arrays, and maps,
// descends into named struct types, and stops at types that serialize
// themselves (GobEncode or MarshalBinary — time.Time, for one).
func unserializable(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if selfSerializing(u) {
			return ""
		}
		return unserializable(u.Underlying(), seen)
	case *types.Alias:
		return unserializable(types.Unalias(u), seen)
	case *types.Signature:
		return "func types are not serializable"
	case *types.Chan:
		return "chan types are not serializable"
	case *types.Pointer:
		return unserializable(u.Elem(), seen)
	case *types.Slice:
		return unserializable(u.Elem(), seen)
	case *types.Array:
		return unserializable(u.Elem(), seen)
	case *types.Map:
		if why := unserializable(u.Key(), seen); why != "" {
			return why
		}
		return unserializable(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			fld := u.Field(i)
			if !fld.Exported() {
				return fmt.Sprintf("reaches struct with unexported field %s, which gob drops silently", fld.Name())
			}
			if why := unserializable(fld.Type(), seen); why != "" {
				return why
			}
		}
	}
	return ""
}

// selfSerializing reports whether the named type (or its pointer)
// implements GobEncode or MarshalBinary and therefore controls its own
// wire format.
func selfSerializing(n *types.Named) bool {
	for _, name := range [2]string{"GobEncode", "MarshalBinary"} {
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(n), true, n.Obj().Pkg(), name)
		if _, ok := obj.(*types.Func); ok {
			return true
		}
	}
	return false
}
