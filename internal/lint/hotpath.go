package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The hotpath analyzer holds every function reachable from a
// //bzlint:hotpath root to the tick kernel's zero-allocation standard.
// Roots are the per-tick entry points (Engine.RunTicks dispatch,
// Room.Step, Network.Step, the glue, the module controllers); the
// analyzer walks the static call graph from them — direct calls and
// method calls with concrete receivers; interface dispatch and stored
// function values are boundaries, which is why each concrete Step
// implementation carries its own root marker — and flags
// allocation-prone constructs in every reached function:
//
//   - fmt.Sprintf / fmt.Errorf (and siblings) — formatting allocates;
//     hot paths use preopened handles and precomputed strings.
//   - non-constant string concatenation — allocates a new string.
//   - append to a slice declared locally without capacity — grows by
//     reallocation; preallocate with make(T, 0, n) or reuse an owned
//     scratch buffer.
//   - closures capturing enclosing variables — the capture escapes to
//     the heap when the closure does.
//
// Cold exits inside hot functions (error returns on cancellation) carry
// //bzlint:allow hotpath waivers.

// fmtAllocFuncs are the fmt package-level functions whose call implies a
// formatting pass and at least one allocation.
var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Errorf": true, "Sprint": true, "Sprintln": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true, "Appendf": true,
}

// hotDecl is one function declaration visible to the call-graph walk.
type hotDecl struct {
	pkg  *Package
	file *ast.File
	decl *ast.FuncDecl
	name string // display name: pkg.Recv.Func
}

func runHotpath(pkgs []*Package, passes map[*Package]*pass) {
	decls := map[string]*hotDecl{} // by types.Func.FullName
	var rootKeys []string
	rootName := map[string]string{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				hd := &hotDecl{pkg: pkg, file: f, decl: fd, name: displayName(pkg, fd)}
				decls[obj.FullName()] = hd
				if isHotpathRoot(fd) {
					rootKeys = append(rootKeys, obj.FullName())
					rootName[obj.FullName()] = hd.name
				}
			}
		}
	}

	// BFS over static call edges; reachedFrom records the root that
	// first tainted each function, for the diagnostic text.
	reachedFrom := map[string]string{}
	queue := make([]string, 0, len(rootKeys))
	for _, k := range rootKeys {
		reachedFrom[k] = rootName[k]
		queue = append(queue, k)
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		hd := decls[key]
		root := reachedFrom[key]
		ast.Inspect(hd.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(hd.pkg.Info, call)
			if fn == nil {
				return true
			}
			ck := fn.FullName()
			if _, seen := reachedFrom[ck]; seen {
				return true
			}
			if _, have := decls[ck]; !have {
				return true
			}
			reachedFrom[ck] = root
			queue = append(queue, ck)
			return true
		})
	}

	for key, root := range reachedFrom {
		hd := decls[key]
		checkHotBody(passes[hd.pkg], hd, root)
	}
}

// isHotpathRoot reports whether the function's doc comment carries the
// //bzlint:hotpath marker.
func isHotpathRoot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == dirHotpath {
			return true
		}
	}
	return false
}

// displayName renders pkg-qualified Recv.Name for diagnostics.
func displayName(pkg *Package, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			name = id.Name + "." + name
		}
	}
	return pkg.Name + "." + name
}

// checkHotBody flags allocation-prone constructs in one hot function.
func checkHotBody(p *pass, hd *hotDecl, root string) {
	const an = "hotpath"
	info := p.pkg.Info
	fresh := freshSlices(info, hd.decl)
	suffix := fmt.Sprintf(" in hot path %s (reachable from %s)", hd.name, root)

	ast.Inspect(hd.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "fmt" && fmtAllocFuncs[fn.Name()] {
				p.report(hd.file, n.Pos(), an,
					"fmt."+fn.Name()+" allocates"+suffix,
					"precompute the string, use a preopened handle, or waive a cold exit with //bzlint:allow hotpath <reason>")
				return true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(n.Args) > 0 {
					if arg, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
						if obj, ok := info.Uses[arg].(*types.Var); ok && fresh[obj] {
							p.report(hd.file, n.Pos(), an,
								"append to "+arg.Name+", a fresh slice with no preallocated capacity,"+suffix,
								"size it up front with make(len 0, cap n) or reuse an owned scratch buffer")
						}
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(info, n) {
				p.report(hd.file, n.Pos(), an,
					"string concatenation allocates"+suffix,
					"precompute the string outside the tick loop")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				p.report(hd.file, n.Pos(), an,
					"string += allocates"+suffix,
					"accumulate into a preallocated []byte or strings.Builder outside the tick loop")
			}
		case *ast.FuncLit:
			if cap := capturedVar(info, hd.decl, n); cap != "" {
				p.report(hd.file, n.Pos(), an,
					"closure captures "+cap+" and escapes"+suffix,
					"hoist the closure out of the tick path or pass state explicitly")
			}
			return false // captures inside nested closures are reported once
		}
		return true
	})
}

// freshSlices collects local slice variables declared with no capacity:
// `var s []T`, `s := []T{}`, `s := make([]T, n)` (no cap argument), or
// `s := nil`-equivalent forms. Appending to these grows by doubling.
func freshSlices(info *types.Info, fd *ast.FuncDecl) map[*types.Var]bool {
	fresh := map[*types.Var]bool{}
	mark := func(id *ast.Ident) {
		if v, ok := info.Defs[id].(*types.Var); ok {
			if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
				fresh[v] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GenDecl:
			if n.Tok != token.VAR {
				return true
			}
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, id := range vs.Names {
					mark(id)
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if isCapacityless(info, n.Rhs[i]) {
					mark(id)
				}
			}
		}
		return true
	})
	return fresh
}

// isCapacityless reports whether expr initializes a slice with no spare
// capacity: nil, an empty composite literal, or make without a cap arg.
func isCapacityless(info *types.Info, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := info.Uses[id].(*types.Builtin)
		return ok && b.Name() == "make" && len(e.Args) < 3
	}
	return false
}

// capturedVar returns the name of the first variable the closure
// captures from its enclosing function, or "".
func capturedVar(info *types.Info, outer *ast.FuncDecl, lit *ast.FuncLit) string {
	found := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing function (including
		// its receiver and parameters) but outside the literal itself.
		if v.Pos() >= outer.Pos() && v.Pos() < outer.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			found = v.Name()
			return false
		}
		return true
	})
	return found
}

// isNonConstString reports whether the expression is a string-typed
// operation not folded at compile time.
func isNonConstString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value == nil && isStringType(tv.Type)
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
