package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"os"
)

// The golden-file tests type-check the fixture packages under
// testdata/src and compare the analyzer output against `// want` comments
// in the fixtures themselves: each backtick-quoted regexp on a line must
// match exactly one diagnostic reported for that line, and every
// diagnostic must be claimed by a want comment. Lines without a want
// comment are the negative cases — any diagnostic there fails the test.

// fixtureConfig mirrors DefaultConfig's shape over the fixture package
// names: sim and wsn are deterministic, floatcmp is float-compare
// checked. The hotpath and deprecated analyzers are unconditional.
func fixtureConfig() Config {
	return Config{
		Deterministic: map[string]bool{"sim": true, "wsn": true, "baddir": true},
		FloatEq:       map[string]bool{"floatcmp": true},
	}
}

// runFixture loads one testdata package and runs the full suite over it.
func runFixture(t *testing.T, name string) []Diagnostic {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", name)
	pkg, err := l.LoadDir(dir, "bzlint.test/"+name)
	if err != nil {
		t.Fatal(err)
	}
	return Run(l.Fset, []*Package{pkg}, fixtureConfig())
}

var wantRe = regexp.MustCompile("`([^`]*)`")

// checkGolden matches diagnostics against the want comments of one or
// more fixture directories (cross-package fixtures span two).
func checkGolden(t *testing.T, name string, diags []Diagnostic, moreNames ...string) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	expected := map[key][]*regexp.Regexp{}
	for _, n := range append([]string{name}, moreNames...) {
		dir := filepath.Join("testdata", "src", n)
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				idx := strings.Index(line, "// want ")
				if idx < 0 {
					continue
				}
				k := key{path, i + 1}
				for _, m := range wantRe.FindAllStringSubmatch(line[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
					}
					expected[k] = append(expected[k], re)
				}
				if len(expected[k]) == 0 {
					t.Fatalf("%s:%d: want comment without a backtick-quoted pattern", path, i+1)
				}
			}
		}
	}

	unclaimed := map[key][]string{}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		unclaimed[k] = append(unclaimed[k], d.Message)
	}
	for k, res := range expected {
		for _, re := range res {
			found := -1
			for i, msg := range unclaimed[k] {
				if re.MatchString(msg) {
					found = i
					break
				}
			}
			if found < 0 {
				t.Errorf("%s:%d: no diagnostic matching %v (diagnostics on line: %q)",
					k.file, k.line, re, unclaimed[k])
				continue
			}
			unclaimed[k] = append(unclaimed[k][:found], unclaimed[k][found+1:]...)
		}
	}
	for k, msgs := range unclaimed {
		for _, msg := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic %q", k.file, k.line, msg)
		}
	}
}

func TestDeterminismGolden(t *testing.T) {
	checkGolden(t, "sim", runFixture(t, "sim"))
}

func TestMapRangeGolden(t *testing.T) {
	checkGolden(t, "wsn", runFixture(t, "wsn"))
}

func TestHotpathGolden(t *testing.T) {
	checkGolden(t, "hot", runFixture(t, "hot"))
}

func TestFloatEqGolden(t *testing.T) {
	checkGolden(t, "floatcmp", runFixture(t, "floatcmp"))
}

func TestDeprecatedGolden(t *testing.T) {
	checkGolden(t, "oldapi", runFixture(t, "oldapi"))
}

func TestStatecovGolden(t *testing.T) {
	checkGolden(t, "statecov", runFixture(t, "statecov"))
}

func TestLockcheckGolden(t *testing.T) {
	checkGolden(t, "lockcheck", runFixture(t, "lockcheck"))
}

// TestMutrouteGolden loads the setter and caller halves of the fixture
// as separate packages: the analyzer must see the cross-package call
// graph exactly as `make lint` sees the real tree.
func TestMutrouteGolden(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	set, err := l.LoadDir(filepath.Join("testdata", "src", "mutset"), "bzlint.test/mutset")
	if err != nil {
		t.Fatal(err)
	}
	call, err := l.LoadDir(filepath.Join("testdata", "src", "mutcall"), "bzlint.test/mutcall")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(l.Fset, []*Package{set, call}, fixtureConfig())
	checkGolden(t, "mutset", diags, "mutcall")
}

// TestStaleAllow pins the stale-waiver report: a consumed waiver is
// silent, an ordered waiver with no map range left and an allow waiver
// whose finding is gone are both reported. (The diagnostics land on the
// waivers' own comment lines, which a want comment cannot annotate
// without becoming part of the waiver reason, hence direct assertions.)
func TestStaleAllow(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "stale"), "bzlint.test/stale")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Deterministic: map[string]bool{"stale": true},
		FloatEq:       map[string]bool{"stale": true},
		StaleAllow:    true,
	}
	var stale []Diagnostic
	for _, d := range Run(l.Fset, []*Package{pkg}, cfg) {
		if d.Analyzer != "staleallow" {
			t.Errorf("unexpected non-staleallow diagnostic: %s", d)
			continue
		}
		stale = append(stale, d)
	}
	if len(stale) != 2 {
		t.Fatalf("got %d staleallow diagnostics %v, want 2", len(stale), stale)
	}
	if !strings.Contains(stale[0].Message, "//bzlint:ordered waiver suppresses no diagnostic") {
		t.Errorf("stale[0] = %q, want stale-ordered report", stale[0].Message)
	}
	if !strings.Contains(stale[1].Message, "//bzlint:allow floateq waiver suppresses no diagnostic") {
		t.Errorf("stale[1] = %q, want stale-allow report", stale[1].Message)
	}

	// With StaleAllow off the same package is clean: the consumed waiver
	// suppresses its map range and nothing else fires.
	cfg.StaleAllow = false
	if diags := Run(l.Fset, []*Package{pkg}, cfg); len(diags) != 0 {
		t.Errorf("StaleAllow=false: got %d diagnostics %v, want 0", len(diags), diags)
	}
}

// TestConfigScopeByPathSuffix pins the base-name collision fix: two
// packages both named "trace" at different import paths must be
// scopeable independently with a path-suffix key, while a bare name key
// still matches both.
func TestConfigScopeByPathSuffix(t *testing.T) {
	load := func(t *testing.T) (*Loader, []*Package) {
		t.Helper()
		l, err := NewLoader(".")
		if err != nil {
			t.Fatal(err)
		}
		a, err := l.LoadDir(filepath.Join("testdata", "src", "scope", "trace"), "bzlint.test/scope/trace")
		if err != nil {
			t.Fatal(err)
		}
		b, err := l.LoadDir(filepath.Join("testdata", "src", "scope2", "trace"), "bzlint.test/scope2/trace")
		if err != nil {
			t.Fatal(err)
		}
		return l, []*Package{a, b}
	}

	t.Run("path-suffix key scopes one package", func(t *testing.T) {
		l, pkgs := load(t)
		cfg := Config{Deterministic: map[string]bool{"scope/trace": true}}
		diags := Run(l.Fset, pkgs, cfg)
		if len(diags) != 1 {
			t.Fatalf("got %d diagnostics %v, want 1", len(diags), diags)
		}
		if !strings.Contains(filepath.ToSlash(diags[0].Pos.Filename), "src/scope/trace/") {
			t.Errorf("diagnostic in %s, want the scope/trace package only", diags[0].Pos.Filename)
		}
	})

	t.Run("bare name key matches both", func(t *testing.T) {
		l, pkgs := load(t)
		cfg := Config{Deterministic: map[string]bool{"trace": true}}
		if diags := Run(l.Fset, pkgs, cfg); len(diags) != 2 {
			t.Fatalf("got %d diagnostics %v, want 2 (one per package)", len(diags), diags)
		}
	})

	t.Run("full path key matches exactly", func(t *testing.T) {
		l, pkgs := load(t)
		cfg := Config{Deterministic: map[string]bool{"bzlint.test/scope2/trace": true}}
		diags := Run(l.Fset, pkgs, cfg)
		if len(diags) != 1 {
			t.Fatalf("got %d diagnostics %v, want 1", len(diags), diags)
		}
		if !strings.Contains(filepath.ToSlash(diags[0].Pos.Filename), "src/scope2/trace/") {
			t.Errorf("diagnostic in %s, want the scope2/trace package only", diags[0].Pos.Filename)
		}
	})
}

// TestMalformedDirectives pins the meta-diagnostics: a waiver without a
// reason and an unknown directive verb are themselves reported, so a
// typo'd waiver cannot silently disable a check. (These land on the
// directive's own comment line, which a same-line want comment cannot
// annotate, hence the direct assertions.)
func TestMalformedDirectives(t *testing.T) {
	diags := runFixture(t, "baddir")
	var meta []string
	for _, d := range diags {
		if d.Analyzer == "bzlint" {
			meta = append(meta, d.Message)
		}
	}
	if len(meta) != 2 {
		t.Fatalf("got %d meta-diagnostics %q, want 2", len(meta), meta)
	}
	if !strings.Contains(meta[0], "without a reason") {
		t.Errorf("meta[0] = %q, want reasonless-ordered complaint", meta[0])
	}
	if !strings.Contains(meta[1], "unknown bzlint directive") {
		t.Errorf("meta[1] = %q, want unknown-directive complaint", meta[1])
	}
	// The reasonless waiver must not suppress the map-range diagnostic.
	found := false
	for _, d := range diags {
		if d.Analyzer == "determinism" && strings.Contains(d.Message, "map iteration") {
			found = true
		}
	}
	if !found {
		t.Error("reasonless //bzlint:ordered suppressed the map-range diagnostic")
	}
}

// TestRepoTreeIsClean runs the suite over the real repository with the
// shipping config — the programmatic twin of `make lint`, so a stray
// violation fails `go test` even before CI reaches the lint target.
func TestRepoTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(l.Fset, pkgs, DefaultConfig()) {
		t.Errorf("%s", d)
	}
}
