package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The mutroute analyzer pins the single-route mutation invariant: every
// mutation of a running fleet flows through fleet.Apply(Event) (epoch
// boundary drain + journal, DESIGN.md §11), never through direct setter
// calls that would bypass the journal and break snapshot replay.
//
// Setters declare themselves with
//
//	//bzlint:mutsetter <route>
//
// and a call to a declared setter is legal only from:
//
//   - the setter's own package (construction, restore, and the batch
//     plumbing live next to the state they mutate);
//   - another setter on the same route;
//   - a function annotated //bzlint:mutroute <route> <reason> — the
//     audited members of the route (fleet.Apply's internals, validated
//     constructors);
//   - a _test.go file (never loaded by the analyzer);
//   - a //bzlint:allow mutroute <reason> waived call site.
//
// Everything else is a finding whose hint points at the route name.
func runMutroute(pkgs []*Package, passes map[*Package]*pass) {
	const an = "mutroute"

	// Pass 1: collect setter declarations and route members.
	setterRoute := map[string]string{} // types.Func.FullName → route
	setterPkg := map[string]*Package{}
	memberRoute := map[string]map[string]bool{} // FullName → routes it belongs to
	addMember := func(full, route string) {
		if memberRoute[full] == nil {
			memberRoute[full] = map[string]bool{}
		}
		memberRoute[full][route] = true
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				for _, args := range declDirectives(fd.Doc, "mutsetter") {
					setterRoute[obj.FullName()] = args[0]
					setterPkg[obj.FullName()] = pkg
					addMember(obj.FullName(), args[0])
				}
				for _, args := range declDirectives(fd.Doc, "mutroute") {
					addMember(obj.FullName(), args[0])
				}
			}
		}
	}
	if len(setterRoute) == 0 {
		return
	}

	// Pass 2: audit every static call site of a declared setter.
	for _, pkg := range pkgs {
		p := passes[pkg]
		for _, f := range pkg.Files {
			// Enclosing-function lookup by position range.
			var fns []*ast.FuncDecl
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					fns = append(fns, fd)
				}
			}
			enclosing := func(pos token.Pos) *ast.FuncDecl {
				for _, fd := range fns {
					if pos >= fd.Pos() && pos < fd.End() {
						return fd
					}
				}
				return nil
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil {
					return true
				}
				route, isSetter := setterRoute[fn.FullName()]
				if !isSetter {
					return true
				}
				if pkg == setterPkg[fn.FullName()] {
					return true // in-package: construction and restore plumbing
				}
				if fd := enclosing(call.Pos()); fd != nil {
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok &&
						memberRoute[obj.FullName()][route] {
						return true
					}
				}
				p.report(f, call.Pos(), an,
					fmt.Sprintf("call to %s bypasses mutation route %s", fn.FullName(), route),
					fmt.Sprintf("mutate through %s, or annotate an audited constructor //bzlint:mutroute %s <reason>", route, route))
				return true
			})
		}
	}
}
