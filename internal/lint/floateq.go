package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The floateq analyzer flags == and != between floating-point operands.
// Accumulated rounding makes exact float equality a latent bug in
// control code; comparisons should use an epsilon or integer/fixed-point
// keys. The two deliberate exceptions in this repository — the exact-key
// memo caches (psychro lookups keyed on bit-identical steady-state
// temperatures) and NaN sentinels — carry //bzlint:allow floateq
// waivers stating so.
func runFloatEq(p *pass) {
	const an = "floateq"
	info := p.pkg.Info
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatType(info.TypeOf(be.X)) && !isFloatType(info.TypeOf(be.Y)) {
				return true
			}
			// A comparison folded at compile time costs nothing at run
			// time and cannot drift.
			if tv, ok := info.Types[be]; ok && tv.Value != nil {
				return true
			}
			p.report(f, be.Pos(), an,
				"exact floating-point "+be.Op.String()+" comparison",
				"compare with an epsilon, or annotate //bzlint:allow floateq <reason> for exact-key memos and sentinels")
			return true
		})
	}
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
