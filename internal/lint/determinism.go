package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// The determinism analyzer guards the bit-identical replay guarantee:
// inside the deterministic packages every source of run-to-run variation
// must flow through the engine (seeded RNG streams, the simulated
// clock). It forbids:
//
//   - time.Now / time.Since — wall-clock reads; use sim.Env.Now / the
//     engine clock.
//   - global math/rand and math/rand/v2 functions — draws from the
//     process-global source; use the engine RNG (sim.RNG.Stream).
//     Constructors (rand.New, rand.NewPCG, ...) are allowed: they build
//     seeded sources.
//   - go statements — scheduler interleaving is nondeterministic.
//   - ranging over a map — iteration order varies per run; iterate a
//     sorted key slice, or annotate `//bzlint:ordered <reason>` when the
//     loop body is genuinely order-insensitive.

// randConstructors are the math/rand(/v2) package-level functions that
// build seeded generators rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewPCG": true, "NewChaCha8": true,
	"NewSource": true, "NewZipf": true,
}

func runDeterminism(p *pass) {
	const an = "determinism"
	info := p.pkg.Info
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.report(f, n.Pos(), an,
					"go statement in deterministic package "+p.pkg.Name,
					"goroutine interleaving is nondeterministic; keep the tick path single-threaded (parallelism lives in internal/runner)")
			case *ast.CallExpr:
				fn := calleeFunc(info, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil &&
						(fn.Name() == "Now" || fn.Name() == "Since") {
						p.report(f, n.Pos(), an,
							fmt.Sprintf("time.%s reads the wall clock in deterministic package %s", fn.Name(), p.pkg.Name),
							"use the simulated clock (sim.Env.Now / Engine.Clock)")
					}
				case "math/rand", "math/rand/v2":
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil &&
						!randConstructors[fn.Name()] {
						p.report(f, n.Pos(), an,
							fmt.Sprintf("global %s.%s draws from the process-wide source in deterministic package %s",
								fn.Pkg().Name(), fn.Name(), p.pkg.Name),
							"draw from the engine RNG (sim.Env.RNG / RNG.Stream)")
					}
				}
			case *ast.RangeStmt:
				tv, ok := info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if p.orderedWaiver(f, n.Pos()) || p.waived(f, n.Pos(), an) {
					return true
				}
				p.report(f, n.Pos(), an,
					"map iteration order is nondeterministic in deterministic package "+p.pkg.Name,
					"iterate a sorted key slice, or annotate //bzlint:ordered <reason> if the body is order-insensitive")
			}
			return true
		})
	}
}

// calleeFunc resolves a call expression's static callee, if any.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
