package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The lockcheck analyzer enforces declared mutex discipline. A struct
// annotated (one directive per mutex, several allowed)
//
//	//bzlint:guards <mu> <field,field,...>
//
// promises that the named fields are only touched while <mu> is held.
// The analyzer verifies, flow-insensitively over the static call graph:
//
//   - every function that reads or writes a guarded field either locks
//     the mutex in its own body or carries //bzlint:holds <mu>
//     documenting that its callers lock;
//   - every static caller of a //bzlint:holds function locks (or itself
//     holds) the required mutex;
//   - two mutexes are never acquired in both orders (lock-order
//     inversion — the two-mutex twin design stays deadlock-free only
//     while mu/runMu nest one way);
//   - a guarded struct is never passed or received by value (copying a
//     locked sync.Mutex is undefined);
//   - no Unlock without a matching Lock on some path through the body.
//
// Composite-literal construction is exempt: a struct literal's keys are
// not field accesses, so constructors need no locks before the value is
// shared.

// guardSpec is one //bzlint:guards declaration, resolved to type
// objects.
type guardSpec struct {
	tn     *types.TypeName
	mu     *types.Var
	fields []*types.Var
}

// lockFacts is what the analyzer knows about one function: the mutexes
// it locks anywhere in its body and the mutexes //bzlint:holds says its
// callers lock on its behalf.
type lockFacts struct {
	pkg   *Package
	file  *ast.File
	decl  *ast.FuncDecl
	locks map[*types.Var]bool
	holds map[*types.Var]bool
}

// lockEdge records where one mutex was first acquired while another was
// held, for the lock-order inversion report.
type lockEdge struct {
	p    *pass
	file *ast.File
	pos  token.Pos
	in   string // display name of the acquiring function
}

func runLockcheck(pkgs []*Package, passes map[*Package]*pass) {
	const an = "lockcheck"

	// Pass 1: collect guard declarations across the package set.
	var specs []guardSpec
	muName := map[*types.Var]string{}                 // mu var → "Type.mu" for diagnostics
	guardOf := map[*types.Var]*types.Var{}            // guarded field → its mutex
	guardedType := map[*types.TypeName][]*types.Var{} // type → its mutexes
	for _, pkg := range pkgs {
		p := passes[pkg]
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil && len(gd.Specs) == 1 {
						doc = gd.Doc
					}
					for _, args := range declDirectives(doc, "guards") {
						tn, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
						if tn == nil {
							continue
						}
						stype, ok := tn.Type().Underlying().(*types.Struct)
						if !ok {
							p.report(f, ts.Pos(), an,
								fmt.Sprintf("//bzlint:guards directive on %s, which is not a struct type", ts.Name.Name),
								"annotate the mutex-holding struct declaration")
							continue
						}
						byName := map[string]*types.Var{}
						for i := 0; i < stype.NumFields(); i++ {
							byName[stype.Field(i).Name()] = stype.Field(i)
						}
						mu := byName[args[0]]
						if mu == nil {
							p.report(f, ts.Pos(), an,
								fmt.Sprintf("//bzlint:guards names mutex %s, which is not a field of %s", args[0], ts.Name.Name),
								"write //bzlint:guards <mutexField> <field,field,...>")
							continue
						}
						gs := guardSpec{tn: tn, mu: mu}
						for _, fn := range splitComma(args[1]) {
							fv := byName[fn]
							if fv == nil {
								p.report(f, ts.Pos(), an,
									fmt.Sprintf("//bzlint:guards names %s, which is not a field of %s", fn, ts.Name.Name),
									"write //bzlint:guards <mutexField> <field,field,...>")
								continue
							}
							gs.fields = append(gs.fields, fv)
							guardOf[fv] = mu
						}
						specs = append(specs, gs)
						muName[mu] = ts.Name.Name + "." + mu.Name()
						guardedType[tn] = append(guardedType[tn], mu)
					}
				}
			}
		}
	}
	if len(specs) == 0 {
		return
	}

	// Pass 2: per-function lock/holds facts, by-value copy checks, and
	// the in-order acquisition walk feeding the lock-order and
	// unlock-without-lock rules.
	facts := map[string]*lockFacts{} // by types.Func.FullName
	lockOrder := map[[2]*types.Var]lockEdge{}

	for _, pkg := range pkgs {
		p := passes[pkg]
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ff := &lockFacts{pkg: pkg, file: f, decl: fd,
					locks: map[*types.Var]bool{}, holds: map[*types.Var]bool{}}
				facts[obj.FullName()] = ff

				// Guarded struct received or passed by value: the copy
				// duplicates the mutex, splitting the lock from the data.
				checkByValue := func(fl *ast.FieldList) {
					if fl == nil {
						return
					}
					for _, prm := range fl.List {
						t := pkg.Info.TypeOf(prm.Type)
						named, ok := t.(*types.Named)
						if !ok {
							continue
						}
						if mus := guardedType[named.Obj()]; len(mus) > 0 {
							p.report(f, prm.Pos(), an,
								fmt.Sprintf("%s passed by value copies its mutex %s", named.Obj().Name(), muName[mus[0]]),
								"use a pointer: the mutex and the fields it guards must not be duplicated")
						}
					}
				}
				checkByValue(fd.Recv)
				checkByValue(fd.Type.Params)

				for _, args := range declDirectives(fd.Doc, "holds") {
					mu := resolveHoldsMutex(pkg, fd, args[0], specs, guardedType)
					if mu == nil {
						p.report(f, fd.Pos(), an,
							fmt.Sprintf("//bzlint:holds names %s, which matches no declared //bzlint:guards mutex", args[0]),
							"declare the mutex with //bzlint:guards on its struct first")
						continue
					}
					ff.holds[mu] = true
				}

				walkLocks(p, ff, muName, func(held, locked *types.Var, pos token.Pos) {
					k := [2]*types.Var{held, locked}
					if _, ok := lockOrder[k]; !ok {
						lockOrder[k] = lockEdge{p: p, file: f, pos: pos, in: displayName(pkg, fd)}
					}
				})
			}
		}
	}

	// Rule: guarded-field access requires the lock (or holds).
	for _, pkg := range pkgs {
		p := passes[pkg]
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				ff := facts[obj.FullName()]
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					s, ok := pkg.Info.Selections[sel]
					if !ok {
						return true
					}
					v, ok := s.Obj().(*types.Var)
					if !ok {
						return true
					}
					mu, guarded := guardOf[v]
					if !guarded || ff.locks[mu] || ff.holds[mu] {
						return true
					}
					p.report(f, sel.Pos(), an,
						fmt.Sprintf("%s accesses %s-guarded field %s without locking", displayName(pkg, fd), muName[mu], v.Name()),
						fmt.Sprintf("lock %s in this function, or annotate it //bzlint:holds %s and make every caller lock", muName[mu], mu.Name()))
					return true
				})
			}
		}
	}

	// Rule: every static caller of a //bzlint:holds function locks or
	// holds the required mutex.
	for _, pkg := range pkgs {
		p := passes[pkg]
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				caller := facts[obj.FullName()]
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeFunc(pkg.Info, call)
					if fn == nil {
						return true
					}
					callee := facts[fn.FullName()]
					if callee == nil || len(callee.holds) == 0 {
						return true
					}
					for _, gs := range specs {
						mu := gs.mu
						if !callee.holds[mu] || caller.locks[mu] || caller.holds[mu] {
							continue
						}
						p.report(f, call.Pos(), an,
							fmt.Sprintf("%s calls %s, which requires %s held, without locking it",
								displayName(pkg, fd), fn.Name(), muName[mu]),
							fmt.Sprintf("lock %s before the call, or annotate the caller //bzlint:holds %s", muName[mu], mu.Name()))
					}
					return true
				})
			}
		}
	}

	// Rule: no lock-order inversion — if A→B and B→A both exist, the
	// pair can deadlock. Reported at each inverted edge.
	for k, e := range lockOrder {
		rev := [2]*types.Var{k[1], k[0]}
		if _, inverted := lockOrder[rev]; !inverted {
			continue
		}
		e.p.report(e.file, e.pos, an,
			fmt.Sprintf("lock-order inversion: %s acquires %s while holding %s, but the opposite order also exists",
				e.in, muName[k[1]], muName[k[0]]),
			"pick one nesting order for the two mutexes and make every path follow it")
	}
}

// splitComma splits "a,b,c" into its non-empty segments.
func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// resolveHoldsMutex maps a //bzlint:holds operand to a declared guard
// mutex: for methods, a mutex field of the receiver's type; for plain
// functions, a uniquely-named mutex among the loaded guard declarations.
func resolveHoldsMutex(pkg *Package, fd *ast.FuncDecl, name string,
	specs []guardSpec, guardedType map[*types.TypeName][]*types.Var) *types.Var {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := pkg.Info.TypeOf(fd.Recv.List[0].Type)
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			for _, mu := range guardedType[named.Obj()] {
				if mu.Name() == name {
					return mu
				}
			}
		}
		return nil
	}
	var found *types.Var
	for _, gs := range specs {
		if gs.mu.Name() == name {
			if found != nil {
				return nil // ambiguous across types; annotate a method instead
			}
			found = gs.mu
		}
	}
	return found
}

// walkLocks performs the in-source-order acquisition walk over one
// function body: it records which declared mutexes the body locks
// (ff.locks), reports plain Unlock calls with no preceding Lock, and
// feeds each (held, newly-locked) pair to onEdge for the lock-order
// check. Deferred Unlocks keep the mutex held to the end of the body,
// matching the dominant defer-unlock idiom; the walk is a lint
// heuristic, not a path-sensitive proof.
func walkLocks(p *pass, ff *lockFacts, muName map[*types.Var]string,
	onEdge func(held, locked *types.Var, pos token.Pos)) {
	const an = "lockcheck"
	info := ff.pkg.Info
	var held []*types.Var
	for _, gs := range ffHoldsOrdered(ff) {
		held = append(held, gs)
	}
	deferred := map[ast.Node]bool{}

	// lockTarget resolves `x.mu.Lock()`-shaped calls to (muVar, method).
	lockTarget := func(call *ast.CallExpr) (*types.Var, string) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return nil, ""
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return nil, ""
		}
		s, ok := info.Selections[inner]
		if !ok {
			return nil, ""
		}
		v, ok := s.Obj().(*types.Var)
		if !ok || muName[v] == "" {
			return nil, ""
		}
		return v, sel.Sel.Name
	}

	ast.Inspect(ff.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.CallExpr:
			mu, method := lockTarget(n)
			if mu == nil {
				return true
			}
			switch method {
			case "Lock", "RLock":
				ff.locks[mu] = true
				for _, h := range held {
					if h != mu {
						onEdge(h, mu, n.Pos())
					}
				}
				held = append(held, mu)
			case "Unlock", "RUnlock":
				if deferred[n] {
					return true // releases at return; held for the body
				}
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == mu {
						held = append(held[:i], held[i+1:]...)
						return true
					}
				}
				// A Lock earlier in the body means this is a second unlock
				// on a different branch (the early-unlock-and-return
				// idiom), not an unlock of a never-locked mutex; the walk
				// is source-ordered, not path-sensitive, so only the
				// latter is reportable.
				if ff.locks[mu] {
					return true
				}
				p.report(ff.file, n.Pos(), an,
					fmt.Sprintf("%s unlocks %s without a preceding Lock on this path",
						displayName(ff.pkg, ff.decl), muName[mu]),
					fmt.Sprintf("lock %s first, or annotate the function //bzlint:holds %s", muName[mu], mu.Name()))
			}
		}
		return true
	})
}

// ffHoldsOrdered returns the holds set in a deterministic order (holds
// maps are tiny; order only affects edge attribution, not findings).
func ffHoldsOrdered(ff *lockFacts) []*types.Var {
	var out []*types.Var
	for mu := range ff.holds {
		out = append(out, mu)
	}
	if len(out) > 1 {
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j].Name() < out[j-1].Name(); j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
	}
	return out
}
