// Package lint is bzlint's analysis engine: a stdlib-only static
// analyzer suite (go/parser + go/types, imports resolved through
// go/importer's source importer so go.mod stays dependency-free) that
// enforces the repository's determinism and hot-path invariants at
// compile time. See DESIGN.md §7 "Static invariants" for the policy the
// analyzers encode and the waiver-comment syntax.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path
	Name  string // package base name ("wsn", "sim", ...)
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks module packages. Module-internal imports
// are resolved against the loader's own cache (each package is checked
// exactly once, so type objects are pointer-identical across importers),
// and everything else falls through to the source importer, which
// type-checks the standard library from source — no compiler export data
// and no external dependencies.
type Loader struct {
	Fset    *token.FileSet
	modPath string
	modDir  string

	pkgs     map[string]*Package // by import path, fully checked
	loading  map[string]bool     // import-cycle guard
	fallback types.ImporterFrom
}

// NewLoader returns a loader rooted at the module containing dir: the
// nearest ancestor of dir with a go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir := abs
	for {
		if _, err := os.Stat(filepath.Join(modDir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(modDir)
		if parent == modDir {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		modDir = parent
	}
	data, err := os.ReadFile(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", modDir)
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		modPath: modPath,
		modDir:  modDir,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	if src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom); ok {
		l.fallback = src
	} else {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return l, nil
}

// Import implements types.Importer over the loader's cache, so packages
// under the module path are type-checked by the loader itself and shared
// by identity between the packages that import them.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	// Cache first: packages loaded explicitly via LoadDir (including
	// fixture packages outside the module path, like the cross-package
	// testdata fixtures) resolve by identity before any path heuristic.
	if pkg, ok := l.pkgs[path]; ok {
		return pkg.Types, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.fallback.Import(path)
}

// loadPath loads the module-internal package with the given import path.
func (l *Loader) loadPath(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	return l.LoadDir(filepath.Join(l.modDir, filepath.FromSlash(rel)), path)
}

// LoadDir parses and type-checks the package in dir under the given
// import path. Test files (_test.go) are excluded: the analyzers enforce
// invariants on shipped code, and test packages range over maps and
// format strings freely. Results are cached by import path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	name := ""
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") ||
			strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		name = f.Name.Name
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	pkg := &Package{Path: path, Name: name, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Load resolves the given patterns ("./...", "./internal/wsn",
// "./internal/...") relative to the module root and returns the matched
// packages in deterministic (import path) order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		switch {
		case pat == "..." || pat == "./...":
			if err := l.walk(l.modDir, dirs); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.modDir, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			if err := l.walk(root, dirs); err != nil {
				return nil, err
			}
		default:
			dirs[filepath.Join(l.modDir, filepath.FromSlash(pat))] = true
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	var pkgs []*Package
	for _, dir := range sorted {
		rel, err := filepath.Rel(l.modDir, dir)
		if err != nil {
			return nil, err
		}
		path := l.modPath
		if rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// walk collects every directory under root holding at least one
// non-test Go file, skipping testdata, hidden, and VCS directories.
func (l *Loader) walk(root string, dirs map[string]bool) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			base := d.Name()
			if path != root && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
}
