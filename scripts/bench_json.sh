#!/bin/sh
# bench_json.sh — convert `go test -bench` output on stdin to a JSON
# document on stdout. Pure POSIX awk, no dependencies; used by
# `make bench-baseline` to record BENCH_parallel_runner.json and by
# `make bench-tick-json` for BENCH_tick_kernel.json.
#
#   go test -bench . -benchmem -benchtime 1x ./... | scripts/bench_json.sh
#
# Captures name, iterations, ns/op, and (when -benchmem is on) B/op and
# allocs/op; custom b.ReportMetric units are folded into a "metrics" map.
# When `-count N` repeats a benchmark, the fastest run (lowest ns/op) is
# recorded: on a shared machine noise only ever slows a run down, so the
# minimum over a batch is the reproducible number, not the single-shot
# draw.
set -eu

awk '
/^goos: /   { goos = $2 }
/^goarch: / { goarch = $2 }
/^cpu: /    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    nsop = ""; bop = ""; allocs = ""; metrics = ""
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        if (unit == "ns/op")           nsop = $i
        else if (unit == "B/op")       bop = $i
        else if (unit == "allocs/op")  allocs = $i
        else {
            if (metrics != "") metrics = metrics ", "
            metrics = metrics "\"" unit "\": " $i
        }
    }
    if (!(name in bestNs)) { order[++n] = name }
    else if (nsop != "" && nsop + 0 >= bestNs[name] + 0) next
    bestNs[name] = nsop; iters[name] = $2
    bops[name] = bop; allocss[name] = allocs; metricss[name] = metrics
}
END {
    printf "{\n  \"benchmarks\": [\n"
    for (k = 1; k <= n; k++) {
        name = order[k]
        if (k > 1) printf ",\n"
        printf "    {\"name\": \"%s\", \"iterations\": %s", name, iters[name]
        if (bestNs[name] != "")   printf ", \"ns_per_op\": %s", bestNs[name]
        if (bops[name] != "")     printf ", \"bytes_per_op\": %s", bops[name]
        if (allocss[name] != "")  printf ", \"allocs_per_op\": %s", allocss[name]
        if (metricss[name] != "") printf ", \"metrics\": {%s}", metricss[name]
        printf "}"
    }
    printf "\n  ],\n"
    printf "  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\"\n}\n", goos, goarch, cpu
}'
