#!/bin/sh
# bench_json.sh — convert `go test -bench` output on stdin to a JSON
# document on stdout. Pure POSIX awk, no dependencies; used by
# `make bench-baseline` to record BENCH_parallel_runner.json.
#
#   go test -bench . -benchmem -benchtime 1x ./... | scripts/bench_json.sh
#
# Captures name, iterations, ns/op, and (when -benchmem is on) B/op and
# allocs/op; custom b.ReportMetric units are folded into a "metrics" map.
set -eu

awk '
function flush(  i, first) {
    if (name == "") return
    if (n++ > 0) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s", name, iters
    if (nsop != "")   printf ", \"ns_per_op\": %s", nsop
    if (bop != "")    printf ", \"bytes_per_op\": %s", bop
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    if (nmetrics > 0) {
        printf ", \"metrics\": {"
        first = 1
        for (i = 1; i <= nmetrics; i++) {
            if (!first) printf ", "
            printf "\"%s\": %s", munit[i], mval[i]
            first = 0
        }
        printf "}"
    }
    printf "}"
    name = ""
}
BEGIN { n = 0; printf "{\n  \"benchmarks\": [\n" }
/^goos: /   { goos = $2 }
/^goarch: / { goarch = $2 }
/^cpu: /    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    flush()
    name = $1; iters = $2
    nsop = ""; bop = ""; allocs = ""; nmetrics = 0
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        if (unit == "ns/op")           nsop = $i
        else if (unit == "B/op")       bop = $i
        else if (unit == "allocs/op")  allocs = $i
        else { nmetrics++; mval[nmetrics] = $i; munit[nmetrics] = unit }
    }
}
END {
    flush()
    printf "\n  ],\n"
    printf "  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\"\n}\n", goos, goarch, cpu
}'
